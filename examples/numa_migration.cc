// NUMA-migration scenario (the paper's section 4.3): memory is
// first-touched on node 0, workers on node 1 keep accessing it, and
// AutoNUMA repairs the placement by migrating pages — sampling pages
// with prot-none PTEs first. Under Linux every sample costs a
// synchronous shootdown; under LATR the first sweeping core performs
// the deferred unmap at its next scheduler tick.
//
//   $ ./numa_migration

#include <cstdio>

#include "machine/machine.hh"
#include "numa/autonuma.hh"
#include "workload/numabench.hh"

using namespace latr;

int
main()
{
    std::printf("AutoNUMA page migration: first-touch on node 0, "
                "workers on both sockets\n\n");
    std::printf("%-12s %12s %12s %12s %12s\n", "policy",
                "runtime_ms", "migrations", "migr/s", "samples");

    NumaBenchProfile profile = numaBenchSuite()[2]; // graph500
    profile.arrayPages = 4096;
    profile.itersPerCore = 400;

    double linux_ms = 0;
    for (PolicyKind policy :
         {PolicyKind::LinuxSync, PolicyKind::Latr}) {
        Machine machine(MachineConfig::commodity2S16C(), policy);
        NumaBenchResult r = runNumaBench(machine, profile, 16);
        std::printf("%-12s %12.2f %12llu %12.0f %12llu\n",
                    machine.policy().name(), r.runtimeNs / 1e6,
                    static_cast<unsigned long long>(r.migrations),
                    r.migrationsPerSec,
                    static_cast<unsigned long long>(r.samples));
        if (policy == PolicyKind::LinuxSync)
            linux_ms = r.runtimeNs / 1e6;
        else
            std::printf("\nLATR improvement: %.2f%%\n",
                        100.0 * (1.0 - (r.runtimeNs / 1e6) / linux_ms));
    }

    std::printf("\nThe win is the removed *sampling* shootdown "
                "(5.8%%-21.1%% of a migration, section 2.1); the "
                "migration's own unmap stays synchronous under every "
                "policy, as in Linux's migrate_pages().\n");
    return 0;
}
