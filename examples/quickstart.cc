// Quickstart: build a machine, run a process on it, and watch what a
// munmap() costs under stock Linux vs. LATR.
//
//   $ ./quickstart
//
// This is the 60-second tour of the library's public API: Machine,
// Kernel (syscalls), and the per-policy behaviour of TLB coherence.

#include <cstdio>

#include "machine/machine.hh"

using namespace latr;

namespace
{

/** One shared-page munmap on a fresh machine under @p policy. */
void
demo(PolicyKind policy)
{
    // 1. Build the 2-socket, 16-core machine from the paper's
    //    table 3, with the chosen TLB-coherence policy.
    Machine machine(MachineConfig::commodity2S16C(), policy);
    Kernel &kernel = machine.kernel();

    // 2. Create a process with threads on four cores.
    Process *proc = kernel.createProcess("demo");
    Task *t0 = kernel.spawnTask(proc, 0);
    Task *t1 = kernel.spawnTask(proc, 1);
    Task *t8 = kernel.spawnTask(proc, 8); // other socket
    machine.run(kUsec); // start the scheduler ticks

    // 3. Map a page and touch it from all three cores: each TLB now
    //    caches the translation.
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    kernel.touch(t0, m.addr, true);
    kernel.touch(t1, m.addr, false);
    kernel.touch(t8, m.addr, false);

    // 4. munmap it from core 0. Linux must interrupt cores 1 and 8
    //    and wait; LATR writes one 68-byte state and returns.
    SyscallResult u = kernel.munmap(t0, m.addr, kPageSize);

    std::printf("%-7s munmap latency: %6.2f us  "
                "(coherence: %6.2f us, IPIs sent: %llu)\n",
                machine.policy().name(), u.latency / 1000.0,
                u.shootdown / 1000.0,
                static_cast<unsigned long long>(
                    machine.ipi().ipisSent()));

    // 5. Let the machine settle (sweeps at the next ticks, lazy
    //    reclamation after 2 ms) and verify nothing leaked and the
    //    reuse invariant held throughout.
    machine.run(6 * kMsec);
    std::printf("        frames still allocated: %llu, "
                "invariant violations: %llu\n",
                static_cast<unsigned long long>(
                    machine.frames().allocatedFrames()),
                static_cast<unsigned long long>(
                    machine.checker()->violations()));
}

} // namespace

int
main()
{
    std::printf("latr-sim quickstart: one shared-page munmap under "
                "each TLB-coherence policy\n\n");
    for (PolicyKind policy :
         {PolicyKind::LinuxSync, PolicyKind::Barrelfish,
          PolicyKind::Abis, PolicyKind::Latr})
        demo(policy);
    std::printf("\nLATR removes the IPIs and the wait from the "
                "critical path; remote TLB entries die at the next "
                "scheduler tick and memory is reclaimed 2 ms later.\n");
    return 0;
}
