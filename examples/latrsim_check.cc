// latrsim_check: the conformance-harness front end — fuzz the four
// TLB-coherence policies against the differential executor and the
// bounded-staleness oracle, and replay (minimized) failure scripts.
//
//   latrsim_check --fuzz=1000                  # fuzzing campaign
//   latrsim_check --fuzz=200 --ops=200         # CI smoke budget
//   latrsim_check --replay=fail_seed7.min.script
//   latrsim_check --replay=f.script --policy=latr --trace=f.json
//   latrsim_check --fuzz=50 --inject=skip-latr-sweep   # must fail
//
// Exit status: 0 when every run is clean and equivalent, 1 on any
// oracle violation or cross-policy divergence, 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/executor.hh"
#include "check/fuzzer.hh"
#include "check/script.hh"

using namespace latr;

namespace
{

struct Options
{
    unsigned fuzz = 0;
    unsigned digest = 0;
    std::string replayPath;
    std::string policy; // empty = all four
    std::uint64_t seed = 1;
    unsigned ops = 400;
    int pcid = -1; // -1 = alternate (fuzz) / script header (replay)
    std::string machine = "small";
    bool noFastpath = false;
    unsigned simThreads = 0;
    std::string outDir = ".";
    std::string tracePath;
    std::string inject;
    bool keepGoing = false;
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --fuzz=N          run N generated scripts through all five\n"
        "                    policies; minimize + dump any failure\n"
        "  --replay=FILE     replay one script (all policies unless\n"
        "                    --policy narrows it)\n"
        "  --policy=linux|latr|abis|barrelfish|pred\n"
        "  --seed=N          first fuzz seed (default 1)\n"
        "  --ops=N           ops per generated script (default 400)\n"
        "  --pcid=0|1        force PCIDs off/on (default: alternate)\n"
        "  --machine=small|large  topology for generated scripts:\n"
        "                    the 2x4 default or 8x15 (120 cores)\n"
        "  --no-fastpath     force the naive engine paths (tick\n"
        "                    wheel / sweep elision off)\n"
        "  --sim-threads=N   run the parallel batched engine with N\n"
        "                    threads (default 0: classic sequential);\n"
        "                    results are byte-identical either way\n"
        "  --digest=N        print a stable per-(seed,policy) state\n"
        "                    digest for N generated scripts; diff the\n"
        "                    output across builds to prove a change\n"
        "                    is simulation-transparent\n"
        "  --out=DIR         where failure dumps go (default .)\n"
        "  --trace=FILE      Chrome-trace JSON of a --replay run\n"
        "  --inject=skip-latr-sweep  fault injection (harness\n"
        "                    self-test: the oracle must catch it)\n"
        "  --inject=mispredict-sharers  force PredictivePolicy to\n"
        "                    predict no sharers; runs must stay CLEAN\n"
        "                    (the verified fallback absorbs misses)\n"
        "  --keep-going      fuzz past the first failure\n",
        argv0);
}

bool
parseArg(Options &opts, const char *arg, const char *next,
         bool *consumed_next)
{
    *consumed_next = false;
    auto value = [&](const char *key) -> const char * {
        const std::size_t n = std::strlen(key);
        if (std::strncmp(arg, key, n) != 0)
            return nullptr;
        if (arg[n] == '=')
            return arg + n + 1;
        if (arg[n] == '\0' && next) {
            *consumed_next = true;
            return next;
        }
        return nullptr;
    };
    if (std::strcmp(arg, "--keep-going") == 0) {
        opts.keepGoing = true;
        return true;
    }
    if (std::strcmp(arg, "--no-fastpath") == 0) {
        opts.noFastpath = true;
        return true;
    }
    if (const char *v = value("--sim-threads")) {
        opts.simThreads =
            static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        return true;
    }
    if (const char *v = value("--fuzz")) {
        opts.fuzz = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        return true;
    }
    if (const char *v = value("--digest")) {
        opts.digest =
            static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        return true;
    }
    if (const char *v = value("--machine")) {
        opts.machine = v;
        return true;
    }
    if (const char *v = value("--replay")) {
        opts.replayPath = v;
        return true;
    }
    if (const char *v = value("--policy")) {
        opts.policy = v;
        return true;
    }
    if (const char *v = value("--seed")) {
        opts.seed = std::strtoull(v, nullptr, 10);
        return true;
    }
    if (const char *v = value("--ops")) {
        opts.ops = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        return true;
    }
    if (const char *v = value("--pcid")) {
        opts.pcid = std::atoi(v) != 0 ? 1 : 0;
        return true;
    }
    if (const char *v = value("--out")) {
        opts.outDir = v;
        return true;
    }
    if (const char *v = value("--trace")) {
        opts.tracePath = v;
        return true;
    }
    if (const char *v = value("--inject")) {
        opts.inject = v;
        return true;
    }
    return false;
}

bool
policyOf(const std::string &name, PolicyKind *kind)
{
    if (name == "linux")
        *kind = PolicyKind::LinuxSync;
    else if (name == "latr")
        *kind = PolicyKind::Latr;
    else if (name == "abis")
        *kind = PolicyKind::Abis;
    else if (name == "barrelfish")
        *kind = PolicyKind::Barrelfish;
    else if (name == "pred")
        *kind = PolicyKind::Predictive;
    else
        return false;
    return true;
}

int
replay(const Options &opts, const ExecOptions &exec)
{
    Script script;
    std::string err;
    if (!loadScriptFile(opts.replayPath, &script, &err)) {
        std::fprintf(stderr, "latrsim_check: %s\n", err.c_str());
        return 2;
    }
    if (opts.pcid >= 0)
        script.pcid = opts.pcid == 1;

    if (!opts.policy.empty()) {
        PolicyKind kind;
        if (!policyOf(opts.policy, &kind)) {
            std::fprintf(stderr, "unknown policy '%s'\n",
                         opts.policy.c_str());
            return 2;
        }
        ExecOptions one = exec;
        if (!opts.tracePath.empty()) {
            one.trace = true;
            one.tracePath = opts.tracePath;
        }
        RunResult run = runScript(script, kind, one);
        std::printf("%s: %llu staleness, %llu invariant violations\n",
                    policyKindName(kind),
                    static_cast<unsigned long long>(
                        run.stalenessViolations),
                    static_cast<unsigned long long>(
                        run.invariantViolations));
        if (!run.clean())
            std::printf("  first: %s\n",
                        (run.stalenessViolations
                             ? run.firstStaleness
                             : run.firstInvariant)
                            .c_str());
        return run.clean() ? 0 : 1;
    }

    const std::string reason = checkScript(script, exec);
    if (reason.empty()) {
        std::printf("replay of %s (%zu ops): clean and equivalent "
                    "under all four policies\n",
                    opts.replayPath.c_str(), script.ops.size());
        return 0;
    }
    std::printf("replay of %s FAILED: %s\n", opts.replayPath.c_str(),
                reason.c_str());
    return 1;
}

/**
 * Print one stable line per (seed, policy): a digest of the final
 * architectural state plus the oracle verdicts. Byte-comparing this
 * output between two builds (or between --no-fastpath and the
 * default) proves an engine change simulation-transparent.
 */
int
digest(const Options &opts, const ExecOptions &exec)
{
    for (unsigned i = 0; i < opts.digest; ++i) {
        const std::uint64_t seed = opts.seed + i;
        GenOptions gen;
        gen.numOps = opts.ops;
        gen.large = opts.machine == "large";
        gen.pcid = opts.pcid >= 0 ? opts.pcid == 1 : (seed & 1) != 0;
        const Script script = generateScript(seed, gen);
        for (PolicyKind kind : allPolicyKinds()) {
            const RunResult run = runScript(script, kind, exec);
            // FNV-1a over every digested field, regions in slot
            // order: one stable 64-bit fingerprint per run.
            std::uint64_t h = 1469598103934665603ULL;
            auto mix = [&h](std::uint64_t v) {
                for (unsigned b = 0; b < 8; ++b) {
                    h ^= (v >> (b * 8)) & 0xff;
                    h *= 1099511628211ULL;
                }
            };
            for (const auto &region : run.regionSig) {
                mix(region.first);
                for (char c : region.second) {
                    h ^= static_cast<unsigned char>(c);
                    h *= 1099511628211ULL;
                }
            }
            for (std::uint64_t present : run.mmPresentPages)
                mix(present);
            mix(run.allocatedFrames);
            mix(run.heldBackBytes);
            std::printf("seed=%llu policy=%s pcid=%d machine=%s "
                        "state=%016llx staleness=%llu invariant=%llu\n",
                        static_cast<unsigned long long>(seed),
                        policyKindName(kind), gen.pcid ? 1 : 0,
                        opts.machine.c_str(),
                        static_cast<unsigned long long>(h),
                        static_cast<unsigned long long>(
                            run.stalenessViolations),
                        static_cast<unsigned long long>(
                            run.invariantViolations));
        }
    }
    return 0;
}

int
fuzz(const Options &opts, const ExecOptions &exec)
{
    FuzzOptions fo;
    fo.iterations = opts.fuzz;
    fo.baseSeed = opts.seed;
    fo.gen.numOps = opts.ops;
    fo.gen.large = opts.machine == "large";
    fo.outDir = opts.outDir;
    fo.stopOnFailure = !opts.keepGoing;
    fo.exec = exec;
    if (opts.pcid >= 0) {
        fo.mixPcid = false;
        fo.gen.pcid = opts.pcid == 1;
    }
    unsigned done = 0;
    fo.onIteration = [&](unsigned iter, std::uint64_t) {
        done = iter + 1;
        if ((iter + 1) % 50 == 0)
            std::printf("  ... %u/%u scripts\n", iter + 1,
                        opts.fuzz);
    };

    std::printf("fuzzing %u scripts x 5 policies (%u ops each, "
                "base seed %llu)\n",
                opts.fuzz, opts.ops,
                static_cast<unsigned long long>(opts.seed));
    FuzzResult result = runFuzz(fo);
    if (result.clean()) {
        std::printf("clean: %u scripts, no oracle violations, no "
                    "cross-policy divergence\n",
                    result.iterations);
        return 0;
    }
    for (const FuzzFailure &f : result.failures) {
        std::printf("FAILURE seed %llu: %s\n",
                    static_cast<unsigned long long>(f.seed),
                    f.reason.c_str());
        std::printf("  script:    %s (%zu ops)\n",
                    f.scriptPath.c_str(), f.originalOps);
        std::printf("  minimized: %s (%zu ops)\n",
                    f.minScriptPath.c_str(), f.minimizedOps);
        std::printf("  trace:     %s\n", f.tracePath.c_str());
        std::printf("  replay:    latrsim_check --replay=%s%s\n",
                    f.minScriptPath.c_str(),
                    exec.injectSkipLatrSweep
                        ? " --inject=skip-latr-sweep"
                        : (exec.injectMispredictSharers
                               ? " --inject=mispredict-sharers"
                               : ""));
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        bool consumed_next = false;
        const char *next = i + 1 < argc ? argv[i + 1] : nullptr;
        if (!parseArg(opts, argv[i], next, &consumed_next)) {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            usage(argv[0]);
            return 2;
        }
        if (consumed_next)
            ++i;
    }
    const int modes = (opts.fuzz > 0) + (opts.digest > 0) +
                      !opts.replayPath.empty();
    if (modes != 1) {
        usage(argv[0]);
        return 2;
    }
    if (opts.machine != "small" && opts.machine != "large") {
        std::fprintf(stderr, "unknown machine '%s'\n",
                     opts.machine.c_str());
        return 2;
    }

    ExecOptions exec;
    exec.noFastpath = opts.noFastpath;
    exec.simThreads = opts.simThreads;
    if (!opts.inject.empty()) {
        if (opts.inject == "skip-latr-sweep") {
            exec.injectSkipLatrSweep = true;
            std::printf("fault injection: LATR sweeps disabled — the "
                        "staleness oracle should report violations\n");
        } else if (opts.inject == "mispredict-sharers") {
            exec.injectMispredictSharers = true;
            std::printf("fault injection: sharer predictions forced "
                        "empty — runs must stay clean (the verified "
                        "fallback owns correctness)\n");
        } else {
            std::fprintf(stderr, "unknown injection '%s'\n",
                         opts.inject.c_str());
            return 2;
        }
    }

    if (opts.digest > 0)
        return digest(opts, exec);
    return opts.replayPath.empty() ? fuzz(opts, exec)
                                   : replay(opts, exec);
}
