// Timeline trace: reproduces the paper's figures 2 and 3 as text —
// the sequence of events in a munmap() and in an AutoNUMA sampling
// under Linux vs. LATR, with the simulated timestamps of each step.
//
// The narrative lines are recorded through the machine's
// TraceRecorder (category "timeline") and rendered by the text sink,
// so the same run can also be exported to Perfetto via the chrome
// sink if desired.
//
//   $ ./timeline_trace

#include <cstdio>
#include <string>

#include "machine/machine.hh"
#include "trace/text_dump.hh"

using namespace latr;

namespace
{

/** Record one narrative line at @p at. */
void
emit(TraceRecorder &trace, Tick at, const std::string &text)
{
    trace.instant("timeline", trace.intern(text), at);
}

/** Print the recorded narrative, timestamps relative to @p origin. */
void
flushTrace(TraceRecorder &trace, Tick origin)
{
    TextDumpOptions options;
    options.origin = origin;
    options.categoryFilter = "timeline";
    options.detail = false;
    writeTextTimeline(trace, options, stdout);
    std::printf("\n");
}

/** Figure 2: munmap timeline on three cores. */
void
munmapTimeline(PolicyKind policy)
{
    Machine machine(MachineConfig::commodity2S16C(), policy);
    TraceRecorder &trace = machine.trace();
    trace.setEnabled(true);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("A");
    Task *c1 = kernel.spawnTask(p, 1);
    Task *c2 = kernel.spawnTask(p, 2);
    Task *c3 = kernel.spawnTask(p, 3);
    machine.run(kUsec);

    SyscallResult m = kernel.mmap(c2, kPageSize,
                                  kProtRead | kProtWrite);
    kernel.touch(c1, m.addr, true);
    kernel.touch(c2, m.addr, true);
    kernel.touch(c3, m.addr, true);
    const Vpn vpn = pageOf(m.addr);
    const Tick origin = machine.now();

    std::printf("--- Figure 2%s: munmap(1 page) under %s ---\n",
                policy == PolicyKind::LinuxSync ? "a" : "b",
                machine.policy().name());
    emit(trace, origin,
         "core 2: munmap() — clear PTE, local TLB inv");
    SyscallResult u = kernel.munmap(c2, m.addr, kPageSize);
    if (policy == PolicyKind::LinuxSync) {
        emit(trace, origin, "core 2: send IPIs to cores 1 and 3, wait");
    } else {
        emit(trace, machine.now() + u.shootdown,
             "core 2: LATR state saved (no IPI, no wait); "
             "page on lazy list");
    }
    emit(trace, origin + u.latency,
         "core 2: munmap() returns to the app");

    // Watch the remote entries disappear.
    Tick swept1 = 0, swept3 = 0;
    const Tick deadline = machine.now() + 4 * kMsec;
    while (machine.now() < deadline && (!swept1 || !swept3)) {
        machine.run(20 * kUsec);
        if (!swept1 && !machine.scheduler().tlbOf(1).probe(vpn, 0))
            swept1 = machine.now();
        if (!swept3 && !machine.scheduler().tlbOf(3).probe(vpn, 0))
            swept3 = machine.now();
    }
    emit(trace, swept1,
         policy == PolicyKind::LinuxSync
             ? "core 1: IPI handler invalidated TLB, ACKed"
             : "core 1: scheduler tick swept state, TLB inv");
    emit(trace, swept3,
         policy == PolicyKind::LinuxSync
             ? "core 3: IPI handler invalidated TLB, ACKed"
             : "core 3: scheduler tick swept state, TLB inv");

    // And the frame return to the pool.
    Tick freed = 0;
    while (machine.now() < deadline + 4 * kMsec && !freed) {
        machine.run(50 * kUsec);
        if (machine.frames().allocatedFrames() == 0)
            freed = machine.now();
    }
    emit(trace, freed,
         policy == PolicyKind::LinuxSync
             ? "page freed (after the last ACK)"
             : "background thread reclaimed page (~2 ms)");
    flushTrace(trace, origin);
}

/** Figure 3: AutoNUMA sampling timeline on two sockets. */
void
numaTimeline(PolicyKind policy)
{
    Machine machine(MachineConfig::commodity2S16C(), policy);
    TraceRecorder &trace = machine.trace();
    trace.setEnabled(true);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("A");
    Task *c1 = kernel.spawnTask(p, 1);      // node 0
    Task *c9 = kernel.spawnTask(p, 9);      // node 1
    machine.run(kUsec);

    SyscallResult m = kernel.mmap(c1, kPageSize,
                                  kProtRead | kProtWrite);
    kernel.touch(c1, m.addr, true);  // page lands on node 0
    kernel.touch(c9, m.addr, false); // remote reader
    const Vpn vpn = pageOf(m.addr);
    const Tick origin = machine.now();

    std::printf("--- Figure 3%s: AutoNUMA sampling under %s ---\n",
                policy == PolicyKind::LinuxSync ? "a" : "b",
                machine.policy().name());
    Duration d = kernel.numaSample(c1, vpn);
    if (policy == PolicyKind::LinuxSync) {
        emit(trace, origin,
             "scan: clear PTE (prot-none), local TLB inv");
        emit(trace, origin + d,
             "scan: IPI round-trip done — sampling paid "
             "a full shootdown");
    } else {
        emit(trace, origin + d,
             "scan: LATR migration state saved; PTE "
             "untouched, no IPI");
        // First sweeping core performs the unmap.
        Tick cleared = 0;
        while (!cleared && machine.now() < origin + 3 * kMsec) {
            machine.run(20 * kUsec);
            const Pte *pte = p->mm().pageTable().find(vpn);
            if (pte && pte->protNone())
                cleared = machine.now();
        }
        emit(trace, cleared,
             "first sweeping core: deferred 'Clear PTE' + "
             "local TLB inv (scheduler tick)");
    }

    machine.run(2 * kMsec);
    // The next remote touch takes the hint fault.
    TouchResult t = kernel.touch(c9, m.addr, false);
    if (t.kind == TouchKind::NumaFault)
        emit(trace, machine.now(),
             "core 9: NUMA-hint fault — candidate "
             "for migration to node 1");
    else
        emit(trace, machine.now(), "core 9: touch proceeded");
    flushTrace(trace, origin);
}

} // namespace

int
main()
{
    std::printf("Timeline traces of the paper's design figures\n\n");
    munmapTimeline(PolicyKind::LinuxSync);
    munmapTimeline(PolicyKind::Latr);
    numaTimeline(PolicyKind::LinuxSync);
    numaTimeline(PolicyKind::Latr);
    return 0;
}
