// Race semantics (the paper's section 4.4): what a buggy application
// observes when it touches memory it already freed, under Linux vs.
// LATR. Under Linux the shootdown is synchronous, so any use after
// munmap() returns faults immediately. Under LATR a remote core's
// stale TLB entry keeps working — against the old, not-yet-freed
// page — until that core's next scheduler tick; afterwards the same
// touch segfaults. Either way the paper's invariant protects the
// rest of the system: the page is never handed to anyone else while
// a stale entry could still reach it (the invariant checker verifies
// this live).
//
//   $ ./race_semantics

#include <cstdio>

#include "machine/machine.hh"

using namespace latr;

namespace
{

const char *
kindName(TouchKind kind)
{
    switch (kind) {
      case TouchKind::TlbHit:
        return "TLB hit (stale entry, old page!)";
      case TouchKind::TlbL2Hit:
        return "L2 TLB hit (stale entry, old page!)";
      case TouchKind::SegFault:
        return "segmentation fault";
      default:
        return "resolved through the page table";
    }
}

void
demo(PolicyKind policy)
{
    Machine machine(MachineConfig::commodity2S16C(), policy);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("buggy");
    Task *t0 = kernel.spawnTask(p, 0);
    Task *t1 = kernel.spawnTask(p, 1);
    machine.run(kUsec);

    std::printf("--- %s ---\n", machine.policy().name());

    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    kernel.touch(t0, m.addr, true);
    TouchResult before = kernel.touch(t1, m.addr, true);
    std::printf("  before munmap, core 1 write:        %s (frame %llu)\n",
                kindName(before.kind),
                static_cast<unsigned long long>(before.pfn));

    SyscallResult u = kernel.munmap(t0, m.addr, kPageSize);

    // A touch at this same instant races the munmap itself — both
    // systems allow it to land on the old page (Linux's IPIs are
    // still in flight).
    TouchResult during = kernel.touch(t1, m.addr, true);
    std::printf("  concurrent with munmap, core 1:     %s\n",
                kindName(during.kind));

    // Once munmap has *returned* the two systems differ: Linux
    // already waited for every ACK; LATR has not invalidated
    // anything remotely yet.
    machine.run(u.latency);
    TouchResult after_return = kernel.touch(t1, m.addr, true);
    std::printf("  after munmap returned, core 1:      %s\n",
                kindName(after_return.kind));

    // One scheduler tick later.
    machine.run(machine.config().cost.tickInterval + 10 * kUsec);
    TouchResult later = kernel.touch(t1, m.addr, false);
    std::printf("  one tick later, core 1 read:        %s\n",
                kindName(later.kind));

    machine.run(6 * kMsec);
    std::printf("  reuse-invariant violations:         %llu\n\n",
                static_cast<unsigned long long>(
                    machine.checker()->violations()));
}

} // namespace

int
main()
{
    std::printf(
        "Section 4.4: reads and writes to freed memory before the "
        "lazy shootdown\n\n");
    demo(PolicyKind::LinuxSync);
    demo(PolicyKind::Latr);
    std::printf(
        "LATR lets the buggy access linger against the old page for "
        "up to one tick — never against anyone else's memory — then "
        "it faults, exactly as the paper describes.\n");
    return 0;
}
