// Webserver scenario: the paper's motivating workload (figures 1/9).
// An mpm_event-style server mmap()s and munmap()s a 10 KB file per
// request; with synchronous shootdowns the munmap dominates and the
// server stops scaling. Run it under any two policies and compare.
//
//   $ ./webserver [workers] (default 12)

#include <cstdio>
#include <cstdlib>

#include "machine/machine.hh"
#include "workload/webserver.hh"

using namespace latr;

int
main(int argc, char **argv)
{
    unsigned workers = 12;
    if (argc > 1)
        workers = static_cast<unsigned>(std::atoi(argv[1]));
    if (workers == 0 || workers > 16) {
        std::fprintf(stderr, "usage: %s [workers 1..16]\n", argv[0]);
        return 1;
    }

    std::printf("Apache-style webserver, %u workers, 10 KB static "
                "page per request\n\n",
                workers);
    std::printf("%-12s %14s %16s %14s\n", "policy", "requests/s",
                "shootdowns/s", "llc app miss");

    for (PolicyKind policy :
         {PolicyKind::LinuxSync, PolicyKind::Abis, PolicyKind::Latr}) {
        Machine machine(MachineConfig::commodity2S16C(), policy);
        WebServerConfig cfg;
        cfg.workers = workers;
        cfg.processes = 1;
        WebServerWorkload server(machine, cfg);
        WebServerResult r = server.measure(50 * kMsec, 250 * kMsec);
        std::printf("%-12s %14.0f %16.0f %13.2f%%\n",
                    machine.policy().name(), r.requestsPerSec,
                    r.shootdownsPerSec, 100.0 * r.llcAppMissRatio);
        if (machine.checker()->violations() != 0) {
            std::fprintf(stderr, "invariant violated: %s\n",
                         machine.checker()->firstViolation().c_str());
            return 1;
        }
    }

    std::printf("\nLATR serves more requests because munmap() no "
                "longer holds mmap_sem across an IPI round-trip, and "
                "no worker burns time in interrupt handlers.\n");
    return 0;
}
