// latrsim_cli: run any of the library's workloads from the command
// line — the knob-turning tool for exploring the policy space
// without writing code.
//
//   latrsim_cli --workload=apache --policy=latr --workers=12
//   latrsim_cli --workload=microbench --policy=linux --cores=16
//   latrsim_cli --workload=parsec --benchmark=dedup --policy=abis
//   latrsim_cli --workload=numa --benchmark=graph500 --policy=latr
//   latrsim_cli --workload=serve --arrival-rate=200000 \
//       --duration-ticks=120000000 --record=run.latrace
//   latrsim_cli --workload=serve --replay=run.latrace --policy=linux
//
// Prints the headline metrics plus the machine's stat dump with
// --stats.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "machine/machine.hh"
#include "serve/latrace.hh"
#include "serve/serve.hh"
#include "sim/logging.hh"
#include "machine/machine_stats.hh"
#include "trace/chrome_trace.hh"
#include "trace/text_dump.hh"
#include "workload/lazycache.hh"
#include "workload/microbench.hh"
#include "workload/numabench.hh"
#include "workload/parsec.hh"
#include "workload/webserver.hh"

using namespace latr;

namespace
{

struct Options
{
    std::string workload = "apache";
    std::string policy = "latr";
    std::string machine = "commodity";
    std::string benchmark = "dedup";
    unsigned workers = 12;
    unsigned cores = 16;
    std::uint64_t pages = 1;
    // serve workload (src/serve/): open-loop scenario knobs.
    Tick durationTicks = 0;     // 0 = ServeConfig default
    // lazycache workload (src/workload/lazycache): pressure knobs.
    std::uint64_t cachePages = 0;   // 0 = LazyCacheConfig default
    double hotFraction = -1.0;      // <0 = default
    unsigned readers = 0;           // 0 = default
    unsigned writers = ~0u;         // ~0 = default
    std::uint64_t burstPages = ~0ull; // ~0 = default
    Duration pressureInterval = 0;  // 0 = default
    double arrivalRate = 0.0;   // 0 = ServeConfig default
    unsigned tenants = 0;       // 0 = ServeConfig default
    std::uint64_t users = 0;    // 0 = ServeConfig default
    Duration churnInterval = kTickNever; // kTickNever = default
    std::uint64_t seed = 1;
    unsigned simThreads = 0;
    std::string recordPath; // write the generated .latrace here
    std::string replayPath; // replay this .latrace instead
    double rateScale = 0.0; // 0/1 = no replay rate transform
    bool noFastpath = false;
    bool dumpStats = false;
    std::string tracePath;     // chrome://tracing / Perfetto JSON
    std::string traceTextPath; // human-readable timeline
    std::size_t traceCapacity = 0; // 0 = recorder default
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --workload=apache|nginx|microbench|parsec|numa|serve|"
        "lazycache\n"
        "  --policy=linux|latr|abis|barrelfish|pred\n"
        "  --machine=commodity|large\n"
        "  --benchmark=<parsec or numa benchmark name>\n"
        "  --workers=N   (apache/nginx/serve serving cores)\n"
        "  --cores=N     (microbench/parsec/numa cores)\n"
        "  --pages=N     (microbench pages per munmap)\n"
        "lazycache workload (MADV_FREE page cache):\n"
        "  --cache-pages=N        (4 KB pages in the cache)\n"
        "  --hot-fraction=F       (hot core-set fraction, 0..1)\n"
        "  --readers=N --writers=N  (thread split)\n"
        "  --burst-pages=N        (MADV_FREEs per pressure burst;\n"
        "                          0 disables pressure)\n"
        "  --pressure-interval=N  (ns between bursts)\n"
        "  --duration-ticks=N     (measured window in simulated ns)\n"
        "serve workload (open-loop, tail latency; src/serve/):\n"
        "  --duration-ticks=N  (arrival horizon in simulated ns)\n"
        "  --arrival-rate=N    (mean requests per simulated second)\n"
        "  --tenants=N         (tenant slots, one process each)\n"
        "  --users=N           (simulated user population)\n"
        "  --churn-interval=N  (ns between tenant exits; 0 = off)\n"
        "  --seed=N            (arrival-stream RNG seed)\n"
        "  --sim-threads=N     (parallel engine worker threads)\n"
        "  --record=FILE       (save the generated .latrace)\n"
        "  --replay=FILE       (replay FILE instead of generating;\n"
        "                       byte-identical results per policy)\n"
        "  --rate-scale=F      (replay transform: divide every\n"
        "                       inter-arrival gap by F at load time,\n"
        "                       so one recording covers a whole\n"
        "                       load-sweep family; F > 1 = hotter)\n"
        "  --no-fastpath (naive engine paths; results must match)\n"
        "  --stats       (dump the full stat registry)\n"
        "  --trace=FILE      (write Chrome-trace JSON; load in\n"
        "                     chrome://tracing or ui.perfetto.dev)\n"
        "  --trace-text=FILE (write a human-readable timeline;\n"
        "                     '-' for stdout)\n"
        "  --trace-capacity=N (ring size in records; default 65536)\n",
        argv0);
}

bool
parseArg(Options &opts, const char *arg)
{
    auto value = [&](const char *key) -> const char * {
        const std::size_t n = std::strlen(key);
        if (std::strncmp(arg, key, n) == 0 && arg[n] == '=')
            return arg + n + 1;
        return nullptr;
    };
    if (const char *v = value("--workload")) {
        opts.workload = v;
    } else if (const char *v = value("--policy")) {
        opts.policy = v;
    } else if (const char *v = value("--machine")) {
        opts.machine = v;
    } else if (const char *v = value("--benchmark")) {
        opts.benchmark = v;
    } else if (const char *v = value("--workers")) {
        opts.workers = static_cast<unsigned>(std::atoi(v));
    } else if (const char *v = value("--cores")) {
        opts.cores = static_cast<unsigned>(std::atoi(v));
    } else if (const char *v = value("--pages")) {
        opts.pages = static_cast<std::uint64_t>(std::atoll(v));
    } else if (const char *v = value("--duration-ticks")) {
        opts.durationTicks = static_cast<Tick>(std::atoll(v));
    } else if (const char *v = value("--cache-pages")) {
        opts.cachePages = static_cast<std::uint64_t>(std::atoll(v));
    } else if (const char *v = value("--hot-fraction")) {
        opts.hotFraction = std::atof(v);
    } else if (const char *v = value("--readers")) {
        opts.readers = static_cast<unsigned>(std::atoi(v));
    } else if (const char *v = value("--writers")) {
        opts.writers = static_cast<unsigned>(std::atoi(v));
    } else if (const char *v = value("--burst-pages")) {
        opts.burstPages = static_cast<std::uint64_t>(std::atoll(v));
    } else if (const char *v = value("--pressure-interval")) {
        opts.pressureInterval = static_cast<Duration>(std::atoll(v));
    } else if (const char *v = value("--arrival-rate")) {
        opts.arrivalRate = std::atof(v);
    } else if (const char *v = value("--tenants")) {
        opts.tenants = static_cast<unsigned>(std::atoi(v));
    } else if (const char *v = value("--users")) {
        opts.users = static_cast<std::uint64_t>(std::atoll(v));
    } else if (const char *v = value("--churn-interval")) {
        opts.churnInterval = static_cast<Duration>(std::atoll(v));
    } else if (const char *v = value("--seed")) {
        opts.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (const char *v = value("--sim-threads")) {
        opts.simThreads = static_cast<unsigned>(std::atoi(v));
    } else if (const char *v = value("--record")) {
        opts.recordPath = v;
    } else if (const char *v = value("--replay")) {
        opts.replayPath = v;
    } else if (const char *v = value("--rate-scale")) {
        opts.rateScale = std::atof(v);
    } else if (const char *v = value("--trace")) {
        opts.tracePath = v;
    } else if (const char *v = value("--trace-text")) {
        opts.traceTextPath = v;
    } else if (const char *v = value("--trace-capacity")) {
        opts.traceCapacity = static_cast<std::size_t>(std::atoll(v));
    } else if (std::strcmp(arg, "--no-fastpath") == 0) {
        opts.noFastpath = true;
    } else if (std::strcmp(arg, "--stats") == 0) {
        opts.dumpStats = true;
    } else {
        return false;
    }
    return true;
}

PolicyKind
policyOf(const std::string &name)
{
    if (name == "linux")
        return PolicyKind::LinuxSync;
    if (name == "latr")
        return PolicyKind::Latr;
    if (name == "abis")
        return PolicyKind::Abis;
    if (name == "barrelfish")
        return PolicyKind::Barrelfish;
    if (name == "pred")
        return PolicyKind::Predictive;
    fatal("unknown policy '%s'", name.c_str());
}

MachineConfig
machineOf(const std::string &name)
{
    if (name == "commodity")
        return MachineConfig::commodity2S16C();
    if (name == "large")
        return MachineConfig::largeNuma8S120C();
    fatal("unknown machine '%s'", name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        if (!parseArg(opts, argv[i])) {
            usage(argv[0]);
            return 1;
        }
    }

    MachineConfig config = machineOf(opts.machine);
    config.noFastpath = opts.noFastpath;
    config.simThreads = opts.simThreads;
    Machine machine(config, policyOf(opts.policy));
    if (!opts.tracePath.empty() || !opts.traceTextPath.empty()) {
        if (opts.traceCapacity != 0)
            machine.trace().setCapacity(opts.traceCapacity);
        machine.trace().setEnabled(true);
    }
    std::printf("machine:  %s\npolicy:   %s\nworkload: %s\n\n",
                machine.config().name.c_str(),
                machine.policy().name(), opts.workload.c_str());

    if (opts.workload == "apache" || opts.workload == "nginx") {
        WebServerConfig cfg;
        cfg.workers = opts.workers;
        cfg.processes = 1;
        cfg.mmapPerRequest = opts.workload == "apache";
        WebServerWorkload server(machine, cfg);
        WebServerResult r = server.measure(50 * kMsec, 250 * kMsec);
        std::printf("requests/s:    %.0f\n", r.requestsPerSec);
        std::printf("shootdowns/s:  %.0f\n", r.shootdownsPerSec);
        std::printf("llc app miss:  %.2f%%\n",
                    100.0 * r.llcAppMissRatio);
    } else if (opts.workload == "microbench") {
        MunmapMicrobenchConfig cfg;
        cfg.sharingCores = opts.cores;
        cfg.pages = opts.pages;
        MunmapMicrobenchResult r = runMunmapMicrobench(machine, cfg);
        std::printf("munmap mean:    %.2f us (p99 %.2f us)\n",
                    r.munmapMeanNs / 1000.0, r.munmapP99Ns / 1000.0);
        std::printf("shootdown mean: %.2f us\n",
                    r.shootdownMeanNs / 1000.0);
        std::printf("latr fallbacks: %llu\n",
                    static_cast<unsigned long long>(r.latrFallbacks));
    } else if (opts.workload == "parsec") {
        ParsecResult r = runParsec(
            machine, parsecProfile(opts.benchmark), opts.cores);
        std::printf("runtime:       %.2f ms\n", r.runtimeNs / 1e6);
        std::printf("shootdowns/s:  %.0f\n", r.shootdownsPerSec);
    } else if (opts.workload == "serve") {
        Latrace trace;
        if (!opts.replayPath.empty()) {
            std::string error;
            if (!latraceLoad(opts.replayPath, &trace, &error))
                fatal("cannot replay '%s': %s",
                      opts.replayPath.c_str(), error.c_str());
            if (opts.rateScale > 0.0 && opts.rateScale != 1.0) {
                // Uniform load-time rate transform: dividing every
                // arrival tick by F compresses (F > 1) or stretches
                // (F < 1) all inter-arrival gaps by the same factor,
                // so one recording covers a whole load-sweep family.
                // Division is monotone, so record order survives.
                const double f = opts.rateScale;
                for (LatraceRecord &rec : trace.records)
                    rec.tick = static_cast<Tick>(
                        std::llround(static_cast<double>(rec.tick) /
                                     f));
                trace.durationTicks = static_cast<Tick>(std::llround(
                    static_cast<double>(trace.durationTicks) / f));
                std::fprintf(stderr,
                             "rate-scale %.3f: %zu ops over %llu "
                             "ticks\n",
                             f, trace.records.size(),
                             static_cast<unsigned long long>(
                                 trace.durationTicks));
            }
        } else {
            ServeConfig cfg;
            cfg.workers = opts.workers;
            if (opts.durationTicks)
                cfg.duration = opts.durationTicks;
            if (opts.arrivalRate > 0.0)
                cfg.arrivalRatePerSec = opts.arrivalRate;
            if (opts.tenants)
                cfg.tenants = opts.tenants;
            if (opts.users)
                cfg.users = opts.users;
            if (opts.churnInterval != kTickNever)
                cfg.churnInterval = opts.churnInterval;
            cfg.seed = opts.seed;
            trace = generateServeTrace(cfg);
        }
        if (!opts.recordPath.empty()) {
            if (!latraceSave(trace, opts.recordPath))
                fatal("cannot record to '%s'",
                      opts.recordPath.c_str());
            std::fprintf(stderr, "recorded %llu ops -> %s\n",
                         static_cast<unsigned long long>(
                             trace.records.size()),
                         opts.recordPath.c_str());
        }
        ServeResult r = runServeTrace(machine, trace);
        std::printf("arrivals:      %llu (%llu completed, "
                    "%llu churn-dropped)\n",
                    static_cast<unsigned long long>(r.arrivals),
                    static_cast<unsigned long long>(r.completed),
                    static_cast<unsigned long long>(r.droppedChurn));
        std::printf("requests/s:    %.0f\n", r.requestsPerSec);
        std::printf("latency p50:   %.2f us\n", r.p50() / 1000.0);
        std::printf("latency p99:   %.2f us\n", r.p99() / 1000.0);
        std::printf("latency p999:  %.2f us\n", r.p999() / 1000.0);
        std::printf("shootdowns/s:  %.0f\n", r.shootdownsPerSec);
        std::printf("digest:        %016llx\n",
                    static_cast<unsigned long long>(r.digest));
    } else if (opts.workload == "lazycache") {
        LazyCacheConfig cfg;
        if (opts.cachePages)
            cfg.cachePages = opts.cachePages;
        if (opts.hotFraction >= 0.0)
            cfg.hotFraction = opts.hotFraction;
        if (opts.readers)
            cfg.readers = opts.readers;
        if (opts.writers != ~0u)
            cfg.writers = opts.writers;
        if (opts.burstPages != ~0ull)
            cfg.burstPages = opts.burstPages;
        if (opts.pressureInterval)
            cfg.pressureInterval = opts.pressureInterval;
        cfg.seed = opts.seed;
        LazyCacheWorkload cache(machine, cfg);
        const Duration measured =
            opts.durationTicks ? opts.durationTicks : 100 * kMsec;
        LazyCacheResult r = cache.measure(10 * kMsec, measured);
        std::printf("events/s:        %.0f\n", r.eventsPerSec);
        std::printf("reads/s:         %.0f\n", r.readsPerSec);
        std::printf("hit ratio:       %.4f\n", r.hitRatio);
        std::printf("reval fails:     %llu (refills %llu)\n",
                    static_cast<unsigned long long>(
                        r.revalidationFails),
                    static_cast<unsigned long long>(r.refills));
        std::printf("madv_free pages: %llu in %llu bursts\n",
                    static_cast<unsigned long long>(r.discardedPages),
                    static_cast<unsigned long long>(r.bursts));
        std::printf("fallback IPIs:   %llu (%.0f/s)\n",
                    static_cast<unsigned long long>(r.fallbackIpis),
                    ratePerSecond(r.fallbackIpis, measured));
        std::printf("reclaimed pages: %llu\n",
                    static_cast<unsigned long long>(r.reclaimedPages));
        std::printf("digest:          %016llx\n",
                    static_cast<unsigned long long>(r.digest));
    } else if (opts.workload == "numa") {
        const NumaBenchProfile *profile = nullptr;
        for (const NumaBenchProfile &p : numaBenchSuite())
            if (opts.benchmark == p.name)
                profile = &p;
        if (!profile)
            fatal("unknown numa benchmark '%s'",
                  opts.benchmark.c_str());
        NumaBenchResult r = runNumaBench(machine, *profile, opts.cores);
        std::printf("runtime:       %.2f ms\n", r.runtimeNs / 1e6);
        std::printf("migrations:    %llu (%.0f/s)\n",
                    static_cast<unsigned long long>(r.migrations),
                    r.migrationsPerSec);
    } else {
        usage(argv[0]);
        return 1;
    }

    if (machine.checker() && machine.checker()->violations() != 0) {
        std::fprintf(stderr, "reuse invariant VIOLATED: %s\n",
                     machine.checker()->firstViolation().c_str());
        return 1;
    }
    if (opts.dumpStats) {
        std::printf("\n--- stats ---\n%s",
                    machine.stats().dump().c_str());
    }
    if (!opts.tracePath.empty()) {
        if (!writeChromeTraceFile(machine.trace(), &machine.topo(),
                                  opts.tracePath))
            fatal("cannot write trace to '%s'",
                  opts.tracePath.c_str());
        std::fprintf(stderr, "trace: %llu records -> %s\n",
                     static_cast<unsigned long long>(
                         machine.trace().size()),
                     opts.tracePath.c_str());
    }
    if (!opts.traceTextPath.empty()) {
        TextDumpOptions text;
        if (opts.traceTextPath == "-") {
            writeTextTimeline(machine.trace(), text, stdout);
        } else {
            std::FILE *f =
                std::fopen(opts.traceTextPath.c_str(), "w");
            if (!f)
                fatal("cannot write trace to '%s'",
                      opts.traceTextPath.c_str());
            writeTextTimeline(machine.trace(), text, f);
            std::fclose(f);
        }
    }
    return 0;
}
