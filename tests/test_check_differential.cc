// Tests for the differential executor and the shrinking fuzzer: a
// generated script must be clean and equivalent under all four
// policies, a deliberately broken policy must be caught by the
// staleness oracle and minimized, and the minimizer must be greedy
// delta debugging rather than wishful thinking.

#include <gtest/gtest.h>

#include <set>

#include "check/executor.hh"
#include "check/fuzzer.hh"
#include "check/script.hh"

namespace latr
{
namespace
{

GenOptions
smallGen()
{
    GenOptions gen;
    gen.numOps = 150;
    return gen;
}

TEST(CheckDifferential, GeneratedScriptsAreCleanAndEquivalent)
{
    for (std::uint64_t seed : {5ull, 17ull}) {
        GenOptions gen = smallGen();
        gen.pcid = seed % 2 == 1;
        Script script = generateScript(seed, gen);
        EXPECT_EQ(checkScript(script, ExecOptions{}), "")
            << "seed " << seed;
    }
}

TEST(CheckDifferential, RunScriptIsDeterministic)
{
    Script script = generateScript(23, smallGen());
    RunResult a = runScript(script, PolicyKind::Latr, ExecOptions{});
    RunResult b = runScript(script, PolicyKind::Latr, ExecOptions{});
    EXPECT_EQ(a.regionSig, b.regionSig);
    EXPECT_EQ(a.mmPresentPages, b.mmPresentPages);
    EXPECT_EQ(a.allocatedFrames, b.allocatedFrames);
    EXPECT_EQ(a.stalenessViolations, b.stalenessViolations);
    EXPECT_EQ(a.invariantViolations, b.invariantViolations);
}

TEST(CheckDifferential, DiffStatesFlagsDigestDivergence)
{
    RunResult a, b;
    a.policy = PolicyKind::LinuxSync;
    b.policy = PolicyKind::Latr;
    a.regionSig[0] = "ww..";
    b.regionSig[0] = "www.";
    DiffResult d = diffStates(a, b);
    EXPECT_FALSE(d.equivalent);
    EXPECT_NE(d.divergence.find("slot 0"), std::string::npos);

    b.regionSig[0] = "ww..";
    EXPECT_TRUE(diffStates(a, b).equivalent);

    b.allocatedFrames = 3;
    EXPECT_FALSE(diffStates(a, b).equivalent);
}

TEST(CheckDifferential, BrokenLatrSweepIsCaughtByTheOracle)
{
    ExecOptions broken;
    broken.injectSkipLatrSweep = true;

    // Find a failing seed quickly; generated scripts unmap
    // constantly, so the very first seeds fail in practice.
    std::string reason;
    Script failing;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Script script = generateScript(seed, smallGen());
        reason = checkScript(script, broken);
        if (!reason.empty()) {
            failing = script;
            break;
        }
    }
    ASSERT_FALSE(reason.empty())
        << "no seed in 1..5 tripped the disabled-sweep injection";
    EXPECT_EQ(failureCategory(reason), "staleness");
    EXPECT_NE(reason.find("LATR"), std::string::npos);

    // Minimization must preserve the failure category and shrink.
    const std::string category = failureCategory(reason);
    Script minimized = minimizeScript(
        failing,
        [&](const Script &candidate) {
            return failureCategory(checkScript(candidate, broken)) ==
                   category;
        },
        /*max_evals=*/80);
    EXPECT_LT(minimized.ops.size(), failing.ops.size());
    EXPECT_EQ(failureCategory(checkScript(minimized, broken)),
              category);
    // The same script under intact policies is clean: the harness
    // caught the injected bug, not a harness artifact.
    EXPECT_EQ(checkScript(minimized, ExecOptions{}), "");
}

TEST(CheckFuzzer, FailureCategoryClassifiesReasons)
{
    EXPECT_EQ(failureCategory(""), "");
    EXPECT_EQ(failureCategory("LATR: staleness oracle: stale ..."),
              "staleness");
    EXPECT_EQ(failureCategory("ABIS: reuse invariant: frame freed"),
              "invariant");
    EXPECT_EQ(failureCategory("differential: Linux vs LATR: ..."),
              "differential");
}

TEST(CheckFuzzer, MinimizerFindsTheTwoOpCore)
{
    // Synthetic target: the "bug" needs one munmap_sync AND one
    // quiesce, anywhere in the script. The minimizer should strip
    // all 40 decoys.
    Script script;
    script.procs = 1;
    for (int i = 0; i < 20; ++i)
        script.ops.push_back(Op{OpKind::Advance, 0, 0, 10, 0, false});
    script.ops.push_back(Op{OpKind::MunmapSync, 0, 0, 0, 0, false});
    for (int i = 0; i < 20; ++i)
        script.ops.push_back(Op{OpKind::Advance, 0, 0, 10, 0, false});
    script.ops.push_back(Op{OpKind::Quiesce, 0, 0, 0, 0, false});

    unsigned evals = 0;
    auto fails = [&](const Script &s) {
        ++evals;
        bool unmap = false, quiesce = false;
        for (const Op &op : s.ops) {
            unmap |= op.kind == OpKind::MunmapSync;
            quiesce |= op.kind == OpKind::Quiesce;
        }
        return unmap && quiesce;
    };
    Script minimized = minimizeScript(script, fails, 500);
    ASSERT_EQ(minimized.ops.size(), 2u);
    EXPECT_EQ(minimized.ops[0].kind, OpKind::MunmapSync);
    EXPECT_EQ(minimized.ops[1].kind, OpKind::Quiesce);
    EXPECT_GT(evals, 0u);
}

TEST(CheckFuzzer, MinimizerRespectsTheEvalBudget)
{
    Script script;
    for (int i = 0; i < 64; ++i)
        script.ops.push_back(Op{OpKind::Advance, 0, 0, 10, 0, false});
    unsigned evals = 0;
    // Never fails: the minimizer must give up at the budget and
    // return the input unchanged.
    Script out = minimizeScript(
        script,
        [&](const Script &) {
            ++evals;
            return false;
        },
        /*max_evals=*/10);
    EXPECT_EQ(out.ops.size(), script.ops.size());
    EXPECT_LE(evals, 10u);
}

TEST(CheckFuzzer, RunFuzzDumpsAReplayableMinimizedFailure)
{
    const std::string dir = ::testing::TempDir();
    FuzzOptions fo;
    fo.iterations = 3;
    fo.baseSeed = 1;
    fo.gen = smallGen();
    fo.outDir = dir;
    fo.minimizeBudget = 60;
    fo.exec.injectSkipLatrSweep = true;

    FuzzResult result = runFuzz(fo);
    ASSERT_FALSE(result.clean());
    const FuzzFailure &f = result.failures.front();
    EXPECT_EQ(failureCategory(f.reason), "staleness");
    EXPECT_LT(f.minimizedOps, f.originalOps);

    // Both dumps must reload, and the minimized one must still fail
    // the same way when replayed with the same injection.
    Script reloaded;
    std::string err;
    ASSERT_TRUE(loadScriptFile(f.scriptPath, &reloaded, &err)) << err;
    EXPECT_EQ(reloaded.seed, f.seed);
    ASSERT_TRUE(loadScriptFile(f.minScriptPath, &reloaded, &err))
        << err;
    EXPECT_EQ(failureCategory(checkScript(reloaded, fo.exec)),
              "staleness");
}

TEST(CheckFuzzer, CleanCampaignVisitsEverySeed)
{
    std::set<std::uint64_t> seeds;
    FuzzOptions fo;
    fo.iterations = 4;
    fo.baseSeed = 100;
    fo.gen.numOps = 60;
    fo.outDir = ::testing::TempDir();
    fo.onIteration = [&](unsigned, std::uint64_t seed) {
        seeds.insert(seed);
    };
    FuzzResult result = runFuzz(fo);
    EXPECT_TRUE(result.clean()) << result.failures.front().reason;
    EXPECT_EQ(result.iterations, 4u);
    EXPECT_EQ(seeds.size(), 4u);
    EXPECT_TRUE(seeds.count(100) && seeds.count(103));
}

} // namespace
} // namespace latr
