// Unit tests for the .latrace trace container: canonical bytes,
// round-trips, and rejection of malformed input.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "serve/latrace.hh"
#include "serve/serve.hh"

namespace latr
{
namespace
{

Latrace
sampleTrace()
{
    Latrace t;
    t.seed = 42;
    t.durationTicks = 5'000'000;
    t.workers = 4;
    t.tenants = 2;
    t.serviceCpuNs = 30'000;
    LatraceRecord r;
    r.tick = 10;
    r.user = 7;
    r.tenant = 1;
    r.pages = 3;
    r.op = LatraceOp::Request;
    t.records.push_back(r);
    r.tick = 20;
    r.op = LatraceOp::TenantExit;
    t.records.push_back(r);
    r.op = LatraceOp::TenantSpawn;
    t.records.push_back(r);
    return t;
}

TEST(Latrace, SerializationIsCanonical)
{
    const Latrace t = sampleTrace();
    const std::string a = latraceSerialize(t);
    const std::string b = latraceSerialize(t);
    EXPECT_EQ(a, b);
    // Fixed header (64 B) plus 24 B per record.
    EXPECT_EQ(a.size(), 64u + 24u * t.records.size());
    EXPECT_EQ(a.substr(0, 7), "LATRACE");
}

TEST(Latrace, RoundTripPreservesEverything)
{
    const Latrace t = sampleTrace();
    Latrace back;
    std::string error;
    ASSERT_TRUE(latraceParse(latraceSerialize(t), &back, &error))
        << error;
    EXPECT_TRUE(t == back);
    // And re-serializing the parse gives the same bytes.
    EXPECT_EQ(latraceSerialize(back), latraceSerialize(t));
}

TEST(Latrace, EmptyRecordListRoundTrips)
{
    Latrace t;
    t.workers = 1;
    t.tenants = 1;
    Latrace back;
    ASSERT_TRUE(latraceParse(latraceSerialize(t), &back, nullptr));
    EXPECT_TRUE(t == back);
}

TEST(Latrace, RejectsTruncatedAndCorrupt)
{
    const std::string good = latraceSerialize(sampleTrace());
    Latrace out;
    std::string error;

    EXPECT_FALSE(latraceParse("", &out, &error));
    EXPECT_NE(error.find("shorter"), std::string::npos);

    EXPECT_FALSE(latraceParse(good.substr(0, 40), &out, &error));

    std::string badMagic = good;
    badMagic[0] = 'X';
    EXPECT_FALSE(latraceParse(badMagic, &out, &error));
    EXPECT_NE(error.find("magic"), std::string::npos);

    std::string badVersion = good;
    badVersion[8] = 99;
    EXPECT_FALSE(latraceParse(badVersion, &out, &error));
    EXPECT_NE(error.find("version"), std::string::npos);

    // Truncated body: drop the last record's bytes.
    EXPECT_FALSE(
        latraceParse(good.substr(0, good.size() - 24), &out, &error));
    EXPECT_NE(error.find("size"), std::string::npos);

    // Trailing garbage is an error too (byte-diffable means exact).
    EXPECT_FALSE(latraceParse(good + "x", &out, &error));

    // Unknown op value.
    std::string badOp = good;
    badOp[64 + 18] = 77;
    EXPECT_FALSE(latraceParse(badOp, &out, &error));
    EXPECT_NE(error.find("op"), std::string::npos);

    // Ticks must be nondecreasing: swap record order.
    Latrace disordered = sampleTrace();
    std::swap(disordered.records.front(), disordered.records.back());
    EXPECT_FALSE(
        latraceParse(latraceSerialize(disordered), &out, &error));
    EXPECT_NE(error.find("nondecreasing"), std::string::npos);
}

TEST(Latrace, SaveLoadRoundTrips)
{
    const Latrace t = sampleTrace();
    const std::string path =
        ::testing::TempDir() + "latrace_roundtrip.latrace";
    ASSERT_TRUE(latraceSave(t, path));
    Latrace back;
    std::string error;
    ASSERT_TRUE(latraceLoad(path, &back, &error)) << error;
    EXPECT_TRUE(t == back);
    std::remove(path.c_str());
}

TEST(Latrace, LoadReportsMissingFile)
{
    Latrace out;
    std::string error;
    EXPECT_FALSE(
        latraceLoad("/nonexistent/nowhere.latrace", &out, &error));
    EXPECT_NE(error.find("open"), std::string::npos);
}

TEST(Latrace, CommittedCorpusFileParsesAndMatchesGenerator)
{
    // The committed corpus recording is the generator's output for
    // this exact config — a cross-PR canary: if either the generator
    // or the wire format drifts, the bytes stop matching and this
    // test names the .latrace versioning rules as the fix.
    ServeConfig config;
    config.workers = 4;
    config.tenants = 2;
    config.users = 10'000;
    config.arrivalRatePerSec = 50'000;
    config.duration = 10 * kMsec;
    config.churnInterval = 4 * kMsec;
    config.seed = 7;
    const Latrace generated = generateServeTrace(config);

    Latrace committed;
    std::string error;
    ASSERT_TRUE(latraceLoad(
        std::string(LATR_TEST_CORPUS_DIR) + "/serve_smoke.latrace",
        &committed, &error))
        << error;
    EXPECT_TRUE(generated == committed)
        << "generator output diverged from the committed corpus "
           "recording; see DESIGN.md §9 versioning rules";
    EXPECT_EQ(latraceSerialize(generated),
              latraceSerialize(committed));
}

} // namespace
} // namespace latr
