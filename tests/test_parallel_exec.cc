/**
 * @file
 * The optimistic parallel engine (sim/parallel_exec.{hh,cc}) must be
 * invisible to the simulation: whatever the thread count, commits
 * replay in exact (tick, seq) order and every digest, counter, and
 * oracle verdict matches the classic sequential engine. These tests
 * pin the batch dispatcher's protocol on a bare EventQueue — conflict
 * serialization, barrier fallback, deschedule-mid-batch, interloper
 * ordering — and then the end-to-end equivalence on generated and
 * corpus scripts.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "check/executor.hh"
#include "check/fuzzer.hh"
#include "check/script.hh"
#include "hw/tlb.hh"
#include "machine/machine.hh"
#include "os/kernel.hh"
#include "sim/event_queue.hh"
#include "sim/parallel_exec.hh"

#ifndef LATR_TEST_CORPUS_DIR
#error "LATR_TEST_CORPUS_DIR must point at tests/corpus"
#endif

namespace latr
{
namespace
{

/**
 * A probe event for the dispatcher protocol: declares the footprint
 * it is given, snapshots a shared int in compute(), snapshots it
 * again in process(), and logs its identity into a shared order log.
 */
class ProbeEvent : public Event
{
  public:
    ProbeEvent(int id, int *shared, std::vector<int> *order)
        : id_(id), shared_(shared), order_(order)
    {}

    void declare(const EventFootprint &fp)
    {
        fp_ = fp;
        declared_ = true;
    }

    bool
    footprint(EventFootprint &fp) const override
    {
        if (!declared_)
            return false;
        fp = fp_;
        return true;
    }

    void compute() override { computeSaw_ = *shared_; }

    unsigned computeWeight() const override { return 1; }

    void
    process() override
    {
        commitSaw_ = *shared_;
        *shared_ = id_;
        order_->push_back(id_);
        if (onProcess_)
            onProcess_();
    }

    const char *name() const override { return "probe"; }

    int computeSaw() const { return computeSaw_; }
    int commitSaw() const { return commitSaw_; }

    /** Extra commit-side action (deschedule a peer, schedule more). */
    void onProcess(std::function<void()> fn) { onProcess_ = std::move(fn); }

  private:
    int id_;
    int *shared_;
    std::vector<int> *order_;
    EventFootprint fp_;
    bool declared_ = false;
    int computeSaw_ = -1;
    int commitSaw_ = -1;
    std::function<void()> onProcess_;
};

EventFootprint
coreWrite(CoreId core)
{
    EventFootprint fp;
    fp.writeCore(core);
    return fp;
}

/**
 * A declared heavy event whose compute() holds its lane long enough
 * for the OS to schedule the other lanes — even on a single-CPU
 * host — so claim-distribution tests don't depend on the coordinator
 * losing a race it usually wins.
 */
class SleepyEvent : public Event
{
  public:
    explicit SleepyEvent(const EventFootprint &fp) : fp_(fp) {}

    bool
    footprint(EventFootprint &fp) const override
    {
        fp = fp_;
        return true;
    }

    void
    compute() override
    {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }

    unsigned computeWeight() const override { return 1; }

    void process() override {}

    const char *name() const override { return "sleepy"; }

  private:
    EventFootprint fp_;
};

/**
 * Overlapping footprints must serialize: an event that declares a
 * read of what an earlier same-tick event writes cannot join its
 * batch, so its compute() already sees the earlier commit — and the
 * commit order is (tick, seq) regardless.
 */
TEST(ParallelExec, OverlappingFootprintsSerializeInOrder)
{
    EventQueue q;
    ParallelExecutor exec(4);
    q.setParallelExecutor(&exec);

    int shared = 0;
    std::vector<int> order;
    ProbeEvent writer(1, &shared, &order);
    ProbeEvent reader(2, &shared, &order);
    EventFootprint wfp;
    wfp.writeGlobal(SimResource::FrameAllocator);
    writer.declare(wfp);
    EventFootprint rfp;
    rfp.readGlobal(SimResource::FrameAllocator);
    reader.declare(rfp);

    q.schedule(&writer, 10);
    q.schedule(&reader, 10);
    q.run();

    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    // The reader conflicted with the open batch, so it ran in a later
    // batch: its compute() observed the writer's committed value.
    EXPECT_EQ(reader.computeSaw(), 1);
    EXPECT_EQ(reader.commitSaw(), 1);
}

/**
 * Disjoint footprints batch together: the later event's compute()
 * runs before the earlier event's commit (it sees the pre-batch
 * value), yet the commits still replay in (tick, seq) order.
 */
TEST(ParallelExec, DisjointFootprintsBatchButCommitInOrder)
{
    EventQueue q;
    ParallelExecutor exec(4);
    q.setParallelExecutor(&exec);

    int shared = 0;
    std::vector<int> order;
    ProbeEvent a(1, &shared, &order);
    ProbeEvent b(2, &shared, &order);
    a.declare(coreWrite(0));
    b.declare(coreWrite(1));

    q.schedule(&a, 10);
    q.schedule(&b, 10);
    q.run();

    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    // Same batch: b's compute ran before a's commit.
    EXPECT_EQ(b.computeSaw(), 0);
    // But b's commit ran after a's, in seq order.
    EXPECT_EQ(b.commitSaw(), 1);
}

/**
 * An undeclared event is a barrier: it never joins a batch and runs
 * inline, strictly in (tick, seq) order between its neighbors.
 */
TEST(ParallelExec, UndeclaredEventsForceSequentialFallback)
{
    EventQueue q;
    ParallelExecutor exec(4);
    q.setParallelExecutor(&exec);

    int shared = 0;
    std::vector<int> order;
    ProbeEvent a(1, &shared, &order);
    ProbeEvent barrier(2, &shared, &order); // never declares
    ProbeEvent c(3, &shared, &order);
    a.declare(coreWrite(0));
    c.declare(coreWrite(1));

    q.schedule(&a, 10);
    q.schedule(&barrier, 10);
    q.schedule(&c, 10);
    q.run();

    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    // The barrier saw a's commit; c saw the barrier's.
    EXPECT_EQ(barrier.commitSaw(), 1);
    EXPECT_EQ(c.commitSaw(), 2);
    EXPECT_EQ(exec.stats().barrierEvents, 1u);
}

/**
 * An earlier commit may deschedule a later batch member; the stale
 * member must be skipped exactly as the sequential engine would skip
 * it, even though its compute() may already have run.
 */
TEST(ParallelExec, EarlierCommitDeschedulesLaterMember)
{
    EventQueue q;
    ParallelExecutor exec(4);
    q.setParallelExecutor(&exec);

    int shared = 0;
    std::vector<int> order;
    ProbeEvent a(1, &shared, &order);
    ProbeEvent victim(2, &shared, &order);
    a.declare(coreWrite(0));
    victim.declare(coreWrite(1)); // disjoint: same batch as a
    a.onProcess([&]() { q.deschedule(&victim); });

    q.schedule(&a, 10);
    q.schedule(&victim, 10);
    q.run();

    EXPECT_EQ(order, (std::vector<int>{1}));
    EXPECT_FALSE(victim.scheduled());
    EXPECT_EQ(q.executed(), 1u);
}

/**
 * A commit that schedules new work at an earlier tick than the next
 * batch member: the interloper must run before that member, exactly
 * as the sequential engine interleaves it.
 */
TEST(ParallelExec, InterloperRunsBeforeLaterMember)
{
    EventQueue q;
    ParallelExecutor exec(4);
    q.setParallelExecutor(&exec);

    int shared = 0;
    std::vector<int> order;
    ProbeEvent a(1, &shared, &order);
    ProbeEvent b(2, &shared, &order);
    a.declare(coreWrite(0));
    b.declare(coreWrite(1)); // disjoint, later tick: same batch
    a.onProcess([&]() {
        q.scheduleLambda(15, [&order]() { order.push_back(99); });
    });

    q.schedule(&a, 10);
    q.schedule(&b, 20);
    q.run();

    EXPECT_EQ(order, (std::vector<int>{1, 99, 2}));
}

/**
 * An interloper whose commit writes state the batch declared read
 * was admitted to no batch, so its writes were never conflict-checked
 * against the members: the queue must advance every resource epoch,
 * ensuring no epoch-validated plan survives it. An interloper whose
 * writes miss the batch's read union must leave unrelated epochs
 * alone (only its own declared global writes bump).
 */
TEST(ParallelExec, InterloperWriteIntoBatchReadsInvalidatesPlans)
{
    for (const bool overlapping : {false, true}) {
        EventQueue q;
        ParallelExecutor exec(4);
        q.setParallelExecutor(&exec);

        int shared = 0;
        std::vector<int> order;
        ProbeEvent a(1, &shared, &order);
        ProbeEvent b(2, &shared, &order);
        a.declare(coreWrite(0));
        EventFootprint bfp;
        bfp.writeCore(1);
        bfp.readCore(5);
        b.declare(bfp);
        // a's commit schedules an interloper (tick 15 < b's 20)
        // whose commit writes either the core b declared read or an
        // unrelated one. Neither declares any global write.
        a.onProcess([&q, overlapping]() {
            EventFootprint ifp;
            ifp.writeCore(overlapping ? 5 : 99);
            q.scheduleLambda(15, ifp, []() {});
        });
        q.schedule(&a, 10);
        q.schedule(&b, 20);

        const std::uint64_t before =
            q.resourceEpoch(SimResource::LatrPublish);
        q.run();
        const std::uint64_t bumps =
            q.resourceEpoch(SimResource::LatrPublish) - before;
        EXPECT_EQ(order, (std::vector<int>{1, 2}));
        // run() entry always invalidates once; only the interloper
        // that writes into the batch's read union adds the
        // conservative bump-everything on top.
        EXPECT_EQ(bumps, overlapping ? 2u : 1u)
            << (overlapping ? "overlapping" : "disjoint");
    }
}

/**
 * Many small back-to-back parallel batches — the regression shape
 * for the executor's generation-tagged claim ticket. A worker that
 * wakes late for batch N must never claim (or count completions
 * against) batch N+1: under the old bare-cursor claim that could
 * corrupt computes or deadlock the coordinator; here every commit
 * must land in exact (tick, seq) order and every compute run exactly
 * once. Each tick ends with a reader of every written core, closing
 * the batch so the run crosses hundreds of batch boundaries.
 */
TEST(ParallelExec, BackToBackBatchesKeepClaimsInGeneration)
{
    constexpr int kTicks = 400;
    constexpr int kWriters = 8;

    EventQueue q;
    // forceOffload: the claim-ticket protocol must be exercised even
    // on a single-CPU host, where auto mode would run inline.
    ParallelExecutor exec(4, false, true);
    q.setParallelExecutor(&exec);

    int shared = 0;
    std::vector<int> order;
    std::vector<ProbeEvent> probes;
    probes.reserve(kTicks * (kWriters + 1));
    int id = 0;
    for (int t = 0; t < kTicks; ++t) {
        for (int i = 0; i < kWriters; ++i) {
            probes.emplace_back(id++, &shared, &order);
            probes.back().declare(
                coreWrite(static_cast<CoreId>(i)));
            q.schedule(&probes.back(), 10 + t);
        }
        EventFootprint closer;
        closer.writeCore(static_cast<CoreId>(kWriters));
        for (int i = 0; i < kWriters; ++i)
            closer.readCore(static_cast<CoreId>(i));
        probes.emplace_back(id++, &shared, &order);
        probes.back().declare(closer);
        q.schedule(&probes.back(), 10 + t);
    }
    q.run();

    ASSERT_EQ(order.size(), static_cast<std::size_t>(id));
    for (int i = 0; i < id; ++i)
        EXPECT_EQ(order[i], i);
    std::uint64_t computed = 0;
    for (unsigned lane = 0; lane < exec.threads(); ++lane)
        computed += exec.computedBy(lane);
    EXPECT_EQ(computed, static_cast<std::uint64_t>(id));
    EXPECT_GT(exec.stats().parallelBatches, 100u);
}

/**
 * Heavy computes of one offloaded batch must spread over the worker
 * lanes, not funnel through the coordinator. Each compute blocks its
 * lane long enough that other lanes get scheduled and claim from the
 * shared cursor; afterwards at least two lanes must report claims and
 * the per-lane counters must account for every compute exactly once.
 */
TEST(ParallelExec, ComputeClaimsDistributeAcrossLanes)
{
    constexpr int kEvents = 64;

    EventQueue q;
    // forceOffload: distribution must be observable even on a
    // single-CPU host where auto mode would run the batch inline.
    ParallelExecutor exec(4, false, true);
    q.setParallelExecutor(&exec);

    std::vector<SleepyEvent> events;
    events.reserve(kEvents);
    for (int i = 0; i < kEvents; ++i) {
        events.emplace_back(coreWrite(static_cast<CoreId>(i)));
        q.schedule(&events.back(), 10);
    }
    q.run();

    std::uint64_t total = 0;
    unsigned active = 0;
    for (unsigned lane = 0; lane < exec.threads(); ++lane) {
        total += exec.computedBy(lane);
        if (exec.computedBy(lane) > 0)
            ++active;
    }
    EXPECT_EQ(total, static_cast<std::uint64_t>(kEvents));
    EXPECT_GE(active, 2u);
    EXPECT_EQ(exec.stats().parallelBatches, 1u);
}

/**
 * The IPI delivery path precomputes the target TLB's invalidation
 * walk and replays it only while the TLB's mutation sequence still
 * matches (DESIGN.md §8.4). An interloper touching the target TLB
 * between probe and apply must void the plan, and the fresh
 * invalidateRange() fallback must leave the TLB in exactly the state
 * a never-planned twin reaches.
 */
TEST(ParallelExec, InvalidationPlanGoesStaleOnTargetTlbMutation)
{
    Tlb planned(0, 8, 32, 4);
    Tlb twin(1, 8, 32, 4);
    for (Vpn v = 0; v < 24; ++v) {
        planned.insert(v, 0x1000 + v, 1);
        twin.insert(v, 0x1000 + v, 1);
    }

    Tlb::InvalidationPlan plan;
    planned.planInvalidateRange(4, 11, 1, &plan);
    ASSERT_TRUE(plan.valid);
    // Probing is read-only: the plan it produced is still fresh.
    EXPECT_EQ(plan.seq, planned.mutationSeq());

    // Interloper: any mutation of the target TLB between the probe
    // and the delivery commit (here an insert, as a concurrent fault
    // would do) bumps the sequence and must reject the plan.
    planned.insert(200, 0x1200, 1);
    EXPECT_FALSE(planned.applyInvalidationPlan(plan));
    // The delivery handler's fallback: a fresh walk.
    planned.invalidateRange(4, 11, 1);
    twin.insert(200, 0x1200, 1);
    twin.invalidateRange(4, 11, 1);

    // A plan applied under a matching sequence replays exactly.
    Tlb::InvalidationPlan fresh;
    planned.planInvalidateRange(0, 3, 1, &fresh);
    ASSERT_TRUE(fresh.valid);
    EXPECT_TRUE(planned.applyInvalidationPlan(fresh));
    twin.invalidateRange(0, 3, 1);

    for (Vpn v = 0; v < 24; ++v) {
        Pfn a = 0;
        Pfn b = 0;
        EXPECT_EQ(planned.lookup(v, 1, &a), twin.lookup(v, 1, &b))
            << "vpn " << v;
        EXPECT_EQ(a, b) << "vpn " << v;
    }
}

/**
 * The ABIS sharer harvest offered from a workload's compute() phase
 * substitutes for the commit-time walk only when the free's actual
 * shape is exactly the single page the offer covered; any mismatch
 * discards the offer and harvests fresh. Observed through the policy
 * counters: a consumed empty offer suppresses the remote interrupt a
 * fresh walk would send, a mismatched one does not.
 */
TEST(ParallelExec, AbisHarvestOfferConsumedOnlyOnExactShape)
{
    Machine machine(MachineConfig::commodity2S16C(),
                    PolicyKind::Abis);
    Kernel &kernel = machine.kernel();
    Process *proc = kernel.createProcess("share");
    Task *t0 = kernel.spawnTask(proc, 0);
    Task *t1 = kernel.spawnTask(proc, 1);
    SyscallResult m =
        kernel.mmap(t0, 4 * kPageSize, kProtRead | kProtWrite);
    ASSERT_TRUE(m.ok);

    // Touch every page from both cores so each has sharers {0, 1};
    // refaults pages a previous case freed.
    auto shareAll = [&]() {
        for (std::uint64_t pg = 0; pg < 4; ++pg) {
            kernel.touch(t0, m.addr + pg * kPageSize, true);
            kernel.touch(t1, m.addr + pg * kPageSize, false);
        }
        machine.run(100 * kUsec);
    };
    auto interrupts = [&]() {
        return machine.stats().counterValue("coh.remote_interrupts");
    };
    auto avoided = [&]() {
        return machine.stats().counterValue("abis.shootdowns_avoided");
    };

    // Baseline, no offer: the fresh harvest finds core 1 sharing the
    // page and interrupts it.
    shareAll();
    std::uint64_t before = interrupts();
    kernel.madviseFree(t0, m.addr, kPageSize);
    machine.run(500 * kUsec);
    EXPECT_GT(interrupts(), before);

    // A matching offer is consumed: an empty precomputed mask for
    // exactly this page replaces the walk, so no core is interrupted
    // and the avoidance is counted.
    shareAll();
    before = interrupts();
    const std::uint64_t avoidedBefore = avoided();
    const Vpn vpn1 = pageOf(m.addr + kPageSize);
    machine.policy().offerSharerHarvest(&t0->mm(), vpn1, vpn1,
                                        CpuMask());
    kernel.madviseFree(t0, m.addr + kPageSize, kPageSize);
    machine.run(500 * kUsec);
    EXPECT_EQ(interrupts(), before);
    EXPECT_EQ(avoided(), avoidedBefore + 1);

    // A stale offer naming a different range is discarded: the fresh
    // walk still finds core 1 and interrupts it.
    shareAll();
    before = interrupts();
    const Vpn vpn2 = pageOf(m.addr + 2 * kPageSize);
    machine.policy().offerSharerHarvest(&t0->mm(), vpn2 + 1, vpn2 + 1,
                                        CpuMask());
    kernel.madviseFree(t0, m.addr + 2 * kPageSize, kPageSize);
    machine.run(500 * kUsec);
    EXPECT_GT(interrupts(), before);
}

/**
 * Pooled lambda wrappers follow the executor's lanes: attaching an
 * N-lane executor gives the queue N freelists, every wrapper a batch
 * commits is recycled (to the lane that computed it), and detaching
 * the executor folds the worker-lane pools back into lane 0 instead
 * of dropping the warm wrappers.
 */
TEST(ParallelExec, LambdaPoolsFollowExecutorLanes)
{
    constexpr int kLambdas = 24;

    EventQueue q;
    EXPECT_EQ(q.lambdaLanes(), 1u);
    ParallelExecutor exec(4, false, true);
    q.setParallelExecutor(&exec);
    EXPECT_EQ(q.lambdaLanes(), 4u);

    // Two heavy events make the batch eligible for offload, so
    // worker lanes may claim (and later receive) lambda wrappers.
    SleepyEvent heavyA(coreWrite(100));
    SleepyEvent heavyB(coreWrite(101));
    q.schedule(&heavyA, 10);
    q.schedule(&heavyB, 10);
    int ran = 0;
    for (int i = 0; i < kLambdas; ++i)
        q.scheduleLambda(10, coreWrite(static_cast<CoreId>(i)),
                         [&ran]() { ++ran; });
    q.run();
    EXPECT_EQ(ran, kLambdas);

    std::size_t pooled = 0;
    for (unsigned lane = 0; lane < q.lambdaLanes(); ++lane)
        pooled += q.lambdaPoolSize(lane);
    EXPECT_EQ(pooled, static_cast<std::size_t>(kLambdas));

    q.setParallelExecutor(nullptr);
    EXPECT_EQ(q.lambdaLanes(), 1u);
    EXPECT_EQ(q.lambdaPoolSize(0), static_cast<std::size_t>(kLambdas));
}

/** The batched engine honors the run limit like the sequential one. */
TEST(ParallelExec, RunLimitAdvancesNow)
{
    EventQueue q;
    ParallelExecutor exec(2);
    q.setParallelExecutor(&exec);

    int shared = 0;
    std::vector<int> order;
    ProbeEvent late(1, &shared, &order);
    late.declare(coreWrite(0));
    q.schedule(&late, 1000);

    EXPECT_EQ(q.run(100), 0u);
    EXPECT_EQ(q.now(), 100u);
    EXPECT_TRUE(late.scheduled());
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1}));
}

Script
loadCorpus(const std::string &name)
{
    Script script;
    std::string err;
    const std::string path =
        std::string(LATR_TEST_CORPUS_DIR) + "/" + name;
    EXPECT_TRUE(loadScriptFile(path, &script, &err))
        << path << ": " << err;
    return script;
}

void
expectEngineEquivalence(const Script &script, const char *label)
{
    for (PolicyKind kind : allPolicyKinds()) {
        ExecOptions seq;
        const RunResult base = runScript(script, kind, seq);
        for (unsigned threads : {1u, 4u}) {
            ExecOptions par;
            par.simThreads = threads;
            const RunResult run = runScript(script, kind, par);
            const DiffResult diff = diffStates(base, run);
            EXPECT_TRUE(diff.equivalent)
                << label << " policy " << policyKindName(kind)
                << " sim-threads " << threads << ": "
                << diff.divergence;
            EXPECT_EQ(base.invariantViolations, run.invariantViolations)
                << label << " policy " << policyKindName(kind)
                << " sim-threads " << threads;
            EXPECT_EQ(base.stalenessViolations, run.stalenessViolations)
                << label << " policy " << policyKindName(kind)
                << " sim-threads " << threads;
            EXPECT_EQ(base.latrFallbackIpis, run.latrFallbackIpis)
                << label << " policy " << policyKindName(kind)
                << " sim-threads " << threads;
        }
    }
}

/**
 * Generated scripts on the commodity machine: the parallel engine at
 * 1 and 4 threads must match the sequential engine on every
 * architectural digest and oracle verdict, under all four policies.
 */
TEST(ParallelExecEquivalence, SmallMachineDigestsMatchSequential)
{
    for (std::uint64_t seed = 300; seed < 306; ++seed) {
        GenOptions gen;
        gen.numOps = 200;
        gen.pcid = (seed & 1) != 0;
        const Script script = generateScript(seed, gen);
        expectEngineEquivalence(
            script, ("seed " + std::to_string(seed)).c_str());
    }
}

/** Same on the 8-socket/120-core machine (CpuMask word seams). */
TEST(ParallelExecEquivalence, LargeMachineDigestsMatchSequential)
{
    for (std::uint64_t seed = 400; seed < 403; ++seed) {
        GenOptions gen;
        gen.numOps = 150;
        gen.large = true;
        gen.pcid = (seed & 1) != 0;
        const Script script = generateScript(seed, gen);
        expectEngineEquivalence(
            script, ("large seed " + std::to_string(seed)).c_str());
    }
}

/**
 * The hand-written 120-core corpus scripts — the word-boundary and
 * machine-wide sync-shootdown pins — must replay identically on the
 * parallel engine.
 */
TEST(ParallelExecEquivalence, WordSeamCorpusMatchesSequential)
{
    for (const char *name : {"large_word_boundary.script",
                             "large_sync_shootdown.script"}) {
        Script script = loadCorpus(name);
        ASSERT_FALSE(script.ops.empty());
        expectEngineEquivalence(script, name);
    }
}

/**
 * White-box counter equality on a live machine: the threaded engine
 * must produce the same sweep counts, sweep matches, and per-core
 * stolen time as the sequential engine — the quantities the LATR
 * sweep plan could most plausibly skew.
 */
TEST(ParallelExecEquivalence, LatrCountersMatchSequential)
{
    std::uint64_t sweeps[2];
    std::uint64_t matches[2];
    std::uint64_t stolen[2];
    std::uint64_t events[2];
    for (int mode = 0; mode < 2; ++mode) {
        MachineConfig config = MachineConfig::largeNuma8S120C();
        config.simThreads = mode == 1 ? 4 : 0;
        Machine machine(config, PolicyKind::Latr);
        Kernel &kernel = machine.kernel();
        Process *proc = kernel.createProcess("pub");
        Task *pub = kernel.spawnTask(proc, 0);
        Process *fill = kernel.createProcess("fill");
        for (CoreId c = 1; c < machine.topo().totalCores(); ++c)
            kernel.spawnTask(fill, c);
        SyscallResult m =
            kernel.mmap(pub, 8 * kPageSize, kProtRead | kProtWrite);
        ASSERT_TRUE(m.ok);
        for (std::uint64_t pg = 0; pg < 8; ++pg)
            kernel.touch(pub, m.addr + pg * kPageSize, true);
        for (unsigned iter = 0; iter < 20; ++iter) {
            kernel.numaSample(pub, m.addr / kPageSize + iter % 8);
            machine.run(500 * kUsec);
        }
        sweeps[mode] = machine.stats().counterValue("latr.sweeps");
        matches[mode] =
            machine.stats().counterValue("latr.sweep_matches");
        stolen[mode] = 0;
        for (CoreId c = 0; c < machine.topo().totalCores(); ++c)
            stolen[mode] += static_cast<std::uint64_t>(
                kernel.scheduler().takeStolen(c));
        events[mode] = machine.queue().executed();
        EXPECT_GT(sweeps[mode], 1000u);
    }
    EXPECT_EQ(sweeps[0], sweeps[1]);
    EXPECT_EQ(matches[0], matches[1]);
    EXPECT_EQ(stolen[0], stolen[1]);
    EXPECT_EQ(events[0], events[1]);
}

} // namespace
} // namespace latr
