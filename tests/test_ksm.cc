// Tests for the same-page-merging (KSM) daemon.

#include <gtest/gtest.h>

#include "numa/ksm.hh"
#include "test_helpers.hh"

namespace latr
{
namespace
{

class KsmPolicies : public ::testing::TestWithParam<PolicyKind>
{
  protected:
    KsmPolicies()
        : machine(test::tinyConfig(), GetParam()),
          kernel(machine.kernel())
    {
        process = kernel.createProcess("app");
        t0 = kernel.spawnTask(process, 0);
        t1 = kernel.spawnTask(process, 1);
        machine.run(kUsec);
    }

    /** Map and fault @p pages pages, tagging them all @p tag. */
    Addr
    taggedRegion(std::uint64_t pages, std::uint64_t tag)
    {
        SyscallResult m = kernel.mmap(t0, pages * kPageSize,
                                      kProtRead | kProtWrite);
        test::touchRange(kernel, t0, m.addr, pages * kPageSize);
        for (std::uint64_t p = 0; p < pages; ++p)
            process->mm().setContentTag(pageOf(m.addr) + p, tag);
        return m.addr;
    }

    Machine machine;
    Kernel &kernel;
    Process *process = nullptr;
    Task *t0 = nullptr;
    Task *t1 = nullptr;
};

TEST_P(KsmPolicies, IdenticalPagesMergeOntoOneFrame)
{
    Addr region = taggedRegion(8, 0xC0FFEE);
    ASSERT_EQ(machine.frames().allocatedFrames(), 8u);

    KsmDaemon ksm(kernel, 3 * kMsec, 16);
    ksm.track(process);
    ksm.start();
    machine.run(10 * kMsec);
    ksm.stop();
    machine.run(8 * kMsec); // lazy frame release under LATR

    EXPECT_EQ(ksm.stats().merges, 7u);
    EXPECT_EQ(machine.frames().allocatedFrames(), 1u);
    // All eight pages resolve to the same frame.
    const Pfn shared =
        process->mm().pageTable().find(pageOf(region))->pfn;
    for (unsigned p = 1; p < 8; ++p)
        EXPECT_EQ(process->mm()
                      .pageTable()
                      .find(pageOf(region) + p)
                      ->pfn,
                  shared);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_P(KsmPolicies, DistinctTagsAreNotMerged)
{
    taggedRegion(4, 0xA);
    taggedRegion(4, 0xB);
    KsmDaemon ksm(kernel, 3 * kMsec, 16);
    ksm.track(process);
    ksm.start();
    machine.run(10 * kMsec);
    ksm.stop();
    machine.run(8 * kMsec);
    // One survivor per tag: 3 + 3 = 6 merges, 2 frames left.
    EXPECT_EQ(ksm.stats().merges, 6u);
    EXPECT_EQ(machine.frames().allocatedFrames(), 2u);
}

TEST_P(KsmPolicies, UntaggedPagesAreLeftAlone)
{
    SyscallResult m = kernel.mmap(t0, 4 * kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, 4 * kPageSize);
    KsmDaemon ksm(kernel, 3 * kMsec, 16);
    ksm.track(process);
    ksm.start();
    machine.run(10 * kMsec);
    ksm.stop();
    EXPECT_EQ(ksm.stats().merges, 0u);
    EXPECT_EQ(machine.frames().allocatedFrames(), 4u);
}

TEST_P(KsmPolicies, WriteAfterMergeBreaksCow)
{
    Addr region = taggedRegion(2, 0xDD);
    KsmDaemon ksm(kernel, 3 * kMsec, 16);
    ksm.track(process);
    ksm.start();
    machine.run(10 * kMsec);
    ksm.stop();
    machine.run(8 * kMsec);
    ASSERT_EQ(machine.frames().allocatedFrames(), 1u);

    // A write to one copy must un-share it.
    TouchResult w = kernel.touch(t0, region + kPageSize, true);
    EXPECT_EQ(w.kind, TouchKind::CowBreak);
    machine.run(kMsec);
    EXPECT_EQ(machine.frames().allocatedFrames(), 2u);
    // The two pages now map different frames again.
    EXPECT_NE(process->mm().pageTable().find(pageOf(region))->pfn,
              process->mm()
                  .pageTable()
                  .find(pageOf(region) + 1)
                  ->pfn);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_P(KsmPolicies, StaleReadersOfTheDuplicateAreSafe)
{
    // A second core caches the duplicate's translation; the merge
    // frees the duplicate frame lazily (under LATR) — safe because
    // the content is identical and writes were revoked first.
    Addr region = taggedRegion(2, 0xEE);
    test::touchRange(kernel, t1, region, 2 * kPageSize, false);
    KsmDaemon ksm(kernel, 3 * kMsec, 16);
    ksm.track(process);
    ksm.start();
    machine.run(10 * kMsec);
    ksm.stop();
    machine.run(8 * kMsec);
    EXPECT_EQ(machine.frames().allocatedFrames(), 1u);
    EXPECT_EQ(machine.checker()->violations(), 0u)
        << machine.checker()->firstViolation();
    // Both cores still read both pages fine.
    EXPECT_NE(kernel.touch(t1, region + kPageSize, false).kind,
              TouchKind::SegFault);
}

TEST_P(KsmPolicies, MergeBatchIsBounded)
{
    taggedRegion(16, 0xBB);
    KsmDaemon ksm(kernel, 3 * kMsec, 4);
    ksm.track(process);
    ksm.start();
    machine.run(4 * kMsec); // exactly one scan round
    EXPECT_LE(ksm.stats().merges, 4u);
    ksm.stop();
}

INSTANTIATE_TEST_SUITE_P(
    Policies, KsmPolicies,
    ::testing::Values(PolicyKind::LinuxSync, PolicyKind::Latr),
    [](const ::testing::TestParamInfo<PolicyKind> &info) {
        return policyKindName(info.param);
    });

TEST(KsmLatr, DuplicateFrameFreeIsLazyUnderLatr)
{
    Machine machine(test::tinyConfig(), PolicyKind::Latr);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("app");
    Task *t0 = kernel.spawnTask(p, 0);
    machine.run(kUsec);

    SyscallResult m = kernel.mmap(t0, 2 * kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, 2 * kPageSize);
    p->mm().setContentTag(pageOf(m.addr), 0x11);
    p->mm().setContentTag(pageOf(m.addr) + 1, 0x11);

    KsmDaemon ksm(kernel, 2 * kMsec, 4);
    ksm.track(p);
    ksm.start();
    machine.run(2 * kMsec + 100 * kUsec); // one scan: merge happened
    ksm.stop();
    ASSERT_EQ(ksm.stats().merges, 1u);
    // The duplicate frame is parked on the lazy list, not yet freed.
    EXPECT_EQ(machine.frames().allocatedFrames(), 2u);
    machine.run(6 * kMsec);
    EXPECT_EQ(machine.frames().allocatedFrames(), 1u);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

} // namespace
} // namespace latr
