// Tests for the ABIS access-bit-tracking baseline.

#include <gtest/gtest.h>

#include "test_helpers.hh"

namespace latr
{
namespace
{

struct AbisFixture : public ::testing::Test
{
    AbisFixture()
        : machine(test::tinyConfig(), PolicyKind::Abis),
          kernel(machine.kernel())
    {
        process = kernel.createProcess("app");
        t0 = kernel.spawnTask(process, 0);
        t1 = kernel.spawnTask(process, 1);
        t2 = kernel.spawnTask(process, 2);
    }

    Machine machine;
    Kernel &kernel;
    Process *process = nullptr;
    Task *t0 = nullptr;
    Task *t1 = nullptr;
    Task *t2 = nullptr;
};

TEST_F(AbisFixture, PrivatePageUnmapSendsNoIpis)
{
    // Only the initiator touched the page: the access-bit harvest
    // finds no remote sharer and the IPI is avoided entirely.
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, kPageSize);
    const std::uint64_t ipis = machine.ipi().ipisSent();
    SyscallResult u = kernel.munmap(t0, m.addr, kPageSize);
    ASSERT_TRUE(u.ok);
    EXPECT_EQ(machine.ipi().ipisSent(), ipis);
    EXPECT_GT(machine.stats().counterValue("abis.shootdowns_avoided"),
              0u);
}

TEST_F(AbisFixture, SharedPageUnmapTargetsOnlySharers)
{
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, kPageSize);
    test::touchRange(kernel, t1, m.addr, kPageSize);
    // t2 is resident (scheduled) but never touched the page.
    const std::uint64_t ipis = machine.ipi().ipisSent();
    kernel.munmap(t0, m.addr, kPageSize);
    EXPECT_EQ(machine.ipi().ipisSent(), ipis + 1); // only core 1
    machine.run(100 * kUsec);
    EXPECT_FALSE(machine.scheduler().tlbOf(1).probe(pageOf(m.addr), 0));
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_F(AbisFixture, TrackingCostsShowOnFaultsAndUnmaps)
{
    EXPECT_GT(machine.policy().minorFaultOverhead(), 0u);
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    // Fault latency includes the tracking overhead.
    TouchResult t = kernel.touch(t0, m.addr, true);
    EXPECT_GE(t.latency,
              machine.config().cost.minorFault +
                  machine.config().cost.abisPerFault);
    // Unmap pays the access-bit scan even with no sharers.
    SyscallResult u = kernel.munmap(t0, m.addr, kPageSize);
    EXPECT_GE(u.shootdown, machine.config().cost.abisPerPageScan);
}

TEST_F(AbisFixture, SharerSetIsConservativeAcrossEvictions)
{
    // Once recorded, a sharer stays recorded even if its TLB entry
    // was evicted long ago — extra IPIs, never missing ones.
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t1, m.addr, kPageSize);
    machine.scheduler().tlbOf(1).flushAll();
    const std::uint64_t ipis = machine.ipi().ipisSent();
    kernel.munmap(t0, m.addr, kPageSize);
    EXPECT_EQ(machine.ipi().ipisSent(), ipis + 1);
}

TEST_F(AbisFixture, IdleSharerIsNotTargeted)
{
    // A sharer whose core went idle fell out of the residency mask;
    // ABIS clips its sharer set to residency.
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t1, m.addr, kPageSize);
    kernel.exitTask(t1);
    const std::uint64_t ipis = machine.ipi().ipisSent();
    kernel.munmap(t0, m.addr, kPageSize);
    EXPECT_EQ(machine.ipi().ipisSent(), ipis);
}

TEST_F(AbisFixture, NumaSampleTargetsSharersOnly)
{
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, kPageSize);
    test::touchRange(kernel, t1, m.addr, kPageSize);
    const std::uint64_t ipis = machine.ipi().ipisSent();
    kernel.numaSample(t0, pageOf(m.addr));
    EXPECT_EQ(machine.ipi().ipisSent(), ipis + 1); // core 1 only
    EXPECT_TRUE(
        process->mm().pageTable().find(pageOf(m.addr))->protNone());
}

TEST_F(AbisFixture, CapabilitiesMatchTable2)
{
    PolicyCapabilities caps = machine.policy().capabilities();
    EXPECT_FALSE(caps.asynchronous);
    EXPECT_FALSE(caps.nonIpiBased);
    EXPECT_FALSE(caps.noRemoteCoreInvolvement);
    EXPECT_TRUE(caps.noHardwareChanges);
}

} // namespace
} // namespace latr
