// Tests for the LATR policy — the paper's mechanism (sections 3-4):
// lazy shootdown via per-core states, sweeps at ticks/switches, lazy
// reclamation, fallback IPIs, lazy migration unmap, and the race
// semantics of section 4.4.

#include <gtest/gtest.h>

#include <cstring>

#include "test_helpers.hh"
#include "tlbcoh/latr_policy.hh"
#include "trace/trace.hh"

namespace latr
{
namespace
{

struct LatrFixture : public ::testing::Test
{
    LatrFixture()
        : machine(test::tinyConfig(), PolicyKind::Latr),
          kernel(machine.kernel()),
          policy(static_cast<LatrPolicy *>(&machine.policy()))
    {
        process = kernel.createProcess("app");
        t0 = kernel.spawnTask(process, 0);
        t1 = kernel.spawnTask(process, 1);
        t4 = kernel.spawnTask(process, 4); // other socket
        // Start ticks.
        machine.run(kUsec);
    }

    /** mmap + touch on a set of tasks. */
    Addr
    sharedPage(std::initializer_list<Task *> tasks)
    {
        SyscallResult m = kernel.mmap(t0, kPageSize,
                                      kProtRead | kProtWrite);
        for (Task *t : tasks)
            test::touchRange(kernel, t, m.addr, kPageSize);
        return m.addr;
    }

    Machine machine;
    Kernel &kernel;
    LatrPolicy *policy;
    Process *process = nullptr;
    Task *t0 = nullptr;
    Task *t1 = nullptr;
    Task *t4 = nullptr;
};

TEST_F(LatrFixture, MunmapSendsNoIpisAndReturnsFast)
{
    Addr addr = sharedPage({t0, t1, t4});
    const std::uint64_t ipis = machine.ipi().ipisSent();
    SyscallResult u = kernel.munmap(t0, addr, kPageSize);
    ASSERT_TRUE(u.ok);
    EXPECT_EQ(machine.ipi().ipisSent(), ipis); // zero IPIs
    // Shootdown contribution is just the state save (~132 ns).
    EXPECT_LE(u.shootdown, 200u);
    EXPECT_EQ(policy->activeStates(), 1u);
    EXPECT_EQ(machine.stats().counterValue("latr.states_saved"), 1u);
}

TEST_F(LatrFixture, RemoteEntriesDieAtNextTick)
{
    Addr addr = sharedPage({t0, t1, t4});
    kernel.munmap(t0, addr, kPageSize);
    EXPECT_TRUE(machine.scheduler().tlbOf(1).probe(pageOf(addr), 0));
    EXPECT_TRUE(machine.scheduler().tlbOf(4).probe(pageOf(addr), 0));
    // One full tick interval later, every core has swept.
    machine.run(machine.config().cost.tickInterval + 10 * kUsec);
    EXPECT_FALSE(machine.scheduler().tlbOf(1).probe(pageOf(addr), 0));
    EXPECT_FALSE(machine.scheduler().tlbOf(4).probe(pageOf(addr), 0));
    EXPECT_EQ(policy->activeStates(), 0u); // all bits cleared
    EXPECT_EQ(policy->pendingReclaim(), 1u);
}

TEST_F(LatrFixture, ReclamationWaitsTwoTickPeriods)
{
    Addr addr = sharedPage({t0, t1});
    kernel.munmap(t0, addr, kPageSize);
    EXPECT_EQ(machine.frames().allocatedFrames(), 1u);
    machine.run(1 * kMsec); // one period: not yet
    EXPECT_EQ(machine.frames().allocatedFrames(), 1u);
    machine.run(2 * kMsec); // past 2 ms since save
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(policy->pendingReclaim(), 0u);
    EXPECT_GT(machine.stats().counterValue("latr.reclaimed_pages"), 0u);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_F(LatrFixture, VirtualRangeHeldBackUntilReclaim)
{
    Addr addr = sharedPage({t0, t1});
    kernel.munmap(t0, addr, kPageSize);
    EXPECT_TRUE(process->mm().rangeHeldBack(addr, addr + kPageSize));
    // An immediate mmap must not reuse the held-back range.
    SyscallResult m2 = kernel.mmap(t0, kPageSize,
                                   kProtRead | kProtWrite);
    EXPECT_NE(m2.addr, addr);
    machine.run(4 * kMsec);
    EXPECT_FALSE(process->mm().rangeHeldBack(addr, addr + kPageSize));
    // Now the first-fit allocator may hand it out again.
    SyscallResult m3 = kernel.mmap(t0, kPageSize,
                                   kProtRead | kProtWrite);
    EXPECT_EQ(m3.addr, addr);
}

TEST_F(LatrFixture, StaleReadsServeOldPageThenFault)
{
    // Section 4.4: an application bug touching freed memory reads
    // the old page until the sweep, then segfaults.
    Addr addr = sharedPage({t0, t1});
    const Pfn old_pfn = kernel.touch(t1, addr, false).pfn;
    kernel.munmap(t0, addr, kPageSize);
    TouchResult before = kernel.touch(t1, addr, false);
    EXPECT_EQ(before.kind, TouchKind::TlbHit);
    EXPECT_EQ(before.pfn, old_pfn); // still the old frame
    machine.run(machine.config().cost.tickInterval + 10 * kUsec);
    TouchResult after = kernel.touch(t1, addr, false);
    EXPECT_EQ(after.kind, TouchKind::SegFault);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_F(LatrFixture, StaleWritesNeverReachReusedFrames)
{
    // The invariant in action: the stale-writable window never
    // overlaps the frame's next life.
    Addr addr = sharedPage({t0, t1});
    kernel.munmap(t0, addr, kPageSize);
    kernel.touch(t1, addr, true); // stale write, old frame, allowed
    machine.run(6 * kMsec);       // reclaim
    // New allocation reuses the frame; checker saw no overlap.
    SyscallResult m2 = kernel.mmap(t0, kPageSize,
                                   kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m2.addr, kPageSize);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_F(LatrFixture, ContextSwitchAlsoSweeps)
{
    Addr addr = sharedPage({t0, t1});
    kernel.munmap(t0, addr, kPageSize);
    ASSERT_EQ(policy->activeStates(), 1u);
    // A context switch on core 1 sweeps without waiting for a tick.
    machine.scheduler().contextSwitch(1);
    EXPECT_FALSE(machine.scheduler().tlbOf(1).probe(pageOf(addr), 0));
    const std::uint64_t sweeps =
        machine.stats().counterValue("latr.sweeps");
    EXPECT_GT(sweeps, 0u);
}

TEST_F(LatrFixture, RingOverflowFallsBackToIpis)
{
    // Saturate core 0's ring within one reclamation window.
    const unsigned ring = machine.config().latrStatesPerCore;
    std::vector<Addr> addrs;
    for (unsigned i = 0; i < ring + 8; ++i) {
        Addr a = sharedPage({t0, t1});
        addrs.push_back(a);
        kernel.munmap(t0, a, kPageSize);
    }
    EXPECT_GT(machine.stats().counterValue("latr.fallback_ipis"), 0u);
    EXPECT_GT(machine.ipi().ipisSent(), 0u);
    machine.run(8 * kMsec);
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_F(LatrFixture, ExactRingBoundaryFallsBackOnNextFree)
{
    // Fill exactly latrStatesPerCore entries without letting any
    // time pass (no sweep, no reclaim): every save must land in a
    // slot, and only the ring+1'th free crosses into the fallback
    // path — one counter bump, IPIs on the wire, and the
    // latr.ring_full_fallback trace instant.
    machine.trace().setEnabled(true);
    const unsigned ring = machine.config().latrStatesPerCore;
    for (unsigned i = 0; i < ring; ++i) {
        Addr a = sharedPage({t0, t1});
        kernel.munmap(t0, a, kPageSize);
    }
    EXPECT_EQ(machine.stats().counterValue("latr.states_saved"),
              ring);
    EXPECT_EQ(machine.stats().counterValue("latr.fallback_ipis"), 0u);
    for (const TraceRecord &rec : machine.trace().snapshot())
        EXPECT_STRNE(rec.name, "latr.ring_full_fallback");

    const std::uint64_t ipis = machine.ipi().ipisSent();
    Addr a = sharedPage({t0, t1});
    kernel.munmap(t0, a, kPageSize);
    EXPECT_EQ(machine.stats().counterValue("latr.states_saved"),
              ring);
    EXPECT_EQ(machine.stats().counterValue("latr.fallback_ipis"), 1u);
    EXPECT_GT(machine.ipi().ipisSent(), ipis);
    bool saw = false;
    for (const TraceRecord &rec : machine.trace().snapshot())
        if (rec.kind == TraceKind::Instant &&
            std::strcmp(rec.name, "latr.ring_full_fallback") == 0)
            saw = true;
    EXPECT_TRUE(saw);

    machine.run(8 * kMsec);
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_F(LatrFixture, AllocCursorWrapsIntoReclaimedMidRingSlots)
{
    // Pin the slot-reuse order: after the cursor has traversed the
    // whole ring and a reclaim pass has retired the first wave
    // mid-ring, the next saves wrap around and fill slots 0, 1, 2
    // in cursor order — not the still-pending upper half.
    const unsigned ring = machine.config().latrStatesPerCore;
    ASSERT_EQ(ring % 2, 0u);
    for (unsigned i = 0; i < ring / 2; ++i) {
        Addr a = sharedPage({t0, t1}); // wave A: slots 0..ring/2-1
        kernel.munmap(t0, a, kPageSize);
    }
    machine.run(1 * kMsec);
    for (unsigned i = 0; i < ring / 2; ++i) {
        Addr a = sharedPage({t0, t1}); // wave B: the upper half,
        kernel.munmap(t0, a, kPageSize); // cursor wraps to 0
    }
    // Past wave A's reclaim deadline (save + 2 ms), short of wave
    // B's: the lower half is Empty again, the upper half is not.
    machine.run(1400 * kUsec);
    const auto &r0 = policy->ringOf(0);
    for (unsigned i = 0; i < ring / 2; ++i)
        EXPECT_EQ(r0[i].phase, LatrStatePhase::Empty) << "slot " << i;
    unsigned upperLive = 0;
    for (unsigned i = ring / 2; i < ring; ++i)
        if (r0[i].phase != LatrStatePhase::Empty)
            ++upperLive;
    EXPECT_GT(upperLive, 0u);

    Addr fresh[3];
    for (int i = 0; i < 3; ++i) {
        fresh[i] = sharedPage({t0, t1});
        kernel.munmap(t0, fresh[i], kPageSize);
    }
    for (int i = 0; i < 3; ++i) {
        EXPECT_NE(r0[i].phase, LatrStatePhase::Empty) << "slot " << i;
        EXPECT_EQ(r0[i].startVpn, pageOf(fresh[i])) << "slot " << i;
        EXPECT_EQ(r0[i].kind, LatrStateKind::Free);
    }
    EXPECT_EQ(machine.stats().counterValue("latr.fallback_ipis"), 0u);
    machine.run(8 * kMsec);
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_F(LatrFixture, MadviseFreeIsLazyAndRefaultsZeroFilled)
{
    // The lazycache discard path: MADV_FREE defers like munmap but
    // keeps the VMA, so a later touch is a fresh minor fault — the
    // free-then-reuse cycle in one page.
    Addr addr = sharedPage({t0, t1});
    SyscallResult a = kernel.madviseFree(t0, addr, kPageSize);
    ASSERT_TRUE(a.ok);
    EXPECT_LE(a.shootdown, 200u);
    EXPECT_EQ(policy->activeStates(), 1u);
    EXPECT_EQ(machine.stats().counterValue("sys.madvise_free"), 1u);
    EXPECT_FALSE(process->mm().rangeHeldBack(addr, addr + kPageSize));
    machine.run(6 * kMsec);
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(kernel.touch(t0, addr, true).kind,
              TouchKind::MinorFault);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_F(LatrFixture, SlotsRecycleAfterReclaim)
{
    const unsigned ring = machine.config().latrStatesPerCore;
    // Fill half the ring, reclaim, fill again: no fallback ever.
    for (int round = 0; round < 4; ++round) {
        for (unsigned i = 0; i < ring / 2; ++i) {
            Addr a = sharedPage({t0, t1});
            kernel.munmap(t0, a, kPageSize);
        }
        machine.run(6 * kMsec);
    }
    EXPECT_EQ(machine.stats().counterValue("latr.fallback_ipis"), 0u);
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
}

TEST_F(LatrFixture, SyncRequestedOverrideUsesIpis)
{
    // Paper section 7: a per-call opt-out for use-after-free
    // detectors and friends.
    Addr addr = sharedPage({t0, t1});
    const std::uint64_t ipis = machine.ipi().ipisSent();
    SyscallResult u = kernel.munmap(t0, addr, kPageSize, true);
    ASSERT_TRUE(u.ok);
    EXPECT_GT(machine.ipi().ipisSent(), ipis);
    machine.run(100 * kUsec);
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
}

TEST_F(LatrFixture, MadviseIsLazyWithoutVaHoldback)
{
    Addr addr = sharedPage({t0, t1});
    SyscallResult a = kernel.madvise(t0, addr, kPageSize);
    ASSERT_TRUE(a.ok);
    EXPECT_LE(a.shootdown, 200u);
    EXPECT_FALSE(process->mm().rangeHeldBack(addr, addr + kPageSize));
    machine.run(6 * kMsec);
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    // VMA survived: refault allowed.
    EXPECT_EQ(kernel.touch(t0, addr, true).kind,
              TouchKind::MinorFault);
}

TEST_F(LatrFixture, MprotectStaysSynchronous)
{
    // Table 1: permission changes cannot be lazy, even under LATR.
    Addr addr = sharedPage({t0, t1, t4});
    const std::uint64_t ipis = machine.ipi().ipisSent();
    SyscallResult pr = kernel.mprotect(t0, addr, kPageSize, kProtRead);
    ASSERT_TRUE(pr.ok);
    EXPECT_GT(machine.ipi().ipisSent(), ipis);
    EXPECT_GT(pr.shootdown, kUsec);
}

TEST_F(LatrFixture, NumaSampleDefersPteChange)
{
    Addr addr = sharedPage({t0, t1, t4});
    Duration d = kernel.numaSample(t0, pageOf(addr));
    EXPECT_LE(d, 200u); // just the state save
    // PTE untouched until the first sweep.
    EXPECT_FALSE(
        process->mm().pageTable().find(pageOf(addr))->protNone());
    // Accesses before the sweep proceed uninterrupted.
    EXPECT_EQ(kernel.touch(t1, addr, false).kind, TouchKind::TlbHit);
    machine.run(machine.config().cost.tickInterval + 10 * kUsec);
    // First sweeping core cleared the PTE; all TLB entries are gone.
    EXPECT_TRUE(
        process->mm().pageTable().find(pageOf(addr))->protNone());
    EXPECT_FALSE(machine.scheduler().tlbOf(0).probe(pageOf(addr), 0));
    EXPECT_FALSE(machine.scheduler().tlbOf(1).probe(pageOf(addr), 0));
    EXPECT_FALSE(machine.scheduler().tlbOf(4).probe(pageOf(addr), 0));
}

TEST_F(LatrFixture, NumaSampleGatesTheSampledPageFault)
{
    Addr addr = sharedPage({t0, t1, t4});
    Addr other = sharedPage({t0, t1});
    kernel.numaSample(t0, pageOf(addr));
    // The sampled page's fault is gated until every core has swept
    // (at most one tick interval + slack)...
    const Tick ready =
        machine.policy().numaSampleReadyAt(&process->mm(),
                                           pageOf(addr));
    EXPECT_GE(ready,
              machine.now() + machine.config().cost.tickInterval);
    // ...but unrelated pages are not gated at all.
    EXPECT_EQ(machine.policy().numaSampleReadyAt(&process->mm(),
                                                 pageOf(other)),
              0u);
    // Once all cores swept, the gate drops.
    machine.run(machine.config().cost.tickInterval + 10 * kUsec);
    EXPECT_EQ(machine.policy().numaSampleReadyAt(&process->mm(),
                                                 pageOf(addr)),
              0u);
}

TEST_F(LatrFixture, LazyBytesAccounting)
{
    EXPECT_EQ(policy->lazyBytes(), 0u);
    Addr a = sharedPage({t0, t1});
    Addr b = sharedPage({t0, t1});
    kernel.munmap(t0, a, kPageSize);
    kernel.munmap(t0, b, kPageSize);
    EXPECT_EQ(policy->lazyBytes(), 2 * kPageSize);
    machine.run(6 * kMsec);
    EXPECT_EQ(policy->lazyBytes(), 0u);
}

TEST_F(LatrFixture, RingIntrospection)
{
    Addr a = sharedPage({t0, t1});
    kernel.munmap(t0, a, kPageSize);
    const auto &ring = policy->ringOf(0);
    EXPECT_EQ(ring.size(), machine.config().latrStatesPerCore);
    int active = 0;
    for (const LatrState &s : ring)
        if (s.phase == LatrStatePhase::Active) {
            ++active;
            EXPECT_EQ(s.kind, LatrStateKind::Free);
            EXPECT_EQ(s.startVpn, pageOf(a));
            EXPECT_EQ(s.owner, 0u);
            EXPECT_TRUE(s.cpuMask.test(1));
            EXPECT_FALSE(s.cpuMask.test(0)); // initiator excluded
        }
    EXPECT_EQ(active, 1);
}

TEST_F(LatrFixture, NoRemoteResidencySkipsStraightToReclaim)
{
    // Only core 0 ever touched the page: the state deactivates at
    // save time (empty CPU mask) and just ages.
    Addr addr = sharedPage({t0});
    // Scrub residency of the other cores for this mm by idling them.
    kernel.exitTask(t1);
    kernel.exitTask(t4);
    kernel.munmap(t0, addr, kPageSize);
    EXPECT_EQ(policy->activeStates(), 0u);
    EXPECT_EQ(policy->pendingReclaim(), 1u);
    machine.run(6 * kMsec);
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
}

TEST_F(LatrFixture, CapabilitiesMatchTable2)
{
    PolicyCapabilities caps = machine.policy().capabilities();
    EXPECT_TRUE(caps.asynchronous);
    EXPECT_TRUE(caps.nonIpiBased);
    EXPECT_TRUE(caps.noRemoteCoreInvolvement);
    EXPECT_TRUE(caps.noHardwareChanges);
    EXPECT_TRUE(caps.lazyFreeCapable);
    EXPECT_TRUE(caps.lazyMigrationCapable);
}

TEST_F(LatrFixture, LargeLazyUnmapFullFlushesAtSweep)
{
    const std::uint64_t pages = 64; // above threshold
    SyscallResult m = kernel.mmap(t0, pages * kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, pages * kPageSize);
    test::touchRange(kernel, t1, m.addr, pages * kPageSize);
    const std::uint64_t flushes =
        machine.scheduler().tlbOf(1).flushes();
    kernel.munmap(t0, m.addr, pages * kPageSize);
    machine.run(machine.config().cost.tickInterval + 10 * kUsec);
    EXPECT_GT(machine.scheduler().tlbOf(1).flushes(), flushes);
    machine.run(6 * kMsec);
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST(LatrPcid, SweepInvalidatesByPcidAcrossProcesses)
{
    MachineConfig cfg = test::tinyConfig();
    cfg.pcidEnabled = true;
    Machine machine(cfg, PolicyKind::Latr);
    Kernel &kernel = machine.kernel();
    Process *a = kernel.createProcess("a");
    Process *b = kernel.createProcess("b");
    Task *ta = kernel.spawnTask(a, 0);
    Task *ta1 = kernel.spawnTask(a, 1);
    Task *tb1 = kernel.spawnTask(b, 1);
    machine.run(kUsec);

    // Both processes cache translations on core 1.
    SyscallResult ma = kernel.mmap(ta, kPageSize,
                                   kProtRead | kProtWrite);
    test::touchRange(kernel, ta1, ma.addr, kPageSize);
    SyscallResult mb = kernel.mmap(tb1, kPageSize,
                                   kProtRead | kProtWrite);
    test::touchRange(kernel, tb1, mb.addr, kPageSize);

    kernel.munmap(ta, ma.addr, kPageSize);
    machine.run(cfg.cost.tickInterval + 10 * kUsec);
    // a's entry swept by PCID; b's entry (same VPN range possible)
    // survives.
    EXPECT_FALSE(
        machine.scheduler().tlbOf(1).probe(pageOf(ma.addr),
                                           a->mm().pcid()));
    EXPECT_TRUE(
        machine.scheduler().tlbOf(1).probe(pageOf(mb.addr),
                                           b->mm().pcid()));
    machine.run(6 * kMsec);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

} // namespace
} // namespace latr
