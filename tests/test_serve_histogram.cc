// Unit tests for the serving subsystem's log-linear latency
// histogram: bucket math, percentile boundaries, merge/digest, and
// bit-exact agreement with Distribution::percentile on small inputs.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "serve/histogram.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace latr
{
namespace
{

TEST(LatencyHistogram, EmptyIsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.0), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.percentile(1.0), 0u);
}

TEST(LatencyHistogram, SingleValueEveryQuantile)
{
    LatencyHistogram h;
    h.record(1234);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 1234u);
    EXPECT_EQ(h.max(), 1234u);
    for (double q : {0.0, 0.5, 0.99, 0.999, 1.0})
        EXPECT_EQ(h.percentile(q), 1234u) << "q=" << q;
}

TEST(LatencyHistogram, BucketMathRoundTrips)
{
    // Every value maps into a bucket whose [low, high] range
    // contains it, across the linear/geometric boundary and the
    // extremes of the 64-bit range.
    const std::uint64_t probes[] = {
        0,   1,   63,  64,   65,   127,  128,  129,  1000, 4095,
        4096, 1u << 20, (1u << 20) + 17, 1ULL << 40,
        (1ULL << 40) + (1ULL << 33), ~0ULL - 1, ~0ULL};
    for (std::uint64_t v : probes) {
        const std::size_t i = LatencyHistogram::bucketOf(v);
        ASSERT_LT(i, LatencyHistogram().bucketCount()) << v;
        EXPECT_LE(LatencyHistogram::bucketLow(i), v) << v;
        EXPECT_GE(LatencyHistogram::bucketHigh(i), v) << v;
    }
}

TEST(LatencyHistogram, BucketsAreContiguousAndMonotonic)
{
    // Walking bucket indexes walks disjoint adjacent value ranges.
    const std::size_t n = LatencyHistogram().bucketCount();
    for (std::size_t i = 1; i < n; ++i) {
        EXPECT_EQ(LatencyHistogram::bucketLow(i),
                  LatencyHistogram::bucketHigh(i - 1) + 1)
            << "gap before bucket " << i;
    }
}

TEST(LatencyHistogram, ExactBelowLinearMax)
{
    // Width-1 buckets below kLinearMax: percentiles are exact.
    LatencyHistogram h;
    for (std::uint64_t v = 1; v <= 50; ++v)
        h.record(v);
    EXPECT_EQ(h.percentile(0.0), 1u);
    EXPECT_EQ(h.percentile(0.5), 25u);
    EXPECT_EQ(h.percentile(1.0), 50u);
    EXPECT_EQ(h.percentile(0.02), 1u);
    EXPECT_EQ(h.percentile(0.04), 2u);
}

TEST(LatencyHistogram, QuantizationErrorBounded)
{
    // Geometric buckets: the reported percentile of a known stream
    // is within 1/kSubBuckets of the true value.
    LatencyHistogram h;
    for (std::uint64_t v = 1; v <= 100000; ++v)
        h.record(v);
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        const double exact = q * 100000.0;
        const double got = static_cast<double>(h.percentile(q));
        EXPECT_NEAR(got, exact,
                    exact / LatencyHistogram::kSubBuckets + 1.0)
            << "q=" << q;
    }
    // And never above the recorded max.
    EXPECT_EQ(h.percentile(1.0), 100000u);
}

TEST(LatencyHistogram, AgreesWithDistributionOnSmallInputs)
{
    // The ISSUE's compatibility requirement: on small inputs (n under
    // the reservoir size, values in the exact range) the histogram
    // and Distribution report bit-identical percentiles — both use
    // inclusive nearest rank.
    Rng rng(99);
    LatencyHistogram h;
    Distribution d;
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t v = rng.nextBounded(64);
        h.record(v);
        d.sample(static_cast<double>(v));
    }
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0})
        EXPECT_DOUBLE_EQ(static_cast<double>(h.percentile(q)),
                         d.percentile(q))
            << "q=" << q;
}

TEST(LatencyHistogram, MergeEqualsCombinedRecording)
{
    Rng rng(7);
    LatencyHistogram a, b, all;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.next() % 500000;
        (i % 2 ? a : b).record(v);
        all.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
    EXPECT_EQ(a.digest(), all.digest());
    EXPECT_EQ(a.percentile(0.99), all.percentile(0.99));
}

TEST(LatencyHistogram, DigestDetectsDifferences)
{
    LatencyHistogram a, b;
    a.record(100);
    b.record(100);
    EXPECT_EQ(a.digest(), b.digest());
    b.record(100);
    EXPECT_NE(a.digest(), b.digest()); // count differs
    LatencyHistogram c, e;
    c.record(1000);
    e.record(1001); // adjacent but different buckets? ensure moments
    EXPECT_NE(c.digest(), e.digest()); // sum differs even if bucket same
}

TEST(LatencyHistogram, TopBucketSaturates)
{
    // The last bucket's range must run to the top of the 64-bit
    // domain, and pathological values (a latency diff gone negative
    // and wrapped, for instance) must land there — counted, ordered,
    // and reported — rather than indexing out of bounds.
    LatencyHistogram h;
    const std::size_t top = h.bucketCount() - 1;
    EXPECT_EQ(LatencyHistogram::bucketHigh(top), ~0ULL);
    EXPECT_EQ(LatencyHistogram::bucketOf(~0ULL), top);
    const std::uint64_t low = LatencyHistogram::bucketLow(top);
    EXPECT_EQ(LatencyHistogram::bucketOf(low), top);

    h.record(~0ULL);
    h.record(low);
    h.record(~0ULL - 1);
    h.record(1); // a sane sample rides along
    EXPECT_EQ(h.bucketValue(top), 3u);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), ~0ULL);
    // Quantiles in the saturated bucket report its ceiling; the sane
    // sample still resolves exactly below it.
    EXPECT_EQ(h.percentile(1.0), ~0ULL);
    EXPECT_EQ(h.percentile(0.75), ~0ULL);
    EXPECT_EQ(h.percentile(0.25), 1u);

    // Saturation is digest-visible: a top-bucket sample is not the
    // same stream as one more mid-range sample.
    LatencyHistogram other;
    other.record(1);
    other.record(low);
    other.record(low);
    other.record(low);
    EXPECT_NE(h.digest(), other.digest());
}

TEST(LatencyHistogram, ResetClears)
{
    LatencyHistogram h;
    h.record(5000);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
    const LatencyHistogram fresh;
    EXPECT_EQ(h.digest(), fresh.digest());
}

} // namespace
} // namespace latr
