// Unit tests for the IPI fabric.

#include <gtest/gtest.h>

#include <map>

#include "hw/ipi.hh"

namespace latr
{
namespace
{

struct IpiFixture : public ::testing::Test
{
    IpiFixture()
        : topo(2, 4), cost(commodityCostModel()),
          fabric(queue, topo, cost)
    {}

    EventQueue queue;
    NumaTopology topo;
    CostModel cost;
    IpiFabric fabric;
};

TEST_F(IpiFixture, EmptyTargetsCompletesImmediately)
{
    IpiBroadcastResult r = fabric.broadcast(
        0, CpuMask(), 0, [](CoreId) { return 0; }, nullptr);
    EXPECT_EQ(r.ipis, 0u);
    EXPECT_EQ(r.allAcked, 0u);
    EXPECT_EQ(fabric.broadcasts(), 0u);
}

TEST_F(IpiFixture, InitiatorIsSkipped)
{
    CpuMask m = CpuMask::single(0);
    IpiBroadcastResult r = fabric.broadcast(
        0, m, 0, [](CoreId) { return 0; }, nullptr);
    EXPECT_EQ(r.ipis, 0u);
}

TEST_F(IpiFixture, SingleSameSocketTargetLatencyMath)
{
    CpuMask m = CpuMask::single(1); // same socket as core 0
    const Duration handler_body = 120;
    IpiBroadcastResult r = fabric.broadcast(
        0, m, 0, [&](CoreId) { return handler_body; }, nullptr);
    const Duration expected = cost.ipiSendCost(0) +
                              cost.ipiDeliveryCost(0) +
                              cost.ipiHandlerFixed + handler_body +
                              cost.cachelineCost(0);
    EXPECT_EQ(r.allAcked, expected);
    EXPECT_EQ(r.ipis, 1u);
}

TEST_F(IpiFixture, CrossSocketTargetIsSlower)
{
    IpiBroadcastResult near = fabric.broadcast(
        0, CpuMask::single(1), 0, [](CoreId) { return 0; }, nullptr);
    IpiBroadcastResult far = fabric.broadcast(
        0, CpuMask::single(4), queue.now(),
        [](CoreId) { return 0; }, nullptr);
    EXPECT_GT(far.allAcked - queue.now(), near.allAcked);
}

TEST_F(IpiFixture, SendsSerializeAcrossTargets)
{
    // With n targets the ICR-write serialization alone grows
    // linearly; completion must exceed n * sendCost.
    CpuMask m;
    for (CoreId c = 1; c < 8; ++c)
        m.set(c);
    IpiBroadcastResult r = fabric.broadcast(
        0, m, 0, [](CoreId) { return 0; }, nullptr);
    EXPECT_EQ(r.ipis, 7u);
    Duration min_sends = 0;
    m.forEach([&](CoreId c) {
        min_sends += cost.ipiSendCost(topo.hops(0, c));
    });
    EXPECT_EQ(r.sendsDone, min_sends);
    EXPECT_GT(r.allAcked, min_sends);
}

TEST_F(IpiFixture, MoreTargetsNeverCompleteSooner)
{
    CpuMask small = CpuMask::single(1);
    CpuMask big;
    for (CoreId c = 1; c < 8; ++c)
        big.set(c);
    Duration d_small = fabric
                           .broadcast(0, small, 0,
                                      [](CoreId) { return 0; },
                                      nullptr)
                           .allAcked;
    Duration d_big = fabric
                         .broadcast(0, big, 0,
                                    [](CoreId) { return 0; }, nullptr)
                         .allAcked;
    EXPECT_GE(d_big, d_small);
}

TEST_F(IpiFixture, DeliveryCallbackFiresAtDeliveryTickPerTarget)
{
    CpuMask m;
    m.set(1);
    m.set(5);
    std::map<CoreId, Tick> delivered;
    IpiBroadcastResult r = fabric.broadcast(
        0, m, 0, [](CoreId) { return 0; },
        [&](CoreId c, Tick at, const Tlb::InvalidationPlan *) {
            delivered[c] = at;
        });
    EXPECT_TRUE(delivered.empty()); // nothing until events run
    queue.run();
    ASSERT_EQ(delivered.size(), 2u);
    EXPECT_LT(delivered[1], r.allAcked);
    EXPECT_LT(delivered[5], r.allAcked);
    // The same-socket core hears about it before the remote one
    // (it was also sent first).
    EXPECT_LT(delivered[1], delivered[5]);
}

TEST_F(IpiFixture, ExplicitStartShiftsEverything)
{
    CpuMask m = CpuMask::single(1);
    IpiBroadcastResult at0 = fabric.broadcast(
        0, m, 0, [](CoreId) { return 0; }, nullptr);
    IpiBroadcastResult at1000 = fabric.broadcast(
        0, m, 1000, [](CoreId) { return 0; }, nullptr);
    EXPECT_EQ(at1000.allAcked, at0.allAcked + 1000);
}

TEST_F(IpiFixture, StatsAccumulate)
{
    CpuMask m;
    m.set(1);
    m.set(2);
    fabric.broadcast(0, m, 0, [](CoreId) { return 0; }, nullptr);
    fabric.broadcast(0, m, 0, [](CoreId) { return 0; }, nullptr);
    EXPECT_EQ(fabric.ipisSent(), 4u);
    EXPECT_EQ(fabric.broadcasts(), 2u);
    fabric.resetStats();
    EXPECT_EQ(fabric.ipisSent(), 0u);
}

TEST(IpiCalibration, FullShootdown16CoresNearPaperCost)
{
    // Paper section 1: a 16-core shootdown costs ~6 us on the
    // 2-socket machine. 15 targets, handler invalidates one page.
    EventQueue queue;
    NumaTopology topo(2, 8);
    CostModel cost = commodityCostModel();
    IpiFabric fabric(queue, topo, cost);
    CpuMask m = CpuMask::firstN(16);
    m.clear(0);
    IpiBroadcastResult r = fabric.broadcast(
        0, m, 0, [&](CoreId) { return cost.invlpg; }, nullptr);
    EXPECT_GT(r.allAcked, 4 * kUsec);
    EXPECT_LT(r.allAcked, 9 * kUsec);
}

} // namespace
} // namespace latr
