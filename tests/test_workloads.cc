// Tests for the workload layer: actors, the munmap microbenchmark,
// the webserver, and the PARSEC profiles.

#include <gtest/gtest.h>

#include "test_helpers.hh"
#include "workload/lowshootdown.hh"
#include "workload/microbench.hh"
#include "workload/numabench.hh"
#include "workload/parsec.hh"
#include "workload/webserver.hh"
#include "workload/workload.hh"

namespace latr
{
namespace
{

/** A trivial actor: fixed-duration steps, fixed iteration count. */
class CountingActor : public CoreActor
{
  public:
    CountingActor(Machine &machine, Task *task, std::uint64_t iters)
        : CoreActor(machine, task), left_(iters)
    {}

  protected:
    Duration
    step() override
    {
        if (left_ == 0)
            return kActorDone;
        --left_;
        return 10 * kUsec;
    }

  private:
    std::uint64_t left_;
};

TEST(CoreActor, RunsExactlyItsIterations)
{
    Machine machine(test::tinyConfig(), PolicyKind::Latr);
    Process *p = machine.kernel().createProcess("x");
    Task *t = machine.kernel().spawnTask(p, 0);
    std::vector<std::unique_ptr<CoreActor>> actors;
    actors.push_back(
        std::make_unique<CountingActor>(machine, t, 100));
    actors[0]->start(1);
    Tick finish = runToCompletion(machine, actors, 10 * kSec);
    EXPECT_TRUE(actors[0]->done());
    EXPECT_EQ(actors[0]->iterations(), 100u);
    // 100 iterations of 10 us plus stolen time: slightly above 1 ms.
    EXPECT_GE(finish, 100 * 10 * kUsec);
    EXPECT_LT(finish, 3 * kMsec);
}

TEST(CoreActor, StolenTimeStretchesSteps)
{
    Machine machine(test::tinyConfig(), PolicyKind::Latr);
    Process *p = machine.kernel().createProcess("x");
    Task *t = machine.kernel().spawnTask(p, 0);
    std::vector<std::unique_ptr<CoreActor>> actors;
    actors.push_back(std::make_unique<CountingActor>(machine, t, 10));
    actors[0]->start(1);
    machine.scheduler().chargeStolen(0, 5 * kMsec); // big theft
    Tick finish = runToCompletion(machine, actors, 10 * kSec);
    EXPECT_GT(finish, 5 * kMsec);
}

TEST(Microbench, LatrBeatsLinuxOnMunmapLatency)
{
    MunmapMicrobenchConfig cfg;
    cfg.sharingCores = 8;
    cfg.pages = 1;
    cfg.iterations = 60;
    cfg.warmupIterations = 5;

    Machine linux_machine(test::tinyConfig(), PolicyKind::LinuxSync);
    MunmapMicrobenchResult linux_r =
        runMunmapMicrobench(linux_machine, cfg);

    Machine latr_machine(test::tinyConfig(), PolicyKind::Latr);
    MunmapMicrobenchResult latr_r =
        runMunmapMicrobench(latr_machine, cfg);

    EXPECT_GT(linux_r.munmapMeanNs, latr_r.munmapMeanNs);
    EXPECT_GT(linux_r.shootdownMeanNs, 10 * latr_r.shootdownMeanNs);
    EXPECT_EQ(latr_r.latrFallbacks, 0u);
    EXPECT_GT(latr_r.lazyBytesPeak, 0u);
    EXPECT_EQ(linux_machine.checker()->violations(), 0u);
    EXPECT_EQ(latr_machine.checker()->violations(), 0u);
}

TEST(Microbench, ShootdownShareShrinksWithPageCount)
{
    // Figure 8's shape: more pages amortize the shootdown.
    auto ratio = [](std::uint64_t pages) {
        MunmapMicrobenchConfig cfg;
        cfg.sharingCores = 8;
        cfg.pages = pages;
        cfg.iterations = 40;
        cfg.warmupIterations = 4;
        Machine machine(test::tinyConfig(), PolicyKind::LinuxSync);
        MunmapMicrobenchResult r = runMunmapMicrobench(machine, cfg);
        return r.shootdownMeanNs / r.munmapMeanNs;
    };
    EXPECT_GT(ratio(1), ratio(64));
}

TEST(WebServer, ServesRequestsAndCountsShootdowns)
{
    Machine machine(test::tinyConfig(), PolicyKind::LinuxSync);
    WebServerConfig cfg;
    cfg.workers = 4;
    cfg.processes = 2;
    WebServerWorkload server(machine, cfg);
    WebServerResult r = server.measure(20 * kMsec, 100 * kMsec);
    EXPECT_GT(r.requests, 100u);
    EXPECT_GT(r.requestsPerSec, 0.0);
    EXPECT_GT(r.shootdownsPerSec, 0.0);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST(WebServer, SendfileModeHasNoShootdowns)
{
    Machine machine(test::tinyConfig(), PolicyKind::LinuxSync);
    WebServerConfig cfg;
    cfg.workers = 2;
    cfg.processes = 1;
    cfg.mmapPerRequest = false; // nginx-style
    WebServerWorkload server(machine, cfg);
    WebServerResult r = server.measure(10 * kMsec, 50 * kMsec);
    EXPECT_GT(r.requests, 0u);
    EXPECT_DOUBLE_EQ(r.shootdownsPerSec, 0.0);
}

TEST(WebServer, LatrOutperformsLinuxWhenShootdownBound)
{
    WebServerConfig cfg;
    cfg.workers = 8;
    cfg.processes = 2;
    cfg.serviceCpu = 20 * kUsec; // shootdown-heavy regime

    Machine linux_machine(test::tinyConfig(), PolicyKind::LinuxSync);
    WebServerWorkload linux_server(linux_machine, cfg);
    WebServerResult linux_r =
        linux_server.measure(20 * kMsec, 150 * kMsec);

    Machine latr_machine(test::tinyConfig(), PolicyKind::Latr);
    WebServerWorkload latr_server(latr_machine, cfg);
    WebServerResult latr_r =
        latr_server.measure(20 * kMsec, 150 * kMsec);

    EXPECT_GT(latr_r.requestsPerSec, linux_r.requestsPerSec);
    EXPECT_EQ(latr_machine.checker()->violations(), 0u);
}

TEST(Parsec, SuiteHasThirteenBenchmarksLikeFigure10)
{
    EXPECT_EQ(parsecSuite().size(), 13u);
    EXPECT_NO_THROW(parsecProfile("dedup"));
    EXPECT_STREQ(parsecProfile("canneal").name, "canneal");
}

TEST(ParsecDeath, UnknownProfileIsFatal)
{
    EXPECT_DEATH(parsecProfile("doom3"), "unknown PARSEC");
}

TEST(Parsec, DedupProfileRunsAndFreesMemory)
{
    ParsecProfile profile = parsecProfile("dedup");
    profile.itersPerCore = 150; // trimmed for test budget
    Machine machine(test::tinyConfig(), PolicyKind::Latr);
    ParsecResult r = runParsec(machine, profile, 4);
    EXPECT_GT(r.runtimeNs, 0u);
    EXPECT_GT(r.shootdownsPerSec, 0.0);
    machine.run(8 * kMsec);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST(LowShootdown, CasesMatchFigure12)
{
    EXPECT_EQ(lowShootdownCases().size(), 7u);
    EXPECT_STREQ(lowShootdownCases()[0].name, "nginx_1");
}

TEST(LowShootdown, NginxCaseRunsWithZeroShootdowns)
{
    MachineConfig cfg = test::tinyConfig();
    LowShootdownResult r = runLowShootdownCase(
        cfg, PolicyKind::Latr, lowShootdownCases()[0]);
    EXPECT_GT(r.performance, 0.0);
    EXPECT_DOUBLE_EQ(r.shootdownsPerSec, 0.0);
}

TEST(LowShootdown, PolicyGapIsSmallWhenNothingIsLazy)
{
    // The figure 12 property on one case: with no shootdown
    // traffic, LATR performs within a couple percent of Linux.
    MachineConfig cfg = test::tinyConfig();
    const LowShootdownCase &c = lowShootdownCases()[0]; // nginx_1
    LowShootdownResult linux_r =
        runLowShootdownCase(cfg, PolicyKind::LinuxSync, c);
    LowShootdownResult latr_r =
        runLowShootdownCase(cfg, PolicyKind::Latr, c);
    EXPECT_NEAR(latr_r.performance / linux_r.performance, 1.0, 0.03);
}

TEST(NumaBench, SuiteMatchesFigure11)
{
    EXPECT_EQ(numaBenchSuite().size(), 5u);
    EXPECT_STREQ(numaBenchSuite()[2].name, "graph500");
}

} // namespace
} // namespace latr
