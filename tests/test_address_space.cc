// Unit tests for AddressSpace: VMAs, mmap placement, unmap paths,
// holdback, and sharer tracking.

#include <gtest/gtest.h>

#include "vm/address_space.hh"

namespace latr
{
namespace
{

struct AddressSpaceFixture : public ::testing::Test
{
    AddressSpaceFixture() : frames(2, 1024), mm(1, 0, frames) {}

    /** Map + fault helper: demand-map every page with real frames. */
    void
    populate(Addr base, std::uint64_t pages)
    {
        for (std::uint64_t p = 0; p < pages; ++p) {
            Pfn f = frames.alloc(0);
            ASSERT_NE(f, kPfnInvalid);
            mm.pageTable().map(pageOf(base) + p, f,
                               kPteWrite | kPteAccessed);
        }
    }

    FrameAllocator frames;
    AddressSpace mm;
};

TEST_F(AddressSpaceFixture, MmapReturnsPageAlignedDistinctRegions)
{
    Addr a = mm.mmapRegion(3 * kPageSize, kProtRead | kProtWrite);
    Addr b = mm.mmapRegion(kPageSize, kProtRead);
    ASSERT_NE(a, kAddrInvalid);
    ASSERT_NE(b, kAddrInvalid);
    EXPECT_EQ(a % kPageSize, 0u);
    EXPECT_NE(a, b);
    EXPECT_EQ(mm.vmaCount(), 2u);
    EXPECT_TRUE(b >= a + 3 * kPageSize || a >= b + kPageSize);
}

TEST_F(AddressSpaceFixture, MmapRoundsLengthUp)
{
    Addr a = mm.mmapRegion(100, kProtRead);
    const Vma *vma = mm.findVma(a);
    ASSERT_NE(vma, nullptr);
    EXPECT_EQ(vma->end - vma->start, kPageSize);
}

TEST_F(AddressSpaceFixture, MmapZeroLengthFails)
{
    EXPECT_EQ(mm.mmapRegion(0, kProtRead), kAddrInvalid);
}

TEST_F(AddressSpaceFixture, FindVmaBoundaries)
{
    Addr a = mm.mmapRegion(2 * kPageSize, kProtRead);
    EXPECT_NE(mm.findVma(a), nullptr);
    EXPECT_NE(mm.findVma(a + 2 * kPageSize - 1), nullptr);
    EXPECT_EQ(mm.findVma(a + 2 * kPageSize), nullptr);
}

TEST_F(AddressSpaceFixture, MunmapWholeRegionCollectsPages)
{
    Addr a = mm.mmapRegion(4 * kPageSize, kProtRead | kProtWrite);
    populate(a, 4);
    UnmapResult r = mm.munmapRegion(a, 4 * kPageSize);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.pages.size(), 4u);
    EXPECT_EQ(r.spanned, 4u);
    EXPECT_EQ(mm.vmaCount(), 0u);
    EXPECT_EQ(mm.pageTable().presentPages(), 0u);
}

TEST_F(AddressSpaceFixture, MunmapMiddleSplitsVma)
{
    Addr a = mm.mmapRegion(6 * kPageSize, kProtRead | kProtWrite);
    populate(a, 6);
    UnmapResult r = mm.munmapRegion(a + 2 * kPageSize, 2 * kPageSize);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.pages.size(), 2u);
    EXPECT_EQ(mm.vmaCount(), 2u);
    EXPECT_NE(mm.findVma(a), nullptr);
    EXPECT_EQ(mm.findVma(a + 2 * kPageSize), nullptr);
    EXPECT_NE(mm.findVma(a + 4 * kPageSize), nullptr);
    EXPECT_EQ(mm.pageTable().presentPages(), 4u);
}

TEST_F(AddressSpaceFixture, MunmapSpanningTwoVmas)
{
    Addr a = mm.mmapRegion(2 * kPageSize, kProtRead);
    Addr b = mm.mmapRegion(2 * kPageSize, kProtRead);
    ASSERT_EQ(b, a + 2 * kPageSize); // first-fit packs them
    UnmapResult r = mm.munmapRegion(a + kPageSize, 2 * kPageSize);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(mm.vmaCount(), 2u); // head of a, tail of b
}

TEST_F(AddressSpaceFixture, MunmapUnmappedRangeIsOkAndEmpty)
{
    UnmapResult r = mm.munmapRegion(0x5000'0000'0000ULL >> 1, kPageSize);
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.pages.empty());
}

TEST_F(AddressSpaceFixture, MunmapInvalidRangeFails)
{
    UnmapResult r = mm.munmapRegion(0x1000, 0);
    EXPECT_FALSE(r.ok);
}

TEST_F(AddressSpaceFixture, FirstFitReusesFreedRange)
{
    Addr a = mm.mmapRegion(2 * kPageSize, kProtRead);
    mm.mmapRegion(kPageSize, kProtRead);
    mm.munmapRegion(a, 2 * kPageSize);
    Addr c = mm.mmapRegion(kPageSize, kProtRead);
    EXPECT_EQ(c, a); // Linux-style immediate VA reuse
}

TEST_F(AddressSpaceFixture, MadviseKeepsVmaDropsPages)
{
    Addr a = mm.mmapRegion(4 * kPageSize, kProtRead | kProtWrite);
    populate(a, 4);
    UnmapResult r = mm.madviseRegion(a, 2 * kPageSize);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.pages.size(), 2u);
    EXPECT_EQ(mm.vmaCount(), 1u);
    EXPECT_EQ(mm.pageTable().presentPages(), 2u);
    EXPECT_NE(mm.findVma(a), nullptr); // still mapped (VMA-wise)
}

TEST_F(AddressSpaceFixture, MprotectRewritesPteWriteBits)
{
    Addr a = mm.mmapRegion(2 * kPageSize, kProtRead | kProtWrite);
    populate(a, 2);
    UnmapResult r = mm.mprotectRegion(a, 2 * kPageSize, kProtRead);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.pages.size(), 2u);
    EXPECT_FALSE(mm.pageTable().find(pageOf(a))->writable());
    EXPECT_EQ(mm.findVma(a)->prot, kProtRead);

    mm.mprotectRegion(a, kPageSize, kProtRead | kProtWrite);
    EXPECT_TRUE(mm.pageTable().find(pageOf(a))->writable());
    EXPECT_FALSE(
        mm.pageTable().find(pageOf(a) + 1)->writable());
    EXPECT_EQ(mm.vmaCount(), 2u); // split by the partial mprotect
}

TEST_F(AddressSpaceFixture, MremapMovesFramesToNewRange)
{
    Addr a = mm.mmapRegion(3 * kPageSize, kProtRead | kProtWrite);
    populate(a, 3);
    const Pfn f0 = mm.pageTable().find(pageOf(a))->pfn;
    UnmapResult moved;
    Addr b = mm.mremapRegion(a, 3 * kPageSize, 3 * kPageSize, &moved);
    ASSERT_NE(b, kAddrInvalid);
    EXPECT_NE(b, a);
    EXPECT_EQ(moved.pages.size(), 3u);
    EXPECT_EQ(mm.findVma(a), nullptr);
    ASSERT_NE(mm.pageTable().find(pageOf(b)), nullptr);
    EXPECT_EQ(mm.pageTable().find(pageOf(b))->pfn, f0);
    EXPECT_EQ(mm.pageTable().find(pageOf(a)), nullptr);
}

TEST_F(AddressSpaceFixture, MremapGrowKeepsOldFramesAndExtends)
{
    Addr a = mm.mmapRegion(2 * kPageSize, kProtRead | kProtWrite);
    populate(a, 2);
    UnmapResult moved;
    Addr b = mm.mremapRegion(a, 2 * kPageSize, 4 * kPageSize, &moved);
    ASSERT_NE(b, kAddrInvalid);
    const Vma *vma = mm.findVma(b);
    ASSERT_NE(vma, nullptr);
    EXPECT_EQ(vma->pages(), 4u);
    EXPECT_EQ(mm.pageTable().presentPages(), 2u);
}

TEST_F(AddressSpaceFixture, MarkCowClearsWriteSetssCow)
{
    Addr a = mm.mmapRegion(2 * kPageSize, kProtRead | kProtWrite);
    populate(a, 2);
    UnmapResult r = mm.markCowRegion(a, 2 * kPageSize);
    EXPECT_EQ(r.pages.size(), 2u);
    const Pte *pte = mm.pageTable().find(pageOf(a));
    EXPECT_TRUE(pte->cow());
    EXPECT_FALSE(pte->writable());
}

TEST_F(AddressSpaceFixture, HoldbackBlocksMmapReuse)
{
    Addr a = mm.mmapRegion(2 * kPageSize, kProtRead);
    mm.munmapRegion(a, 2 * kPageSize);
    mm.holdbackRange(a, a + 2 * kPageSize);
    Addr b = mm.mmapRegion(kPageSize, kProtRead);
    EXPECT_NE(b, a); // must skip the held-back range
    EXPECT_TRUE(mm.rangeHeldBack(a, a + kPageSize));
    EXPECT_EQ(mm.heldBackBytes(), 2 * kPageSize);

    mm.releaseHoldback(a, a + 2 * kPageSize);
    EXPECT_FALSE(mm.rangeHeldBack(a, a + kPageSize));
    // After release the first-fit allocator may reuse it again. The
    // new block b sits after a, so a is the first free gap.
    Addr c = mm.mmapRegion(kPageSize, kProtRead);
    EXPECT_EQ(c, a);
}

TEST_F(AddressSpaceFixture, HoldbackOverlapQueries)
{
    mm.holdbackRange(0x10000, 0x12000);
    EXPECT_TRUE(mm.rangeHeldBack(0x11000, 0x13000));
    EXPECT_TRUE(mm.rangeHeldBack(0x0f000, 0x10001));
    EXPECT_FALSE(mm.rangeHeldBack(0x12000, 0x13000));
    EXPECT_FALSE(mm.rangeHeldBack(0x0e000, 0x10000));
}

TEST_F(AddressSpaceFixture, SharersAccumulateAndClear)
{
    mm.noteAccess(50, 1);
    mm.noteAccess(50, 3);
    CpuMask s = mm.sharersOf(50);
    EXPECT_TRUE(s.test(1));
    EXPECT_TRUE(s.test(3));
    EXPECT_EQ(s.count(), 2u);
    mm.clearSharers(50);
    EXPECT_TRUE(mm.sharersOf(50).empty());
}

TEST_F(AddressSpaceFixture, MunmapKeepsSharersForThePolicy)
{
    // Sharer info must survive munmapRegion: the coherence policy
    // (ABIS) reads it to pick shootdown targets; the kernel clears
    // it afterwards via clearSharers().
    Addr a = mm.mmapRegion(kPageSize, kProtRead | kProtWrite);
    populate(a, 1);
    mm.noteAccess(pageOf(a), 2);
    mm.munmapRegion(a, kPageSize);
    EXPECT_TRUE(mm.sharersOf(pageOf(a)).test(2));
    mm.clearSharers(pageOf(a));
    EXPECT_TRUE(mm.sharersOf(pageOf(a)).empty());
}

} // namespace
} // namespace latr
