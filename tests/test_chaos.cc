// Chaos test: every background daemon (AutoNUMA, swap, KSM,
// compaction, khugepaged) running at once over randomized
// multi-core workloads with base and huge pages, under every
// coherence policy — the widest net for ordering bugs in the lazy
// paths. The reuse-invariant checker arbitrates.

#include <gtest/gtest.h>

#include <vector>

#include "numa/autonuma.hh"
#include "numa/compaction.hh"
#include "numa/khugepaged.hh"
#include "numa/ksm.hh"
#include "numa/swap.hh"
#include "sim/rng.hh"
#include "test_helpers.hh"

namespace latr
{
namespace
{

struct ChaosParam
{
    PolicyKind policy;
    std::uint64_t seed;
};

class Chaos : public ::testing::TestWithParam<ChaosParam>
{
};

TEST_P(Chaos, EverythingAtOnceHoldsTheInvariant)
{
    const ChaosParam param = GetParam();
    MachineConfig cfg = test::tinyConfig();
    cfg.framesPerNode = 16 * 1024;
    Machine machine(cfg, param.policy);
    Kernel &kernel = machine.kernel();
    Rng rng(param.seed);

    Process *pa = kernel.createProcess("a");
    Process *pb = kernel.createProcess("b");
    std::vector<Task *> tasks;
    for (CoreId c = 0; c < machine.topo().totalCores(); ++c)
        tasks.push_back(kernel.spawnTask(c % 2 ? pa : pb, c));
    machine.run(kUsec);

    AutoNuma autonuma(kernel, 4 * kMsec, 64);
    autonuma.track(pa);
    autonuma.track(pb);
    autonuma.setTwoTouch(false);
    autonuma.start();

    SwapDaemon swap(kernel, 6 * kMsec, 16);
    swap.track(pa);
    swap.start();

    KsmDaemon ksm(kernel, 5 * kMsec, 16);
    ksm.track(pa);
    ksm.track(pb);
    ksm.start();

    CompactionDaemon compactor(kernel, 0, 7 * kMsec, 16);
    compactor.track(pa);
    compactor.start();

    Khugepaged thp(kernel, 9 * kMsec, 2);
    thp.track(pb);
    thp.start();

    struct Region
    {
        Task *owner;
        std::uint32_t ownerIdx;
        Addr addr;
        std::uint64_t pages;
        bool huge;
        std::uint32_t slot;
    };
    std::vector<Region> regions;

    // Best-effort replayable record of the soup (the daemons
    // themselves cannot be captured in a script).
    Script repro;
    repro.seed = param.seed;
    repro.procs = 2;
    std::uint32_t nextSlot = 0;

    const int kOps = 700;
    for (int op = 0; op < kOps; ++op) {
        const std::uint32_t taskIdx =
            static_cast<std::uint32_t>(rng.nextBounded(tasks.size()));
        Task *task = tasks[taskIdx];
        switch (rng.nextBounded(10)) {
          case 0:
          case 1: { // mmap (occasionally huge)
            const bool huge = rng.nextBool(0.15);
            SyscallResult m =
                huge ? kernel.mmapHuge(task, kHugePageSize,
                                       kProtRead | kProtWrite)
                     : kernel.mmap(task,
                                   (1 + rng.nextBounded(12)) *
                                       kPageSize,
                                   kProtRead | kProtWrite);
            if (m.ok) {
                const std::uint64_t pages =
                    huge ? kHugePageSpan
                         : pagesSpanned(m.addr, kPageSize);
                regions.push_back(
                    {task, taskIdx, m.addr, pages, huge, nextSlot});
                repro.ops.push_back(
                    Op{huge ? OpKind::MmapHuge : OpKind::Mmap,
                       taskIdx, nextSlot++, huge ? 1 : pages, 0,
                       true});
            }
            break;
          }
          case 2:
          case 3:
          case 4:
          case 5: { // touch (tag some pages for KSM)
            if (regions.empty())
                break;
            Region &r = regions[rng.nextBounded(regions.size())];
            const std::uint32_t toucherIdx =
                static_cast<std::uint32_t>(
                    rng.nextBounded(tasks.size()));
            Task *toucher = tasks[toucherIdx];
            if (toucher->process() != r.owner->process())
                break;
            const std::uint64_t page = rng.nextBounded(r.pages);
            Addr addr = r.addr + page * kPageSize;
            const bool write = rng.nextBool(0.4);
            kernel.touch(toucher, addr, write);
            repro.ops.push_back(Op{OpKind::Touch, toucherIdx,
                                   r.slot, 0, page, write});
            if (!r.huge && rng.nextBool(0.2))
                toucher->mm().setContentTag(
                    pageOf(addr), 1 + rng.nextBounded(6));
            break;
          }
          case 6:
          case 7: { // munmap
            if (regions.empty())
                break;
            std::size_t idx = rng.nextBounded(regions.size());
            Region r = regions[idx];
            regions.erase(regions.begin() + idx);
            kernel.munmap(r.owner, r.addr, r.pages * kPageSize);
            repro.ops.push_back(Op{OpKind::Munmap, r.ownerIdx,
                                   r.slot, 0, 0, false});
            break;
          }
          case 8: { // madvise part
            if (regions.empty())
                break;
            Region &r = regions[rng.nextBounded(regions.size())];
            kernel.madvise(r.owner, r.addr,
                           (1 + rng.nextBounded(r.pages)) * kPageSize);
            repro.ops.push_back(Op{OpKind::Madvise, r.ownerIdx,
                                   r.slot, 0, 0, false});
            break;
          }
          default: {
            const std::uint64_t usec = rng.nextBounded(2000) + 10;
            machine.run(usec * kUsec);
            repro.ops.push_back(
                Op{OpKind::Advance, 0, 0, usec, 0, false});
            break;
          }
        }
    }

    autonuma.stop();
    swap.stop();
    ksm.stop();
    compactor.stop();
    thp.stop();

    for (const Region &r : regions) {
        kernel.munmap(r.owner, r.addr, r.pages * kPageSize);
        repro.ops.push_back(
            Op{OpKind::Munmap, r.ownerIdx, r.slot, 0, 0, false});
    }
    machine.run(12 * kMsec);
    repro.ops.push_back(Op{OpKind::Quiesce, 0, 0, 0, 0, false});

    EXPECT_EQ(machine.checker()->violations(), 0u)
        << machine.checker()->firstViolation();
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(pa->mm().heldBackBytes(), 0u);
    EXPECT_EQ(pb->mm().heldBackBytes(), 0u);

    if (::testing::Test::HasFailure()) {
        const std::string stem =
            std::string("chaos_") + policyKindName(param.policy) +
            "_seed" + std::to_string(param.seed);
        ADD_FAILURE()
            << "failing tuple: {policy="
            << policyKindName(param.policy)
            << ", seed=" << param.seed << ", pcid=off}; "
            << test::dumpFailureRepro(
                   repro, stem,
                   "background daemons (autonuma/swap/ksm/compaction/"
                   "khugepaged) are not captured by this script");
    }
}

std::vector<ChaosParam>
chaosParams()
{
    std::vector<ChaosParam> all;
    for (PolicyKind kind :
         {PolicyKind::LinuxSync, PolicyKind::Latr, PolicyKind::Abis,
          PolicyKind::Barrelfish})
        for (std::uint64_t seed : {7ull, 77ull})
            all.push_back({kind, seed});
    return all;
}

INSTANTIATE_TEST_SUITE_P(
    Policies, Chaos, ::testing::ValuesIn(chaosParams()),
    [](const ::testing::TestParamInfo<ChaosParam> &info) {
        return std::string(policyKindName(info.param.policy)) +
               "_seed" + std::to_string(info.param.seed);
    });

} // namespace
} // namespace latr
