// Unit tests for the hashed-perceptron sharer predictor: cold-start
// safety (predict everyone), convergence on stable sharer sets, the
// recent-accessor membership feature across the CpuMask word seam,
// and weight saturation.

#include <gtest/gtest.h>

#include "sim/types.hh"
#include "tlbcoh/sharer_predictor.hh"

namespace latr
{
namespace
{

SharerFeatures
features(MmId mm = 7, std::uint64_t vma = 0x7f0000000000ULL,
         CoreId initiator = 0)
{
    SharerFeatures f;
    f.mm = mm;
    f.vmaId = vma;
    f.initiator = initiator;
    return f;
}

void
setAccessors(SharerFeatures &f, const CpuMask &accessors)
{
    f.accessorWords[0] = 0;
    f.accessorWords[1] = 0;
    accessors.forEachWord([&](unsigned word, std::uint64_t bits) {
        f.accessorWords[word] = bits;
    });
}

TEST(SharerPredictor, ColdPredictorPredictsEveryCandidate)
{
    // Zero weights sum to zero, and zero means "sharer": an
    // untrained predictor must return the candidate mask unchanged —
    // full fan-out, no savings, no correctness exposure. Checked on
    // the empty mask, the full mask, and a word-seam mask, the three
    // shapes the predicted-IPI path has to fan out over.
    const SharerPredictor p;
    const SharerFeatures f = features();

    EXPECT_TRUE(p.predict(f, CpuMask{}).empty());

    const CpuMask full = CpuMask::firstN(CpuMask::kMaxCores);
    EXPECT_TRUE(p.predict(f, full) == full);

    CpuMask seam;
    seam.set(63);
    seam.set(64);
    seam.set(119);
    EXPECT_TRUE(p.predict(f, seam) == seam);
}

TEST(SharerPredictor, PredictionIsAlwaysASubsetOfCandidates)
{
    SharerPredictor p;
    SharerFeatures f = features();
    CpuMask sharers;
    sharers.set(1);
    setAccessors(f, sharers);
    CpuMask candidates = CpuMask::firstN(6);
    for (int i = 0; i < 32; ++i)
        p.train(f, candidates, sharers);
    const CpuMask predicted = p.predict(f, candidates);
    predicted.forEach(
        [&](CoreId c) { EXPECT_TRUE(candidates.test(c)); });
}

TEST(SharerPredictor, ConvergesOnAStableSharerSet)
{
    SharerPredictor p;
    SharerFeatures f = features();
    CpuMask candidates = CpuMask::firstN(8);
    CpuMask sharers;
    sharers.set(0);
    sharers.set(1);
    setAccessors(f, sharers);
    for (int i = 0; i < 16; ++i)
        p.train(f, candidates, sharers);
    EXPECT_TRUE(p.predict(f, candidates) == sharers);
}

TEST(SharerPredictor, MembershipFeatureCrossesTheWordSeam)
{
    // The recent-accessor membership feature indexes by (candidate,
    // in-mask) directly; cores 63/64/119 straddle the two CpuMask
    // words, exactly the decomposition the predicted-IPI fan-out
    // uses. Train with accessors {63, 64} out of candidates
    // {63, 64, 119}: the seam cores stay predicted, 119 trains away.
    SharerPredictor p;
    SharerFeatures f = features();
    CpuMask candidates;
    candidates.set(63);
    candidates.set(64);
    candidates.set(119);
    CpuMask sharers;
    sharers.set(63);
    sharers.set(64);
    setAccessors(f, sharers);
    for (int i = 0; i < 16; ++i)
        p.train(f, candidates, sharers);
    EXPECT_TRUE(p.predict(f, candidates) == sharers);
}

TEST(SharerPredictor, RelearnsWhenTheSharerSetMoves)
{
    SharerPredictor p;
    SharerFeatures f = features();
    const CpuMask candidates = CpuMask::firstN(4);
    CpuMask first;
    first.set(2);
    setAccessors(f, first);
    for (int i = 0; i < 24; ++i)
        p.train(f, candidates, first);
    EXPECT_TRUE(p.predict(f, candidates) == first);

    CpuMask second;
    second.set(3);
    setAccessors(f, second);
    for (int i = 0; i < 48; ++i)
        p.train(f, candidates, second);
    EXPECT_TRUE(p.predict(f, candidates) == second);
}

TEST(SharerPredictor, WeightsSaturateInsteadOfWrapping)
{
    // 5 tables x int8 weights in [-32, 31]: after arbitrarily many
    // identical outcomes the per-candidate sum stays inside the
    // theoretical envelope and the prediction stays right — no int8
    // wraparound flipping a hot non-sharer back into the mask.
    SharerPredictor p;
    SharerFeatures f = features();
    const CpuMask candidates = CpuMask::firstN(2);
    CpuMask sharers;
    sharers.set(0);
    setAccessors(f, sharers);
    for (int i = 0; i < 4000; ++i)
        p.train(f, candidates, sharers);
    EXPECT_GE(p.weightSum(f, 1), -5 * 32);
    EXPECT_LE(p.weightSum(f, 0), 5 * 31);
    EXPECT_TRUE(p.predict(f, candidates) == sharers);
}

} // namespace
} // namespace latr
