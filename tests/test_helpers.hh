/**
 * @file
 * Shared helpers for the test suite: small machine configurations
 * (full-size presets are slow to construct in the inner loop of
 * property tests) and convenience wrappers.
 */

#ifndef LATR_TESTS_TEST_HELPERS_HH_
#define LATR_TESTS_TEST_HELPERS_HH_

#include "machine/machine.hh"
#include "topo/machine_config.hh"

namespace latr::test
{

/** A small 2-socket machine for fast unit/property tests. */
inline MachineConfig
tinyConfig(unsigned sockets = 2, unsigned cores_per_socket = 4)
{
    MachineConfig cfg = MachineConfig::commodity2S16C();
    cfg.name = "tiny";
    cfg.sockets = sockets;
    cfg.coresPerSocket = cores_per_socket;
    cfg.framesPerNode = 16 * 1024; // 64 MiB per node
    cfg.llcBytesPerSocket = 1 * 1024 * 1024;
    return cfg;
}

/** Touch every page of [addr, addr+len). @return summed latency. */
inline Duration
touchRange(Kernel &kernel, Task *task, Addr addr, std::uint64_t len,
           bool write = true)
{
    Duration d = 0;
    const std::uint64_t pages = pagesSpanned(addr, len);
    for (std::uint64_t p = 0; p < pages; ++p)
        d += kernel.touch(task, addr + p * kPageSize, write).latency;
    return d;
}

} // namespace latr::test

#endif // LATR_TESTS_TEST_HELPERS_HH_
