/**
 * @file
 * Shared helpers for the test suite: small machine configurations
 * (full-size presets are slow to construct in the inner loop of
 * property tests) and convenience wrappers.
 */

#ifndef LATR_TESTS_TEST_HELPERS_HH_
#define LATR_TESTS_TEST_HELPERS_HH_

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "check/fuzzer.hh"
#include "check/script.hh"
#include "machine/machine.hh"
#include "topo/machine_config.hh"

namespace latr::test
{

/** A small 2-socket machine for fast unit/property tests. */
inline MachineConfig
tinyConfig(unsigned sockets = 2, unsigned cores_per_socket = 4)
{
    MachineConfig cfg = MachineConfig::commodity2S16C();
    cfg.name = "tiny";
    cfg.sockets = sockets;
    cfg.coresPerSocket = cores_per_socket;
    cfg.framesPerNode = 16 * 1024; // 64 MiB per node
    cfg.llcBytesPerSocket = 1 * 1024 * 1024;
    return cfg;
}

/** Touch every page of [addr, addr+len). @return summed latency. */
inline Duration
touchRange(Kernel &kernel, Task *task, Addr addr, std::uint64_t len,
           bool write = true)
{
    Duration d = 0;
    const std::uint64_t pages = pagesSpanned(addr, len);
    for (std::uint64_t p = 0; p < pages; ++p)
        d += kernel.touch(task, addr + p * kPageSize, write).latency;
    return d;
}

/**
 * Dump a failing randomized test's recorded op soup as a replayable
 * script, and — when it also fails under the conformance executor —
 * minimize it first. @return a human-readable line naming the dump
 * and how to replay it, for a gtest failure message.
 *
 * @param header optional extra `#` comment line for the dump (e.g.
 *        noting what the script cannot capture).
 */
inline std::string
dumpFailureRepro(const Script &script, const std::string &stem,
                 const std::string &header = "")
{
    std::string path = ::testing::TempDir() + stem + ".script";
    const std::string reason = checkScript(script, ExecOptions{});
    Script dump = script;
    if (!reason.empty()) {
        const std::string category = failureCategory(reason);
        dump = minimizeScript(
            script,
            [&](const Script &candidate) {
                return failureCategory(checkScript(candidate,
                                                   ExecOptions{})) ==
                       category;
            },
            /*max_evals=*/120);
        path = ::testing::TempDir() + stem + ".min.script";
    }
    std::ofstream out(path);
    if (!header.empty())
        out << "# " << header << "\n";
    out << serializeScript(dump);
    out.close();
    std::string msg = "repro script: " + path +
                      " (replay: latrsim_check --replay=" + path + ")";
    if (!reason.empty())
        msg += "; conformance executor also fails: " + reason;
    return msg;
}

} // namespace latr::test

#endif // LATR_TESTS_TEST_HELPERS_HH_
