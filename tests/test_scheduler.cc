// Unit tests for the scheduler: ticks, context switches, idle
// behaviour, residency masks, stolen time.

#include <gtest/gtest.h>

#include "test_helpers.hh"

namespace latr
{
namespace
{

struct SchedFixture : public ::testing::Test
{
    SchedFixture() : machine(test::tinyConfig(), PolicyKind::LinuxSync)
    {}

    Machine machine;
};

TEST_F(SchedFixture, TicksFireOncePerIntervalPerBusyCore)
{
    Process *p = machine.kernel().createProcess("t");
    machine.kernel().spawnTask(p, 0);
    machine.kernel().spawnTask(p, 1);
    machine.run(10 * kMsec + kUsec);
    // Two busy cores, 10 intervals each (within one tick of phase).
    EXPECT_NEAR(machine.scheduler().ticksProcessed(), 20, 2);
}

TEST_F(SchedFixture, TicklessIdleCoresSkipTickWork)
{
    // No tasks anywhere: with tickless idle, no tick is processed.
    ASSERT_TRUE(machine.config().ticklessIdle);
    machine.run(10 * kMsec);
    EXPECT_EQ(machine.scheduler().ticksProcessed(), 0u);
}

TEST(SchedulerNoTickless, IdleCoresStillTickWhenConfigured)
{
    MachineConfig cfg = test::tinyConfig();
    cfg.ticklessIdle = false;
    Machine machine(cfg, PolicyKind::LinuxSync);
    machine.run(5 * kMsec + kUsec);
    const unsigned cores = machine.topo().totalCores();
    EXPECT_GE(machine.scheduler().ticksProcessed(), 4u * cores);
}

TEST_F(SchedFixture, AddTaskPopulatesMasks)
{
    Process *p = machine.kernel().createProcess("t");
    Task *t = machine.kernel().spawnTask(p, 3);
    EXPECT_TRUE(p->mm().scheduledMask().test(3));
    EXPECT_TRUE(p->mm().residencyMask().test(3));
    EXPECT_FALSE(machine.scheduler().coreIdle(3));
    EXPECT_EQ(machine.scheduler().currentTask(3), t);
}

TEST_F(SchedFixture, RemoveLastTaskIdlesAndScrubsResidency)
{
    Process *p = machine.kernel().createProcess("t");
    Task *t = machine.kernel().spawnTask(p, 3);
    Addr addr = p->mm().mmapRegion(kPageSize, kProtRead | kProtWrite);
    machine.kernel().touch(t, addr, true);
    EXPECT_GT(machine.scheduler().tlbOf(3).size(), 0u);
    machine.kernel().exitTask(t);
    // Idle entry flushes (lazy-TLB) and leaves every residency mask.
    EXPECT_TRUE(machine.scheduler().coreIdle(3));
    EXPECT_EQ(machine.scheduler().tlbOf(3).size(), 0u);
    EXPECT_FALSE(p->mm().residencyMask().test(3));
    EXPECT_FALSE(p->mm().scheduledMask().test(3));
}

TEST_F(SchedFixture, CrossProcessSwitchFlushesWithoutPcid)
{
    ASSERT_FALSE(machine.config().pcidEnabled);
    Process *a = machine.kernel().createProcess("a");
    Process *b = machine.kernel().createProcess("b");
    Task *ta = machine.kernel().spawnTask(a, 0);
    machine.kernel().spawnTask(b, 0);
    Addr addr = a->mm().mmapRegion(kPageSize, kProtRead | kProtWrite);
    machine.kernel().touch(ta, addr, true);
    EXPECT_GT(machine.scheduler().tlbOf(0).size(), 0u);
    machine.scheduler().contextSwitch(0); // a -> b
    EXPECT_EQ(machine.scheduler().tlbOf(0).size(), 0u);
    EXPECT_FALSE(a->mm().residencyMask().test(0));
}

TEST_F(SchedFixture, SameProcessThreadSwitchKeepsTlb)
{
    Process *a = machine.kernel().createProcess("a");
    Task *t1 = machine.kernel().spawnTask(a, 0);
    machine.kernel().spawnTask(a, 0); // second thread, same mm
    Addr addr = a->mm().mmapRegion(kPageSize, kProtRead | kProtWrite);
    machine.kernel().touch(t1, addr, true);
    const std::size_t entries = machine.scheduler().tlbOf(0).size();
    ASSERT_GT(entries, 0u);
    machine.scheduler().contextSwitch(0); // t1 -> t2, same mm
    EXPECT_EQ(machine.scheduler().tlbOf(0).size(), entries);
    EXPECT_TRUE(a->mm().residencyMask().test(0));
}

TEST(SchedulerPcid, CrossProcessSwitchKeepsTlbWithPcid)
{
    MachineConfig cfg = test::tinyConfig();
    cfg.pcidEnabled = true;
    Machine machine(cfg, PolicyKind::LinuxSync);
    Process *a = machine.kernel().createProcess("a");
    Process *b = machine.kernel().createProcess("b");
    EXPECT_NE(a->mm().pcid(), b->mm().pcid());
    Task *ta = machine.kernel().spawnTask(a, 0);
    machine.kernel().spawnTask(b, 0);
    Addr addr = a->mm().mmapRegion(kPageSize, kProtRead | kProtWrite);
    machine.kernel().touch(ta, addr, true);
    const std::size_t entries = machine.scheduler().tlbOf(0).size();
    ASSERT_GT(entries, 0u);
    machine.scheduler().contextSwitch(0);
    EXPECT_EQ(machine.scheduler().tlbOf(0).size(), entries);
    EXPECT_TRUE(a->mm().residencyMask().test(0)); // entries linger
}

TEST_F(SchedFixture, StolenTimeAccumulatesAndDrains)
{
    machine.scheduler().chargeStolen(2, 500);
    machine.scheduler().chargeStolen(2, 250);
    EXPECT_EQ(machine.scheduler().takeStolen(2), 750u);
    EXPECT_EQ(machine.scheduler().takeStolen(2), 0u);
}

TEST_F(SchedFixture, TickPhasesDifferAcrossCores)
{
    Process *p = machine.kernel().createProcess("t");
    machine.kernel().spawnTask(p, 0);
    machine.kernel().spawnTask(p, 4);
    machine.run(kUsec);
    EXPECT_NE(machine.scheduler().nextTickAt(0),
              machine.scheduler().nextTickAt(4));
}

TEST_F(SchedFixture, OversubscribedCoreRotatesAtTicks)
{
    Process *a = machine.kernel().createProcess("a");
    Process *b = machine.kernel().createProcess("b");
    Task *ta = machine.kernel().spawnTask(a, 0);
    machine.kernel().spawnTask(b, 0);
    EXPECT_EQ(machine.scheduler().currentTask(0), ta);
    machine.run(2 * machine.config().cost.tickInterval);
    Task *cur = machine.scheduler().currentTask(0);
    machine.run(machine.config().cost.tickInterval);
    EXPECT_NE(machine.scheduler().currentTask(0), cur);
}

TEST_F(SchedFixture, NextTickAdvancesWithTime)
{
    Process *p = machine.kernel().createProcess("t");
    machine.kernel().spawnTask(p, 0);
    machine.run(kUsec);
    Tick first = machine.scheduler().nextTickAt(0);
    machine.run(2 * machine.config().cost.tickInterval);
    EXPECT_GT(machine.scheduler().nextTickAt(0), first);
}

TEST_F(SchedFixture, CoreServiceBasics)
{
    CoreService &cs = machine.scheduler();
    EXPECT_EQ(cs.coreCount(), machine.topo().totalCores());
    EXPECT_EQ(cs.nodeOfCore(0), 0u);
    EXPECT_EQ(cs.nodeOfCore(machine.topo().totalCores() - 1),
              machine.config().sockets - 1);
    EXPECT_TRUE(cs.coreIdle(0));
}

/**
 * The tick wheel (default) and the naive per-core tick events
 * (noFastpath) must process identical tick counts and report the
 * same per-core tick phases — on the 120-core machine, where slot
 * bucketing actually has work to do.
 */
TEST(SchedulerWheel, MatchesNaivePerCoreTicks)
{
    std::uint64_t ticks[2];
    for (int mode = 0; mode < 2; ++mode) {
        MachineConfig cfg = MachineConfig::largeNuma8S120C();
        cfg.noFastpath = mode == 1;
        Machine machine(cfg, PolicyKind::LinuxSync);
        Process *p = machine.kernel().createProcess("t");
        const unsigned cores = machine.topo().totalCores();
        for (CoreId c = 0; c < cores; ++c)
            machine.kernel().spawnTask(p, c);
        machine.run(kUsec);
        if (mode == 0) {
            // Phase check against the naive formula while the first
            // interval is still in flight.
            const Tick interval = machine.config().cost.tickInterval;
            for (CoreId c = 0; c < cores; ++c)
                EXPECT_EQ(machine.scheduler().nextTickAt(c),
                          (interval * (c + 1)) / cores)
                    << "core " << c;
        }
        machine.run(10 * machine.config().cost.tickInterval);
        ticks[mode] = machine.scheduler().ticksProcessed();
        EXPECT_GT(ticks[mode], 9u * cores);
    }
    EXPECT_EQ(ticks[0], ticks[1]);
}

/** Wheel slots keep rescheduling across stop/start transitions. */
TEST(SchedulerWheel, SurvivesIdleTransitions)
{
    MachineConfig cfg = test::tinyConfig();
    Machine machine(cfg, PolicyKind::LinuxSync);
    Process *p = machine.kernel().createProcess("t");
    Task *t = machine.kernel().spawnTask(p, 2);
    machine.run(3 * machine.config().cost.tickInterval + kUsec);
    const std::uint64_t before =
        machine.scheduler().ticksProcessed();
    EXPECT_GE(before, 2u);
    machine.kernel().exitTask(t);
    machine.run(3 * machine.config().cost.tickInterval);
    // Tickless idle: the (empty) wheel slots fire but process no
    // core work.
    EXPECT_EQ(machine.scheduler().ticksProcessed(), before);
    Task *t2 = machine.kernel().spawnTask(p, 2);
    (void)t2;
    machine.run(3 * machine.config().cost.tickInterval);
    EXPECT_GT(machine.scheduler().ticksProcessed(), before);
}

} // namespace
} // namespace latr
