// Kernel syscall-layer tests, run against every policy where the
// semantics must be identical.

#include <gtest/gtest.h>

#include "test_helpers.hh"

namespace latr
{
namespace
{

class KernelAllPolicies : public ::testing::TestWithParam<PolicyKind>
{
  protected:
    KernelAllPolicies()
        : machine(test::tinyConfig(), GetParam()),
          kernel(machine.kernel())
    {
        process = kernel.createProcess("app");
        task = kernel.spawnTask(process, 0);
        peer = kernel.spawnTask(process, 1);
    }

    /** Settle asynchronous work (ticks, reclamation, IPIs). */
    void
    settle(Duration d = 8 * kMsec)
    {
        machine.run(d);
    }

    Machine machine;
    Kernel &kernel;
    Process *process = nullptr;
    Task *task = nullptr;
    Task *peer = nullptr;
};

TEST_P(KernelAllPolicies, MmapTouchMunmapLifecycle)
{
    SyscallResult m = kernel.mmap(task, 4 * kPageSize,
                                  kProtRead | kProtWrite);
    ASSERT_TRUE(m.ok);
    EXPECT_GT(m.latency, 0u);
    test::touchRange(kernel, task, m.addr, 4 * kPageSize);
    EXPECT_EQ(machine.frames().allocatedFrames(), 4u);

    SyscallResult u = kernel.munmap(task, m.addr, 4 * kPageSize);
    ASSERT_TRUE(u.ok);
    settle();
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_P(KernelAllPolicies, MunmapOfUnmappedRangeSucceedsCheaply)
{
    // Valid but unmapped range: succeeds with nothing to do (as in
    // Linux). LATR still writes a state (it must conservatively park
    // the virtual range), so allow up to one state save.
    SyscallResult u = kernel.munmap(task, 0x7000'0000ULL, kPageSize);
    EXPECT_TRUE(u.ok);
    EXPECT_LE(u.shootdown, 200u);
    SyscallResult m = kernel.mmap(task, kPageSize, kProtRead);
    SyscallResult u2 = kernel.munmap(task, m.addr, kPageSize);
    EXPECT_TRUE(u2.ok);
}

TEST_P(KernelAllPolicies, MadviseDropsPagesKeepsVma)
{
    SyscallResult m = kernel.mmap(task, 4 * kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, task, m.addr, 4 * kPageSize);
    SyscallResult a = kernel.madvise(task, m.addr, 2 * kPageSize);
    ASSERT_TRUE(a.ok);
    settle();
    EXPECT_EQ(machine.frames().allocatedFrames(), 2u);
    // Refault works (VMA kept).
    TouchResult t = kernel.touch(task, m.addr, true);
    EXPECT_EQ(t.kind, TouchKind::MinorFault);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_P(KernelAllPolicies, MprotectRemovesWritePermissionEverywhere)
{
    SyscallResult m = kernel.mmap(task, 2 * kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, task, m.addr, 2 * kPageSize);
    test::touchRange(kernel, peer, m.addr, 2 * kPageSize);
    SyscallResult pr =
        kernel.mprotect(task, m.addr, 2 * kPageSize, kProtRead);
    ASSERT_TRUE(pr.ok);
    settle();
    // Writes now fault on both cores (no stale writable entries).
    EXPECT_EQ(kernel.touch(task, m.addr, true).kind,
              TouchKind::SegFault);
    EXPECT_EQ(kernel.touch(peer, m.addr, true).kind,
              TouchKind::SegFault);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_P(KernelAllPolicies, MremapMovesMappingPreservingFrames)
{
    SyscallResult m = kernel.mmap(task, 2 * kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, task, m.addr, 2 * kPageSize);
    const Pfn f0 =
        process->mm().pageTable().find(pageOf(m.addr))->pfn;
    SyscallResult r =
        kernel.mremap(task, m.addr, 2 * kPageSize, 2 * kPageSize);
    ASSERT_TRUE(r.ok);
    EXPECT_NE(r.addr, m.addr);
    settle();
    // Old range gone, new range maps the same frame.
    EXPECT_EQ(kernel.touch(task, m.addr, false).kind,
              TouchKind::SegFault);
    TouchResult t = kernel.touch(task, r.addr, false);
    EXPECT_EQ(t.pfn, f0);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_P(KernelAllPolicies, CowMarkAndBreak)
{
    SyscallResult m = kernel.mmap(task, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, task, m.addr, kPageSize);
    const Pfn orig =
        process->mm().pageTable().find(pageOf(m.addr))->pfn;
    // Simulate a second owner of the frame (as fork would create).
    machine.frames().get(orig);
    SyscallResult c = kernel.markCow(task, m.addr, kPageSize);
    ASSERT_TRUE(c.ok);
    settle();

    TouchResult w = kernel.touch(task, m.addr, true);
    EXPECT_EQ(w.kind, TouchKind::CowBreak);
    EXPECT_NE(w.pfn, orig);
    EXPECT_EQ(machine.frames().refcount(orig), 1u); // our ref dropped
    settle();
    EXPECT_EQ(machine.checker()->violations(), 0u);
    machine.frames().put(orig); // release the fake second owner
}

TEST_P(KernelAllPolicies, CowBreakSoleOwnerUpgradesInPlace)
{
    SyscallResult m = kernel.mmap(task, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, task, m.addr, kPageSize);
    const Pfn orig =
        process->mm().pageTable().find(pageOf(m.addr))->pfn;
    kernel.markCow(task, m.addr, kPageSize);
    settle();
    TouchResult w = kernel.touch(task, m.addr, true);
    EXPECT_EQ(w.kind, TouchKind::CowBreak);
    EXPECT_EQ(w.pfn, orig); // no copy needed
}

TEST_P(KernelAllPolicies, ExitProcessReleasesEverything)
{
    SyscallResult m = kernel.mmap(task, 8 * kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, task, m.addr, 8 * kPageSize);
    test::touchRange(kernel, peer, m.addr, 8 * kPageSize);
    settle();
    kernel.exitProcess(process);
    settle();
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_P(KernelAllPolicies, TouchStatsAreCounted)
{
    SyscallResult m = kernel.mmap(task, kPageSize,
                                  kProtRead | kProtWrite);
    kernel.touch(task, m.addr, true);
    kernel.touch(task, 0x10, false); // unmapped low address
    EXPECT_EQ(machine.stats().counterValue("vm.minor_faults"), 1u);
    EXPECT_EQ(machine.stats().counterValue("vm.segfaults"), 1u);
}

TEST_P(KernelAllPolicies, MunmapLatencyRecorded)
{
    SyscallResult m = kernel.mmap(task, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, task, m.addr, kPageSize);
    kernel.munmap(task, m.addr, kPageSize);
    EXPECT_EQ(
        machine.stats().distribution("munmap.latency_ns").count(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, KernelAllPolicies,
    ::testing::Values(PolicyKind::LinuxSync, PolicyKind::Latr,
                      PolicyKind::Abis, PolicyKind::Barrelfish),
    [](const ::testing::TestParamInfo<PolicyKind> &info) {
        return policyKindName(info.param);
    });

} // namespace
} // namespace latr
