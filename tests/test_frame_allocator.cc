// Unit tests for the physical frame allocator.

#include <gtest/gtest.h>

#include <set>

#include "mem/frame_allocator.hh"

namespace latr
{
namespace
{

class CountingListener : public FrameListener
{
  public:
    void onFrameAlloc(Pfn) override { ++allocs; }
    void onFrameFree(Pfn) override { ++frees; }

    int allocs = 0;
    int frees = 0;
};

TEST(FrameAllocator, AllocPrefersRequestedNode)
{
    FrameAllocator fa(2, 100);
    Pfn a = fa.alloc(0);
    Pfn b = fa.alloc(1);
    EXPECT_EQ(fa.nodeOf(a), 0u);
    EXPECT_EQ(fa.nodeOf(b), 1u);
}

TEST(FrameAllocator, AllocStartsWithRefcountOne)
{
    FrameAllocator fa(1, 10);
    Pfn a = fa.alloc(0);
    EXPECT_EQ(fa.refcount(a), 1u);
    EXPECT_EQ(fa.allocatedFrames(), 1u);
}

TEST(FrameAllocator, PutReturnsFrameToPool)
{
    FrameAllocator fa(1, 10);
    Pfn a = fa.alloc(0);
    EXPECT_EQ(fa.freeFrames(0), 9u);
    fa.put(a);
    EXPECT_EQ(fa.freeFrames(0), 10u);
    EXPECT_EQ(fa.refcount(a), 0u);
    EXPECT_EQ(fa.allocatedFrames(), 0u);
}

TEST(FrameAllocator, GetPutRefcounting)
{
    FrameAllocator fa(1, 10);
    Pfn a = fa.alloc(0);
    fa.get(a);
    fa.get(a);
    EXPECT_EQ(fa.refcount(a), 3u);
    fa.put(a);
    fa.put(a);
    EXPECT_EQ(fa.refcount(a), 1u);
    EXPECT_EQ(fa.freeFrames(0), 9u); // still allocated
    fa.put(a);
    EXPECT_EQ(fa.freeFrames(0), 10u);
}

TEST(FrameAllocator, FallsBackToOtherNodesWhenExhausted)
{
    FrameAllocator fa(2, 2);
    fa.alloc(0);
    fa.alloc(0);
    Pfn c = fa.alloc(0); // node 0 empty; falls back to node 1
    EXPECT_NE(c, kPfnInvalid);
    EXPECT_EQ(fa.nodeOf(c), 1u);
}

TEST(FrameAllocator, ReturnsInvalidWhenFullyExhausted)
{
    FrameAllocator fa(2, 1);
    EXPECT_NE(fa.alloc(0), kPfnInvalid);
    EXPECT_NE(fa.alloc(0), kPfnInvalid);
    EXPECT_EQ(fa.alloc(0), kPfnInvalid);
}

TEST(FrameAllocator, FramesAreUniqueWhileHeld)
{
    FrameAllocator fa(2, 50);
    std::set<Pfn> seen;
    for (int i = 0; i < 100; ++i) {
        Pfn p = fa.alloc(i % 2);
        EXPECT_TRUE(seen.insert(p).second) << "duplicate frame " << p;
    }
}

TEST(FrameAllocator, FreedFrameIsReusable)
{
    FrameAllocator fa(1, 1);
    Pfn a = fa.alloc(0);
    fa.put(a);
    Pfn b = fa.alloc(0);
    EXPECT_EQ(a, b);
}

TEST(FrameAllocator, ListenerSeesLifecycle)
{
    FrameAllocator fa(1, 10);
    CountingListener listener;
    fa.setListener(&listener);
    Pfn a = fa.alloc(0);
    fa.get(a);
    fa.put(a); // refcount 1: no free event
    EXPECT_EQ(listener.allocs, 1);
    EXPECT_EQ(listener.frees, 0);
    fa.put(a);
    EXPECT_EQ(listener.frees, 1);
}

TEST(FrameAllocator, NodeOfPartitionsTheSpace)
{
    FrameAllocator fa(4, 100);
    EXPECT_EQ(fa.nodeOf(0), 0u);
    EXPECT_EQ(fa.nodeOf(99), 0u);
    EXPECT_EQ(fa.nodeOf(100), 1u);
    EXPECT_EQ(fa.nodeOf(399), 3u);
}

TEST(FrameAllocatorDeath, PutOnFreeFramePanics)
{
    FrameAllocator fa(1, 4);
    Pfn a = fa.alloc(0);
    fa.put(a);
    EXPECT_DEATH(fa.put(a), "free frame");
}

TEST(FrameAllocatorDeath, GetOnFreeFramePanics)
{
    FrameAllocator fa(1, 4);
    EXPECT_DEATH(fa.get(0), "free frame");
}

TEST(FrameAllocatorDeath, OutOfRangePfnPanics)
{
    FrameAllocator fa(1, 4);
    EXPECT_DEATH(fa.refcount(100), "out of range");
}

class AllocatorChurn : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AllocatorChurn, AllocFreeBalanceHoldsUnderChurn)
{
    const unsigned nodes = GetParam();
    FrameAllocator fa(nodes, 64);
    std::vector<Pfn> held;
    // Deterministic churn pattern.
    for (int round = 0; round < 500; ++round) {
        if (round % 3 != 2) {
            Pfn p = fa.alloc(round % nodes);
            if (p != kPfnInvalid)
                held.push_back(p);
        } else if (!held.empty()) {
            fa.put(held.back());
            held.pop_back();
        }
    }
    EXPECT_EQ(fa.allocatedFrames(), held.size());
    std::uint64_t free_total = 0;
    for (unsigned n = 0; n < nodes; ++n)
        free_total += fa.freeFrames(n);
    EXPECT_EQ(free_total + held.size(),
              static_cast<std::uint64_t>(nodes) * 64);
}

INSTANTIATE_TEST_SUITE_P(Nodes, AllocatorChurn,
                         ::testing::Values(1u, 2u, 4u, 8u));

} // namespace
} // namespace latr
