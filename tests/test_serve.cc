// Integration tests for the open-loop serving subsystem:
// generator determinism (same seed => byte-identical .latrace),
// record/replay digest equality across --sim-threads counts, tenant
// churn accounting, and the paper's headline ordering (LATR's tail
// below synchronous Linux's).

#include <gtest/gtest.h>

#include <string>

#include "check/executor.hh"
#include "machine/machine.hh"
#include "serve/latrace.hh"
#include "serve/serve.hh"
#include "topo/machine_config.hh"

namespace latr
{
namespace
{

ServeConfig
smallConfig()
{
    ServeConfig config;
    config.workers = 8;
    config.tenants = 4;
    config.users = 100'000;
    config.arrivalRatePerSec = 120'000;
    config.duration = 30 * kMsec;
    config.diurnalPeriod = 10 * kMsec;
    config.churnInterval = 7 * kMsec;
    config.seed = 3;
    return config;
}

ServeResult
runOn(PolicyKind kind, unsigned sim_threads, const Latrace &trace)
{
    MachineConfig config = MachineConfig::commodity2S16C();
    config.simThreads = sim_threads;
    Machine machine(config, kind);
    return runServeTrace(machine, trace);
}

TEST(Serve, GeneratorIsByteIdenticalForEqualSeeds)
{
    const ServeConfig config = smallConfig();
    const std::string a = latraceSerialize(generateServeTrace(config));
    const std::string b = latraceSerialize(generateServeTrace(config));
    EXPECT_EQ(a, b);

    ServeConfig other = config;
    other.seed = config.seed + 1;
    EXPECT_NE(latraceSerialize(generateServeTrace(other)), a);
}

TEST(Serve, GeneratorHitsTheConfiguredRate)
{
    const ServeConfig config = smallConfig();
    const Latrace trace = generateServeTrace(config);
    std::uint64_t requests = 0;
    for (const LatraceRecord &r : trace.records)
        requests += r.op == LatraceOp::Request;
    const double expected = config.arrivalRatePerSec *
                            static_cast<double>(config.duration) / 1e9;
    EXPECT_NEAR(static_cast<double>(requests), expected,
                0.1 * expected);
    // Ticks nondecreasing (the wire format's invariant).
    for (std::size_t i = 1; i < trace.records.size(); ++i)
        ASSERT_GE(trace.records[i].tick, trace.records[i - 1].tick);
}

TEST(Serve, EveryArrivalIsAccountedFor)
{
    const Latrace trace = generateServeTrace(smallConfig());
    const ServeResult r = runOn(PolicyKind::Latr, 0, trace);
    EXPECT_GT(r.completed, 0u);
    EXPECT_GT(r.tenantChurns, 0u);
    // Open-loop drains fully: every arrival either completed or was
    // dropped by tenant churn while queued.
    EXPECT_EQ(r.completed + r.droppedChurn, r.arrivals);
    EXPECT_EQ(r.latency.count(), r.completed);
    EXPECT_EQ(r.p50(), r.latency.percentile(0.50));
    EXPECT_LE(r.p50(), r.p99());
    EXPECT_LE(r.p99(), r.p999());
}

TEST(Serve, ReplayOfRecordingMatchesOriginalRun)
{
    const Latrace recorded = generateServeTrace(smallConfig());

    // Round-trip the recording through its wire format.
    Latrace replayed;
    std::string error;
    ASSERT_TRUE(
        latraceParse(latraceSerialize(recorded), &replayed, &error))
        << error;

    const ServeResult a = runOn(PolicyKind::Latr, 0, recorded);
    const ServeResult b = runOn(PolicyKind::Latr, 0, replayed);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.latency.digest(), b.latency.digest());
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.p999(), b.p999());
}

TEST(Serve, DigestsByteIdenticalAcrossSimThreads)
{
    // The acceptance bar: record once, replay under every policy at
    // --sim-threads 1 and 4, and the digests (latency histogram plus
    // the machine's full stat dump) match the sequential engine's.
    ServeConfig config = smallConfig();
    config.duration = 15 * kMsec;
    const Latrace trace = generateServeTrace(config);
    for (PolicyKind kind : allPolicyKinds()) {
        const ServeResult base = runOn(kind, 0, trace);
        for (unsigned threads : {1u, 4u}) {
            const ServeResult run = runOn(kind, threads, trace);
            EXPECT_EQ(run.digest, base.digest)
                << policyKindName(kind) << " sim-threads " << threads;
            EXPECT_EQ(run.latency.digest(), base.latency.digest())
                << policyKindName(kind) << " sim-threads " << threads;
        }
    }
}

TEST(Serve, LatrTailBeatsSynchronousLinux)
{
    // The figure this subsystem exists to reproduce: under open-loop
    // load, LATR's lazy shootdowns keep the p99 below Linux's
    // synchronous IPI path on the same trace.
    const Latrace trace = generateServeTrace(smallConfig());
    const ServeResult linux_r = runOn(PolicyKind::LinuxSync, 0, trace);
    const ServeResult latr_r = runOn(PolicyKind::Latr, 0, trace);
    EXPECT_LT(latr_r.p99(), linux_r.p99())
        << "latr p99 " << latr_r.p99() << " vs linux p99 "
        << linux_r.p99();
    EXPECT_LT(latr_r.latency.mean(), linux_r.latency.mean());
}

TEST(Serve, ChurnlessTraceDropsNothing)
{
    ServeConfig config = smallConfig();
    config.churnInterval = 0;
    config.duration = 10 * kMsec;
    const Latrace trace = generateServeTrace(config);
    const ServeResult r = runOn(PolicyKind::Latr, 0, trace);
    EXPECT_EQ(r.tenantChurns, 0u);
    EXPECT_EQ(r.droppedChurn, 0u);
    EXPECT_EQ(r.completed, r.arrivals);
}

TEST(Serve, WorkerCountClampsToMachine)
{
    // A trace recorded on a bigger machine still replays: workers
    // clamp to the cores available.
    ServeConfig config = smallConfig();
    config.workers = 64; // commodity2S16C has 16 cores
    config.duration = 5 * kMsec;
    const Latrace trace = generateServeTrace(config);
    const ServeResult r = runOn(PolicyKind::Latr, 0, trace);
    EXPECT_EQ(r.completed + r.droppedChurn, r.arrivals);
}

} // namespace
} // namespace latr
