// Tests for the MADV_FREE lazy-reclaim page-cache workload
// (src/workload/lazycache): ring overflow actually reached, digests
// byte-identical across engine thread counts, the steps genuinely
// batched (not barriers) under the parallel engine, and a
// lazycache-shaped free-then-reuse script held architecturally
// equivalent and staleness-clean across all four policies by the
// differential harness.

#include <gtest/gtest.h>

#include "check/executor.hh"
#include "check/script.hh"
#include "sim/parallel_exec.hh"
#include "test_helpers.hh"
#include "workload/lazycache.hh"

namespace latr
{
namespace
{

/** A small scenario that still overflows the 64-entry ring. */
LazyCacheConfig
smallScenario()
{
    LazyCacheConfig cfg;
    cfg.cachePages = 1024;
    cfg.hotFraction = 0.25;
    cfg.readers = 4;
    cfg.writers = 2;
    cfg.burstPages = 96; // > latrStatesPerCore
    cfg.pressureInterval = 1 * kMsec;
    return cfg;
}

TEST(LazyCache, PressureBurstsOverflowTheRingIntoFallback)
{
    Machine machine(MachineConfig::commodity2S16C(),
                    PolicyKind::Latr);
    LazyCacheWorkload cache(machine, smallScenario());
    LazyCacheResult r = cache.measure(5 * kMsec, 20 * kMsec);

    EXPECT_GT(r.reads, 0u);
    EXPECT_GT(r.writes, 0u);
    EXPECT_GT(r.discardedPages, 0u);
    // Each 96-page burst exceeds the 64-slot ring, so overflow must
    // have fallen back to IPIs, and earlier bursts' frames must have
    // come back through the lazy reclaim pass.
    EXPECT_GT(r.fallbackIpis, 0u);
    EXPECT_GT(r.reclaimedPages, 0u);
    // Discarded pages get re-read eventually: the optimistic read
    // lock must have failed revalidation and refilled.
    EXPECT_GT(r.revalidationFails, 0u);
    EXPECT_EQ(r.refills, r.revalidationFails);
    EXPECT_GT(r.hits, 0u);
    EXPECT_EQ(machine.checker()->violations(), 0u)
        << machine.checker()->firstViolation();
}

TEST(LazyCache, LinuxPolicyRunsTheSameLoopSynchronously)
{
    Machine machine(MachineConfig::commodity2S16C(),
                    PolicyKind::LinuxSync);
    LazyCacheWorkload cache(machine, smallScenario());
    LazyCacheResult r = cache.measure(5 * kMsec, 20 * kMsec);
    EXPECT_GT(r.reads, 0u);
    EXPECT_GT(r.discardedPages, 0u);
    EXPECT_EQ(r.fallbackIpis, 0u); // no ring to overflow
    EXPECT_EQ(machine.checker()->violations(), 0u)
        << machine.checker()->firstViolation();
}

TEST(LazyCache, DigestIdenticalAcrossSimThreadCounts)
{
    std::uint64_t digests[3];
    std::uint64_t reads[3];
    const unsigned threads[3] = {0, 1, 4};
    for (int i = 0; i < 3; ++i) {
        MachineConfig config = MachineConfig::commodity2S16C();
        config.simThreads = threads[i];
        Machine machine(config, PolicyKind::Latr);
        LazyCacheWorkload cache(machine, smallScenario());
        LazyCacheResult r = cache.measure(5 * kMsec, 20 * kMsec);
        digests[i] = r.digest;
        reads[i] = r.reads;
        EXPECT_EQ(machine.checker()->violations(), 0u);
    }
    EXPECT_EQ(digests[0], digests[1]);
    EXPECT_EQ(digests[0], digests[2]);
    EXPECT_EQ(reads[0], reads[2]);
}

TEST(LazyCache, StepsDeclareFootprintsAndActuallyBatch)
{
    // The workload's reason for declaring footprints: its steps must
    // ride the batched engine, not serialize it. Undeclared events
    // (reclaim lambdas, IPI deliveries) may still be barriers, but
    // the bulk of the event stream is actor steps.
    MachineConfig config = MachineConfig::commodity2S16C();
    config.simThreads = 4;
    Machine machine(config, PolicyKind::Latr);
    LazyCacheWorkload cache(machine, smallScenario());
    cache.measure(5 * kMsec, 20 * kMsec);
    ASSERT_NE(machine.parallelExecutor(), nullptr);
    const ParallelExecutor::Stats &st =
        machine.parallelExecutor()->stats();
    EXPECT_GT(st.batchedEvents, 0u);
    EXPECT_GT(st.batchedEvents, st.barrierEvents);
}

/**
 * A lazycache-shaped conformance script: fill slots from a writer
 * task, share them with readers, MADV_FREE a burst (optionally
 * larger than the ring), quiesce, and refill — the free-then-reuse
 * cycle in script form, runnable under every policy.
 */
Script
lazycacheScript(unsigned slots, bool overflow)
{
    Script s;
    s.procs = 1;
    auto push = [&s](OpKind kind, std::uint32_t task,
                     std::uint32_t slot, std::uint64_t value,
                     std::uint64_t off, bool rw) {
        s.ops.push_back(Op{kind, task, slot, value, off, rw});
    };
    for (unsigned i = 0; i < slots; ++i) {
        push(OpKind::Mmap, 0, i, 2, 0, true);
        push(OpKind::Touch, 0, i, 0, 0, true);
        push(OpKind::Touch, 2, i, 0, 1, false);
    }
    // The pressure burst: back-to-back, no time advancing between.
    const unsigned burst = overflow ? slots : slots / 2;
    for (unsigned i = 0; i < burst; ++i)
        push(OpKind::MadviseFree, 0, i, 0, 0, false);
    push(OpKind::Quiesce, 0, 0, 0, 0, false);
    // Free-then-reuse: refill the discarded slots after coherence.
    for (unsigned i = 0; i < burst; ++i) {
        push(OpKind::Touch, 0, i, 0, 0, true);
        push(OpKind::Touch, 2, i, 0, 1, false);
    }
    push(OpKind::Quiesce, 0, 0, 0, 0, false);
    return s;
}

TEST(LazyCacheCheck, DifferentialCleanAndEquivalent)
{
    const Script script = lazycacheScript(24, false);
    DiffResult diff;
    std::vector<RunResult> runs =
        runDifferential(script, ExecOptions{}, &diff);
    EXPECT_TRUE(diff.equivalent) << diff.divergence;
    for (const RunResult &run : runs) {
        EXPECT_EQ(run.stalenessViolations, 0u) << run.firstStaleness;
        EXPECT_EQ(run.invariantViolations, 0u) << run.firstInvariant;
    }
}

TEST(LazyCacheCheck, OverflowBurstStaysEquivalentToo)
{
    // 70 back-to-back MADV_FREEs straddle the 64-entry ring: the
    // overflow tail goes synchronous, the rest stays lazy — and the
    // final architectural state must not betray which was which.
    const Script script = lazycacheScript(70, true);
    DiffResult diff;
    std::vector<RunResult> runs =
        runDifferential(script, ExecOptions{}, &diff);
    EXPECT_TRUE(diff.equivalent) << diff.divergence;
    for (const RunResult &run : runs) {
        EXPECT_EQ(run.stalenessViolations, 0u) << run.firstStaleness;
        EXPECT_EQ(run.invariantViolations, 0u) << run.firstInvariant;
        if (run.policy == PolicyKind::Latr)
            EXPECT_GT(run.latrFallbackIpis, 0u);
    }
}

TEST(LazyCacheCheck, SimThreads1And4AgreeOnArchitecturalState)
{
    const Script script = lazycacheScript(70, true);
    ExecOptions seq;
    seq.simThreads = 1;
    ExecOptions par;
    par.simThreads = 4;
    const RunResult a = runScript(script, PolicyKind::Latr, seq);
    const RunResult b = runScript(script, PolicyKind::Latr, par);
    EXPECT_TRUE(a.clean());
    EXPECT_TRUE(b.clean());
    const DiffResult diff = diffStates(a, b);
    EXPECT_TRUE(diff.equivalent) << diff.divergence;
    // Stronger than equivalence: the engines replay the identical
    // schedule, so even the fallback count matches exactly.
    EXPECT_EQ(a.latrFallbackIpis, b.latrFallbackIpis);
    EXPECT_EQ(a.regionSig, b.regionSig);
}

} // namespace
} // namespace latr
