// Tests for the bounded-staleness oracle itself: white-box unit
// tests driving the listener interface with a manual clock, plus the
// machine-level wiring.

#include <gtest/gtest.h>

#include "check/staleness.hh"
#include "test_helpers.hh"

namespace latr
{
namespace
{

TEST(Staleness, OnTimeRemovalIsClean)
{
    StalenessOracle o;
    o.setNow(0);
    o.onTlbInsert(0, 100, 7, 0);
    EXPECT_EQ(o.mirroredEntries(), 1u);

    o.notePageTableInvalidation(0, 1, 100, 100, CpuMask::single(0),
                                /*deadline=*/500, "munmap");
    EXPECT_EQ(o.pendingMarks(), 1u);

    o.setNow(500); // exactly at the deadline still counts
    o.onTlbRemove(0, 100, 7, 0);
    EXPECT_EQ(o.violations(), 0u);
    EXPECT_EQ(o.pendingMarks(), 0u);
    EXPECT_EQ(o.mirroredEntries(), 0u);
}

TEST(Staleness, LateRemovalIsAViolation)
{
    StalenessOracle o;
    o.setNow(0);
    o.onTlbInsert(3, 100, 7, 0);
    o.notePageTableInvalidation(0, 2, 100, 100, CpuMask::single(3),
                                /*deadline=*/500, "madvise");
    o.setNow(501);
    o.onTlbRemove(3, 100, 7, 0);
    EXPECT_EQ(o.violations(), 1u);
    const std::string &first = o.firstViolation();
    EXPECT_NE(first.find("outlived"), std::string::npos);
    EXPECT_NE(first.find("core 3"), std::string::npos);
    EXPECT_NE(first.find("vpn 100"), std::string::npos);
    EXPECT_NE(first.find("pfn 7"), std::string::npos);
    EXPECT_NE(first.find("madvise"), std::string::npos);
    EXPECT_NE(first.find("deadline 500"), std::string::npos);
}

TEST(Staleness, NeverRemovedIsCaughtByAudit)
{
    StalenessOracle o;
    o.setNow(0);
    o.onTlbInsert(1, 200, 9, 4);
    o.notePageTableInvalidation(4, 1, 200, 200, CpuMask::single(1),
                                /*deadline=*/1000, "munmap");
    o.auditAt(1000); // not yet due
    EXPECT_EQ(o.violations(), 0u);
    o.auditAt(1001);
    EXPECT_EQ(o.violations(), 1u);
    EXPECT_NE(o.firstViolation().find("never invalidated"),
              std::string::npos);
    EXPECT_NE(o.firstViolation().find("pcid 4"), std::string::npos);
}

TEST(Staleness, FrameReallocWhileMarkedIsAViolation)
{
    StalenessOracle o;
    o.setNow(0);
    o.onTlbInsert(0, 100, 7, 0);
    o.notePageTableInvalidation(0, 1, 100, 100, CpuMask::single(0),
                                /*deadline=*/500, "munmap");
    o.onFrameAlloc(7);
    EXPECT_EQ(o.violations(), 1u);
    EXPECT_NE(o.firstViolation().find("reallocated"),
              std::string::npos);
    // An unmarked frame's realloc is InvariantChecker's business.
    o.onFrameAlloc(8);
    EXPECT_EQ(o.violations(), 1u);
}

TEST(Staleness, ReMarkKeepsTheEarliestDeadline)
{
    StalenessOracle o;
    o.setNow(0);
    o.onTlbInsert(0, 100, 7, 0);
    o.notePageTableInvalidation(0, 1, 100, 100, CpuMask::single(0),
                                /*deadline=*/300, "madvise");
    // A later, laxer promise must not stretch the earlier one.
    o.notePageTableInvalidation(0, 1, 100, 100, CpuMask::single(0),
                                /*deadline=*/900, "munmap");
    EXPECT_EQ(o.pendingMarks(), 1u);
    o.setNow(600);
    o.onTlbRemove(0, 100, 7, 0);
    EXPECT_EQ(o.violations(), 1u);
    EXPECT_NE(o.firstViolation().find("madvise"), std::string::npos);
}

TEST(Staleness, OnlyMirroredTranslationsGetMarked)
{
    StalenessOracle o;
    o.setNow(0);
    // Nothing cached anywhere: no promise is owed.
    o.notePageTableInvalidation(0, 1, 100, 200, CpuMask::firstN(4),
                                /*deadline=*/500, "munmap");
    EXPECT_EQ(o.pendingMarks(), 0u);
    o.auditAt(10000);
    EXPECT_EQ(o.violations(), 0u);

    // Wrong pcid: the cached translation belongs to another context.
    o.onTlbInsert(0, 100, 7, /*pcid=*/3);
    o.notePageTableInvalidation(/*pcid=*/5, 1, 100, 100,
                                CpuMask::single(0), 500, "munmap");
    EXPECT_EQ(o.pendingMarks(), 0u);
}

TEST(Staleness, ReinsertSupersedesPendingMark)
{
    StalenessOracle o;
    o.setNow(0);
    o.onTlbInsert(0, 100, 7, 0);
    o.notePageTableInvalidation(0, 1, 100, 100, CpuMask::single(0),
                                /*deadline=*/500, "munmap");
    // The TLB refilled the slot with a fresh translation (new pfn):
    // the old promise is moot.
    o.onTlbInsert(0, 100, 8, 0);
    EXPECT_EQ(o.pendingMarks(), 0u);
    o.setNow(9999);
    o.onTlbRemove(0, 100, 8, 0);
    EXPECT_EQ(o.violations(), 0u);
}

TEST(Staleness, ResetClearsEverything)
{
    StalenessOracle o;
    o.setNow(0);
    o.onTlbInsert(0, 100, 7, 0);
    o.notePageTableInvalidation(0, 1, 100, 100, CpuMask::single(0),
                                100, "munmap");
    o.setNow(200);
    o.onTlbRemove(0, 100, 7, 0);
    ASSERT_EQ(o.violations(), 1u);
    o.reset();
    EXPECT_EQ(o.violations(), 0u);
    EXPECT_EQ(o.pendingMarks(), 0u);
    EXPECT_EQ(o.mirroredEntries(), 0u);
    EXPECT_TRUE(o.firstViolation().empty());
}

TEST(StalenessDeath, StrictModePanicsImmediately)
{
    StalenessOracle o(/*strict=*/true);
    o.setNow(0);
    o.onTlbInsert(0, 100, 7, 0);
    o.notePageTableInvalidation(0, 1, 100, 100, CpuMask::single(0),
                                100, "munmap");
    o.setNow(200);
    EXPECT_DEATH(o.onTlbRemove(0, 100, 7, 0), "staleness contract");
}

TEST(Staleness, MachineInstallIsIdempotent)
{
    Machine machine(test::tinyConfig(), PolicyKind::Latr);
    EXPECT_EQ(machine.staleness(), nullptr);
    machine.installStalenessOracle();
    StalenessOracle *first = machine.staleness();
    ASSERT_NE(first, nullptr);
    machine.installStalenessOracle();
    EXPECT_EQ(machine.staleness(), first);

    // A short workload drives the wiring end to end.
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("a");
    Task *t = kernel.spawnTask(p, 0);
    machine.run(kUsec);
    SyscallResult m =
        kernel.mmap(t, 4 * kPageSize, kProtRead | kProtWrite);
    ASSERT_TRUE(m.ok);
    kernel.touch(t, m.addr, true);
    kernel.munmap(t, m.addr, 4 * kPageSize);
    machine.run(10 * kMsec);
    machine.staleness()->auditAt(machine.now());
    EXPECT_EQ(machine.staleness()->violations(), 0u)
        << machine.staleness()->firstViolation();
}

} // namespace
} // namespace latr
