// Unit tests for the NUMA topology and machine presets.

#include <gtest/gtest.h>

#include "topo/machine_config.hh"
#include "topo/topology.hh"

namespace latr
{
namespace
{

TEST(Topology, NodeOfMapsDensely)
{
    NumaTopology t(2, 8);
    EXPECT_EQ(t.totalCores(), 16u);
    EXPECT_EQ(t.nodeOf(0), 0u);
    EXPECT_EQ(t.nodeOf(7), 0u);
    EXPECT_EQ(t.nodeOf(8), 1u);
    EXPECT_EQ(t.nodeOf(15), 1u);
}

TEST(Topology, CoresOnNode)
{
    NumaTopology t(2, 3);
    EXPECT_EQ(t.coresOnNode(0), (std::vector<CoreId>{0, 1, 2}));
    EXPECT_EQ(t.coresOnNode(1), (std::vector<CoreId>{3, 4, 5}));
}

TEST(Topology, TwoSocketHops)
{
    NumaTopology t(2, 8);
    EXPECT_EQ(t.hops(0, 1), 0u);
    EXPECT_EQ(t.hops(0, 8), 1u);
    EXPECT_EQ(t.maxHops(), 1u);
}

TEST(Topology, EightSocketHopsCapAtTwo)
{
    NumaTopology t(8, 15);
    EXPECT_EQ(t.socketHops(0, 0), 0u);
    EXPECT_EQ(t.socketHops(0, 1), 1u);
    EXPECT_EQ(t.socketHops(0, 3), 2u);  // Hamming distance 2
    EXPECT_EQ(t.socketHops(0, 7), 2u);  // Hamming distance 3, capped
    EXPECT_EQ(t.maxHops(), 2u);
}

TEST(Topology, HopsAreSymmetric)
{
    NumaTopology t(8, 2);
    for (CoreId a = 0; a < t.totalCores(); ++a)
        for (CoreId b = 0; b < t.totalCores(); ++b)
            EXPECT_EQ(t.hops(a, b), t.hops(b, a));
}

TEST(TopologyDeath, OutOfRangeCorePanics)
{
    NumaTopology t(2, 2);
    EXPECT_DEATH(t.nodeOf(4), "out of range");
}

TEST(MachineConfigPresets, CommodityMatchesTable3)
{
    MachineConfig cfg = MachineConfig::commodity2S16C();
    EXPECT_EQ(cfg.sockets, 2u);
    EXPECT_EQ(cfg.coresPerSocket, 8u);
    EXPECT_EQ(cfg.totalCores(), 16u);
    EXPECT_EQ(cfg.l1TlbEntries, 64u);
    EXPECT_EQ(cfg.l2TlbEntries, 1024u);
    EXPECT_EQ(cfg.llcBytesPerSocket, 20ULL * 1024 * 1024);
    EXPECT_EQ(cfg.latrStatesPerCore, 64u);
    EXPECT_FALSE(cfg.pcidEnabled); // Linux 4.10 default
}

TEST(MachineConfigPresets, LargeNumaMatchesTable3)
{
    MachineConfig cfg = MachineConfig::largeNuma8S120C();
    EXPECT_EQ(cfg.sockets, 8u);
    EXPECT_EQ(cfg.coresPerSocket, 15u);
    EXPECT_EQ(cfg.totalCores(), 120u);
    EXPECT_EQ(cfg.l2TlbEntries, 512u);
    EXPECT_EQ(cfg.llcBytesPerSocket, 30ULL * 1024 * 1024);
}

TEST(CostModel, SingleIpiMatchesPaperCalibration)
{
    // Paper section 1: an IPI takes ~2.7 us on the 2-socket machine
    // (one hop) and ~6.6 us on the 8-socket one (two hops).
    CostModel c2 = commodityCostModel();
    EXPECT_NEAR(c2.ipiDeliveryCost(1), 2700, 300);
    CostModel c8 = largeNumaCostModel();
    EXPECT_NEAR(c8.ipiDeliveryCost(2), 6600, 400);
}

TEST(CostModel, Table5Anchors)
{
    CostModel c = commodityCostModel();
    EXPECT_NEAR(c.latrStateSave, 132, 5);
    // Sweep fixed cost plus one match lands near the paper's 158 ns.
    EXPECT_NEAR(c.latrSweepFixed + c.latrSweepPerMatch, 158, 10);
}

TEST(CostModel, LocalInvalidateBatching)
{
    CostModel c;
    EXPECT_EQ(c.localInvalidateCost(1), c.invlpg);
    EXPECT_EQ(c.localInvalidateCost(32), 32 * c.invlpg);
    // 33 or more pages: full flush (half the 64-entry L1 D-TLB).
    EXPECT_EQ(c.localInvalidateCost(33), c.tlbFullFlush);
    EXPECT_EQ(c.localInvalidateCost(512), c.tlbFullFlush);
}

class TopologySweep
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(TopologySweep, EveryCoreHasANodeAndHopsAreBounded)
{
    auto [sockets, cps] = GetParam();
    NumaTopology t(sockets, cps);
    for (CoreId c = 0; c < t.totalCores(); ++c) {
        EXPECT_LT(t.nodeOf(c), sockets);
        EXPECT_LE(t.hops(0, c), 2u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopologySweep,
    ::testing::Values(std::make_pair(1u, 4u), std::make_pair(2u, 8u),
                      std::make_pair(4u, 4u), std::make_pair(8u, 15u),
                      std::make_pair(8u, 16u)));

} // namespace
} // namespace latr
