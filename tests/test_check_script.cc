// Tests for the conformance harness's op-script layer: generator
// determinism, the stable text form, and its parser.

#include <gtest/gtest.h>

#include "check/script.hh"

namespace latr
{
namespace
{

TEST(CheckScript, GeneratorIsDeterministic)
{
    GenOptions gen;
    gen.numOps = 120;
    Script a = generateScript(42, gen);
    Script b = generateScript(42, gen);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    EXPECT_EQ(serializeScript(a), serializeScript(b));
}

TEST(CheckScript, DifferentSeedsDiffer)
{
    GenOptions gen;
    gen.numOps = 120;
    EXPECT_NE(serializeScript(generateScript(1, gen)),
              serializeScript(generateScript(2, gen)));
}

TEST(CheckScript, GeneratorEndsWithQuiesce)
{
    GenOptions gen;
    gen.numOps = 30;
    Script s = generateScript(7, gen);
    ASSERT_EQ(s.ops.size(), 31u); // numOps + trailing quiesce
    EXPECT_EQ(s.ops.back().kind, OpKind::Quiesce);
}

TEST(CheckScript, SerializeParseRoundTrip)
{
    GenOptions gen;
    gen.numOps = 200;
    gen.pcid = true;
    gen.procs = 3;
    Script original = generateScript(99, gen);

    Script parsed;
    std::string err;
    ASSERT_TRUE(parseScript(serializeScript(original), &parsed, &err))
        << err;
    EXPECT_EQ(parsed.seed, original.seed);
    EXPECT_EQ(parsed.pcid, original.pcid);
    EXPECT_EQ(parsed.procs, original.procs);
    ASSERT_EQ(parsed.ops.size(), original.ops.size());
    // The text form is the canonical equality witness.
    EXPECT_EQ(serializeScript(parsed), serializeScript(original));
}

TEST(CheckScript, ParserSkipsCommentsAndBlankLines)
{
    Script s;
    std::string err;
    ASSERT_TRUE(parseScript("# a comment\n"
                            "\n"
                            "seed 5\n"
                            "pcid 1\n"
                            "procs 2\n"
                            "  \n"
                            "mmap 0 3 16 rw\n"
                            "# trailing comment\n"
                            "quiesce\n",
                            &s, &err))
        << err;
    EXPECT_EQ(s.seed, 5u);
    EXPECT_TRUE(s.pcid);
    EXPECT_EQ(s.procs, 2u);
    ASSERT_EQ(s.ops.size(), 2u);
    EXPECT_EQ(s.ops[0].kind, OpKind::Mmap);
    EXPECT_EQ(s.ops[0].task, 0u);
    EXPECT_EQ(s.ops[0].slot, 3u);
    EXPECT_EQ(s.ops[0].value, 16u);
    EXPECT_TRUE(s.ops[0].rw);
    EXPECT_EQ(s.ops[1].kind, OpKind::Quiesce);
}

TEST(CheckScript, ParserRejectsUnknownDirective)
{
    Script s;
    std::string err;
    EXPECT_FALSE(parseScript("seed 1\nfrobnicate 0 1\n", &s, &err));
    EXPECT_NE(err.find("line 2"), std::string::npos);
    EXPECT_NE(err.find("frobnicate"), std::string::npos);
}

TEST(CheckScript, ParserRejectsMalformedOps)
{
    Script s;
    std::string err;
    // Missing access token.
    EXPECT_FALSE(parseScript("mmap 0 1 16\n", &s, &err));
    // Bad access token.
    EXPECT_FALSE(parseScript("touch 0 1 2 x\n", &s, &err));
    // Missing operand.
    EXPECT_FALSE(parseScript("munmap 0\n", &s, &err));
    // procs must be positive.
    EXPECT_FALSE(parseScript("procs 0\n", &s, &err));
}

TEST(CheckScript, FileRoundTrip)
{
    GenOptions gen;
    gen.numOps = 50;
    Script original = generateScript(13, gen);
    const std::string path =
        ::testing::TempDir() + "check_script_roundtrip.script";
    ASSERT_TRUE(saveScriptFile(path, original));

    Script loaded;
    std::string err;
    ASSERT_TRUE(loadScriptFile(path, &loaded, &err)) << err;
    EXPECT_EQ(serializeScript(loaded), serializeScript(original));
}

TEST(CheckScript, LoadMissingFileFails)
{
    Script s;
    std::string err;
    EXPECT_FALSE(
        loadScriptFile("/nonexistent/no.script", &s, &err));
    EXPECT_NE(err.find("cannot open"), std::string::npos);
}

} // namespace
} // namespace latr
