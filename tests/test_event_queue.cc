// Unit tests for the discrete-event kernel.

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace latr
{
namespace
{

class RecordingEvent : public Event
{
  public:
    RecordingEvent(std::vector<int> *log, int id)
        : log_(log), id_(id)
    {}

    void process() override { log_->push_back(id_); }
    const char *name() const override { return "recording"; }

  private:
    std::vector<int> *log_;
    int id_;
};

TEST(EventQueue, StartsAtTimeZeroAndEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, RunsEventsInTickOrder)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2), c(&log, 3);
    q.schedule(&c, 30);
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickIsFifoByScheduleOrder)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2), c(&log, 3);
    q.schedule(&b, 5);
    q.schedule(&a, 5);
    q.schedule(&c, 5);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1, 3}));
}

TEST(EventQueue, RunWithLimitStopsAndAdvancesToLimit)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 100);
    EXPECT_EQ(q.run(50), 1u);
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(q.now(), 50u);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueue, RunWithLimitAdvancesTimeEvenWithNoEvents)
{
    EventQueue q;
    q.run(1234);
    EXPECT_EQ(q.now(), 1234u);
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    q.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, DescheduleUnscheduledIsNoop)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1);
    q.deschedule(&a); // must not crash or corrupt
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    q.reschedule(&a, 30); // now after b
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, RescheduleWorksOnUnscheduledEvent)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1);
    q.reschedule(&a, 15);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1}));
}

TEST(EventQueue, EventCanRescheduleItself)
{
    EventQueue q;

    class Repeater : public Event
    {
      public:
        Repeater(EventQueue *q, int *count) : q_(q), count_(count) {}
        void
        process() override
        {
            if (++*count_ < 5)
                q_->schedule(this, q_->now() + 10);
        }

      private:
        EventQueue *q_;
        int *count_;
    };

    int count = 0;
    Repeater r(&q, &count);
    q.schedule(&r, 10);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, LambdaEventRunsAndIsFreed)
{
    EventQueue q;
    int hits = 0;
    q.scheduleLambda(7, [&hits]() { ++hits; });
    q.scheduleLambda(7, [&hits]() { ++hits; });
    q.run();
    EXPECT_EQ(hits, 2);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, UnrunLambdaIsFreedAtDestruction)
{
    // ASAN (when enabled) verifies the owned lambda does not leak.
    EventQueue q;
    q.scheduleLambda(1000, []() {});
    q.run(10);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2);
    q.schedule(&a, 100);
    q.run();
    EXPECT_DEATH(q.schedule(&b, 50), "past");
}

TEST(EventQueueDeath, DoubleSchedulePanics)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1);
    q.schedule(&a, 10);
    EXPECT_DEATH(q.schedule(&a, 20), "twice");
}

TEST(EventQueue, RescheduleToSameTickMovesToFifoBack)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2), c(&log, 3);
    q.schedule(&a, 5);
    q.schedule(&b, 5);
    q.schedule(&c, 5);
    // Rescheduling to the *same* tick re-enters the FIFO at the back.
    q.reschedule(&a, 5);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2, 3, 1}));
}

TEST(EventQueue, DescheduleThenDestroyIsSafe)
{
    EventQueue q;
    std::vector<int> log;
    auto *a = new RecordingEvent(&log, 1);
    RecordingEvent b(&log, 2);
    q.schedule(a, 10);
    q.schedule(&b, 20);
    q.deschedule(a);
    delete a; // the queue must never dereference the stale entry
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DestroyScheduledNonOwnedEventBeforeQueueDies)
{
    // An owner may destroy a still-scheduled event right before the
    // queue itself dies; the destructor dereferences only queue-owned
    // (lambda) events.
    std::vector<int> log;
    auto *a = new RecordingEvent(&log, 1);
    {
        EventQueue q;
        q.schedule(a, 10);
        q.scheduleLambda(20, []() {});
        delete a;
    }
    EXPECT_TRUE(log.empty());
}

TEST(EventQueue, RunLimitIsInclusiveOfEventsAtTheLimit)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2);
    q.schedule(&a, 50);
    q.schedule(&b, 51);
    EXPECT_EQ(q.run(50), 1u);
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, ManySequentialLambdasRunInOrder)
{
    // Exercises LambdaEvent reuse: dispatch-then-schedule cycles must
    // preserve FIFO order and leave the queue empty.
    EventQueue q;
    std::vector<int> log;
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 64; ++i) {
            const int id = round * 64 + i;
            q.scheduleLambda(q.now() + 1 + i,
                             [&log, id]() { log.push_back(id); });
        }
        q.run();
        EXPECT_TRUE(q.empty());
    }
    ASSERT_EQ(log.size(), 256u);
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(log[i], i);
}

TEST(EventQueue, LambdaScheduledFromLambdaRuns)
{
    EventQueue q;
    std::vector<int> log;
    q.scheduleLambda(10, [&]() {
        log.push_back(1);
        q.scheduleLambda(q.now() + 5, [&]() { log.push_back(2); });
    });
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.now(), 15u);
}

TEST(EventQueue, PendingCountsLiveEventsOnly)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2), c(&log, 3);
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    q.schedule(&c, 30);
    q.deschedule(&b);
    EXPECT_EQ(q.pending(), 2u);
    q.run();
    EXPECT_EQ(q.pending(), 0u);
}

} // namespace
} // namespace latr
