// Unit tests for the discrete-event kernel.

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace latr
{
namespace
{

class RecordingEvent : public Event
{
  public:
    RecordingEvent(std::vector<int> *log, int id)
        : log_(log), id_(id)
    {}

    void process() override { log_->push_back(id_); }
    const char *name() const override { return "recording"; }

  private:
    std::vector<int> *log_;
    int id_;
};

TEST(EventQueue, StartsAtTimeZeroAndEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, RunsEventsInTickOrder)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2), c(&log, 3);
    q.schedule(&c, 30);
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickIsFifoByScheduleOrder)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2), c(&log, 3);
    q.schedule(&b, 5);
    q.schedule(&a, 5);
    q.schedule(&c, 5);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1, 3}));
}

TEST(EventQueue, RunWithLimitStopsAndAdvancesToLimit)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 100);
    EXPECT_EQ(q.run(50), 1u);
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(q.now(), 50u);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueue, RunWithLimitAdvancesTimeEvenWithNoEvents)
{
    EventQueue q;
    q.run(1234);
    EXPECT_EQ(q.now(), 1234u);
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    q.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, DescheduleUnscheduledIsNoop)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1);
    q.deschedule(&a); // must not crash or corrupt
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    q.reschedule(&a, 30); // now after b
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, RescheduleWorksOnUnscheduledEvent)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1);
    q.reschedule(&a, 15);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1}));
}

TEST(EventQueue, EventCanRescheduleItself)
{
    EventQueue q;

    class Repeater : public Event
    {
      public:
        Repeater(EventQueue *q, int *count) : q_(q), count_(count) {}
        void
        process() override
        {
            if (++*count_ < 5)
                q_->schedule(this, q_->now() + 10);
        }

      private:
        EventQueue *q_;
        int *count_;
    };

    int count = 0;
    Repeater r(&q, &count);
    q.schedule(&r, 10);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, LambdaEventRunsAndIsFreed)
{
    EventQueue q;
    int hits = 0;
    q.scheduleLambda(7, [&hits]() { ++hits; });
    q.scheduleLambda(7, [&hits]() { ++hits; });
    q.run();
    EXPECT_EQ(hits, 2);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, UnrunLambdaIsFreedAtDestruction)
{
    // ASAN (when enabled) verifies the owned lambda does not leak.
    EventQueue q;
    q.scheduleLambda(1000, []() {});
    q.run(10);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2);
    q.schedule(&a, 100);
    q.run();
    EXPECT_DEATH(q.schedule(&b, 50), "past");
}

TEST(EventQueueDeath, DoubleSchedulePanics)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1);
    q.schedule(&a, 10);
    EXPECT_DEATH(q.schedule(&a, 20), "twice");
}

TEST(EventQueue, PendingCountsLiveEventsOnly)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(&log, 1), b(&log, 2), c(&log, 3);
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    q.schedule(&c, 30);
    q.deschedule(&b);
    EXPECT_EQ(q.pending(), 2u);
    q.run();
    EXPECT_EQ(q.pending(), 0u);
}

} // namespace
} // namespace latr
