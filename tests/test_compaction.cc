// Tests for the compaction daemon (the kcompactd analogue).

#include <gtest/gtest.h>

#include "numa/compaction.hh"
#include "test_helpers.hh"

namespace latr
{
namespace
{

class CompactionPolicies : public ::testing::TestWithParam<PolicyKind>
{
  protected:
    CompactionPolicies()
        : machine(makeConfig(), GetParam()), kernel(machine.kernel())
    {
        process = kernel.createProcess("app");
        t0 = kernel.spawnTask(process, 0);
        machine.run(kUsec);
    }

    static MachineConfig
    makeConfig()
    {
        MachineConfig cfg = test::tinyConfig();
        cfg.framesPerNode = 512; // small node: fragmentation visible
        return cfg;
    }

    /**
     * Fragment node 0: allocate pages until frames from the upper
     * half are in use, then free the low ones so low frames are
     * available again.
     */
    Addr
    fragment(std::uint64_t keep_pages)
    {
        // Burn through the low half with a throwaway mapping.
        SyscallResult burn =
            kernel.mmap(t0, 300 * kPageSize, kProtRead | kProtWrite);
        test::touchRange(kernel, t0, burn.addr, 300 * kPageSize);
        // These land in high frames.
        SyscallResult keep = kernel.mmap(
            t0, keep_pages * kPageSize, kProtRead | kProtWrite);
        test::touchRange(kernel, t0, keep.addr,
                         keep_pages * kPageSize);
        // Free the low half; the survivors stay high.
        kernel.munmap(t0, burn.addr, 300 * kPageSize);
        machine.run(8 * kMsec); // let lazy reclamation finish
        return keep.addr;
    }

    Machine machine;
    Kernel &kernel;
    Process *process = nullptr;
    Task *t0 = nullptr;
};

TEST_P(CompactionPolicies, MovesHighPagesIntoLowFrames)
{
    fragment(32);
    CompactionDaemon compactor(kernel, 0, 3 * kMsec, 16);
    compactor.track(process);
    const double before = compactor.highFrameFraction();
    ASSERT_GT(before, 0.9); // everything sits high after fragment()

    compactor.start();
    machine.run(40 * kMsec);
    compactor.stop();
    machine.run(8 * kMsec);

    EXPECT_GT(compactor.stats().pagesMoved, 0u);
    EXPECT_LT(compactor.highFrameFraction(), 0.2);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_P(CompactionPolicies, DataRemainsMappedAfterCompaction)
{
    Addr keep = fragment(16);
    CompactionDaemon compactor(kernel, 0, 3 * kMsec, 16);
    compactor.track(process);
    compactor.start();
    machine.run(30 * kMsec);
    compactor.stop();
    machine.run(8 * kMsec);

    // Every page still resolves (through new frames).
    for (unsigned p = 0; p < 16; ++p) {
        TouchResult r =
            kernel.touch(t0, keep + p * kPageSize, false);
        EXPECT_NE(r.kind, TouchKind::SegFault) << p;
    }
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_P(CompactionPolicies, HotPagesAreSkipped)
{
    Addr keep = fragment(8);
    CompactionDaemon compactor(kernel, 0, 3 * kMsec, 16);
    compactor.track(process);
    compactor.start();
    // Touch the pages continuously: every sample gets resolved by
    // the access before the completion pass, so moves abort.
    for (int round = 0; round < 10; ++round) {
        machine.run(2 * kMsec);
        test::touchRange(kernel, t0, keep, 8 * kPageSize, false);
    }
    compactor.stop();
    EXPECT_GT(compactor.stats().aborts, 0u);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_P(CompactionPolicies, FrameBalanceIsPreserved)
{
    fragment(24);
    const std::uint64_t allocated = machine.frames().allocatedFrames();
    CompactionDaemon compactor(kernel, 0, 3 * kMsec, 16);
    compactor.track(process);
    compactor.start();
    machine.run(40 * kMsec);
    compactor.stop();
    machine.run(8 * kMsec);
    EXPECT_EQ(machine.frames().allocatedFrames(), allocated);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, CompactionPolicies,
    ::testing::Values(PolicyKind::LinuxSync, PolicyKind::Latr),
    [](const ::testing::TestParamInfo<PolicyKind> &info) {
        return policyKindName(info.param);
    });

TEST(CompactionLatr, SamplingIsLazyUnderLatr)
{
    // The compaction daemon's sampling goes through the same policy
    // hook as AutoNUMA: no IPIs under LATR.
    MachineConfig cfg = test::tinyConfig();
    cfg.framesPerNode = 512;
    Machine machine(cfg, PolicyKind::Latr);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("app");
    Task *t0 = kernel.spawnTask(p, 0);
    machine.run(kUsec);

    SyscallResult burn =
        kernel.mmap(t0, 300 * kPageSize, kProtRead | kProtWrite);
    test::touchRange(kernel, t0, burn.addr, 300 * kPageSize);
    SyscallResult keep =
        kernel.mmap(t0, 16 * kPageSize, kProtRead | kProtWrite);
    test::touchRange(kernel, t0, keep.addr, 16 * kPageSize);
    kernel.munmap(t0, burn.addr, 300 * kPageSize);
    machine.run(8 * kMsec);

    machine.ipi().resetStats();
    CompactionDaemon compactor(kernel, 0, 3 * kMsec, 8);
    compactor.track(p);
    compactor.start();
    machine.run(4 * kMsec); // one sampling round, before completion
    // Samples were taken without any IPI (the moves themselves use
    // the synchronous migration unmap later).
    EXPECT_GT(compactor.stats().samples, 0u);
    EXPECT_EQ(machine.ipi().ipisSent(), 0u);
    compactor.stop();
}

} // namespace
} // namespace latr
