// Tests for the swap daemon (the lazy page-out path of table 1).

#include <gtest/gtest.h>

#include "numa/swap.hh"
#include "test_helpers.hh"

namespace latr
{
namespace
{

class SwapPolicies : public ::testing::TestWithParam<PolicyKind>
{
  protected:
    SwapPolicies()
        : machine(test::tinyConfig(), GetParam()),
          kernel(machine.kernel())
    {
        process = kernel.createProcess("app");
        t0 = kernel.spawnTask(process, 0);
        machine.run(kUsec);
    }

    Machine machine;
    Kernel &kernel;
    Process *process = nullptr;
    Task *t0 = nullptr;
};

TEST_P(SwapPolicies, ColdPagesAreEvictedAfterTwoScans)
{
    SwapDaemon swap(kernel, 3 * kMsec, 64);
    swap.track(process);
    SyscallResult m = kernel.mmap(t0, 8 * kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, 8 * kPageSize);
    swap.start();
    // Scan 1 clears accessed bits; scan 2 evicts the cold pages.
    machine.run(7 * kMsec);
    EXPECT_GT(swap.evictions(), 0u);
    EXPECT_TRUE(swap.wasSwappedOut(process->mm().id(),
                                   pageOf(m.addr)));
    machine.run(6 * kMsec); // lazy reclamation under LATR
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(machine.checker()->violations(), 0u);
    swap.stop();
}

TEST_P(SwapPolicies, HotPagesGetASecondChance)
{
    SwapDaemon swap(kernel, 3 * kMsec, 64);
    swap.track(process);
    SyscallResult m = kernel.mmap(t0, 4 * kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, 4 * kPageSize);
    swap.start();
    // Keep touching between scans: accessed bits stay set. The TLB
    // must be scrubbed so touches re-walk and set the A bit.
    for (int i = 0; i < 4; ++i) {
        machine.run(3 * kMsec);
        machine.scheduler().tlbOf(0).flushAll();
        test::touchRange(kernel, t0, m.addr, 4 * kPageSize, false);
    }
    EXPECT_EQ(swap.evictions(), 0u);
    swap.stop();
}

TEST_P(SwapPolicies, SwappedPageRefaultsAsFreshPage)
{
    SwapDaemon swap(kernel, 3 * kMsec, 64);
    swap.track(process);
    SyscallResult m = kernel.mmap(t0, 2 * kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, 2 * kPageSize);
    swap.start();
    machine.run(7 * kMsec);
    ASSERT_GT(swap.evictions(), 0u);
    swap.stop();
    machine.run(6 * kMsec);
    // Swap-in: the VMA survived, so the touch demand-faults.
    TouchResult t = kernel.touch(t0, m.addr, true);
    EXPECT_EQ(t.kind, TouchKind::MinorFault);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_P(SwapPolicies, EvictionBatchIsBounded)
{
    SwapDaemon swap(kernel, 3 * kMsec, 4);
    swap.track(process);
    SyscallResult m = kernel.mmap(t0, 16 * kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, 16 * kPageSize);
    swap.start();
    machine.run(7 * kMsec);
    EXPECT_LE(swap.evictions(), 8u); // at most 4 per eligible scan
    swap.stop();
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SwapPolicies,
    ::testing::Values(PolicyKind::LinuxSync, PolicyKind::Latr),
    [](const ::testing::TestParamInfo<PolicyKind> &info) {
        return policyKindName(info.param);
    });

} // namespace
} // namespace latr
