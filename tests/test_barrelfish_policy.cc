// Tests for the Barrelfish-style message-passing baseline.

#include <gtest/gtest.h>

#include "test_helpers.hh"

namespace latr
{
namespace
{

struct BarrelfishFixture : public ::testing::Test
{
    BarrelfishFixture()
        : machine(test::tinyConfig(), PolicyKind::Barrelfish),
          kernel(machine.kernel())
    {
        process = kernel.createProcess("app");
        t0 = kernel.spawnTask(process, 0);
        t1 = kernel.spawnTask(process, 1);
    }

    Machine machine;
    Kernel &kernel;
    Process *process = nullptr;
    Task *t0 = nullptr;
    Task *t1 = nullptr;
};

TEST_F(BarrelfishFixture, NoIpisAreSent)
{
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t1, m.addr, kPageSize);
    kernel.munmap(t0, m.addr, kPageSize);
    EXPECT_EQ(machine.ipi().ipisSent(), 0u);
    EXPECT_GT(machine.stats().counterValue("coh.msg_shootdowns"), 0u);
}

TEST_F(BarrelfishFixture, StillSynchronousButCheaperThanIpis)
{
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t1, m.addr, kPageSize);
    SyscallResult u = kernel.munmap(t0, m.addr, kPageSize);
    // Still waits (channel + poll + ack): nonzero, but well below
    // the IPI path's multi-microsecond delivery.
    EXPECT_GT(u.shootdown, 0u);
    EXPECT_LT(u.shootdown,
              machine.config().cost.ipiDeliveryCost(1) + 2 * kUsec);
}

TEST_F(BarrelfishFixture, RemoteInvalidationAppliedAtPollPoint)
{
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t1, m.addr, kPageSize);
    kernel.munmap(t0, m.addr, kPageSize);
    machine.run(50 * kUsec);
    EXPECT_FALSE(machine.scheduler().tlbOf(1).probe(pageOf(m.addr), 0));
    machine.run(kMsec);
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_F(BarrelfishFixture, NoInterruptOverheadOnRemotes)
{
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t1, m.addr, kPageSize);
    machine.scheduler().takeStolen(1);
    kernel.munmap(t0, m.addr, kPageSize);
    machine.run(50 * kUsec);
    // The remote core only pays the invalidation itself — strictly
    // less than the fixed interrupt entry/exit of the IPI path.
    EXPECT_LT(machine.scheduler().takeStolen(1),
              machine.config().cost.ipiHandlerFixed);
}

TEST_F(BarrelfishFixture, SyncOpsAlsoUseMessages)
{
    SyscallResult m = kernel.mmap(t0, 2 * kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t1, m.addr, 2 * kPageSize);
    kernel.mprotect(t0, m.addr, 2 * kPageSize, kProtRead);
    EXPECT_EQ(machine.ipi().ipisSent(), 0u);
    machine.run(50 * kUsec);
    EXPECT_EQ(kernel.touch(t1, m.addr, true).kind,
              TouchKind::SegFault);
}

TEST_F(BarrelfishFixture, CapabilitiesMatchTable2)
{
    PolicyCapabilities caps = machine.policy().capabilities();
    EXPECT_FALSE(caps.asynchronous); // still waits for ACKs
    EXPECT_TRUE(caps.nonIpiBased);
    EXPECT_FALSE(caps.noRemoteCoreInvolvement);
    EXPECT_TRUE(caps.noHardwareChanges);
}

} // namespace
} // namespace latr
