// Property-based tests: randomized multi-core memory-operation soups
// driven against every policy and seed, with the reuse-invariant
// checker watching every TLB and allocator transition. These are the
// tests that would catch an ordering bug in any policy's lazy paths.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "sim/rng.hh"
#include "test_helpers.hh"

namespace latr
{
namespace
{

struct Soup
{
    PolicyKind policy;
    std::uint64_t seed;
    bool pcid;
};

class RandomOpSoup : public ::testing::TestWithParam<Soup>
{
};

TEST_P(RandomOpSoup, InvariantHoldsAndMemoryBalances)
{
    const Soup param = GetParam();
    MachineConfig cfg = test::tinyConfig();
    cfg.pcidEnabled = param.pcid;
    Machine machine(cfg, param.policy);
    Kernel &kernel = machine.kernel();
    Rng rng(param.seed);

    // Two processes spread over all cores.
    std::vector<Task *> tasks;
    Process *pa = kernel.createProcess("a");
    Process *pb = kernel.createProcess("b");
    for (CoreId c = 0; c < machine.topo().totalCores(); ++c)
        tasks.push_back(kernel.spawnTask(c % 2 ? pa : pb, c));
    machine.run(kUsec);

    struct Region
    {
        Task *owner;
        Addr addr;
        std::uint64_t pages;
    };
    std::vector<Region> regions;

    const int kOps = 1200;
    for (int op = 0; op < kOps; ++op) {
        Task *task = tasks[rng.nextBounded(tasks.size())];
        const unsigned kind = static_cast<unsigned>(rng.nextBounded(10));
        switch (kind) {
          case 0:
          case 1: { // mmap
            std::uint64_t pages = 1 + rng.nextBounded(8);
            SyscallResult m = kernel.mmap(task, pages * kPageSize,
                                          kProtRead | kProtWrite);
            if (m.ok)
                regions.push_back({task, m.addr, pages});
            break;
          }
          case 2:
          case 3:
          case 4: { // touch from any task of the same process
            if (regions.empty())
                break;
            Region &r = regions[rng.nextBounded(regions.size())];
            Task *toucher = tasks[rng.nextBounded(tasks.size())];
            if (toucher->process() != r.owner->process())
                break;
            Addr addr =
                r.addr + rng.nextBounded(r.pages) * kPageSize;
            kernel.touch(toucher, addr, rng.nextBool(0.5));
            break;
          }
          case 5:
          case 6: { // munmap a whole region
            if (regions.empty())
                break;
            std::size_t idx = rng.nextBounded(regions.size());
            Region r = regions[idx];
            regions.erase(regions.begin() + idx);
            kernel.munmap(r.owner, r.addr, r.pages * kPageSize);
            break;
          }
          case 7: { // madvise part of a region
            if (regions.empty())
                break;
            Region &r = regions[rng.nextBounded(regions.size())];
            std::uint64_t n = 1 + rng.nextBounded(r.pages);
            kernel.madvise(r.owner, r.addr, n * kPageSize);
            break;
          }
          case 8: { // mprotect flip
            if (regions.empty())
                break;
            Region &r = regions[rng.nextBounded(regions.size())];
            kernel.mprotect(r.owner, r.addr, r.pages * kPageSize,
                            rng.nextBool(0.5)
                                ? kProtRead
                                : kProtRead | kProtWrite);
            break;
          }
          default: { // advance time
            machine.run(rng.nextBounded(400) * kUsec + kUsec);
            break;
          }
        }
    }

    // Unmap everything left and settle all lazy work.
    for (const Region &r : regions)
        kernel.munmap(r.owner, r.addr, r.pages * kPageSize);
    machine.run(10 * kMsec);

    EXPECT_EQ(machine.checker()->violations(), 0u)
        << machine.checker()->firstViolation();
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    // Lazy reclamation must have drained completely.
    EXPECT_EQ(pa->mm().heldBackBytes(), 0u);
    EXPECT_EQ(pb->mm().heldBackBytes(), 0u);
    // With every frame free, no TLB anywhere may still translate
    // one (the checker would have counted such entries).
    for (CoreId c = 0; c < machine.topo().totalCores(); ++c) {
        machine.scheduler().tlbOf(c).flushAll();
    }
    EXPECT_EQ(machine.checker()->mirroredEntries(), 0u);
}

std::vector<Soup>
soups()
{
    std::vector<Soup> all;
    for (PolicyKind kind :
         {PolicyKind::LinuxSync, PolicyKind::Latr, PolicyKind::Abis,
          PolicyKind::Barrelfish})
        for (std::uint64_t seed : {11ull, 222ull, 3333ull})
            for (bool pcid : {false, true})
                all.push_back({kind, seed, pcid});
    return all;
}

INSTANTIATE_TEST_SUITE_P(
    Soups, RandomOpSoup, ::testing::ValuesIn(soups()),
    [](const ::testing::TestParamInfo<Soup> &info) {
        return std::string(policyKindName(info.param.policy)) +
               "_seed" + std::to_string(info.param.seed) +
               (info.param.pcid ? "_pcid" : "_nopcid");
    });

} // namespace
} // namespace latr
