// Property-based tests: randomized multi-core memory-operation soups
// driven against every policy and seed, with the reuse-invariant
// checker watching every TLB and allocator transition. These are the
// tests that would catch an ordering bug in any policy's lazy paths.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "sim/rng.hh"
#include "test_helpers.hh"

namespace latr
{
namespace
{

struct Soup
{
    PolicyKind policy;
    std::uint64_t seed;
    bool pcid;
};

class RandomOpSoup : public ::testing::TestWithParam<Soup>
{
};

TEST_P(RandomOpSoup, InvariantHoldsAndMemoryBalances)
{
    const Soup param = GetParam();
    MachineConfig cfg = test::tinyConfig();
    cfg.pcidEnabled = param.pcid;
    Machine machine(cfg, param.policy);
    Kernel &kernel = machine.kernel();
    Rng rng(param.seed);

    // Two processes spread over all cores.
    std::vector<Task *> tasks;
    Process *pa = kernel.createProcess("a");
    Process *pb = kernel.createProcess("b");
    for (CoreId c = 0; c < machine.topo().totalCores(); ++c)
        tasks.push_back(kernel.spawnTask(c % 2 ? pa : pb, c));
    machine.run(kUsec);

    struct Region
    {
        Task *owner;
        std::uint32_t ownerIdx;
        Addr addr;
        std::uint64_t pages;
        std::uint32_t slot;
    };
    std::vector<Region> regions;

    // Record every executed op as a conformance-harness script so a
    // failure dumps a replayable (and minimizable) reproducer.
    Script repro;
    repro.seed = param.seed;
    repro.pcid = param.pcid;
    repro.procs = 2;
    std::uint32_t nextSlot = 0;

    const int kOps = 1200;
    for (int op = 0; op < kOps; ++op) {
        const std::uint32_t taskIdx =
            static_cast<std::uint32_t>(rng.nextBounded(tasks.size()));
        Task *task = tasks[taskIdx];
        const unsigned kind = static_cast<unsigned>(rng.nextBounded(10));
        switch (kind) {
          case 0:
          case 1: { // mmap
            std::uint64_t pages = 1 + rng.nextBounded(8);
            SyscallResult m = kernel.mmap(task, pages * kPageSize,
                                          kProtRead | kProtWrite);
            if (m.ok) {
                regions.push_back(
                    {task, taskIdx, m.addr, pages, nextSlot});
                repro.ops.push_back(Op{OpKind::Mmap, taskIdx,
                                       nextSlot++, pages, 0, true});
            }
            break;
          }
          case 2:
          case 3:
          case 4: { // touch from any task of the same process
            if (regions.empty())
                break;
            Region &r = regions[rng.nextBounded(regions.size())];
            const std::uint32_t toucherIdx =
                static_cast<std::uint32_t>(
                    rng.nextBounded(tasks.size()));
            Task *toucher = tasks[toucherIdx];
            if (toucher->process() != r.owner->process())
                break;
            const std::uint64_t page = rng.nextBounded(r.pages);
            const bool write = rng.nextBool(0.5);
            kernel.touch(toucher, r.addr + page * kPageSize, write);
            repro.ops.push_back(Op{OpKind::Touch, toucherIdx, r.slot,
                                   0, page, write});
            break;
          }
          case 5:
          case 6: { // munmap a whole region
            if (regions.empty())
                break;
            std::size_t idx = rng.nextBounded(regions.size());
            Region r = regions[idx];
            regions.erase(regions.begin() + idx);
            kernel.munmap(r.owner, r.addr, r.pages * kPageSize);
            repro.ops.push_back(Op{OpKind::Munmap, r.ownerIdx,
                                   r.slot, 0, 0, false});
            break;
          }
          case 7: { // madvise part of a region
            if (regions.empty())
                break;
            Region &r = regions[rng.nextBounded(regions.size())];
            std::uint64_t n = 1 + rng.nextBounded(r.pages);
            kernel.madvise(r.owner, r.addr, n * kPageSize);
            repro.ops.push_back(Op{OpKind::Madvise, r.ownerIdx,
                                   r.slot, 0, 0, false});
            break;
          }
          case 8: { // mprotect flip
            if (regions.empty())
                break;
            Region &r = regions[rng.nextBounded(regions.size())];
            const bool rw = !rng.nextBool(0.5);
            kernel.mprotect(r.owner, r.addr, r.pages * kPageSize,
                            rw ? kProtRead | kProtWrite : kProtRead);
            repro.ops.push_back(Op{OpKind::Mprotect, r.ownerIdx,
                                   r.slot, 0, 0, rw});
            break;
          }
          default: { // advance time
            const std::uint64_t usec = rng.nextBounded(400) + 1;
            machine.run(usec * kUsec);
            repro.ops.push_back(
                Op{OpKind::Advance, 0, 0, usec, 0, false});
            break;
          }
        }
    }

    // Unmap everything left and settle all lazy work.
    for (const Region &r : regions) {
        kernel.munmap(r.owner, r.addr, r.pages * kPageSize);
        repro.ops.push_back(
            Op{OpKind::Munmap, r.ownerIdx, r.slot, 0, 0, false});
    }
    machine.run(10 * kMsec);
    repro.ops.push_back(Op{OpKind::Quiesce, 0, 0, 0, 0, false});

    EXPECT_EQ(machine.checker()->violations(), 0u)
        << machine.checker()->firstViolation();
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    // Lazy reclamation must have drained completely.
    EXPECT_EQ(pa->mm().heldBackBytes(), 0u);
    EXPECT_EQ(pb->mm().heldBackBytes(), 0u);
    // With every frame free, no TLB anywhere may still translate
    // one (the checker would have counted such entries).
    for (CoreId c = 0; c < machine.topo().totalCores(); ++c) {
        machine.scheduler().tlbOf(c).flushAll();
    }
    EXPECT_EQ(machine.checker()->mirroredEntries(), 0u);

    if (::testing::Test::HasFailure()) {
        const std::string stem =
            std::string("property_") + policyKindName(param.policy) +
            "_seed" + std::to_string(param.seed) +
            (param.pcid ? "_pcid" : "_nopcid");
        ADD_FAILURE() << "failing tuple: {policy="
                      << policyKindName(param.policy)
                      << ", seed=" << param.seed
                      << ", pcid=" << (param.pcid ? "on" : "off")
                      << "}; " << test::dumpFailureRepro(repro, stem);
    }
}

std::vector<Soup>
soups()
{
    std::vector<Soup> all;
    for (PolicyKind kind :
         {PolicyKind::LinuxSync, PolicyKind::Latr, PolicyKind::Abis,
          PolicyKind::Barrelfish})
        for (std::uint64_t seed : {11ull, 222ull, 3333ull})
            for (bool pcid : {false, true})
                all.push_back({kind, seed, pcid});
    return all;
}

INSTANTIATE_TEST_SUITE_P(
    Soups, RandomOpSoup, ::testing::ValuesIn(soups()),
    [](const ::testing::TestParamInfo<Soup> &info) {
        return std::string(policyKindName(info.param.policy)) +
               "_seed" + std::to_string(info.param.seed) +
               (info.param.pcid ? "_pcid" : "_nopcid");
    });

} // namespace
} // namespace latr
