// Unit tests for the RNG and the stats package.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hh"
#include "sim/types.hh"
#include "sim/stats.hh"

namespace latr
{
namespace
{

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    bool differed = false;
    for (int i = 0; i < 10; ++i)
        if (a.next() != b.next())
            differed = true;
    EXPECT_TRUE(differed);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(7);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t v = r.nextRange(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        hit_lo |= v == 3;
        hit_hi |= v == 5;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BoolProbabilityEdges)
{
    Rng r(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.nextBool(0.0));
        EXPECT_TRUE(r.nextBool(1.0));
    }
}

TEST(Rng, BoolProbabilityRoughlyCalibrated)
{
    Rng r(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanRoughlyCalibrated)
{
    Rng r(17);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.nextExponential(50.0);
    EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Distribution, BasicMoments)
{
    Distribution d;
    d.sample(1.0);
    d.sample(2.0);
    d.sample(3.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 3.0);
    EXPECT_DOUBLE_EQ(d.sum(), 6.0);
}

TEST(Distribution, EmptyIsZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 0.0);
}

TEST(Distribution, PercentilesExactForSmallStreams)
{
    Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.sample(i);
    EXPECT_NEAR(d.percentile(0.0), 1.0, 1e-9);
    EXPECT_NEAR(d.percentile(1.0), 100.0, 1e-9);
    EXPECT_NEAR(d.percentile(0.5), 50.5, 1.0);
    EXPECT_NEAR(d.percentile(0.99), 99.0, 1.1);
}

TEST(Distribution, ReservoirKeepsPercentilesPlausibleForLongStreams)
{
    Distribution d(1024);
    for (int i = 0; i < 200000; ++i)
        d.sample(i % 1000);
    // Uniform over [0, 999]: the median should be near 500.
    EXPECT_NEAR(d.percentile(0.5), 500.0, 60.0);
    EXPECT_EQ(d.count(), 200000u);
}

TEST(Distribution, ReservoirIsNotJustTheFirstNSamples)
{
    // If sampling past max_samples merely truncated, the reservoir
    // would hold only the initial zeros and report p50 = 0. Algorithm
    // R must instead displace nearly all of them: after 256 zeros,
    // 100k samples of 1000 follow, so ~99.7% of the stream is 1000.
    Distribution d(256);
    for (int i = 0; i < 256; ++i)
        d.sample(0.0);
    for (int i = 0; i < 100000; ++i)
        d.sample(1000.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 1000.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.1), 1000.0);
    EXPECT_EQ(d.count(), 100256u);
    // Exact moments are reservoir-independent and must see it all.
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 1000.0);
}

TEST(Distribution, ReservoirTracksADriftingStream)
{
    // A stream whose distribution shifts mid-way: percentiles over
    // the full stream should land between the two phases, not stick
    // with the first.
    Distribution d(512);
    for (int i = 0; i < 50000; ++i)
        d.sample(100.0);
    for (int i = 0; i < 50000; ++i)
        d.sample(900.0);
    const double p50 = d.percentile(0.5);
    EXPECT_TRUE(p50 == 100.0 || p50 == 900.0);
    // Both phases must be represented at the tails.
    EXPECT_DOUBLE_EQ(d.percentile(0.02), 100.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.98), 900.0);
}

TEST(Distribution, ResetClears)
{
    Distribution d;
    d.sample(5);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
}

TEST(Counter, ResetAndReuse)
{
    Counter c;
    c.inc(7);
    c.inc();
    EXPECT_EQ(c.value(), 8u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    c.inc(2);
    EXPECT_EQ(c.value(), 2u);
}

TEST(Distribution, ResetCoversReservoirFullPath)
{
    // Drive the reservoir to capacity so reset() exercises the
    // replacement path's state (seen_, reservoir occupancy), then
    // verify the distribution behaves like a fresh one.
    Distribution d(8);
    for (int i = 0; i < 1000; ++i)
        d.sample(i);
    EXPECT_EQ(d.count(), 1000u);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 0.0);
    // Short refill: percentiles are exact again (reservoir restarts
    // from empty, not from leftover replacement state).
    for (int i = 1; i <= 5; ++i)
        d.sample(10.0 * i);
    EXPECT_EQ(d.count(), 5u);
    EXPECT_DOUBLE_EQ(d.min(), 10.0);
    EXPECT_DOUBLE_EQ(d.max(), 50.0);
    EXPECT_DOUBLE_EQ(d.mean(), 30.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 30.0);
    // And it can fill past capacity a second time.
    for (int i = 0; i < 1000; ++i)
        d.sample(500.0);
    EXPECT_EQ(d.count(), 1005u);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 500.0);
}

TEST(Distribution, PercentileBoundariesAtCountZero)
{
    Distribution d;
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 0.0);
}

TEST(Distribution, PercentileBoundariesAtCountOne)
{
    // Every quantile of a single sample is that sample — including
    // q = 0, where the rank clamp to [1, n] matters.
    Distribution d;
    d.sample(42.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.999), 42.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 42.0);
}

TEST(Distribution, PercentileIsInclusiveNearestRank)
{
    // Lock in the definition: the sample at 1-based rank
    // ceil(q * n). A reported percentile is always a recorded
    // sample, never an interpolated value between two — the old
    // type-7 interpolation returned 7.93 for p99 of 1..8.
    Distribution d;
    for (int i = 1; i <= 8; ++i)
        d.sample(i);
    EXPECT_DOUBLE_EQ(d.percentile(0.125), 1.0); // ceil(1.0) = 1
    EXPECT_DOUBLE_EQ(d.percentile(0.25), 2.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.26), 3.0); // ceil(2.08) = 3
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 4.0);  // even n: lower middle
    EXPECT_DOUBLE_EQ(d.percentile(0.99), 8.0); // tail is a sample
}

TEST(Distribution, PercentileBoundariesAtExactlyMaxSamples)
{
    // Fill the reservoir to exactly max_samples: no replacement has
    // happened yet (seen_ == capacity), so every percentile must
    // still be exact over the full stream — the boundary where an
    // off-by-one in the reservoir-full transition would first show.
    Distribution d(8);
    for (int i = 1; i <= 8; ++i)
        d.sample(i);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 8.0);
    for (int i = 1; i <= 8; ++i)
        EXPECT_DOUBLE_EQ(d.percentile(i / 8.0), i);
}

TEST(Stats, RatePerSecond)
{
    EXPECT_DOUBLE_EQ(ratePerSecond(1000, kSec), 1000.0);
    EXPECT_DOUBLE_EQ(ratePerSecond(1, kMsec), 1000.0);
    EXPECT_DOUBLE_EQ(ratePerSecond(5, 0), 0.0);
}

TEST(StatRegistry, CountersPersistByName)
{
    StatRegistry reg;
    reg.counter("a.b").inc(3);
    reg.counter("a.b").inc();
    EXPECT_EQ(reg.counterValue("a.b"), 4u);
    EXPECT_EQ(reg.counterValue("missing"), 0u);
    EXPECT_TRUE(reg.hasCounter("a.b"));
    EXPECT_FALSE(reg.hasCounter("missing"));
}

TEST(StatRegistry, ResetAllZeroesEverything)
{
    StatRegistry reg;
    reg.counter("x").inc(7);
    reg.distribution("d").sample(4.0);
    reg.resetAll();
    EXPECT_EQ(reg.counterValue("x"), 0u);
    EXPECT_EQ(reg.distribution("d").count(), 0u);
}

TEST(StatRegistry, DumpContainsNames)
{
    StatRegistry reg;
    reg.counter("alpha").inc();
    reg.distribution("beta").sample(1.0);
    std::string dump = reg.dump();
    EXPECT_NE(dump.find("alpha"), std::string::npos);
    EXPECT_NE(dump.find("beta"), std::string::npos);
}

} // namespace
} // namespace latr
