// Tests for the reuse-invariant checker itself.

#include <gtest/gtest.h>

#include "tlbcoh/invariant.hh"

namespace latr
{
namespace
{

TEST(Invariant, CleanSequencesReportNothing)
{
    InvariantChecker c;
    c.onFrameAlloc(7);
    c.onTlbInsert(0, 100, 7, 0);
    c.onTlbRemove(0, 100, 7, 0);
    c.onFrameFree(7);
    c.onFrameAlloc(7);
    EXPECT_EQ(c.violations(), 0u);
    EXPECT_TRUE(c.firstViolation().empty());
}

TEST(Invariant, FreeWhileMappedIsFlagged)
{
    InvariantChecker c;
    c.onFrameAlloc(7);
    c.onTlbInsert(0, 100, 7, 0);
    c.onFrameFree(7);
    EXPECT_EQ(c.violations(), 1u);
    EXPECT_NE(c.firstViolation().find("freed"), std::string::npos);
}

TEST(Invariant, ReallocWhileMappedIsFlagged)
{
    InvariantChecker c;
    c.onTlbInsert(0, 100, 7, 0);
    c.onFrameAlloc(7);
    EXPECT_EQ(c.violations(), 1u);
    EXPECT_NE(c.firstViolation().find("allocated"),
              std::string::npos);
}

TEST(Invariant, RefsCountAcrossCores)
{
    InvariantChecker c;
    c.onTlbInsert(0, 100, 7, 0);
    c.onTlbInsert(1, 100, 7, 0);
    c.onTlbInsert(2, 200, 7, 0); // another vpn, same frame
    EXPECT_EQ(c.tlbRefs(7), 3u);
    c.onTlbRemove(1, 100, 7, 0);
    EXPECT_EQ(c.tlbRefs(7), 2u);
    EXPECT_EQ(c.mirroredEntries(), 2u);
}

TEST(Invariant, FirstViolationIsKept)
{
    InvariantChecker c;
    c.onTlbInsert(0, 100, 7, 0);
    c.onFrameFree(7);
    std::string first = c.firstViolation();
    c.onFrameFree(7);
    EXPECT_EQ(c.violations(), 2u);
    EXPECT_EQ(c.firstViolation(), first);
}

TEST(Invariant, FirstViolationNamesFrameAndLiveRefs)
{
    InvariantChecker c;
    c.onTlbInsert(0, 100, 41, 0);
    c.onTlbInsert(1, 100, 41, 0);
    c.onTlbInsert(2, 300, 41, 2);
    c.onFrameFree(41);
    const std::string &first = c.firstViolation();
    // The report must identify the frame and how many TLB entries
    // still translated it — that is what makes it actionable.
    EXPECT_NE(first.find("pfn 41"), std::string::npos) << first;
    EXPECT_NE(first.find("3 live TLB refs"), std::string::npos)
        << first;
    EXPECT_NE(first.find("freed while still mapped"),
              std::string::npos)
        << first;
}

TEST(Invariant, AllocViolationMessageIsDistinctFromFree)
{
    InvariantChecker c;
    c.onTlbInsert(0, 100, 9, 0);
    c.onFrameAlloc(9);
    EXPECT_NE(c.firstViolation().find("allocated while still mapped"),
              std::string::npos)
        << c.firstViolation();
    EXPECT_NE(c.firstViolation().find("1 live TLB refs"),
              std::string::npos)
        << c.firstViolation();
}

TEST(Invariant, ResetClearsState)
{
    InvariantChecker c;
    c.onTlbInsert(0, 100, 7, 0);
    c.onFrameFree(7);
    c.reset();
    EXPECT_EQ(c.violations(), 0u);
    EXPECT_EQ(c.tlbRefs(7), 0u);
    EXPECT_EQ(c.mirroredEntries(), 0u);
}

TEST(InvariantDeath, StrictModePanicsImmediately)
{
    InvariantChecker c(/*strict=*/true);
    c.onTlbInsert(0, 100, 7, 0);
    EXPECT_DEATH(c.onFrameFree(7), "reuse invariant");
}

TEST(InvariantDeath, StrictPanicCarriesTheFormattedDetail)
{
    InvariantChecker c(/*strict=*/true);
    c.onTlbInsert(0, 100, 7, 0);
    c.onTlbInsert(1, 100, 7, 0);
    EXPECT_DEATH(c.onFrameFree(7), "pfn 7, 2 live TLB refs");
}

TEST(InvariantDeath, UntrackedRemoveIsASimulatorBug)
{
    InvariantChecker c;
    EXPECT_DEATH(c.onTlbRemove(0, 100, 7, 0), "untracked");
}

} // namespace
} // namespace latr
