// Unit tests for the reservation-based locks.

#include <gtest/gtest.h>

#include "vm/sem.hh"

namespace latr
{
namespace
{

TEST(SimMutex, UncontendedStartsImmediately)
{
    SimMutex m;
    EXPECT_EQ(m.acquire(100, 50), 100u);
    EXPECT_EQ(m.nextFree(), 150u);
}

TEST(SimMutex, ContendedWaits)
{
    SimMutex m;
    m.acquire(100, 50);
    EXPECT_EQ(m.acquire(120, 10), 150u);
    EXPECT_EQ(m.nextFree(), 160u);
    EXPECT_EQ(m.totalWaitNs(), 30u);
}

TEST(SimMutex, LateArrivalAfterFreeStartsImmediately)
{
    SimMutex m;
    m.acquire(100, 50);
    EXPECT_EQ(m.acquire(500, 10), 500u);
}

TEST(SimMutex, ExtendLengthensHold)
{
    SimMutex m;
    m.acquire(0, 10);
    m.extend(90);
    EXPECT_EQ(m.acquire(0, 5), 100u);
}

TEST(SimMutex, StatsCountAcquisitions)
{
    SimMutex m;
    m.acquire(0, 1);
    m.acquire(0, 1);
    EXPECT_EQ(m.acquisitions(), 2u);
}

TEST(SimRwSem, ReadersOverlap)
{
    SimRwSem s;
    EXPECT_EQ(s.acquireRead(100, 50), 100u);
    EXPECT_EQ(s.acquireRead(110, 50), 110u); // concurrent
    EXPECT_EQ(s.readAcquisitions(), 2u);
    EXPECT_EQ(s.readWaitNs(), 0u);
}

TEST(SimRwSem, WriterWaitsForReaders)
{
    SimRwSem s;
    s.acquireRead(100, 50); // readers until 150
    EXPECT_EQ(s.acquireWrite(120, 10), 150u);
    EXPECT_EQ(s.writeWaitNs(), 30u);
}

TEST(SimRwSem, ReaderWaitsForWriter)
{
    SimRwSem s;
    s.acquireWrite(100, 50); // writer until 150
    EXPECT_EQ(s.acquireRead(120, 10), 150u);
}

TEST(SimRwSem, WritersSerialize)
{
    SimRwSem s;
    EXPECT_EQ(s.acquireWrite(0, 100), 0u);
    EXPECT_EQ(s.acquireWrite(10, 100), 100u);
    EXPECT_EQ(s.acquireWrite(10, 100), 200u);
}

TEST(SimRwSem, ExtendWritePushesEveryone)
{
    SimRwSem s;
    s.acquireWrite(0, 10);
    s.extendWrite(40);
    EXPECT_EQ(s.acquireRead(0, 5), 50u);
}

TEST(SimRwSem, BlockUntilDelaysWritersAndReaders)
{
    SimRwSem s;
    s.blockUntil(1000);
    EXPECT_EQ(s.acquireRead(0, 5), 1000u);
    EXPECT_EQ(s.acquireWrite(0, 5), 1005u);
}

TEST(SimRwSem, BlockUntilNeverShortens)
{
    SimRwSem s;
    s.acquireWrite(0, 500);
    s.blockUntil(100); // earlier than the current reservation
    EXPECT_EQ(s.writerNextFree(), 500u);
}

TEST(SimRwSem, WriterNextFreeConsidersReaders)
{
    SimRwSem s;
    s.acquireRead(0, 300);
    EXPECT_EQ(s.writerNextFree(), 300u);
}

} // namespace
} // namespace latr
