// Tests for AutoNUMA scanning, hint faults, and page migration,
// under both the Linux and LATR policies.

#include <gtest/gtest.h>

#include "numa/autonuma.hh"
#include "numa/migration.hh"
#include "test_helpers.hh"

namespace latr
{
namespace
{

class AutoNumaPolicies : public ::testing::TestWithParam<PolicyKind>
{
  protected:
    AutoNumaPolicies()
        : machine(test::tinyConfig(), GetParam()),
          kernel(machine.kernel())
    {
        process = kernel.createProcess("app");
        // t0 on node 0, t4 on node 1.
        t0 = kernel.spawnTask(process, 0);
        t4 = kernel.spawnTask(process, 4);
        machine.run(kUsec);
    }

    Machine machine;
    Kernel &kernel;
    Process *process = nullptr;
    Task *t0 = nullptr;
    Task *t4 = nullptr;
};

TEST_P(AutoNumaPolicies, MigratorMovesPageAcrossNodes)
{
    PageMigrator migrator(kernel);
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    TouchResult t = kernel.touch(t0, m.addr, true); // node 0 frame
    ASSERT_EQ(machine.frames().nodeOf(t.pfn), 0u);

    Duration d = migrator.migrate(t4, pageOf(m.addr), 1);
    EXPECT_GT(d, machine.config().cost.migrateBase);
    machine.run(kMsec);
    const Pte *pte = process->mm().pageTable().find(pageOf(m.addr));
    ASSERT_NE(pte, nullptr);
    EXPECT_EQ(machine.frames().nodeOf(pte->pfn), 1u);
    EXPECT_EQ(migrator.migrations(), 1u);
    EXPECT_EQ(machine.frames().allocatedFrames(), 1u); // old freed
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_P(AutoNumaPolicies, MigrateToSameNodeIsNoop)
{
    PageMigrator migrator(kernel);
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    kernel.touch(t0, m.addr, true);
    EXPECT_EQ(migrator.migrate(t0, pageOf(m.addr), 0), 0u);
    EXPECT_EQ(migrator.migrations(), 0u);
}

TEST_P(AutoNumaPolicies, MigrateUnmappedPageIsNoop)
{
    PageMigrator migrator(kernel);
    EXPECT_EQ(migrator.migrate(t0, 0x123456, 1), 0u);
}

TEST_P(AutoNumaPolicies, ScanSamplesPresentPages)
{
    AutoNuma an(kernel, 2 * kMsec, 16);
    an.track(process);
    SyscallResult m = kernel.mmap(t0, 8 * kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, 8 * kPageSize);
    an.start();
    machine.run(3 * kMsec);
    EXPECT_GT(an.samples(), 0u);
    an.stop();
}

TEST_P(AutoNumaPolicies, TwoRemoteTouchesMigrateThePage)
{
    AutoNuma an(kernel, 2 * kMsec, 64);
    an.track(process);
    an.start();

    SyscallResult m = kernel.mmap(t0, 4 * kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, 4 * kPageSize); // node 0
    // Remote node touches repeatedly across scan rounds.
    for (int round = 0; round < 30 && an.migrations() == 0; ++round) {
        machine.run(2 * kMsec + 100 * kUsec);
        test::touchRange(kernel, t4, m.addr, 4 * kPageSize, false);
    }
    EXPECT_GT(an.migrations(), 0u);
    EXPECT_GT(an.hintFaults(), 0u);
    const Pte *pte = process->mm().pageTable().find(pageOf(m.addr));
    ASSERT_NE(pte, nullptr);
    EXPECT_EQ(machine.frames().nodeOf(pte->pfn), 1u);
    machine.run(6 * kMsec);
    EXPECT_EQ(machine.checker()->violations(), 0u);
    an.stop();
}

TEST_P(AutoNumaPolicies, LocalTouchesNeverMigrate)
{
    AutoNuma an(kernel, 2 * kMsec, 64);
    an.track(process);
    an.start();
    SyscallResult m = kernel.mmap(t0, 4 * kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, 4 * kPageSize);
    for (int round = 0; round < 10; ++round) {
        machine.run(2 * kMsec + 100 * kUsec);
        test::touchRange(kernel, t0, m.addr, 4 * kPageSize, false);
    }
    EXPECT_EQ(an.migrations(), 0u);
    an.stop();
}

INSTANTIATE_TEST_SUITE_P(
    Policies, AutoNumaPolicies,
    ::testing::Values(PolicyKind::LinuxSync, PolicyKind::Latr,
                      PolicyKind::Abis),
    [](const ::testing::TestParamInfo<PolicyKind> &info) {
        return policyKindName(info.param);
    });

TEST(AutoNumaKnobs, OneTouchMigratesOnFirstRemoteFault)
{
    Machine machine(test::tinyConfig(), PolicyKind::LinuxSync);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("app");
    Task *t0 = kernel.spawnTask(p, 0);
    Task *t4 = kernel.spawnTask(p, 4); // node 1
    machine.run(kUsec);

    AutoNuma an(kernel, 2 * kMsec, 64);
    an.track(p);
    an.setTwoTouch(false);
    an.start();

    SyscallResult m = kernel.mmap(t0, 2 * kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, 2 * kPageSize); // node 0
    machine.run(2 * kMsec + 100 * kUsec); // one scan samples them
    // The very first remote touch migrates.
    kernel.touch(t4, m.addr, false);
    EXPECT_EQ(an.migrations(), 1u);
    const Pte *pte = p->mm().pageTable().find(pageOf(m.addr));
    ASSERT_NE(pte, nullptr);
    EXPECT_EQ(machine.frames().nodeOf(pte->pfn), 1u);
    an.stop();
}

TEST(AutoNumaKnobs, StrideSamplingCoversTheWholeSpace)
{
    Machine machine(test::tinyConfig(), PolicyKind::LinuxSync);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("app");
    Task *t0 = kernel.spawnTask(p, 0);
    machine.run(kUsec);

    const std::uint64_t pages = 256;
    SyscallResult m = kernel.mmap(t0, pages * kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, pages * kPageSize);

    AutoNuma an(kernel, 2 * kMsec, 16);
    an.track(p);
    an.setScanStride(pages / 16);
    an.start();
    // One scan round: with stride sampling, the batch spans the
    // whole array, not just its head.
    machine.run(2 * kMsec + 100 * kUsec);
    an.stop();
    bool sampled_tail = false;
    p->mm().pageTable().forEachPresent(
        pageOf(m.addr) + pages / 2, pageOf(m.addr) + pages - 1,
        [&](Vpn, Pte &pte) {
            if (pte.protNone())
                sampled_tail = true;
        });
    EXPECT_TRUE(sampled_tail);
    EXPECT_GT(an.samples(), 0u);
}

TEST(AutoNumaLatr, SamplingIsCheapUnderLatr)
{
    // The headline of section 4.3: LATR removes the sampling
    // shootdown. Compare per-sample cost across policies.
    auto sample_cost = [](PolicyKind kind) {
        Machine machine(test::tinyConfig(), kind);
        Kernel &kernel = machine.kernel();
        Process *p = kernel.createProcess("app");
        Task *t0 = kernel.spawnTask(p, 0);
        Task *t4 = kernel.spawnTask(p, 4);
        machine.run(kUsec);
        SyscallResult m = kernel.mmap(t0, kPageSize,
                                      kProtRead | kProtWrite);
        test::touchRange(kernel, t0, m.addr, kPageSize);
        test::touchRange(kernel, t4, m.addr, kPageSize);
        return kernel.numaSample(t0, pageOf(m.addr));
    };
    const Duration linux_cost = sample_cost(PolicyKind::LinuxSync);
    const Duration latr_cost = sample_cost(PolicyKind::Latr);
    EXPECT_LT(latr_cost, linux_cost / 10);
}

} // namespace
} // namespace latr
