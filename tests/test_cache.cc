// Unit tests for the LLC model.

#include <gtest/gtest.h>

#include "hw/cache.hh"

namespace latr
{
namespace
{

TEST(Llc, MissThenHit)
{
    LlcCache llc(64 * 1024, 4, 64);
    EXPECT_FALSE(llc.access(1, CacheAccessOrigin::App));
    EXPECT_TRUE(llc.access(1, CacheAccessOrigin::App));
    EXPECT_EQ(llc.misses(CacheAccessOrigin::App), 1u);
    EXPECT_EQ(llc.hits(CacheAccessOrigin::App), 1u);
}

TEST(Llc, GeometryDerivedFromSize)
{
    LlcCache llc(64 * 1024, 4, 64);
    EXPECT_EQ(llc.lineBytes(), 64u);
    EXPECT_EQ(llc.ways(), 4u);
    EXPECT_EQ(llc.sets(), 64u * 1024 / 64 / 4);
}

TEST(Llc, ProbeHasNoSideEffects)
{
    LlcCache llc(64 * 1024, 4, 64);
    EXPECT_FALSE(llc.probe(42));
    llc.access(42, CacheAccessOrigin::App);
    EXPECT_TRUE(llc.probe(42));
    EXPECT_EQ(llc.hits(CacheAccessOrigin::App), 0u);
}

TEST(Llc, OriginsTrackedSeparately)
{
    LlcCache llc(64 * 1024, 4, 64);
    llc.access(1, CacheAccessOrigin::App);
    llc.access(2, CacheAccessOrigin::Interrupt);
    llc.access(2, CacheAccessOrigin::Interrupt);
    llc.access(3, CacheAccessOrigin::LatrSweep);
    EXPECT_EQ(llc.misses(CacheAccessOrigin::App), 1u);
    EXPECT_EQ(llc.misses(CacheAccessOrigin::Interrupt), 1u);
    EXPECT_EQ(llc.hits(CacheAccessOrigin::Interrupt), 1u);
    EXPECT_EQ(llc.misses(CacheAccessOrigin::LatrSweep), 1u);
}

TEST(Llc, AppMissRatio)
{
    LlcCache llc(64 * 1024, 4, 64);
    llc.access(1, CacheAccessOrigin::App);  // miss
    llc.access(1, CacheAccessOrigin::App);  // hit
    llc.access(1, CacheAccessOrigin::App);  // hit
    llc.access(1, CacheAccessOrigin::App);  // hit
    EXPECT_DOUBLE_EQ(llc.appMissRatio(), 0.25);
}

TEST(Llc, InterruptTrafficEvictsAppLines)
{
    // A tiny cache so pollution is easy to force.
    LlcCache llc(4 * 64, 4, 64); // one set, 4 ways
    for (std::uint64_t l = 0; l < 4; ++l)
        llc.access(l, CacheAccessOrigin::App);
    // All four resident.
    for (std::uint64_t l = 0; l < 4; ++l)
        EXPECT_TRUE(llc.probe(l));
    // Four interrupt lines push them all out.
    for (std::uint64_t l = 100; l < 104; ++l)
        llc.access(l, CacheAccessOrigin::Interrupt);
    int resident = 0;
    for (std::uint64_t l = 0; l < 4; ++l)
        resident += llc.probe(l) ? 1 : 0;
    EXPECT_EQ(resident, 0);
}

TEST(Llc, LruEvictsOldestWithinSet)
{
    LlcCache llc(4 * 64, 4, 64); // one set
    for (std::uint64_t l = 0; l < 4; ++l)
        llc.access(l, CacheAccessOrigin::App);
    llc.access(0, CacheAccessOrigin::App); // refresh line 0
    llc.access(50, CacheAccessOrigin::App); // evicts line 1 (LRU)
    EXPECT_TRUE(llc.probe(0));
    EXPECT_FALSE(llc.probe(1));
}

TEST(Llc, ResetStatsKeepsContents)
{
    LlcCache llc(64 * 1024, 4, 64);
    llc.access(7, CacheAccessOrigin::App);
    llc.resetStats();
    EXPECT_EQ(llc.misses(CacheAccessOrigin::App), 0u);
    EXPECT_TRUE(llc.probe(7)); // contents survive
    EXPECT_TRUE(llc.access(7, CacheAccessOrigin::App));
}

TEST(Llc, WorkingSetLargerThanCacheMissesOften)
{
    LlcCache llc(64 * 1024, 16, 64); // 1024 lines
    // Stream over 4096 distinct lines twice: mostly misses.
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t l = 0; l < 4096; ++l)
            llc.access(l, CacheAccessOrigin::App);
    EXPECT_GT(llc.appMissRatio(), 0.7);
}

TEST(Llc, WorkingSetSmallerThanCacheHitsAfterWarmup)
{
    LlcCache llc(64 * 1024, 16, 64); // 1024 lines
    for (int pass = 0; pass < 10; ++pass)
        for (std::uint64_t l = 0; l < 256; ++l)
            llc.access(l, CacheAccessOrigin::App);
    EXPECT_LT(llc.appMissRatio(), 0.2);
}

TEST(LlcCat, ReservedWaysProtectAppLinesFromSweepFills)
{
    LlcCache llc(8 * 64, 8, 64); // one set, 8 ways
    llc.setLatrReservedWays(2);
    // Fill the app partition (6 ways).
    for (std::uint64_t l = 0; l < 6; ++l)
        llc.access(l, CacheAccessOrigin::App);
    // A storm of sweep fills cannot displace them: sweeps own only
    // the 2 reserved ways.
    for (std::uint64_t l = 100; l < 140; ++l)
        llc.access(l, CacheAccessOrigin::LatrSweep);
    for (std::uint64_t l = 0; l < 6; ++l)
        EXPECT_TRUE(llc.probe(l)) << l;
}

TEST(LlcCat, AppFillsStayOutOfTheReservedWays)
{
    LlcCache llc(8 * 64, 8, 64);
    llc.setLatrReservedWays(2);
    llc.access(500, CacheAccessOrigin::LatrSweep); // resident, way 0-1
    // App thrashing cannot evict the sweep-owned line.
    for (std::uint64_t l = 0; l < 50; ++l)
        llc.access(l, CacheAccessOrigin::App);
    EXPECT_TRUE(llc.probe(500));
}

TEST(LlcCat, HitsAreUnaffectedByPartitioning)
{
    LlcCache llc(8 * 64, 8, 64);
    llc.access(7, CacheAccessOrigin::App);
    llc.setLatrReservedWays(4);
    // A hit finds the line regardless of which partition it is in.
    EXPECT_TRUE(llc.access(7, CacheAccessOrigin::LatrSweep));
}

TEST(LlcCatDeath, ReservingEveryWayIsFatal)
{
    LlcCache llc(8 * 64, 8, 64);
    EXPECT_DEATH(llc.setLatrReservedWays(8), "leave ways");
}

} // namespace
} // namespace latr
