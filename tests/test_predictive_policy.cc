// Tests for the predictive sharer-prediction policy: cold-start
// full-mask safety, fan-out narrowing after training, the
// forced-misprediction fallback path, and the deferred frame/VA
// release behind the verification pass.

#include <gtest/gtest.h>

#include "test_helpers.hh"

namespace latr
{
namespace
{

struct PredictiveFixture : public ::testing::Test
{
    PredictiveFixture()
        : machine(test::tinyConfig(), PolicyKind::Predictive),
          kernel(machine.kernel())
    {
        process = kernel.createProcess("app");
        t0 = kernel.spawnTask(process, 0);
        t1 = kernel.spawnTask(process, 1);
        t2 = kernel.spawnTask(process, 2);
    }

    /** One mmap/touch(t0,t1)/munmap training round, then settle. */
    void
    trainingRound()
    {
        SyscallResult m = kernel.mmap(t0, kPageSize,
                                      kProtRead | kProtWrite);
        test::touchRange(kernel, t0, m.addr, kPageSize);
        test::touchRange(kernel, t1, m.addr, kPageSize);
        ASSERT_TRUE(kernel.munmap(t0, m.addr, kPageSize).ok);
        machine.run(3 * kMsec); // verify pass + reclaim settle
    }

    Machine machine;
    Kernel &kernel;
    Process *process = nullptr;
    Task *t0 = nullptr;
    Task *t1 = nullptr;
    Task *t2 = nullptr;
};

TEST_F(PredictiveFixture, CapabilitiesAndContract)
{
    const PolicyCapabilities caps = machine.policy().capabilities();
    EXPECT_TRUE(caps.asynchronous);
    EXPECT_FALSE(caps.nonIpiBased);
    EXPECT_TRUE(caps.noHardwareChanges);
    EXPECT_TRUE(caps.lazyFreeCapable);
    // Lazy: the contract must budget the verification epoch plus the
    // fallback round-trip, never claim synchrony.
    EXPECT_GT(machine.policy().stalenessContract().epochBound,
              machine.config().cost.tickInterval);
}

TEST_F(PredictiveFixture, ColdStartSendsTheFullCandidateMask)
{
    // Untrained weights predict every candidate: residency minus the
    // initiator is {1, 2}, so the first unmap fans out to both —
    // zero savings, zero correctness exposure.
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, kPageSize);
    test::touchRange(kernel, t1, m.addr, kPageSize);
    const std::uint64_t ipis = machine.ipi().ipisSent();
    ASSERT_TRUE(kernel.munmap(t0, m.addr, kPageSize).ok);
    EXPECT_EQ(machine.ipi().ipisSent(), ipis + 2);
    machine.run(4 * kMsec);
    EXPECT_GT(machine.stats().counterValue("pred.verifies"), 0u);
    EXPECT_EQ(machine.stats().counterValue("pred.mispredicts"), 0u);
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_F(PredictiveFixture, TrainingNarrowsTheFanOutToRealSharers)
{
    // Core 2 is resident but never touches the region: after a few
    // confirmed outcomes the perceptron drops it and only the actual
    // sharer (core 1) is IPI'd.
    for (int round = 0; round < 4; ++round)
        trainingRound();

    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, kPageSize);
    test::touchRange(kernel, t1, m.addr, kPageSize);
    const std::uint64_t ipis = machine.ipi().ipisSent();
    ASSERT_TRUE(kernel.munmap(t0, m.addr, kPageSize).ok);
    EXPECT_EQ(machine.ipi().ipisSent(), ipis + 1); // only core 1
    EXPECT_GT(machine.stats().counterValue("pred.ipis_saved"), 0u);

    machine.run(4 * kMsec);
    // The skipped core never held the translation, so verification
    // confirms cleanly: no fallback, no staleness, frames reclaimed.
    EXPECT_EQ(machine.stats().counterValue("pred.mispredicts"), 0u);
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_F(PredictiveFixture, FreedRangeIsHeldBackUntilVerified)
{
    // The unmapped VA range must not be handed out again before the
    // verification pass confirms coherence (the reuse invariant).
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, kPageSize);
    test::touchRange(kernel, t1, m.addr, kPageSize);
    ASSERT_TRUE(kernel.munmap(t0, m.addr, kPageSize).ok);
    EXPECT_GT(process->mm().heldBackBytes(), 0u);
    machine.run(4 * kMsec);
    EXPECT_EQ(process->mm().heldBackBytes(), 0u);
}

TEST(PredictiveInjection, ForcedMispredictionFallsBackCleanly)
{
    // --inject=mispredict-sharers forces the empty prediction on
    // every free: no IPI is sent with the op, every real sharer is
    // missed, and the verification pass must absorb all of it with a
    // full-mask fallback — frames reclaimed, zero violations.
    MachineConfig cfg = test::tinyConfig();
    cfg.injectMispredictSharers = true;
    Machine machine(cfg, PolicyKind::Predictive);
    Kernel &kernel = machine.kernel();
    Process *process = kernel.createProcess("app");
    Task *t0 = kernel.spawnTask(process, 0);
    Task *t1 = kernel.spawnTask(process, 1);

    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, kPageSize);
    test::touchRange(kernel, t1, m.addr, kPageSize);
    const std::uint64_t ipis = machine.ipi().ipisSent();
    ASSERT_TRUE(kernel.munmap(t0, m.addr, kPageSize).ok);
    EXPECT_EQ(machine.ipi().ipisSent(), ipis); // nothing predicted

    machine.run(6 * kMsec);
    EXPECT_GT(machine.stats().counterValue("pred.mispredicts"), 0u);
    EXPECT_GT(machine.stats().counterValue("pred.fallback_shootdowns"),
              0u);
    EXPECT_GT(machine.ipi().ipisSent(), ipis); // the fallback round
    EXPECT_FALSE(
        machine.scheduler().tlbOf(1).probe(pageOf(m.addr), 0));
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_F(PredictiveFixture, NumaSampleStaysSynchronousFullMask)
{
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, kPageSize);
    test::touchRange(kernel, t1, m.addr, kPageSize);
    const std::uint64_t ipis = machine.ipi().ipisSent();
    kernel.numaSample(t0, pageOf(m.addr));
    // AutoNUMA sampling is not predicted: the full remote residency
    // mask {1, 2} is IPI'd synchronously, Linux-style.
    EXPECT_EQ(machine.ipi().ipisSent(), ipis + 2);
    EXPECT_TRUE(
        process->mm().pageTable().find(pageOf(m.addr))->protNone());
}

} // namespace
} // namespace latr
