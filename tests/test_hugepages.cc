// Tests for 2 MiB huge-page support — the section 7 extension: huge
// frames, PMD mappings, the separate huge-TLB array, demand faults
// that populate 2 MiB at a time, and lazy frees whose LATR state
// covers the whole region.

#include <gtest/gtest.h>

#include "test_helpers.hh"

namespace latr
{
namespace
{

TEST(HugeFrames, AllocHugeIsAlignedAndContiguous)
{
    FrameAllocator fa(2, 4096);
    Pfn base = fa.allocHuge(0);
    ASSERT_NE(base, kPfnInvalid);
    EXPECT_EQ(base % kHugePageSpan, 0u);
    for (Pfn f = base; f < base + kHugePageSpan; ++f)
        EXPECT_EQ(fa.refcount(f), 1u);
    EXPECT_EQ(fa.allocatedFrames(), kHugePageSpan);
    fa.putHuge(base);
    EXPECT_EQ(fa.allocatedFrames(), 0u);
    EXPECT_EQ(fa.freeFrames(0), 4096u);
}

TEST(HugeFrames, FragmentationDefeatsHugeAllocation)
{
    FrameAllocator fa(1, 1024);
    // Pin one frame in every aligned run.
    std::vector<Pfn> pins;
    for (int i = 0; i < 2; ++i) {
        Pfn p = fa.allocHuge(0);
        ASSERT_NE(p, kPfnInvalid);
        // Keep the middle frame, free the rest one by one.
        for (Pfn f = p; f < p + kHugePageSpan; ++f)
            if (f != p + 100)
                fa.put(f);
        pins.push_back(p + 100);
    }
    EXPECT_EQ(fa.allocHuge(0), kPfnInvalid);
    for (Pfn p : pins)
        fa.put(p);
    EXPECT_NE(fa.allocHuge(0), kPfnInvalid);
}

TEST(HugeFrames, BaseAllocationSkipsNothing)
{
    FrameAllocator fa(1, 1024);
    Pfn huge = fa.allocHuge(0);
    ASSERT_NE(huge, kPfnInvalid);
    // Base allocation still works around the huge run.
    Pfn base = fa.alloc(0);
    EXPECT_NE(base, kPfnInvalid);
    EXPECT_TRUE(base < huge || base >= huge + kHugePageSpan);
    fa.put(base);
    fa.putHuge(huge);
}

TEST(HugePageTable, MapFindUnmap)
{
    PageTable pt;
    pt.mapHuge(0, 512, kPteWrite);
    ASSERT_NE(pt.findHuge(0), nullptr);
    ASSERT_NE(pt.findHuge(300), nullptr); // any page in the region
    EXPECT_EQ(pt.findHuge(300)->pfn, 512u);
    EXPECT_TRUE(pt.findHuge(0)->huge());
    EXPECT_EQ(pt.presentHugePages(), 1u);
    EXPECT_EQ(pt.findHuge(512), nullptr); // next region

    Pte old = pt.unmapHuge(100); // any covered vpn works
    EXPECT_TRUE(old.present());
    EXPECT_EQ(pt.findHuge(0), nullptr);
}

TEST(HugePageTableDeath, UnalignedOrOverlappingMapsPanic)
{
    PageTable pt;
    EXPECT_DEATH(pt.mapHuge(5, 512, 0), "unaligned");
    pt.map(10, 1, 0); // base mapping inside region 0
    EXPECT_DEATH(pt.mapHuge(0, 512, 0), "existing base");
}

TEST(HugeTlb, HugeEntryCoversWholeRegion)
{
    Tlb tlb(0, 4, 8, 4);
    tlb.insertHuge(0, 1024, 0);
    Pfn pfn = 0;
    bool huge = false;
    EXPECT_EQ(tlb.lookup(0, 0, &pfn, nullptr, &huge),
              TlbResult::HitL1);
    EXPECT_TRUE(huge);
    EXPECT_EQ(pfn, 1024u);
    // Offset within the region resolves with the offset applied.
    EXPECT_EQ(tlb.lookup(300, 0, &pfn, nullptr, &huge),
              TlbResult::HitL1);
    EXPECT_EQ(pfn, 1324u);
    EXPECT_TRUE(tlb.probeHuge(511, 0));
    EXPECT_FALSE(tlb.probeHuge(512, 0));
    EXPECT_EQ(tlb.hugeSize(), 1u);
}

TEST(HugeTlb, InvlpgOfAnyCoveredPageDropsTheHugeEntry)
{
    Tlb tlb(0, 4, 8, 4);
    tlb.insertHuge(0, 1024, 0);
    tlb.invalidatePage(77, 0);
    EXPECT_FALSE(tlb.probeHuge(0, 0));
}

TEST(HugeTlb, RangeInvalidationDropsOverlappingHugeEntries)
{
    Tlb tlb(0, 4, 8, 4);
    tlb.insertHuge(0, 1024, 0);
    tlb.insertHuge(512, 2048, 0);
    tlb.invalidateRange(500, 600, 0); // overlaps both regions
    EXPECT_FALSE(tlb.probeHuge(0, 0));
    EXPECT_FALSE(tlb.probeHuge(512, 0));
}

TEST(HugeTlb, FlushAndPcidCoverHugeEntries)
{
    Tlb tlb(0, 4, 8, 4);
    tlb.insertHuge(0, 1024, 1);
    tlb.insertHuge(512, 2048, 2);
    tlb.invalidatePcid(1);
    EXPECT_FALSE(tlb.probeHuge(0, 1));
    EXPECT_TRUE(tlb.probeHuge(512, 2));
    tlb.flushAll();
    EXPECT_EQ(tlb.hugeSize(), 0u);
}

class HugeKernel : public ::testing::TestWithParam<PolicyKind>
{
  protected:
    HugeKernel()
        : machine(makeConfig(), GetParam()), kernel(machine.kernel())
    {
        process = kernel.createProcess("huge");
        t0 = kernel.spawnTask(process, 0);
        t1 = kernel.spawnTask(process, 1);
        machine.run(kUsec);
    }

    static MachineConfig
    makeConfig()
    {
        MachineConfig cfg = test::tinyConfig();
        cfg.framesPerNode = 8192; // room for several 512-frame runs
        return cfg;
    }

    Machine machine;
    Kernel &kernel;
    Process *process = nullptr;
    Task *t0 = nullptr;
    Task *t1 = nullptr;
};

TEST_P(HugeKernel, FirstTouchPopulatesWholeRegion)
{
    SyscallResult m = kernel.mmapHuge(t0, kHugePageSize,
                                      kProtRead | kProtWrite);
    ASSERT_TRUE(m.ok);
    EXPECT_EQ(m.addr % kHugePageSize, 0u);

    TouchResult first = kernel.touch(t0, m.addr + 5 * kPageSize, true);
    EXPECT_EQ(first.kind, TouchKind::MinorFault);
    EXPECT_EQ(machine.frames().allocatedFrames(), kHugePageSpan);
    // Every other page in the region now hits the huge TLB entry.
    TouchResult hit = kernel.touch(t0, m.addr + 400 * kPageSize, true);
    EXPECT_EQ(hit.kind, TouchKind::TlbHit);
    EXPECT_EQ(process->mm().pageTable().presentHugePages(), 1u);
    EXPECT_EQ(process->mm().pageTable().presentPages(), 0u);
}

TEST_P(HugeKernel, MunmapFreesTheRegionCoherently)
{
    SyscallResult m = kernel.mmapHuge(t0, kHugePageSize,
                                      kProtRead | kProtWrite);
    kernel.touch(t0, m.addr, true);
    kernel.touch(t1, m.addr + 7 * kPageSize, false); // t1 caches it
    ASSERT_TRUE(
        machine.scheduler().tlbOf(1).probeHuge(pageOf(m.addr), 0));

    SyscallResult u = kernel.munmap(t0, m.addr, kHugePageSize);
    ASSERT_TRUE(u.ok);
    machine.run(8 * kMsec);
    EXPECT_FALSE(
        machine.scheduler().tlbOf(1).probeHuge(pageOf(m.addr), 0));
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(machine.checker()->violations(), 0u)
        << machine.checker()->firstViolation();
}

TEST_P(HugeKernel, MadviseDropsRegionAndRefaults)
{
    SyscallResult m = kernel.mmapHuge(t0, kHugePageSize,
                                      kProtRead | kProtWrite);
    kernel.touch(t0, m.addr, true);
    SyscallResult a = kernel.madvise(t0, m.addr, kHugePageSize);
    ASSERT_TRUE(a.ok);
    machine.run(8 * kMsec);
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    // VMA survives: the next touch populates a fresh region.
    TouchResult t = kernel.touch(t0, m.addr, true);
    EXPECT_EQ(t.kind, TouchKind::MinorFault);
    EXPECT_EQ(machine.frames().allocatedFrames(), kHugePageSpan);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_P(HugeKernel, FallsBackToBasePagesUnderFragmentation)
{
    MachineConfig cfg = makeConfig();
    cfg.framesPerNode = 1024;
    Machine small(cfg, GetParam());
    Kernel &k = small.kernel();
    Process *p = k.createProcess("frag");
    Task *t = k.spawnTask(p, 0);
    small.run(kUsec);

    // Fragment: pin single frames across both aligned runs.
    SyscallResult pin1 = k.mmap(t, kPageSize, kProtRead | kProtWrite);
    k.touch(t, pin1.addr, true); // frame in run 0
    SyscallResult burn =
        k.mmap(t, 600 * kPageSize, kProtRead | kProtWrite);
    for (int i = 0; i < 600; ++i)
        k.touch(t, burn.addr + i * kPageSize, true);
    // Now no full aligned run is free.
    ASSERT_EQ(small.frames().allocHuge(0), kPfnInvalid);

    SyscallResult m = k.mmapHuge(t, kHugePageSize,
                                 kProtRead | kProtWrite);
    ASSERT_TRUE(m.ok);
    TouchResult r = k.touch(t, m.addr, true);
    EXPECT_EQ(r.kind, TouchKind::MinorFault);
    // Fell back to one base page, not a 512-frame region.
    EXPECT_EQ(p->mm().pageTable().presentHugePages(), 0u);
    EXPECT_GE(p->mm().pageTable().presentPages(), 1u);
}

TEST_P(HugeKernel, WriteThroughReadOnlyHugeEntrySegfaults)
{
    SyscallResult m = kernel.mmapHuge(t0, kHugePageSize, kProtRead);
    TouchResult r = kernel.touch(t0, m.addr, false);
    EXPECT_EQ(r.kind, TouchKind::MinorFault);
    EXPECT_EQ(kernel.touch(t0, m.addr, true).kind,
              TouchKind::SegFault);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, HugeKernel,
    ::testing::Values(PolicyKind::LinuxSync, PolicyKind::Latr,
                      PolicyKind::Abis, PolicyKind::Barrelfish),
    [](const ::testing::TestParamInfo<PolicyKind> &info) {
        return policyKindName(info.param);
    });

TEST(HugeLatr, LazyFreeOfHugeRegionUsesOneState)
{
    MachineConfig cfg = test::tinyConfig();
    cfg.framesPerNode = 8192;
    Machine machine(cfg, PolicyKind::Latr);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("huge");
    Task *t0 = kernel.spawnTask(p, 0);
    Task *t1 = kernel.spawnTask(p, 1);
    machine.run(kUsec);

    SyscallResult m = kernel.mmapHuge(t0, kHugePageSize,
                                      kProtRead | kProtWrite);
    kernel.touch(t0, m.addr, true);
    kernel.touch(t1, m.addr, false);

    const std::uint64_t ipis = machine.ipi().ipisSent();
    SyscallResult u = kernel.munmap(t0, m.addr, kHugePageSize);
    ASSERT_TRUE(u.ok);
    EXPECT_EQ(machine.ipi().ipisSent(), ipis); // lazy, no IPI
    EXPECT_EQ(machine.stats().counterValue("latr.states_saved"), 1u);
    // 2 MiB parked on the lazy list until reclamation.
    machine.run(kMsec / 2);
    EXPECT_EQ(machine.frames().allocatedFrames(), kHugePageSpan);
    machine.run(6 * kMsec);
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(machine.stats().counterValue("latr.reclaimed_pages"),
              kHugePageSpan);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

} // namespace
} // namespace latr
