// Tests for the Linux synchronous-IPI baseline policy.

#include <gtest/gtest.h>

#include "test_helpers.hh"

namespace latr
{
namespace
{

struct LinuxFixture : public ::testing::Test
{
    LinuxFixture()
        : machine(test::tinyConfig(), PolicyKind::LinuxSync),
          kernel(machine.kernel())
    {
        process = kernel.createProcess("app");
        t0 = kernel.spawnTask(process, 0);
        t1 = kernel.spawnTask(process, 1);
        t4 = kernel.spawnTask(process, 4); // other socket
    }

    Machine machine;
    Kernel &kernel;
    Process *process = nullptr;
    Task *t0 = nullptr;
    Task *t1 = nullptr;
    Task *t4 = nullptr;
};

TEST_F(LinuxFixture, MunmapWaitsForAcks)
{
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, kPageSize);
    test::touchRange(kernel, t1, m.addr, kPageSize);
    test::touchRange(kernel, t4, m.addr, kPageSize);

    SyscallResult u = kernel.munmap(t0, m.addr, kPageSize);
    // Cross-socket ACK wait: at least one IPI delivery (~2.7 us).
    EXPECT_GT(u.shootdown, 2 * kUsec);
    EXPECT_GT(machine.ipi().ipisSent(), 0u);
}

TEST_F(LinuxFixture, MunmapWithNoRemoteResidencySkipsIpis)
{
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, kPageSize);
    const std::uint64_t ipis_before = machine.ipi().ipisSent();
    SyscallResult u = kernel.munmap(t0, m.addr, kPageSize);
    EXPECT_TRUE(u.ok);
    // Only cores 1 and 4 are resident (they ran tasks); they never
    // touched this page but are still IPI'd (Linux targets the whole
    // mm residency). Their count is what it is — but if we retarget
    // to a single-core process, no IPI at all:
    Process *solo = kernel.createProcess("solo");
    Task *st = kernel.spawnTask(solo, 2);
    SyscallResult sm = kernel.mmap(st, kPageSize,
                                   kProtRead | kProtWrite);
    test::touchRange(kernel, st, sm.addr, kPageSize);
    const std::uint64_t before2 = machine.ipi().ipisSent();
    SyscallResult su = kernel.munmap(st, sm.addr, kPageSize);
    EXPECT_EQ(machine.ipi().ipisSent(), before2);
    EXPECT_LT(su.shootdown, kUsec);
    (void)ipis_before;
    (void)u;
}

TEST_F(LinuxFixture, RemoteTlbEntriesDieAtDelivery)
{
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t1, m.addr, kPageSize);
    ASSERT_TRUE(machine.scheduler().tlbOf(1).probe(pageOf(m.addr), 0));
    kernel.munmap(t0, m.addr, kPageSize);
    // Events have not run yet: the entry may still be there. After
    // running past the delivery, it must be gone.
    machine.run(100 * kUsec);
    EXPECT_FALSE(machine.scheduler().tlbOf(1).probe(pageOf(m.addr), 0));
}

TEST_F(LinuxFixture, FramesFreeOnlyAfterCompletion)
{
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, kPageSize);
    test::touchRange(kernel, t4, m.addr, kPageSize);
    EXPECT_EQ(machine.frames().allocatedFrames(), 1u);
    kernel.munmap(t0, m.addr, kPageSize);
    // Frame still held until the ACKs land (free is event-driven).
    EXPECT_EQ(machine.frames().allocatedFrames(), 1u);
    machine.run(100 * kUsec);
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST_F(LinuxFixture, RemoteHandlersStealTime)
{
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t1, m.addr, kPageSize);
    machine.scheduler().takeStolen(1);
    kernel.munmap(t0, m.addr, kPageSize);
    machine.run(100 * kUsec);
    // Core 1 paid interrupt time (at least the fixed handler cost).
    EXPECT_GE(machine.scheduler().takeStolen(1),
              machine.config().cost.ipiHandlerFixed);
}

TEST_F(LinuxFixture, LargeUnmapUsesFullFlushOnRemotes)
{
    const std::uint64_t pages = 64; // above the 33-page threshold
    SyscallResult m = kernel.mmap(t0, pages * kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, pages * kPageSize);
    test::touchRange(kernel, t1, m.addr, pages * kPageSize);
    const std::uint64_t flushes_before =
        machine.scheduler().tlbOf(1).flushes();
    kernel.munmap(t0, m.addr, pages * kPageSize);
    machine.run(100 * kUsec);
    EXPECT_GT(machine.scheduler().tlbOf(1).flushes(), flushes_before);
    EXPECT_EQ(machine.scheduler().tlbOf(1).size(), 0u);
}

TEST_F(LinuxFixture, IdleCoresAreNotShotDown)
{
    // A task runs briefly on core 2, then exits: lazy-TLB idle mode
    // flushed the core and dropped it from the residency mask, so a
    // later munmap sends it nothing.
    Task *t2 = kernel.spawnTask(process, 2);
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t2, m.addr, kPageSize);
    kernel.exitTask(t2);
    EXPECT_FALSE(process->mm().residencyMask().test(2));
    // Counting IPIs per munmap: targets are cores 1 and 4 only.
    const std::uint64_t before = machine.ipi().ipisSent();
    kernel.munmap(t0, m.addr, kPageSize);
    EXPECT_EQ(machine.ipi().ipisSent(), before + 2);
}

TEST_F(LinuxFixture, CapabilitiesMatchTable2)
{
    PolicyCapabilities caps = machine.policy().capabilities();
    EXPECT_FALSE(caps.asynchronous);
    EXPECT_FALSE(caps.nonIpiBased);
    EXPECT_FALSE(caps.noRemoteCoreInvolvement);
    EXPECT_TRUE(caps.noHardwareChanges);
    EXPECT_FALSE(caps.lazyFreeCapable);
}

TEST_F(LinuxFixture, NumaSampleShootsDownSynchronously)
{
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t0, m.addr, kPageSize);
    test::touchRange(kernel, t4, m.addr, kPageSize);
    Duration d = kernel.numaSample(t0, pageOf(m.addr));
    EXPECT_GT(d, 2 * kUsec); // paid the IPI wait
    EXPECT_TRUE(process->mm()
                    .pageTable()
                    .find(pageOf(m.addr))
                    ->protNone());
    machine.run(100 * kUsec);
    EXPECT_FALSE(
        machine.scheduler().tlbOf(4).probe(pageOf(m.addr), 0));
}

} // namespace
} // namespace latr
