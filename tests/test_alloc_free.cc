// Proves the PR's allocation-free claim: after warmup, the engine's
// hottest paths — EventQueue::schedule/dispatch (including pooled
// lambdas) and Tlb insert/lookup/invalidateRange/invalidatePcid —
// perform zero heap allocations. A replaced global operator new
// counts every allocation in the process; each test snapshots the
// counter around a steady-state loop and requires a delta of zero.
//
// This is a separate binary from latr_tests so the replaced
// operator new cannot perturb (or be perturbed by) the main suite.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "hw/tlb.hh"
#include "machine/machine.hh"
#include "serve/histogram.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "workload/lazycache.hh"

namespace
{
std::atomic<std::uint64_t> g_allocs{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace latr
{
namespace
{

std::uint64_t
allocsNow()
{
    return g_allocs.load(std::memory_order_relaxed);
}

class TickEvent : public Event
{
  public:
    TickEvent(EventQueue *q, Duration period) : q_(q), period_(period)
    {}

    void process() override { q_->schedule(this, q_->now() + period_); }

  private:
    EventQueue *q_;
    Duration period_;
};

TEST(AllocFree, EventQueueScheduleDispatchSteadyState)
{
    EventQueue q;
    TickEvent a(&q, 3);
    TickEvent b(&q, 5);
    TickEvent c(&q, 7);
    q.schedule(&a, 1);
    q.schedule(&b, 1);
    q.schedule(&c, 2);
    // Warmup grows the slot array, heap storage, and lambda pool to
    // their steady-state footprint.
    for (int i = 0; i < 2000; ++i)
        q.scheduleLambda(q.now() + 1 + (i % 13), []() {});
    q.run(q.now() + 10000);

    const std::uint64_t before = allocsNow();
    for (int round = 0; round < 200; ++round) {
        for (int i = 0; i < 50; ++i)
            q.scheduleLambda(q.now() + 1 + (i % 13), []() {});
        q.run(q.now() + 100);
        q.reschedule(&a, q.now() + 2);
    }
    EXPECT_EQ(allocsNow() - before, 0u)
        << "EventQueue schedule/dispatch allocated in steady state";

    q.deschedule(&a);
    q.deschedule(&b);
    q.deschedule(&c);
}

TEST(AllocFree, TlbInsertLookupInvalidateSteadyState)
{
    Tlb tlb(0, 64, 512, 32);
    Rng rng(0xa110c);
    const Vpn working_set = 2048;

    // Warmup: fill both levels and the huge array past capacity.
    for (Vpn v = 0; v < working_set; ++v)
        tlb.insert(v, 0x1000 + v, 1);
    for (Vpn b = 0; b < 64 * kHugePageSpan; b += kHugePageSpan)
        tlb.insertHuge(b, 0x100000 + b, 1);

    const std::uint64_t before = allocsNow();
    for (int i = 0; i < 100000; ++i) {
        const Vpn vpn = rng.nextBounded(working_set);
        Pfn pfn;
        if (tlb.lookup(vpn, 1, &pfn) == TlbResult::Miss)
            tlb.insert(vpn, 0x1000 + vpn, 1);
        if ((i & 0xff) == 0) {
            const Vpn base = rng.nextBounded(working_set);
            tlb.invalidateRange(base, base + 7, 1);
        }
        if ((i & 0xfff) == 0)
            tlb.invalidatePcid(2);
    }
    tlb.flushAll();
    EXPECT_EQ(allocsNow() - before, 0u)
        << "Tlb hot paths allocated in steady state";
}

TEST(AllocFree, LazyCacheSteadyStateReadWriteLoop)
{
    // The lazycache hot loop — optimistic reads revalidating
    // generations, writers bumping them, pooled step events
    // rescheduling — must not touch the heap once warm. Pressure is
    // disabled (burstPages = 0): MADV_FREE's unmap bookkeeping is
    // allowed to allocate, the read/write cache loop is not.
    LazyCacheConfig cfg;
    cfg.cachePages = 512;
    cfg.hotFraction = 0.25;
    cfg.readers = 4;
    cfg.writers = 2;
    cfg.burstPages = 0;
    Machine machine(MachineConfig::commodity2S16C(),
                    PolicyKind::Latr);
    LazyCacheWorkload cache(machine, cfg);
    cache.start();
    machine.run(5 * kMsec); // warmup: faults in every page, fills TLBs

    const std::uint64_t before = allocsNow();
    const std::uint64_t readsBefore = cache.reads();
    machine.run(20 * kMsec);
    EXPECT_EQ(allocsNow() - before, 0u)
        << "lazycache steady-state loop allocated";
    EXPECT_GT(cache.reads(), readsBefore);
    EXPECT_GT(cache.writes(), 0u);
}

TEST(AllocFree, LazyCacheSteadyStateWithSimThreads)
{
    // The same hot loop under the parallel engine at --sim-threads=4:
    // batch formation (members, footprints, write/read unions), the
    // executor's claim protocol, and the per-lane lambda freelists
    // must all run out of storage grown during warmup. This is the
    // allocation-free claim for the per-worker pools — steady-state
    // lambda churn recycles wrappers lane-locally instead of hitting
    // the heap.
    LazyCacheConfig cfg;
    cfg.cachePages = 512;
    cfg.hotFraction = 0.25;
    cfg.readers = 4;
    cfg.writers = 2;
    cfg.burstPages = 0;
    MachineConfig mc = MachineConfig::commodity2S16C();
    mc.simThreads = 4;
    Machine machine(mc, PolicyKind::Latr);
    LazyCacheWorkload cache(machine, cfg);
    cache.start();
    machine.run(5 * kMsec); // warmup: faults, TLB fills, pool growth

    const std::uint64_t before = allocsNow();
    const std::uint64_t readsBefore = cache.reads();
    machine.run(20 * kMsec);
    EXPECT_EQ(allocsNow() - before, 0u)
        << "threaded lazycache steady-state loop allocated";
    EXPECT_GT(cache.reads(), readsBefore);
    EXPECT_GT(cache.writes(), 0u);
}

TEST(AllocFree, LatencyHistogramRecordAndQueryAreAllocFree)
{
    // The serve subsystem records every request completion into this
    // histogram on the hot path, so record() — and the percentile
    // queries the SLO report makes — must never touch the heap. The
    // buckets are a fixed-size member array; no warmup needed.
    LatencyHistogram h;
    Rng rng(0x5e21e);

    const std::uint64_t before = allocsNow();
    for (int i = 0; i < 100000; ++i)
        h.record(rng.nextBounded(50'000'000) + 1);
    const std::uint64_t sum = h.percentile(0.50) + h.percentile(0.99) +
                              h.percentile(0.999) + h.digest();
    EXPECT_EQ(allocsNow() - before, 0u)
        << "LatencyHistogram hot paths allocated";
    EXPECT_EQ(h.count(), 100000u);
    EXPECT_GT(sum, 0u);
}

} // namespace
} // namespace latr
