// Tests for the Machine facade and the stats summary.

#include <gtest/gtest.h>

#include "machine/machine_stats.hh"
#include "test_helpers.hh"

namespace latr
{
namespace
{

TEST(Machine, BuildsCommodityPreset)
{
    Machine m(MachineConfig::commodity2S16C(), PolicyKind::Latr);
    EXPECT_EQ(m.topo().totalCores(), 16u);
    EXPECT_EQ(m.scheduler().coreCount(), 16u);
    EXPECT_STREQ(m.policy().name(), "LATR");
    EXPECT_NE(m.checker(), nullptr);
}

TEST(Machine, BuildsLargeNumaPreset)
{
    Machine m(MachineConfig::largeNuma8S120C(), PolicyKind::LinuxSync);
    EXPECT_EQ(m.topo().totalCores(), 120u);
    EXPECT_EQ(m.config().sockets, 8u);
    // Every socket has an LLC.
    for (NodeId n = 0; n < 8; ++n)
        EXPECT_GT(m.llcOf(n).sets(), 0u);
}

TEST(Machine, CheckerCanBeDisabled)
{
    Machine m(test::tinyConfig(), PolicyKind::Latr, false);
    EXPECT_EQ(m.checker(), nullptr);
}

TEST(Machine, RunAdvancesTime)
{
    Machine m(test::tinyConfig(), PolicyKind::Latr);
    EXPECT_EQ(m.now(), 0u);
    m.run(5 * kMsec);
    EXPECT_EQ(m.now(), 5 * kMsec);
    m.run(1 * kMsec);
    EXPECT_EQ(m.now(), 6 * kMsec);
}

TEST(Machine, DrainStopsTicksAndEmptiesQueue)
{
    Machine m(test::tinyConfig(), PolicyKind::Latr);
    Process *p = m.kernel().createProcess("x");
    m.kernel().spawnTask(p, 0);
    m.run(kMsec);
    m.drain(m.now() + kSec);
    EXPECT_TRUE(m.queue().empty());
}

TEST(Machine, EveryPolicyKindConstructs)
{
    for (PolicyKind kind :
         {PolicyKind::LinuxSync, PolicyKind::Latr, PolicyKind::Abis,
          PolicyKind::Barrelfish}) {
        Machine m(test::tinyConfig(), kind);
        EXPECT_STREQ(m.policy().name(), policyKindName(kind));
        EXPECT_EQ(m.policy().kind(), kind);
    }
}

TEST(MachineStats, SummaryReflectsActivity)
{
    Machine m(test::tinyConfig(), PolicyKind::LinuxSync);
    Kernel &kernel = m.kernel();
    Process *p = kernel.createProcess("app");
    Task *t0 = kernel.spawnTask(p, 0);
    Task *t1 = kernel.spawnTask(p, 1);
    for (int i = 0; i < 10; ++i) {
        SyscallResult mm = kernel.mmap(t0, kPageSize,
                                       kProtRead | kProtWrite);
        test::touchRange(kernel, t0, mm.addr, kPageSize);
        test::touchRange(kernel, t1, mm.addr, kPageSize);
        kernel.munmap(t0, mm.addr, kPageSize);
        m.run(50 * kUsec);
    }
    MachineSummary s = summarize(m, m.now());
    EXPECT_GT(s.shootdownsPerSec, 0.0);
    EXPECT_GT(s.ipisPerSec, 0.0);
    EXPECT_GT(s.munmapMeanNs, 0.0);
    EXPECT_GT(s.munmapShootdownMeanNs, 0.0);
    std::string line = formatSummary(s);
    EXPECT_NE(line.find("shootdowns/s="), std::string::npos);
}

TEST(MachineStats, LatrFieldsPopulated)
{
    Machine m(test::tinyConfig(), PolicyKind::Latr);
    Kernel &kernel = m.kernel();
    Process *p = kernel.createProcess("app");
    Task *t0 = kernel.spawnTask(p, 0);
    Task *t1 = kernel.spawnTask(p, 1);
    SyscallResult mm = kernel.mmap(t0, kPageSize,
                                   kProtRead | kProtWrite);
    test::touchRange(kernel, t1, mm.addr, kPageSize);
    kernel.munmap(t0, mm.addr, kPageSize);
    MachineSummary s = summarize(m, kMsec);
    EXPECT_EQ(s.latrStatesSaved, 1u);
    EXPECT_EQ(s.latrFallbacks, 0u);
}

} // namespace
} // namespace latr
