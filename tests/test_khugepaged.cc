// Tests for transparent huge-page promotion (khugepaged).

#include <gtest/gtest.h>

#include "numa/khugepaged.hh"
#include "test_helpers.hh"

namespace latr
{
namespace
{

class ThpPolicies : public ::testing::TestWithParam<PolicyKind>
{
  protected:
    ThpPolicies()
        : machine(makeConfig(), GetParam()), kernel(machine.kernel())
    {
        process = kernel.createProcess("thp");
        t0 = kernel.spawnTask(process, 0);
        t1 = kernel.spawnTask(process, 1);
        machine.run(kUsec);
    }

    static MachineConfig
    makeConfig()
    {
        MachineConfig cfg = test::tinyConfig();
        cfg.framesPerNode = 8192;
        return cfg;
    }

    /** An aligned, fully faulted 2 MiB region in a normal VMA. */
    Addr
    candidateRegion()
    {
        // Over-allocate so an aligned span fits.
        SyscallResult m =
            kernel.mmap(t0, 3 * kHugePageSize, kProtRead | kProtWrite);
        Addr aligned =
            (m.addr + kHugePageSize - 1) & ~(kHugePageSize - 1);
        for (std::uint64_t p = 0; p < kHugePageSpan; ++p)
            kernel.touch(t0, aligned + p * kPageSize, true);
        return aligned;
    }

    Machine machine;
    Kernel &kernel;
    Process *process = nullptr;
    Task *t0 = nullptr;
    Task *t1 = nullptr;
};

TEST_P(ThpPolicies, FullyPopulatedRegionPromotes)
{
    Addr region = candidateRegion();
    const std::uint64_t before = machine.frames().allocatedFrames();
    ASSERT_GE(before, kHugePageSpan);

    Khugepaged thp(kernel, 3 * kMsec, 4);
    thp.track(process);
    thp.start();
    machine.run(10 * kMsec);
    thp.stop();
    machine.run(2 * kMsec);

    EXPECT_GE(thp.stats().promotions, 1u);
    ASSERT_NE(process->mm().pageTable().findHuge(pageOf(region)),
              nullptr);
    // 512 base PTEs replaced by one PMD entry; frame count balanced
    // (old 512 freed, new contiguous 512 allocated).
    EXPECT_EQ(process->mm().pageTable().presentPages(),
              before - kHugePageSpan);
    EXPECT_EQ(machine.frames().allocatedFrames(), before);
    EXPECT_EQ(machine.checker()->violations(), 0u)
        << machine.checker()->firstViolation();
}

TEST_P(ThpPolicies, PromotedRegionStillReadsAndWrites)
{
    Addr region = candidateRegion();
    Khugepaged thp(kernel, 3 * kMsec, 4);
    thp.track(process);
    thp.start();
    machine.run(10 * kMsec);
    thp.stop();
    ASSERT_GE(thp.stats().promotions, 1u);

    for (std::uint64_t p = 0; p < kHugePageSpan; p += 37) {
        TouchResult r = kernel.touch(t1, region + p * kPageSize, true);
        EXPECT_NE(r.kind, TouchKind::SegFault) << p;
    }
    // And the touches resolve through the huge entry.
    EXPECT_TRUE(machine.scheduler().tlbOf(1).probeHuge(
        pageOf(region), process->mm().pcid()));
}

TEST_P(ThpPolicies, RemoteStaleEntriesDieBeforeOldFramesFree)
{
    Addr region = candidateRegion();
    // t1 caches a bunch of base translations of the region.
    for (std::uint64_t p = 0; p < 32; ++p)
        kernel.touch(t1, region + p * kPageSize, false);

    Khugepaged thp(kernel, 3 * kMsec, 4);
    thp.track(process);
    thp.start();
    machine.run(10 * kMsec);
    thp.stop();
    machine.run(2 * kMsec);
    ASSERT_GE(thp.stats().promotions, 1u);
    // The collapse's synchronous shootdown killed them before the
    // old frames were reused — checker-verified.
    EXPECT_EQ(machine.checker()->violations(), 0u)
        << machine.checker()->firstViolation();
}

TEST_P(ThpPolicies, RegionsWithHolesAreSkipped)
{
    Addr region = candidateRegion();
    // Punch a hole.
    kernel.madvise(t0, region + 17 * kPageSize, kPageSize);
    machine.run(8 * kMsec);

    Khugepaged thp(kernel, 3 * kMsec, 4);
    thp.track(process);
    thp.start();
    machine.run(10 * kMsec);
    thp.stop();
    EXPECT_EQ(process->mm().pageTable().findHuge(pageOf(region)),
              nullptr);
}

TEST_P(ThpPolicies, CowRegionsAreSkipped)
{
    Addr region = candidateRegion();
    kernel.markCow(t0, region + 5 * kPageSize, kPageSize);
    Khugepaged thp(kernel, 3 * kMsec, 4);
    thp.track(process);
    thp.start();
    machine.run(10 * kMsec);
    thp.stop();
    EXPECT_EQ(process->mm().pageTable().findHuge(pageOf(region)),
              nullptr);
    EXPECT_GT(thp.stats().aborts, 0u);
}

TEST_P(ThpPolicies, PromotedRegionFreesLikeAHugePage)
{
    Addr region = candidateRegion();
    Khugepaged thp(kernel, 3 * kMsec, 4);
    thp.track(process);
    thp.start();
    machine.run(10 * kMsec);
    thp.stop();
    ASSERT_GE(thp.stats().promotions, 1u);
    machine.run(2 * kMsec);

    // munmap of a promoted region travels the huge-page free path
    // (one PMD clear, lazy under LATR) even though the VMA is not
    // a huge VMA.
    SyscallResult u = kernel.munmap(t0, region, kHugePageSize);
    ASSERT_TRUE(u.ok);
    machine.run(8 * kMsec);
    EXPECT_EQ(process->mm().pageTable().findHuge(pageOf(region)),
              nullptr);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ThpPolicies,
    ::testing::Values(PolicyKind::LinuxSync, PolicyKind::Latr),
    [](const ::testing::TestParamInfo<PolicyKind> &info) {
        return policyKindName(info.param);
    });

} // namespace
} // namespace latr
