// Unit tests for the 4-level page table.

#include <gtest/gtest.h>

#include <vector>

#include "mem/page_table.hh"

namespace latr
{
namespace
{

TEST(PageTable, MapThenFind)
{
    PageTable pt;
    pt.map(100, 7, kPteWrite);
    const Pte *pte = pt.find(100);
    ASSERT_NE(pte, nullptr);
    EXPECT_EQ(pte->pfn, 7u);
    EXPECT_TRUE(pte->present());
    EXPECT_TRUE(pte->writable());
    EXPECT_EQ(pt.presentPages(), 1u);
}

TEST(PageTable, FindMissingReturnsNull)
{
    PageTable pt;
    EXPECT_EQ(pt.find(100), nullptr);
    pt.map(100, 7, 0);
    EXPECT_EQ(pt.find(101), nullptr);
}

TEST(PageTable, UnmapReturnsOldPte)
{
    PageTable pt;
    pt.map(100, 7, kPteWrite);
    Pte old = pt.unmap(100);
    EXPECT_TRUE(old.present());
    EXPECT_EQ(old.pfn, 7u);
    EXPECT_EQ(pt.find(100), nullptr);
    EXPECT_EQ(pt.presentPages(), 0u);
}

TEST(PageTable, UnmapMissingIsEmptyPte)
{
    PageTable pt;
    Pte old = pt.unmap(12345);
    EXPECT_FALSE(old.present());
}

TEST(PageTable, RemapAfterUnmapWorks)
{
    PageTable pt;
    pt.map(100, 7, 0);
    pt.unmap(100);
    pt.map(100, 9, 0);
    EXPECT_EQ(pt.find(100)->pfn, 9u);
}

TEST(PageTableDeath, DoubleMapPanics)
{
    PageTable pt;
    pt.map(100, 7, 0);
    EXPECT_DEATH(pt.map(100, 8, 0), "double map");
}

TEST(PageTable, WalkSetsAccessedAndDirty)
{
    PageTable pt;
    pt.map(100, 7, kPteWrite);
    Pte *pte = pt.walkHardware(100, false);
    ASSERT_NE(pte, nullptr);
    EXPECT_TRUE(pte->accessed());
    EXPECT_FALSE(pte->dirty());
    pt.walkHardware(100, true);
    EXPECT_TRUE(pte->dirty());
}

TEST(PageTable, WalkDoesNotDirtyReadOnlyPages)
{
    PageTable pt;
    pt.map(100, 7, 0); // not writable
    Pte *pte = pt.walkHardware(100, true);
    ASSERT_NE(pte, nullptr);
    EXPECT_FALSE(pte->dirty());
}

TEST(PageTable, WalkSkipsAccessedOnProtNone)
{
    PageTable pt;
    pt.map(100, 7, kPteProtNone);
    Pte *pte = pt.walkHardware(100, false);
    ASSERT_NE(pte, nullptr);
    EXPECT_FALSE(pte->accessed());
}

TEST(PageTable, SetAndClearFlags)
{
    PageTable pt;
    pt.map(100, 7, 0);
    pt.setFlags(100, kPteProtNone | kPteCow);
    EXPECT_TRUE(pt.find(100)->protNone());
    EXPECT_TRUE(pt.find(100)->cow());
    pt.clearFlags(100, kPteProtNone);
    EXPECT_FALSE(pt.find(100)->protNone());
    EXPECT_TRUE(pt.find(100)->cow());
}

TEST(PageTable, SparseVpnsFarApart)
{
    PageTable pt;
    // Indices exercising different top-level slots.
    const std::vector<Vpn> vpns = {0, 511, 512, 1ULL << 18,
                                   1ULL << 27, (1ULL << 36) - 1};
    Pfn pfn = 100;
    for (Vpn v : vpns)
        pt.map(v, pfn++, 0);
    pfn = 100;
    for (Vpn v : vpns) {
        ASSERT_NE(pt.find(v), nullptr) << v;
        EXPECT_EQ(pt.find(v)->pfn, pfn++);
    }
    EXPECT_EQ(pt.presentPages(), vpns.size());
}

TEST(PageTableDeath, VpnBeyondReachPanics)
{
    PageTable pt;
    EXPECT_DEATH(pt.map(1ULL << 36, 1, 0), "beyond");
}

TEST(PageTable, ForEachPresentVisitsExactlyRange)
{
    PageTable pt;
    for (Vpn v = 10; v < 20; ++v)
        pt.map(v, v, 0);
    std::vector<Vpn> seen;
    pt.forEachPresent(12, 17, [&](Vpn v, Pte &) { seen.push_back(v); });
    EXPECT_EQ(seen, (std::vector<Vpn>{12, 13, 14, 15, 16, 17}));
}

TEST(PageTable, ForEachPresentSkipsHoles)
{
    PageTable pt;
    pt.map(10, 1, 0);
    pt.map(5000, 2, 0); // different leaf
    pt.map(300000, 3, 0); // different L2 subtree
    std::vector<Vpn> seen;
    pt.forEachPresent(0, 1ULL << 20,
                      [&](Vpn v, Pte &) { seen.push_back(v); });
    EXPECT_EQ(seen, (std::vector<Vpn>{10, 5000, 300000}));
}

TEST(PageTable, ForEachPresentCanModifyFlags)
{
    PageTable pt;
    for (Vpn v = 0; v < 5; ++v)
        pt.map(v, v, kPteWrite);
    pt.forEachPresent(0, 4, [](Vpn, Pte &pte) {
        pte.flags |= kPteProtNone;
    });
    for (Vpn v = 0; v < 5; ++v)
        EXPECT_TRUE(pt.find(v)->protNone());
}

TEST(PageTable, ForEachPresentEmptyTableIsQuiet)
{
    PageTable pt;
    int count = 0;
    pt.forEachPresent(0, 1ULL << 30, [&](Vpn, Pte &) { ++count; });
    EXPECT_EQ(count, 0);
}

TEST(PageTable, PresentPagesTracksBulkChurn)
{
    PageTable pt;
    for (Vpn v = 0; v < 1000; ++v)
        pt.map(v * 7, v, 0);
    EXPECT_EQ(pt.presentPages(), 1000u);
    for (Vpn v = 0; v < 500; ++v)
        pt.unmap(v * 7);
    EXPECT_EQ(pt.presentPages(), 500u);
}

} // namespace
} // namespace latr
