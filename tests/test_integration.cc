// End-to-end integration tests: full machines running mixed
// workloads, checking the cross-policy orderings the paper predicts
// and that the invariant holds everywhere.

#include <gtest/gtest.h>

#include "numa/autonuma.hh"
#include "numa/compaction.hh"
#include "numa/khugepaged.hh"
#include "test_helpers.hh"
#include "workload/microbench.hh"
#include "workload/numabench.hh"

namespace latr
{
namespace
{

TEST(Integration, MunmapLatencyOrderingAcrossPolicies)
{
    // Per the paper: LATR < {Barrelfish} < Linux for a shared-page
    // munmap (Barrelfish avoids interrupts but still waits; ABIS
    // avoids IPIs entirely here but pays the scan).
    MunmapMicrobenchConfig cfg;
    cfg.sharingCores = 8;
    cfg.pages = 1;
    cfg.iterations = 40;
    cfg.warmupIterations = 4;

    auto run = [&](PolicyKind kind) {
        Machine machine(test::tinyConfig(), kind);
        MunmapMicrobenchResult r = runMunmapMicrobench(machine, cfg);
        EXPECT_EQ(machine.checker()->violations(), 0u)
            << policyKindName(kind);
        return r.munmapMeanNs;
    };

    const double linux_ns = run(PolicyKind::LinuxSync);
    const double latr_ns = run(PolicyKind::Latr);
    const double bf_ns = run(PolicyKind::Barrelfish);

    EXPECT_LT(latr_ns, bf_ns);
    EXPECT_LT(bf_ns, linux_ns);
    // Figure 6's headline: LATR improves munmap by ~70%.
    EXPECT_LT(latr_ns, 0.55 * linux_ns);
}

TEST(Integration, LargeNumaMachineAmplifiesTheGap)
{
    // Figure 7: the 8-socket machine makes Linux shootdowns brutal
    // while LATR's cost stays flat.
    MunmapMicrobenchConfig cfg;
    cfg.sharingCores = 120;
    cfg.pages = 1;
    cfg.iterations = 15;
    cfg.warmupIterations = 2;

    Machine linux_machine(MachineConfig::largeNuma8S120C(),
                          PolicyKind::LinuxSync);
    MunmapMicrobenchResult linux_r =
        runMunmapMicrobench(linux_machine, cfg);

    Machine latr_machine(MachineConfig::largeNuma8S120C(),
                         PolicyKind::Latr);
    MunmapMicrobenchResult latr_r =
        runMunmapMicrobench(latr_machine, cfg);

    // Linux blows past 60 us; LATR stays in the tens.
    EXPECT_GT(linux_r.munmapMeanNs, 60000.0);
    EXPECT_LT(latr_r.munmapMeanNs, 0.5 * linux_r.munmapMeanNs);
}

TEST(Integration, TicklessConfigStillReclaims)
{
    MachineConfig cfg = test::tinyConfig();
    cfg.ticklessIdle = true;
    Machine machine(cfg, PolicyKind::Latr);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("app");
    Task *t0 = kernel.spawnTask(p, 0);
    Task *t1 = kernel.spawnTask(p, 1);
    machine.run(kUsec);

    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t1, m.addr, kPageSize);
    kernel.munmap(t0, m.addr, kPageSize);
    // Core 1 then goes idle before its tick — the context-switch
    // sweep on task removal must clear its CPU bit anyway.
    kernel.exitTask(t1);
    machine.run(6 * kMsec);
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST(Integration, ConcurrentMunmapsFromManyCores)
{
    Machine machine(test::tinyConfig(), PolicyKind::Latr);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("app");
    std::vector<Task *> tasks;
    for (CoreId c = 0; c < machine.topo().totalCores(); ++c)
        tasks.push_back(kernel.spawnTask(p, c));
    machine.run(kUsec);

    // Every core maps, shares, and unmaps its own region, repeatedly
    // and interleaved.
    for (int round = 0; round < 6; ++round) {
        std::vector<Addr> addrs;
        for (Task *t : tasks) {
            SyscallResult m = kernel.mmap(t, 2 * kPageSize,
                                          kProtRead | kProtWrite);
            ASSERT_TRUE(m.ok);
            addrs.push_back(m.addr);
            test::touchRange(kernel, t, m.addr, 2 * kPageSize);
            // A neighbor shares it.
            Task *peer = tasks[(t->core() + 1) % tasks.size()];
            test::touchRange(kernel, peer, m.addr, 2 * kPageSize,
                             false);
        }
        for (std::size_t i = 0; i < tasks.size(); ++i)
            kernel.munmap(tasks[i], addrs[i], 2 * kPageSize);
        machine.run(500 * kUsec);
    }
    machine.run(8 * kMsec);
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(machine.checker()->violations(), 0u);
    EXPECT_EQ(machine.stats().counterValue("latr.fallback_ipis"), 0u);
}

TEST(Integration, AutoNumaEndToEndUnderLatr)
{
    NumaBenchProfile profile = numaBenchSuite()[0]; // fluidanimate
    profile.arrayPages = 512;
    profile.itersPerCore = 60;
    profile.scanInterval = 2 * kMsec;
    profile.pagesPerScan = 64;

    Machine machine(test::tinyConfig(), PolicyKind::Latr);
    NumaBenchResult r = runNumaBench(machine, profile, 8);
    EXPECT_GT(r.runtimeNs, 0u);
    EXPECT_GT(r.samples, 0u);
    machine.run(8 * kMsec);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST(Integration, CompactionEnablesHugePromotion)
{
    // The paper's section 7 story end to end: fragmentation defeats
    // a huge-page collapse; compaction repairs the fragmentation;
    // the collapse then succeeds.
    MachineConfig cfg = test::tinyConfig();
    cfg.framesPerNode = 2048;
    Machine machine(cfg, PolicyKind::Latr);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("app");
    Task *t0 = kernel.spawnTask(p, 0);
    machine.run(kUsec);

    // Fragment node 0: fault the whole node (frames hand out in
    // ascending order), then free everything except one pinned page
    // inside each 512-frame aligned run.
    SyscallResult burn =
        kernel.mmap(t0, 2000 * kPageSize, kProtRead | kProtWrite);
    test::touchRange(kernel, t0, burn.addr, 2000 * kPageSize);
    const std::uint64_t pins[] = {100, 612, 1124, 1636};
    std::uint64_t cursor = 0;
    for (std::uint64_t pin : pins) {
        kernel.madvise(t0, burn.addr + cursor * kPageSize,
                       (pin - cursor) * kPageSize);
        cursor = pin + 1;
    }
    kernel.madvise(t0, burn.addr + cursor * kPageSize,
                   (2000 - cursor) * kPageSize);
    machine.run(8 * kMsec);
    ASSERT_EQ(machine.frames().allocHuge(0), kPfnInvalid);

    // A fully faulted aligned region cannot collapse yet.
    SyscallResult m =
        kernel.mmap(t0, 3 * kHugePageSize, kProtRead | kProtWrite);
    Addr region =
        (m.addr + kHugePageSize - 1) & ~(kHugePageSize - 1);
    for (std::uint64_t pg = 0; pg < kHugePageSpan; ++pg)
        kernel.touch(t0, region + pg * kPageSize, true);

    Khugepaged thp(kernel, 3 * kMsec, 2);
    thp.track(p);
    thp.start();
    machine.run(7 * kMsec);
    EXPECT_EQ(thp.stats().promotions, 0u); // no contiguous run free

    // Compaction packs the stragglers low, opening a high run.
    CompactionDaemon compactor(kernel, 0, 3 * kMsec, 64);
    compactor.track(p);
    compactor.start();
    machine.run(60 * kMsec);
    compactor.stop();

    machine.run(20 * kMsec); // khugepaged keeps scanning
    thp.stop();
    EXPECT_GE(thp.stats().promotions, 1u);
    EXPECT_NE(p->mm().pageTable().findHuge(pageOf(region)), nullptr);
    machine.run(8 * kMsec);
    EXPECT_EQ(machine.checker()->violations(), 0u)
        << machine.checker()->firstViolation();
}

TEST(Integration, SweepAtSwitchDisabledStillReclaimsViaTicks)
{
    MachineConfig cfg = test::tinyConfig();
    cfg.latrSweepAtContextSwitch = false;
    Machine machine(cfg, PolicyKind::Latr);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("app");
    Task *t0 = kernel.spawnTask(p, 0);
    Task *t1 = kernel.spawnTask(p, 1);
    machine.run(kUsec);

    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t1, m.addr, kPageSize);
    kernel.munmap(t0, m.addr, kPageSize);
    // A context switch on core 1 does NOT sweep in this mode...
    machine.scheduler().contextSwitch(1);
    EXPECT_TRUE(machine.scheduler().tlbOf(1).probe(pageOf(m.addr), 0));
    // ...but the tick still does, and reclamation completes.
    machine.run(6 * kMsec);
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST(Integration, TimeOnlyReclaimSafeAtPaperDelay)
{
    // The paper's pure time-bound reclamation with the paper's 2 ms
    // delay: never unsafe (the ablation bench shows 0.5 ms IS).
    MachineConfig cfg = test::tinyConfig();
    cfg.latrTimeOnlyReclaim = true;
    Machine machine(cfg, PolicyKind::Latr);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("app");
    Task *t0 = kernel.spawnTask(p, 0);
    Task *t1 = kernel.spawnTask(p, 1);
    machine.run(kUsec);
    for (int i = 0; i < 30; ++i) {
        SyscallResult m = kernel.mmap(t0, kPageSize,
                                      kProtRead | kProtWrite);
        test::touchRange(kernel, t1, m.addr, kPageSize);
        kernel.munmap(t0, m.addr, kPageSize);
        machine.run(80 * kUsec);
    }
    machine.run(8 * kMsec);
    EXPECT_EQ(machine.frames().allocatedFrames(), 0u);
    EXPECT_EQ(machine.checker()->violations(), 0u);
}

TEST(Integration, TimeOnlyReclaimUnsafeBelowTwoTicks)
{
    // And with half a tick it demonstrably breaks — the empirical
    // core of the paper's two-tick-period argument.
    MachineConfig cfg = test::tinyConfig();
    cfg.latrTimeOnlyReclaim = true;
    cfg.cost.latrReclaimDelay = kMsec / 2;
    Machine machine(cfg, PolicyKind::Latr);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("app");
    Task *t0 = kernel.spawnTask(p, 0);
    std::vector<Task *> sharers;
    for (CoreId c = 1; c < machine.topo().totalCores(); ++c)
        sharers.push_back(kernel.spawnTask(p, c));
    machine.run(kUsec);
    for (int i = 0; i < 40; ++i) {
        SyscallResult m = kernel.mmap(t0, kPageSize,
                                      kProtRead | kProtWrite);
        for (Task *t : sharers)
            kernel.touch(t, m.addr, false);
        kernel.munmap(t0, m.addr, kPageSize);
        machine.run(60 * kUsec);
    }
    machine.run(8 * kMsec);
    EXPECT_GT(machine.checker()->violations(), 0u);
}

TEST(Integration, StatsDumpIsComprehensive)
{
    Machine machine(test::tinyConfig(), PolicyKind::Latr);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("app");
    Task *t0 = kernel.spawnTask(p, 0);
    Task *t1 = kernel.spawnTask(p, 1);
    SyscallResult m = kernel.mmap(t0, kPageSize,
                                  kProtRead | kProtWrite);
    test::touchRange(kernel, t1, m.addr, kPageSize);
    kernel.munmap(t0, m.addr, kPageSize);
    machine.run(6 * kMsec);
    std::string dump = machine.stats().dump();
    EXPECT_NE(dump.find("latr.states_saved"), std::string::npos);
    EXPECT_NE(dump.find("latr.sweeps"), std::string::npos);
    EXPECT_NE(dump.find("latr.reclaimed_pages"), std::string::npos);
    EXPECT_NE(dump.find("sys.munmap"), std::string::npos);
}

} // namespace
} // namespace latr
