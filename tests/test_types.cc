// Unit tests for fundamental types: page math and CpuMask.

#include <gtest/gtest.h>

#include "sim/types.hh"

namespace latr
{
namespace
{

TEST(PageMath, PageOfAndAddrOfRoundTrip)
{
    EXPECT_EQ(pageOf(0), 0u);
    EXPECT_EQ(pageOf(kPageSize - 1), 0u);
    EXPECT_EQ(pageOf(kPageSize), 1u);
    EXPECT_EQ(addrOf(5), 5 * kPageSize);
    EXPECT_EQ(pageOf(addrOf(1234)), 1234u);
}

TEST(PageMath, Alignment)
{
    EXPECT_EQ(pageAlignDown(0x1234), 0x1000u);
    EXPECT_EQ(pageAlignUp(0x1234), 0x2000u);
    EXPECT_EQ(pageAlignUp(0x1000), 0x1000u);
    EXPECT_EQ(pageAlignDown(0x1000), 0x1000u);
}

TEST(PageMath, PagesSpanned)
{
    EXPECT_EQ(pagesSpanned(0, 0), 0u);
    EXPECT_EQ(pagesSpanned(0, 1), 1u);
    EXPECT_EQ(pagesSpanned(0, kPageSize), 1u);
    EXPECT_EQ(pagesSpanned(0, kPageSize + 1), 2u);
    // An unaligned single byte crossing nothing still spans 1 page.
    EXPECT_EQ(pagesSpanned(kPageSize - 1, 1), 1u);
    // One byte on each side of a boundary spans 2 pages.
    EXPECT_EQ(pagesSpanned(kPageSize - 1, 2), 2u);
    EXPECT_EQ(pagesSpanned(0x1800, 0x1000), 2u);
}

TEST(CpuMask, StartsEmpty)
{
    CpuMask m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.count(), 0u);
}

TEST(CpuMask, SetClearTest)
{
    CpuMask m;
    m.set(5);
    m.set(77); // second word
    EXPECT_TRUE(m.test(5));
    EXPECT_TRUE(m.test(77));
    EXPECT_FALSE(m.test(6));
    EXPECT_EQ(m.count(), 2u);
    m.clear(5);
    EXPECT_FALSE(m.test(5));
    EXPECT_EQ(m.count(), 1u);
}

TEST(CpuMask, SingleAndFirstN)
{
    CpuMask s = CpuMask::single(42);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_TRUE(s.test(42));

    CpuMask f = CpuMask::firstN(70);
    EXPECT_EQ(f.count(), 70u);
    EXPECT_TRUE(f.test(0));
    EXPECT_TRUE(f.test(69));
    EXPECT_FALSE(f.test(70));
}

TEST(CpuMask, OrAndAndWith)
{
    CpuMask a = CpuMask::firstN(4);   // 0..3
    CpuMask b;
    b.set(2);
    b.set(5);
    CpuMask o = a;
    o.orWith(b);
    EXPECT_EQ(o.count(), 5u);
    CpuMask n = a;
    n.andWith(b);
    EXPECT_EQ(n.count(), 1u);
    EXPECT_TRUE(n.test(2));
}

TEST(CpuMask, ForEachVisitsAscending)
{
    CpuMask m;
    m.set(3);
    m.set(64);
    m.set(127);
    std::vector<CoreId> seen;
    m.forEach([&](CoreId c) { seen.push_back(c); });
    EXPECT_EQ(seen, (std::vector<CoreId>{3, 64, 127}));
}

TEST(CpuMask, ResetAndEquality)
{
    CpuMask a = CpuMask::firstN(10);
    CpuMask b = CpuMask::firstN(10);
    EXPECT_TRUE(a == b);
    a.reset();
    EXPECT_TRUE(a.empty());
    EXPECT_FALSE(a == b);
}

TEST(CpuMask, ForEachWordSkipsEmptyWords)
{
    CpuMask m;
    unsigned calls = 0;
    m.forEachWord([&](unsigned, std::uint64_t) { ++calls; });
    EXPECT_EQ(calls, 0u);

    m.set(5);
    m.forEachWord([&](unsigned word, std::uint64_t bits) {
        EXPECT_EQ(word, 0u);
        EXPECT_EQ(bits, 1ULL << 5);
        ++calls;
    });
    EXPECT_EQ(calls, 1u);

    m.reset();
    m.set(100);
    calls = 0;
    m.forEachWord([&](unsigned word, std::uint64_t bits) {
        EXPECT_EQ(word, 1u);
        EXPECT_EQ(bits, 1ULL << 36);
        ++calls;
    });
    EXPECT_EQ(calls, 1u);
}

TEST(CpuMask, ForEachWordAtWordBoundaryCores)
{
    // The cores that straddle the 64-bit word boundary on a 120-core
    // machine: word/bit decomposition must match word * 64 + bit.
    for (CoreId core : {0u, 63u, 64u, 119u, 127u}) {
        CpuMask m;
        m.set(core);
        unsigned visited = 0;
        m.forEachWord([&](unsigned word, std::uint64_t bits) {
            EXPECT_EQ(word, core / 64);
            EXPECT_EQ(bits, 1ULL << (core % 64));
            ++visited;
        });
        EXPECT_EQ(visited, 1u);
    }
}

TEST(CpuMask, ForEachWordOnPredictedMaskShapes)
{
    // The shapes the predicted-IPI fan-out hands to forEachWord: the
    // empty prediction (forced by --inject=mispredict-sharers), the
    // full mask (cold predictor), and a seam mask {63, 64, 119}
    // straddling the two words on the 120-core machine.
    CpuMask empty;
    unsigned calls = 0;
    empty.forEachWord([&](unsigned, std::uint64_t) { ++calls; });
    EXPECT_EQ(calls, 0u);

    const CpuMask full = CpuMask::firstN(CpuMask::kMaxCores);
    std::uint64_t fullWords[2] = {0, 0};
    full.forEachWord([&](unsigned word, std::uint64_t bits) {
        ASSERT_LT(word, 2u);
        fullWords[word] = bits;
    });
    EXPECT_EQ(fullWords[0], ~0ULL);
    EXPECT_EQ(fullWords[1], ~0ULL);

    CpuMask seam;
    seam.set(63);
    seam.set(64);
    seam.set(119);
    std::uint64_t words[2] = {0, 0};
    calls = 0;
    seam.forEachWord([&](unsigned word, std::uint64_t bits) {
        ASSERT_LT(word, 2u);
        words[word] = bits;
        ++calls;
    });
    EXPECT_EQ(calls, 2u);
    EXPECT_EQ(words[0], 1ULL << 63);
    EXPECT_EQ(words[1], (1ULL << 0) | (1ULL << 55));
    EXPECT_EQ(seam.count(), 3u);
}

class CpuMaskWidthTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CpuMaskWidthTest, CountMatchesSetBitsAtEveryWidth)
{
    const unsigned n = GetParam();
    CpuMask m = CpuMask::firstN(n);
    EXPECT_EQ(m.count(), n);
    unsigned visited = 0;
    m.forEach([&](CoreId c) {
        EXPECT_LT(c, n);
        ++visited;
    });
    EXPECT_EQ(visited, n);
}

TEST_P(CpuMaskWidthTest, ForEachWordReassemblesFirstN)
{
    const unsigned n = GetParam();
    const CpuMask m = CpuMask::firstN(n);
    CpuMask rebuilt;
    m.forEachWord([&](unsigned word, std::uint64_t bits) {
        EXPECT_NE(bits, 0u);
        while (bits) {
            const unsigned bit = static_cast<unsigned>(
                __builtin_ctzll(bits));
            bits &= bits - 1;
            rebuilt.set(static_cast<CoreId>(word * 64 + bit));
        }
    });
    EXPECT_TRUE(rebuilt == m);
}

INSTANTIATE_TEST_SUITE_P(Widths, CpuMaskWidthTest,
                         ::testing::Values(0u, 1u, 63u, 64u, 65u, 120u,
                                           127u, 128u));

} // namespace
} // namespace latr
