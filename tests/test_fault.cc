// Unit tests for the memory-touch / page-fault path.

#include <gtest/gtest.h>

#include "vm/fault.hh"

namespace latr
{
namespace
{

struct FaultFixture : public ::testing::Test
{
    FaultFixture()
        : frames(2, 256), mm(1, 0, frames), tlb(0, 8, 16)
    {
        base = mm.mmapRegion(16 * kPageSize, kProtRead | kProtWrite);
        ro = mm.mmapRegion(2 * kPageSize, kProtRead);
    }

    TouchResult
    touch(Addr addr, bool write, CoreId core = 0, NodeId node = 0)
    {
        return touchPage(core, node, mm, tlb, cost, addr, write,
                         hooks);
    }

    FrameAllocator frames;
    AddressSpace mm;
    Tlb tlb;
    CostModel cost;
    TouchHooks hooks;
    Addr base = 0;
    Addr ro = 0;
};

TEST_F(FaultFixture, FirstTouchDemandFaults)
{
    TouchResult r = touch(base, true);
    EXPECT_EQ(r.kind, TouchKind::MinorFault);
    EXPECT_NE(r.pfn, kPfnInvalid);
    EXPECT_GE(r.latency, cost.minorFault);
    EXPECT_EQ(mm.pageTable().presentPages(), 1u);
    EXPECT_EQ(frames.allocatedFrames(), 1u);
}

TEST_F(FaultFixture, SecondTouchHitsTlb)
{
    touch(base, true);
    TouchResult r = touch(base, false);
    EXPECT_EQ(r.kind, TouchKind::TlbHit);
    EXPECT_EQ(r.latency, cost.memAccess);
}

TEST_F(FaultFixture, DemandAllocationLandsOnTouchingNode)
{
    TouchResult r = touch(base, true, /*core=*/0, /*node=*/1);
    EXPECT_EQ(frames.nodeOf(r.pfn), 1u);
}

TEST_F(FaultFixture, WalkHitAfterTlbInvalidation)
{
    TouchResult first = touch(base, true);
    tlb.invalidatePage(pageOf(base), 0);
    TouchResult r = touch(base, false);
    EXPECT_EQ(r.kind, TouchKind::WalkHit);
    EXPECT_EQ(r.pfn, first.pfn);
    // And the entry is cached again.
    EXPECT_EQ(touch(base, false).kind, TouchKind::TlbHit);
}

TEST_F(FaultFixture, L2HitReported)
{
    // Fill past the 8-entry L1 so early entries spill into L2.
    for (unsigned p = 0; p < 12; ++p)
        touch(base + p * kPageSize, true);
    bool saw_l2 = false;
    for (unsigned p = 0; p < 12; ++p) {
        TouchResult r = touch(base + p * kPageSize, false);
        saw_l2 |= r.kind == TouchKind::TlbL2Hit;
    }
    EXPECT_TRUE(saw_l2);
}

TEST_F(FaultFixture, UnmappedAddressSegfaults)
{
    TouchResult r = touch(0x100, false);
    EXPECT_EQ(r.kind, TouchKind::SegFault);
    EXPECT_TRUE(r.faulted());
}

TEST_F(FaultFixture, WriteToReadOnlyVmaSegfaults)
{
    EXPECT_EQ(touch(ro, false).kind, TouchKind::MinorFault);
    EXPECT_EQ(touch(ro, true).kind, TouchKind::SegFault);
}

TEST_F(FaultFixture, StaleTlbEntryStillServesAccesses)
{
    // The section 4.4 race window: after the OS unmaps a page but
    // before this core's TLB entry dies, touches keep hitting the
    // old frame.
    TouchResult first = touch(base, true);
    mm.munmapRegion(base, kPageSize); // PTE gone; TLB entry remains
    TouchResult r = touch(base, true);
    EXPECT_EQ(r.kind, TouchKind::TlbHit);
    EXPECT_EQ(r.pfn, first.pfn);
    // Once the entry is swept, the same touch faults.
    tlb.invalidatePage(pageOf(base), 0);
    EXPECT_EQ(touch(base, true).kind, TouchKind::SegFault);
}

TEST_F(FaultFixture, MadvisedPageRefaultsFresh)
{
    TouchResult first = touch(base, true);
    mm.madviseRegion(base, kPageSize);
    tlb.invalidatePage(pageOf(base), 0);
    TouchResult r = touch(base, true);
    EXPECT_EQ(r.kind, TouchKind::MinorFault); // VMA survived
    EXPECT_NE(r.pfn, kPfnInvalid);
    EXPECT_NE(r.pfn, first.pfn); // old frame still unreclaimed
}

TEST_F(FaultFixture, MinorFaultHookChargesExtra)
{
    hooks.onMinorFault = [](Vpn) { return Duration(12345); };
    TouchResult r = touch(base, true);
    EXPECT_GE(r.latency, 12345u);
}

TEST_F(FaultFixture, NumaHintFaultInvokesHookAndRetries)
{
    touch(base, true);
    tlb.invalidatePage(pageOf(base), 0);
    mm.pageTable().setFlags(pageOf(base), kPteProtNone);

    int hook_calls = 0;
    hooks.onNumaHintFault = [&](Vpn vpn, CoreId) -> Duration {
        ++hook_calls;
        mm.pageTable().clearFlags(vpn, kPteProtNone);
        return 777;
    };
    TouchResult r = touch(base, false);
    EXPECT_EQ(r.kind, TouchKind::NumaFault);
    EXPECT_EQ(hook_calls, 1);
    EXPECT_GE(r.latency, cost.minorFault + 777);
    // Resolved: next touch hits the TLB.
    EXPECT_EQ(touch(base, false).kind, TouchKind::TlbHit);
}

TEST_F(FaultFixture, NumaHintFaultUnresolvedDoesNotInsertTlb)
{
    touch(base, true);
    tlb.invalidatePage(pageOf(base), 0);
    mm.pageTable().setFlags(pageOf(base), kPteProtNone);
    hooks.onNumaHintFault = [](Vpn, CoreId) -> Duration {
        return 0; // declines to resolve
    };
    TouchResult r = touch(base, false);
    EXPECT_EQ(r.kind, TouchKind::NumaFault);
    EXPECT_FALSE(tlb.probe(pageOf(base), 0));
}

TEST_F(FaultFixture, CowWriteInvokesHook)
{
    touch(base, true);
    tlb.invalidatePage(pageOf(base), 0);
    mm.markCowRegion(base, kPageSize);

    hooks.onCowWrite = [&](Vpn vpn, CoreId) -> Duration {
        Pte *pte = mm.pageTable().find(vpn);
        pte->flags |= kPteWrite;
        pte->flags &= static_cast<std::uint8_t>(~kPteCow);
        return 999;
    };
    TouchResult r = touch(base, true);
    EXPECT_EQ(r.kind, TouchKind::CowBreak);
    EXPECT_GE(r.latency, 999u);
    EXPECT_EQ(touch(base, true).kind, TouchKind::TlbHit);
}

TEST_F(FaultFixture, CowReadDoesNotBreak)
{
    touch(base, true);
    tlb.invalidatePage(pageOf(base), 0);
    mm.markCowRegion(base, kPageSize);
    bool hook_ran = false;
    hooks.onCowWrite = [&](Vpn, CoreId) -> Duration {
        hook_ran = true;
        return 0;
    };
    TouchResult r = touch(base, false);
    EXPECT_EQ(r.kind, TouchKind::WalkHit);
    EXPECT_FALSE(hook_ran);
}

TEST_F(FaultFixture, ResidencyAndSharersRecorded)
{
    touch(base, true, /*core=*/0);
    EXPECT_TRUE(mm.residencyMask().test(0));
    EXPECT_TRUE(mm.sharersOf(pageOf(base)).test(0));
}

} // namespace
} // namespace latr
