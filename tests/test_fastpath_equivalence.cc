/**
 * @file
 * The fast engine paths (tick wheel, sweep-elision mask — everything
 * MachineConfig::noFastpath turns off) must be invisible to the
 * simulation: same digests, same oracle verdicts, same counters that
 * the naive paths produce. These tests replay generated scripts on
 * the 120-core topology — where every CpuMask word boundary and
 * wheel slot is exercised — once per engine mode and diff the runs.
 */

#include <gtest/gtest.h>

#include <string>

#include "check/executor.hh"
#include "check/script.hh"
#include "machine/machine.hh"
#include "os/kernel.hh"
#include "tlbcoh/latr_policy.hh"

namespace latr
{
namespace
{

Script
largeScript(std::uint64_t seed, bool pcid)
{
    GenOptions gen;
    gen.numOps = 150;
    gen.large = true;
    gen.pcid = pcid;
    return generateScript(seed, gen);
}

/**
 * A dozen seeds x 4 policies on the 8-socket/120-core machine: the
 * naive and fast engines must agree on every architectural digest
 * and every oracle verdict.
 */
TEST(FastpathEquivalence, LargeMachineDigestsMatchNaive)
{
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        const Script script = largeScript(seed, (seed & 1) != 0);
        for (PolicyKind kind : allPolicyKinds()) {
            ExecOptions fast;
            ExecOptions naive;
            naive.noFastpath = true;
            const RunResult a = runScript(script, kind, fast);
            const RunResult b = runScript(script, kind, naive);

            const DiffResult diff = diffStates(a, b);
            EXPECT_TRUE(diff.equivalent)
                << "seed " << seed << " policy "
                << policyKindName(kind) << ": " << diff.divergence;
            EXPECT_EQ(a.invariantViolations, b.invariantViolations)
                << "seed " << seed << " policy "
                << policyKindName(kind);
            EXPECT_EQ(a.stalenessViolations, b.stalenessViolations)
                << "seed " << seed << " policy "
                << policyKindName(kind);
            EXPECT_EQ(a.latrFallbackIpis, b.latrFallbackIpis)
                << "seed " << seed << " policy "
                << policyKindName(kind);
        }
    }
}

/** The small commodity topology must agree too. */
TEST(FastpathEquivalence, SmallMachineDigestsMatchNaive)
{
    for (std::uint64_t seed = 100; seed < 110; ++seed) {
        GenOptions gen;
        gen.numOps = 200;
        gen.pcid = (seed & 1) != 0;
        const Script script = generateScript(seed, gen);
        for (PolicyKind kind : allPolicyKinds()) {
            ExecOptions fast;
            ExecOptions naive;
            naive.noFastpath = true;
            const RunResult a = runScript(script, kind, fast);
            const RunResult b = runScript(script, kind, naive);
            const DiffResult diff = diffStates(a, b);
            EXPECT_TRUE(diff.equivalent)
                << "seed " << seed << " policy "
                << policyKindName(kind) << ": " << diff.divergence;
        }
    }
}

/**
 * White-box: elided sweeps must charge and count exactly like naive
 * matchless sweeps, so latr.sweeps and stolen time agree between the
 * engine modes on a machine where most sweeps match nothing.
 */
TEST(FastpathEquivalence, ElidedSweepsCountLikeNaiveSweeps)
{
    std::uint64_t sweeps[2];
    std::uint64_t stolen[2];
    for (int mode = 0; mode < 2; ++mode) {
        MachineConfig config = MachineConfig::largeNuma8S120C();
        config.noFastpath = mode == 1;
        Machine machine(config, PolicyKind::Latr);
        Kernel &kernel = machine.kernel();
        Process *proc = kernel.createProcess("pub");
        Task *pub = kernel.spawnTask(proc, 0);
        // Tasks on every core so every core ticks and sweeps.
        Process *fill = kernel.createProcess("fill");
        for (CoreId c = 1; c < machine.topo().totalCores(); ++c)
            kernel.spawnTask(fill, c);
        SyscallResult m =
            kernel.mmap(pub, 8 * kPageSize, kProtRead | kProtWrite);
        ASSERT_TRUE(m.ok);
        for (std::uint64_t pg = 0; pg < 8; ++pg)
            kernel.touch(pub, m.addr + pg * kPageSize, true);
        for (unsigned iter = 0; iter < 20; ++iter) {
            kernel.numaSample(pub, m.addr / kPageSize + iter % 8);
            machine.run(500 * kUsec);
        }
        sweeps[mode] = machine.stats().counterValue("latr.sweeps");
        stolen[mode] = 0;
        for (CoreId c = 0; c < machine.topo().totalCores(); ++c)
            stolen[mode] += static_cast<std::uint64_t>(
                kernel.scheduler().takeStolen(c));
        EXPECT_GT(sweeps[mode], 1000u); // 119 cores tick 10+ times
    }
    EXPECT_EQ(sweeps[0], sweeps[1]);
    EXPECT_EQ(stolen[0], stolen[1]);
}

/**
 * White-box: the elision mask is a sound over-approximation — after
 * a full quiesce every active state's mask must be covered by
 * pendingSweepers_, and a fresh publication sets the bits.
 */
TEST(FastpathEquivalence, PendingSweepersCoversActiveMasks)
{
    MachineConfig config = MachineConfig::commodity2S16C();
    Machine machine(config, PolicyKind::Latr);
    Kernel &kernel = machine.kernel();
    auto *latr = dynamic_cast<LatrPolicy *>(&machine.policy());
    ASSERT_NE(latr, nullptr);

    Process *proc = kernel.createProcess("p");
    Task *a = kernel.spawnTask(proc, 0);
    Task *b = kernel.spawnTask(proc, 5);
    SyscallResult m =
        kernel.mmap(a, 4 * kPageSize, kProtRead | kProtWrite);
    ASSERT_TRUE(m.ok);
    kernel.touch(a, m.addr, true);
    kernel.touch(b, m.addr, true);
    kernel.munmap(a, m.addr, 4 * kPageSize);
    // The publication addressed core 5 (resident remote): its bit
    // must be pending until core 5 sweeps.
    EXPECT_TRUE(latr->pendingSweepers().test(5));
    machine.run(5 * kMsec);
    // After every core swept and the state deactivated, nothing is
    // pending for core 5 anymore and the invariant holds vacuously.
    EXPECT_FALSE(latr->pendingSweepers().test(5));
}

} // namespace
} // namespace latr
