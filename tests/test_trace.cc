// Unit tests for the trace subsystem: the recorder's ring-buffer and
// span semantics, the Chrome-trace sink's JSON well-formedness, the
// text sink's rendering, and end-to-end traces of instrumented
// machines (the shootdown lifecycle names the sinks must carry).

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "sim/event_queue.hh"
#include "trace/chrome_trace.hh"
#include "trace/text_dump.hh"
#include "trace/trace.hh"

namespace latr
{
namespace
{

/**
 * A minimal recursive-descent JSON syntax checker — enough to assert
 * the Chrome sink's output is well-formed (balanced, quoted, comma
 * separated) without a JSON library dependency.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text)
        : p_(text.c_str()), end_(text.c_str() + text.size())
    {
    }

    bool valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return p_ == end_;
    }

  private:
    void skipWs()
    {
        while (p_ != end_ &&
               std::isspace(static_cast<unsigned char>(*p_)))
            ++p_;
    }

    bool literal(const char *s)
    {
        const std::size_t n = std::strlen(s);
        if (static_cast<std::size_t>(end_ - p_) < n ||
            std::strncmp(p_, s, n) != 0)
            return false;
        p_ += n;
        return true;
    }

    bool string()
    {
        if (p_ == end_ || *p_ != '"')
            return false;
        ++p_;
        while (p_ != end_ && *p_ != '"') {
            if (*p_ == '\\') {
                ++p_;
                if (p_ == end_)
                    return false;
            }
            ++p_;
        }
        if (p_ == end_)
            return false;
        ++p_; // closing quote
        return true;
    }

    bool number()
    {
        const char *start = p_;
        if (p_ != end_ && (*p_ == '-' || *p_ == '+'))
            ++p_;
        bool digits = false;
        while (p_ != end_ &&
               (std::isdigit(static_cast<unsigned char>(*p_)) ||
                *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                *p_ == '-' || *p_ == '+')) {
            digits |= std::isdigit(static_cast<unsigned char>(*p_));
            ++p_;
        }
        return digits && p_ != start;
    }

    bool members(char close, bool with_keys)
    {
        ++p_; // opening bracket
        skipWs();
        if (p_ != end_ && *p_ == close) {
            ++p_;
            return true;
        }
        while (true) {
            skipWs();
            if (with_keys) {
                if (!string())
                    return false;
                skipWs();
                if (p_ == end_ || *p_ != ':')
                    return false;
                ++p_;
                skipWs();
            }
            if (!value())
                return false;
            skipWs();
            if (p_ == end_)
                return false;
            if (*p_ == close) {
                ++p_;
                return true;
            }
            if (*p_ != ',')
                return false;
            ++p_;
        }
    }

    bool value()
    {
        if (p_ == end_)
            return false;
        switch (*p_) {
          case '{':
            return members('}', true);
          case '[':
            return members(']', false);
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    const char *p_;
    const char *end_;
};

TEST(JsonChecker, SanityOnKnownInputs)
{
    EXPECT_TRUE(JsonChecker("{\"a\":[1,2.5,\"x\"],\"b\":null}").valid());
    EXPECT_TRUE(JsonChecker("[]").valid());
    EXPECT_FALSE(JsonChecker("{\"a\":1,}").valid());
    EXPECT_FALSE(JsonChecker("{\"a\":1").valid());
    EXPECT_FALSE(JsonChecker("{\"a\" 1}").valid());
}

TEST(TraceRecorder, DisabledByDefaultAndRecordsNothing)
{
    TraceRecorder trace;
    EXPECT_FALSE(trace.enabled());
    EXPECT_EQ(trace.beginSpan("c", "n", 10), kSpanNone);
    trace.endSpan(kSpanNone, 20);
    trace.instant("c", "n", 30);
    trace.counter("c", "n", 40, 1.0);
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_EQ(trace.totalRecorded(), 0u);
    EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TraceRecorder, RingWrapsAndCountsDrops)
{
    TraceRecorder trace(8);
    trace.setEnabled(true);
    for (std::uint64_t i = 0; i < 20; ++i)
        trace.instant("c", "n", i, kTraceNoCore, kTraceNoMm, i);
    EXPECT_EQ(trace.capacity(), 8u);
    EXPECT_EQ(trace.size(), 8u);
    EXPECT_EQ(trace.totalRecorded(), 20u);
    EXPECT_EQ(trace.dropped(), 12u);

    // Snapshot holds the newest 8 records, oldest first.
    std::vector<TraceRecord> records = trace.snapshot();
    ASSERT_EQ(records.size(), 8u);
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(records[i].arg, 12 + i);
}

TEST(TraceRecorder, SpanNestingAndAttribution)
{
    TraceRecorder trace;
    trace.setEnabled(true);
    const SpanId outer = trace.beginSpan("coh", "outer", 100, 3, 7, 42);
    const SpanId inner = trace.beginSpan("coh", "inner", 110, 3, 7, 1);
    EXPECT_NE(outer, kSpanNone);
    EXPECT_NE(inner, kSpanNone);
    EXPECT_NE(outer, inner);
    trace.endSpan(inner, 120);
    trace.endSpan(outer, 150);

    std::vector<TraceRecord> records = trace.snapshot();
    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(records[0].kind, TraceKind::SpanBegin);
    EXPECT_EQ(records[0].id, outer);
    EXPECT_EQ(records[0].core, 3u);
    EXPECT_EQ(records[0].mm, 7u);
    EXPECT_EQ(records[0].arg, 42u);
    EXPECT_STREQ(records[0].name, "outer");
    EXPECT_EQ(records[2].kind, TraceKind::SpanEnd);
    EXPECT_EQ(records[2].id, inner);
    EXPECT_EQ(records[3].id, outer);
    EXPECT_EQ(records[3].at, 150u);
}

TEST(TraceRecorder, TogglingKeepsExistingRecords)
{
    TraceRecorder trace;
    trace.setEnabled(true);
    trace.instant("c", "kept", 1);
    trace.setEnabled(false);
    trace.instant("c", "ignored", 2);
    trace.setEnabled(true);
    trace.instant("c", "also-kept", 3);
    EXPECT_EQ(trace.size(), 2u);
}

TEST(TraceRecorder, SetCapacityDropsContent)
{
    TraceRecorder trace(8);
    trace.setEnabled(true);
    trace.instant("c", "n", 1);
    trace.setCapacity(4);
    EXPECT_EQ(trace.capacity(), 4u);
    EXPECT_EQ(trace.size(), 0u);
}

TEST(TraceRecorder, InternDeduplicates)
{
    TraceRecorder trace;
    const char *a = trace.intern("core 2: munmap()");
    const char *b = trace.intern("core 2: munmap()");
    const char *c = trace.intern("something else");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_STREQ(a, "core 2: munmap()");
}

TEST(TraceRecorder, InstantNowUsesAttachedClock)
{
    EventQueue queue;
    TraceRecorder trace;
    trace.attachClock(&queue);
    trace.setEnabled(true);
    queue.scheduleLambda(
        250, [&]() { trace.instantNow("c", "n", 2, 9, 5); });
    queue.run();
    std::vector<TraceRecord> records = trace.snapshot();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].at, 250u);
    EXPECT_EQ(records[0].core, 2u);
    EXPECT_EQ(records[0].mm, 9u);
}

TEST(ChromeTrace, EmitsWellFormedJsonWithAllRecordKinds)
{
    TraceRecorder trace;
    trace.setEnabled(true);
    const SpanId s = trace.beginSpan("coh", "span \"quoted\"", 10, 1);
    trace.endSpan(s, 40);
    trace.instant("vm", "point", 20, 2, 3, 4);
    trace.instant("vm", "global-point", 25); // no core: machine track
    trace.counter("latr", "lazy_bytes", 30, 4096.0);
    const SpanId open = trace.beginSpan("coh", "never-closed", 35, 1);
    (void)open;

    const std::string json = chromeTraceJson(trace, nullptr);
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("span \\\"quoted\\\""), std::string::npos);
    // The unmatched begin still renders (closed at the last tick).
    EXPECT_NE(json.find("never-closed"), std::string::npos);
}

TEST(ChromeTrace, MapsSocketsToProcessesAndCoresToThreads)
{
    Machine machine(MachineConfig::commodity2S16C(),
                    PolicyKind::Latr);
    TraceRecorder &trace = machine.trace();
    trace.setEnabled(true);
    trace.instant("t", "on-core-9", 10, 9); // core 9 = socket 1
    const std::string json = chromeTraceJson(trace, &machine.topo());
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"name\":\"socket 0\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"socket 1\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"core 9\""), std::string::npos);
    // Core 9 sits on socket 1: pid 1, tid 10.
    EXPECT_NE(json.find("\"pid\":1,\"tid\":10,\"ts\":"),
              std::string::npos);
}

TEST(TextDump, FiltersByCategoryAndRendersBareLines)
{
    TraceRecorder trace;
    trace.setEnabled(true);
    trace.instant("timeline", trace.intern("first line"), 1000);
    trace.instant("other", "hidden", 2000);
    trace.instant("timeline", trace.intern("second line"), 3500);

    TextDumpOptions options;
    options.origin = 1000;
    options.categoryFilter = "timeline";
    options.detail = false;
    const std::string text = textTimeline(trace, options);
    EXPECT_NE(text.find("t=    0.00 us  first line"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("t=    2.50 us  second line"),
              std::string::npos);
    EXPECT_EQ(text.find("hidden"), std::string::npos);
}

TEST(TextDump, DetailAnnotatesSpans)
{
    TraceRecorder trace;
    trace.setEnabled(true);
    const SpanId s = trace.beginSpan("coh", "shootdown", 0, 4, 2, 8);
    trace.endSpan(s, 5000);
    TextDumpOptions options;
    const std::string text = textTimeline(trace, options);
    EXPECT_NE(text.find("shootdown"), std::string::npos) << text;
    EXPECT_NE(text.find("coh"), std::string::npos);
    EXPECT_NE(text.find("5.00 us"), std::string::npos);
}

/** Drive one munmap through a machine and let lazy work complete. */
void
runMunmapLifecycle(Machine &machine)
{
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("traced");
    Task *t1 = kernel.spawnTask(p, 1);
    Task *t2 = kernel.spawnTask(p, 2);
    machine.run(kUsec);
    SyscallResult m = kernel.mmap(t1, kPageSize,
                                  kProtRead | kProtWrite);
    ASSERT_TRUE(m.ok);
    kernel.touch(t1, m.addr, true);
    kernel.touch(t2, m.addr, true);
    SyscallResult u = kernel.munmap(t1, m.addr, kPageSize);
    ASSERT_TRUE(u.ok);
    machine.run(8 * kMsec);
}

bool
traceHasName(const TraceRecorder &trace, const char *name)
{
    for (const TraceRecord &r : trace.snapshot())
        if (std::strcmp(r.name, name) == 0)
            return true;
    return false;
}

TEST(MachineTrace, LatrLifecycleProducesTheShootdownSpans)
{
    Machine machine(MachineConfig::commodity2S16C(),
                    PolicyKind::Latr);
    machine.trace().setEnabled(true);
    runMunmapLifecycle(machine);

    const TraceRecorder &trace = machine.trace();
    EXPECT_TRUE(traceHasName(trace, "sys.munmap"));
    EXPECT_TRUE(traceHasName(trace, "latr.state_save"));
    EXPECT_TRUE(traceHasName(trace, "latr.sweep"));
    EXPECT_TRUE(traceHasName(trace, "latr.reclaim"));
    EXPECT_TRUE(traceHasName(trace, "sched.tick"));

    // And the whole thing exports as loadable JSON.
    const std::string json =
        chromeTraceJson(trace, &machine.topo());
    EXPECT_TRUE(JsonChecker(json).valid());
    EXPECT_NE(json.find("latr.sweep"), std::string::npos);
}

TEST(MachineTrace, LinuxLifecycleProducesIpiSpans)
{
    Machine machine(MachineConfig::commodity2S16C(),
                    PolicyKind::LinuxSync);
    machine.trace().setEnabled(true);
    runMunmapLifecycle(machine);

    const TraceRecorder &trace = machine.trace();
    EXPECT_TRUE(traceHasName(trace, "sys.munmap"));
    EXPECT_TRUE(traceHasName(trace, "ipi.send"));
    EXPECT_TRUE(traceHasName(trace, "ipi.handler"));
    EXPECT_TRUE(traceHasName(trace, "ipi.ack"));
    EXPECT_TRUE(traceHasName(trace, "coh.ipi_shootdown"));
}

TEST(MachineTrace, DisabledRecorderStaysEmptyThroughAFullRun)
{
    Machine machine(MachineConfig::commodity2S16C(),
                    PolicyKind::Latr);
    runMunmapLifecycle(machine);
    EXPECT_EQ(machine.trace().size(), 0u);
    EXPECT_EQ(machine.trace().totalRecorded(), 0u);
}

} // namespace
} // namespace latr
