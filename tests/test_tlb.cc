// Unit tests for the two-level TLB model.

#include <gtest/gtest.h>

#include <map>

#include "hw/tlb.hh"

namespace latr
{
namespace
{

/** Counts listener traffic and mirrors membership. */
class MirrorListener : public TlbListener
{
  public:
    void
    onTlbInsert(CoreId, Vpn vpn, Pfn pfn, Pcid pcid) override
    {
        ++inserts;
        live[key(vpn, pcid)] = pfn;
    }

    void
    onTlbRemove(CoreId, Vpn vpn, Pfn pfn, Pcid pcid) override
    {
        ++removes;
        auto it = live.find(key(vpn, pcid));
        ASSERT_NE(it, live.end());
        EXPECT_EQ(it->second, pfn);
        live.erase(it);
    }

    static std::uint64_t
    key(Vpn vpn, Pcid pcid)
    {
        return (static_cast<std::uint64_t>(pcid) << 48) | vpn;
    }

    int inserts = 0;
    int removes = 0;
    std::map<std::uint64_t, Pfn> live;
};

TEST(Tlb, MissThenInsertThenHit)
{
    Tlb tlb(0, 4, 8);
    Pfn pfn = 0;
    EXPECT_EQ(tlb.lookup(10, 0, &pfn), TlbResult::Miss);
    tlb.insert(10, 99, 0);
    EXPECT_EQ(tlb.lookup(10, 0, &pfn), TlbResult::HitL1);
    EXPECT_EQ(pfn, 99u);
    EXPECT_EQ(tlb.l1Hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, L1EvictionSpillsToL2AndHitsThere)
{
    Tlb tlb(0, 2, 4);
    tlb.insert(1, 101, 0);
    tlb.insert(2, 102, 0);
    tlb.insert(3, 103, 0); // evicts vpn 1 (LRU) into L2
    Pfn pfn = 0;
    EXPECT_EQ(tlb.lookup(1, 0, &pfn), TlbResult::HitL2);
    EXPECT_EQ(pfn, 101u);
    EXPECT_EQ(tlb.l2Hits(), 1u);
}

TEST(Tlb, L2PromotionMovesEntryBackToL1)
{
    Tlb tlb(0, 2, 4);
    tlb.insert(1, 101, 0);
    tlb.insert(2, 102, 0);
    tlb.insert(3, 103, 0); // vpn 1 -> L2
    EXPECT_EQ(tlb.lookup(1, 0), TlbResult::HitL2);
    // Promoted: next lookup is an L1 hit.
    EXPECT_EQ(tlb.lookup(1, 0), TlbResult::HitL1);
}

TEST(Tlb, TrueLruOrderRespectsTouches)
{
    Tlb tlb(0, 2, 2);
    tlb.insert(1, 101, 0);
    tlb.insert(2, 102, 0);
    // Touch vpn 1 so vpn 2 becomes LRU.
    EXPECT_EQ(tlb.lookup(1, 0), TlbResult::HitL1);
    tlb.insert(3, 103, 0); // evicts vpn 2 (the LRU) to L2
    EXPECT_EQ(tlb.lookup(2, 0), TlbResult::HitL2);
    // Promoting vpn 2 into the 2-entry L1 demoted vpn 1 in turn.
    EXPECT_EQ(tlb.lookup(1, 0), TlbResult::HitL2);
}

TEST(Tlb, TotalCapacityEnforced)
{
    Tlb tlb(0, 2, 2);
    for (Vpn v = 0; v < 10; ++v)
        tlb.insert(v, 100 + v, 0);
    EXPECT_LE(tlb.size(), 4u);
}

TEST(Tlb, InvalidatePageRemovesFromBothLevels)
{
    Tlb tlb(0, 2, 4);
    tlb.insert(1, 101, 0);
    tlb.insert(2, 102, 0);
    tlb.insert(3, 103, 0); // vpn 1 now in L2
    tlb.invalidatePage(1, 0);
    tlb.invalidatePage(3, 0);
    EXPECT_EQ(tlb.lookup(1, 0), TlbResult::Miss);
    EXPECT_EQ(tlb.lookup(3, 0), TlbResult::Miss);
    EXPECT_EQ(tlb.lookup(2, 0), TlbResult::HitL1);
}

TEST(Tlb, InvalidateRangeIsInclusive)
{
    Tlb tlb(0, 8, 8);
    for (Vpn v = 10; v <= 15; ++v)
        tlb.insert(v, 100 + v, 0);
    tlb.invalidateRange(11, 13, 0);
    EXPECT_EQ(tlb.lookup(10, 0), TlbResult::HitL1);
    EXPECT_EQ(tlb.lookup(11, 0), TlbResult::Miss);
    EXPECT_EQ(tlb.lookup(12, 0), TlbResult::Miss);
    EXPECT_EQ(tlb.lookup(13, 0), TlbResult::Miss);
    EXPECT_EQ(tlb.lookup(14, 0), TlbResult::HitL1);
}

TEST(Tlb, PcidSeparatesAddressSpaces)
{
    Tlb tlb(0, 8, 8);
    tlb.insert(10, 100, 1);
    tlb.insert(10, 200, 2);
    Pfn pfn = 0;
    EXPECT_EQ(tlb.lookup(10, 1, &pfn), TlbResult::HitL1);
    EXPECT_EQ(pfn, 100u);
    EXPECT_EQ(tlb.lookup(10, 2, &pfn), TlbResult::HitL1);
    EXPECT_EQ(pfn, 200u);
}

TEST(Tlb, InvalidatePcidOnlyDropsThatSpace)
{
    Tlb tlb(0, 8, 8);
    tlb.insert(10, 100, 1);
    tlb.insert(11, 101, 1);
    tlb.insert(10, 200, 2);
    tlb.invalidatePcid(1);
    EXPECT_EQ(tlb.lookup(10, 1), TlbResult::Miss);
    EXPECT_EQ(tlb.lookup(11, 1), TlbResult::Miss);
    EXPECT_EQ(tlb.lookup(10, 2), TlbResult::HitL1);
}

TEST(Tlb, InvalidateRangeHonorsPcid)
{
    Tlb tlb(0, 8, 8);
    tlb.insert(10, 100, 1);
    tlb.insert(10, 200, 2);
    tlb.invalidateRange(0, 100, 1);
    EXPECT_EQ(tlb.lookup(10, 1), TlbResult::Miss);
    EXPECT_EQ(tlb.lookup(10, 2), TlbResult::HitL1);
}

TEST(Tlb, FlushAllEmptiesAndCounts)
{
    Tlb tlb(0, 4, 4);
    for (Vpn v = 0; v < 6; ++v)
        tlb.insert(v, v, 0);
    tlb.flushAll();
    EXPECT_EQ(tlb.size(), 0u);
    EXPECT_EQ(tlb.flushes(), 1u);
    EXPECT_EQ(tlb.lookup(0, 0), TlbResult::Miss);
}

TEST(Tlb, ProbeHasNoLruSideEffects)
{
    Tlb tlb(0, 2, 2);
    tlb.insert(1, 101, 0);
    tlb.insert(2, 102, 0);
    // Probing vpn 1 must NOT refresh it...
    EXPECT_TRUE(tlb.probe(1, 0));
    tlb.insert(3, 103, 0); // ...so vpn 1 is still the LRU victim
    EXPECT_EQ(tlb.lookup(1, 0), TlbResult::HitL2);
}

TEST(Tlb, ListenerSeesNetMembershipChanges)
{
    Tlb tlb(0, 2, 2);
    MirrorListener listener;
    tlb.setListener(&listener);

    tlb.insert(1, 101, 0);
    tlb.insert(2, 102, 0);
    EXPECT_EQ(listener.inserts, 2);
    EXPECT_EQ(listener.removes, 0);

    // Spill to L2 is not a removal...
    tlb.insert(3, 103, 0);
    EXPECT_EQ(listener.removes, 0);
    // ...but falling out of L2 is.
    tlb.insert(4, 104, 0);
    tlb.insert(5, 105, 0);
    EXPECT_GT(listener.removes, 0);
    EXPECT_EQ(listener.live.size(), tlb.size());
}

TEST(Tlb, ListenerSeesRemapAsRemovePlusInsert)
{
    Tlb tlb(0, 4, 4);
    MirrorListener listener;
    tlb.setListener(&listener);
    tlb.insert(1, 101, 0);
    tlb.insert(1, 999, 0); // same vpn, new frame
    EXPECT_EQ(listener.inserts, 2);
    EXPECT_EQ(listener.removes, 1);
    Pfn pfn = 0;
    tlb.lookup(1, 0, &pfn);
    EXPECT_EQ(pfn, 999u);
    EXPECT_EQ(tlb.size(), 1u);
}

TEST(Tlb, ReinsertSameTranslationIsQuietForListener)
{
    Tlb tlb(0, 4, 4);
    MirrorListener listener;
    tlb.setListener(&listener);
    tlb.insert(1, 101, 0);
    tlb.insert(1, 101, 0); // identical
    EXPECT_EQ(listener.inserts, 1);
    EXPECT_EQ(listener.removes, 0);
    EXPECT_EQ(tlb.size(), 1u);
}

TEST(Tlb, FlushNotifiesEveryEntry)
{
    Tlb tlb(0, 4, 4);
    MirrorListener listener;
    tlb.setListener(&listener);
    for (Vpn v = 0; v < 4; ++v)
        tlb.insert(v, v, 0);
    tlb.flushAll();
    EXPECT_EQ(listener.removes, 4);
    EXPECT_TRUE(listener.live.empty());
}

// --- LRU golden tests: written against the list+map level and
// --- required to pass verbatim on the slot-array level.

TEST(TlbGolden, EvictionCascadeL1ToL2ToGone)
{
    Tlb tlb(0, 2, 2);
    MirrorListener listener;
    tlb.setListener(&listener);
    // 1,2 fill L1; 3,4 spill 1,2 into L2; 5 spills 3, whose arrival
    // evicts the L2 LRU (vpn 1) out of the TLB entirely.
    for (Vpn v = 1; v <= 5; ++v)
        tlb.insert(v, 100 + v, 0);
    EXPECT_FALSE(tlb.probe(1, 0));
    EXPECT_TRUE(tlb.probe(2, 0));
    EXPECT_TRUE(tlb.probe(3, 0));
    EXPECT_TRUE(tlb.probe(4, 0));
    EXPECT_TRUE(tlb.probe(5, 0));
    EXPECT_EQ(listener.removes, 1);
    EXPECT_EQ(tlb.size(), 4u);
    // Exact level placement: 5,4 in L1; 3,2 in L2.
    EXPECT_EQ(tlb.lookup(4, 0), TlbResult::HitL1);
    EXPECT_EQ(tlb.lookup(5, 0), TlbResult::HitL1);
    EXPECT_EQ(tlb.lookup(2, 0), TlbResult::HitL2);
    EXPECT_EQ(tlb.lookup(3, 0), TlbResult::HitL2);
}

TEST(TlbGolden, L2HitPromotionDemotesL1Lru)
{
    Tlb tlb(0, 2, 2);
    tlb.insert(1, 101, 0);
    tlb.insert(2, 102, 0);
    tlb.insert(3, 103, 0); // L1 {3,2}, L2 {1}
    Pfn pfn = 0;
    EXPECT_EQ(tlb.lookup(1, 0, &pfn), TlbResult::HitL2);
    EXPECT_EQ(pfn, 101u);
    // Promotion put 1 into L1 and demoted the L1 LRU (vpn 2) to L2.
    EXPECT_EQ(tlb.lookup(3, 0), TlbResult::HitL1);
    EXPECT_EQ(tlb.lookup(2, 0), TlbResult::HitL2);
}

TEST(TlbGolden, InvalidateRangeBoundaryVpns)
{
    Tlb tlb(0, 8, 8);
    for (Vpn v = 99; v <= 104; ++v)
        tlb.insert(v, v, 0);
    // Narrow range (below occupancy): exercises the probe path of an
    // adaptive implementation.
    tlb.invalidateRange(100, 103, 0);
    EXPECT_TRUE(tlb.probe(99, 0));
    EXPECT_FALSE(tlb.probe(100, 0));
    EXPECT_FALSE(tlb.probe(103, 0));
    EXPECT_TRUE(tlb.probe(104, 0));
    // Wide range (beyond occupancy): exercises the scan path.
    tlb.invalidateRange(0, 1'000'000, 0);
    EXPECT_EQ(tlb.size(), 0u);
}

TEST(TlbGolden, InvalidateRangeHitsOverlappingHugeEntries)
{
    Tlb tlb(0, 4, 4, 4);
    tlb.insertHuge(0, 1000, 0);    // covers vpn 0..511
    tlb.insertHuge(512, 2000, 0);  // covers vpn 512..1023
    tlb.insertHuge(1024, 3000, 0); // covers vpn 1024..1535
    // A range touching only the tail page of the first region drops
    // that region but not its neighbor.
    tlb.invalidateRange(511, 511, 0);
    EXPECT_FALSE(tlb.probeHuge(0, 0));
    EXPECT_TRUE(tlb.probeHuge(512, 0));
    // A range starting exactly at a region's base drops it.
    tlb.invalidateRange(1024, 1024, 0);
    EXPECT_FALSE(tlb.probeHuge(1024, 0));
    EXPECT_TRUE(tlb.probeHuge(512, 0));
}

TEST(TlbGolden, InvalidatePcidWithInterleavedPcids)
{
    Tlb tlb(0, 4, 4);
    tlb.insert(10, 1, 1);
    tlb.insert(10, 2, 2);
    tlb.insert(11, 3, 1);
    tlb.insert(11, 4, 2);
    tlb.invalidatePcid(1);
    EXPECT_FALSE(tlb.probe(10, 1));
    EXPECT_FALSE(tlb.probe(11, 1));
    EXPECT_TRUE(tlb.probe(10, 2));
    EXPECT_TRUE(tlb.probe(11, 2));
    // Survivors keep their LRU order: (10,2) is the older of the two
    // and is the first demoted once the level refills.
    tlb.insert(20, 5, 2);
    tlb.insert(21, 6, 2);
    tlb.insert(22, 7, 2);
    EXPECT_EQ(tlb.lookup(10, 2), TlbResult::HitL2);
    EXPECT_EQ(tlb.lookup(11, 2), TlbResult::HitL2);
}

TEST(TlbGolden, HugeArrayIndependentOfBaseLevels)
{
    Tlb tlb(0, 2, 2, 2);
    tlb.insertHuge(0, 1000, 0);
    tlb.insertHuge(512, 2000, 0);
    // Churning the 4 KiB arrays never evicts huge entries.
    for (Vpn v = 5000; v < 5010; ++v)
        tlb.insert(v, v, 0);
    EXPECT_TRUE(tlb.probeHuge(0, 0));
    EXPECT_TRUE(tlb.probeHuge(700, 0));
    EXPECT_EQ(tlb.hugeSize(), 2u);
    // A lookup through a huge entry offsets into the region.
    Pfn pfn = 0;
    bool huge = false;
    EXPECT_EQ(tlb.lookup(513, 0, &pfn, nullptr, &huge),
              TlbResult::HitL1);
    EXPECT_TRUE(huge);
    EXPECT_EQ(pfn, 2001u);
    // A third huge entry evicts only the huge LRU (base 0: the
    // lookup above touched 512).
    tlb.insertHuge(1024, 3000, 0);
    EXPECT_FALSE(tlb.probeHuge(0, 0));
    EXPECT_TRUE(tlb.probeHuge(512, 0));
    EXPECT_TRUE(tlb.probeHuge(1024, 0));
    EXPECT_EQ(tlb.hugeSize(), 2u);
}

class TlbFillSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TlbFillSweep, SizeNeverExceedsConfiguredCapacity)
{
    const unsigned l1 = GetParam();
    Tlb tlb(0, l1, 2 * l1);
    for (Vpn v = 0; v < 10 * l1; ++v) {
        tlb.insert(v, v, 0);
        EXPECT_LE(tlb.size(), static_cast<std::size_t>(3 * l1));
    }
    // All most-recent l1 insertions must still hit in L1.
    for (Vpn v = 10 * l1 - l1; v < 10 * l1; ++v)
        EXPECT_EQ(tlb.lookup(v, 0), TlbResult::HitL1) << v;
}

INSTANTIATE_TEST_SUITE_P(Capacities, TlbFillSweep,
                         ::testing::Values(2u, 4u, 64u));

} // namespace
} // namespace latr
