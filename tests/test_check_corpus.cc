// Seed regression corpus: hand-written scripts pinning the paper's
// interesting boundary behaviors (LATR ring-full fallback, ABIS scan
// batching, Barrelfish message shootdown, PCID on/off). Each must
// stay clean and cross-policy equivalent forever; the ring-full
// script must additionally keep exercising the fallback-IPI path.

#include <gtest/gtest.h>

#include <string>

#include "check/executor.hh"
#include "check/fuzzer.hh"
#include "check/script.hh"

#ifndef LATR_TEST_CORPUS_DIR
#error "LATR_TEST_CORPUS_DIR must point at tests/corpus"
#endif

namespace latr
{
namespace
{

Script
loadCorpus(const std::string &name)
{
    Script script;
    std::string err;
    const std::string path =
        std::string(LATR_TEST_CORPUS_DIR) + "/" + name;
    EXPECT_TRUE(loadScriptFile(path, &script, &err))
        << path << ": " << err;
    return script;
}

class CorpusScript : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CorpusScript, StaysCleanAndEquivalent)
{
    Script script = loadCorpus(GetParam());
    ASSERT_FALSE(script.ops.empty());
    EXPECT_EQ(checkScript(script, ExecOptions{}), "");
}

INSTANTIATE_TEST_SUITE_P(
    All, CorpusScript,
    ::testing::Values("latr_ring_full.script",
                      "abis_scan_boundary.script",
                      "barrelfish_remote_unmap.script",
                      "pcid_on.script", "pcid_off.script",
                      "large_word_boundary.script",
                      "large_sync_shootdown.script",
                      "lazycache_free_reuse.script",
                      "lazycache_ring_overflow.script"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        return name.substr(0, name.find('.'));
    });

TEST(CorpusRingFull, BurstOverflowsTheRingIntoFallbackIpis)
{
    Script script = loadCorpus("latr_ring_full.script");
    RunResult run =
        runScript(script, PolicyKind::Latr, ExecOptions{});
    EXPECT_EQ(run.stalenessViolations, 0u) << run.firstStaleness;
    EXPECT_EQ(run.invariantViolations, 0u) << run.firstInvariant;
    // 70 back-to-back lazy munmaps against a 64-entry ring: the
    // overflow must have taken the synchronous escape hatch. If this
    // drops to zero the script no longer reaches the boundary it
    // was written to pin.
    EXPECT_GT(run.latrFallbackIpis, 0u);
}

TEST(CorpusLazycache, PressureBurstStraddlesRingOverflow)
{
    // 70 back-to-back MADV_FREEs from one core: 64 land in ring
    // slots, the tail takes the fallback-IPI path — and the
    // post-quiesce refill reuses frames released by both paths.
    Script script = loadCorpus("lazycache_ring_overflow.script");
    RunResult run =
        runScript(script, PolicyKind::Latr, ExecOptions{});
    EXPECT_EQ(run.stalenessViolations, 0u) << run.firstStaleness;
    EXPECT_EQ(run.invariantViolations, 0u) << run.firstInvariant;
    EXPECT_GT(run.latrFallbackIpis, 0u);
}

TEST(CorpusLazycache, FreeReuseStaysBelowTheRing)
{
    // The gentler companion script never exceeds the ring, so any
    // fallback here means the ring shrank or save stopped working.
    Script script = loadCorpus("lazycache_free_reuse.script");
    RunResult run =
        runScript(script, PolicyKind::Latr, ExecOptions{});
    EXPECT_EQ(run.stalenessViolations, 0u) << run.firstStaleness;
    EXPECT_EQ(run.invariantViolations, 0u) << run.firstInvariant;
    EXPECT_EQ(run.latrFallbackIpis, 0u);
}

TEST(CorpusRingFull, SyncOverrideNeverTouchesTheRing)
{
    Script script = loadCorpus("latr_ring_full.script");
    for (Op &op : script.ops)
        if (op.kind == OpKind::Munmap)
            op.kind = OpKind::MunmapSync;
    RunResult run =
        runScript(script, PolicyKind::Latr, ExecOptions{});
    EXPECT_EQ(run.stalenessViolations, 0u) << run.firstStaleness;
    // syncRequested bypasses the ring entirely, so the same burst
    // produces no ring-full fallbacks.
    EXPECT_EQ(run.latrFallbackIpis, 0u);
}

} // namespace
} // namespace latr
