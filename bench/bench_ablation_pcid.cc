// Ablation: PCIDs (paper section 4.5). Linux 4.10 does not use
// process-context identifiers, so every cross-process context switch
// flushes the whole TLB — which incidentally scrubs stale entries.
// With PCIDs, entries survive switches (fewer TLB misses) and LATR's
// explicit invalidation at the switch becomes mandatory. This bench
// oversubscribes every core with threads of two processes so the
// tick-driven rotation actually changes CR3, and reports the TLB
// miss rate in all four policy x PCID cells; the reuse invariant is
// checker-verified in each.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hh"
#include "machine/machine.hh"
#include "workload/workload.hh"

using namespace latr;

namespace
{

/** Touch-loop actor over a fixed working set. */
class TouchLoop : public CoreActor
{
  public:
    TouchLoop(Machine &machine, Task *task, Addr base,
              std::uint64_t pages, std::uint64_t iters)
        : CoreActor(machine, task), base_(base), pages_(pages),
          left_(iters)
    {}

  protected:
    Duration
    step() override
    {
        if (left_ == 0)
            return kActorDone;
        --left_;
        Duration d = 20 * kUsec;
        for (std::uint64_t p = 0; p < 24; ++p) {
            const std::uint64_t page = (cursor_ + p * 7) % pages_;
            d += kernel().touch(task(), base_ + page * kPageSize,
                                false)
                     .latency;
        }
        cursor_ = (cursor_ + 1) % pages_;
        return d;
    }

  private:
    Addr base_;
    std::uint64_t pages_;
    std::uint64_t cursor_ = 0;
    std::uint64_t left_;
};

struct PcidResult
{
    Duration runtime = 0;
    std::uint64_t tlbMisses = 0;
    std::uint64_t flushes = 0;
    std::uint64_t violations = 0;
};

PcidResult
runCase(PolicyKind policy, bool pcid)
{
    MachineConfig cfg = MachineConfig::commodity2S16C();
    cfg.pcidEnabled = pcid;
    Machine machine(cfg, policy);
    Kernel &kernel = machine.kernel();

    const unsigned cores = 8;
    const std::uint64_t ws_pages = 48; // fits both processes' TLBs
    std::vector<std::unique_ptr<CoreActor>> actors;
    for (int p = 0; p < 2; ++p) {
        Process *proc =
            kernel.createProcess("p" + std::to_string(p));
        Task *first = kernel.spawnTask(proc, 0);
        SyscallResult m = kernel.mmap(
            first, ws_pages * kPageSize, kProtRead | kProtWrite);
        for (CoreId c = 0; c < cores; ++c) {
            Task *task =
                c == 0 ? first : kernel.spawnTask(proc, c);
            auto actor = std::make_unique<TouchLoop>(
                machine, task, m.addr, ws_pages, 2500);
            actor->start(machine.now() + c * kUsec + p + 1);
            actors.push_back(std::move(actor));
        }
    }

    const Tick t0 = machine.now();
    const Tick finish =
        runToCompletion(machine, actors, t0 + 30 * kSec);

    PcidResult out;
    out.runtime = finish - t0;
    for (CoreId c = 0; c < machine.topo().totalCores(); ++c) {
        out.tlbMisses += machine.scheduler().tlbOf(c).misses();
        out.flushes += machine.scheduler().tlbOf(c).flushes();
    }
    out.violations = machine.checker()->violations();
    return out;
}

} // namespace

int
main()
{
    MachineConfig config = MachineConfig::commodity2S16C();
    bench::banner("Ablation: PCIDs",
                  "two processes per core, with and without PCIDs",
                  config);
    bench::paperExpectation(
        "section 4.5: LATR works in both modes; without PCIDs every "
        "cross-process switch flushes (more TLB misses); with PCIDs "
        "the switch invalidation is mandatory — zero violations "
        "either way");
    bench::rule();

    std::printf("%-8s %-6s | %12s | %12s | %10s | %10s\n", "policy",
                "pcid", "runtime_ms", "tlb_misses", "flushes",
                "violations");
    bench::rule();
    bool all_safe = true;
    double miss_off = 0, miss_on = 0;
    for (PolicyKind policy : {PolicyKind::LinuxSync, PolicyKind::Latr}) {
        for (bool pcid : {false, true}) {
            PcidResult r = runCase(policy, pcid);
            std::printf("%-8s %-6s | %12.2f | %12llu | %10llu | %10llu\n",
                        policyKindName(policy), pcid ? "on" : "off",
                        r.runtime / 1e6,
                        static_cast<unsigned long long>(r.tlbMisses),
                        static_cast<unsigned long long>(r.flushes),
                        static_cast<unsigned long long>(r.violations));
            all_safe = all_safe && r.violations == 0;
            if (policy == PolicyKind::Latr) {
                if (pcid)
                    miss_on = static_cast<double>(r.tlbMisses);
                else
                    miss_off = static_cast<double>(r.tlbMisses);
            }
        }
    }
    bench::rule();
    bench::measuredHeadline(
        "PCIDs cut LATR's TLB misses by %.1f%%; reuse invariant "
        "holds in every cell: %s",
        miss_off > 0 ? 100.0 * (miss_off - miss_on) / miss_off : 0.0,
        all_safe ? "yes" : "NO (bug)");
    return all_safe ? 0 : 1;
}
