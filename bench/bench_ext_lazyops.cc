// Extension experiment: the remaining lazy-capable rows of table 1.
// The paper lists page swap, deduplication, and compaction as
// operations whose shootdowns LATR can make lazy, but evaluates only
// free operations and AutoNUMA. This bench drives this repository's
// swap, KSM, and compaction daemons under Linux and LATR on the same
// workload and reports the IPIs each policy needed — the lazy rows
// go to (almost) zero under LATR while the must-be-synchronous parts
// (CoW write protection, migration copies) still pay.

#include <cstdio>

#include "bench_util.hh"
#include "machine/machine.hh"
#include "numa/compaction.hh"
#include "numa/ksm.hh"
#include "numa/swap.hh"

using namespace latr;

namespace
{

struct LazyOpResult
{
    std::uint64_t ops = 0;
    std::uint64_t ipis = 0;
    std::uint64_t violations = 0;
};

MachineConfig
smallConfig()
{
    MachineConfig cfg = MachineConfig::commodity2S16C();
    cfg.framesPerNode = 2048;
    return cfg;
}

/** Fault a tagged, shareable working set on two cores. */
Addr
populate(Machine &machine, Process *p, Task *t0, Task *t1,
         std::uint64_t pages, std::uint64_t tag_every)
{
    Kernel &kernel = machine.kernel();
    SyscallResult m =
        kernel.mmap(t0, pages * kPageSize, kProtRead | kProtWrite);
    for (std::uint64_t i = 0; i < pages; ++i) {
        kernel.touch(t0, m.addr + i * kPageSize, true);
        kernel.touch(t1, m.addr + i * kPageSize, false);
        if (tag_every)
            p->mm().setContentTag(pageOf(m.addr) + i,
                                  1 + i / tag_every);
    }
    return m.addr;
}

LazyOpResult
runSwap(PolicyKind kind)
{
    Machine machine(smallConfig(), kind);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("swap");
    Task *t0 = kernel.spawnTask(p, 0);
    Task *t1 = kernel.spawnTask(p, 1);
    machine.run(kUsec);
    populate(machine, p, t0, t1, 128, 0);
    machine.ipi().resetStats();

    SwapDaemon swap(kernel, 4 * kMsec, 64);
    swap.track(p);
    swap.start();
    machine.run(30 * kMsec);
    swap.stop();
    machine.run(8 * kMsec);

    LazyOpResult r;
    r.ops = swap.evictions();
    r.ipis = machine.ipi().ipisSent();
    r.violations = machine.checker()->violations();
    return r;
}

LazyOpResult
runKsm(PolicyKind kind)
{
    Machine machine(smallConfig(), kind);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("ksm");
    Task *t0 = kernel.spawnTask(p, 0);
    Task *t1 = kernel.spawnTask(p, 1);
    machine.run(kUsec);
    populate(machine, p, t0, t1, 128, 8); // 16 groups of 8 duplicates
    machine.ipi().resetStats();

    KsmDaemon ksm(kernel, 4 * kMsec, 64);
    ksm.track(p);
    ksm.start();
    machine.run(30 * kMsec);
    ksm.stop();
    machine.run(8 * kMsec);

    LazyOpResult r;
    r.ops = ksm.stats().merges;
    r.ipis = machine.ipi().ipisSent();
    r.violations = machine.checker()->violations();
    return r;
}

LazyOpResult
runCompaction(PolicyKind kind)
{
    Machine machine(smallConfig(), kind);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("compact");
    Task *t0 = kernel.spawnTask(p, 0);
    Task *t1 = kernel.spawnTask(p, 1); // second resident core: the
                                       // sampling shootdowns have a
                                       // remote target under Linux
    machine.run(kUsec);

    // Fragment node 0.
    SyscallResult burn = kernel.mmap(t0, 1024 * kPageSize,
                                     kProtRead | kProtWrite);
    for (std::uint64_t i = 0; i < 1024; ++i)
        kernel.touch(t0, burn.addr + i * kPageSize, true);
    SyscallResult keep =
        kernel.mmap(t0, 64 * kPageSize, kProtRead | kProtWrite);
    for (std::uint64_t i = 0; i < 64; ++i) {
        kernel.touch(t0, keep.addr + i * kPageSize, true);
        kernel.touch(t1, keep.addr + i * kPageSize, false);
    }
    kernel.munmap(t0, burn.addr, 1024 * kPageSize);
    machine.run(8 * kMsec);
    machine.ipi().resetStats();

    CompactionDaemon compactor(kernel, 0, 4 * kMsec, 32);
    compactor.track(p);
    compactor.start();
    // Keep core 1 a live reader of part of the region so the
    // sampling shootdowns have a real remote audience; read only
    // every other round so most sampled pages stay untouched long
    // enough for their moves to complete.
    for (int round = 0; round < 10; ++round) {
        machine.run(4 * kMsec);
        if (round % 2 == 0)
            for (std::uint64_t i = 0; i < 64; i += 8)
                kernel.touch(t1, keep.addr + i * kPageSize, false);
    }
    compactor.stop();
    machine.run(8 * kMsec);

    LazyOpResult r;
    r.ops = compactor.stats().pagesMoved;
    r.ipis = machine.ipi().ipisSent();
    r.violations = machine.checker()->violations();
    return r;
}

void
report(const char *name, const LazyOpResult &linux_r,
       const LazyOpResult &latr_r, bool &all_safe)
{
    auto per_op = [](const LazyOpResult &r) {
        return r.ops ? static_cast<double>(r.ipis) /
                           static_cast<double>(r.ops)
                     : 0.0;
    };
    std::printf("%-12s | %6llu %10llu %8.2f | %6llu %10llu %8.2f\n",
                name, static_cast<unsigned long long>(linux_r.ops),
                static_cast<unsigned long long>(linux_r.ipis),
                per_op(linux_r),
                static_cast<unsigned long long>(latr_r.ops),
                static_cast<unsigned long long>(latr_r.ipis),
                per_op(latr_r));
    all_safe = all_safe && linux_r.violations == 0 &&
               latr_r.violations == 0;
}

} // namespace

int
main()
{
    const MachineConfig config = smallConfig();
    bench::banner("Extension: lazy-capable operations",
                  "swap, deduplication, compaction (table 1 rows)",
                  config);
    bench::paperExpectation(
        "table 1: swap/dedup/compaction admit lazy shootdowns like "
        "free and AutoNUMA (listed, not evaluated, in the paper)");
    bench::rule();
    std::printf("%-12s | %24s | %24s\n", "",
                "Linux: ops / IPIs / per-op",
                "LATR:  ops / IPIs / per-op");
    bench::rule();

    bool all_safe = true;
    report("swap", runSwap(PolicyKind::LinuxSync),
           runSwap(PolicyKind::Latr), all_safe);
    report("dedup(KSM)", runKsm(PolicyKind::LinuxSync),
           runKsm(PolicyKind::Latr), all_safe);
    report("compaction", runCompaction(PolicyKind::LinuxSync),
           runCompaction(PolicyKind::Latr), all_safe);

    bench::rule();
    bench::measuredHeadline(
        "LATR removes the shootdown IPIs from the lazy-capable part "
        "of each operation; reuse invariant everywhere: %s",
        all_safe ? "held" : "VIOLATED (bug)");
    return all_safe ? 0 : 1;
}
