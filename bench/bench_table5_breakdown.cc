// Table 5: breakdown of LATR's operations vs. a Linux shootdown when
// running the Apache workload on 12 cores. Two views are reported:
//
//  (a) the *simulated* costs, measured inside the simulation exactly
//      as the paper measures its kernel (state save, state sweep,
//      and the per-munmap shootdown under each policy);
//  (b) *host-measured* nanoseconds of this library's real LATR data
//      structures (ring-slot save and full sweep), via
//      google-benchmark — the reproduction's own table-5 analogue.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hh"
#include "machine/machine.hh"
#include "tlbcoh/latr_policy.hh"
#include "workload/webserver.hh"

using namespace latr;

namespace
{

/** Simulated per-operation costs under the Apache workload. */
void
printSimulatedBreakdown()
{
    const MachineConfig config = MachineConfig::commodity2S16C();
    bench::banner("Table 5",
                  "breakdown of shootdown operations (Apache, 12 cores)",
                  config);
    bench::paperExpectation(
        "saving a LATR state 132.3 ns; one state sweep 158.0 ns; a "
        "single Linux shootdown 1594.2 ns (-81.8%)");
    bench::rule();

    auto shootdown_mean = [&](PolicyKind kind) {
        Machine machine(config, kind);
        WebServerConfig cfg;
        cfg.workers = 12;
        cfg.processes = 3;
        WebServerWorkload server(machine, cfg);
        server.measure(40 * kMsec, 150 * kMsec);
        return machine.stats()
            .distribution("munmap.shootdown_ns")
            .mean();
    };

    Machine latr_machine(config, PolicyKind::Latr);
    const CostModel &cost = latr_machine.config().cost;
    const double save_ns = static_cast<double>(cost.latrStateSave);
    const double sweep_ns = static_cast<double>(
        cost.latrSweepFixed + cost.latrSweepPerMatch);

    const double latr_sd = shootdown_mean(PolicyKind::Latr);
    const double linux_sd = shootdown_mean(PolicyKind::LinuxSync);

    std::printf("%-44s %10s\n", "operation (simulated)", "time");
    bench::rule();
    std::printf("%-44s %8.1f ns\n", "saving a LATR state", save_ns);
    std::printf("%-44s %8.1f ns\n",
                "performing single state sweep with LATR", sweep_ns);
    std::printf("%-44s %8.1f ns\n",
                "per-munmap coherence cost with LATR (Apache)",
                latr_sd);
    std::printf("%-44s %8.1f ns\n",
                "single TLB shootdown in Linux (Apache)", linux_sd);
    bench::rule();
    bench::measuredHeadline(
        "LATR reduces the per-shootdown critical-path cost by %.1f%%",
        100.0 * (linux_sd - latr_sd) / linux_sd);
    std::printf("\nhost-measured data-structure costs follow "
                "(google-benchmark):\n\n");
}

/**
 * Host-measured: writing one LATR state through the public free-op
 * path (ring-slot scan + field stores + holdback bookkeeping).
 */
void
BM_HostLatrStateSave(benchmark::State &state)
{
    MachineConfig cfg = MachineConfig::commodity2S16C();
    Machine machine(cfg, PolicyKind::Latr);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("bench");
    Task *t0 = kernel.spawnTask(p, 0);
    kernel.spawnTask(p, 1);
    machine.run(kUsec);

    // Pre-map a large region and madvise one page per iteration so
    // each pass exercises exactly one state save. Slots recycle via
    // periodic reclamation runs.
    SyscallResult m =
        kernel.mmap(t0, 4096 * kPageSize, kProtRead | kProtWrite);
    std::uint64_t page = 0;
    for (auto _ : state) {
        (void)_;
        state.PauseTiming();
        if (page >= 4000) {
            machine.run(8 * kMsec); // recycle ring slots
            page = 0;
        }
        Addr addr = m.addr + page * kPageSize;
        kernel.touch(t0, addr, true);
        state.ResumeTiming();
        benchmark::DoNotOptimize(kernel.madvise(t0, addr, kPageSize));
        ++page;
    }
}
BENCHMARK(BM_HostLatrStateSave);

/** Host-measured: one full state sweep over all cores' rings. */
void
BM_HostLatrSweep(benchmark::State &state)
{
    MachineConfig cfg = MachineConfig::commodity2S16C();
    Machine machine(cfg, PolicyKind::Latr);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("bench");
    Task *t0 = kernel.spawnTask(p, 0);
    Task *t1 = kernel.spawnTask(p, 1);
    machine.run(kUsec);

    // Populate a handful of active states so the sweep has matches.
    for (int i = 0; i < 8; ++i) {
        SyscallResult m =
            kernel.mmap(t0, kPageSize, kProtRead | kProtWrite);
        kernel.touch(t0, m.addr, true);
        kernel.touch(t1, m.addr, true);
        kernel.munmap(t0, m.addr, kPageSize);
    }
    TlbCoherencePolicy &policy = machine.policy();
    for (auto _ : state) {
        (void)_;
        policy.onSchedulerTick(1, machine.now());
    }
    machine.scheduler().takeStolen(1);
}
BENCHMARK(BM_HostLatrSweep);

/** Host-measured: one synchronous Linux shootdown end to end. */
void
BM_HostLinuxShootdownPath(benchmark::State &state)
{
    MachineConfig cfg = MachineConfig::commodity2S16C();
    Machine machine(cfg, PolicyKind::LinuxSync);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("bench");
    Task *t0 = kernel.spawnTask(p, 0);
    Task *t1 = kernel.spawnTask(p, 1);
    machine.run(kUsec);

    for (auto _ : state) {
        (void)_;
        state.PauseTiming();
        SyscallResult m =
            kernel.mmap(t0, kPageSize, kProtRead | kProtWrite);
        kernel.touch(t0, m.addr, true);
        kernel.touch(t1, m.addr, true);
        state.ResumeTiming();
        benchmark::DoNotOptimize(
            kernel.munmap(t0, m.addr, kPageSize));
        state.PauseTiming();
        machine.run(20 * kUsec);
        state.ResumeTiming();
    }
}
BENCHMARK(BM_HostLinuxShootdownPath);

} // namespace

int
main(int argc, char **argv)
{
    printSimulatedBreakdown();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
