// Ablation: reclamation delay. The paper reclaims after TWO tick
// periods (2 ms) because ticks are unsynchronized across cores: one
// period measured from the save does not guarantee every core has
// ticked since. This bench demonstrates the rule by sweeping the
// delay and counting reuse-invariant violations — with a 1 ms delay
// the checker catches frames freed while a straggler core's TLB
// still maps them; at 2 ms and beyond it never does. It also shows
// the cost of longer delays: lazy-memory holdback grows linearly.

#include <cstdio>

#include "bench_util.hh"
#include "machine/machine.hh"
#include "workload/microbench.hh"

using namespace latr;

int
main()
{
    MachineConfig config = MachineConfig::commodity2S16C();
    bench::banner("Ablation: reclamation delay",
                  "why LATR waits two tick periods before reuse",
                  config);
    bench::paperExpectation(
        "sections 3/4.2: ticks are unsynchronized, so reclamation "
        "waits 2 ms (two periods); less is unsafe, more only costs "
        "memory");
    bench::rule();

    std::printf("%10s | %12s | %12s | %10s\n", "delay_ms",
                "violations", "lazy_KiB_pk", "munmap_us");
    bench::rule();

    bool unsafe_seen = false;
    bool safe_at_paper = true;
    for (Duration delay :
         {kMsec / 2, 1 * kMsec, 2 * kMsec, 4 * kMsec, 8 * kMsec}) {
        MachineConfig cfg = config;
        cfg.cost.latrReclaimDelay = delay;
        // Use the paper's pure time-bound background thread so the
        // delay is the only safety net (this library's default
        // additionally waits for the CPU mask to clear).
        cfg.latrTimeOnlyReclaim = true;
        Machine machine(cfg, PolicyKind::Latr);
        MunmapMicrobenchConfig mb;
        mb.sharingCores = 16;
        mb.pages = 4;
        mb.iterations = 200;
        mb.warmupIterations = 10;
        mb.interIterationGap = 30 * kUsec;
        MunmapMicrobenchResult r = runMunmapMicrobench(machine, mb);
        const std::uint64_t violations =
            machine.checker()->violations();
        std::printf("%10.1f | %12llu | %12llu | %10.2f\n",
                    delay / 1e6,
                    static_cast<unsigned long long>(violations),
                    static_cast<unsigned long long>(
                        r.lazyBytesPeak / 1024),
                    r.munmapMeanNs / 1000.0);
        if (delay < 2 * kMsec && violations > 0)
            unsafe_seen = true;
        if (delay >= 2 * kMsec && violations > 0)
            safe_at_paper = false;
    }
    bench::rule();
    bench::measuredHeadline(
        "delays under two tick periods %s violate the reuse "
        "invariant; the paper's 2 ms is %s",
        unsafe_seen ? "DO" : "did not (at this load)",
        safe_at_paper ? "safe" : "NOT SAFE (bug)");
    return safe_at_paper ? 0 : 1;
}
