// Extension experiment: the hardware assists the paper's section 7
// proposes for LATR —
//   (a) Intel CAT: allocate the LATR states in reserved LLC ways so
//       sweeps never displace application lines;
//   (b) a globally coherent scratchpad: states bypass the LLC
//       entirely and state save/sweep get cheaper.
// Both are modeled and compared against stock LATR on the Apache
// workload (throughput and application LLC miss ratio).

#include <cstdio>

#include "bench_util.hh"
#include "machine/machine.hh"
#include "workload/webserver.hh"

using namespace latr;

namespace
{

enum class Assist
{
    None,
    Cat,
    Scratchpad,
};

WebServerResult
runCase(Assist assist)
{
    MachineConfig cfg = MachineConfig::commodity2S16C();
    if (assist == Assist::Scratchpad) {
        // States live in the scratchpad: cheaper to write and sweep,
        // and invisible to the LLC.
        cfg.latrScratchpad = true;
        cfg.cost.latrStateSave = 60;
        cfg.cost.latrSweepFixed = 45;
        cfg.cost.latrSweepPerMatch = 12;
    }
    Machine machine(cfg, PolicyKind::Latr);
    if (assist == Assist::Cat) {
        for (NodeId n = 0; n < cfg.sockets; ++n)
            machine.llcOf(n).setLatrReservedWays(1);
    }
    WebServerConfig ws;
    ws.workers = 12;
    ws.processes = 1;
    WebServerWorkload server(machine, ws);
    return server.measure(60 * kMsec, 250 * kMsec);
}

} // namespace

int
main()
{
    const MachineConfig config = MachineConfig::commodity2S16C();
    bench::banner("Extension: hardware assists for LATR",
                  "CAT-partitioned states and scratchpad states",
                  config);
    bench::paperExpectation(
        "section 7: CAT keeps the states out of the application's "
        "LLC share; a coherent scratchpad also removes state-access "
        "time from saves and sweeps");
    bench::rule();

    std::printf("%-14s | %12s | %14s\n", "variant", "req/s",
                "llc app miss");
    bench::rule();
    WebServerResult none = runCase(Assist::None);
    WebServerResult cat = runCase(Assist::Cat);
    WebServerResult pad = runCase(Assist::Scratchpad);
    std::printf("%-14s | %12.0f | %13.3f%%\n", "LATR", none.requestsPerSec,
                100.0 * none.llcAppMissRatio);
    std::printf("%-14s | %12.0f | %13.3f%%\n", "LATR+CAT",
                cat.requestsPerSec, 100.0 * cat.llcAppMissRatio);
    std::printf("%-14s | %12.0f | %13.3f%%\n", "LATR+scratch",
                pad.requestsPerSec, 100.0 * pad.llcAppMissRatio);
    bench::rule();
    bench::measuredHeadline(
        "assists change throughput by %+.2f%% (CAT) / %+.2f%% "
        "(scratchpad) — LATR's software-only footprint was already "
        "small, as table 4 argued",
        100.0 * (cat.requestsPerSec - none.requestsPerSec) /
            none.requestsPerSec,
        100.0 * (pad.requestsPerSec - none.requestsPerSec) /
            none.requestsPerSec);
    return 0;
}
