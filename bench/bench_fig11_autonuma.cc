// Figure 11: impact of NUMA balancing — runtime under LATR normalized
// to Linux, plus page migrations per second, for fluidanimate,
// ocean_cp, graph500, pbzip2, and metis on 16 cores with AutoNUMA
// enabled. LATR's lazy sampling removes the per-sample shootdown
// (5.8%-21.1% of a migration), so migration-heavy workloads gain.

#include <cstdio>

#include "bench_util.hh"
#include "machine/machine.hh"
#include "workload/numabench.hh"

using namespace latr;

int
main()
{
    const MachineConfig config = MachineConfig::commodity2S16C();
    bench::banner("Figure 11",
                  "AutoNUMA: normalized runtime + migrations/s",
                  config);
    bench::paperExpectation(
        "LATR up to 5.7% faster (graph500); gains track the "
        "migration rate; pbzip2 barely moves");
    bench::rule();

    std::printf("%-14s | %12s %12s | %10s | %10s %10s\n", "benchmark",
                "linux_ms", "latr_ms", "latr/linux", "migr/s",
                "samples");
    bench::rule();

    double best = 0;
    const char *best_name = "";
    for (const NumaBenchProfile &profile : numaBenchSuite()) {
        Machine linux_machine(config, PolicyKind::LinuxSync);
        NumaBenchResult linux_r = runNumaBench(linux_machine, profile, 16);
        Machine latr_machine(config, PolicyKind::Latr);
        NumaBenchResult latr_r = runNumaBench(latr_machine, profile, 16);

        const double ratio = static_cast<double>(latr_r.runtimeNs) /
                             static_cast<double>(linux_r.runtimeNs);
        const double improv = 100.0 * (1.0 - ratio);
        std::printf("%-14s | %12.2f %12.2f | %10.4f | %10.0f %10llu\n",
                    profile.name, linux_r.runtimeNs / 1e6,
                    latr_r.runtimeNs / 1e6, ratio,
                    linux_r.migrationsPerSec,
                    static_cast<unsigned long long>(linux_r.samples));
        if (improv > best) {
            best = improv;
            best_name = profile.name;
        }
    }
    bench::rule();
    bench::measuredHeadline("largest improvement %.1f%% (%s)", best,
                            best_name);
    return 0;
}
