// Figure 8: cost of munmap() with an increasing number of pages
// (1..512) on 16 cores, Linux vs. LATR. Per-page page-table work
// amortizes the shootdown, and Linux's full-flush threshold (>32
// pages) caps the invalidation cost; the LATR benefit shrinks from
// ~70% at one page to single digits at 512. Also reports the LATR
// lazy-memory holdback of section 6.4.

#include <cstdio>
#include <vector>

#include "bench_runner.hh"
#include "bench_util.hh"
#include "machine/machine.hh"
#include "workload/microbench.hh"

using namespace latr;

namespace
{

MunmapMicrobenchResult
runPoint(PolicyKind policy, std::uint64_t pages)
{
    Machine machine(MachineConfig::commodity2S16C(), policy);
    MunmapMicrobenchConfig cfg;
    cfg.sharingCores = 16;
    cfg.pages = pages;
    cfg.iterations = 80;
    cfg.warmupIterations = 8;
    cfg.interIterationGap = 60 * kUsec;
    return runMunmapMicrobench(machine, cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    const MachineConfig config = MachineConfig::commodity2S16C();
    bench::banner("Figure 8",
                  "munmap cost vs. page count (16 cores)", config);
    bench::paperExpectation(
        "LATR -70.8% at 1 page, shrinking to -7.5% at 512 pages; "
        "holdback bounded (~21 MB at 16 cores x 512 pages)");
    bench::rule();

    std::printf("%6s | %12s %12s | %12s %12s | %8s | %10s\n", "pages",
                "linux_us", "linux_sd_us", "latr_us", "latr_sd_us",
                "improv", "lazy_KiB");
    bench::rule();

    struct Point
    {
        std::uint64_t pages;
        MunmapMicrobenchResult linuxR;
        MunmapMicrobenchResult latrR;
    };
    bench::ParallelRunner<Point> runner(
        bench::jobsFromArgs(argc, argv));
    for (std::uint64_t pages = 1; pages <= 512; pages *= 2) {
        runner.submit([pages] {
            Point p;
            p.pages = pages;
            p.linuxR = runPoint(PolicyKind::LinuxSync, pages);
            p.latrR = runPoint(PolicyKind::Latr, pages);
            return p;
        });
    }

    bench::JsonWriter json("Figure 8",
                           "munmap cost vs. page count (16 cores)");
    json.config("jobs",
                std::uint64_t{bench::jobsFromArgs(argc, argv)});
    double improv1 = 0, improv512 = 0;
    std::uint64_t holdback512 = 0;
    for (const Point &p : runner.run()) {
        const MunmapMicrobenchResult &linux_r = p.linuxR;
        const MunmapMicrobenchResult &latr_r = p.latrR;
        const double improv =
            100.0 * (linux_r.munmapMeanNs - latr_r.munmapMeanNs) /
            linux_r.munmapMeanNs;
        std::printf(
            "%6llu | %12.2f %12.2f | %12.2f %12.2f | %7.1f%% | %10llu\n",
            static_cast<unsigned long long>(p.pages),
            bench::us(linux_r.munmapMeanNs),
            bench::us(linux_r.shootdownMeanNs),
            bench::us(latr_r.munmapMeanNs),
            bench::us(latr_r.shootdownMeanNs), improv,
            static_cast<unsigned long long>(latr_r.lazyBytesPeak /
                                            1024));
        json.row()
            .num("pages", p.pages)
            .num("linux_us", bench::us(linux_r.munmapMeanNs))
            .num("latr_us", bench::us(latr_r.munmapMeanNs))
            .num("improvement_pct", improv)
            .num("lazy_holdback_bytes", latr_r.lazyBytesPeak);
        if (p.pages == 1)
            improv1 = improv;
        if (p.pages == 512) {
            improv512 = improv;
            holdback512 = latr_r.lazyBytesPeak;
        }
    }
    bench::rule();
    bench::measuredHeadline(
        "improvement %.1f%% at 1 page -> %.1f%% at 512 pages; peak "
        "lazy holdback %llu KiB",
        improv1, improv512,
        static_cast<unsigned long long>(holdback512 / 1024));
    json.headline(
        "improvement %.1f%% at 1 page -> %.1f%% at 512 pages",
        improv1, improv512);
    json.write(bench::jsonPathFromArgs(argc, argv));
    return 0;
}
