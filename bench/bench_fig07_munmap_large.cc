// Figure 7: cost of munmap() (and its shootdown component) for a
// single page on the 8-socket, 120-core large NUMA machine, Linux vs.
// LATR. The IPI fabric's two-hop deliveries and serialized ICR writes
// make Linux collapse beyond ~45 cores.

#include <cstdio>
#include <vector>

#include "bench_runner.hh"
#include "bench_util.hh"
#include "machine/machine.hh"
#include "workload/microbench.hh"

using namespace latr;

namespace
{

MunmapMicrobenchResult
runPoint(PolicyKind policy, unsigned cores)
{
    Machine machine(MachineConfig::largeNuma8S120C(), policy);
    MunmapMicrobenchConfig cfg;
    cfg.sharingCores = cores;
    cfg.pages = 1;
    cfg.iterations = 60;
    cfg.warmupIterations = 8;
    cfg.interIterationGap = 100 * kUsec;
    return runMunmapMicrobench(machine, cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    const MachineConfig config = MachineConfig::largeNuma8S120C();
    bench::banner("Figure 7",
                  "munmap(1 page) cost vs. cores, 8-socket machine",
                  config);
    bench::paperExpectation(
        "Linux >120 us at 120 cores (shootdown up to 82 us, 69.3%); "
        "LATR <40 us (-66.7%)");
    bench::rule();

    std::printf("%6s | %12s %12s | %12s %12s | %8s\n", "cores",
                "linux_us", "linux_sd_us", "latr_us", "latr_sd_us",
                "improv");
    bench::rule();

    const std::vector<unsigned> core_counts = {15, 30, 45, 60,
                                               75, 90, 105, 120};
    struct Point
    {
        unsigned cores;
        MunmapMicrobenchResult linuxR;
        MunmapMicrobenchResult latrR;
    };
    bench::ParallelRunner<Point> runner(
        bench::jobsFromArgs(argc, argv));
    for (unsigned cores : core_counts) {
        runner.submit([cores] {
            Point p;
            p.cores = cores;
            p.linuxR = runPoint(PolicyKind::LinuxSync, cores);
            p.latrR = runPoint(PolicyKind::Latr, cores);
            return p;
        });
    }

    bench::JsonWriter json(
        "Figure 7", "munmap(1 page) cost vs. cores, 8-socket machine");
    json.config("jobs",
                std::uint64_t{bench::jobsFromArgs(argc, argv)});
    double linux120 = 0, latr120 = 0, linux120_sd = 0;
    for (const Point &p : runner.run()) {
        const MunmapMicrobenchResult &linux_r = p.linuxR;
        const MunmapMicrobenchResult &latr_r = p.latrR;
        const double improv =
            linux_r.munmapMeanNs > 0
                ? 100.0 * (linux_r.munmapMeanNs - latr_r.munmapMeanNs) /
                      linux_r.munmapMeanNs
                : 0.0;
        std::printf("%6u | %12.2f %12.2f | %12.2f %12.2f | %7.1f%%\n",
                    p.cores, bench::us(linux_r.munmapMeanNs),
                    bench::us(linux_r.shootdownMeanNs),
                    bench::us(latr_r.munmapMeanNs),
                    bench::us(latr_r.shootdownMeanNs), improv);
        json.row()
            .num("cores", static_cast<std::uint64_t>(p.cores))
            .num("linux_us", bench::us(linux_r.munmapMeanNs))
            .num("linux_sd_us", bench::us(linux_r.shootdownMeanNs))
            .num("latr_us", bench::us(latr_r.munmapMeanNs))
            .num("latr_sd_us", bench::us(latr_r.shootdownMeanNs))
            .num("improvement_pct", improv);
        if (p.cores == 120) {
            linux120 = linux_r.munmapMeanNs;
            latr120 = latr_r.munmapMeanNs;
            linux120_sd = linux_r.shootdownMeanNs;
        }
    }
    bench::rule();
    bench::measuredHeadline(
        "at 120 cores: Linux %.2f us (shootdown %.2f us, %.1f%%), "
        "LATR %.2f us, improvement %.1f%%",
        bench::us(linux120), bench::us(linux120_sd),
        100.0 * linux120_sd / linux120, bench::us(latr120),
        100.0 * (linux120 - latr120) / linux120);
    json.headline(
        "at 120 cores: Linux %.2f us, LATR %.2f us, improvement "
        "%.1f%%",
        bench::us(linux120), bench::us(latr120),
        100.0 * (linux120 - latr120) / linux120);
    json.write(bench::jsonPathFromArgs(argc, argv));
    return 0;
}
