// Table 1: which virtual-address operations admit a lazy TLB
// shootdown. The classification is a property of the operation (can
// the PTE change be deferred without system-wide agreement?) and is
// what LatrPolicy implements: free and migration operations go lazy,
// permission/ownership/remap changes stay synchronous.

#include <cstdio>
#include <string>

#include "bench_runner.hh"
#include "bench_util.hh"
#include "machine/machine.hh"

using namespace latr;

namespace
{

struct OperationRow
{
    const char *classification;
    const char *operation;
    const char *description;
    bool lazyPossible;
};

const OperationRow kRows[] = {
    {"Free", "munmap()", "unmap address range", true},
    {"Free", "madvise()", "free memory range", true},
    {"Migration", "AutoNUMA", "NUMA page migration sampling", true},
    {"Migration", "Page swap", "swap page to disk", true},
    {"Migration", "Deduplication", "share similar pages", true},
    {"Migration", "Compaction", "physical page defrag", true},
    {"Permission", "mprotect()", "change page permission", false},
    {"Ownership", "CoW", "copy on write", false},
    {"Remap", "mremap()", "change physical address", false},
};

} // namespace

int
main(int argc, char **argv)
{
    const MachineConfig config = MachineConfig::commodity2S16C();
    bench::banner("Table 1",
                  "virtual-address operations and lazy feasibility",
                  config);
    bench::paperExpectation(
        "free + migration operations can be lazy; permission, "
        "ownership, and remap cannot");
    bench::rule();

    // One probe machine; routed through the runner so this binary
    // accepts the same --jobs flag as the sweep benches (and stays
    // byte-identical at any job count).
    bench::ParallelRunner<PolicyCapabilities> runner(
        bench::jobsFromArgs(argc, argv));
    runner.submit([&config] {
        Machine machine(config, PolicyKind::Latr);
        return machine.policy().capabilities();
    });
    const PolicyCapabilities caps = runner.run().front();

    bench::JsonWriter json(
        "Table 1", "virtual-address operations and lazy feasibility");
    json.config("jobs",
                std::uint64_t{bench::jobsFromArgs(argc, argv)});
    std::printf("%-12s %-16s %-34s %s\n", "class", "operation",
                "description", "lazy?");
    bench::rule();
    bool consistent = true;
    for (const OperationRow &row : kRows) {
        std::printf("%-12s %-16s %-34s %s\n", row.classification,
                    row.operation, row.description,
                    row.lazyPossible ? "yes" : "no");
        json.row()
            .str("class", row.classification)
            .str("operation", row.operation)
            .str("lazy", row.lazyPossible ? "yes" : "no");
        // Cross-check the implementation's own claims.
        const bool is_free =
            std::string(row.classification) == "Free";
        const bool is_migration =
            std::string(row.classification) == "Migration";
        if (is_free && row.lazyPossible != caps.lazyFreeCapable)
            consistent = false;
        if (is_migration &&
            row.lazyPossible != caps.lazyMigrationCapable)
            consistent = false;
    }
    bench::rule();
    bench::measuredHeadline(
        "LatrPolicy capabilities agree with the table: %s",
        consistent ? "yes" : "NO (bug)");
    json.headline("LatrPolicy capabilities agree with the table: %s",
                  consistent ? "yes" : "NO (bug)");
    json.write(bench::jsonPathFromArgs(argc, argv));
    return consistent ? 0 : 1;
}
