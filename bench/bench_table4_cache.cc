// Table 4: application LLC miss ratio under Linux vs. LATR. Linux's
// IPI handlers displace application lines on remote cores; LATR's
// state sweeps touch a tiny, hot footprint instead, so most
// benchmarks see equal-or-better miss ratios under LATR.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "machine/machine.hh"
#include "workload/parsec.hh"
#include "workload/webserver.hh"

using namespace latr;

namespace
{

struct CacheCase
{
    const char *name;
    bool isApache;
    unsigned cores;
    const char *parsecName;
};

const std::vector<CacheCase> kCases = {
    {"apache_1", true, 1, nullptr},
    {"apache_6", true, 6, nullptr},
    {"apache_12", true, 12, nullptr},
    {"canneal_16", false, 16, "canneal"},
    {"dedup_16", false, 16, "dedup"},
    {"ferret_16", false, 16, "ferret"},
    {"streamcluster_16", false, 16, "streamcluster"},
    {"swaptions_16", false, 16, "swaptions"},
};

double
missRatio(PolicyKind policy, const CacheCase &c)
{
    Machine machine(MachineConfig::commodity2S16C(), policy);
    if (c.isApache) {
        WebServerConfig cfg;
        cfg.workers = c.cores;
        cfg.processes = 1;
        // A long warmup so the cache reaches steady state under the
        // slower policy too — otherwise the measured window starts
        // colder for whichever system serves fewer requests, which
        // would masquerade as a policy effect.
        WebServerWorkload server(machine, cfg);
        WebServerResult r = server.measure(600 * kMsec, 300 * kMsec);
        return r.llcAppMissRatio;
    }
    ParsecProfile profile = parsecProfile(c.parsecName);
    profile.itersPerCore /= 2; // cache ratios converge quickly
    ParsecResult r = runParsec(machine, profile, c.cores);
    return r.llcAppMissRatio;
}

} // namespace

int
main()
{
    const MachineConfig config = MachineConfig::commodity2S16C();
    bench::banner("Table 4", "application LLC miss ratio", config);
    bench::paperExpectation(
        "LATR within -3.3%..+0.8% relative change of Linux; mostly "
        "slightly better (no IPI handler pollution)");
    bench::rule();

    std::printf("%-18s | %10s %10s | %10s\n", "case", "linux_miss",
                "latr_miss", "rel_change");
    bench::rule();

    double worst_regression = 0;
    for (const CacheCase &c : kCases) {
        const double linux_m = missRatio(PolicyKind::LinuxSync, c);
        const double latr_m = missRatio(PolicyKind::Latr, c);
        const double rel =
            linux_m > 0 ? 100.0 * (latr_m - linux_m) / linux_m : 0.0;
        std::printf("%-18s | %9.2f%% %9.2f%% | %+9.2f%%\n", c.name,
                    100.0 * linux_m, 100.0 * latr_m, rel);
        if (rel > worst_regression)
            worst_regression = rel;
    }
    bench::rule();
    bench::measuredHeadline(
        "worst relative miss-ratio regression under LATR: %+.2f%%",
        worst_regression);
    return 0;
}
