/**
 * @file
 * Parallel driver for the figure/table benches. Every bench point is
 * an independent (policy, config, seed) machine simulation, so the
 * sweep is embarrassingly parallel: submit each point as a job, run
 * the jobs across a std::thread pool, and read the results back in
 * submission order. Printing happens only after collection, on the
 * submitting thread, so the output is byte-identical whatever the
 * job count — `--jobs=1` is plain sequential execution.
 *
 * Machines share no mutable state (the only process-wide globals are
 * the log level, which runs read-only, and stdio, which jobs must not
 * touch), so jobs need no locking.
 */

#ifndef LATR_BENCH_BENCH_RUNNER_HH_
#define LATR_BENCH_BENCH_RUNNER_HH_

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

namespace latr::bench
{

/**
 * `--jobs=N` from the bench's argv. N=0 (or the flag absent) means
 * one job per hardware thread.
 */
inline unsigned
jobsFromArgs(int argc, char **argv)
{
    unsigned jobs = 0;
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], "--jobs=", 7) == 0)
            jobs = static_cast<unsigned>(std::atoi(argv[i] + 7));
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    return jobs;
}

/**
 * `--sim-threads=N` from the bench's argv: the engine-internal
 * parallel-dispatch thread count (MachineConfig::simThreads). 0 (the
 * default, and the flag absent) keeps the classic sequential engine.
 * Orthogonal to `--jobs`: jobs parallelize across independent
 * machines, sim-threads parallelize event execution inside one
 * machine — and neither may change any simulated result.
 */
inline unsigned
simThreadsFromArgs(int argc, char **argv)
{
    unsigned threads = 0;
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], "--sim-threads=", 14) == 0)
            threads =
                static_cast<unsigned>(std::atoi(argv[i] + 14));
    return threads;
}

/**
 * `--pin-sim-threads` from the bench's argv: pin the parallel
 * engine's worker threads to host CPUs
 * (MachineConfig::pinSimThreads). Off by default so `--jobs` sweeps
 * and concurrent shards don't stack every machine's workers on the
 * same host cores; turn on for single-machine throughput runs on an
 * idle host.
 */
inline bool
pinSimThreadsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--pin-sim-threads") == 0)
            return true;
    return false;
}

/**
 * Collects closures returning R and runs them across a thread pool.
 * Results land in submission order regardless of completion order.
 */
template <typename R>
class ParallelRunner
{
  public:
    /** @param jobs worker count; 1 runs inline on the caller. */
    explicit ParallelRunner(unsigned jobs) : jobs_(jobs ? jobs : 1) {}

    /** Queue a job. @return its index into run()'s result vector. */
    std::size_t
    submit(std::function<R()> job)
    {
        pending_.push_back(std::move(job));
        return pending_.size() - 1;
    }

    /**
     * Run every submitted job and return their results in submission
     * order. Clears the pending list, so a runner can be reused for
     * a second wave.
     */
    std::vector<R>
    run()
    {
        std::vector<R> results(pending_.size());
        if (jobs_ == 1) {
            for (std::size_t i = 0; i < pending_.size(); ++i)
                results[i] = pending_[i]();
        } else {
            std::atomic<std::size_t> next{0};
            auto worker = [&]() {
                for (;;) {
                    const std::size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= pending_.size())
                        return;
                    results[i] = pending_[i]();
                }
            };
            const unsigned n =
                static_cast<unsigned>(std::min<std::size_t>(
                    jobs_, pending_.size() ? pending_.size() : 1));
            std::vector<std::thread> pool;
            pool.reserve(n);
            for (unsigned t = 0; t < n; ++t)
                pool.emplace_back(worker);
            for (std::thread &t : pool)
                t.join();
        }
        pending_.clear();
        return results;
    }

  private:
    unsigned jobs_;
    std::vector<std::function<R()>> pending_;
};

} // namespace latr::bench

#endif // LATR_BENCH_BENCH_RUNNER_HH_
