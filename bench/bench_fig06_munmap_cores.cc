// Figure 6: cost of munmap() (and its TLB-shootdown component) for a
// single page as the number of sharing cores grows from 1 to 16 on
// the 2-socket commodity machine, Linux vs. LATR.

#include <cstdio>
#include <vector>

#include "bench_runner.hh"
#include "bench_util.hh"
#include "machine/machine.hh"
#include "workload/microbench.hh"

using namespace latr;

namespace
{

MunmapMicrobenchResult
runPoint(PolicyKind policy, unsigned cores)
{
    Machine machine(MachineConfig::commodity2S16C(), policy);
    MunmapMicrobenchConfig cfg;
    cfg.sharingCores = cores;
    cfg.pages = 1;
    cfg.iterations = 200;
    cfg.warmupIterations = 20;
    return runMunmapMicrobench(machine, cfg);
}

/**
 * A --trace run records a dedicated 16-core LATR capture, paced with
 * no inter-iteration gap so the state ring also exercises its
 * IPI-fallback path — the full lifecycle (munmap, state save, sweep,
 * fallback IPIs, reclamation) lands in one timeline. The measured
 * table above is untouched.
 */
void
capturePoint(const bench::TraceOptions &trace)
{
    Machine machine(MachineConfig::commodity2S16C(),
                    PolicyKind::Latr);
    bench::applyTrace(machine, trace);
    MunmapMicrobenchConfig cfg;
    cfg.sharingCores = 16;
    cfg.pages = 1;
    cfg.iterations = 200;
    cfg.warmupIterations = 0;
    cfg.interIterationGap = 0;
    runMunmapMicrobench(machine, cfg);
    bench::finishTrace(machine, trace);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::TraceOptions trace =
        bench::traceOptionsFromArgs(argc, argv);
    const MachineConfig config = MachineConfig::commodity2S16C();
    bench::banner("Figure 6", "munmap(1 page) cost vs. sharing cores",
                  config);
    bench::paperExpectation(
        "Linux ~8 us at 16 cores (71.6% shootdown); LATR ~2.4 us "
        "(-70.8%)");
    bench::rule();

    std::printf("%6s | %12s %12s | %12s %12s | %8s\n", "cores",
                "linux_us", "linux_sd_us", "latr_us", "latr_sd_us",
                "improv");
    bench::rule();

    const std::vector<unsigned> core_counts = {1, 2, 4, 6, 8,
                                               10, 12, 14, 16};
    // Each (cores) point is an independent pair of machine
    // simulations; the runner computes them across worker threads and
    // hands the results back in submission order, so stdout is
    // byte-identical to a --jobs=1 run.
    struct Point
    {
        unsigned cores;
        MunmapMicrobenchResult linuxR;
        MunmapMicrobenchResult latrR;
    };
    bench::ParallelRunner<Point> runner(
        bench::jobsFromArgs(argc, argv));
    for (unsigned cores : core_counts) {
        runner.submit([cores] {
            Point p;
            p.cores = cores;
            p.linuxR = runPoint(PolicyKind::LinuxSync, cores);
            p.latrR = runPoint(PolicyKind::Latr, cores);
            return p;
        });
    }

    bench::JsonWriter json("Figure 6",
                           "munmap(1 page) cost vs. sharing cores");
    json.config("jobs",
                std::uint64_t{bench::jobsFromArgs(argc, argv)});
    double linux16 = 0, latr16 = 0, linux16_sd = 0;
    for (const Point &p : runner.run()) {
        const MunmapMicrobenchResult &linux_r = p.linuxR;
        const MunmapMicrobenchResult &latr_r = p.latrR;
        const double improv =
            linux_r.munmapMeanNs > 0
                ? 100.0 * (linux_r.munmapMeanNs - latr_r.munmapMeanNs) /
                      linux_r.munmapMeanNs
                : 0.0;
        std::printf("%6u | %12.2f %12.2f | %12.2f %12.2f | %7.1f%%\n",
                    p.cores, bench::us(linux_r.munmapMeanNs),
                    bench::us(linux_r.shootdownMeanNs),
                    bench::us(latr_r.munmapMeanNs),
                    bench::us(latr_r.shootdownMeanNs), improv);
        json.row()
            .num("cores", static_cast<std::uint64_t>(p.cores))
            .num("linux_us", bench::us(linux_r.munmapMeanNs))
            .num("linux_sd_us", bench::us(linux_r.shootdownMeanNs))
            .num("latr_us", bench::us(latr_r.munmapMeanNs))
            .num("latr_sd_us", bench::us(latr_r.shootdownMeanNs))
            .num("improvement_pct", improv);
        if (p.cores == 16) {
            linux16 = linux_r.munmapMeanNs;
            latr16 = latr_r.munmapMeanNs;
            linux16_sd = linux_r.shootdownMeanNs;
        }
    }
    bench::rule();
    bench::measuredHeadline(
        "at 16 cores: Linux %.2f us (shootdown share %.1f%%), LATR "
        "%.2f us, improvement %.1f%%",
        bench::us(linux16), 100.0 * linux16_sd / linux16,
        bench::us(latr16), 100.0 * (linux16 - latr16) / linux16);
    json.headline(
        "at 16 cores: Linux %.2f us, LATR %.2f us, improvement %.1f%%",
        bench::us(linux16), bench::us(latr16),
        100.0 * (linux16 - latr16) / linux16);
    json.write(bench::jsonPathFromArgs(argc, argv));
    if (trace.wanted())
        capturePoint(trace);
    return 0;
}
