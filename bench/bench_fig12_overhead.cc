// Figure 12: LATR's overhead on applications with few TLB shootdowns
// — single-core nginx (sendfile, no per-request mapping) and Apache,
// plus the five quietest PARSEC benchmarks on 16 cores. Performance
// under LATR normalized to Linux should sit within a couple percent
// of 1.0 either way.

#include <cstdio>

#include "bench_util.hh"
#include "workload/lowshootdown.hh"

using namespace latr;

int
main()
{
    const MachineConfig config = MachineConfig::commodity2S16C();
    bench::banner("Figure 12",
                  "overhead on applications with few shootdowns",
                  config);
    bench::paperExpectation(
        "at most 1.7% slowdown (canneal); some cases slightly "
        "faster under LATR");
    bench::rule();

    std::printf("%-18s | %14s %14s | %12s | %10s\n", "case",
                "linux_perf", "latr_perf", "latr/linux", "shootdn/s");
    bench::rule();

    double worst = 0.0;
    const char *worst_name = "";
    for (const LowShootdownCase &c : lowShootdownCases()) {
        LowShootdownResult linux_r =
            runLowShootdownCase(config, PolicyKind::LinuxSync, c);
        LowShootdownResult latr_r =
            runLowShootdownCase(config, PolicyKind::Latr, c);
        const double ratio =
            linux_r.performance > 0
                ? latr_r.performance / linux_r.performance
                : 0.0;
        std::printf("%-18s | %14.4g %14.4g | %12.4f | %10.0f\n",
                    c.name, linux_r.performance, latr_r.performance,
                    ratio, linux_r.shootdownsPerSec);
        const double overhead = 100.0 * (1.0 - ratio);
        if (overhead > worst) {
            worst = overhead;
            worst_name = c.name;
        }
    }
    bench::rule();
    bench::measuredHeadline("worst overhead %.2f%% (%s)", worst,
                            worst_name[0] ? worst_name : "none");
    return 0;
}
