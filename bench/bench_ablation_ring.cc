// Ablation: LATR ring size. The paper fixes 64 states per core and
// notes the trade-off (section 8): a smaller ring overflows into
// fallback IPIs under free-heavy load; a larger one costs sweep time
// and LLC footprint. This bench sweeps the ring size under a
// munmap-heavy load and reports the fallback rate and the mean
// munmap latency.

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "machine/machine.hh"
#include "workload/microbench.hh"

using namespace latr;

int
main()
{
    MachineConfig config = MachineConfig::commodity2S16C();
    bench::banner("Ablation: ring size",
                  "LATR states per core vs. fallback-IPI rate",
                  config);
    bench::paperExpectation(
        "section 8: 64 states balance fallback rate against sweep "
        "cost; the Apache run never falls back");
    bench::rule();

    std::printf("%8s | %10s %12s | %12s | %10s\n", "states",
                "fallbacks", "states_saved", "fallback_%",
                "munmap_us");
    bench::rule();

    // A deliberately hot free loop: ~25 us between munmaps, which a
    // 64-slot ring absorbs against the 2 ms reclamation horizon
    // (needs ~80 slots of headroom at this rate) only barely.
    for (unsigned ring : {4u, 8u, 16u, 32u, 64u, 128u}) {
        MachineConfig cfg = config;
        cfg.latrStatesPerCore = ring;
        Machine machine(cfg, PolicyKind::Latr);
        MunmapMicrobenchConfig mb;
        mb.sharingCores = 8;
        mb.pages = 1;
        mb.iterations = 250;
        mb.warmupIterations = 10;
        mb.interIterationGap = 20 * kUsec;
        MunmapMicrobenchResult r = runMunmapMicrobench(machine, mb);
        const std::uint64_t saved =
            machine.stats().counterValue("latr.states_saved");
        const std::uint64_t ops = saved + r.latrFallbacks;
        std::printf("%8u | %10llu %12llu | %11.1f%% | %10.2f\n", ring,
                    static_cast<unsigned long long>(r.latrFallbacks),
                    static_cast<unsigned long long>(saved),
                    ops ? 100.0 * r.latrFallbacks / ops : 0.0,
                    r.munmapMeanNs / 1000.0);
        if (machine.checker()->violations() != 0) {
            std::printf("INVARIANT VIOLATED\n");
            return 1;
        }
    }
    bench::rule();
    bench::measuredHeadline(
        "small rings push the latency back toward the Linux IPI "
        "path; the paper's 64 holds the line at this rate");
    return 0;
}
