// Figures 1 and 9: Apache throughput (requests/s) and TLB shootdowns
// per second vs. serving cores on the 2-socket machine, for Linux,
// ABIS, and LATR. Apache's mpm_event mmap()s and munmap()s the served
// file per request, so munmap cost — and the mmap_sem hold across the
// synchronous shootdown — caps its scaling under Linux.

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "machine/machine.hh"
#include "workload/webserver.hh"

using namespace latr;

namespace
{

WebServerResult
runPoint(PolicyKind policy, unsigned workers)
{
    Machine machine(MachineConfig::commodity2S16C(), policy);
    WebServerConfig cfg;
    cfg.workers = workers;
    cfg.processes = 1;
    WebServerWorkload server(machine, cfg);
    return server.measure(60 * kMsec, 300 * kMsec);
}

} // namespace

int
main()
{
    const MachineConfig config = MachineConfig::commodity2S16C();
    bench::banner("Figure 9 (and Figure 1)",
                  "Apache requests/s and shootdowns/s vs. cores",
                  config);
    bench::paperExpectation(
        "LATR +59.9% over Linux and +37.9% over ABIS at 12 cores; "
        "ABIS below Linux under 8 cores; LATR handles ~46% more "
        "shootdowns/s");
    bench::rule();

    std::printf("%6s | %10s %10s %10s | %10s %10s %10s\n", "cores",
                "linux_rps", "abis_rps", "latr_rps", "linux_sd/s",
                "abis_sd/s", "latr_sd/s");
    bench::rule();

    const std::vector<unsigned> worker_counts = {1, 2, 4, 6, 8, 10, 12};
    double linux12 = 0, abis12 = 0, latr12 = 0;
    double linux12_sd = 0, latr12_sd = 0;
    for (unsigned workers : worker_counts) {
        WebServerResult linux_r = runPoint(PolicyKind::LinuxSync, workers);
        WebServerResult abis_r = runPoint(PolicyKind::Abis, workers);
        WebServerResult latr_r = runPoint(PolicyKind::Latr, workers);
        std::printf("%6u | %10.0f %10.0f %10.0f | %10.0f %10.0f %10.0f\n",
                    workers, linux_r.requestsPerSec,
                    abis_r.requestsPerSec, latr_r.requestsPerSec,
                    linux_r.shootdownsPerSec, abis_r.shootdownsPerSec,
                    latr_r.shootdownsPerSec);
        if (workers == 12) {
            linux12 = linux_r.requestsPerSec;
            abis12 = abis_r.requestsPerSec;
            latr12 = latr_r.requestsPerSec;
            linux12_sd = linux_r.shootdownsPerSec;
            latr12_sd = latr_r.shootdownsPerSec;
        }
    }
    bench::rule();
    bench::measuredHeadline(
        "at 12 cores: LATR %+.1f%% vs Linux, %+.1f%% vs ABIS; "
        "LATR handles %+.1f%% more shootdowns/s than Linux",
        100.0 * (latr12 - linux12) / linux12,
        100.0 * (latr12 - abis12) / abis12,
        100.0 * (latr12_sd - linux12_sd) / linux12_sd);
    return 0;
}
