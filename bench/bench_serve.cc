// bench_serve: the open-loop serving scenario (src/serve/) across
// every coherence policy — the tail-latency figure the paper leads
// with. One .latrace arrival stream is generated once (seeded, so
// byte-stable) and replayed against all five policies; the rows
// report p50/p99/p999 request latency, completed requests/s, and the
// run digest. `--per-tenant` additionally keeps one latency
// histogram per tenant slot and emits tenantN_p99_us fields on every
// JSON row.
//
// The LATR, Linux, and Predictive rows also run on the parallel
// batched engine (`--sim-threads=N`, default 4) as serve_latr_tN /
// serve_linux_tN / serve_pred_tN.
// Simulated results must be byte-identical to the sequential rows —
// the bench exits 3 if a digest diverges, a standing record/replay +
// parallel-engine equivalence check.
//
// `--json=FILE` writes the rows in the shared BENCH_*.json shape.
// `--check-against=BASELINE.json` exits nonzero when a policy's p99
// grows more than --max-regression (default 0.30) above the
// baseline, or when a baseline scenario is missing from the run —
// the CI tail-latency gate. Unlike the wall-clock gates, these rows
// are simulated time: deterministic on one build, immune to host
// noise.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_runner.hh"
#include "bench_util.hh"
#include "machine/machine.hh"
#include "serve/latrace.hh"
#include "serve/serve.hh"
#include "tlbcoh/policy.hh"

using namespace latr;

namespace
{

struct ServeRow
{
    std::string name;
    PolicyKind kind;
    unsigned simThreads;
    ServeResult result;
    /** Host wall time of the replay, for the _tN speedup ratio. */
    double wallSec = 0;
    /** wall(sequential twin) / wall(this row); 0 for sequential. */
    double speedup = 0;
};

ServeRow
runPolicy(const std::string &name, PolicyKind kind,
          unsigned sim_threads, bool pin, const Latrace &trace,
          const ServeOptions &options)
{
    MachineConfig config = MachineConfig::commodity2S16C();
    config.simThreads = sim_threads;
    config.pinSimThreads = pin;
    Machine machine(config, kind);
    const auto start = std::chrono::steady_clock::now();
    ServeResult result = runServeTrace(machine, trace, options);
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    return ServeRow{name, kind, sim_threads, result, wall, 0};
}

/** (scenario, p99_us) rows of an earlier BENCH_serve.json. */
std::vector<std::pair<std::string, double>>
baselineScenarios(const std::string &path)
{
    std::vector<std::pair<std::string, double>> out;
    std::ifstream in(path);
    if (!in)
        return out;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    std::size_t at = 0;
    while ((at = text.find("\"scenario\": \"", at)) !=
           std::string::npos) {
        at += 13;
        const std::size_t end = text.find('"', at);
        if (end == std::string::npos)
            break;
        const std::string name = text.substr(at, end - at);
        const std::size_t p99 = text.find("\"p99_us\":", end);
        if (p99 == std::string::npos)
            break;
        out.emplace_back(
            name, std::strtod(text.c_str() + p99 + 9, nullptr));
        at = end;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string checkAgainst;
    double maxRegression = 0.30;
    double minSpeedup = 1.3;
    ServeOptions serveOptions;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--check-against=", 16) == 0)
            checkAgainst = argv[i] + 16;
        else if (std::strncmp(argv[i], "--max-regression=", 17) == 0)
            maxRegression = std::atof(argv[i] + 17);
        else if (std::strncmp(argv[i], "--min-speedup=", 14) == 0)
            minSpeedup = std::atof(argv[i] + 14);
        else if (std::strcmp(argv[i], "--per-tenant") == 0)
            serveOptions.perTenantLatency = true;
    }
    if (maxRegression > 1.0)
        maxRegression /= 100.0;
    unsigned simThreads = bench::simThreadsFromArgs(argc, argv);
    if (simThreads == 0)
        simThreads = 4;
    const bool pinSim = bench::pinSimThreadsFromArgs(argc, argv);

    const MachineConfig config = MachineConfig::commodity2S16C();
    bench::banner("Serve",
                  "open-loop serving tail latency (src/serve/)",
                  config);
    bench::paperExpectation(
        "lazy shootdowns keep request tails flat where synchronous "
        "IPIs compound into queueing delay (figure 1 regime)");
    bench::rule();

    const ServeConfig scenario; // the default open-loop scenario
    const Latrace trace = generateServeTrace(scenario);
    std::printf("scenario: %.0f req/s for %llu ms, %u workers, "
                "%u tenants, %llu ops\n",
                scenario.arrivalRatePerSec,
                static_cast<unsigned long long>(scenario.duration /
                                                kMsec),
                scenario.workers, scenario.tenants,
                static_cast<unsigned long long>(trace.records.size()));
    bench::rule();
    std::printf("%-16s | %9s %9s %9s | %10s\n", "scenario",
                "p50_us", "p99_us", "p999_us", "req/s");
    bench::rule();

    char latrT[32], linuxT[32], predT[32];
    std::snprintf(latrT, sizeof latrT, "serve_latr_t%u", simThreads);
    std::snprintf(linuxT, sizeof linuxT, "serve_linux_t%u",
                  simThreads);
    std::snprintf(predT, sizeof predT, "serve_pred_t%u", simThreads);

    std::vector<ServeRow> rows;
    rows.push_back(
        runPolicy("serve_linux", PolicyKind::LinuxSync, 0, false,
                  trace, serveOptions));
    rows.push_back(runPolicy("serve_latr", PolicyKind::Latr, 0,
                             false, trace, serveOptions));
    rows.push_back(runPolicy("serve_abis", PolicyKind::Abis, 0,
                             false, trace, serveOptions));
    rows.push_back(runPolicy("serve_barrelfish",
                             PolicyKind::Barrelfish, 0, false, trace,
                             serveOptions));
    rows.push_back(runPolicy("serve_pred", PolicyKind::Predictive, 0,
                             false, trace, serveOptions));
    rows.push_back(runPolicy(linuxT, PolicyKind::LinuxSync,
                             simThreads, pinSim, trace,
                             serveOptions));
    rows.push_back(runPolicy(latrT, PolicyKind::Latr, simThreads,
                             pinSim, trace, serveOptions));
    // The threaded Predictive row is the end-to-end check for the
    // offloaded prediction-verify compute() phase under real serving
    // load; its digest must match serve_pred's.
    rows.push_back(runPolicy(predT, PolicyKind::Predictive,
                             simThreads, pinSim, trace,
                             serveOptions));

    // The _tN-vs-sequential wall-clock ratio, the number the parallel
    // engine exists for. Host-dependent (unlike everything simulated
    // above), so the JSON records the host CPU count next to it and
    // the gate below only arms when the host can actually run the
    // lanes concurrently.
    const unsigned hostCpus = std::thread::hardware_concurrency();
    for (ServeRow &row : rows) {
        if (row.simThreads == 0)
            continue;
        for (const ServeRow &base : rows)
            if (base.simThreads == 0 && base.kind == row.kind &&
                row.wallSec > 0)
                row.speedup = base.wallSec / row.wallSec;
    }

    bench::JsonWriter json(
        "Serve", "open-loop serving tail latency (src/serve/)");
    json.config("sim_threads", std::uint64_t{simThreads})
        .config("pin_sim_threads", std::uint64_t{pinSim ? 1u : 0u})
        .config("host_cpus", std::uint64_t{hostCpus})
        .config("arrival_rate",
                static_cast<std::uint64_t>(
                    scenario.arrivalRatePerSec))
        .config("duration_ticks",
                static_cast<std::uint64_t>(scenario.duration))
        .config("workers", std::uint64_t{scenario.workers})
        .config("tenants", std::uint64_t{scenario.tenants})
        .config("seed", scenario.seed)
        .config("jobs", std::uint64_t{1});

    if (serveOptions.perTenantLatency)
        json.config("per_tenant", std::uint64_t{1});

    double linuxP99 = 0;
    double latrP99 = 0;
    double predP99 = 0;
    for (const ServeRow &row : rows) {
        const ServeResult &r = row.result;
        std::printf("%-16s | %9.1f %9.1f %9.1f | %10.0f\n",
                    row.name.c_str(), bench::us(r.p50()),
                    bench::us(r.p99()), bench::us(r.p999()),
                    r.requestsPerSec);
        char digest[24];
        std::snprintf(digest, sizeof digest, "%016llx",
                      static_cast<unsigned long long>(r.digest));
        auto &jr = json.row();
        jr.str("scenario", row.name)
            .num("p50_us", bench::us(r.p50()))
            .num("p99_us", bench::us(r.p99()))
            .num("p999_us", bench::us(r.p999()))
            .num("mean_us", r.latency.mean() / 1000.0)
            .num("requests_per_sec", r.requestsPerSec)
            .num("shootdowns_per_sec", r.shootdownsPerSec)
            .num("completed", r.completed)
            .num("dropped_churn", r.droppedChurn)
            .num("wall_sec", row.wallSec);
        if (row.simThreads > 0)
            jr.num("speedup_vs_seq", row.speedup);
        // Per-tenant tail view (--per-tenant): one p99/count pair
        // per tenant slot, aggregated across churn generations.
        for (std::size_t t = 0; t < r.tenantLatency.size(); ++t) {
            char key[40];
            std::snprintf(key, sizeof key, "tenant%zu_p99_us", t);
            jr.num(key, bench::us(r.tenantLatency[t].percentile(0.99)));
            std::snprintf(key, sizeof key, "tenant%zu_completed", t);
            jr.num(key, r.tenantLatency[t].count());
        }
        jr.str("digest", digest);
        if (row.name == "serve_linux")
            linuxP99 = bench::us(r.p99());
        else if (row.name == "serve_latr")
            latrP99 = bench::us(r.p99());
        else if (row.name == "serve_pred")
            predP99 = bench::us(r.p99());
    }
    bench::rule();

    // The standing equivalence check: the threaded rows replay the
    // same trace and must digest identically to their sequential
    // twins — record/replay and the parallel engine are both
    // model-preserving or this bench refuses to report.
    for (const ServeRow &row : rows) {
        if (row.simThreads == 0)
            continue;
        for (const ServeRow &base : rows) {
            if (base.simThreads == 0 && base.kind == row.kind &&
                base.result.digest != row.result.digest) {
                std::fprintf(
                    stderr,
                    "bench_serve: %s digest %016llx != %s digest "
                    "%016llx — the parallel engine changed the "
                    "simulation\n",
                    row.name.c_str(),
                    static_cast<unsigned long long>(
                        row.result.digest),
                    base.name.c_str(),
                    static_cast<unsigned long long>(
                        base.result.digest));
                return 3;
            }
        }
    }

    bench::measuredHeadline(
        "LATR p99 %.1f us vs Linux p99 %.1f us (%.1fx); Predictive "
        "p99 %.1f us (%+.1f%% vs LATR)",
        latrP99, linuxP99, latrP99 > 0 ? linuxP99 / latrP99 : 0.0,
        predP99,
        latrP99 > 0 ? 100.0 * (predP99 - latrP99) / latrP99 : 0.0);
    json.headline(
        "LATR p99 %.1f us vs Linux p99 %.1f us (%.1fx); Predictive "
        "p99 %.1f us (%+.1f%% vs LATR)",
        latrP99, linuxP99, latrP99 > 0 ? linuxP99 / latrP99 : 0.0,
        predP99,
        latrP99 > 0 ? 100.0 * (predP99 - latrP99) / latrP99 : 0.0);
    json.baselineFile(checkAgainst);
    json.write(bench::jsonPathFromArgs(argc, argv));

    if (!checkAgainst.empty()) {
        const auto baseline = baselineScenarios(checkAgainst);
        if (baseline.empty()) {
            std::fprintf(stderr,
                         "bench_serve: cannot read any scenario rows "
                         "from baseline '%s'\n",
                         checkAgainst.c_str());
            return 2;
        }
        bool failed = false;
        for (const auto &base : baseline) {
            const ServeRow *measured = nullptr;
            for (const ServeRow &row : rows)
                if (base.first == row.name)
                    measured = &row;
            if (!measured) {
                std::fprintf(
                    stderr,
                    "bench_serve: baseline scenario '%s' missing "
                    "from this run (have:",
                    base.first.c_str());
                for (const ServeRow &row : rows)
                    std::fprintf(stderr, " %s", row.name.c_str());
                std::fprintf(stderr,
                             "); re-run with matching --sim-threads "
                             "or refresh the baseline\n");
                return 2;
            }
            // Tail latency gates upward: regression = p99 above the
            // baseline's ceiling.
            const double ceiling =
                base.second * (1.0 + maxRegression);
            const double got = bench::us(measured->result.p99());
            std::printf("tail gate [%s]: p99 %.1f us vs baseline "
                        "%.1f (ceiling %.1f): %s\n",
                        base.first.c_str(), got, base.second, ceiling,
                        got <= ceiling ? "ok" : "REGRESSION");
            if (got > ceiling)
                failed = true;
        }
        // The wall-clock speedup gate: the LATR _tN row must beat its
        // sequential twin by --min-speedup. Armed only when the host
        // has a CPU per compute lane — anywhere else (CI containers,
        // oversubscribed shells) the executor correctly declines to
        // offload and the ratio measures scheduler noise, not the
        // engine.
        for (const ServeRow &row : rows) {
            if (row.kind != PolicyKind::Latr || row.simThreads == 0)
                continue;
            if (hostCpus < row.simThreads) {
                std::printf(
                    "speedup gate [%s]: skipped (host has %u CPUs "
                    "for %u lanes; measured %.2fx)\n",
                    row.name.c_str(), hostCpus, row.simThreads,
                    row.speedup);
                continue;
            }
            std::printf("speedup gate [%s]: %.2fx vs sequential "
                        "(floor %.2fx): %s\n",
                        row.name.c_str(), row.speedup, minSpeedup,
                        row.speedup >= minSpeedup ? "ok"
                                                  : "REGRESSION");
            if (row.speedup < minSpeedup)
                failed = true;
        }
        if (failed)
            return 1;
    }
    return 0;
}
