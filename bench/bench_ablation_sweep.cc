// Ablation: where LATR sweeps. The paper sweeps at scheduler ticks
// AND at context switches ("whichever event happens first",
// section 4.1). Disabling the context-switch sweep isolates the
// ticks' contribution: on a switch-heavy, oversubscribed workload
// (the canneal profile), switch sweeps shorten the stale-entry
// window and spread the sweep work, at the price of more frequent
// sweeping.

#include <cstdio>

#include "bench_util.hh"
#include "machine/machine.hh"
#include "workload/parsec.hh"

using namespace latr;

namespace
{

struct SweepResult
{
    Duration runtime;
    std::uint64_t sweeps;
    std::uint64_t matches;
};

SweepResult
runCase(bool sweep_at_switch)
{
    MachineConfig cfg = MachineConfig::commodity2S16C();
    cfg.latrSweepAtContextSwitch = sweep_at_switch;
    Machine machine(cfg, PolicyKind::Latr);
    ParsecProfile profile = parsecProfile("canneal");
    profile.itersPerCore = 3000;
    // Give canneal some free traffic so sweeps have work to do.
    profile.madviseEvery = 16;
    profile.madvisePages = 8;
    ParsecResult r = runParsec(machine, profile, 16);
    SweepResult out;
    out.runtime = r.runtimeNs;
    out.sweeps = machine.stats().counterValue("latr.sweeps");
    out.matches = machine.stats().counterValue("latr.sweep_matches");
    return out;
}

} // namespace

int
main()
{
    MachineConfig config = MachineConfig::commodity2S16C();
    bench::banner("Ablation: sweep sites",
                  "tick-only sweeps vs. tick+context-switch sweeps",
                  config);
    bench::paperExpectation(
        "section 4.1: the shootdown is performed at the scheduler "
        "tick or a context switch, whichever happens first");
    bench::rule();

    SweepResult both = runCase(true);
    SweepResult tick_only = runCase(false);

    std::printf("%-22s | %12s | %10s | %12s\n", "configuration",
                "runtime_ms", "sweeps", "matches");
    bench::rule();
    std::printf("%-22s | %12.2f | %10llu | %12llu\n",
                "ticks + switches", both.runtime / 1e6,
                static_cast<unsigned long long>(both.sweeps),
                static_cast<unsigned long long>(both.matches));
    std::printf("%-22s | %12.2f | %10llu | %12llu\n", "ticks only",
                tick_only.runtime / 1e6,
                static_cast<unsigned long long>(tick_only.sweeps),
                static_cast<unsigned long long>(tick_only.matches));
    bench::rule();
    bench::measuredHeadline(
        "switch sweeps add %.1fx sweep invocations on this "
        "switch-heavy load; runtime delta %.2f%%",
        tick_only.sweeps
            ? static_cast<double>(both.sweeps) / tick_only.sweeps
            : 0.0,
        100.0 * (static_cast<double>(both.runtime) -
                 static_cast<double>(tick_only.runtime)) /
            static_cast<double>(tick_only.runtime));
    return 0;
}
