// Table 2: comparison of TLB-shootdown approaches. The four software
// approaches implemented in this repository report their own
// properties; the hardware rows of the paper's table are quoted as
// literature (they require silicon changes by definition).

#include <cstdio>

#include "bench_util.hh"
#include "machine/machine.hh"

using namespace latr;

namespace
{

void
printRow(const char *name, const PolicyCapabilities &caps)
{
    auto yn = [](bool b) { return b ? "yes" : "-"; };
    std::printf("%-12s %-6s %-8s %-10s %-12s\n", name,
                yn(caps.asynchronous), yn(caps.nonIpiBased),
                yn(caps.noRemoteCoreInvolvement),
                yn(caps.noHardwareChanges));
}

} // namespace

int
main()
{
    const MachineConfig config = MachineConfig::commodity2S16C();
    bench::banner("Table 2", "comparison of shootdown approaches",
                  config);
    bench::paperExpectation(
        "only LATR is asynchronous, non-IPI, without remote-core "
        "involvement, and needs no hardware changes");
    bench::rule();

    std::printf("%-12s %-6s %-8s %-10s %-12s\n", "approach", "async",
                "non-IPI", "no-remote", "no-hw-change");
    bench::rule();

    // Hardware proposals (from the paper's table; not implementable
    // in software, so quoted rather than measured).
    std::printf("%-12s %-6s %-8s %-10s %-12s\n", "DiDi", "-", "yes",
                "yes", "-");
    std::printf("%-12s %-6s %-8s %-10s %-12s\n", "UNITD", "-", "yes",
                "yes", "-");
    std::printf("%-12s %-6s %-8s %-10s %-12s\n", "HATRIC", "-", "yes",
                "yes", "-");

    // Software approaches: measured from the implementations.
    for (PolicyKind kind :
         {PolicyKind::Abis, PolicyKind::Barrelfish,
          PolicyKind::LinuxSync, PolicyKind::Latr}) {
        Machine machine(config, kind);
        printRow(machine.policy().name(),
                 machine.policy().capabilities());
    }

    bench::rule();
    Machine latr(config, PolicyKind::Latr);
    const PolicyCapabilities caps = latr.policy().capabilities();
    const bool all = caps.asynchronous && caps.nonIpiBased &&
                     caps.noRemoteCoreInvolvement &&
                     caps.noHardwareChanges;
    bench::measuredHeadline("LATR holds all four properties: %s",
                            all ? "yes" : "NO (bug)");
    return all ? 0 : 1;
}
