/**
 * @file
 * Shared output helpers for the figure/table benches: each bench
 * prints the machine it simulates, the paper's reported anchor
 * numbers, and the measured rows, in a fixed-width layout that is
 * easy to diff across runs.
 */

#ifndef LATR_BENCH_BENCH_UTIL_HH_
#define LATR_BENCH_BENCH_UTIL_HH_

#include <cstdarg>
#include <cstdio>
#include <string>

#include "topo/machine_config.hh"

namespace latr::bench
{

/** Print the bench banner: experiment id, description, machine. */
inline void
banner(const char *experiment, const char *description,
       const MachineConfig &config)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", experiment, description);
    std::printf("machine: %s (%u sockets x %u cores)\n",
                config.name.c_str(), config.sockets,
                config.coresPerSocket);
    std::printf("==============================================================\n");
}

/** Print the paper's expectation for this experiment. */
inline void
paperExpectation(const char *text)
{
    std::printf("paper:    %s\n", text);
}

/** Print the measured headline for this experiment. */
inline void
measuredHeadline(const char *fmt, ...)
{
    std::printf("measured: ");
    va_list args;
    va_start(args, fmt);
    std::vprintf(fmt, args);
    va_end(args);
    std::printf("\n");
}

inline void
rule()
{
    std::printf("--------------------------------------------------------------\n");
}

/** ns -> us for printing. */
inline double
us(double ns)
{
    return ns / 1000.0;
}

} // namespace latr::bench

#endif // LATR_BENCH_BENCH_UTIL_HH_
