/**
 * @file
 * Shared output helpers for the figure/table benches: each bench
 * prints the machine it simulates, the paper's reported anchor
 * numbers, and the measured rows, in a fixed-width layout that is
 * easy to diff across runs.
 */

#ifndef LATR_BENCH_BENCH_UTIL_HH_
#define LATR_BENCH_BENCH_UTIL_HH_

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "machine/machine.hh"
#include "topo/machine_config.hh"
#include "trace/chrome_trace.hh"
#include "trace/text_dump.hh"

namespace latr::bench
{

/** Print the bench banner: experiment id, description, machine. */
inline void
banner(const char *experiment, const char *description,
       const MachineConfig &config)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", experiment, description);
    std::printf("machine: %s (%u sockets x %u cores)\n",
                config.name.c_str(), config.sockets,
                config.coresPerSocket);
    std::printf("==============================================================\n");
}

/** Print the paper's expectation for this experiment. */
inline void
paperExpectation(const char *text)
{
    std::printf("paper:    %s\n", text);
}

/** Print the measured headline for this experiment. */
inline void
measuredHeadline(const char *fmt, ...)
{
    std::printf("measured: ");
    va_list args;
    va_start(args, fmt);
    std::vprintf(fmt, args);
    va_end(args);
    std::printf("\n");
}

inline void
rule()
{
    std::printf("--------------------------------------------------------------\n");
}

/** ns -> us for printing. */
inline double
us(double ns)
{
    return ns / 1000.0;
}

/**
 * The git commit the bench binary's tree was built from, or
 * "unknown" outside a work tree. Cached: the subprocess runs once
 * per bench process, not once per JSON document.
 */
inline const std::string &
gitSha()
{
    static const std::string sha = [] {
        std::string out = "unknown";
        if (std::FILE *p = ::popen(
                "git rev-parse --short=12 HEAD 2>/dev/null", "r")) {
            char buf[64] = {0};
            if (std::fgets(buf, sizeof buf, p)) {
                std::size_t n = std::strcspn(buf, "\r\n");
                if (n > 0)
                    out.assign(buf, n);
            }
            ::pclose(p);
        }
        return out;
    }();
    return sha;
}

/**
 * Machine-readable results, written next to the human-readable table
 * when the bench is invoked with `--json=FILE`. Every bench emits the
 * same shape — experiment id, description, named rows, and the
 * measured headline — so BENCH_*.json files can be tracked and
 * compared uniformly across runs and PRs:
 *
 *   {
 *     "experiment": "Figure 6",
 *     "description": "...",
 *     "headline": "...",
 *     "config": {"jobs": 4, "sim_threads": 0, ...},
 *     "rows": [ {"cores": 16, "linux_us": 7.9, ...}, ... ]
 *   }
 *
 * The config object records the host-side knobs the bench ran with
 * (worker processes, engine threads, fast-path switches) so a
 * BENCH_*.json is self-describing: two files can only be compared
 * when their configs match. Every document also records the git
 * commit it was built from and the baseline file it was gated
 * against (see baselineFile()) — the two provenance fields that
 * turn a stray BENCH_*.json back into a reproducible data point.
 */
class JsonWriter
{
  public:
    JsonWriter(std::string experiment, std::string description)
        : experiment_(std::move(experiment)),
          description_(std::move(description))
    {
        config("git_sha", gitSha());
    }

    /**
     * Record the `--check-against=` baseline this run was gated
     * against ("none" when the bench ran ungated).
     */
    JsonWriter &
    baselineFile(const std::string &path)
    {
        return config("baseline_file",
                      path.empty() ? std::string("none") : path);
    }

    /** Start a new row; subsequent num()/str() calls fill it. */
    JsonWriter &
    row()
    {
        rows_.emplace_back();
        return *this;
    }

    JsonWriter &
    num(const char *key, double value)
    {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g", value);
        rows_.back().emplace_back(key, buf);
        return *this;
    }

    JsonWriter &
    num(const char *key, std::uint64_t value)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(value));
        rows_.back().emplace_back(key, buf);
        return *this;
    }

    JsonWriter &
    str(const char *key, const std::string &value)
    {
        rows_.back().emplace_back(key, quote(value));
        return *this;
    }

    /** Record one host-side knob in the document's config object. */
    JsonWriter &
    config(const char *key, std::uint64_t value)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(value));
        config_.emplace_back(key, buf);
        return *this;
    }

    JsonWriter &
    config(const char *key, const std::string &value)
    {
        config_.emplace_back(key, quote(value));
        return *this;
    }

    /** Record the measured headline (mirrors measuredHeadline()). */
    void
    headline(const char *fmt, ...)
    {
        char buf[512];
        va_list args;
        va_start(args, fmt);
        std::vsnprintf(buf, sizeof buf, fmt, args);
        va_end(args);
        headline_ = buf;
    }

    /** Write the document; no-op when @p path is empty. */
    bool
    write(const std::string &path) const
    {
        if (path.empty())
            return true;
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "json: cannot write '%s'\n",
                         path.c_str());
            return false;
        }
        std::fprintf(f, "{\n  \"experiment\": %s,\n",
                     quote(experiment_).c_str());
        std::fprintf(f, "  \"description\": %s,\n",
                     quote(description_).c_str());
        std::fprintf(f, "  \"headline\": %s,\n",
                     quote(headline_).c_str());
        if (!config_.empty()) {
            std::fprintf(f, "  \"config\": {");
            for (std::size_t i = 0; i < config_.size(); ++i)
                std::fprintf(f, "%s\"%s\": %s", i ? ", " : "",
                             config_[i].first.c_str(),
                             config_[i].second.c_str());
            std::fprintf(f, "},\n");
        }
        std::fprintf(f, "  \"rows\": [");
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            std::fprintf(f, "%s\n    {", i ? "," : "");
            const auto &row = rows_[i];
            for (std::size_t j = 0; j < row.size(); ++j)
                std::fprintf(f, "%s\"%s\": %s", j ? ", " : "",
                             row[j].first.c_str(),
                             row[j].second.c_str());
            std::fprintf(f, "}");
        }
        std::fprintf(f, "\n  ]\n}\n");
        std::fclose(f);
        return true;
    }

  private:
    static std::string
    quote(const std::string &s)
    {
        std::string out = "\"";
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            if (c == '\n') {
                out += "\\n";
                continue;
            }
            out += c;
        }
        out += '"';
        return out;
    }

    std::string experiment_;
    std::string description_;
    std::string headline_;
    std::vector<std::pair<std::string, std::string>> config_;
    std::vector<std::vector<std::pair<std::string, std::string>>>
        rows_;
};

/** `--json=FILE` from the bench's argv ("" when absent). */
inline std::string
jsonPathFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            return argv[i] + 7;
    return "";
}


/**
 * Tracing knobs shared by the benches: parsed from the bench's argv
 * (`--trace=FILE`, `--trace-text=FILE`, `--trace-capacity=N`).
 * Benches run many machines; each picks one representative point to
 * arm with applyTrace()/finishTrace().
 */
struct TraceOptions
{
    std::string jsonPath;
    std::string textPath;
    std::size_t capacity = 0; // 0 = recorder default

    bool wanted() const
    {
        return !jsonPath.empty() || !textPath.empty();
    }
};

inline TraceOptions
traceOptionsFromArgs(int argc, char **argv)
{
    TraceOptions opts;
    auto value = [](const char *arg,
                    const char *key) -> const char * {
        const std::size_t n = std::strlen(key);
        if (std::strncmp(arg, key, n) == 0 && arg[n] == '=')
            return arg + n + 1;
        return nullptr;
    };
    for (int i = 1; i < argc; ++i) {
        if (const char *v = value(argv[i], "--trace"))
            opts.jsonPath = v;
        else if (const char *v = value(argv[i], "--trace-text"))
            opts.textPath = v;
        else if (const char *v = value(argv[i], "--trace-capacity"))
            opts.capacity =
                static_cast<std::size_t>(std::atoll(v));
    }
    return opts;
}

/** Arm @p machine's recorder per @p opts (no-op when not wanted). */
inline void
applyTrace(Machine &machine, const TraceOptions &opts)
{
    if (!opts.wanted())
        return;
    if (opts.capacity != 0)
        machine.trace().setCapacity(opts.capacity);
    machine.trace().setEnabled(true);
}

/** Write the armed machine's trace to the requested files. */
inline void
finishTrace(Machine &machine, const TraceOptions &opts)
{
    if (!opts.jsonPath.empty()) {
        if (writeChromeTraceFile(machine.trace(), &machine.topo(),
                                 opts.jsonPath))
            std::fprintf(stderr, "trace: %llu records -> %s\n",
                         static_cast<unsigned long long>(
                             machine.trace().size()),
                         opts.jsonPath.c_str());
        else
            std::fprintf(stderr, "trace: cannot write '%s'\n",
                         opts.jsonPath.c_str());
    }
    if (!opts.textPath.empty()) {
        TextDumpOptions text;
        std::FILE *f = opts.textPath == "-"
                           ? stdout
                           : std::fopen(opts.textPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "trace: cannot write '%s'\n",
                         opts.textPath.c_str());
            return;
        }
        writeTextTimeline(machine.trace(), text, f);
        if (f != stdout)
            std::fclose(f);
    }
}

} // namespace latr::bench

#endif // LATR_BENCH_BENCH_UTIL_HH_
