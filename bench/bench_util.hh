/**
 * @file
 * Shared output helpers for the figure/table benches: each bench
 * prints the machine it simulates, the paper's reported anchor
 * numbers, and the measured rows, in a fixed-width layout that is
 * easy to diff across runs.
 */

#ifndef LATR_BENCH_BENCH_UTIL_HH_
#define LATR_BENCH_BENCH_UTIL_HH_

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "machine/machine.hh"
#include "topo/machine_config.hh"
#include "trace/chrome_trace.hh"
#include "trace/text_dump.hh"

namespace latr::bench
{

/** Print the bench banner: experiment id, description, machine. */
inline void
banner(const char *experiment, const char *description,
       const MachineConfig &config)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", experiment, description);
    std::printf("machine: %s (%u sockets x %u cores)\n",
                config.name.c_str(), config.sockets,
                config.coresPerSocket);
    std::printf("==============================================================\n");
}

/** Print the paper's expectation for this experiment. */
inline void
paperExpectation(const char *text)
{
    std::printf("paper:    %s\n", text);
}

/** Print the measured headline for this experiment. */
inline void
measuredHeadline(const char *fmt, ...)
{
    std::printf("measured: ");
    va_list args;
    va_start(args, fmt);
    std::vprintf(fmt, args);
    va_end(args);
    std::printf("\n");
}

inline void
rule()
{
    std::printf("--------------------------------------------------------------\n");
}

/** ns -> us for printing. */
inline double
us(double ns)
{
    return ns / 1000.0;
}

/**
 * Tracing knobs shared by the benches: parsed from the bench's argv
 * (`--trace=FILE`, `--trace-text=FILE`, `--trace-capacity=N`).
 * Benches run many machines; each picks one representative point to
 * arm with applyTrace()/finishTrace().
 */
struct TraceOptions
{
    std::string jsonPath;
    std::string textPath;
    std::size_t capacity = 0; // 0 = recorder default

    bool wanted() const
    {
        return !jsonPath.empty() || !textPath.empty();
    }
};

inline TraceOptions
traceOptionsFromArgs(int argc, char **argv)
{
    TraceOptions opts;
    auto value = [](const char *arg,
                    const char *key) -> const char * {
        const std::size_t n = std::strlen(key);
        if (std::strncmp(arg, key, n) == 0 && arg[n] == '=')
            return arg + n + 1;
        return nullptr;
    };
    for (int i = 1; i < argc; ++i) {
        if (const char *v = value(argv[i], "--trace"))
            opts.jsonPath = v;
        else if (const char *v = value(argv[i], "--trace-text"))
            opts.textPath = v;
        else if (const char *v = value(argv[i], "--trace-capacity"))
            opts.capacity =
                static_cast<std::size_t>(std::atoll(v));
    }
    return opts;
}

/** Arm @p machine's recorder per @p opts (no-op when not wanted). */
inline void
applyTrace(Machine &machine, const TraceOptions &opts)
{
    if (!opts.wanted())
        return;
    if (opts.capacity != 0)
        machine.trace().setCapacity(opts.capacity);
    machine.trace().setEnabled(true);
}

/** Write the armed machine's trace to the requested files. */
inline void
finishTrace(Machine &machine, const TraceOptions &opts)
{
    if (!opts.jsonPath.empty()) {
        if (writeChromeTraceFile(machine.trace(), &machine.topo(),
                                 opts.jsonPath))
            std::fprintf(stderr, "trace: %llu records -> %s\n",
                         static_cast<unsigned long long>(
                             machine.trace().size()),
                         opts.jsonPath.c_str());
        else
            std::fprintf(stderr, "trace: cannot write '%s'\n",
                         opts.jsonPath.c_str());
    }
    if (!opts.textPath.empty()) {
        TextDumpOptions text;
        std::FILE *f = opts.textPath == "-"
                           ? stdout
                           : std::fopen(opts.textPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "trace: cannot write '%s'\n",
                         opts.textPath.c_str());
            return;
        }
        writeTextTimeline(machine.trace(), text, f);
        if (f != stdout)
            std::fclose(f);
    }
}

} // namespace latr::bench

#endif // LATR_BENCH_BENCH_UTIL_HH_
