// bench_lazycache: the MADV_FREE lazy-reclaim page cache
// (src/workload/lazycache) across every coherence policy — the
// free-then-reuse regime LATR's state rings and reclaim delay exist
// for. The default scenario's pressure bursts (160 pages each)
// deliberately exceed latrStatesPerCore (64), so the LATR rows must
// report ring overflow: fallback IPIs > 0 or the bench exits 4,
// because a lazycache run that never overflows the ring is not
// measuring the path this workload was built to stress.
//
// The LATR and Linux rows also run on the parallel batched engine
// (`--sim-threads=N`, default 4) as lazycache_*_tN; the workload's
// steps declare footprints, and results must be byte-identical to
// the sequential rows — exit 3 on digest divergence.
//
// `--json=FILE` writes the rows in the shared BENCH_*.json shape.
// `--check-against=BASELINE.json` exits nonzero when a policy's
// events/s drops more than --max-regression (default 0.30) below the
// baseline — simulated time, so deterministic on one build.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_runner.hh"
#include "bench_util.hh"
#include "machine/machine.hh"
#include "tlbcoh/policy.hh"
#include "workload/lazycache.hh"

using namespace latr;

namespace
{

constexpr Duration kWarmup = 20 * kMsec;
constexpr Duration kMeasured = 200 * kMsec;

struct CacheRow
{
    std::string name;
    PolicyKind kind;
    unsigned simThreads;
    LazyCacheResult result;
};

CacheRow
runPolicy(const std::string &name, PolicyKind kind,
          unsigned sim_threads, bool pin, const LazyCacheConfig &cfg)
{
    MachineConfig config = MachineConfig::commodity2S16C();
    config.simThreads = sim_threads;
    config.pinSimThreads = pin;
    Machine machine(config, kind);
    LazyCacheWorkload cache(machine, cfg);
    return CacheRow{name, kind, sim_threads,
                    cache.measure(kWarmup, kMeasured)};
}

/** (scenario, events_per_sec) rows of an earlier BENCH json. */
std::vector<std::pair<std::string, double>>
baselineScenarios(const std::string &path)
{
    std::vector<std::pair<std::string, double>> out;
    std::ifstream in(path);
    if (!in)
        return out;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    std::size_t at = 0;
    while ((at = text.find("\"scenario\": \"", at)) !=
           std::string::npos) {
        at += 13;
        const std::size_t end = text.find('"', at);
        if (end == std::string::npos)
            break;
        const std::string name = text.substr(at, end - at);
        const std::size_t eps = text.find("\"events_per_sec\":", end);
        if (eps == std::string::npos)
            break;
        out.emplace_back(
            name, std::strtod(text.c_str() + eps + 17, nullptr));
        at = end;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string checkAgainst;
    double maxRegression = 0.30;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--check-against=", 16) == 0)
            checkAgainst = argv[i] + 16;
        else if (std::strncmp(argv[i], "--max-regression=", 17) == 0)
            maxRegression = std::atof(argv[i] + 17);
    }
    if (maxRegression > 1.0)
        maxRegression /= 100.0;
    unsigned simThreads = bench::simThreadsFromArgs(argc, argv);
    if (simThreads == 0)
        simThreads = 4;
    const bool pinSim = bench::pinSimThreadsFromArgs(argc, argv);

    const MachineConfig config = MachineConfig::commodity2S16C();
    bench::banner(
        "LazyCache",
        "MADV_FREE page cache, free-then-reuse under pressure "
        "(src/workload/lazycache)",
        config);
    bench::paperExpectation(
        "free-based shootdowns defer one epoch through the state "
        "rings; pressure bursts past latrStatesPerCore overflow "
        "into fallback IPIs (section 4.2 regime)");
    bench::rule();

    const LazyCacheConfig scenario; // the default pressure scenario
    std::printf("scenario: %llu pages, hot %.0f%%, %u readers + "
                "%u writers, bursts of %llu pages every %llu us\n",
                static_cast<unsigned long long>(scenario.cachePages),
                100.0 * scenario.hotFraction, scenario.readers,
                scenario.writers,
                static_cast<unsigned long long>(scenario.burstPages),
                static_cast<unsigned long long>(
                    scenario.pressureInterval / kUsec));
    bench::rule();
    std::printf("%-22s | %10s %7s %9s %9s\n", "scenario", "events/s",
                "hit", "fb_ipis", "reclaimed");
    bench::rule();

    char latrT[32], linuxT[32], abisT[32];
    std::snprintf(latrT, sizeof latrT, "lazycache_latr_t%u",
                  simThreads);
    std::snprintf(linuxT, sizeof linuxT, "lazycache_linux_t%u",
                  simThreads);
    std::snprintf(abisT, sizeof abisT, "lazycache_abis_t%u",
                  simThreads);

    std::vector<CacheRow> rows;
    rows.push_back(runPolicy("lazycache_linux", PolicyKind::LinuxSync,
                             0, false, scenario));
    rows.push_back(
        runPolicy("lazycache_latr", PolicyKind::Latr, 0, false,
                  scenario));
    rows.push_back(
        runPolicy("lazycache_abis", PolicyKind::Abis, 0, false,
                  scenario));
    rows.push_back(runPolicy("lazycache_barrelfish",
                             PolicyKind::Barrelfish, 0, false,
                             scenario));
    // Sharer prediction under the densest free-then-reuse traffic in
    // the repo: MADV_FREE bursts train and stress the perceptron's
    // verify/fallback path.
    rows.push_back(runPolicy("lazycache_pred", PolicyKind::Predictive,
                             0, false, scenario));
    rows.push_back(runPolicy(linuxT, PolicyKind::LinuxSync,
                             simThreads, pinSim, scenario));
    rows.push_back(runPolicy(latrT, PolicyKind::Latr, simThreads,
                             pinSim, scenario));
    // The ABIS threaded row is the end-to-end check for the offloaded
    // sharer harvest (lazycache's pressure bursts are what drive it).
    rows.push_back(runPolicy(abisT, PolicyKind::Abis, simThreads,
                             pinSim, scenario));

    bench::JsonWriter json(
        "LazyCache",
        "MADV_FREE page cache free-then-reuse throughput");
    json.config("sim_threads", std::uint64_t{simThreads})
        .config("cache_pages", scenario.cachePages)
        .config("burst_pages", scenario.burstPages)
        .config("pressure_interval_ns",
                static_cast<std::uint64_t>(scenario.pressureInterval))
        .config("readers", std::uint64_t{scenario.readers})
        .config("writers", std::uint64_t{scenario.writers})
        .config("seed", scenario.seed)
        .config("jobs", std::uint64_t{1});

    double latrEvents = 0;
    double linuxEvents = 0;
    std::uint64_t latrFallbacks = 0;
    for (const CacheRow &row : rows) {
        const LazyCacheResult &r = row.result;
        std::printf("%-22s | %10.0f %7.4f %9llu %9llu\n",
                    row.name.c_str(), r.eventsPerSec, r.hitRatio,
                    static_cast<unsigned long long>(r.fallbackIpis),
                    static_cast<unsigned long long>(r.reclaimedPages));
        char digest[24];
        std::snprintf(digest, sizeof digest, "%016llx",
                      static_cast<unsigned long long>(r.digest));
        json.row()
            .str("scenario", row.name)
            .num("events_per_sec", r.eventsPerSec)
            .num("reads_per_sec", r.readsPerSec)
            .num("hit_ratio", r.hitRatio)
            .num("revalidation_fails", r.revalidationFails)
            .num("refills", r.refills)
            .num("discarded_pages", r.discardedPages)
            .num("fallback_ipis", r.fallbackIpis)
            .num("fallback_ipis_per_sec",
                 ratePerSecond(r.fallbackIpis, kMeasured))
            .num("reclaimed_pages", r.reclaimedPages)
            .str("digest", digest);
        if (row.name == "lazycache_latr") {
            latrEvents = r.eventsPerSec;
            latrFallbacks = r.fallbackIpis;
        } else if (row.name == "lazycache_linux") {
            linuxEvents = r.eventsPerSec;
        }
    }
    bench::rule();

    // The threaded rows must digest identically to their sequential
    // twins — the footprints on the lazycache steps are either
    // correct or this bench refuses to report.
    for (const CacheRow &row : rows) {
        if (row.simThreads == 0)
            continue;
        for (const CacheRow &base : rows) {
            if (base.simThreads == 0 && base.kind == row.kind &&
                base.result.digest != row.result.digest) {
                std::fprintf(
                    stderr,
                    "bench_lazycache: %s digest %016llx != %s digest "
                    "%016llx — the parallel engine changed the "
                    "simulation\n",
                    row.name.c_str(),
                    static_cast<unsigned long long>(
                        row.result.digest),
                    base.name.c_str(),
                    static_cast<unsigned long long>(
                        base.result.digest));
                return 3;
            }
        }
    }

    // The whole point of the scenario: pressure bursts must actually
    // overflow the ring.
    if (latrFallbacks == 0) {
        std::fprintf(stderr,
                     "bench_lazycache: the default scenario never "
                     "overflowed the LATR ring (fallback_ipis == 0); "
                     "it is no longer stressing the path it exists "
                     "for\n");
        return 4;
    }

    bench::measuredHeadline(
        "LATR %.2fM events/s vs Linux %.2fM (%llu fallback IPIs, "
        "ring overflow reached)",
        latrEvents / 1e6, linuxEvents / 1e6,
        static_cast<unsigned long long>(latrFallbacks));
    json.headline("LATR %.2fM events/s vs Linux %.2fM events/s",
                  latrEvents / 1e6, linuxEvents / 1e6);
    json.baselineFile(checkAgainst);
    json.write(bench::jsonPathFromArgs(argc, argv));

    if (!checkAgainst.empty()) {
        const auto baseline = baselineScenarios(checkAgainst);
        if (baseline.empty()) {
            std::fprintf(stderr,
                         "bench_lazycache: cannot read any scenario "
                         "rows from baseline '%s'\n",
                         checkAgainst.c_str());
            return 2;
        }
        bool failed = false;
        for (const auto &base : baseline) {
            const CacheRow *measured = nullptr;
            for (const CacheRow &row : rows)
                if (base.first == row.name)
                    measured = &row;
            if (!measured) {
                std::fprintf(
                    stderr,
                    "bench_lazycache: baseline scenario '%s' missing "
                    "from this run (have:",
                    base.first.c_str());
                for (const CacheRow &row : rows)
                    std::fprintf(stderr, " %s", row.name.c_str());
                std::fprintf(stderr,
                             "); re-run with matching --sim-threads "
                             "or refresh the baseline\n");
                return 2;
            }
            // Throughput gates downward: regression = events/s below
            // the baseline's floor.
            const double floor = base.second * (1.0 - maxRegression);
            const double got = measured->result.eventsPerSec;
            std::printf("throughput gate [%s]: %.0f events/s vs "
                        "baseline %.0f (floor %.0f): %s\n",
                        base.first.c_str(), got, base.second, floor,
                        got >= floor ? "ok" : "REGRESSION");
            if (got < floor)
                failed = true;
        }
        if (failed)
            return 1;
    }
    return 0;
}
