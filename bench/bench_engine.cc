// bench_engine: microbenchmarks of the simulation engine itself, the
// substrate every figure/table bench stands on. Four scenarios:
//
//   event_churn  — raw EventQueue schedule/dispatch throughput: a set
//                  of self-rescheduling events plus a stream of
//                  one-off lambdas, the engine's two scheduling idioms.
//   tlb_churn    — Tlb insert/lookup/invalidate storm over a working
//                  set larger than the TLB, the hottest data structure
//                  in a machine simulation.
//   munmap_storm — a full 16-core machine running the paper's munmap
//                  microbenchmark back-to-back under Linux and LATR,
//                  measuring end-to-end simulated events per second of
//                  wall time.
//   big_machine  — the 8-socket/120-core box under LATR, ABIS, and
//                  the Predictive policy: twenty publisher processes
//                  flood the LATR state rings with AutoNUMA samples
//                  and munmaps while a hundred oversubscribed cores
//                  tick, sweep, and periodically take a machine-wide
//                  synchronous shootdown. The scenario the tick
//                  wheel, the sweep-elision mask, the flat sharer
//                  map, and the sharer perceptron exist for. The
//                  per-policy `coh.remote_interrupts` counts feed a
//                  hard gate: Predictive must deliver >= 40% fewer
//                  IPIs than full-mask LATR (exit 4 otherwise).
//
// The machine scenarios run twice: on the classic sequential engine
// and on the parallel batched engine (`--sim-threads=N`, default 4;
// `--pin-sim-threads` pins its workers to host CPUs for quiet-host
// measurement), reported as munmap_storm / munmap_storm_tN and
// big_machine / big_machine_tN. Both runs must execute the exact same event count
// — the bench exits 3 if they diverge, a cheap standing equivalence
// check on the parallel engine.
//
// Each scenario reports events/sec; `--json=FILE` writes the rows in
// the shared BENCH_*.json shape so the perf trajectory is tracked
// from run to run. `--check-against=BASELINE.json` exits nonzero if
// any machine scenario regresses more than --max-regression (default
// 0.30) below the baseline, and complains loudly when a baseline
// scenario is missing from the run — the CI perf-smoke gate.
// `--no-fastpath` runs the machine scenarios on the naive engine
// paths, quantifying what the fast paths buy.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_runner.hh"
#include "bench_util.hh"
#include "hw/tlb.hh"
#include "machine/machine.hh"
#include "os/kernel.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workload/microbench.hh"

using namespace latr;

namespace
{

double
wallSeconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

struct ScenarioResult
{
    const char *name;
    std::uint64_t events;
    double wallSec;
    /**
     * FNV digest over every constituent machine's full stat dump,
     * folded across the scenario's policies. The sequential/_tN
     * pairs must match on this too — "same event count" alone
     * would let a counter-shifting engine bug slip through.
     */
    std::uint64_t statsDigest = 0;

    double
    eventsPerSec() const
    {
        return wallSec > 0 ? static_cast<double>(events) / wallSec
                           : 0.0;
    }
};

std::uint64_t
fnvString(std::uint64_t h, const std::string &s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

/** Per-policy IPI fan-out of one big_machine run (the pred gate). */
struct BigMachineCounters
{
    std::uint64_t latrIpis = 0;
    std::uint64_t abisIpis = 0;
    std::uint64_t predIpis = 0;
    std::uint64_t predSaved = 0;
    std::uint64_t predMispredicts = 0;
    std::uint64_t predFallbacks = 0;
    std::uint64_t predVerifies = 0;

    /** Fractional IPI-delivery reduction of Predictive vs LATR. */
    double
    reductionVsLatr() const
    {
        return latrIpis > 0
                   ? 1.0 - static_cast<double>(predIpis) /
                               static_cast<double>(latrIpis)
                   : 0.0;
    }
};

/** A self-rescheduling event: the scheduler-tick idiom. */
class ChurnEvent : public Event
{
  public:
    ChurnEvent(EventQueue *q, Duration period)
        : q_(q), period_(period)
    {}

    void
    process() override
    {
        q_->schedule(this, q_->now() + period_);
    }

    const char *name() const override { return "churn"; }

  private:
    EventQueue *q_;
    Duration period_;
};

ScenarioResult
runEventChurn()
{
    constexpr std::uint64_t kDispatches = 6'000'000;
    EventQueue q;
    std::vector<ChurnEvent> ring;
    ring.reserve(64);
    for (unsigned i = 0; i < 64; ++i) {
        ring.emplace_back(&q, 64 + i % 7);
        q.schedule(&ring.back(), 1 + i);
    }
    // A lambda stream rides along: one-off callbacks are the other
    // scheduling idiom the machines use (IPI deliveries, deferred
    // reclamation), and they exercise the owned-event pool.
    std::uint64_t lambdaBudget = kDispatches / 4;
    class LambdaFeeder : public Event
    {
      public:
        LambdaFeeder(EventQueue *q, std::uint64_t *budget)
            : q_(q), budget_(budget)
        {}

        void
        process() override
        {
            for (int i = 0; i < 8 && *budget_ > 0; ++i, --*budget_)
                q_->scheduleLambda(q_->now() + 16 + i, []() {});
            if (*budget_ > 0)
                q_->schedule(this, q_->now() + 32);
        }

      private:
        EventQueue *q_;
        std::uint64_t *budget_;
    };
    LambdaFeeder feeder(&q, &lambdaBudget);
    q.schedule(&feeder, 1);

    const auto start = std::chrono::steady_clock::now();
    while (q.executed() < kDispatches)
        q.run(q.now() + 4096);
    const double wall = wallSeconds(start);
    for (ChurnEvent &ev : ring)
        q.deschedule(&ev);
    q.deschedule(&feeder);
    return {"event_churn", q.executed(), wall};
}

ScenarioResult
runTlbChurn()
{
    constexpr std::uint64_t kOps = 8'000'000;
    Tlb tlb(0, 64, 1024, 32);
    Rng rng(0x7a11);
    const Vpn workingSet = 4096; // ~4x total TLB capacity
    std::uint64_t ops = 0;
    const auto start = std::chrono::steady_clock::now();
    while (ops < kOps) {
        const Vpn vpn = rng.nextBounded(workingSet);
        const Pcid pcid = static_cast<Pcid>(1 + (vpn & 1));
        Pfn pfn;
        if (tlb.lookup(vpn, pcid, &pfn) == TlbResult::Miss)
            tlb.insert(vpn, 0x100000 + vpn, pcid);
        ++ops;
        if ((ops & 0x3ff) == 0) { // periodic munmap-like range kill
            const Vpn base = rng.nextBounded(workingSet);
            tlb.invalidateRange(base, base + 15, 1);
            ++ops;
        }
        if ((ops & 0xffff) == 0) { // rare context teardown
            tlb.invalidatePcid(2);
            ++ops;
        }
    }
    const double wall = wallSeconds(start);
    return {"tlb_churn", ops, wall};
}

ScenarioResult
runMunmapStorm(const char *name, bool no_fastpath,
               unsigned sim_threads, bool pin_sim_threads)
{
    std::uint64_t events = 0;
    double wall = 0;
    std::uint64_t digest = 1469598103934665603ULL;
    for (PolicyKind policy :
         {PolicyKind::LinuxSync, PolicyKind::Latr}) {
        MachineConfig config = MachineConfig::commodity2S16C();
        config.noFastpath = no_fastpath;
        config.simThreads = sim_threads;
        config.pinSimThreads = pin_sim_threads;
        Machine machine(config, policy);
        MunmapMicrobenchConfig cfg;
        cfg.sharingCores = 16;
        cfg.pages = 4;
        cfg.iterations = 25000;
        cfg.warmupIterations = 100;
        cfg.interIterationGap = 20 * kUsec;
        const auto start = std::chrono::steady_clock::now();
        runMunmapMicrobench(machine, cfg);
        wall += wallSeconds(start);
        events += machine.queue().executed();
        digest = fnvString(digest, machine.stats().dump());
    }
    return {name, events, wall, digest};
}

/**
 * The large-machine scenario: the workload shape the paper's Figure 7
 * machine actually sees. Twenty single-task "publisher" processes on
 * cores 0..19 each own a private region whose pages AutoNUMA keeps
 * sampling — under LATR every sample publishes a migration state, so
 * a thousand-plus states are live at any instant, all addressed to
 * the publisher cores — plus a small mmap/touch/munmap churn (ABIS
 * harvests the flat sharer map on every free). Two "global"
 * processes oversubscribe the other 100 cores, whose ticks and
 * context switches sweep twice per millisecond and match *nothing*:
 * exactly the scans the sweep-elision mask removes. Every eighth
 * iteration a sync munmap from a global task IPIs the whole 100-core
 * residency mask (the word-at-a-time fan-out path). The simulated
 * result must not change either way.
 *
 * The scenario now also runs under the Predictive policy: the same
 * wide residency masks are the sharer-prediction target — after a
 * training op or two the perceptron narrows each shootdown to the
 * cores that actually faulted the pages in, and the per-policy
 * `coh.remote_interrupts` deltas captured in @p counters feed the
 * >= 40%-fewer-IPIs gate in main().
 */
ScenarioResult
runBigMachine(const char *name, bool no_fastpath,
              unsigned sim_threads, bool pin_sim_threads,
              BigMachineCounters *counters)
{
    constexpr unsigned kPublishers = 20;
    constexpr unsigned kIterations = 400;
    constexpr std::uint64_t kRegionPages = 64;
    constexpr unsigned kSamplesPerIter = 36;
    constexpr std::uint64_t kScratchPages = 2;

    std::uint64_t events = 0;
    double wall = 0;
    std::uint64_t digest = 1469598103934665603ULL;
    for (PolicyKind policy : {PolicyKind::Latr, PolicyKind::Abis,
                              PolicyKind::Predictive}) {
        MachineConfig config = MachineConfig::largeNuma8S120C();
        config.noFastpath = no_fastpath;
        config.simThreads = sim_threads;
        config.pinSimThreads = pin_sim_threads;
        // Tagged TLBs: context switches on the oversubscribed cores
        // must not flush residency, or the global mm's mask (and the
        // wide shootdown) degenerates.
        config.pcidEnabled = true;
        // ~180 samples/ms/core live for up to a tick: give the state
        // rings headroom so the scenario measures sweeps, not the
        // ring-full IPI fallback.
        config.latrStatesPerCore = 256;
        Machine machine(config, policy);
        Kernel &kernel = machine.kernel();
        const unsigned cores = machine.topo().totalCores();

        std::vector<Task *> pubs(kPublishers);
        std::vector<Addr> region(kPublishers);
        for (unsigned p = 0; p < kPublishers; ++p) {
            Process *proc =
                kernel.createProcess("p" + std::to_string(p));
            pubs[p] = kernel.spawnTask(proc, p);
            SyscallResult m =
                kernel.mmap(pubs[p], kRegionPages * kPageSize,
                            kProtRead | kProtWrite);
            if (!m.ok)
                fatal("big_machine region mmap failed");
            region[p] = m.addr;
            for (std::uint64_t pg = 0; pg < kRegionPages; ++pg)
                kernel.touch(pubs[p], m.addr + pg * kPageSize, true);
        }
        // The publishers' mms are resident only on their own core,
        // so every published state has a single-bit mask and the
        // other 100 cores' sweeps are pure scan overhead.
        std::vector<Task *> globalTasks;
        for (unsigned g = 0; g < 2; ++g) {
            Process *global =
                kernel.createProcess("g" + std::to_string(g));
            for (CoreId c = kPublishers; c < cores; ++c) {
                Task *t = kernel.spawnTask(global, c);
                if (g == 0)
                    globalTasks.push_back(t);
            }
        }

        const auto start = std::chrono::steady_clock::now();
        machine.run(2 * machine.config().cost.tickInterval);
        for (unsigned iter = 0; iter < kIterations; ++iter) {
            for (unsigned p = 0; p < kPublishers; ++p) {
                // AutoNUMA scan burst over the publisher's pages.
                const Vpn base = region[p] / kPageSize;
                for (unsigned s = 0; s < kSamplesPerIter; ++s)
                    kernel.numaSample(
                        pubs[p],
                        base + (iter * kSamplesPerIter + s) %
                                   kRegionPages);
                // Scratch churn: map, touch, free — the ABIS harvest
                // and LATR holdback/reclaim paths.
                SyscallResult m = kernel.mmap(
                    pubs[p], kScratchPages * kPageSize,
                    kProtRead | kProtWrite);
                if (!m.ok)
                    fatal("big_machine mmap failed");
                kernel.touch(pubs[p], m.addr, true);
                kernel.munmap(pubs[p], m.addr,
                              kScratchPages * kPageSize);
            }
            if (iter % 8 == 0) {
                // The wide shootdown: a sync munmap from a global
                // task IPIs every core the global mm is resident on.
                Task *t = globalTasks[(iter * 7) % globalTasks.size()];
                SyscallResult m = kernel.mmap(t, 4 * kPageSize,
                                              kProtRead | kProtWrite);
                if (!m.ok)
                    fatal("big_machine global mmap failed");
                for (std::size_t i = 0; i < globalTasks.size(); i += 8)
                    kernel.touch(globalTasks[i], m.addr, true);
                kernel.munmap(t, m.addr, 4 * kPageSize, true);
            }
            machine.run(200 * kUsec);
        }
        machine.run(6 * kMsec);
        wall += wallSeconds(start);
        events += machine.queue().executed();
        digest = fnvString(digest, machine.stats().dump());
        if (counters) {
            const std::uint64_t ipis = machine.stats().counterValue(
                "coh.remote_interrupts");
            if (policy == PolicyKind::Latr)
                counters->latrIpis = ipis;
            else if (policy == PolicyKind::Abis)
                counters->abisIpis = ipis;
            else if (policy == PolicyKind::Predictive) {
                counters->predIpis = ipis;
                counters->predSaved = machine.stats().counterValue(
                    "pred.ipis_saved");
                counters->predMispredicts =
                    machine.stats().counterValue("pred.mispredicts");
                counters->predFallbacks =
                    machine.stats().counterValue(
                        "pred.fallback_shootdowns");
                counters->predVerifies =
                    machine.stats().counterValue("pred.verifies");
            }
        }
    }
    return {name, events, wall, digest};
}

/**
 * Pull every scenario's events_per_sec out of a BENCH_engine.json
 * written by an earlier run: (name, events_per_sec) in file order.
 * An empty result means the file was unreadable or held no rows.
 */
std::vector<std::pair<std::string, double>>
baselineScenarios(const std::string &path)
{
    std::vector<std::pair<std::string, double>> out;
    std::ifstream in(path);
    if (!in)
        return out;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    std::size_t at = 0;
    while ((at = text.find("\"scenario\": \"", at)) !=
           std::string::npos) {
        at += 13;
        const std::size_t end = text.find('"', at);
        if (end == std::string::npos)
            break;
        const std::string name = text.substr(at, end - at);
        const std::size_t eps =
            text.find("\"events_per_sec\":", end);
        if (eps == std::string::npos)
            break;
        out.emplace_back(
            name, std::strtod(text.c_str() + eps + 17, nullptr));
        at = end;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string checkAgainst;
    double maxRegression = 0.30;
    bool noFastpath = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--check-against=", 16) == 0)
            checkAgainst = argv[i] + 16;
        else if (std::strncmp(argv[i], "--max-regression=", 17) == 0)
            maxRegression = std::atof(argv[i] + 17);
        else if (std::strcmp(argv[i], "--no-fastpath") == 0)
            noFastpath = true;
    }
    // Accept either a fraction (0.30) or a percentage (30).
    if (maxRegression > 1.0)
        maxRegression /= 100.0;
    // Threaded machine rows: default 4, overridable for hosts where
    // a different count is the interesting one.
    unsigned simThreads = bench::simThreadsFromArgs(argc, argv);
    if (simThreads == 0)
        simThreads = 4;
    const bool pinSim = bench::pinSimThreadsFromArgs(argc, argv);

    const MachineConfig config = MachineConfig::commodity2S16C();
    bench::banner("Engine", "simulation-engine throughput", config);
    bench::paperExpectation(
        "simulator throughput bounds design-space coverage; engine "
        "hot paths must be allocation-free");
    bench::rule();
    std::printf("%-16s | %14s %10s | %14s\n", "scenario", "events",
                "wall_s", "events/sec");
    bench::rule();

    bench::JsonWriter json("Engine", "simulation-engine throughput");
    json.config("sim_threads", std::uint64_t{simThreads})
        .config("no_fastpath", std::uint64_t{noFastpath ? 1u : 0u})
        .config("pin_sim_threads", std::uint64_t{pinSim ? 1u : 0u})
        .config("host_cpus",
                std::uint64_t{std::thread::hardware_concurrency()})
        .config("jobs", std::uint64_t{1});

    char threadedStorm[32], threadedBig[32];
    std::snprintf(threadedStorm, sizeof threadedStorm,
                  "munmap_storm_t%u", simThreads);
    std::snprintf(threadedBig, sizeof threadedBig, "big_machine_t%u",
                  simThreads);

    // The machine scenarios run twice — classic sequential engine
    // and the batched engine at simThreads — and must execute the
    // exact same event count: the parallel engine is a host-speed
    // knob, never a model change.
    std::vector<ScenarioResult> results;
    BigMachineCounters bigSeq, bigThr;
    results.push_back(runEventChurn());
    results.push_back(runTlbChurn());
    results.push_back(
        runMunmapStorm("munmap_storm", noFastpath, 0, false));
    results.push_back(runMunmapStorm(threadedStorm, noFastpath,
                                     simThreads, pinSim));
    results.push_back(
        runBigMachine("big_machine", noFastpath, 0, false, &bigSeq));
    results.push_back(runBigMachine(threadedBig, noFastpath,
                                    simThreads, pinSim, &bigThr));

    double stormEps = 0;
    double bigEps = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult &r = results[i];
        std::printf("%-16s | %14llu %10.3f | %14.0f\n", r.name,
                    static_cast<unsigned long long>(r.events),
                    r.wallSec, r.eventsPerSec());
        json.row()
            .str("scenario", r.name)
            .num("events", r.events)
            .num("wall_sec", r.wallSec)
            .num("events_per_sec", r.eventsPerSec());
        // The big_machine rows carry the sharer-prediction fan-out
        // numbers: per-policy delivered IPIs and the reduction the
        // perceptron buys over full-mask LATR.
        if (std::strncmp(r.name, "big_machine", 11) == 0) {
            const BigMachineCounters &bc =
                (i & 1) ? bigThr : bigSeq;
            json.num("ipis_latr", bc.latrIpis)
                .num("ipis_abis", bc.abisIpis)
                .num("ipis_pred", bc.predIpis)
                .num("pred_ipi_reduction", bc.reductionVsLatr())
                .num("pred_ipis_saved", bc.predSaved)
                .num("pred_mispredicts", bc.predMispredicts)
                .num("pred_fallback_shootdowns", bc.predFallbacks)
                .num("pred_verifies", bc.predVerifies);
        }
        // Machine scenarios arrive as (sequential, _tN) pairs; record
        // the measured ratio on the threaded row. Host-dependent, so
        // it rides next to the host_cpus config rather than gating
        // anything here.
        if (i >= 3 && (i & 1) == 1 && r.wallSec > 0)
            json.num("speedup_vs_seq",
                     results[i - 1].wallSec / r.wallSec);
        if (std::strcmp(r.name, "munmap_storm") == 0)
            stormEps = r.eventsPerSec();
        else if (std::strcmp(r.name, "big_machine") == 0)
            bigEps = r.eventsPerSec();
    }
    bench::rule();
    for (std::size_t i = 2; i + 1 < results.size(); i += 2) {
        if (results[i].events != results[i + 1].events) {
            std::fprintf(
                stderr,
                "bench_engine: %s executed %llu events but %s "
                "executed %llu — the parallel engine changed the "
                "simulation\n",
                results[i].name,
                static_cast<unsigned long long>(results[i].events),
                results[i + 1].name,
                static_cast<unsigned long long>(
                    results[i + 1].events));
            return 3;
        }
        if (results[i].statsDigest != results[i + 1].statsDigest) {
            std::fprintf(
                stderr,
                "bench_engine: %s stat digest %016llx != %s stat "
                "digest %016llx — counters diverged between the "
                "sequential and parallel engines\n",
                results[i].name,
                static_cast<unsigned long long>(
                    results[i].statsDigest),
                results[i + 1].name,
                static_cast<unsigned long long>(
                    results[i + 1].statsDigest));
            return 3;
        }
    }

    // The sharer-prediction fan-out gate: on the wide-mask scenario
    // the perceptron must deliver at least 40% fewer IPIs than
    // full-mask LATR, or the predictor has regressed into predicting
    // (nearly) everyone. Simulated counters, so this is exact and
    // host-independent; the digest check above already proved the
    // threaded run's counters identical.
    constexpr double kMinPredReduction = 0.40;
    std::printf("pred gate [big_machine]: LATR %llu IPIs, Predictive "
                "%llu (%.1f%% reduction, floor %.0f%%, %llu "
                "mispredicted entries, %llu fallback shootdowns): "
                "%s\n",
                static_cast<unsigned long long>(bigSeq.latrIpis),
                static_cast<unsigned long long>(bigSeq.predIpis),
                100.0 * bigSeq.reductionVsLatr(),
                100.0 * kMinPredReduction,
                static_cast<unsigned long long>(
                    bigSeq.predMispredicts),
                static_cast<unsigned long long>(bigSeq.predFallbacks),
                bigSeq.reductionVsLatr() >= kMinPredReduction
                    ? "ok"
                    : "REGRESSION");
    if (bigSeq.reductionVsLatr() < kMinPredReduction) {
        std::fprintf(stderr,
                     "bench_engine: Predictive delivered %llu IPIs "
                     "vs LATR's %llu on big_machine — below the "
                     "%.0f%% reduction floor\n",
                     static_cast<unsigned long long>(bigSeq.predIpis),
                     static_cast<unsigned long long>(bigSeq.latrIpis),
                     100.0 * kMinPredReduction);
        return 4;
    }

    bench::measuredHeadline(
        "munmap_storm %.0f events/sec, big_machine %.0f events/sec, "
        "pred IPI fan-out -%.1f%% vs LATR",
        stormEps, bigEps, 100.0 * bigSeq.reductionVsLatr());
    json.headline(
        "munmap_storm %.0f events/sec, big_machine %.0f events/sec, "
        "pred IPI fan-out -%.1f%% vs LATR",
        stormEps, bigEps, 100.0 * bigSeq.reductionVsLatr());
    json.baselineFile(checkAgainst);
    json.write(bench::jsonPathFromArgs(argc, argv));

    if (!checkAgainst.empty()) {
        const auto baseline = baselineScenarios(checkAgainst);
        if (baseline.empty()) {
            std::fprintf(stderr,
                         "bench_engine: cannot read any scenario "
                         "rows from baseline '%s'\n",
                         checkAgainst.c_str());
            return 2;
        }
        // Gate only the machine scenarios: the churn
        // microbenchmarks are too noisy for a hard floor.
        auto gated = [&](const std::string &name) {
            return name.compare(0, 12, "munmap_storm") == 0 ||
                   name.compare(0, 11, "big_machine") == 0;
        };
        bool failed = false;
        for (const auto &base : baseline) {
            if (!gated(base.first))
                continue;
            const ScenarioResult *measured = nullptr;
            for (const ScenarioResult &r : results)
                if (base.first == r.name)
                    measured = &r;
            if (!measured) {
                // A baseline scenario this run never produced would
                // otherwise pass silently — the exact failure mode
                // that hides a renamed or dropped gate.
                std::fprintf(
                    stderr,
                    "bench_engine: baseline scenario '%s' missing "
                    "from this run (have:",
                    base.first.c_str());
                for (const ScenarioResult &r : results)
                    std::fprintf(stderr, " %s", r.name);
                std::fprintf(stderr,
                             "); re-run with matching --sim-threads "
                             "or refresh the baseline\n");
                return 2;
            }
            const double floor = base.second * (1.0 - maxRegression);
            std::printf("perf gate [%s]: %.0f events/sec vs baseline "
                        "%.0f (floor %.0f): %s\n",
                        base.first.c_str(), measured->eventsPerSec(),
                        base.second, floor,
                        measured->eventsPerSec() >= floor
                            ? "ok"
                            : "REGRESSION");
            if (measured->eventsPerSec() < floor)
                failed = true;
        }
        if (failed)
            return 1;
    }
    return 0;
}
