// bench_engine: microbenchmarks of the simulation engine itself, the
// substrate every figure/table bench stands on. Three scenarios:
//
//   event_churn  — raw EventQueue schedule/dispatch throughput: a set
//                  of self-rescheduling events plus a stream of
//                  one-off lambdas, the engine's two scheduling idioms.
//   tlb_churn    — Tlb insert/lookup/invalidate storm over a working
//                  set larger than the TLB, the hottest data structure
//                  in a machine simulation.
//   munmap_storm — a full 16-core machine running the paper's munmap
//                  microbenchmark back-to-back under Linux and LATR,
//                  measuring end-to-end simulated events per second of
//                  wall time.
//
// Each scenario reports events/sec; `--json=FILE` writes the rows in
// the shared BENCH_*.json shape so the perf trajectory is tracked
// from run to run. `--check-against=BASELINE.json` exits nonzero if
// the munmap_storm headline regresses more than --max-regression
// (default 0.30) below the baseline — the CI perf-smoke gate.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "hw/tlb.hh"
#include "machine/machine.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "workload/microbench.hh"

using namespace latr;

namespace
{

double
wallSeconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

struct ScenarioResult
{
    const char *name;
    std::uint64_t events;
    double wallSec;

    double
    eventsPerSec() const
    {
        return wallSec > 0 ? static_cast<double>(events) / wallSec
                           : 0.0;
    }
};

/** A self-rescheduling event: the scheduler-tick idiom. */
class ChurnEvent : public Event
{
  public:
    ChurnEvent(EventQueue *q, Duration period)
        : q_(q), period_(period)
    {}

    void
    process() override
    {
        q_->schedule(this, q_->now() + period_);
    }

    const char *name() const override { return "churn"; }

  private:
    EventQueue *q_;
    Duration period_;
};

ScenarioResult
runEventChurn()
{
    constexpr std::uint64_t kDispatches = 6'000'000;
    EventQueue q;
    std::vector<ChurnEvent> ring;
    ring.reserve(64);
    for (unsigned i = 0; i < 64; ++i) {
        ring.emplace_back(&q, 64 + i % 7);
        q.schedule(&ring.back(), 1 + i);
    }
    // A lambda stream rides along: one-off callbacks are the other
    // scheduling idiom the machines use (IPI deliveries, deferred
    // reclamation), and they exercise the owned-event pool.
    std::uint64_t lambdaBudget = kDispatches / 4;
    class LambdaFeeder : public Event
    {
      public:
        LambdaFeeder(EventQueue *q, std::uint64_t *budget)
            : q_(q), budget_(budget)
        {}

        void
        process() override
        {
            for (int i = 0; i < 8 && *budget_ > 0; ++i, --*budget_)
                q_->scheduleLambda(q_->now() + 16 + i, []() {});
            if (*budget_ > 0)
                q_->schedule(this, q_->now() + 32);
        }

      private:
        EventQueue *q_;
        std::uint64_t *budget_;
    };
    LambdaFeeder feeder(&q, &lambdaBudget);
    q.schedule(&feeder, 1);

    const auto start = std::chrono::steady_clock::now();
    while (q.executed() < kDispatches)
        q.run(q.now() + 4096);
    const double wall = wallSeconds(start);
    for (ChurnEvent &ev : ring)
        q.deschedule(&ev);
    q.deschedule(&feeder);
    return {"event_churn", q.executed(), wall};
}

ScenarioResult
runTlbChurn()
{
    constexpr std::uint64_t kOps = 8'000'000;
    Tlb tlb(0, 64, 1024, 32);
    Rng rng(0x7a11);
    const Vpn workingSet = 4096; // ~4x total TLB capacity
    std::uint64_t ops = 0;
    const auto start = std::chrono::steady_clock::now();
    while (ops < kOps) {
        const Vpn vpn = rng.nextBounded(workingSet);
        const Pcid pcid = static_cast<Pcid>(1 + (vpn & 1));
        Pfn pfn;
        if (tlb.lookup(vpn, pcid, &pfn) == TlbResult::Miss)
            tlb.insert(vpn, 0x100000 + vpn, pcid);
        ++ops;
        if ((ops & 0x3ff) == 0) { // periodic munmap-like range kill
            const Vpn base = rng.nextBounded(workingSet);
            tlb.invalidateRange(base, base + 15, 1);
            ++ops;
        }
        if ((ops & 0xffff) == 0) { // rare context teardown
            tlb.invalidatePcid(2);
            ++ops;
        }
    }
    const double wall = wallSeconds(start);
    return {"tlb_churn", ops, wall};
}

ScenarioResult
runMunmapStorm()
{
    std::uint64_t events = 0;
    double wall = 0;
    for (PolicyKind policy :
         {PolicyKind::LinuxSync, PolicyKind::Latr}) {
        Machine machine(MachineConfig::commodity2S16C(), policy);
        MunmapMicrobenchConfig cfg;
        cfg.sharingCores = 16;
        cfg.pages = 4;
        cfg.iterations = 25000;
        cfg.warmupIterations = 100;
        cfg.interIterationGap = 20 * kUsec;
        const auto start = std::chrono::steady_clock::now();
        runMunmapMicrobench(machine, cfg);
        wall += wallSeconds(start);
        events += machine.queue().executed();
    }
    return {"munmap_storm", events, wall};
}

/**
 * Pull the munmap_storm events_per_sec out of a BENCH_engine.json
 * written by an earlier run. @return < 0 when unreadable.
 */
double
baselineEventsPerSec(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return -1.0;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    std::size_t at = text.find("\"munmap_storm\"");
    if (at == std::string::npos)
        return -1.0;
    at = text.find("\"events_per_sec\":", at);
    if (at == std::string::npos)
        return -1.0;
    return std::strtod(text.c_str() + at + 17, nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string checkAgainst;
    double maxRegression = 0.30;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--check-against=", 16) == 0)
            checkAgainst = argv[i] + 16;
        else if (std::strncmp(argv[i], "--max-regression=", 17) == 0)
            maxRegression = std::atof(argv[i] + 17);
    }
    // Accept either a fraction (0.30) or a percentage (30).
    if (maxRegression > 1.0)
        maxRegression /= 100.0;

    const MachineConfig config = MachineConfig::commodity2S16C();
    bench::banner("Engine", "simulation-engine throughput", config);
    bench::paperExpectation(
        "simulator throughput bounds design-space coverage; engine "
        "hot paths must be allocation-free");
    bench::rule();
    std::printf("%-14s | %14s %10s | %14s\n", "scenario", "events",
                "wall_s", "events/sec");
    bench::rule();

    bench::JsonWriter json("Engine", "simulation-engine throughput");
    double stormEps = 0;
    for (const ScenarioResult &r :
         {runEventChurn(), runTlbChurn(), runMunmapStorm()}) {
        std::printf("%-14s | %14llu %10.3f | %14.0f\n", r.name,
                    static_cast<unsigned long long>(r.events),
                    r.wallSec, r.eventsPerSec());
        json.row()
            .str("scenario", r.name)
            .num("events", r.events)
            .num("wall_sec", r.wallSec)
            .num("events_per_sec", r.eventsPerSec());
        if (std::strcmp(r.name, "munmap_storm") == 0)
            stormEps = r.eventsPerSec();
    }
    bench::rule();
    bench::measuredHeadline("munmap_storm %.0f events/sec", stormEps);
    json.headline("munmap_storm %.0f events/sec", stormEps);
    json.write(bench::jsonPathFromArgs(argc, argv));

    if (!checkAgainst.empty()) {
        const double base = baselineEventsPerSec(checkAgainst);
        if (base <= 0) {
            std::fprintf(stderr,
                         "bench_engine: no munmap_storm baseline in "
                         "'%s'\n",
                         checkAgainst.c_str());
            return 2;
        }
        const double floor = base * (1.0 - maxRegression);
        std::printf("perf gate: %.0f events/sec vs baseline %.0f "
                    "(floor %.0f): %s\n",
                    stormEps, base, floor,
                    stormEps >= floor ? "ok" : "REGRESSION");
        if (stormEps < floor)
            return 1;
    }
    return 0;
}
