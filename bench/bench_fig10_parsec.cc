// Figure 10: PARSEC benchmark suite on 16 cores — runtime under LATR
// normalized to Linux, and the shootdown rate of each benchmark.
// Benchmarks that free memory constantly (dedup and its pipelined
// variant) gain; canneal's frequent context switches make it the one
// benchmark that pays for the sweeps.

#include <cstdio>

#include "bench_util.hh"
#include "machine/machine.hh"
#include "workload/parsec.hh"

using namespace latr;

int
main()
{
    const MachineConfig config = MachineConfig::commodity2S16C();
    bench::banner("Figure 10",
                  "PARSEC normalized runtime + shootdowns/s (16 cores)",
                  config);
    bench::paperExpectation(
        "LATR 1.5% faster on average; up to +9.6% (dedup); worst "
        "case -1.7% (canneal)");
    bench::rule();

    std::printf("%-14s | %12s %12s | %10s | %12s\n", "benchmark",
                "linux_ms", "latr_ms", "latr/linux", "shootdn/s");
    bench::rule();

    double ratio_sum = 0;
    double best = 1e9, worst = -1e9;
    const char *best_name = "", *worst_name = "";
    unsigned n = 0;
    for (const ParsecProfile &profile : parsecSuite()) {
        Machine linux_machine(config, PolicyKind::LinuxSync);
        ParsecResult linux_r = runParsec(linux_machine, profile, 16);
        Machine latr_machine(config, PolicyKind::Latr);
        ParsecResult latr_r = runParsec(latr_machine, profile, 16);

        const double ratio = static_cast<double>(latr_r.runtimeNs) /
                             static_cast<double>(linux_r.runtimeNs);
        const double improv = 100.0 * (1.0 - ratio);
        std::printf("%-14s | %12.2f %12.2f | %10.4f | %12.0f\n",
                    profile.name, linux_r.runtimeNs / 1e6,
                    latr_r.runtimeNs / 1e6, ratio,
                    linux_r.shootdownsPerSec);
        ratio_sum += ratio;
        ++n;
        if (improv > worst) {
            worst = improv;
            worst_name = profile.name;
        }
        if (improv < best) {
            best = improv;
            best_name = profile.name;
        }
    }
    bench::rule();
    bench::measuredHeadline(
        "average improvement %.1f%%; best %+.1f%% (%s); worst %+.1f%% "
        "(%s)",
        100.0 * (1.0 - ratio_sum / n), worst, worst_name, best,
        best_name);
    return 0;
}
