// Extension experiment: huge pages (paper section 7 / figure 8's
// closing remark). Unmapping 2 MiB as 512 base pages pays 512 PTE
// clears and (under Linux) a full remote flush; unmapping it as one
// huge mapping clears one PMD entry and invalidates one huge TLB
// entry per core. This bench compares munmap(2 MiB) both ways under
// Linux and LATR — huge pages mitigate the many-page unmap cost for
// Linux, and stack with LATR's lazy shootdown.

#include <cstdio>

#include "bench_util.hh"
#include "machine/machine.hh"

using namespace latr;

namespace
{

double
munmap2M(PolicyKind kind, bool huge)
{
    MachineConfig cfg = MachineConfig::commodity2S16C();
    Machine machine(cfg, kind);
    Kernel &kernel = machine.kernel();
    Process *p = kernel.createProcess("bench");
    Task *t0 = kernel.spawnTask(p, 0);
    Task *t1 = kernel.spawnTask(p, 8); // other socket
    machine.run(2 * kMsec);

    double total = 0;
    const int iters = 60;
    for (int i = 0; i < iters; ++i) {
        SyscallResult m =
            huge ? kernel.mmapHuge(t0, kHugePageSize,
                                   kProtRead | kProtWrite)
                 : kernel.mmap(t0, kHugePageSize,
                               kProtRead | kProtWrite);
        // Touch on both sockets: base mode faults all 512 pages,
        // huge mode faults once per toucher.
        if (huge) {
            kernel.touch(t0, m.addr, true);
            kernel.touch(t1, m.addr, false);
        } else {
            for (std::uint64_t pg = 0; pg < kHugePageSpan; ++pg) {
                kernel.touch(t0, m.addr + pg * kPageSize, true);
                kernel.touch(t1, m.addr + pg * kPageSize, false);
            }
        }
        machine.run(200 * kUsec);
        SyscallResult u = kernel.munmap(t0, m.addr, kHugePageSize);
        total += static_cast<double>(u.latency);
        machine.run(u.latency + 100 * kUsec);
    }
    machine.run(8 * kMsec);
    if (machine.checker()->violations() != 0) {
        std::printf("INVARIANT VIOLATED (%s %s)\n",
                    policyKindName(kind), huge ? "huge" : "base");
        std::exit(1);
    }
    return total / iters;
}

} // namespace

int
main()
{
    const MachineConfig config = MachineConfig::commodity2S16C();
    bench::banner("Extension: huge pages",
                  "munmap(2 MiB) as 512 base pages vs. one huge page",
                  config);
    bench::paperExpectation(
        "figure 8 / section 7: huge pages mitigate the cost of "
        "unmapping many pages at once; LATR states extend with a "
        "huge flag");
    bench::rule();

    std::printf("%-10s | %14s | %14s | %8s\n", "policy",
                "512x4K_us", "1x2M_us", "speedup");
    bench::rule();
    for (PolicyKind kind : {PolicyKind::LinuxSync, PolicyKind::Latr}) {
        const double base_us = munmap2M(kind, false) / 1000.0;
        const double huge_us = munmap2M(kind, true) / 1000.0;
        std::printf("%-10s | %14.2f | %14.2f | %7.1fx\n",
                    policyKindName(kind), base_us, huge_us,
                    base_us / huge_us);
    }
    bench::rule();
    bench::measuredHeadline(
        "huge mappings collapse the per-page unmap work under both "
        "policies; LATR additionally removes the shootdown wait");
    return 0;
}
