/**
 * @file
 * The discrete-event kernel. All asynchronous activity in the
 * simulated machine — IPI deliveries, scheduler ticks, background
 * reclamation, workload steps — is an Event scheduled on the single
 * global EventQueue and executed in nondecreasing tick order. Events
 * scheduled for the same tick run in FIFO order of scheduling, which
 * keeps the simulation deterministic.
 *
 * The queue is allocation-free in steady state: liveness of heap
 * entries is tracked by a generation counter in a queue-owned slot
 * array (no hash map, and stale entries never dereference the event,
 * whose owner may already have destroyed it), and the lambda wrappers
 * scheduleLambda() hands out are recycled through a free-list pool.
 */

#ifndef LATR_SIM_EVENT_QUEUE_HH_
#define LATR_SIM_EVENT_QUEUE_HH_

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace latr
{

class EventQueue;

/**
 * A schedulable unit of work. Subclass and implement process(), or use
 * scheduleLambda() for one-off callbacks. Events do not own
 * themselves; the creator controls lifetime, except for lambda events
 * which the queue recycles after they run.
 */
class Event
{
  public:
    virtual ~Event() = default;

    /** Execute the event; called by the queue at the scheduled tick. */
    virtual void process() = 0;

    /** Human-readable name for tracing. */
    virtual const char *name() const { return "event"; }

    /** True while the event sits in a queue. */
    bool scheduled() const { return scheduled_; }

    /** Tick this event is scheduled for (valid while scheduled). */
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    bool scheduled_ = false;
    bool autoDelete_ = false;
    Tick when_ = 0;
    std::uint64_t seq_ = 0;
    /** Index of the queue slot tracking this event while scheduled. */
    std::uint32_t slot_ = 0;
};

/**
 * The global event queue: a priority queue ordered by (tick, sequence
 * number). Drives simulated time; now() only advances when events run.
 * deschedule() uses lazy deletion: stale heap entries are skipped when
 * they surface, detected by a (slot, generation) compare against the
 * slot array — never by dereferencing the event pointer, since an
 * owner may destroy a descheduled event at any time.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue();

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p event at absolute tick @p when. Scheduling in the
     * past (before now()) or double-scheduling is a simulator bug.
     */
    void schedule(Event *event, Tick when);

    /**
     * Reschedule @p event to @p when, whether or not it is currently
     * scheduled.
     */
    void reschedule(Event *event, Tick when);

    /** Remove @p event from the queue; no-op if not scheduled. */
    void deschedule(Event *event);

    /**
     * Schedule a one-off callback at @p when. The queue owns the
     * wrapper; after it runs (or at destruction) it is recycled into
     * a pool for the next scheduleLambda().
     */
    void scheduleLambda(Tick when, std::function<void()> fn);

    /** Number of live (non-stale) events currently scheduled. */
    std::size_t pending() const { return livePending_; }

    /** True when no live events remain. */
    bool empty() const { return livePending_ == 0; }

    /** Total events dispatched over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Run events until the queue empties or the next event lies
     * beyond @p limit. When the run stops because of @p limit, now()
     * is advanced to @p limit.
     * @return number of events executed.
     */
    std::uint64_t run(Tick limit = kTickNever);

    /** Execute exactly one event if any is pending. @return true if so. */
    bool step();

  private:
    /** A lambda-wrapping event owned (and pooled) by the queue. */
    class LambdaEvent : public Event
    {
      public:
        explicit LambdaEvent(std::function<void()> fn)
            : fn_(std::move(fn))
        {}

        void process() override { fn_(); }
        const char *name() const override { return "lambda"; }

      private:
        friend class EventQueue;

        std::function<void()> fn_;
    };

    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /**
     * One tracking slot per scheduled event. The generation counter
     * advances every time the slot is released (deschedule or
     * dispatch), so heap entries carrying an older generation are
     * recognized as stale without touching the event they name. The
     * auto-delete flag is captured here at schedule time because the
     * destructor may only dereference queue-owned events — an owner
     * may destroy even a still-scheduled event right before the
     * queue itself dies.
     */
    struct Slot
    {
        Event *event;
        std::uint32_t gen;
        bool owned;
    };

    /** Claim a slot for @p event (reusing the free list). */
    std::uint32_t acquireSlot(Event *event);

    /** Release @p slot, aging its generation. */
    void releaseSlot(std::uint32_t slot);

    /** Return a finished lambda wrapper to the pool. */
    void recycleLambda(LambdaEvent *ev);

    /** Drop heap entries whose event was descheduled or rescheduled. */
    void popStale();

    /** Run the event at the top of the heap (caller checked liveness). */
    void dispatchTop();

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t livePending_ = 0;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;
    std::vector<LambdaEvent *> lambdaPool_;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

} // namespace latr

#endif // LATR_SIM_EVENT_QUEUE_HH_
