/**
 * @file
 * The discrete-event kernel. All asynchronous activity in the
 * simulated machine — IPI deliveries, scheduler ticks, background
 * reclamation, workload steps — is an Event scheduled on the single
 * global EventQueue and executed in nondecreasing tick order. Events
 * scheduled for the same tick run in FIFO order of scheduling, which
 * keeps the simulation deterministic.
 */

#ifndef LATR_SIM_EVENT_QUEUE_HH_
#define LATR_SIM_EVENT_QUEUE_HH_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace latr
{

class EventQueue;

/**
 * A schedulable unit of work. Subclass and implement process(), or use
 * scheduleLambda() for one-off callbacks. Events do not own
 * themselves; the creator controls lifetime, except for lambda events
 * which the queue deletes after they run.
 */
class Event
{
  public:
    virtual ~Event() = default;

    /** Execute the event; called by the queue at the scheduled tick. */
    virtual void process() = 0;

    /** Human-readable name for tracing. */
    virtual const char *name() const { return "event"; }

    /** True while the event sits in a queue. */
    bool scheduled() const { return scheduled_; }

    /** Tick this event is scheduled for (valid while scheduled). */
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    bool scheduled_ = false;
    bool autoDelete_ = false;
    Tick when_ = 0;
    std::uint64_t seq_ = 0;
};

/**
 * The global event queue: a priority queue ordered by (tick, sequence
 * number). Drives simulated time; now() only advances when events run.
 * deschedule() uses lazy deletion: stale heap entries are skipped when
 * they surface.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue();

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p event at absolute tick @p when. Scheduling in the
     * past (before now()) or double-scheduling is a simulator bug.
     */
    void schedule(Event *event, Tick when);

    /**
     * Reschedule @p event to @p when, whether or not it is currently
     * scheduled.
     */
    void reschedule(Event *event, Tick when);

    /** Remove @p event from the queue; no-op if not scheduled. */
    void deschedule(Event *event);

    /**
     * Schedule a one-off callback at @p when. The queue owns the
     * wrapper and deletes it after it runs (or at destruction).
     */
    void scheduleLambda(Tick when, std::function<void()> fn);

    /** Number of live (non-stale) events currently scheduled. */
    std::size_t pending() const { return live_.size(); }

    /** True when no live events remain. */
    bool empty() const { return live_.empty(); }

    /**
     * Run events until the queue empties or the next event lies
     * beyond @p limit. When the run stops because of @p limit, now()
     * is advanced to @p limit.
     * @return number of events executed.
     */
    std::uint64_t run(Tick limit = kTickNever);

    /** Execute exactly one event if any is pending. @return true if so. */
    bool step();

  private:
    /** A lambda-wrapping event owned (and deleted) by the queue. */
    class LambdaEvent : public Event
    {
      public:
        explicit LambdaEvent(std::function<void()> fn)
            : fn_(std::move(fn))
        {}

        void process() override { fn_(); }
        const char *name() const override { return "lambda"; }

      private:
        std::function<void()> fn_;
    };

    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Event *event;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Drop heap entries whose event was descheduled or rescheduled. */
    void popStale();

    /** Run the event at the top of the heap (caller checked liveness). */
    void dispatchTop();

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    /**
     * Live scheduled events keyed by sequence number, with the
     * auto-delete flag captured at schedule time. Stale heap entries
     * (descheduled/rescheduled events) are detected by seq lookup
     * here, never by dereferencing the event pointer — an owner may
     * destroy a descheduled event at any time, and the destructor
     * dereferences only queue-owned (auto-delete) events, since an
     * owner may even destroy a still-scheduled event right before
     * the queue itself dies.
     */
    std::unordered_map<std::uint64_t, std::pair<Event *, bool>> live_;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

} // namespace latr

#endif // LATR_SIM_EVENT_QUEUE_HH_
