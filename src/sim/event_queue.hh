/**
 * @file
 * The discrete-event kernel. All asynchronous activity in the
 * simulated machine — IPI deliveries, scheduler ticks, background
 * reclamation, workload steps — is an Event scheduled on the single
 * global EventQueue and executed in nondecreasing tick order. Events
 * scheduled for the same tick run in FIFO order of scheduling, which
 * keeps the simulation deterministic.
 *
 * The queue is allocation-free in steady state: liveness of heap
 * entries is tracked by a generation counter in a queue-owned slot
 * array (no hash map, and stale entries never dereference the event,
 * whose owner may already have destroyed it), and the lambda wrappers
 * scheduleLambda() hands out are recycled through a free-list pool.
 *
 * With a ParallelExecutor attached (MachineConfig::simThreads > 0)
 * the queue runs the optimistic batched engine: ready events that
 * declare a conflict footprint are pulled into a batch, their
 * read-only compute() phases run concurrently on a worker pool, and
 * their process() commits replay in exact (tick, seq) order on the
 * coordinating thread — so every simulated side effect, counter, and
 * trace record is byte-identical to the sequential engine. Events
 * without a footprint are barriers executed inline, sequentially.
 * See src/sim/parallel_exec.{hh,cc} for the batch dispatcher.
 */

#ifndef LATR_SIM_EVENT_QUEUE_HH_
#define LATR_SIM_EVENT_QUEUE_HH_

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace latr
{

class ConflictTracker;
class EventQueue;
class ParallelExecutor;

/**
 * Named global simulation resources for conflict footprints: shared
 * state that is neither a core nor an address space. Coarse on
 * purpose — a false overlap only costs a batch break, never
 * correctness.
 */
enum class SimResource : unsigned
{
    /**
     * Publication and retirement of LATR states: the active set, the
     * per-core rings, and the sweep-elision mask. Events whose
     * compute() reads this state declare a read; events whose commit
     * may publish, reclaim, or otherwise restructure it declare a
     * write. Sweep retirements (mask-bit clears, deactivation,
     * compaction) are exempt from the write declaration: they are
     * plan-preserving by construction (see DESIGN.md §8).
     */
    LatrPublish = 0,
    /** The frame allocator's free lists (page release/grab). */
    FrameAllocator,
    /**
     * Sharer-directory plans (ABIS access-bit harvests). Deliberately
     * a *no-writer* resource: no event declares a write, so its epoch
     * advances only on the blanket bumps — undeclared barriers,
     * interlopers writing into a batch's read union, and run() entry.
     * An event that (a) declares a read of the address space whose
     * sharer sets its compute() harvests — keeping same-batch writers
     * of that mm from preceding it — and (b) validates the harvest
     * against this epoch at commit therefore sees every mutation path
     * invalidate its plan, without paying per-resource bumps from
     * unrelated declared commits (DESIGN.md §8.4).
     */
    SharerDirectory,
    Count,
};

/** Number of distinct SimResource values. */
constexpr unsigned kNumSimResources =
    static_cast<unsigned>(SimResource::Count);

/**
 * The conflict footprint of one event: the cores, address spaces,
 * and global resources its compute() phase reads and its process()
 * commit may write. The batch dispatcher admits an event to the open
 * batch only if the accumulated write set of earlier batch members
 * does not intersect the event's read set — the one hazard the
 * all-computes-then-ordered-commits protocol leaves open. Write/write
 * overlap is harmless (commits are serialized in (tick, seq) order)
 * and so is read/read.
 *
 * Address spaces are identified by pointer; more than kMaxSpaces
 * distinct spaces on one side widens that side to "all spaces",
 * which is always sound.
 */
class EventFootprint
{
  public:
    static constexpr unsigned kMaxSpaces = 4;

    void
    clear()
    {
        coresRead_.reset();
        coresWritten_.reset();
        globalsRead_ = 0;
        globalsWritten_ = 0;
        nSpaces_[0] = nSpaces_[1] = 0;
        allSpaces_[0] = allSpaces_[1] = false;
    }

    void readCore(CoreId core) { coresRead_.set(core); }
    void writeCore(CoreId core) { coresWritten_.set(core); }

    void readSpace(const void *mm) { addSpace(0, mm); }
    void writeSpace(const void *mm) { addSpace(1, mm); }

    /** Declare reads (writes) of every address space. */
    void readAllSpaces() { allSpaces_[0] = true; }
    void writeAllSpaces() { allSpaces_[1] = true; }

    void
    readGlobal(SimResource r)
    {
        globalsRead_ |= 1u << static_cast<unsigned>(r);
    }

    void
    writeGlobal(SimResource r)
    {
        globalsWritten_ |= 1u << static_cast<unsigned>(r);
    }

    /// @name Dispatcher queries
    /// @{
    const CpuMask &coresRead() const { return coresRead_; }
    const CpuMask &coresWritten() const { return coresWritten_; }
    std::uint32_t globalsRead() const { return globalsRead_; }
    std::uint32_t globalsWritten() const { return globalsWritten_; }
    bool allSpacesRead() const { return allSpaces_[0]; }
    bool allSpacesWritten() const { return allSpaces_[1]; }
    unsigned spacesRead() const { return nSpaces_[0]; }
    unsigned spacesWritten() const { return nSpaces_[1]; }
    const void *spaceRead(unsigned i) const { return spaces_[0][i]; }
    const void *spaceWritten(unsigned i) const { return spaces_[1][i]; }
    /// @}

  private:
    void
    addSpace(unsigned side, const void *mm)
    {
        if (allSpaces_[side])
            return;
        for (unsigned i = 0; i < nSpaces_[side]; ++i)
            if (spaces_[side][i] == mm)
                return;
        if (nSpaces_[side] == kMaxSpaces) {
            allSpaces_[side] = true;
            return;
        }
        spaces_[side][nSpaces_[side]++] = mm;
    }

    CpuMask coresRead_;
    CpuMask coresWritten_;
    std::uint32_t globalsRead_ = 0;
    std::uint32_t globalsWritten_ = 0;
    const void *spaces_[2][kMaxSpaces] = {};
    unsigned nSpaces_[2] = {0, 0};
    bool allSpaces_[2] = {false, false};
};

/**
 * A schedulable unit of work. Subclass and implement process(), or use
 * scheduleLambda() for one-off callbacks. Events do not own
 * themselves; the creator controls lifetime, except for lambda events
 * which the queue recycles after they run.
 */
class Event
{
  public:
    virtual ~Event() = default;

    /** Execute the event; called by the queue at the scheduled tick. */
    virtual void process() = 0;

    /**
     * Declare this event's conflict footprint into @p fp and return
     * true, or return false to stay undeclared. Undeclared events
     * are barriers under the batched engine: executed inline,
     * sequentially, with every cached plan invalidated — always
     * correct, never fast. Called by the dispatcher at batch
     * formation, so the declaration may consult current simulation
     * state; it must cover everything process() mutates that another
     * event's compute() might read.
     */
    virtual bool footprint(EventFootprint &fp) const
    {
        (void)fp;
        return false;
    }

    /**
     * Optional read-only speculation phase, run before the commit —
     * possibly on a worker thread, concurrently with other batch
     * members' compute(). It may read any state its footprint
     * declares as read and write only event-local or per-core
     * plan scratch. process() must not depend on compute() having
     * run: a plan is an acceleration the commit validates and may
     * discard (the sequential engine never calls compute() at all).
     *
     * Any plan carried from compute() to process() MUST be validated
     * at commit time against the EventQueue::resourceEpoch() of an
     * epoch-tracked SimResource the footprint declares read, and
     * discarded on mismatch. Core and address-space reads gate batch
     * admission but carry no epoch of their own; the queue instead
     * advances *every* resource epoch whenever a commit-phase
     * interloper writes state the batch declared read, so an
     * epoch-checked plan can never survive such a write — but a plan
     * validated any other way (or derived from undeclared state)
     * could, silently. See DESIGN.md §8.3.
     */
    virtual void compute() {}

    /**
     * Rough cost of compute() (0 = trivial). The dispatcher offloads
     * a batch to the worker pool only when at least two members
     * report nonzero weight; batches of trivial computes run inline
     * to skip the wakeup latency.
     */
    virtual unsigned computeWeight() const { return 0; }

    /** Human-readable name for tracing. */
    virtual const char *name() const { return "event"; }

    /** True while the event sits in a queue. */
    bool scheduled() const { return scheduled_; }

    /** Tick this event is scheduled for (valid while scheduled). */
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    bool scheduled_ = false;
    bool autoDelete_ = false;
    Tick when_ = 0;
    std::uint64_t seq_ = 0;
    /** Index of the queue slot tracking this event while scheduled. */
    std::uint32_t slot_ = 0;
};

/**
 * The global event queue: a priority queue ordered by (tick, sequence
 * number). Drives simulated time; now() only advances when events run.
 * deschedule() uses lazy deletion: stale heap entries are skipped when
 * they surface, detected by a (slot, generation) compare against the
 * slot array — never by dereferencing the event pointer, since an
 * owner may destroy a descheduled event at any time.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue();

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p event at absolute tick @p when. Scheduling in the
     * past (before now()) or double-scheduling is a simulator bug.
     */
    void schedule(Event *event, Tick when);

    /**
     * Reschedule @p event to @p when, whether or not it is currently
     * scheduled.
     */
    void reschedule(Event *event, Tick when);

    /** Remove @p event from the queue; no-op if not scheduled. */
    void deschedule(Event *event);

    /**
     * Schedule a one-off callback at @p when. The queue owns the
     * wrapper; after it runs (or at destruction) it is recycled into
     * a pool for the next scheduleLambda().
     */
    void scheduleLambda(Tick when, std::function<void()> fn);

    /**
     * Like scheduleLambda(), but with a declared conflict footprint
     * so the callback can ride along in parallel batches instead of
     * acting as a barrier. The footprint must cover everything the
     * callback mutates that another event's compute() might read.
     */
    void scheduleLambda(Tick when, const EventFootprint &fp,
                        std::function<void()> fn);

    /** Number of live (non-stale) events currently scheduled. */
    std::size_t pending() const { return livePending_; }

    /** True when no live events remain. */
    bool empty() const { return livePending_ == 0; }

    /** Total events dispatched over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Run events until the queue empties or the next event lies
     * beyond @p limit. When the run stops because of @p limit, now()
     * is advanced to @p limit.
     * @return number of events executed.
     */
    std::uint64_t run(Tick limit = kTickNever);

    /** Execute exactly one event if any is pending. @return true if so. */
    bool step();

    /// @name Batched parallel engine
    /// @{

    /**
     * Attach (or with nullptr detach) the compute worker pool. While
     * attached, run() uses the optimistic batched dispatcher; step()
     * stays sequential. The executor is borrowed, not owned. The
     * lambda freelist splits into one pool per compute lane (see
     * recycleLambda()); detaching folds the lanes back into one.
     */
    void setParallelExecutor(ParallelExecutor *exec);

    ParallelExecutor *parallelExecutor() const { return exec_; }

    /** Lambda freelist lanes (1 without an executor). For tests. */
    unsigned lambdaLanes() const
    {
        return static_cast<unsigned>(lambdaPools_.size());
    }

    /** Pooled wrappers parked on @p lane's freelist. For tests. */
    std::size_t lambdaPoolSize(unsigned lane) const
    {
        return lambdaPools_.at(lane).size();
    }

    /**
     * Monotone epoch of @p r, advanced whenever an event that may
     * write @p r commits (undeclared events and run() entry advance
     * every epoch). Plans computed under an older epoch are stale;
     * consumers must fall back to a fresh evaluation.
     */
    std::uint64_t
    resourceEpoch(SimResource r) const
    {
        return resourceEpoch_[static_cast<unsigned>(r)];
    }

    /// @}

  private:
    /** A lambda-wrapping event owned (and pooled) by the queue. */
    class LambdaEvent : public Event
    {
      public:
        explicit LambdaEvent(std::function<void()> fn)
            : fn_(std::move(fn))
        {}

        void process() override { fn_(); }

        bool
        footprint(EventFootprint &fp) const override
        {
            if (!hasFp_)
                return false;
            fp = fp_;
            return true;
        }

        const char *name() const override { return "lambda"; }

      private:
        friend class EventQueue;

        std::function<void()> fn_;
        EventFootprint fp_;
        bool hasFp_ = false;
    };

    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /**
     * One tracking slot per scheduled event. The generation counter
     * advances every time the slot is released (deschedule or
     * dispatch), so heap entries carrying an older generation are
     * recognized as stale without touching the event they name. The
     * auto-delete flag is captured here at schedule time because the
     * destructor may only dereference queue-owned events — an owner
     * may destroy even a still-scheduled event right before the
     * queue itself dies.
     */
    struct Slot
    {
        Event *event;
        std::uint32_t gen;
        bool owned;
    };

    /** Claim a slot for @p event (reusing the free list). */
    std::uint32_t acquireSlot(Event *event);

    /** Release @p slot, aging its generation. */
    void releaseSlot(std::uint32_t slot);

    /**
     * Pop a pooled wrapper, or nullptr when every lane is empty.
     * Local-acquire: the committing coordinator allocates, so its own
     * lane (0) is tried first and the worker lanes are only stolen
     * from when it runs dry.
     */
    LambdaEvent *acquireLambda();

    /**
     * Return a finished lambda wrapper to @p lane's freelist.
     * Remote-release, the other half of the NUMA event-pool
     * discipline: a wrapper whose compute() ran on a worker lane goes
     * back to that lane's pool, so with pinned workers each lane's
     * wrappers cycle through one cache/NUMA domain instead of all
     * lanes funnelling through a single LIFO stack. @p lane is the
     * executor's computing lane for batch members, 0 for sequential
     * and barrier dispatches.
     */
    void recycleLambda(LambdaEvent *ev, unsigned lane);

    /** Drop heap entries whose event was descheduled or rescheduled. */
    void popStale();

    /** Run the event at the top of the heap (caller checked liveness). */
    void dispatchTop();

    /// @name Batched dispatcher internals (src/sim/parallel_exec.cc)
    /// @{

    /** One admitted batch member, pinned in (tick, seq) order. */
    struct BatchMember
    {
        Entry entry;
        Event *event;
        /** SimResource bits whose epoch the commit advances. */
        std::uint32_t writtenGlobals;
    };

    /** The batched run loop (run() delegates here while exec_ set). */
    std::uint64_t runBatched(Tick limit);

    /**
     * Dispatch the heap top inline (caller ran popStale()) and
     * advance the epochs its commit may have dirtied — all of them
     * for an undeclared event, or for a declared one whose write set
     * intersects @p batchReads (the open batch's accumulated read
     * union; nullptr outside a commit phase). The latter is the
     * interloper case: its writes were never admission-checked
     * against the batch, so every plan a member speculated over that
     * state must be invalidated.
     */
    void dispatchInlineBatched(const ConflictTracker *batchReads);

    void
    bumpEpochs(std::uint32_t globals)
    {
        for (unsigned r = 0; r < kNumSimResources; ++r)
            if (globals & (1u << r))
                ++resourceEpoch_[r];
    }

    void
    bumpAllEpochs()
    {
        for (unsigned r = 0; r < kNumSimResources; ++r)
            ++resourceEpoch_[r];
    }

    /// @}

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t livePending_ = 0;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;
    /** Per-compute-lane lambda freelists; lane 0 is the coordinator. */
    std::vector<std::vector<LambdaEvent *>> lambdaPools_{1};
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;

    ParallelExecutor *exec_ = nullptr;
    std::uint64_t resourceEpoch_[kNumSimResources] = {};
    /** Batch scratch, reused run to run (allocation-free steady state). */
    std::vector<BatchMember> batch_;
    std::vector<Event *> batchEvents_;
    EventFootprint scratchFp_;
};

} // namespace latr

#endif // LATR_SIM_EVENT_QUEUE_HH_
