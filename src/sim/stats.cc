#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/logging.hh"

namespace latr
{

Distribution::Distribution(std::size_t max_samples)
    : maxSamples_(max_samples), rngState_(0x5157af1dULL)
{
    // Reserve the whole reservoir up front: sample() then never
    // reallocates, so distributions are allocation-free in steady
    // state (reset() clears but keeps the capacity).
    reservoir_.reserve(max_samples);
}

void
Distribution::sample(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;

    // Algorithm R reservoir sampling keeps percentile queries exact
    // for short streams and statistically sound for long ones.
    ++seen_;
    if (reservoir_.size() < maxSamples_) {
        reservoir_.push_back(value);
        sorted_ = false;
    } else {
        rngState_ = rngState_ * 6364136223846793005ULL + 1442695040888963407ULL;
        std::uint64_t slot = (rngState_ >> 16) % seen_;
        if (slot < maxSamples_) {
            reservoir_[slot] = value;
            sorted_ = false;
        }
    }
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    reservoir_.clear();
    sorted_ = true;
    seen_ = 0;
}

double
Distribution::min() const
{
    return count_ ? min_ : 0.0;
}

double
Distribution::max() const
{
    return count_ ? max_ : 0.0;
}

double
Distribution::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Distribution::percentile(double q) const
{
    if (reservoir_.empty())
        return 0.0;
    if (q < 0.0 || q > 1.0)
        panic("percentile quantile %f out of [0, 1]", q);
    if (!sorted_) {
        std::sort(reservoir_.begin(), reservoir_.end());
        sorted_ = true;
    }
    // Inclusive nearest rank: the smallest sample v such that at
    // least ceil(q * n) samples are <= v, clamped so q = 0 is the
    // minimum. Linear interpolation (the previous definition) biases
    // tail percentiles low at small n — with n = 100, p99 landed
    // between the 99th and 100th samples instead of on the sample
    // 99% of the data sits at or below — and cannot agree with a
    // counting histogram. This definition matches
    // LatencyHistogram::percentile exactly.
    const std::size_t n = reservoir_.size();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    rank = std::max<std::size_t>(rank, 1);
    rank = std::min(rank, n);
    return reservoir_[rank - 1];
}

double
ratePerSecond(std::uint64_t events, std::uint64_t elapsed_ns)
{
    if (elapsed_ns == 0)
        return 0.0;
    return static_cast<double>(events) * 1e9 /
           static_cast<double>(elapsed_ns);
}

Counter &
StatRegistry::counter(const std::string &name)
{
    return counters_[name];
}

Distribution &
StatRegistry::distribution(const std::string &name)
{
    auto it = distributions_.find(name);
    if (it == distributions_.end())
        it = distributions_.emplace(name, Distribution()).first;
    return it->second;
}

bool
StatRegistry::hasCounter(const std::string &name) const
{
    return counters_.count(name) != 0;
}

std::uint64_t
StatRegistry::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatRegistry::resetAll()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : distributions_)
        kv.second.reset();
}

std::string
StatRegistry::dump() const
{
    std::ostringstream os;
    for (const auto &kv : counters_)
        os << kv.first << " " << kv.second.value() << "\n";
    for (const auto &kv : distributions_) {
        const Distribution &d = kv.second;
        os << kv.first << " count=" << d.count() << " mean=" << d.mean()
           << " min=" << d.min() << " max=" << d.max()
           << " p50=" << d.percentile(0.5) << " p99=" << d.percentile(0.99)
           << "\n";
    }
    return os.str();
}

} // namespace latr
