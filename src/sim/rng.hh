/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 * Every stochastic choice in the simulation draws from an explicitly
 * seeded Rng so runs are reproducible; xoshiro256** is used for its
 * quality and speed.
 */

#ifndef LATR_SIM_RNG_HH_
#define LATR_SIM_RNG_HH_

#include <cstdint>

namespace latr
{

/**
 * A deterministic xoshiro256** generator. Seeded via splitmix64 so any
 * 64-bit seed (including 0) produces a well-mixed state.
 */
class Rng
{
  public:
    /** Construct with @p seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x1a725eedULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); @p bound must be nonzero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** True with probability @p p (clamped to [0, 1]). */
    bool nextBool(double p);

    /**
     * Exponentially distributed value with the given mean, for
     * Poisson inter-arrival times in open-loop workloads.
     */
    double nextExponential(double mean);

  private:
    std::uint64_t state_[4];
};

} // namespace latr

#endif // LATR_SIM_RNG_HH_
