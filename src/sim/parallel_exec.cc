#include "sim/parallel_exec.hh"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace latr
{

namespace
{
/**
 * Batch size cap. Bounds how far the dispatcher speculates past the
 * commit frontier (and therefore how much interloper scanning a
 * commit can owe); far above the handful of same-phase ticks a
 * machine produces, far below anything that would hurt — and well
 * under the executor's 2^16 claim-cursor field.
 */
constexpr std::size_t kMaxBatch = 128;

/** One polite spin-wait iteration. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/** Pin the calling thread to host CPU @p lane mod the CPU count. */
void
pinToHostCpu(unsigned lane)
{
#ifdef __linux__
    const unsigned ncpus = std::thread::hardware_concurrency();
    if (ncpus == 0)
        return;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(lane % ncpus, &set);
    pthread_setaffinity_np(pthread_self(), sizeof set, &set);
#else
    (void)lane;
#endif
}
} // namespace

ParallelExecutor::ParallelExecutor(unsigned threads, bool pinWorkers,
                                   bool forceOffload)
    : threads_(threads == 0 ? 1 : threads), pinWorkers_(pinWorkers),
      spinIters_(std::thread::hardware_concurrency() >= threads_
                     ? kSpinIters
                     : 0),
      offload_(forceOffload ||
               std::thread::hardware_concurrency() >= 2)
{
    computedBy_.assign(threads_, 0);
    workers_.reserve(threads_ - 1);
    for (unsigned i = 1; i < threads_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ParallelExecutor::~ParallelExecutor()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_.store(true, std::memory_order_release);
    }
    wake_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ParallelExecutor::drainBatch(unsigned lane, Event *const *events,
                             std::size_t count, std::uint64_t gen)
{
    const std::uint64_t tag = gen << kCursorBits;
    std::size_t local = 0;
    std::uint64_t t = ticket_.load(std::memory_order_acquire);
    for (;;) {
        if ((t & ~kCursorMask) != tag)
            break; // slept through a batch boundary: claim nothing
        const std::size_t idx =
            static_cast<std::size_t>(t & kCursorMask);
        if (idx >= count)
            break;
        if (!ticket_.compare_exchange_weak(t, t + 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire))
            continue; // lost the race; t reloaded by the CAS
        laneOf_[idx] = static_cast<std::uint8_t>(lane);
        events[idx]->compute();
        ++local;
        t = ticket_.load(std::memory_order_acquire);
    }
    if (local == 0)
        return; // claimed nothing: no completion to publish
    computedBy_[lane] += local;
    // A successful tag-guarded claim belongs to the live batch, and
    // the coordinator cannot retire that batch (completed_ == count)
    // until every claimant publishes — so this contribution can never
    // land on a later batch's completed_. The coordinator usually
    // spins the last computes out; the lock-then-notify only matters
    // when it gave up and went to sleep (taking mu_ here orders this
    // publish against its predicate check, so the wakeup cannot be
    // lost).
    const std::size_t done =
        completed_.fetch_add(local, std::memory_order_acq_rel) +
        local;
    if (done == count) {
        std::lock_guard<std::mutex> lock(mu_);
        done_.notify_one();
    }
}

void
ParallelExecutor::workerLoop(unsigned lane)
{
    if (pinWorkers_)
        pinToHostCpu(lane);
    // `seen` is the truncated generation tag of the last batch this
    // worker drained (the ticket's high bits).
    std::uint64_t seen = 0;
    for (;;) {
        std::uint64_t tag;
        unsigned spins = 0;
        for (;;) {
            if (stop_.load(std::memory_order_acquire))
                return;
            tag = ticket_.load(std::memory_order_acquire) >>
                  kCursorBits;
            if (tag != seen)
                break;
            if (++spins < spinIters_) {
                cpuRelax();
                continue;
            }
            // Idle phase: sleep until the next publish. The
            // predicate re-reads the ticket under mu_, which
            // computeBatch() publishes under, so the wakeup cannot
            // be lost between this check and the wait.
            std::unique_lock<std::mutex> lock(mu_);
            wake_.wait(lock, [this, seen] {
                return stop_.load(std::memory_order_relaxed) ||
                       (ticket_.load(std::memory_order_relaxed) >>
                        kCursorBits) != seen;
            });
            spins = 0;
        }
        seen = tag;
        // The descriptor may belong to a newer batch than `tag` by
        // the time these load (this thread can stall arbitrarily
        // long); drainBatch's generation-tag guard makes a stale or
        // mixed descriptor harmless — it claims nothing.
        Event *const *events =
            events_.load(std::memory_order_acquire);
        const std::size_t count =
            count_.load(std::memory_order_acquire);
        drainBatch(lane, events, count, tag);
    }
}

void
ParallelExecutor::computeBatch(Event *const *events, std::size_t n,
                               unsigned heavyCount)
{
    stats_.computed += n;
    laneOf_.assign(n, 0);
    if (threads_ == 1 || !offload_ || heavyCount < 2 || n < 2) {
        // Inline: the wakeup would cost more than the computes, or
        // there is nobody to share them with.
        for (std::size_t i = 0; i < n; ++i)
            events[i]->compute();
        computedBy_[0] += n;
        return;
    }
    ++stats_.parallelBatches;
    std::uint64_t gen;
    {
        // The lock only orders this publish against workers entering
        // their sleep fallback; spinning workers pick the batch up
        // straight from the ticket store.
        std::lock_guard<std::mutex> lock(mu_);
        events_.store(events, std::memory_order_relaxed);
        count_.store(n, std::memory_order_relaxed);
        completed_.store(0, std::memory_order_relaxed);
        gen = ++generation_;
        // Re-tagging the ticket retires every outstanding claim
        // ticket of the previous batch and publishes the new
        // descriptor in the same release store.
        ticket_.store(gen << kCursorBits, std::memory_order_release);
    }
    wake_.notify_all();
    drainBatch(0, events, n, gen);
    // The stragglers are lanes mid-compute; spin them out before
    // paying for a futex sleep.
    for (unsigned spins = 0;
         completed_.load(std::memory_order_acquire) != n; ++spins) {
        if (spins < spinIters_) {
            cpuRelax();
            continue;
        }
        std::unique_lock<std::mutex> lock(mu_);
        done_.wait(lock, [this, n] {
            return completed_.load(std::memory_order_relaxed) == n;
        });
        break;
    }
}

/*
 * The batched run loop. Structure per outer iteration:
 *
 *   1. Formation: pop the (tick, seq)-contiguous prefix of live
 *      events whose declared read sets are disjoint from the
 *      accumulated write union of the members admitted before them.
 *      An undeclared event at the front is a barrier, dispatched
 *      inline the classic way; behind admitted members it just ends
 *      the batch. Members stay logically scheduled — slots and
 *      livePending_ untouched — so a commit that deschedules a later
 *      member works through the ordinary (slot, gen) staleness check.
 *
 *   2. Compute: every member's compute() runs (worker pool or
 *      inline), strictly before any commit. Computes are read-only,
 *      so their order is irrelevant.
 *
 *   3. Commit: members' process() bodies replay in exact (tick, seq)
 *      order on this thread, exactly like dispatchTop(). Before each
 *      member, any event ordered ahead of it that a previous commit
 *      scheduled (an interloper — always a fresh, higher seq, so at
 *      a strictly earlier tick) is dispatched inline. After each
 *      commit the epochs of the globals the member declared written
 *      advance, invalidating plans speculated under older state; an
 *      interloper whose write set intersects the batch's read union
 *      (its writes were never admission-checked) advances every
 *      epoch, so no plan outlives state it changed.
 *
 * Every mutation of simulated state happens in step 3 (or in inline
 * barrier dispatches), in the same order the sequential engine would
 * produce — byte-identical results by construction.
 */
std::uint64_t
EventQueue::runBatched(Tick limit)
{
    std::uint64_t executed = 0;
    ParallelExecutor::Stats &stats = exec_->stats();
    // The driver may have touched anything between run() calls
    // (published LATR states, freed frames): invalidate all plans.
    bumpAllEpochs();
    for (;;) {
        popStale();
        if (heap_.empty())
            break;
        if (heap_.top().when > limit) {
            now_ = limit;
            break;
        }

        batch_.clear();
        batchEvents_.clear();
        // The members' write union gates admission; their read union
        // is what commit-phase interlopers are checked against.
        ConflictTracker writeUnion;
        ConflictTracker readUnion;
        writeUnion.clear();
        readUnion.clear();
        unsigned heavy = 0;
        for (;;) {
            popStale();
            if (heap_.empty() || heap_.top().when > limit)
                break;
            if (batch_.size() >= kMaxBatch)
                break;
            const Entry top = heap_.top();
            Event *ev = slots_[top.slot].event;
            scratchFp_.clear();
            if (!ev->footprint(scratchFp_)) {
                if (batch_.empty()) {
                    // Barrier at the front: classic inline dispatch.
                    dispatchInlineBatched(nullptr);
                    ++stats.barrierEvents;
                    ++executed;
                    continue;
                }
                break;
            }
            if (writeUnion.readsIntersect(scratchFp_))
                break;
            heap_.pop();
            writeUnion.addWrites(scratchFp_);
            readUnion.addReads(scratchFp_);
            batch_.push_back(BatchMember{
                top, ev, scratchFp_.globalsWritten()});
            batchEvents_.push_back(ev);
            if (ev->computeWeight() > 0)
                ++heavy;
        }
        if (batch_.empty())
            continue;

        ++stats.batches;
        stats.batchedEvents += batch_.size();
        exec_->computeBatch(batchEvents_.data(), batchEvents_.size(),
                            heavy);

        for (std::size_t i = 0; i < batch_.size(); ++i) {
            const BatchMember &m = batch_[i];
            for (;;) {
                popStale();
                if (heap_.empty())
                    break;
                const Entry &top = heap_.top();
                if (top.when > m.entry.when ||
                    (top.when == m.entry.when &&
                     top.seq > m.entry.seq))
                    break;
                dispatchInlineBatched(&readUnion);
                ++executed;
            }
            Slot &slot = slots_[m.entry.slot];
            if (slot.gen != m.entry.gen)
                continue; // descheduled by an earlier commit
            Event *ev = slot.event;
            const bool owned = slot.owned;
            ev->scheduled_ = false;
            releaseSlot(m.entry.slot);
            --livePending_;
            now_ = m.entry.when;
            ++executed_;
            ev->process();
            bumpEpochs(m.writtenGlobals);
            if (owned)
                recycleLambda(static_cast<LambdaEvent *>(ev),
                              exec_->laneOf(i));
            ++executed;
        }
    }
    if (limit != kTickNever && now_ < limit)
        now_ = limit;
    return executed;
}

void
EventQueue::dispatchInlineBatched(const ConflictTracker *batchReads)
{
    const Entry top = heap_.top();
    scratchFp_.clear();
    const bool declared =
        slots_[top.slot].event->footprint(scratchFp_);
    const std::uint32_t written = scratchFp_.globalsWritten();
    // An interloper was admitted to no batch, so its writes were
    // never conflict-checked against the members' read sets. If they
    // land in the batch's read union, a member's plan may have been
    // speculated over state this commit is about to change: advance
    // every epoch so no such plan survives. (Declared global writes
    // alone are covered by the ordinary per-resource bump.)
    const bool intoBatchReads =
        declared && batchReads &&
        batchReads->writesIntersect(scratchFp_);
    dispatchTop();
    if (!declared || intoBatchReads)
        bumpAllEpochs();
    else
        bumpEpochs(written);
}

} // namespace latr
