/**
 * @file
 * Fundamental simulation types shared by every module: simulated time,
 * addresses, page/frame numbers, core identifiers, and the x86-ish
 * constants (page size, canonical address width) the whole simulator
 * agrees on.
 */

#ifndef LATR_SIM_TYPES_HH_
#define LATR_SIM_TYPES_HH_

#include <cstdint>
#include <limits>

namespace latr
{

/** Simulated time in nanoseconds since simulation start. */
using Tick = std::uint64_t;

/** A simulated time interval in nanoseconds. */
using Duration = std::uint64_t;

/** Sentinel for "no scheduled time". */
constexpr Tick kTickNever = std::numeric_limits<Tick>::max();

/** @name Time literals (all converted to nanoseconds). */
/// @{
constexpr Duration kNsec = 1;
constexpr Duration kUsec = 1000 * kNsec;
constexpr Duration kMsec = 1000 * kUsec;
constexpr Duration kSec = 1000 * kMsec;
/// @}

/** A virtual address in a simulated process address space. */
using Addr = std::uint64_t;

/** A virtual page number (virtual address >> page shift). */
using Vpn = std::uint64_t;

/** A physical frame number. */
using Pfn = std::uint64_t;

/** Sentinel for "no frame". */
constexpr Pfn kPfnInvalid = std::numeric_limits<Pfn>::max();

/** Identifies a core, 0-based, dense across sockets. */
using CoreId = std::uint32_t;

/** Identifies a NUMA node (socket). */
using NodeId = std::uint32_t;

/** Identifies a process address space (the simulated mm_struct). */
using MmId = std::uint64_t;

/** Identifies a task (simulated thread). */
using TaskId = std::uint64_t;

/** x86 process-context identifier tagging TLB entries. */
using Pcid = std::uint16_t;

/** PCID used when PCIDs are disabled (all entries share it). */
constexpr Pcid kPcidNone = 0;

/** Base-2 log of the simulated page size (4 KiB pages). */
constexpr unsigned kPageShift = 12;

/** Simulated page size in bytes. */
constexpr std::uint64_t kPageSize = 1ULL << kPageShift;

/** Base pages per 2 MiB huge page (x86 PMD mapping). */
constexpr std::uint64_t kHugePageSpan = 512;

/** Huge page size in bytes (2 MiB). */
constexpr std::uint64_t kHugePageSize = kPageSize * kHugePageSpan;

/** Round a VPN down to the base VPN of its 2 MiB region. */
constexpr Vpn
hugeBaseOf(Vpn vpn)
{
    return vpn & ~(kHugePageSpan - 1);
}

/** Number of meaningful virtual-address bits (x86-64 canonical). */
constexpr unsigned kVaBits = 48;

/** Exclusive upper bound of the usable user virtual address space. */
constexpr Addr kUserVaLimit = 1ULL << (kVaBits - 1);

/** Convert a virtual address to its page number. */
constexpr Vpn
pageOf(Addr addr)
{
    return addr >> kPageShift;
}

/** Convert a page number back to the base address of the page. */
constexpr Addr
addrOf(Vpn vpn)
{
    return vpn << kPageShift;
}

/** Round an address down to its page base. */
constexpr Addr
pageAlignDown(Addr addr)
{
    return addr & ~(kPageSize - 1);
}

/** Round an address up to the next page boundary. */
constexpr Addr
pageAlignUp(Addr addr)
{
    return (addr + kPageSize - 1) & ~(kPageSize - 1);
}

/** Number of pages covered by [addr, addr + len) after page rounding. */
constexpr std::uint64_t
pagesSpanned(Addr addr, std::uint64_t len)
{
    if (len == 0)
        return 0;
    return (pageAlignUp(addr + len) - pageAlignDown(addr)) >> kPageShift;
}

/**
 * A set of cores, the simulated analogue of Linux's cpumask. Supports
 * up to 128 cores, enough for the paper's 120-core machine.
 */
class CpuMask
{
  public:
    static constexpr unsigned kMaxCores = 128;

    CpuMask() = default;

    /** Mask with the single core @p core set. */
    static CpuMask
    single(CoreId core)
    {
        CpuMask m;
        m.set(core);
        return m;
    }

    /** Mask with cores [0, n) set, built a word at a time. */
    static CpuMask
    firstN(unsigned n)
    {
        CpuMask m;
        if (n >= kMaxCores) {
            m.bits_[0] = ~0ULL;
            m.bits_[1] = ~0ULL;
            return m;
        }
        for (unsigned w = 0; w < n / 64; ++w)
            m.bits_[w] = ~0ULL;
        if (n % 64)
            m.bits_[n / 64] = (1ULL << (n % 64)) - 1;
        return m;
    }

    void
    set(CoreId core)
    {
        bits_[word(core)] |= bit(core);
    }

    void
    clear(CoreId core)
    {
        bits_[word(core)] &= ~bit(core);
    }

    bool
    test(CoreId core) const
    {
        return (bits_[word(core)] & bit(core)) != 0;
    }

    bool
    empty() const
    {
        return bits_[0] == 0 && bits_[1] == 0;
    }

    /** Number of cores in the mask. */
    unsigned
    count() const
    {
        return __builtin_popcountll(bits_[0]) +
               __builtin_popcountll(bits_[1]);
    }

    void
    orWith(const CpuMask &other)
    {
        bits_[0] |= other.bits_[0];
        bits_[1] |= other.bits_[1];
    }

    void
    andWith(const CpuMask &other)
    {
        bits_[0] &= other.bits_[0];
        bits_[1] &= other.bits_[1];
    }

    void
    reset()
    {
        bits_[0] = 0;
        bits_[1] = 0;
    }

    bool
    operator==(const CpuMask &other) const
    {
        return bits_[0] == other.bits_[0] && bits_[1] == other.bits_[1];
    }

    /**
     * Invoke @p fn for every core in the mask, lowest id first.
     * @param fn callable taking a CoreId.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (unsigned w = 0; w < 2; ++w) {
            std::uint64_t v = bits_[w];
            while (v) {
                unsigned b = __builtin_ctzll(v);
                fn(static_cast<CoreId>(w * 64 + b));
                v &= v - 1;
            }
        }
    }

    /**
     * Invoke @p fn once per nonzero 64-bit word, lowest word first.
     * @param fn callable taking (unsigned word_index,
     *     std::uint64_t word); core w*64+b is in the mask iff bit b
     *     of word w is set. Wide fan-outs (IPI delivery, sharer
     *     harvesting) use this to pay the callback once per word
     *     instead of once per core.
     */
    template <typename Fn>
    void
    forEachWord(Fn &&fn) const
    {
        for (unsigned w = 0; w < 2; ++w)
            if (bits_[w])
                fn(w, bits_[w]);
    }

  private:
    static unsigned word(CoreId core) { return core >> 6; }
    static std::uint64_t bit(CoreId core) { return 1ULL << (core & 63); }

    std::uint64_t bits_[2] = {0, 0};
};

} // namespace latr

#endif // LATR_SIM_TYPES_HH_
