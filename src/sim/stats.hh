/**
 * @file
 * Statistics collection: counters, means, and histograms with
 * percentile queries, plus a named registry so machines and benches
 * can dump everything at once. Modeled on (a small slice of) the gem5
 * stats package.
 */

#ifndef LATR_SIM_STATS_HH_
#define LATR_SIM_STATS_HH_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace latr
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Tracks the distribution of a sampled quantity: count, sum, min,
 * max, mean, and percentiles via a bounded reservoir of raw samples.
 */
class Distribution
{
  public:
    /** @param max_samples reservoir size for percentile queries. */
    explicit Distribution(std::size_t max_samples = 1 << 16);

    /** Record one sample. */
    void sample(double value);

    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const;
    double max() const;
    double mean() const;

    /**
     * Value at quantile @p q in [0, 1], inclusive nearest rank: the
     * sample at 1-based index ceil(q * n) of the sorted reservoir
     * (clamped to [1, n], so q = 0 is the minimum and q = 1 the
     * maximum). Exact over the reservoir; statistical over the full
     * stream once the reservoir is full. Matches
     * LatencyHistogram::percentile bit-for-bit on common inputs.
     */
    double percentile(double q) const;

  private:
    std::size_t maxSamples_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    // Reservoir sampling state; mutable so percentile() can sort.
    mutable std::vector<double> reservoir_;
    mutable bool sorted_ = true;
    std::uint64_t seen_ = 0;
    std::uint64_t rngState_;
};

/**
 * A rate meter: events per second of simulated time, given a counter
 * value and an elapsed duration in nanoseconds.
 */
double ratePerSecond(std::uint64_t events, std::uint64_t elapsed_ns);

/**
 * A named registry of counters and distributions. Modules register
 * their stats under dotted names ("tlb.c3.misses"); dump() renders a
 * sorted report.
 */
class StatRegistry
{
  public:
    /** Get (creating if needed) the counter named @p name. */
    Counter &counter(const std::string &name);

    /** Get (creating if needed) the distribution named @p name. */
    Distribution &distribution(const std::string &name);

    /** True if a counter named @p name exists. */
    bool hasCounter(const std::string &name) const;

    /** Value of counter @p name, or 0 if absent. */
    std::uint64_t counterValue(const std::string &name) const;

    /** Reset every stat to zero. */
    void resetAll();

    /** Render all stats, one per line, sorted by name. */
    std::string dump() const;

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> distributions_;
};

} // namespace latr

#endif // LATR_SIM_STATS_HH_
