#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace latr
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &w : state_)
        w = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBounded called with bound 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        panic("Rng::nextRange with lo > hi");
    return lo + nextBounded(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

double
Rng::nextExponential(double mean)
{
    double u = nextDouble();
    // Avoid log(0); nextDouble() is in [0, 1).
    return -mean * std::log1p(-u);
}

} // namespace latr
