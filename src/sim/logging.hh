/**
 * @file
 * Status and error reporting in the gem5 tradition: panic() for
 * internal simulator bugs (aborts), fatal() for user/configuration
 * errors (clean exit), warn()/inform() for status messages, and a
 * debug trace facility gated by a runtime level.
 */

#ifndef LATR_SIM_LOGGING_HH_
#define LATR_SIM_LOGGING_HH_

#include <cstdarg>
#include <string>

namespace latr
{

/** Trace verbosity; messages at or below the global level print. */
enum class LogLevel
{
    Quiet = 0,  ///< only warnings and errors
    Info = 1,   ///< high-level progress
    Debug = 2,  ///< per-operation detail
    Trace = 3,  ///< per-event detail
};

/** Set the global trace verbosity. */
void setLogLevel(LogLevel level);

/** Current global trace verbosity. */
LogLevel logLevel();

/**
 * Report an internal simulator bug and abort. Use when a condition
 * that should be impossible regardless of user input occurs.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1). Use
 * when the simulation cannot continue due to the caller's input, not
 * a simulator bug.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious condition that does not stop the simulation. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a debug message if the global level admits @p level. */
void debugLog(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** panic() unless @p cond holds; @p msg names the violated condition. */
inline void
panicIfNot(bool cond, const char *msg)
{
    if (!cond)
        panic("assertion failed: %s", msg);
}

} // namespace latr

#endif // LATR_SIM_LOGGING_HH_
