#include "sim/event_queue.hh"

#include "sim/logging.hh"
#include "sim/parallel_exec.hh"

namespace latr
{

namespace
{
/** Lambda wrappers kept for reuse per lane; beyond, deleted. */
constexpr std::size_t kLambdaPoolCap = 1024;
} // namespace

EventQueue::~EventQueue()
{
    // Delete any queue-owned lambda events that never ran. Only
    // live, owned slots may be dereferenced; stale heap entries and
    // non-owned events may point at storage their owner already
    // reclaimed.
    for (const Slot &slot : slots_) {
        if (!slot.event || !slot.owned)
            continue;
        slot.event->scheduled_ = false;
        delete slot.event;
    }
    for (const auto &pool : lambdaPools_)
        for (LambdaEvent *ev : pool)
            delete ev;
}

void
EventQueue::setParallelExecutor(ParallelExecutor *exec)
{
    exec_ = exec;
    const std::size_t lanes = exec_ ? exec_->threads() : 1;
    if (lanes >= lambdaPools_.size()) {
        lambdaPools_.resize(lanes);
        return;
    }
    // Shrinking (executor detached): fold the dying lanes' wrappers
    // into lane 0 up to its cap rather than losing the warm pool.
    for (std::size_t lane = lanes; lane < lambdaPools_.size(); ++lane) {
        for (LambdaEvent *ev : lambdaPools_[lane]) {
            if (lambdaPools_[0].size() < kLambdaPoolCap)
                lambdaPools_[0].push_back(ev);
            else
                delete ev;
        }
    }
    lambdaPools_.resize(lanes);
}

EventQueue::LambdaEvent *
EventQueue::acquireLambda()
{
    for (auto &pool : lambdaPools_) {
        if (pool.empty())
            continue;
        LambdaEvent *ev = pool.back();
        pool.pop_back();
        return ev;
    }
    return nullptr;
}

std::uint32_t
EventQueue::acquireSlot(Event *event)
{
    std::uint32_t idx;
    if (!freeSlots_.empty()) {
        idx = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        idx = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(Slot{nullptr, 0, false});
    }
    Slot &slot = slots_[idx];
    slot.event = event;
    slot.owned = event->autoDelete_;
    return idx;
}

void
EventQueue::releaseSlot(std::uint32_t idx)
{
    Slot &slot = slots_[idx];
    slot.event = nullptr;
    slot.owned = false;
    ++slot.gen; // ages every heap entry naming this slot
    freeSlots_.push_back(idx);
}

void
EventQueue::schedule(Event *event, Tick when)
{
    if (event->scheduled_)
        panic("event '%s' scheduled twice", event->name());
    if (when < now_)
        panic("event '%s' scheduled in the past (%llu < %llu)",
              event->name(), static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    event->scheduled_ = true;
    event->when_ = when;
    event->seq_ = nextSeq_++;
    event->slot_ = acquireSlot(event);
    heap_.push(Entry{when, event->seq_, event->slot_,
                     slots_[event->slot_].gen});
    ++livePending_;
}

void
EventQueue::reschedule(Event *event, Tick when)
{
    if (event->scheduled_)
        deschedule(event);
    schedule(event, when);
}

void
EventQueue::deschedule(Event *event)
{
    if (!event->scheduled_)
        return;
    // Lazy deletion: the heap entry stays; it is skipped when it
    // surfaces because its generation no longer matches the slot's.
    event->scheduled_ = false;
    releaseSlot(event->slot_);
    --livePending_;
}

void
EventQueue::scheduleLambda(Tick when, std::function<void()> fn)
{
    LambdaEvent *ev = acquireLambda();
    if (ev) {
        ev->fn_ = std::move(fn);
        ev->hasFp_ = false;
    } else {
        ev = new LambdaEvent(std::move(fn));
        ev->autoDelete_ = true;
    }
    schedule(ev, when);
}

void
EventQueue::scheduleLambda(Tick when, const EventFootprint &fp,
                           std::function<void()> fn)
{
    LambdaEvent *ev = acquireLambda();
    if (ev) {
        ev->fn_ = std::move(fn);
    } else {
        ev = new LambdaEvent(std::move(fn));
        ev->autoDelete_ = true;
    }
    ev->fp_ = fp;
    ev->hasFp_ = true;
    schedule(ev, when);
}

void
EventQueue::recycleLambda(LambdaEvent *ev, unsigned lane)
{
    // Drop the captured state now — it may hold resources whose
    // owners expect release as soon as the callback has run.
    ev->fn_ = nullptr;
    auto &pool = lambdaPools_[lane < lambdaPools_.size() ? lane : 0];
    if (pool.size() < kLambdaPoolCap)
        pool.push_back(ev);
    else
        delete ev;
}

void
EventQueue::popStale()
{
    while (!heap_.empty()) {
        const Entry &top = heap_.top();
        if (slots_[top.slot].gen == top.gen)
            return;
        heap_.pop();
    }
}

void
EventQueue::dispatchTop()
{
    const Entry top = heap_.top();
    heap_.pop();
    Slot &slot = slots_[top.slot];
    Event *ev = slot.event;
    const bool owned = slot.owned;
    ev->scheduled_ = false;
    releaseSlot(top.slot);
    --livePending_;
    now_ = top.when;
    ++executed_;
    ev->process();
    if (owned)
        recycleLambda(static_cast<LambdaEvent *>(ev), 0);
}

std::uint64_t
EventQueue::run(Tick limit)
{
    if (exec_)
        return runBatched(limit); // src/sim/parallel_exec.cc
    std::uint64_t executed = 0;
    for (;;) {
        popStale();
        if (heap_.empty())
            break;
        if (heap_.top().when > limit) {
            now_ = limit;
            break;
        }
        dispatchTop();
        ++executed;
    }
    if (limit != kTickNever && now_ < limit)
        now_ = limit;
    return executed;
}

bool
EventQueue::step()
{
    popStale();
    if (heap_.empty())
        return false;
    dispatchTop();
    return true;
}

} // namespace latr
