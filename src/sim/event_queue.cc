#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace latr
{

EventQueue::~EventQueue()
{
    // Delete any queue-owned lambda events that never ran. Only
    // live events may be dereferenced; stale heap entries may point
    // at storage their owner already reclaimed.
    for (auto &kv : live_) {
        if (!kv.second.second)
            continue; // not queue-owned: must not be dereferenced
        Event *ev = kv.second.first;
        ev->scheduled_ = false;
        delete ev;
    }
}

void
EventQueue::schedule(Event *event, Tick when)
{
    if (event->scheduled_)
        panic("event '%s' scheduled twice", event->name());
    if (when < now_)
        panic("event '%s' scheduled in the past (%llu < %llu)",
              event->name(), static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    event->scheduled_ = true;
    event->when_ = when;
    event->seq_ = nextSeq_++;
    heap_.push(Entry{when, event->seq_, event});
    live_.emplace(event->seq_, std::make_pair(event, event->autoDelete_));
}

void
EventQueue::reschedule(Event *event, Tick when)
{
    if (event->scheduled_)
        deschedule(event);
    schedule(event, when);
}

void
EventQueue::deschedule(Event *event)
{
    if (!event->scheduled_)
        return;
    // Lazy deletion: the heap entry stays; it is skipped when popped
    // because its sequence number is no longer live.
    event->scheduled_ = false;
    live_.erase(event->seq_);
}

void
EventQueue::scheduleLambda(Tick when, std::function<void()> fn)
{
    auto *ev = new LambdaEvent(std::move(fn));
    ev->autoDelete_ = true;
    schedule(ev, when);
}

void
EventQueue::popStale()
{
    while (!heap_.empty()) {
        if (live_.count(heap_.top().seq))
            return;
        heap_.pop();
    }
}

void
EventQueue::dispatchTop()
{
    Entry top = heap_.top();
    heap_.pop();
    Event *ev = top.event;
    ev->scheduled_ = false;
    live_.erase(top.seq);
    now_ = top.when;
    ev->process();
    if (ev->autoDelete_)
        delete ev;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t executed = 0;
    for (;;) {
        popStale();
        if (heap_.empty())
            break;
        if (heap_.top().when > limit) {
            now_ = limit;
            break;
        }
        dispatchTop();
        ++executed;
    }
    if (limit != kTickNever && now_ < limit)
        now_ = limit;
    return executed;
}

bool
EventQueue::step()
{
    popStale();
    if (heap_.empty())
        return false;
    dispatchTop();
    return true;
}

} // namespace latr
