/**
 * @file
 * The optimistic parallel dispatch layer of the engine. Two pieces
 * live here:
 *
 *  - ConflictTracker: the accumulated write set of an open batch,
 *    against which each candidate event's declared read set is
 *    checked. Disjoint candidates join the batch; the first overlap
 *    (or undeclared event) ends it.
 *
 *  - ParallelExecutor: a pinned worker pool that runs the read-only
 *    compute() phases of one batch concurrently. Each worker is
 *    pinned to a host CPU and keeps per-worker statistics — the
 *    local-acquire discipline NUMA-aware event pools use, applied to
 *    compute slots instead of allocations (the events themselves stay
 *    in the queue's freelist, which only the committing coordinator
 *    touches).
 *
 * The batched run loop itself is EventQueue::runBatched(), defined in
 * parallel_exec.cc next to these helpers: it pops a contiguous
 * (tick, seq) prefix of conflict-disjoint events, runs every
 * compute(), then replays the process() commits strictly in
 * (tick, seq) order on the coordinator — interleaving any events that
 * earlier commits scheduled in between ("interlopers") and skipping
 * members an earlier commit descheduled. Because every simulated
 * mutation happens in commit order on one thread, digests, counters,
 * and traces are byte-identical to the sequential engine by
 * construction; footprints only decide how much runs in parallel.
 */

#ifndef LATR_SIM_PARALLEL_EXEC_HH_
#define LATR_SIM_PARALLEL_EXEC_HH_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace latr
{

/**
 * The union of the write footprints of every event admitted to the
 * open batch. A candidate conflicts iff its *read* set intersects
 * this write union: with all computes running before the first
 * commit, a later member's compute observing state an earlier
 * member's commit will change is the only ordering hazard the
 * protocol leaves open. Commit/commit overlap is serialized by the
 * (tick, seq) replay and read/read overlap is harmless.
 */
class ConflictTracker
{
  public:
    static constexpr unsigned kMaxSpaces = 16;

    void
    clear()
    {
        coresWritten_.reset();
        globalsWritten_ = 0;
        nSpaces_ = 0;
        allSpaces_ = false;
    }

    /** Does @p fp's read set intersect the accumulated write set? */
    bool
    conflicts(const EventFootprint &fp) const
    {
        if (globalsWritten_ & fp.globalsRead())
            return true;
        CpuMask overlap = coresWritten_;
        overlap.andWith(fp.coresRead());
        if (!overlap.empty())
            return true;
        const bool readsAny =
            fp.allSpacesRead() || fp.spacesRead() > 0;
        if (allSpaces_ && readsAny)
            return true;
        if (fp.allSpacesRead() && nSpaces_ > 0)
            return true;
        for (unsigned i = 0; i < fp.spacesRead(); ++i)
            for (unsigned j = 0; j < nSpaces_; ++j)
                if (fp.spaceRead(i) == spaces_[j])
                    return true;
        return false;
    }

    /** Fold @p fp's write set into the accumulated union. */
    void
    absorb(const EventFootprint &fp)
    {
        coresWritten_.orWith(fp.coresWritten());
        globalsWritten_ |= fp.globalsWritten();
        if (fp.allSpacesWritten())
            allSpaces_ = true;
        if (allSpaces_)
            return;
        for (unsigned i = 0; i < fp.spacesWritten(); ++i) {
            const void *mm = fp.spaceWritten(i);
            bool known = false;
            for (unsigned j = 0; j < nSpaces_; ++j)
                if (spaces_[j] == mm)
                    known = true;
            if (known)
                continue;
            if (nSpaces_ == kMaxSpaces) {
                allSpaces_ = true;
                return;
            }
            spaces_[nSpaces_++] = mm;
        }
    }

  private:
    CpuMask coresWritten_;
    std::uint32_t globalsWritten_ = 0;
    const void *spaces_[kMaxSpaces] = {};
    unsigned nSpaces_ = 0;
    bool allSpaces_ = false;
};

/**
 * The compute worker pool: @p threads total compute lanes, i.e. the
 * coordinating thread plus threads-1 pinned workers. A pool of one
 * spawns no threads and runs every compute inline; larger pools
 * offload a batch only when it contains at least two nontrivial
 * computes (Event::computeWeight()), so machines whose batches are
 * cheap never pay wakeup latency.
 */
class ParallelExecutor
{
  public:
    struct Stats
    {
        std::uint64_t batches = 0;         ///< batches dispatched
        std::uint64_t parallelBatches = 0; ///< offloaded to workers
        std::uint64_t computed = 0;        ///< compute() calls, total
        std::uint64_t batchedEvents = 0;   ///< events committed via batches
        std::uint64_t barrierEvents = 0;   ///< undeclared inline dispatches
    };

    explicit ParallelExecutor(unsigned threads);

    ~ParallelExecutor();

    ParallelExecutor(const ParallelExecutor &) = delete;
    ParallelExecutor &operator=(const ParallelExecutor &) = delete;

    /** Total compute lanes (coordinator included); always >= 1. */
    unsigned threads() const { return threads_; }

    /**
     * Run compute() of every event in @p events [0, n); returns when
     * all have finished. @p heavyCount is how many report nonzero
     * computeWeight(); fewer than two runs the batch inline.
     */
    void computeBatch(Event *const *events, std::size_t n,
                      unsigned heavyCount);

    /** Mutable dispatcher statistics (EventQueue updates these). */
    Stats &stats() { return stats_; }
    const Stats &stats() const { return stats_; }

    /** compute() calls executed by worker @p idx (0 = coordinator). */
    std::uint64_t
    computedBy(unsigned idx) const
    {
        return computedBy_.at(idx);
    }

  private:
    void workerLoop(unsigned idx);

    /** Claim-and-compute until the batch cursor runs dry. */
    void drainBatch(unsigned lane, Event *const *events,
                    std::size_t count);

    const unsigned threads_;
    Stats stats_;
    std::vector<std::uint64_t> computedBy_;

    std::mutex mu_;
    std::condition_variable wake_;
    std::condition_variable done_;
    /** Batch handoff (guarded by mu_; indices claimed via cursor_). */
    Event *const *events_ = nullptr;
    std::size_t count_ = 0;
    std::atomic<std::size_t> cursor_{0};
    std::size_t completed_ = 0;
    std::uint64_t generation_ = 0;
    bool stop_ = false;

    std::vector<std::thread> workers_;
};

} // namespace latr

#endif // LATR_SIM_PARALLEL_EXEC_HH_
