/**
 * @file
 * The optimistic parallel dispatch layer of the engine. Two pieces
 * live here:
 *
 *  - ConflictTracker: a footprint set. The dispatcher keeps two per
 *    batch: the members' write union (each candidate's declared read
 *    set is checked against it; disjoint candidates join the batch,
 *    the first overlap or undeclared event ends it) and the members'
 *    read union (a commit-phase interloper writing into it
 *    invalidates every cached plan).
 *
 *  - ParallelExecutor: a worker pool that runs the read-only
 *    compute() phases of one batch concurrently. Lanes claim batch
 *    members from a generation-tagged cursor; each claim is stamped
 *    with the claiming lane (laneOf()), which the queue uses to
 *    recycle pooled lambda events to that lane's freelist — the
 *    local-acquire/remote-release discipline NUMA-aware event pools
 *    use, so a wrapper's storage stays with the lane whose cache
 *    last touched it. Workers are optionally pinned to a host CPU
 *    (pinWorkers; off by default so concurrent machines don't stack
 *    on the same cores, and never applied to the coordinating
 *    thread, which belongs to the caller). On a single-CPU host the
 *    pool computes inline instead of offloading (see offload_): a
 *    wakeup there buys futex traffic, not parallelism.
 *
 *    Beyond batching, two per-event work sources move into compute():
 *    IPI deliveries pre-probe the target TLB's invalidation walk
 *    (Tlb::planInvalidateRange, validated by mutationSeq()), and the
 *    ABIS-harvesting lazycache pressure actor pre-harvests per-page
 *    sharer masks (offered to the policy, validated by the
 *    SharerDirectory resource epoch). Both follow DESIGN.md §8.4:
 *    a plan is applied only while its validator still matches, else
 *    the commit recomputes fresh — wrong-plan results are impossible,
 *    stale plans only cost the precompute.
 *
 * The batched run loop itself is EventQueue::runBatched(), defined in
 * parallel_exec.cc next to these helpers: it pops a contiguous
 * (tick, seq) prefix of conflict-disjoint events, runs every
 * compute(), then replays the process() commits strictly in
 * (tick, seq) order on the coordinator — interleaving any events that
 * earlier commits scheduled in between ("interlopers") and skipping
 * members an earlier commit descheduled. Because every simulated
 * mutation happens in commit order on one thread, digests, counters,
 * and traces are byte-identical to the sequential engine by
 * construction; footprints only decide how much runs in parallel.
 */

#ifndef LATR_SIM_PARALLEL_EXEC_HH_
#define LATR_SIM_PARALLEL_EXEC_HH_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace latr
{

/**
 * A set of cores, address spaces, and global resources accumulated
 * from event footprints. The dispatcher keeps two per batch:
 *
 *  - the members' *write* union, checked against each candidate's
 *    read set at admission. With all computes running before the
 *    first commit, a later member's compute observing state an
 *    earlier member's commit will change is the only ordering hazard
 *    the protocol leaves open — commit/commit overlap is serialized
 *    by the (tick, seq) replay and read/read overlap is harmless;
 *
 *  - the members' *read* union, checked against each commit-phase
 *    interloper's write set. Interlopers are dispatched after batch
 *    admission, so their writes were never conflict-checked; one
 *    that lands in the batch's read union forces every resource
 *    epoch forward so no cached plan survives it (see
 *    EventQueue::dispatchInlineBatched()).
 */
class ConflictTracker
{
  public:
    static constexpr unsigned kMaxSpaces = 16;

    void
    clear()
    {
        cores_.reset();
        globals_ = 0;
        nSpaces_ = 0;
        allSpaces_ = false;
    }

    /** Does @p fp's read set intersect the accumulated set? */
    bool
    readsIntersect(const EventFootprint &fp) const
    {
        if (globals_ & fp.globalsRead())
            return true;
        CpuMask overlap = cores_;
        overlap.andWith(fp.coresRead());
        if (!overlap.empty())
            return true;
        const bool readsAny =
            fp.allSpacesRead() || fp.spacesRead() > 0;
        if (allSpaces_ && readsAny)
            return true;
        if (fp.allSpacesRead() && nSpaces_ > 0)
            return true;
        for (unsigned i = 0; i < fp.spacesRead(); ++i)
            for (unsigned j = 0; j < nSpaces_; ++j)
                if (fp.spaceRead(i) == spaces_[j])
                    return true;
        return false;
    }

    /** Does @p fp's write set intersect the accumulated set? */
    bool
    writesIntersect(const EventFootprint &fp) const
    {
        if (globals_ & fp.globalsWritten())
            return true;
        CpuMask overlap = cores_;
        overlap.andWith(fp.coresWritten());
        if (!overlap.empty())
            return true;
        const bool writesAny =
            fp.allSpacesWritten() || fp.spacesWritten() > 0;
        if (allSpaces_ && writesAny)
            return true;
        if (fp.allSpacesWritten() && nSpaces_ > 0)
            return true;
        for (unsigned i = 0; i < fp.spacesWritten(); ++i)
            for (unsigned j = 0; j < nSpaces_; ++j)
                if (fp.spaceWritten(i) == spaces_[j])
                    return true;
        return false;
    }

    /** Fold @p fp's write set into the accumulated set. */
    void
    addWrites(const EventFootprint &fp)
    {
        cores_.orWith(fp.coresWritten());
        globals_ |= fp.globalsWritten();
        if (fp.allSpacesWritten())
            allSpaces_ = true;
        for (unsigned i = 0; !allSpaces_ && i < fp.spacesWritten();
             ++i)
            addSpace(fp.spaceWritten(i));
    }

    /** Fold @p fp's read set into the accumulated set. */
    void
    addReads(const EventFootprint &fp)
    {
        cores_.orWith(fp.coresRead());
        globals_ |= fp.globalsRead();
        if (fp.allSpacesRead())
            allSpaces_ = true;
        for (unsigned i = 0; !allSpaces_ && i < fp.spacesRead(); ++i)
            addSpace(fp.spaceRead(i));
    }

  private:
    void
    addSpace(const void *mm)
    {
        for (unsigned j = 0; j < nSpaces_; ++j)
            if (spaces_[j] == mm)
                return;
        if (nSpaces_ == kMaxSpaces) {
            allSpaces_ = true;
            return;
        }
        spaces_[nSpaces_++] = mm;
    }

    CpuMask cores_;
    std::uint32_t globals_ = 0;
    const void *spaces_[kMaxSpaces] = {};
    unsigned nSpaces_ = 0;
    bool allSpaces_ = false;
};

/**
 * The compute worker pool: @p threads total compute lanes, i.e. the
 * coordinating thread plus threads-1 workers. A pool of one
 * spawns no threads and runs every compute inline; larger pools
 * offload a batch only when it contains at least two nontrivial
 * computes (Event::computeWeight()), so machines whose batches are
 * cheap never pay wakeup latency.
 */
class ParallelExecutor
{
  public:
    struct Stats
    {
        std::uint64_t batches = 0;         ///< batches dispatched
        std::uint64_t parallelBatches = 0; ///< offloaded to workers
        std::uint64_t computed = 0;        ///< compute() calls, total
        std::uint64_t batchedEvents = 0;   ///< events committed via batches
        std::uint64_t barrierEvents = 0;   ///< undeclared inline dispatches
    };

    /**
     * @param threads total compute lanes.
     * @param pinWorkers pin worker lane k to host CPU k (mod the
     *   host's CPU count). Off by default: concurrent executors —
     *   `--jobs` sweeps, parallel test shards — would stack every
     *   machine's workers on the same low-numbered CPUs. The
     *   coordinator (lane 0) is never pinned; that thread belongs to
     *   the caller.
     * @param forceOffload offload eligible batches even on a host
     *   with a single CPU, where auto mode would run them inline
     *   (offloading there can only add futex round-trips, never
     *   parallelism). For tests that must observe worker-lane claims
     *   regardless of the machine they run on.
     */
    explicit ParallelExecutor(unsigned threads,
                              bool pinWorkers = false,
                              bool forceOffload = false);

    ~ParallelExecutor();

    ParallelExecutor(const ParallelExecutor &) = delete;
    ParallelExecutor &operator=(const ParallelExecutor &) = delete;

    /** Total compute lanes (coordinator included); always >= 1. */
    unsigned threads() const { return threads_; }

    /**
     * Run compute() of every event in @p events [0, n); returns when
     * all have finished. @p heavyCount is how many report nonzero
     * computeWeight(); fewer than two runs the batch inline.
     */
    void computeBatch(Event *const *events, std::size_t n,
                      unsigned heavyCount);

    /** Mutable dispatcher statistics (EventQueue updates these). */
    Stats &stats() { return stats_; }
    const Stats &stats() const { return stats_; }

    /** compute() calls executed by worker @p idx (0 = coordinator). */
    std::uint64_t
    computedBy(unsigned idx) const
    {
        return computedBy_.at(idx);
    }

    /**
     * The lane that computed member @p idx of the most recent
     * computeBatch() (0 for inline batches). Valid until the next
     * computeBatch(); the queue routes pooled events back to this
     * lane's freelist — the remote-release half of the NUMA
     * event-pool discipline.
     */
    unsigned
    laneOf(std::size_t idx) const
    {
        return laneOf_[idx];
    }

  private:
    /** Low bits of ticket_ holding the claim cursor. */
    static constexpr unsigned kCursorBits = 16;
    static constexpr std::uint64_t kCursorMask =
        (std::uint64_t{1} << kCursorBits) - 1;

    void workerLoop(unsigned idx);

    /**
     * Claim-and-compute until the cursor runs dry or the ticket's
     * generation tag stops matching @p gen (the batch this caller
     * was handed is over).
     */
    void drainBatch(unsigned lane, Event *const *events,
                    std::size_t count, std::uint64_t gen);

    const unsigned threads_;
    const bool pinWorkers_;
    Stats stats_;
    std::vector<std::uint64_t> computedBy_;
    /**
     * Per-member computing lane of the live batch, stamped by each
     * claimant right after its claim CAS. Writes land on distinct
     * indices (the cursor hands each index to exactly one lane) and
     * the coordinator only reads them after the batch's completion
     * barrier, so plain bytes suffice.
     */
    std::vector<std::uint8_t> laneOf_;

    /**
     * Iterations a lane spins on the ticket before falling back to a
     * futex sleep. Batches arrive every few microseconds while the
     * engine is hot, and one sleep/wake pair costs more than a whole
     * batch of plan computes — so lanes stay awake across the gaps
     * and the condition variables only catch genuinely idle phases
     * (sequential stretches, the end of the run).
     */
    static constexpr unsigned kSpinIters = 4096;

    /**
     * Effective spin budget: kSpinIters when the host has a CPU per
     * lane, 0 otherwise. On an oversubscribed host a spinning lane
     * does not wait for work — it *prevents* it, by burning the
     * timeslice the coordinator (or a straggler) needs; measured on
     * a 1-CPU container, spinning turned a 1.05x-overhead run into a
     * 3x slowdown. Sleep immediately there instead.
     */
    const unsigned spinIters_;

    /**
     * Whether eligible batches are offloaded at all. False on a
     * single-CPU host (unless forced): with nowhere for a worker to
     * run concurrently, every offload is a pure futex round-trip —
     * the coordinator computes inline faster than it can wake anyone.
     */
    const bool offload_;

    std::mutex mu_;
    std::condition_variable wake_;
    std::condition_variable done_;
    /**
     * Batch descriptor. Published before the ticket's release store
     * and read after its acquire load; they are atomic (relaxed)
     * only because a worker whose generation tag is already stale
     * may load them concurrently with the next batch's publish — it
     * then claims nothing, but the load itself must not race.
     */
    std::atomic<Event *const *> events_{nullptr};
    std::atomic<std::size_t> count_{0};
    /**
     * Generation-tagged claim ticket: bits [kCursorBits, 64) are the
     * (truncated) batch generation, bits [0, kCursorBits) the next
     * unclaimed index. Claims go through a CAS that the tag guards,
     * so a worker that slept (or spun) through a batch boundary —
     * descriptor snapshot in hand, first claim not yet made — can
     * never claim indices, run computes, or grow completed_ against
     * a batch other than the one it was woken for. The tag doubles
     * as the batch-publish flag the spin loops watch.
     */
    std::atomic<std::uint64_t> ticket_{0};
    /** Computes finished in the live batch (claimants only). */
    std::atomic<std::size_t> completed_{0};
    std::atomic<bool> stop_{false};
    /** Coordinator-private batch counter behind the ticket tag. */
    std::uint64_t generation_ = 0;

    std::vector<std::thread> workers_;
};

} // namespace latr

#endif // LATR_SIM_PARALLEL_EXEC_HH_
