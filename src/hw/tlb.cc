#include "hw/tlb.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "trace/trace.hh"

namespace latr
{

Tlb::Level::Level(unsigned capacity) : capacity_(capacity)
{
    if (capacity == 0 || capacity >= kNil)
        fatal("TLB level capacity %u out of range", capacity);
    std::uint32_t table_size = 1;
    while (table_size < 2 * capacity) // ≤50% load
        table_size <<= 1;
    mask_ = table_size - 1;
    table_.assign(table_size, kNil);
    slots_.resize(capacity);
    for (unsigned i = 0; i < capacity; ++i)
        slots_[i].next = static_cast<std::uint16_t>(
            i + 1 < capacity ? i + 1 : kNil);
    freeHead_ = 0;
}

std::uint16_t
Tlb::Level::findSlot(const Key &k) const
{
    std::uint32_t i = hashOf(k) & mask_;
    while (table_[i] != kNil) {
        if (slots_[table_[i]].entry.key == k)
            return table_[i];
        i = (i + 1) & mask_;
    }
    return kNil;
}

void
Tlb::Level::unlink(std::uint16_t i)
{
    const Slot &s = slots_[i];
    if (s.prev != kNil)
        slots_[s.prev].next = s.next;
    else
        head_ = s.next;
    if (s.next != kNil)
        slots_[s.next].prev = s.prev;
    else
        tail_ = s.prev;
}

void
Tlb::Level::linkFront(std::uint16_t i)
{
    Slot &s = slots_[i];
    s.prev = kNil;
    s.next = head_;
    if (head_ != kNil)
        slots_[head_].prev = i;
    else
        tail_ = i;
    head_ = i;
}

void
Tlb::Level::tableErase(std::uint16_t slot)
{
    std::uint32_t i = hashOf(slots_[slot].entry.key) & mask_;
    while (table_[i] != slot)
        i = (i + 1) & mask_;
    // Backward-shift deletion keeps probe chains contiguous without
    // tombstones: walk forward from the freed cell and pull back any
    // entry whose home position lies cyclically outside (i, j].
    std::uint32_t j = i;
    for (;;) {
        table_[i] = kNil;
        std::uint32_t home;
        do {
            j = (j + 1) & mask_;
            if (table_[j] == kNil)
                return;
            home = hashOf(slots_[table_[j]].entry.key) & mask_;
        } while (i <= j ? (home > i && home <= j)
                        : (home > i || home <= j));
        table_[i] = table_[j];
        i = j;
    }
}

void
Tlb::Level::eraseSlot(std::uint16_t i)
{
    tableErase(i);
    unlink(i);
    slots_[i].next = freeHead_;
    freeHead_ = i;
    --size_;
}

const Tlb::Entry *
Tlb::Level::touch(const Key &k)
{
    const std::uint16_t i = findSlot(k);
    if (i == kNil)
        return nullptr;
    if (i != head_) {
        unlink(i);
        linkFront(i);
    }
    return &slots_[i].entry;
}

const Tlb::Entry *
Tlb::Level::peek(const Key &k) const
{
    const std::uint16_t i = findSlot(k);
    return i == kNil ? nullptr : &slots_[i].entry;
}

void
Tlb::Level::insert(const Entry &e, Entry *victim_out, bool *had_victim)
{
    *had_victim = false;
    const std::uint16_t existing = findSlot(e.key);
    if (existing != kNil) {
        // Refresh in place (e.g., remap to a new frame) and touch.
        slots_[existing].entry.pfn = e.pfn;
        slots_[existing].entry.writable = e.writable;
        if (existing != head_) {
            unlink(existing);
            linkFront(existing);
        }
        return;
    }
    if (size_ >= capacity_) {
        *victim_out = slots_[tail_].entry;
        *had_victim = true;
        eraseSlot(tail_);
    }
    const std::uint16_t slot = freeHead_;
    freeHead_ = slots_[slot].next;
    slots_[slot].entry = e;
    linkFront(slot);
    std::uint32_t pos = hashOf(e.key) & mask_;
    while (table_[pos] != kNil)
        pos = (pos + 1) & mask_;
    table_[pos] = slot;
    ++size_;
}

bool
Tlb::Level::remove(const Key &k, Entry *removed_out)
{
    const std::uint16_t i = findSlot(k);
    if (i == kNil)
        return false;
    if (removed_out)
        *removed_out = slots_[i].entry;
    eraseSlot(i);
    return true;
}

void
Tlb::Level::clear()
{
    std::fill(table_.begin(), table_.end(), kNil);
    for (unsigned i = 0; i < capacity_; ++i)
        slots_[i].next = static_cast<std::uint16_t>(
            i + 1 < capacity_ ? i + 1 : kNil);
    freeHead_ = 0;
    head_ = tail_ = kNil;
    size_ = 0;
}

Tlb::Tlb(CoreId core, unsigned l1_entries, unsigned l2_entries,
         unsigned huge_entries)
    : core_(core), l1_(l1_entries), l2_(l2_entries),
      huge_(huge_entries)
{
    if (l1_entries == 0 || l2_entries == 0 || huge_entries == 0)
        fatal("TLB levels need nonzero capacity");
}

void
Tlb::notifyInsert(const Entry &e)
{
    for (TlbListener *l : listeners_)
        l->onTlbInsert(core_, e.key.vpn, e.pfn, e.key.pcid);
}

void
Tlb::notifyRemove(const Entry &e)
{
    for (TlbListener *l : listeners_)
        l->onTlbRemove(core_, e.key.vpn, e.pfn, e.key.pcid);
}

TlbResult
Tlb::lookup(Vpn vpn, Pcid pcid, Pfn *pfn_out, bool *writable_out,
            bool *huge_out)
{
    // Even a hit mutates: LRU chains reorder and L2 hits promote, so
    // any probed invalidation plan over this TLB is now stale.
    ++mutationSeq_;
    if (huge_out)
        *huge_out = false;
    // The 2 MiB array covers whole regions; it wins when populated.
    Key hk{hugeBaseOf(vpn), pcid};
    if (const Entry *e = huge_.touch(hk)) {
        ++l1Hits_;
        if (pfn_out)
            *pfn_out = e->pfn + (vpn - hugeBaseOf(vpn));
        if (writable_out)
            *writable_out = e->writable;
        if (huge_out)
            *huge_out = true;
        return TlbResult::HitL1;
    }
    Key k{vpn, pcid};
    if (const Entry *e = l1_.touch(k)) {
        ++l1Hits_;
        if (pfn_out)
            *pfn_out = e->pfn;
        if (writable_out)
            *writable_out = e->writable;
        return TlbResult::HitL1;
    }
    Entry promoted;
    if (l2_.remove(k, &promoted)) {
        ++l2Hits_;
        if (pfn_out)
            *pfn_out = promoted.pfn;
        if (writable_out)
            *writable_out = promoted.writable;
        // Promote into L1; an L1 victim spills back into L2. Neither
        // movement changes overall TLB membership, so no listener
        // traffic unless the spill evicts an L2 entry.
        Entry l1_victim;
        bool had_l1_victim = false;
        l1_.insert(promoted, &l1_victim, &had_l1_victim);
        if (had_l1_victim) {
            Entry l2_victim;
            bool had_l2_victim = false;
            l2_.insert(l1_victim, &l2_victim, &had_l2_victim);
            if (had_l2_victim)
                notifyRemove(l2_victim);
        }
        return TlbResult::HitL2;
    }
    ++misses_;
    return TlbResult::Miss;
}

bool
Tlb::probe(Vpn vpn, Pcid pcid) const
{
    Key k{vpn, pcid};
    return l1_.peek(k) != nullptr || l2_.peek(k) != nullptr ||
           probeHuge(vpn, pcid);
}

bool
Tlb::probeHuge(Vpn vpn, Pcid pcid) const
{
    Key hk{hugeBaseOf(vpn), pcid};
    return huge_.peek(hk) != nullptr;
}

bool
Tlb::probePfn(Vpn vpn, Pcid pcid, Pfn *pfn_out) const
{
    Key k{vpn, pcid};
    if (const Entry *e = l1_.peek(k)) {
        *pfn_out = e->pfn;
        return true;
    }
    if (const Entry *e = l2_.peek(k)) {
        *pfn_out = e->pfn;
        return true;
    }
    return probeHugePfn(vpn, pcid, pfn_out);
}

bool
Tlb::probeHugePfn(Vpn vpn, Pcid pcid, Pfn *pfn_out) const
{
    Key hk{hugeBaseOf(vpn), pcid};
    if (const Entry *e = huge_.peek(hk)) {
        *pfn_out = e->pfn;
        return true;
    }
    return false;
}

void
Tlb::insertHuge(Vpn base_vpn, Pfn base_pfn, Pcid pcid, bool writable)
{
    ++mutationSeq_;
    Key k{hugeBaseOf(base_vpn), pcid};
    Entry old;
    bool existed = huge_.remove(k, &old);
    bool same_frame = existed && old.pfn == base_pfn;
    if (existed && !same_frame)
        notifyRemove(old);

    Entry e{k, base_pfn, writable};
    Entry victim;
    bool had_victim = false;
    huge_.insert(e, &victim, &had_victim);
    if (!same_frame)
        notifyInsert(e);
    if (had_victim)
        notifyRemove(victim);
}

void
Tlb::insert(Vpn vpn, Pfn pfn, Pcid pcid, bool writable)
{
    ++mutationSeq_;
    Key k{vpn, pcid};
    // Collapse any existing copy first so the listener sees a remap
    // as remove(old frame) + insert(new frame). A permission-only
    // change keeps the same frame and stays quiet.
    Entry old;
    bool existed = l1_.remove(k, &old) || l2_.remove(k, &old);
    bool same_frame = existed && old.pfn == pfn;
    if (existed && !same_frame)
        notifyRemove(old);

    Entry e{k, pfn, writable};
    Entry l1_victim;
    bool had_l1_victim = false;
    l1_.insert(e, &l1_victim, &had_l1_victim);
    if (!same_frame)
        notifyInsert(e);
    if (had_l1_victim) {
        Entry l2_victim;
        bool had_l2_victim = false;
        l2_.insert(l1_victim, &l2_victim, &had_l2_victim);
        if (had_l2_victim)
            notifyRemove(l2_victim);
    }
}

void
Tlb::invalidatePage(Vpn vpn, Pcid pcid)
{
    ++mutationSeq_;
    Key k{vpn, pcid};
    Entry removed;
    if (l1_.remove(k, &removed))
        notifyRemove(removed);
    if (l2_.remove(k, &removed))
        notifyRemove(removed);
    // INVLPG drops whatever entry covers the address — including a
    // 2 MiB one.
    Key hk{hugeBaseOf(vpn), pcid};
    if (huge_.remove(hk, &removed))
        notifyRemove(removed);
}

void
Tlb::invalidateRangeIn(Level &level, Vpn start_vpn, Vpn end_vpn,
                       Pcid pcid)
{
    // Adaptive: an munmap of a few pages should not pay a scan of a
    // 1024-entry level, and a giant teardown should not probe every
    // VPN in the range. span == 0 means the range wrapped the whole
    // VPN space; treat it as wide.
    const std::uint64_t span = end_vpn - start_vpn + 1;
    if (span != 0 && span < level.size()) {
        Entry removed;
        for (Vpn v = start_vpn;; ++v) {
            if (level.remove(Key{v, pcid}, &removed))
                notifyRemove(removed);
            if (v == end_vpn)
                break;
        }
    } else {
        level.removeMatching(
            [&](const Entry &e) {
                return e.key.pcid == pcid && e.key.vpn >= start_vpn &&
                       e.key.vpn <= end_vpn;
            },
            [&](const Entry &e) { notifyRemove(e); });
    }
}

void
Tlb::invalidateRange(Vpn start_vpn, Vpn end_vpn, Pcid pcid)
{
    ++mutationSeq_;
    if (trace_)
        trace_->instantNow("hw", "tlb.inv_range", core_, kTraceNoMm,
                           end_vpn - start_vpn + 1);
    invalidateRangeIn(l1_, start_vpn, end_vpn, pcid);
    invalidateRangeIn(l2_, start_vpn, end_vpn, pcid);
    // Huge entries overlap the range if any of their 512 pages do.
    // Every huge key is span-aligned, so the overlapping bases are
    // exactly hugeBaseOf(start) .. hugeBaseOf(end).
    const Vpn hb_start = hugeBaseOf(start_vpn);
    const Vpn hb_end = hugeBaseOf(end_vpn);
    const std::uint64_t bases = (hb_end - hb_start) / kHugePageSpan + 1;
    if (bases < huge_.size()) {
        Entry removed;
        for (Vpn b = hb_start;; b += kHugePageSpan) {
            if (huge_.remove(Key{b, pcid}, &removed))
                notifyRemove(removed);
            if (b == hb_end)
                break;
        }
    } else {
        huge_.removeMatching(
            [&](const Entry &e) {
                return e.key.pcid == pcid && e.key.vpn <= end_vpn &&
                       e.key.vpn + kHugePageSpan - 1 >= start_vpn;
            },
            [&](const Entry &e) { notifyRemove(e); });
    }
}

void
Tlb::planRangeIn(const Level &level, std::uint8_t level_idx,
                 Vpn start_vpn, Vpn end_vpn, Pcid pcid,
                 InvalidationPlan *plan) const
{
    // Mirror invalidateRangeIn()'s adaptive branch: with the seq
    // unchanged at apply time, level.size() is unchanged too, so the
    // branch the fresh operation would take is the one probed here.
    const std::uint64_t span = end_vpn - start_vpn + 1;
    if (span != 0 && span < level.size()) {
        for (Vpn v = start_vpn;; ++v) {
            if (level.peek(Key{v, pcid}))
                plan->removals.push_back({level_idx, v});
            if (v == end_vpn)
                break;
        }
    } else {
        // removeMatching() walks MRU to LRU capturing each next link
        // before erasing, so an unmodified chain yields removals in
        // exactly forEach() order.
        level.forEach([&](const Entry &e) {
            if (e.key.pcid == pcid && e.key.vpn >= start_vpn &&
                e.key.vpn <= end_vpn)
                plan->removals.push_back({level_idx, e.key.vpn});
        });
    }
}

void
Tlb::planInvalidateRange(Vpn start_vpn, Vpn end_vpn, Pcid pcid,
                         InvalidationPlan *plan) const
{
    plan->valid = false;
    plan->seq = mutationSeq_;
    plan->startVpn = start_vpn;
    plan->endVpn = end_vpn;
    plan->pcid = pcid;
    plan->removals.clear();
    planRangeIn(l1_, 0, start_vpn, end_vpn, pcid, plan);
    planRangeIn(l2_, 1, start_vpn, end_vpn, pcid, plan);
    const Vpn hb_start = hugeBaseOf(start_vpn);
    const Vpn hb_end = hugeBaseOf(end_vpn);
    const std::uint64_t bases = (hb_end - hb_start) / kHugePageSpan + 1;
    if (bases < huge_.size()) {
        for (Vpn b = hb_start;; b += kHugePageSpan) {
            if (huge_.peek(Key{b, pcid}))
                plan->removals.push_back({2, b});
            if (b == hb_end)
                break;
        }
    } else {
        huge_.forEach([&](const Entry &e) {
            if (e.key.pcid == pcid && e.key.vpn <= end_vpn &&
                e.key.vpn + kHugePageSpan - 1 >= start_vpn)
                plan->removals.push_back({2, e.key.vpn});
        });
    }
    plan->valid = true;
}

bool
Tlb::applyInvalidationPlan(const InvalidationPlan &plan)
{
    if (!plan.valid || plan.seq != mutationSeq_)
        return false;
    ++mutationSeq_;
    if (trace_)
        trace_->instantNow("hw", "tlb.inv_range", core_, kTraceNoMm,
                           plan.endVpn - plan.startVpn + 1);
    // With the seq fresh, every planned key is still present and the
    // removal order equals the fresh operation's — replaying by key
    // reproduces the same eraseSlot sequence, hence identical chain,
    // table, and free-list evolution and identical listener traffic.
    Entry removed;
    for (const InvalidationPlan::Removal &r : plan.removals) {
        Level &level = r.level == 0 ? l1_ : r.level == 1 ? l2_ : huge_;
        if (level.remove(Key{r.vpn, plan.pcid}, &removed))
            notifyRemove(removed);
    }
    return true;
}

void
Tlb::invalidatePcid(Pcid pcid)
{
    ++mutationSeq_;
    if (trace_)
        trace_->instantNow("hw", "tlb.inv_pcid", core_, kTraceNoMm,
                           pcid);
    auto match = [&](const Entry &e) { return e.key.pcid == pcid; };
    auto notify = [&](const Entry &e) { notifyRemove(e); };
    l1_.removeMatching(match, notify);
    l2_.removeMatching(match, notify);
    huge_.removeMatching(match, notify);
}

void
Tlb::flushAll()
{
    ++mutationSeq_;
    ++flushes_;
    if (trace_)
        trace_->instantNow("hw", "tlb.flush_all", core_, kTraceNoMm,
                           size());
    if (!listeners_.empty()) {
        l1_.forEach([&](const Entry &e) { notifyRemove(e); });
        l2_.forEach([&](const Entry &e) { notifyRemove(e); });
        huge_.forEach([&](const Entry &e) { notifyRemove(e); });
    }
    l1_.clear();
    l2_.clear();
    huge_.clear();
}

} // namespace latr
