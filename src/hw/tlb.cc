#include "hw/tlb.hh"

#include "sim/logging.hh"
#include "trace/trace.hh"

namespace latr
{

const Tlb::Entry *
Tlb::Level::touch(const Key &k)
{
    auto it = map_.find(k);
    if (it == map_.end())
        return nullptr;
    list_.splice(list_.begin(), list_, it->second);
    return &*list_.begin();
}

const Tlb::Entry *
Tlb::Level::peek(const Key &k) const
{
    auto it = map_.find(k);
    if (it == map_.end())
        return nullptr;
    return &*it->second;
}

void
Tlb::Level::insert(const Entry &e, Entry *victim_out, bool *had_victim)
{
    *had_victim = false;
    auto it = map_.find(e.key);
    if (it != map_.end()) {
        // Refresh in place (e.g., remap to a new frame) and touch.
        it->second->pfn = e.pfn;
        it->second->writable = e.writable;
        list_.splice(list_.begin(), list_, it->second);
        return;
    }
    if (list_.size() >= capacity_) {
        *victim_out = list_.back();
        *had_victim = true;
        map_.erase(list_.back().key);
        list_.pop_back();
    }
    list_.push_front(e);
    map_[e.key] = list_.begin();
}

bool
Tlb::Level::remove(const Key &k, Entry *removed_out)
{
    auto it = map_.find(k);
    if (it == map_.end())
        return false;
    if (removed_out)
        *removed_out = *it->second;
    list_.erase(it->second);
    map_.erase(it);
    return true;
}

Tlb::Tlb(CoreId core, unsigned l1_entries, unsigned l2_entries,
         unsigned huge_entries)
    : core_(core), l1_(l1_entries), l2_(l2_entries),
      huge_(huge_entries)
{
    if (l1_entries == 0 || l2_entries == 0 || huge_entries == 0)
        fatal("TLB levels need nonzero capacity");
}

void
Tlb::notifyInsert(const Entry &e)
{
    for (TlbListener *l : listeners_)
        l->onTlbInsert(core_, e.key.vpn, e.pfn, e.key.pcid);
}

void
Tlb::notifyRemove(const Entry &e)
{
    for (TlbListener *l : listeners_)
        l->onTlbRemove(core_, e.key.vpn, e.pfn, e.key.pcid);
}

TlbResult
Tlb::lookup(Vpn vpn, Pcid pcid, Pfn *pfn_out, bool *writable_out,
            bool *huge_out)
{
    if (huge_out)
        *huge_out = false;
    // The 2 MiB array covers whole regions; it wins when populated.
    Key hk{hugeBaseOf(vpn), pcid};
    if (const Entry *e = huge_.touch(hk)) {
        ++l1Hits_;
        if (pfn_out)
            *pfn_out = e->pfn + (vpn - hugeBaseOf(vpn));
        if (writable_out)
            *writable_out = e->writable;
        if (huge_out)
            *huge_out = true;
        return TlbResult::HitL1;
    }
    Key k{vpn, pcid};
    if (const Entry *e = l1_.touch(k)) {
        ++l1Hits_;
        if (pfn_out)
            *pfn_out = e->pfn;
        if (writable_out)
            *writable_out = e->writable;
        return TlbResult::HitL1;
    }
    Entry promoted;
    if (l2_.remove(k, &promoted)) {
        ++l2Hits_;
        if (pfn_out)
            *pfn_out = promoted.pfn;
        if (writable_out)
            *writable_out = promoted.writable;
        // Promote into L1; an L1 victim spills back into L2. Neither
        // movement changes overall TLB membership, so no listener
        // traffic unless the spill evicts an L2 entry.
        Entry l1_victim;
        bool had_l1_victim = false;
        l1_.insert(promoted, &l1_victim, &had_l1_victim);
        if (had_l1_victim) {
            Entry l2_victim;
            bool had_l2_victim = false;
            l2_.insert(l1_victim, &l2_victim, &had_l2_victim);
            if (had_l2_victim)
                notifyRemove(l2_victim);
        }
        return TlbResult::HitL2;
    }
    ++misses_;
    return TlbResult::Miss;
}

bool
Tlb::probe(Vpn vpn, Pcid pcid) const
{
    Key k{vpn, pcid};
    return l1_.peek(k) != nullptr || l2_.peek(k) != nullptr ||
           probeHuge(vpn, pcid);
}

bool
Tlb::probeHuge(Vpn vpn, Pcid pcid) const
{
    Key hk{hugeBaseOf(vpn), pcid};
    return huge_.peek(hk) != nullptr;
}

void
Tlb::insertHuge(Vpn base_vpn, Pfn base_pfn, Pcid pcid, bool writable)
{
    Key k{hugeBaseOf(base_vpn), pcid};
    Entry old;
    bool existed = huge_.remove(k, &old);
    bool same_frame = existed && old.pfn == base_pfn;
    if (existed && !same_frame)
        notifyRemove(old);

    Entry e{k, base_pfn, writable};
    Entry victim;
    bool had_victim = false;
    huge_.insert(e, &victim, &had_victim);
    if (!same_frame)
        notifyInsert(e);
    if (had_victim)
        notifyRemove(victim);
}

void
Tlb::insert(Vpn vpn, Pfn pfn, Pcid pcid, bool writable)
{
    Key k{vpn, pcid};
    // Collapse any existing copy first so the listener sees a remap
    // as remove(old frame) + insert(new frame). A permission-only
    // change keeps the same frame and stays quiet.
    Entry old;
    bool existed = l1_.remove(k, &old) || l2_.remove(k, &old);
    bool same_frame = existed && old.pfn == pfn;
    if (existed && !same_frame)
        notifyRemove(old);

    Entry e{k, pfn, writable};
    Entry l1_victim;
    bool had_l1_victim = false;
    l1_.insert(e, &l1_victim, &had_l1_victim);
    if (!same_frame)
        notifyInsert(e);
    if (had_l1_victim) {
        Entry l2_victim;
        bool had_l2_victim = false;
        l2_.insert(l1_victim, &l2_victim, &had_l2_victim);
        if (had_l2_victim)
            notifyRemove(l2_victim);
    }
}

void
Tlb::invalidatePage(Vpn vpn, Pcid pcid)
{
    Key k{vpn, pcid};
    Entry removed;
    if (l1_.remove(k, &removed))
        notifyRemove(removed);
    if (l2_.remove(k, &removed))
        notifyRemove(removed);
    // INVLPG drops whatever entry covers the address — including a
    // 2 MiB one.
    Key hk{hugeBaseOf(vpn), pcid};
    if (huge_.remove(hk, &removed))
        notifyRemove(removed);
}

void
Tlb::invalidateRange(Vpn start_vpn, Vpn end_vpn, Pcid pcid)
{
    if (trace_)
        trace_->instantNow("hw", "tlb.inv_range", core_, kTraceNoMm,
                           end_vpn - start_vpn + 1);
    // Collect first: removal invalidates iterators.
    auto in_range = [&](const Entry &e) {
        return e.key.pcid == pcid && e.key.vpn >= start_vpn &&
               e.key.vpn <= end_vpn;
    };
    for (const Key &k : l1_.keysMatching(in_range)) {
        Entry removed;
        if (l1_.remove(k, &removed))
            notifyRemove(removed);
    }
    for (const Key &k : l2_.keysMatching(in_range)) {
        Entry removed;
        if (l2_.remove(k, &removed))
            notifyRemove(removed);
    }
    // Huge entries overlap the range if any of their 512 pages do.
    auto huge_overlaps = [&](const Entry &e) {
        return e.key.pcid == pcid &&
               e.key.vpn <= end_vpn &&
               e.key.vpn + kHugePageSpan - 1 >= start_vpn;
    };
    for (const Key &k : huge_.keysMatching(huge_overlaps)) {
        Entry removed;
        if (huge_.remove(k, &removed))
            notifyRemove(removed);
    }
}

void
Tlb::invalidatePcid(Pcid pcid)
{
    if (trace_)
        trace_->instantNow("hw", "tlb.inv_pcid", core_, kTraceNoMm,
                           pcid);
    auto match = [&](const Entry &e) { return e.key.pcid == pcid; };
    for (const Key &k : l1_.keysMatching(match)) {
        Entry removed;
        if (l1_.remove(k, &removed))
            notifyRemove(removed);
    }
    for (const Key &k : l2_.keysMatching(match)) {
        Entry removed;
        if (l2_.remove(k, &removed))
            notifyRemove(removed);
    }
    for (const Key &k : huge_.keysMatching(match)) {
        Entry removed;
        if (huge_.remove(k, &removed))
            notifyRemove(removed);
    }
}

void
Tlb::flushAll()
{
    ++flushes_;
    if (trace_)
        trace_->instantNow("hw", "tlb.flush_all", core_, kTraceNoMm,
                           size());
    if (!listeners_.empty()) {
        l1_.forEach([&](const Entry &e) { notifyRemove(e); });
        l2_.forEach([&](const Entry &e) { notifyRemove(e); });
        huge_.forEach([&](const Entry &e) { notifyRemove(e); });
    }
    l1_.clear();
    l2_.clear();
    huge_.clear();
}

} // namespace latr
