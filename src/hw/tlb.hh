/**
 * @file
 * Per-core two-level TLB model. Capacities follow table 3 of the
 * paper (64-entry L1 D-TLB, 512/1024-entry L2 STLB), entries are
 * tagged with a PCID, and the usual x86 operations are provided:
 * INVLPG of a single page, a full flush (CR3 write), and PCID-
 * selective flushes. An optional listener observes every insertion
 * and removal, which the invariant checker uses to prove the paper's
 * reuse invariant.
 *
 * Each level is a fixed-capacity slot array allocated once at
 * construction: true-LRU order is an intrusive prev/next index chain
 * through the slots, and lookup is an open-addressing (linear probe,
 * backward-shift deletion) index table — the hottest simulator path
 * performs zero heap allocation after the TLB is built.
 */

#ifndef LATR_HW_TLB_HH_
#define LATR_HW_TLB_HH_

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace latr
{

class TraceRecorder;

/** Observes TLB content changes (used by the invariant checker). */
class TlbListener
{
  public:
    virtual ~TlbListener() = default;

    /** Called when a translation enters the TLB (either level). */
    virtual void onTlbInsert(CoreId core, Vpn vpn, Pfn pfn, Pcid pcid) = 0;

    /**
     * Called when a translation leaves the TLB entirely (it is in
     * neither level anymore).
     */
    virtual void onTlbRemove(CoreId core, Vpn vpn, Pfn pfn, Pcid pcid) = 0;
};

/** Outcome of a TLB lookup. */
enum class TlbResult
{
    HitL1,  ///< found in the L1 D-TLB
    HitL2,  ///< found in the L2 STLB (promoted to L1)
    Miss,   ///< page walk required
};

/**
 * A two-level, per-core TLB. Both levels are fully associative with
 * true LRU replacement; L1 victims spill into L2, L2 victims leave
 * the TLB. Lookups and insertions are keyed by (PCID, VPN).
 */
class Tlb
{
  public:
    /**
     * @param core owning core id (reported to the listener).
     * @param l1_entries L1 capacity (64 on both paper machines).
     * @param l2_entries L2 capacity.
     * @param huge_entries capacity of the separate 2 MiB-entry
     *        array (32, as on the paper's Haswell/Ivy Bridge parts).
     */
    Tlb(CoreId core, unsigned l1_entries, unsigned l2_entries,
        unsigned huge_entries = 32);

    Tlb(const Tlb &) = delete;
    Tlb &operator=(const Tlb &) = delete;

    /** Attach @p listener as the sole observer (nullptr detaches all). */
    void
    setListener(TlbListener *listener)
    {
        listeners_.clear();
        if (listener)
            listeners_.push_back(listener);
    }

    /**
     * Attach an additional observer alongside any already present
     * (the invariant checker and the staleness oracle both mirror
     * TLB contents).
     */
    void
    addListener(TlbListener *listener)
    {
        if (listener)
            listeners_.push_back(listener);
    }

    /**
     * Attach the trace recorder (nullptr to detach). Flushes and
     * range invalidations emit instants; lookups stay silent (they
     * are the simulator's hottest path).
     */
    void setTracer(TraceRecorder *trace) { trace_ = trace; }

    /**
     * Look up @p vpn under @p pcid. On an L2 hit the entry is
     * promoted to L1.
     * @param pfn_out receives the frame on a hit.
     * @param writable_out receives the cached write permission on a
     *        hit (x86 TLBs cache the W bit; a write through a
     *        read-only entry forces a re-walk).
     */
    TlbResult lookup(Vpn vpn, Pcid pcid, Pfn *pfn_out = nullptr,
                     bool *writable_out = nullptr,
                     bool *huge_out = nullptr);

    /** True if the translation is cached (no LRU side effects). */
    bool probe(Vpn vpn, Pcid pcid) const;

    /**
     * Like probe(), but also reports the cached frame so callers can
     * match on the exact (vpn → pfn) translation. PredictivePolicy's
     * verification probes match the frame: a vpn that was re-mapped
     * to a fresh frame since the free is not a stale hit.
     */
    bool probePfn(Vpn vpn, Pcid pcid, Pfn *pfn_out) const;

    /**
     * probePfn() for the 2 MiB array: reports the base frame of the
     * huge entry covering @p vpn, if any.
     */
    bool probeHugePfn(Vpn vpn, Pcid pcid, Pfn *pfn_out) const;

    /**
     * A precomputed invalidateRange(): the ordered list of entries
     * the range operation would remove, probed read-only (no LRU
     * side effects) so it can run on a worker thread before the
     * owning event commits. Valid only while mutationSeq() is
     * unchanged — any TLB mutation (including LRU reordering by a
     * lookup) may change the removal set or its order. The vectors
     * are reused plan to plan, so steady state allocates nothing.
     */
    struct InvalidationPlan
    {
        bool valid = false;
        /** mutationSeq() snapshot the plan was probed under. */
        std::uint64_t seq = 0;
        Vpn startVpn = 0;
        Vpn endVpn = 0;
        Pcid pcid = 0;
        /** One planned removal; level 0 = L1, 1 = L2, 2 = huge. */
        struct Removal
        {
            std::uint8_t level;
            Vpn vpn;
        };
        /** Removals in exactly invalidateRange()'s order. */
        std::vector<Removal> removals;
    };

    /**
     * Fill @p plan with what invalidateRange(start, end, pcid) would
     * remove right now, in the exact order it would remove them.
     * Read-only: touches no LRU state, fires no listeners. Safe to
     * call concurrently with other const members.
     */
    void planInvalidateRange(Vpn start_vpn, Vpn end_vpn, Pcid pcid,
                             InvalidationPlan *plan) const;

    /**
     * Replay @p plan if it is still fresh (its seq matches
     * mutationSeq()): identical removals, listener notifications,
     * and trace records as the invalidateRange() it precomputed.
     * @return false (and do nothing) when the plan is stale — the
     *         caller falls back to a fresh invalidateRange().
     */
    bool applyInvalidationPlan(const InvalidationPlan &plan);

    /**
     * Monotone counter advanced by every mutating operation —
     * including lookups, which reorder LRU chains and promote
     * between levels. An InvalidationPlan probed at seq S replays
     * exactly iff mutationSeq() is still S.
     */
    std::uint64_t mutationSeq() const { return mutationSeq_; }

    /** Install a translation (after a page walk). */
    void insert(Vpn vpn, Pfn pfn, Pcid pcid, bool writable = true);

    /**
     * Install a 2 MiB translation in the huge-entry array. The
     * listener sees it keyed by the huge region's base frame.
     */
    void insertHuge(Vpn base_vpn, Pfn base_pfn, Pcid pcid,
                    bool writable = true);

    /** True if a huge entry covers @p vpn (no LRU side effects). */
    bool probeHuge(Vpn vpn, Pcid pcid) const;

    /** INVLPG: drop one page's translation under @p pcid. */
    void invalidatePage(Vpn vpn, Pcid pcid);

    /**
     * Drop every translation for pages in [start_vpn, end_vpn].
     * Adaptive: when the range is narrower than a level's occupancy
     * it probes each VPN directly; otherwise it scans the level.
     */
    void invalidateRange(Vpn start_vpn, Vpn end_vpn, Pcid pcid);

    /** Drop every translation tagged @p pcid. */
    void invalidatePcid(Pcid pcid);

    /** Full flush (CR3 write): drop everything. */
    void flushAll();

    /** Number of valid entries across all arrays. */
    std::size_t
    size() const
    {
        return l1_.size() + l2_.size() + huge_.size();
    }

    /** Number of valid 2 MiB entries. */
    std::size_t hugeSize() const { return huge_.size(); }

    /// @name Stats
    /// @{
    std::uint64_t l1Hits() const { return l1Hits_; }
    std::uint64_t l2Hits() const { return l2Hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t flushes() const { return flushes_; }
    /// @}

  private:
    struct Key
    {
        Vpn vpn;
        Pcid pcid;

        bool
        operator==(const Key &o) const
        {
            return vpn == o.vpn && pcid == o.pcid;
        }
    };

    struct Entry
    {
        Key key;
        Pfn pfn;
        bool writable;
    };

    /**
     * One fully associative LRU level: a slot array sized once at
     * construction, an intrusive MRU→LRU index chain through the
     * slots, and a linear-probe index table at ≤50% load. No member
     * allocates after the constructor.
     */
    class Level
    {
      public:
        explicit Level(unsigned capacity);

        bool contains(const Key &k) const { return findSlot(k) != kNil; }

        /** Find and touch (move to MRU). @return entry or nullptr. */
        const Entry *touch(const Key &k);

        /** Find without LRU update. */
        const Entry *peek(const Key &k) const;

        /**
         * Insert; if full, the LRU entry is evicted into
         * @p victim_out and true is returned in *had_victim.
         */
        void insert(const Entry &e, Entry *victim_out, bool *had_victim);

        /** Remove by key. @return true if present. */
        bool remove(const Key &k, Entry *removed_out = nullptr);

        std::size_t size() const { return size_; }

        /** Invoke @p fn on each entry, MRU first; no removal in fn. */
        template <typename Fn>
        void
        forEach(Fn &&fn) const
        {
            for (std::uint16_t i = head_; i != kNil;
                 i = slots_[i].next)
                fn(slots_[i].entry);
        }

        /**
         * Remove every entry matching @p pred, MRU-to-LRU order,
         * invoking @p on_remove with a copy of each removed entry.
         */
        template <typename Pred, typename OnRemove>
        void
        removeMatching(Pred &&pred, OnRemove &&on_remove)
        {
            std::uint16_t i = head_;
            while (i != kNil) {
                const std::uint16_t next = slots_[i].next;
                if (pred(slots_[i].entry)) {
                    const Entry removed = slots_[i].entry;
                    eraseSlot(i);
                    on_remove(removed);
                }
                i = next;
            }
        }

        void clear();

      private:
        static constexpr std::uint16_t kNil = 0xffff;

        struct Slot
        {
            Entry entry;
            /** LRU chain while live; next doubles as free-list link. */
            std::uint16_t prev;
            std::uint16_t next;
        };

        static std::uint32_t
        hashOf(const Key &k)
        {
            std::uint64_t h =
                (static_cast<std::uint64_t>(k.pcid) << 48) ^ k.vpn;
            h *= 0x9e3779b97f4a7c15ULL; // Fibonacci mix
            return static_cast<std::uint32_t>(h >> 32);
        }

        /** Probe the index table. @return slot index or kNil. */
        std::uint16_t findSlot(const Key &k) const;

        /** Unlink slot @p i from the LRU chain. */
        void unlink(std::uint16_t i);

        /** Link slot @p i at the MRU head. */
        void linkFront(std::uint16_t i);

        /** Erase the table entry pointing at slot @p i (backward shift). */
        void tableErase(std::uint16_t i);

        /** Remove slot @p i entirely (table, chain, free list). */
        void eraseSlot(std::uint16_t i);

        unsigned capacity_;
        std::uint32_t mask_; // table size - 1 (power of two)
        std::size_t size_ = 0;
        std::uint16_t head_ = kNil; // MRU
        std::uint16_t tail_ = kNil; // LRU
        std::uint16_t freeHead_ = kNil;
        std::vector<Slot> slots_;
        std::vector<std::uint16_t> table_; // slot index or kNil
    };

    void notifyInsert(const Entry &e);
    void notifyRemove(const Entry &e);

    /** invalidateRange over one 4 KiB level, probe or scan. */
    void invalidateRangeIn(Level &level, Vpn start_vpn, Vpn end_vpn,
                           Pcid pcid);

    /** planInvalidateRange over one 4 KiB level, probe or scan. */
    void planRangeIn(const Level &level, std::uint8_t level_idx,
                     Vpn start_vpn, Vpn end_vpn, Pcid pcid,
                     InvalidationPlan *plan) const;

    CoreId core_;
    Level l1_;
    Level l2_;
    Level huge_; // separate 2 MiB-entry array
    std::vector<TlbListener *> listeners_;
    TraceRecorder *trace_ = nullptr;

    std::uint64_t l1Hits_ = 0;
    std::uint64_t l2Hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t flushes_ = 0;
    std::uint64_t mutationSeq_ = 0;
};

} // namespace latr

#endif // LATR_HW_TLB_HH_
