/**
 * @file
 * A per-socket last-level-cache model, set-associative with LRU
 * replacement. It exists to reproduce table 4 of the paper: the LLC
 * miss-ratio difference between Linux (whose IPI handlers pollute
 * remote caches) and LATR (whose states occupy a small, bounded LLC
 * footprint). Accesses are tagged by origin so the application miss
 * ratio can be reported separately from kernel/interrupt traffic.
 */

#ifndef LATR_HW_CACHE_HH_
#define LATR_HW_CACHE_HH_

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace latr
{

/** Who issued a cache access (for attribution in stats). */
enum class CacheAccessOrigin
{
    App,        ///< workload loads/stores
    Interrupt,  ///< IPI handler footprint
    LatrSweep,  ///< LATR state-sweep reads
};

/**
 * One socket's LLC. Addresses are cache-line indices (byte address
 * divided by the line size); the model tracks only presence, not
 * data.
 */
class LlcCache
{
  public:
    /**
     * @param size_bytes total capacity.
     * @param ways associativity.
     * @param line_bytes cache-line size.
     */
    LlcCache(std::uint64_t size_bytes, unsigned ways, unsigned line_bytes);

    /**
     * Access one line. Misses install the line, evicting LRU.
     * @param line_addr line index (already divided by line size).
     * @return true on hit.
     */
    bool access(std::uint64_t line_addr, CacheAccessOrigin origin);

    /** True if @p line_addr is resident (no LRU side effects). */
    bool probe(std::uint64_t line_addr) const;

    /**
     * Intel CAT-style way partitioning (the paper's section 7
     * hardware support): reserve @p ways ways of every set for
     * LatrSweep-origin fills; all other origins allocate in the
     * remaining ways. Hits are unaffected. Zero (default) disables
     * partitioning.
     */
    void setLatrReservedWays(unsigned ways);

    unsigned latrReservedWays() const { return latrWays_; }

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }
    unsigned lineBytes() const { return lineBytes_; }

    /// @name Stats (per origin: App=0, Interrupt=1, LatrSweep=2)
    /// @{
    std::uint64_t hits(CacheAccessOrigin origin) const;
    std::uint64_t misses(CacheAccessOrigin origin) const;
    /** Application miss ratio in [0, 1]. */
    double appMissRatio() const;
    void resetStats();
    /// @}

  private:
    struct Line
    {
        std::uint64_t tag = ~0ULL;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    unsigned setOf(std::uint64_t line_addr) const;

    unsigned ways_;
    unsigned latrWays_ = 0; // CAT reservation for LATR states
    unsigned lineBytes_;
    unsigned sets_;
    std::uint64_t useClock_ = 0;
    std::vector<Line> lines_; // sets_ * ways_, row-major by set

    std::uint64_t hits_[3] = {0, 0, 0};
    std::uint64_t misses_[3] = {0, 0, 0};
};

} // namespace latr

#endif // LATR_HW_CACHE_HH_
