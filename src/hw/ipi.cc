#include "hw/ipi.hh"

#include <algorithm>

#include "trace/trace.hh"

namespace latr
{

IpiFabric::IpiFabric(EventQueue &queue, const NumaTopology &topo,
                     const CostModel &cost)
    : queue_(queue), topo_(topo), cost_(cost)
{
}

IpiBroadcastResult
IpiFabric::broadcast(CoreId initiator, const CpuMask &targets,
                     Tick start,
                     std::function<Duration(CoreId)> handler_cost,
                     std::function<void(CoreId, Tick)> on_deliver,
                     const void *deliver_space)
{
    if (start < queue_.now())
        start = queue_.now();
    IpiBroadcastResult result;
    result.allAcked = start;
    result.sendsDone = start;

    const bool tracing = trace_ && trace_->enabled();

    // Walk the mask a 64-bit word at a time: a 119-target broadcast
    // on the large machine pays two word loads up front instead of a
    // per-core callback through forEach's per-bit loop control.
    Tick send_clock = start;
    targets.forEachWord([&](unsigned word, std::uint64_t bits) {
      while (bits) {
        const unsigned bit =
            static_cast<unsigned>(__builtin_ctzll(bits));
        bits &= bits - 1;
        const CoreId target = static_cast<CoreId>(word * 64 + bit);
        if (target == initiator)
            continue;
        const unsigned hops = topo_.hops(initiator, target);

        // ICR writes serialize on the initiating core.
        const Tick send_begin = send_clock;
        send_clock += cost_.ipiSendCost(hops);

        const Tick delivered = send_clock + cost_.ipiDeliveryCost(hops);
        const Duration handler =
            cost_.ipiHandlerFixed + handler_cost(target);
        const Tick handler_done = delivered + handler;
        const Tick acked = handler_done + cost_.cachelineCost(hops);

        if (tracing) {
            // The ICR write on the initiator, the handler on the
            // target, and the ACK's arrival back home — the three
            // legs the paper's figure 2a timeline is built from.
            const SpanId send = trace_->beginSpan(
                "ipi", "ipi.send", send_begin, initiator,
                kTraceNoMm, target);
            trace_->endSpan(send, send_clock);
            const SpanId h = trace_->beginSpan(
                "ipi", "ipi.handler", delivered, target, kTraceNoMm,
                initiator);
            trace_->endSpan(h, handler_done);
            const SpanId ack = trace_->beginSpan(
                "ipi", "ipi.ack", handler_done, target, kTraceNoMm,
                initiator);
            trace_->endSpan(ack, acked);
        }

        if (on_deliver) {
            // Deliveries declare their footprint (target core + the
            // shot-down space) so they ride along in parallel
            // batches; commit order alone serializes the handler's
            // side effects.
            EventFootprint fp;
            fp.writeCore(target);
            if (deliver_space)
                fp.writeSpace(deliver_space);
            else
                fp.writeAllSpaces();
            queue_.scheduleLambda(delivered, fp, [on_deliver, target,
                                                  delivered]() {
                on_deliver(target, delivered);
            });
        }

        result.allAcked = std::max(result.allAcked, acked);
        ++result.ipis;
        ++ipisSent_;
      }
    });

    result.sendsDone = send_clock;
    if (result.ipis > 0)
        ++broadcasts_;
    return result;
}

} // namespace latr
