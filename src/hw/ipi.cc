#include "hw/ipi.hh"

#include <algorithm>

#include "trace/trace.hh"

namespace latr
{

IpiFabric::IpiFabric(EventQueue &queue, const NumaTopology &topo,
                     const CostModel &cost)
    : queue_(queue), topo_(topo), cost_(cost)
{
}

void
IpiFabric::DeliveryEvent::process()
{
    fabric->runDelivery(this);
}

bool
IpiFabric::DeliveryEvent::footprint(EventFootprint &fp) const
{
    fp.writeCore(target);
    // A planning delivery also *reads* its target core: admission
    // then keeps TLB-touching members from landing ahead of it in
    // the same batch, so the probe usually survives to its commit.
    // Not a correctness requirement — the plan is validated against
    // Tlb::mutationSeq() at apply time either way (DESIGN.md §8.4) —
    // just what makes the plans worth computing.
    if (planner)
        fp.readCore(target);
    if (space)
        fp.writeSpace(space);
    else
        fp.writeAllSpaces();
    return true;
}

void
IpiFabric::DeliveryEvent::compute()
{
    plan.valid = false;
    if (planner)
        planner(target, &plan);
}

unsigned
IpiFabric::DeliveryEvent::computeWeight() const
{
    return planner ? weight : 0;
}

IpiFabric::DeliveryEvent *
IpiFabric::acquireDelivery()
{
    if (!free_.empty()) {
        DeliveryEvent *ev = free_.back();
        free_.pop_back();
        return ev;
    }
    events_.push_back(std::make_unique<DeliveryEvent>());
    DeliveryEvent *ev = events_.back().get();
    ev->fabric = this;
    return ev;
}

void
IpiFabric::runDelivery(DeliveryEvent *ev)
{
    ev->deliver(ev->target, ev->at,
                ev->plan.valid ? &ev->plan : nullptr);
    // The queue released the event before calling process(), so it
    // can go straight back on the free list. The deliver/planner
    // closures stay assigned until the next acquire overwrites them;
    // dropping them here would free (and later reallocate) their
    // capture storage on every delivery.
    free_.push_back(ev);
}

IpiBroadcastResult
IpiFabric::broadcast(CoreId initiator, const CpuMask &targets,
                     Tick start,
                     std::function<Duration(CoreId)> handler_cost,
                     DeliverFn on_deliver, const void *deliver_space,
                     PlanFn plan_deliver, unsigned plan_weight)
{
    if (start < queue_.now())
        start = queue_.now();
    IpiBroadcastResult result;
    result.allAcked = start;
    result.sendsDone = start;

    const bool tracing = trace_ && trace_->enabled();

    // Walk the mask a 64-bit word at a time: a 119-target broadcast
    // on the large machine pays two word loads up front instead of a
    // per-core callback through forEach's per-bit loop control.
    Tick send_clock = start;
    targets.forEachWord([&](unsigned word, std::uint64_t bits) {
      while (bits) {
        const unsigned bit =
            static_cast<unsigned>(__builtin_ctzll(bits));
        bits &= bits - 1;
        const CoreId target = static_cast<CoreId>(word * 64 + bit);
        if (target == initiator)
            continue;
        const unsigned hops = topo_.hops(initiator, target);

        // ICR writes serialize on the initiating core.
        const Tick send_begin = send_clock;
        send_clock += cost_.ipiSendCost(hops);

        const Tick delivered = send_clock + cost_.ipiDeliveryCost(hops);
        const Duration handler =
            cost_.ipiHandlerFixed + handler_cost(target);
        const Tick handler_done = delivered + handler;
        const Tick acked = handler_done + cost_.cachelineCost(hops);

        if (tracing) {
            // The ICR write on the initiator, the handler on the
            // target, and the ACK's arrival back home — the three
            // legs the paper's figure 2a timeline is built from.
            const SpanId send = trace_->beginSpan(
                "ipi", "ipi.send", send_begin, initiator,
                kTraceNoMm, target);
            trace_->endSpan(send, send_clock);
            const SpanId h = trace_->beginSpan(
                "ipi", "ipi.handler", delivered, target, kTraceNoMm,
                initiator);
            trace_->endSpan(h, handler_done);
            const SpanId ack = trace_->beginSpan(
                "ipi", "ipi.ack", handler_done, target, kTraceNoMm,
                initiator);
            trace_->endSpan(ack, acked);
        }

        if (on_deliver) {
            // Deliveries declare their footprint (target core + the
            // shot-down space) so they ride along in parallel
            // batches; commit order alone serializes the handler's
            // side effects.
            DeliveryEvent *ev = acquireDelivery();
            ev->target = target;
            ev->at = delivered;
            ev->space = deliver_space;
            ev->weight = plan_weight;
            ev->deliver = on_deliver;
            ev->planner = plan_deliver;
            ev->plan.valid = false;
            queue_.schedule(ev, delivered);
        }

        result.allAcked = std::max(result.allAcked, acked);
        ++result.ipis;
        ++ipisSent_;
      }
    });

    result.sendsDone = send_clock;
    if (result.ipis > 0)
        ++broadcasts_;
    return result;
}

} // namespace latr
