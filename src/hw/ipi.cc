#include "hw/ipi.hh"

#include <algorithm>

namespace latr
{

IpiFabric::IpiFabric(EventQueue &queue, const NumaTopology &topo,
                     const CostModel &cost)
    : queue_(queue), topo_(topo), cost_(cost)
{
}

IpiBroadcastResult
IpiFabric::broadcast(CoreId initiator, const CpuMask &targets,
                     Tick start,
                     std::function<Duration(CoreId)> handler_cost,
                     std::function<void(CoreId, Tick)> on_deliver)
{
    if (start < queue_.now())
        start = queue_.now();
    IpiBroadcastResult result;
    result.allAcked = start;
    result.sendsDone = start;

    Tick send_clock = start;
    targets.forEach([&](CoreId target) {
        if (target == initiator)
            return;
        const unsigned hops = topo_.hops(initiator, target);

        // ICR writes serialize on the initiating core.
        send_clock += cost_.ipiSendCost(hops);

        const Tick delivered = send_clock + cost_.ipiDeliveryCost(hops);
        const Duration handler =
            cost_.ipiHandlerFixed + handler_cost(target);
        const Tick handler_done = delivered + handler;
        const Tick acked = handler_done + cost_.cachelineCost(hops);

        if (on_deliver) {
            queue_.scheduleLambda(delivered, [on_deliver, target,
                                              delivered]() {
                on_deliver(target, delivered);
            });
        }

        result.allAcked = std::max(result.allAcked, acked);
        ++result.ipis;
        ++ipisSent_;
    });

    result.sendsDone = send_clock;
    if (result.ipis > 0)
        ++broadcasts_;
    return result;
}

} // namespace latr
