#include "hw/cache.hh"

#include "sim/logging.hh"

namespace latr
{

LlcCache::LlcCache(std::uint64_t size_bytes, unsigned ways,
                   unsigned line_bytes)
    : ways_(ways), lineBytes_(line_bytes)
{
    if (ways == 0 || line_bytes == 0)
        fatal("LLC needs nonzero ways and line size");
    std::uint64_t lines = size_bytes / line_bytes;
    if (lines < ways)
        fatal("LLC smaller than one set");
    sets_ = static_cast<unsigned>(lines / ways);
    lines_.resize(static_cast<std::size_t>(sets_) * ways_);
}

unsigned
LlcCache::setOf(std::uint64_t line_addr) const
{
    // Multiplicative hashing spreads synthetic workload addresses
    // across sets the way physical indexing would.
    return static_cast<unsigned>(
        (line_addr * 0x9e3779b97f4a7c15ULL >> 32) % sets_);
}

bool
LlcCache::access(std::uint64_t line_addr, CacheAccessOrigin origin)
{
    const unsigned set = setOf(line_addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * ways_];
    ++useClock_;

    // Hits are partition-agnostic; only fills honor the CAT mask.
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == line_addr) {
            line.lastUse = useClock_;
            ++hits_[static_cast<int>(origin)];
            return true;
        }
    }

    // Victim selection within the origin's way partition.
    unsigned first = 0;
    unsigned last = ways_; // exclusive
    if (latrWays_ > 0 && latrWays_ < ways_) {
        if (origin == CacheAccessOrigin::LatrSweep)
            last = latrWays_;
        else
            first = latrWays_;
    }
    Line *lru = &base[first];
    for (unsigned w = first; w < last; ++w) {
        Line &line = base[w];
        if (!line.valid) {
            lru = &line;
            break;
        }
        if (lru->valid && line.lastUse < lru->lastUse)
            lru = &line;
    }

    ++misses_[static_cast<int>(origin)];
    lru->valid = true;
    lru->tag = line_addr;
    lru->lastUse = useClock_;
    return false;
}

void
LlcCache::setLatrReservedWays(unsigned ways)
{
    if (ways >= ways_)
        fatal("CAT reservation must leave ways for other traffic");
    latrWays_ = ways;
}

bool
LlcCache::probe(std::uint64_t line_addr) const
{
    const unsigned set = setOf(line_addr);
    const Line *base = &lines_[static_cast<std::size_t>(set) * ways_];
    for (unsigned w = 0; w < ways_; ++w)
        if (base[w].valid && base[w].tag == line_addr)
            return true;
    return false;
}

std::uint64_t
LlcCache::hits(CacheAccessOrigin origin) const
{
    return hits_[static_cast<int>(origin)];
}

std::uint64_t
LlcCache::misses(CacheAccessOrigin origin) const
{
    return misses_[static_cast<int>(origin)];
}

double
LlcCache::appMissRatio() const
{
    const std::uint64_t h = hits_[0];
    const std::uint64_t m = misses_[0];
    if (h + m == 0)
        return 0.0;
    return static_cast<double>(m) / static_cast<double>(h + m);
}

void
LlcCache::resetStats()
{
    for (int i = 0; i < 3; ++i) {
        hits_[i] = 0;
        misses_[i] = 0;
    }
}

} // namespace latr
