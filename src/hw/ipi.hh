/**
 * @file
 * The inter-processor-interrupt fabric (the simulated APIC). The
 * APIC has no flexible multicast, so a broadcast serializes one ICR
 * write per destination on the initiating core; each interrupt then
 * flies across the interconnect (latency grows with socket hops), the
 * destination runs a handler, and an ACK cache line travels back.
 * This reproduces the two properties the paper builds on: shootdown
 * cost grows with core count, and the initiator stalls until the
 * last ACK.
 */

#ifndef LATR_HW_IPI_HH_
#define LATR_HW_IPI_HH_

#include <functional>

#include "sim/event_queue.hh"
#include "sim/types.hh"
#include "topo/cost_model.hh"
#include "topo/topology.hh"

namespace latr
{

class TraceRecorder;

/**
 * Outcome of an IPI broadcast, computed at send time (the cost model
 * makes handler durations known up front, so the completion tick is
 * deterministic).
 */
struct IpiBroadcastResult
{
    /** Tick at which the last ACK reaches the initiator. */
    Tick allAcked = 0;
    /** Tick at which the initiator finishes writing all ICRs. */
    Tick sendsDone = 0;
    /** Number of IPIs sent. */
    unsigned ipis = 0;
};

/** Delivers IPIs between cores and tracks fabric statistics. */
class IpiFabric
{
  public:
    /**
     * @param queue global event queue.
     * @param topo machine topology (hop distances).
     * @param cost latency constants.
     */
    IpiFabric(EventQueue &queue, const NumaTopology &topo,
              const CostModel &cost);

    IpiFabric(const IpiFabric &) = delete;
    IpiFabric &operator=(const IpiFabric &) = delete;

    /** Attach the trace recorder (nullptr to detach). */
    void setTracer(TraceRecorder *trace) { trace_ = trace; }

    /**
     * Broadcast an IPI from @p initiator to every core in
     * @p targets (the initiator, if present, is skipped: local work
     * is the caller's business).
     *
     * @param start tick the initiator begins writing ICRs; must be
     *        at or after the queue's current time (operations that
     *        waited on a lock start late).
     * @param handler_cost cost of the handler body on a given target
     *        core, beyond the fixed interrupt entry/exit cost.
     * @param on_deliver side effects to apply when the interrupt is
     *        handled on a target (TLB invalidation, stolen-time
     *        charging); invoked at the handler-start tick.
     * @param deliver_space identity of the address space
     *        @p on_deliver mutates, for the delivery events'
     *        conflict footprints. Each delivery declares a write of
     *        the target core plus this space; nullptr (unknown)
     *        widens the declaration to every space — still
     *        batchable, just a coarser write set.
     * @return completion information, including the tick the last
     *         ACK arrives (the initiator blocks until then).
     */
    IpiBroadcastResult broadcast(
        CoreId initiator, const CpuMask &targets, Tick start,
        std::function<Duration(CoreId)> handler_cost,
        std::function<void(CoreId, Tick)> on_deliver,
        const void *deliver_space = nullptr);

    /// @name Stats
    /// @{
    std::uint64_t ipisSent() const { return ipisSent_; }
    std::uint64_t broadcasts() const { return broadcasts_; }
    void resetStats() { ipisSent_ = 0; broadcasts_ = 0; }
    /// @}

  private:
    EventQueue &queue_;
    const NumaTopology &topo_;
    const CostModel &cost_;
    TraceRecorder *trace_ = nullptr;

    std::uint64_t ipisSent_ = 0;
    std::uint64_t broadcasts_ = 0;
};

} // namespace latr

#endif // LATR_HW_IPI_HH_
