/**
 * @file
 * The inter-processor-interrupt fabric (the simulated APIC). The
 * APIC has no flexible multicast, so a broadcast serializes one ICR
 * write per destination on the initiating core; each interrupt then
 * flies across the interconnect (latency grows with socket hops), the
 * destination runs a handler, and an ACK cache line travels back.
 * This reproduces the two properties the paper builds on: shootdown
 * cost grows with core count, and the initiator stalls until the
 * last ACK.
 */

#ifndef LATR_HW_IPI_HH_
#define LATR_HW_IPI_HH_

#include <functional>
#include <memory>
#include <vector>

#include "hw/tlb.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"
#include "topo/cost_model.hh"
#include "topo/topology.hh"

namespace latr
{

class TraceRecorder;

/**
 * Outcome of an IPI broadcast, computed at send time (the cost model
 * makes handler durations known up front, so the completion tick is
 * deterministic).
 */
struct IpiBroadcastResult
{
    /** Tick at which the last ACK reaches the initiator. */
    Tick allAcked = 0;
    /** Tick at which the initiator finishes writing all ICRs. */
    Tick sendsDone = 0;
    /** Number of IPIs sent. */
    unsigned ipis = 0;
};

/** Delivers IPIs between cores and tracks fabric statistics. */
class IpiFabric
{
  public:
    /**
     * @param queue global event queue.
     * @param topo machine topology (hop distances).
     * @param cost latency constants.
     */
    IpiFabric(EventQueue &queue, const NumaTopology &topo,
              const CostModel &cost);

    IpiFabric(const IpiFabric &) = delete;
    IpiFabric &operator=(const IpiFabric &) = delete;

    /** Attach the trace recorder (nullptr to detach). */
    void setTracer(TraceRecorder *trace) { trace_ = trace; }

    /**
     * Handler side effects, invoked at the handler-start tick. The
     * third argument is the delivery's precomputed TLB invalidation
     * plan (nullptr when no planner was supplied or planning was
     * skipped); the callee validates it against the target TLB's
     * mutationSeq() and falls back to a fresh invalidation when
     * stale.
     */
    using DeliverFn =
        std::function<void(CoreId, Tick, const Tlb::InvalidationPlan *)>;

    /**
     * Optional read-only speculation for one delivery: probe the
     * target's TLB and fill the plan. Runs in the delivery event's
     * compute() phase — possibly on a worker thread, concurrently
     * with other deliveries' planners — so it must only call const
     * members of shared state.
     */
    using PlanFn = std::function<void(CoreId, Tlb::InvalidationPlan *)>;

    /**
     * Broadcast an IPI from @p initiator to every core in
     * @p targets (the initiator, if present, is skipped: local work
     * is the caller's business).
     *
     * @param start tick the initiator begins writing ICRs; must be
     *        at or after the queue's current time (operations that
     *        waited on a lock start late).
     * @param handler_cost cost of the handler body on a given target
     *        core, beyond the fixed interrupt entry/exit cost.
     * @param on_deliver side effects to apply when the interrupt is
     *        handled on a target (TLB invalidation, stolen-time
     *        charging); invoked at the handler-start tick.
     * @param deliver_space identity of the address space
     *        @p on_deliver mutates, for the delivery events'
     *        conflict footprints. Each delivery declares a write of
     *        the target core plus this space; nullptr (unknown)
     *        widens the declaration to every space — still
     *        batchable, just a coarser write set.
     * @param plan_deliver when non-null, each delivery event grows a
     *        compute() phase calling this to pre-probe the target's
     *        TLB, and declares a *read* of the target core so batch
     *        admission keeps TLB-touching members from preceding it.
     * @param plan_weight computeWeight() reported per planning
     *        delivery; at least two heavy computes make a batch
     *        eligible for worker offload.
     * @return completion information, including the tick the last
     *         ACK arrives (the initiator blocks until then).
     */
    IpiBroadcastResult broadcast(
        CoreId initiator, const CpuMask &targets, Tick start,
        std::function<Duration(CoreId)> handler_cost,
        DeliverFn on_deliver, const void *deliver_space = nullptr,
        PlanFn plan_deliver = nullptr, unsigned plan_weight = 0);

    /// @name Stats
    /// @{
    std::uint64_t ipisSent() const { return ipisSent_; }
    std::uint64_t broadcasts() const { return broadcasts_; }
    void resetStats() { ipisSent_ = 0; broadcasts_ = 0; }
    /// @}

    /** Pooled delivery events currently allocated (tests). */
    std::size_t deliveryPoolSize() const { return events_.size(); }

  private:
    /**
     * One in-flight interrupt delivery, pooled by the fabric
     * (acquire at broadcast, recycle after the handler commits).
     * Replaces the scheduleLambda deliveries so a delivery can carry
     * a compute() phase: the planner probes the target TLB read-only
     * on a worker thread, and the commit hands the plan to
     * on_deliver, which validates it against Tlb::mutationSeq() —
     * the precise-validator discipline of DESIGN.md §8.4. The plan's
     * vectors (and this event) are reused delivery to delivery, so
     * sustained IPI fallback storms allocate nothing.
     */
    class DeliveryEvent final : public Event
    {
      public:
        void process() override;
        bool footprint(EventFootprint &fp) const override;
        void compute() override;
        unsigned computeWeight() const override;
        const char *name() const override { return "ipi-delivery"; }

      private:
        friend class IpiFabric;

        IpiFabric *fabric = nullptr;
        CoreId target = 0;
        /** Handler-start tick (on_deliver's Tick argument). */
        Tick at = 0;
        const void *space = nullptr;
        unsigned weight = 0;
        DeliverFn deliver;
        PlanFn planner;
        Tlb::InvalidationPlan plan;
    };

    /** Pop a recycled delivery event or grow the pool. */
    DeliveryEvent *acquireDelivery();

    /** DeliveryEvent::process(): run the handler, recycle the event. */
    void runDelivery(DeliveryEvent *ev);

    EventQueue &queue_;
    const NumaTopology &topo_;
    const CostModel &cost_;
    TraceRecorder *trace_ = nullptr;

    std::uint64_t ipisSent_ = 0;
    std::uint64_t broadcasts_ = 0;

    /** Pooled delivery events (owners) and the recycled free list. */
    std::vector<std::unique_ptr<DeliveryEvent>> events_;
    std::vector<DeliveryEvent *> free_;
};

} // namespace latr

#endif // LATR_HW_IPI_HH_
