#include "machine/machine_stats.hh"

#include <sstream>

namespace latr
{

MachineSummary
summarize(Machine &machine, Duration elapsed)
{
    MachineSummary s;
    StatRegistry &st = machine.stats();
    s.shootdownsPerSec =
        ratePerSecond(st.counterValue("coh.shootdowns"), elapsed);
    s.ipisPerSec = ratePerSecond(machine.ipi().ipisSent(), elapsed);
    s.munmapMeanNs = st.distribution("munmap.latency_ns").mean();
    s.munmapShootdownMeanNs =
        st.distribution("munmap.shootdown_ns").mean();
    s.migrations = st.counterValue("numa.migrations");
    s.latrFallbacks = st.counterValue("latr.fallback_ipis");
    s.latrStatesSaved = st.counterValue("latr.states_saved");

    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    for (NodeId n = 0; n < machine.config().sockets; ++n) {
        hits += machine.llcOf(n).hits(CacheAccessOrigin::App);
        misses += machine.llcOf(n).misses(CacheAccessOrigin::App);
    }
    if (hits + misses > 0)
        s.appLlcMissRatio = static_cast<double>(misses) /
                            static_cast<double>(hits + misses);
    return s;
}

std::string
formatSummary(const MachineSummary &s)
{
    std::ostringstream os;
    os << "shootdowns/s=" << s.shootdownsPerSec
       << " ipis/s=" << s.ipisPerSec
       << " munmap_mean_ns=" << s.munmapMeanNs
       << " shootdown_mean_ns=" << s.munmapShootdownMeanNs
       << " llc_app_miss=" << s.appLlcMissRatio
       << " migrations=" << s.migrations;
    return os.str();
}

} // namespace latr
