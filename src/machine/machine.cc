#include "machine/machine.hh"

namespace latr
{

Machine::Machine(MachineConfig config, PolicyKind policy_kind,
                 bool check_invariants)
    : config_(std::move(config)),
      topo_(config_.sockets, config_.coresPerSocket),
      frames_(config_.sockets, config_.framesPerNode),
      ipi_(queue_, topo_, config_.cost),
      sched_(queue_, topo_, config_),
      kernel_(queue_, topo_, config_, frames_, sched_, stats_)
{
    if (config_.simThreads > 0) {
        exec_ = std::make_unique<ParallelExecutor>(
            config_.simThreads, config_.pinSimThreads);
        queue_.setParallelExecutor(exec_.get());
    }

    trace_.attachClock(&queue_);
    kernel_.setTracer(&trace_);
    sched_.setTracer(&trace_);
    ipi_.setTracer(&trace_);

    llcs_.reserve(config_.sockets);
    for (unsigned s = 0; s < config_.sockets; ++s) {
        llcs_.push_back(std::make_unique<LlcCache>(
            config_.llcBytesPerSocket, config_.llcWays,
            config_.llcLineBytes));
    }

    if (check_invariants) {
        checker_ = std::make_unique<InvariantChecker>();
        frames_.setListener(checker_.get());
        for (CoreId c = 0; c < topo_.totalCores(); ++c)
            sched_.tlbOf(c).setListener(checker_.get());
    }

    PolicyEnv env;
    env.queue = &queue_;
    env.topo = &topo_;
    env.config = &config_;
    env.frames = &frames_;
    env.ipi = &ipi_;
    env.cores = &sched_;
    env.stats = &stats_;
    env.trace = &trace_;
    for (auto &llc : llcs_)
        env.llcs.push_back(llc.get());
    policy_ = makePolicy(policy_kind, std::move(env));
    kernel_.setPolicy(policy_.get());
}

StalenessOracle *
Machine::installStalenessOracle(bool strict)
{
    if (staleness_)
        return staleness_.get();
    staleness_ = std::make_unique<StalenessOracle>(strict);
    staleness_->attachClock(&queue_);
    frames_.addListener(staleness_.get());
    for (CoreId c = 0; c < topo_.totalCores(); ++c)
        sched_.tlbOf(c).addListener(staleness_.get());
    kernel_.setStalenessOracle(staleness_.get());
    return staleness_.get();
}

Machine::~Machine()
{
    // Stop ticks so pending recurring events do not fire into a
    // half-destroyed machine while the queue unwinds.
    sched_.stop();
}

void
Machine::run(Duration sim_time)
{
    sched_.start();
    queue_.run(queue_.now() + sim_time);
}

void
Machine::drain(Tick limit)
{
    sched_.stop();
    queue_.run(limit);
}

} // namespace latr
