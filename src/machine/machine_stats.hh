/**
 * @file
 * Derived metrics benches report: rates per second of simulated
 * time, munmap latency summaries, cache miss ratios — the quantities
 * the paper's figures plot.
 */

#ifndef LATR_MACHINE_MACHINE_STATS_HH_
#define LATR_MACHINE_MACHINE_STATS_HH_

#include <string>

#include "machine/machine.hh"
#include "sim/types.hh"

namespace latr
{

/** A snapshot of the headline metrics over an interval. */
struct MachineSummary
{
    double shootdownsPerSec = 0.0;
    double ipisPerSec = 0.0;
    double munmapMeanNs = 0.0;
    double munmapShootdownMeanNs = 0.0;
    double appLlcMissRatio = 0.0;
    std::uint64_t migrations = 0;
    std::uint64_t latrFallbacks = 0;
    std::uint64_t latrStatesSaved = 0;
};

/**
 * Summarize @p machine over @p elapsed of simulated time (since the
 * last stats reset).
 */
MachineSummary summarize(Machine &machine, Duration elapsed);

/** Render a one-line summary for bench output. */
std::string formatSummary(const MachineSummary &summary);

} // namespace latr

#endif // LATR_MACHINE_MACHINE_STATS_HH_
