/**
 * @file
 * The Machine: the top-level object a user of this library builds.
 * Wires a MachineConfig into topology, event queue, frame allocator,
 * per-socket LLCs, IPI fabric, scheduler (cores + TLBs), kernel, a
 * TLB-coherence policy, and (optionally) the reuse-invariant
 * checker. See examples/quickstart.cc for the canonical usage.
 */

#ifndef LATR_MACHINE_MACHINE_HH_
#define LATR_MACHINE_MACHINE_HH_

#include <memory>
#include <vector>

#include "check/staleness.hh"
#include "hw/cache.hh"
#include "hw/ipi.hh"
#include "mem/frame_allocator.hh"
#include "os/kernel.hh"
#include "os/scheduler.hh"
#include "sim/event_queue.hh"
#include "sim/parallel_exec.hh"
#include "sim/stats.hh"
#include "tlbcoh/invariant.hh"
#include "tlbcoh/policy.hh"
#include "topo/machine_config.hh"
#include "topo/topology.hh"
#include "trace/trace.hh"

namespace latr
{

/** A complete simulated machine. */
class Machine
{
  public:
    /**
     * @param config static machine description (see the presets in
     *        MachineConfig).
     * @param policy_kind which TLB-coherence policy to run.
     * @param check_invariants mirror TLB/allocator activity in the
     *        reuse-invariant checker (small overhead; recommended).
     */
    Machine(MachineConfig config, PolicyKind policy_kind,
            bool check_invariants = true);

    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /// @name Components
    /// @{
    const MachineConfig &config() const { return config_; }
    const NumaTopology &topo() const { return topo_; }
    EventQueue &queue() { return queue_; }
    StatRegistry &stats() { return stats_; }
    /** Event tracing; disabled by default (trace().setEnabled()). */
    TraceRecorder &trace() { return trace_; }
    FrameAllocator &frames() { return frames_; }
    IpiFabric &ipi() { return ipi_; }
    Scheduler &scheduler() { return sched_; }
    Kernel &kernel() { return kernel_; }
    TlbCoherencePolicy &policy() { return *policy_; }
    LlcCache &llcOf(NodeId node) { return *llcs_.at(node); }
    /** nullptr when check_invariants was false. */
    InvariantChecker *checker() { return checker_.get(); }
    /** nullptr until installStalenessOracle(). */
    StalenessOracle *staleness() { return staleness_.get(); }
    /** nullptr unless config.simThreads > 0. */
    ParallelExecutor *parallelExecutor() { return exec_.get(); }
    /// @}

    /**
     * Attach the bounded-staleness oracle (src/check/) to every TLB,
     * the frame allocator, and the kernel. Install before the first
     * operation — the oracle mirrors TLB contents from empty.
     * Idempotent; returns the oracle.
     */
    StalenessOracle *installStalenessOracle(bool strict = false);

    /** Current simulated time. */
    Tick now() const { return queue_.now(); }

    /**
     * Advance the simulation by @p sim_time. Starts the scheduler
     * ticks on first use.
     */
    void run(Duration sim_time);

    /**
     * Advance until the event queue drains (scheduler ticks are
     * stopped first) or @p limit is reached.
     */
    void drain(Tick limit = kTickNever);

  private:
    MachineConfig config_;
    NumaTopology topo_;
    EventQueue queue_;
    std::unique_ptr<ParallelExecutor> exec_;
    StatRegistry stats_;
    TraceRecorder trace_;
    FrameAllocator frames_;
    std::vector<std::unique_ptr<LlcCache>> llcs_;
    IpiFabric ipi_;
    Scheduler sched_;
    Kernel kernel_;
    std::unique_ptr<InvariantChecker> checker_;
    std::unique_ptr<StalenessOracle> staleness_;
    std::unique_ptr<TlbCoherencePolicy> policy_;
};

} // namespace latr

#endif // LATR_MACHINE_MACHINE_HH_
