/**
 * @file
 * The open-loop request-serving scenario: the subsystem that measures
 * the figure LATR leads with — tail request latency. Unlike the
 * closed-loop webserver workload (whose workers issue the next
 * request only after the previous one finishes, so queueing delay can
 * never accumulate), requests here arrive on a seeded-RNG Poisson
 * process with a diurnal load curve, drawn from millions of simulated
 * users mapped onto multi-tenant address spaces — one mm per tenant,
 * periodic tenant churn tearing a whole mm down mid-run — and are
 * served by per-core workers that drain FIFO queues. Service time
 * inflated by TLB-coherence work (synchronous shootdowns, stolen IPI
 * handler time, LATR sweeps) compounds into queueing delay, which is
 * exactly how Apache's p99 degrades on stock Linux in the paper's
 * figure 1.
 *
 * The scenario is trace-first: generateServeTrace() turns a
 * ServeConfig into a .latrace op stream (latrace.hh), and
 * runServeTrace() feeds any such stream — freshly generated or loaded
 * from disk — through the kernel deterministically. Same trace, same
 * machine, same policy => byte-identical results at every
 * --sim-threads count, so recordings are shareable and diffable
 * across PRs and policies.
 */

#ifndef LATR_SERVE_SERVE_HH_
#define LATR_SERVE_SERVE_HH_

#include <cstdint>
#include <vector>

#include "serve/histogram.hh"
#include "serve/latrace.hh"
#include "sim/types.hh"

namespace latr
{

class Machine;

/** Parameters of the generated open-loop serving scenario. */
struct ServeConfig
{
    /** Serving cores, one worker per core from core 0. */
    unsigned workers = 12;
    /** Concurrent tenant slots, one process (mm) each. */
    unsigned tenants = 6;
    /** Simulated user population, hashed onto tenants. */
    std::uint64_t users = 2'000'000;
    /**
     * Mean aggregate arrival rate (requests per simulated second).
     * The default sits just under synchronous Linux's serving
     * capacity on the commodity machine, so the diurnal peaks push
     * Linux past saturation while LATR stays comfortable — the
     * regime where lazy shootdowns buy their tail-latency win.
     */
    double arrivalRatePerSec = 160'000.0;
    /** Open-loop horizon: arrivals stop at this tick. */
    Duration duration = 120 * kMsec;
    /**
     * Diurnal load-curve amplitude in [0, 1): the instantaneous rate
     * follows a triangle wave rate*(1 +/- amplitude), so peaks can
     * exceed serving capacity while the mean does not — the shape
     * that turns service-time inflation into tail blowup.
     */
    double diurnalAmplitude = 0.25;
    /** Period of the diurnal triangle wave. */
    Duration diurnalPeriod = 60 * kMsec;
    /**
     * Tenant churn: every interval one slot exits (tearing down its
     * mm) and respawns fresh. 0 disables churn.
     */
    Duration churnInterval = 25 * kMsec;
    /** Pages of the served file (10 KB static page -> 3). */
    std::uint16_t filePages = 3;
    /** Pages of the occasional heavy response. */
    std::uint16_t heavyPages = 12;
    /** Per-mille of requests that are heavy. */
    unsigned heavyPermille = 100;
    /** Request CPU time outside memory management. */
    Duration serviceCpu = 30 * kUsec;
    std::uint64_t seed = 1;
};

/** Host-side knobs of one replay (never part of the simulation). */
struct ServeOptions
{
    /**
     * Keep one LatencyHistogram per tenant slot alongside the
     * aggregate — the per-tenant tail view bench_serve reports with
     * `--per-tenant`. Off by default: the extra histograms cost
     * ~0.5 MB per tenant slot. Slots aggregate across churn
     * generations (slot identity, not process identity). Pure
     * observer state: enabling it cannot change the simulation or
     * the run digest.
     */
    bool perTenantLatency = false;
};

/** Outcome of one open-loop run. */
struct ServeResult
{
    std::uint64_t arrivals = 0;
    /** Requests served to completion. */
    std::uint64_t completed = 0;
    /** Requests dropped because their tenant churned while queued. */
    std::uint64_t droppedChurn = 0;
    std::uint64_t tenantChurns = 0;
    /** Deepest any worker queue got (open-loop pressure gauge). */
    std::uint64_t maxQueueDepth = 0;

    /** Arrival-to-completion latency of every completed request. */
    LatencyHistogram latency;

    /**
     * Per-tenant-slot latency, indexed by slot; empty unless
     * ServeOptions::perTenantLatency was set. Excluded from the
     * digest so the flag is free to differ between compared runs.
     */
    std::vector<LatencyHistogram> tenantLatency;

    double requestsPerSec = 0.0;
    double shootdownsPerSec = 0.0;

    /**
     * Digest over the latency histogram, the request counts, and the
     * machine's full stat registry: byte-identical runs (same trace,
     * policy, and machine — any --sim-threads) digest equal. The
     * record/replay and parallel-engine tests compare these.
     */
    std::uint64_t digest = 0;

    std::uint64_t p50() const { return latency.percentile(0.50); }
    std::uint64_t p99() const { return latency.percentile(0.99); }
    std::uint64_t p999() const { return latency.percentile(0.999); }
};

/**
 * Generate the .latrace op stream for @p config: Poisson arrivals
 * thinned against the diurnal curve, user->tenant mapping, heavy-
 * response mixing, and the tenant churn schedule. Deterministic:
 * equal configs produce byte-identical serializations.
 */
Latrace generateServeTrace(const ServeConfig &config);

/**
 * Feed @p trace through @p machine's kernel: spawn the tenants,
 * inject every op at its recorded tick, serve requests open-loop on
 * the worker cores, then drain the queues and lazy reclamation.
 * The machine must be fresh (no prior workload).
 */
ServeResult runServeTrace(Machine &machine, const Latrace &trace,
                          const ServeOptions &options = {});

} // namespace latr

#endif // LATR_SERVE_SERVE_HH_
