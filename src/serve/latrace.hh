/**
 * @file
 * The `.latrace` timestamped-op trace format: a versioned binary
 * container for open-loop serving workloads, so scenarios are
 * shareable and byte-diffable across PRs and policies. A recording
 * is a header (magic, version, the scenario parameters replay needs)
 * followed by fixed-size little-endian records, each one op:
 *
 *   (tick, user, tenant, op, pages)
 *
 * Versioning rules (DESIGN.md §9): the header carries its own byte
 * length, so a reader skips header fields younger than itself;
 * records only ever *gain* trailing fields inside their fixed
 * recordBytes, so a reader ignores record bytes it does not know.
 * Any change that would break either rule bumps kLatraceVersion and
 * readers reject files whose version they do not speak.
 *
 * Serialization is fully integer-based — no floats touch the wire —
 * so equal in-memory traces serialize to equal bytes on every
 * platform, and the determinism tests can compare recordings with
 * memcmp.
 */

#ifndef LATR_SERVE_LATRACE_HH_
#define LATR_SERVE_LATRACE_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace latr
{

/** Operation kinds a .latrace record can carry. */
enum class LatraceOp : std::uint8_t
{
    /** Serve one request for `tenant`: mmap/touch/munmap `pages`. */
    Request = 0,
    /** Tear the tenant slot's process down (frees every mapping). */
    TenantExit = 1,
    /** Spawn a fresh process into the tenant slot. */
    TenantSpawn = 2,
};

/** One timestamped op (fixed 24 bytes on the wire). */
struct LatraceRecord
{
    /** Arrival tick (simulated ns). */
    Tick tick = 0;
    /** Requesting user id (Request only; hashes into jitter). */
    std::uint32_t user = 0;
    /** Tenant slot the op addresses. */
    std::uint32_t tenant = 0;
    /** Pages the request maps and serves (Request only). */
    std::uint16_t pages = 0;
    LatraceOp op = LatraceOp::Request;
    /** Reserved, written as zero. */
    std::uint8_t flags = 0;

    bool
    operator==(const LatraceRecord &o) const
    {
        return tick == o.tick && user == o.user &&
               tenant == o.tenant && pages == o.pages && op == o.op &&
               flags == o.flags;
    }
};

/** Current .latrace format version. */
constexpr std::uint32_t kLatraceVersion = 1;

/** A parsed (or generated) .latrace recording. */
struct Latrace
{
    /// @name Header: the scenario parameters replay needs
    /// @{
    /** Seed the stream was generated from (provenance only). */
    std::uint64_t seed = 0;
    /** Open-loop horizon: last tick the generator covered. */
    Tick durationTicks = 0;
    /** Serving cores, one worker per core from core 0. */
    std::uint32_t workers = 0;
    /** Concurrent tenant slots (one process/mm each). */
    std::uint32_t tenants = 0;
    /** Request CPU time outside memory management, ns. */
    Duration serviceCpuNs = 0;
    /// @}

    std::vector<LatraceRecord> records;

    bool
    operator==(const Latrace &o) const
    {
        return seed == o.seed && durationTicks == o.durationTicks &&
               workers == o.workers && tenants == o.tenants &&
               serviceCpuNs == o.serviceCpuNs && records == o.records;
    }
};

/** Serialize @p trace to its canonical byte representation. */
std::string latraceSerialize(const Latrace &trace);

/**
 * Parse @p bytes into @p out. @return false (with a reason in
 * @p error if non-null) on bad magic, unknown version, or a
 * truncated/oversized body.
 */
bool latraceParse(const std::string &bytes, Latrace *out,
                  std::string *error = nullptr);

/** Write @p trace to @p path. @return false on I/O failure. */
bool latraceSave(const Latrace &trace, const std::string &path);

/** Load @p path into @p out; see latraceParse for failure modes. */
bool latraceLoad(const std::string &path, Latrace *out,
                 std::string *error = nullptr);

} // namespace latr

#endif // LATR_SERVE_LATRACE_HH_
