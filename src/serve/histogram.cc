#include "serve/histogram.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "sim/logging.hh"

namespace latr
{

LatencyHistogram::LatencyHistogram() : buckets_(kTotalBuckets, 0) {}

std::size_t
LatencyHistogram::bucketOf(std::uint64_t value)
{
    if (value < kLinearMax)
        return value;
    // Major bucket m >= 1 covers [kLinearMax << (m-1), kLinearMax << m),
    // split into kSubBuckets minors of width 2^(m-1).
    const unsigned msb = 63 - std::countl_zero(value);
    const unsigned major = msb - kLinearBits + 1;
    const std::uint64_t sub = (value >> (major - 1)) - kLinearMax;
    return static_cast<std::size_t>(major) * kSubBuckets +
           static_cast<std::size_t>(sub);
}

std::uint64_t
LatencyHistogram::bucketLow(std::size_t i)
{
    const std::size_t major = i / kSubBuckets;
    const std::size_t sub = i % kSubBuckets;
    if (major == 0)
        return sub;
    return (kLinearMax + sub) << (major - 1);
}

std::uint64_t
LatencyHistogram::bucketHigh(std::size_t i)
{
    const std::size_t major = i / kSubBuckets;
    if (major == 0)
        return bucketLow(i);
    return bucketLow(i) + ((1ULL << (major - 1)) - 1);
}

void
LatencyHistogram::record(std::uint64_t value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    ++buckets_[bucketOf(value)];
}

void
LatencyHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    min_ = 0;
    max_ = 0;
    sum_ = 0;
}

double
LatencyHistogram::mean() const
{
    return count_ ? static_cast<double>(sum_) /
                        static_cast<double>(count_)
                  : 0.0;
}

std::uint64_t
LatencyHistogram::percentile(double q) const
{
    if (count_ == 0)
        return 0;
    if (q < 0.0 || q > 1.0)
        panic("percentile quantile %f out of [0, 1]", q);
    // Inclusive nearest rank: the ceil(q * count)-th smallest sample
    // (1-based), clamped to [1, count] so q = 0 is the minimum.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    rank = std::max<std::uint64_t>(rank, 1);
    rank = std::min(rank, count_);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        cumulative += buckets_[i];
        if (cumulative >= rank) {
            // Never report beyond the recorded max: the top bucket's
            // highest equivalent value can overshoot it.
            return std::min(bucketHigh(i), max_);
        }
    }
    return max_; // unreachable: cumulative reaches count_
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
}

std::uint64_t
LatencyHistogram::digest() const
{
    std::uint64_t h = 1469598103934665603ULL; // FNV offset basis
    auto mix = [&h](std::uint64_t v) {
        for (unsigned b = 0; b < 8; ++b) {
            h ^= (v >> (b * 8)) & 0xff;
            h *= 1099511628211ULL; // FNV prime
        }
    };
    mix(count_);
    mix(sum_);
    mix(min_);
    mix(max_);
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue; // sparse: digest (index, count) pairs
        mix(i);
        mix(buckets_[i]);
    }
    return h;
}

} // namespace latr
