#include "serve/latrace.hh"

#include <cstdio>
#include <cstring>

namespace latr
{

namespace
{

// Wire layout, version 1. All integers little-endian.
//
//   offset  size  field
//   0       8     magic "LATRACE\0"
//   8       4     version
//   12      4     headerBytes (offset of the record array)
//   16      4     recordBytes (stride of one record)
//   20      4     reserved (0)
//   24      8     seed
//   32      8     durationTicks
//   40      4     workers
//   44      4     tenants
//   48      8     serviceCpuNs
//   56      8     recordCount
//   64      ...   records
//
// Record, 24 bytes: tick u64, user u32, tenant u32, pages u16,
// op u8, flags u8, reserved u32.

constexpr char kMagic[8] = {'L', 'A', 'T', 'R', 'A', 'C', 'E', '\0'};
constexpr std::uint32_t kHeaderBytes = 64;
constexpr std::uint32_t kRecordBytes = 24;

void
put16(std::string &out, std::uint16_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void
put32(std::string &out, std::uint32_t v)
{
    put16(out, static_cast<std::uint16_t>(v & 0xffff));
    put16(out, static_cast<std::uint16_t>(v >> 16));
}

void
put64(std::string &out, std::uint64_t v)
{
    put32(out, static_cast<std::uint32_t>(v & 0xffffffffULL));
    put32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint16_t
get16(const unsigned char *p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t
get32(const unsigned char *p)
{
    return static_cast<std::uint32_t>(get16(p)) |
           (static_cast<std::uint32_t>(get16(p + 2)) << 16);
}

std::uint64_t
get64(const unsigned char *p)
{
    return static_cast<std::uint64_t>(get32(p)) |
           (static_cast<std::uint64_t>(get32(p + 4)) << 32);
}

bool
fail(std::string *error, const char *why)
{
    if (error)
        *error = why;
    return false;
}

} // namespace

std::string
latraceSerialize(const Latrace &trace)
{
    std::string out;
    out.reserve(kHeaderBytes + trace.records.size() * kRecordBytes);
    out.append(kMagic, sizeof kMagic);
    put32(out, kLatraceVersion);
    put32(out, kHeaderBytes);
    put32(out, kRecordBytes);
    put32(out, 0); // reserved
    put64(out, trace.seed);
    put64(out, trace.durationTicks);
    put32(out, trace.workers);
    put32(out, trace.tenants);
    put64(out, trace.serviceCpuNs);
    put64(out, trace.records.size());
    for (const LatraceRecord &r : trace.records) {
        put64(out, r.tick);
        put32(out, r.user);
        put32(out, r.tenant);
        put16(out, r.pages);
        out.push_back(static_cast<char>(r.op));
        out.push_back(static_cast<char>(r.flags));
        put32(out, 0); // reserved
    }
    return out;
}

bool
latraceParse(const std::string &bytes, Latrace *out,
             std::string *error)
{
    const auto *p =
        reinterpret_cast<const unsigned char *>(bytes.data());
    if (bytes.size() < kHeaderBytes)
        return fail(error, "latrace: file shorter than the header");
    if (std::memcmp(p, kMagic, sizeof kMagic) != 0)
        return fail(error, "latrace: bad magic");
    const std::uint32_t version = get32(p + 8);
    if (version != kLatraceVersion)
        return fail(error, "latrace: unknown version");
    const std::uint32_t headerBytes = get32(p + 12);
    const std::uint32_t recordBytes = get32(p + 16);
    // Forward compatibility within a version: a longer header or
    // record stride only appends fields, which this reader skips.
    if (headerBytes < kHeaderBytes || recordBytes < kRecordBytes)
        return fail(error, "latrace: header or record too short");
    if (bytes.size() < headerBytes)
        return fail(error, "latrace: truncated header");

    Latrace trace;
    trace.seed = get64(p + 24);
    trace.durationTicks = get64(p + 32);
    trace.workers = get32(p + 40);
    trace.tenants = get32(p + 44);
    trace.serviceCpuNs = get64(p + 48);
    const std::uint64_t count = get64(p + 56);

    if (bytes.size() !=
        headerBytes + count * static_cast<std::uint64_t>(recordBytes))
        return fail(error, "latrace: body size mismatch");
    trace.records.reserve(count);
    const unsigned char *r = p + headerBytes;
    for (std::uint64_t i = 0; i < count; ++i, r += recordBytes) {
        LatraceRecord rec;
        rec.tick = get64(r);
        rec.user = get32(r + 8);
        rec.tenant = get32(r + 12);
        rec.pages = get16(r + 16);
        rec.op = static_cast<LatraceOp>(r[18]);
        rec.flags = r[19];
        if (rec.op != LatraceOp::Request &&
            rec.op != LatraceOp::TenantExit &&
            rec.op != LatraceOp::TenantSpawn)
            return fail(error, "latrace: unknown op");
        if (i > 0 && rec.tick < trace.records.back().tick)
            return fail(error, "latrace: ticks not nondecreasing");
        trace.records.push_back(rec);
    }
    *out = std::move(trace);
    return true;
}

bool
latraceSave(const Latrace &trace, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const std::string bytes = latraceSerialize(trace);
    const bool ok =
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    std::fclose(f);
    return ok;
}

bool
latraceLoad(const std::string &path, Latrace *out, std::string *error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return fail(error, "latrace: cannot open file");
    std::string bytes;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        bytes.append(buf, n);
    std::fclose(f);
    return latraceParse(bytes, out, error);
}

} // namespace latr
