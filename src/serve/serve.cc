#include "serve/serve.hh"

#include <algorithm>
#include <deque>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "vm/address_space.hh"
#include "vm/vma.hh"

namespace latr
{

namespace
{

/** Pages each tenant keeps resident for its lifetime (heap, code). */
constexpr std::uint64_t kTenantBasePages = 16;

/** Simulation slice while waiting for the queues to drain. */
constexpr Duration kDrainSlice = 1 * kMsec;

/** Post-drain grace so LATR's lazy reclamation epochs complete. */
constexpr Duration kReclaimGrace = 8 * kMsec;

/**
 * splitmix64 finalizer: per-request execution-time jitter is a hash
 * of fields already in the trace record, not an RNG draw, so replay
 * consumes no random state and reproduces recording exactly.
 */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Diurnal load shape in [-1, 1]: a triangle wave (peak at half
 * period). Piecewise-linear on purpose — no libm transcendentals, so
 * the generated arrival stream is bit-stable across platforms.
 */
double
diurnal(Tick t, Duration period)
{
    const double x = static_cast<double>(t % period) /
                     static_cast<double>(period);
    return x < 0.5 ? 4.0 * x - 1.0 : 3.0 - 4.0 * x;
}

std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t v)
{
    for (unsigned b = 0; b < 8; ++b) {
        h ^= (v >> (b * 8)) & 0xff;
        h *= 1099511628211ULL;
    }
    return h;
}

std::uint64_t
fnvString(std::uint64_t h, const std::string &s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

/** Replays a .latrace stream through a machine, open-loop. */
class OpenLoopServer
{
  public:
    OpenLoopServer(Machine &machine, const Latrace &trace,
                   const ServeOptions &options)
        : machine_(machine), trace_(trace), options_(options),
          workers_(std::min<unsigned>(trace.workers,
                                      machine.topo().totalCores())),
          tenantCount_(trace.tenants)
    {
        if (workers_ == 0 || tenantCount_ == 0)
            fatal("serve: trace needs >= 1 worker and >= 1 tenant "
                  "(got %u workers, %u tenants)",
                  trace.workers, trace.tenants);
    }

    ServeResult run();

  private:
    struct PendingRequest
    {
        Tick arrival = 0;
        std::uint32_t user = 0;
        std::uint32_t tenant = 0;
        /** Tenant generation at enqueue; churn drops stale entries. */
        std::uint32_t generation = 0;
        std::uint16_t pages = 1;
    };

    struct Worker
    {
        CoreId core = 0;
        std::deque<PendingRequest> queue;
        bool busy = false;
        PendingRequest active{};
        /** mm the active request ran on (survives tenant churn). */
        MmId activeMm = 0;
    };

    struct TenantSlot
    {
        Process *process = nullptr;
        /** Bumped at every exit; queued requests carry the value. */
        std::uint32_t generation = 0;
        /** One task per worker core. */
        std::vector<Task *> tasks;
    };

    void spawnTenant(std::uint32_t slot);
    void exitTenant(std::uint32_t slot);
    void applyRecord(const LatraceRecord &rec);
    void pumpFeeder();
    void startNext(unsigned w);
    Duration serveActive(unsigned w);
    void complete(unsigned w);
    bool drained() const;
    EventFootprint completionFootprint(unsigned w) const;
    EventFootprint feederFootprint() const;

    Machine &machine_;
    const Latrace &trace_;
    ServeOptions options_;
    unsigned workers_;
    unsigned tenantCount_;
    std::size_t cursor_ = 0;
    /** Round-robin dispatch position. */
    std::uint64_t arrivalSeq_ = 0;
    bool feederDone_ = false;
    std::vector<Worker> workerState_;
    std::vector<TenantSlot> tenants_;
    ServeResult result_;
};

/**
 * Footprint of one completion event (or its stolen-time
 * postponement). A pure-write declaration: the lambda carries no
 * compute() phase, so no reads are declared and the event is always
 * admissible — write/write overlap between declared batch members is
 * harmless because commits replay in (tick, seq) order. The write
 * cover must include everything the commit mutates: the worker's
 * core (context switch, TLB inserts, stolen-time drain), any tenant
 * address space (startNext() pops whichever request is queued by
 * commit time, so the mm is unknowable at schedule time — hence
 * all-spaces), the frame allocator (minor faults, munmap frees), and
 * the LATR publish state (munmap publishes a lazy-shootdown state or
 * takes the fallback path; either way tick sweep plans must die).
 */
EventFootprint
OpenLoopServer::completionFootprint(unsigned w) const
{
    EventFootprint fp;
    fp.writeCore(workerState_[w].core);
    fp.writeAllSpaces();
    fp.writeGlobal(SimResource::FrameAllocator);
    fp.writeGlobal(SimResource::LatrPublish);
    return fp;
}

/**
 * Footprint of one feeder pump. A pump applies every trace record up
 * to its tick: requests may start service on any idle worker
 * (serveActive() = the completion cover above), and churn records
 * tear down / respawn tenants touching every worker core. So the
 * cover is the completion cover widened to all worker cores.
 */
EventFootprint
OpenLoopServer::feederFootprint() const
{
    EventFootprint fp;
    for (const Worker &wk : workerState_)
        fp.writeCore(wk.core);
    fp.writeAllSpaces();
    fp.writeGlobal(SimResource::FrameAllocator);
    fp.writeGlobal(SimResource::LatrPublish);
    return fp;
}

void
OpenLoopServer::spawnTenant(std::uint32_t slot)
{
    TenantSlot &ts = tenants_[slot];
    Kernel &kernel = machine_.kernel();
    ts.process =
        kernel.createProcess("tenant" + std::to_string(slot));
    ts.tasks.assign(workers_, nullptr);
    for (unsigned w = 0; w < workers_; ++w)
        ts.tasks[w] = kernel.spawnTask(ts.process, workerState_[w].core);
    // The tenant's resident working set: touched from every worker
    // core so exitProcess() later has cross-core TLB residue and
    // frames to tear down — the churn lifecycle LATR's sweeps must
    // absorb.
    SyscallResult base =
        kernel.mmap(ts.tasks[0], kTenantBasePages * kPageSize,
                    kProtRead | kProtWrite, false);
    for (std::uint64_t p = 0; p < kTenantBasePages; ++p) {
        Task *toucher = ts.tasks[p % workers_];
        kernel.touch(toucher, base.addr + p * kPageSize, true);
    }
}

void
OpenLoopServer::exitTenant(std::uint32_t slot)
{
    TenantSlot &ts = tenants_[slot];
    if (!ts.process)
        return;
    // An in-flight request of this tenant already issued its
    // syscalls; its completion event only records latency, so the
    // teardown does not touch it. Queued requests die by generation.
    machine_.kernel().exitProcess(ts.process);
    ts.process = nullptr;
    ts.tasks.clear();
    ++ts.generation;
    ++result_.tenantChurns;
}

void
OpenLoopServer::applyRecord(const LatraceRecord &rec)
{
    const std::uint32_t slot = rec.tenant % tenantCount_;
    switch (rec.op) {
    case LatraceOp::Request: {
        ++result_.arrivals;
        const unsigned w =
            static_cast<unsigned>(arrivalSeq_++ % workers_);
        Worker &wk = workerState_[w];
        PendingRequest req;
        req.arrival = rec.tick;
        req.user = rec.user;
        req.tenant = slot;
        req.generation = tenants_[slot].generation;
        req.pages = std::max<std::uint16_t>(rec.pages, 1);
        wk.queue.push_back(req);
        result_.maxQueueDepth = std::max<std::uint64_t>(
            result_.maxQueueDepth, wk.queue.size());
        if (!wk.busy)
            startNext(w);
        break;
    }
    case LatraceOp::TenantExit:
        exitTenant(slot);
        break;
    case LatraceOp::TenantSpawn:
        exitTenant(slot); // defensive: spawn into an occupied slot
        spawnTenant(slot);
        break;
    }
}

void
OpenLoopServer::pumpFeeder()
{
    EventQueue &queue = machine_.queue();
    const Tick now = queue.now();
    while (cursor_ < trace_.records.size() &&
           trace_.records[cursor_].tick <= now)
        applyRecord(trace_.records[cursor_++]);
    if (cursor_ < trace_.records.size()) {
        queue.scheduleLambda(trace_.records[cursor_].tick,
                             feederFootprint(),
                             [this] { pumpFeeder(); });
    } else {
        feederDone_ = true;
    }
}

void
OpenLoopServer::startNext(unsigned w)
{
    Worker &wk = workerState_[w];
    while (!wk.queue.empty()) {
        PendingRequest req = wk.queue.front();
        wk.queue.pop_front();
        TenantSlot &ts = tenants_[req.tenant];
        if (req.generation != ts.generation || !ts.process) {
            ++result_.droppedChurn;
            continue;
        }
        wk.busy = true;
        wk.active = req;
        const Duration d = serveActive(w);
        machine_.queue().scheduleLambda(machine_.now() + d,
                                        completionFootprint(w),
                                        [this, w] { complete(w); });
        return;
    }
    wk.busy = false;
}

Duration
OpenLoopServer::serveActive(unsigned w)
{
    Worker &wk = workerState_[w];
    Kernel &kernel = machine_.kernel();
    TenantSlot &ts = tenants_[wk.active.tenant];
    Task *task = ts.tasks[w];
    wk.activeMm = task->mm().id();

    // Stolen time accrued while this worker sat idle is discarded
    // (drained but not charged): the IPI handlers and sweeps it
    // covers delayed nobody. Steal landing *during* service is
    // charged by the completion loop below.
    machine_.scheduler().takeStolen(wk.core);

    Duration d = kernel.switchToTask(task);

    const std::uint64_t pages = wk.active.pages;
    SyscallResult m = kernel.mmap(task, pages * kPageSize,
                                  kProtRead | kProtWrite, true);
    d += m.latency;
    for (std::uint64_t p = 0; p < pages; ++p)
        d += kernel.touch(task, m.addr + p * kPageSize, false).latency;

    // Body generation: the trace's service CPU plus deterministic
    // per-request jitter hashed from record fields (no RNG draw, so
    // replay is exact).
    const Duration cpu = trace_.serviceCpuNs;
    d += cpu + mix64(wk.active.user ^ wk.active.arrival) %
                   (cpu / 8 + 1);

    SyscallResult u = kernel.munmap(task, m.addr, pages * kPageSize);
    d += u.latency;
    return d;
}

void
OpenLoopServer::complete(unsigned w)
{
    Worker &wk = workerState_[w];
    // Coherence work that landed on this core mid-service (IPI
    // handlers, LATR sweeps) pushes the response out; keep
    // postponing until a quiet interval. This is the open-loop
    // analogue of CoreActor::doStep()'s takeStolen() charge — and
    // the mechanism by which shootdown interference becomes tail
    // latency.
    const Duration stolen = machine_.scheduler().takeStolen(wk.core);
    if (stolen > 0) {
        machine_.queue().scheduleLambda(machine_.now() + stolen,
                                        completionFootprint(w),
                                        [this, w] { complete(w); });
        return;
    }
    const Duration latency = machine_.now() - wk.active.arrival;
    result_.latency.record(latency);
    if (!result_.tenantLatency.empty())
        result_.tenantLatency[wk.active.tenant].record(latency);
    ++result_.completed;
    machine_.kernel().noteRequestComplete(wk.core, wk.activeMm,
                                          latency);
    wk.busy = false;
    startNext(w);
}

bool
OpenLoopServer::drained() const
{
    if (!feederDone_)
        return false;
    for (const Worker &wk : workerState_)
        if (wk.busy || !wk.queue.empty())
            return false;
    return true;
}

ServeResult
OpenLoopServer::run()
{
    workerState_.assign(workers_, Worker{});
    for (unsigned w = 0; w < workers_; ++w)
        workerState_[w].core = static_cast<CoreId>(w);
    if (options_.perTenantLatency)
        result_.tenantLatency.assign(tenantCount_,
                                     LatencyHistogram{});
    tenants_.assign(tenantCount_, TenantSlot{});
    for (std::uint32_t s = 0; s < tenantCount_; ++s)
        spawnTenant(s);

    if (trace_.records.empty())
        feederDone_ = true;
    else
        machine_.queue().scheduleLambda(
            std::max(trace_.records.front().tick, machine_.now()),
            feederFootprint(), [this] { pumpFeeder(); });

    const Duration horizon =
        trace_.durationTicks ? trace_.durationTicks : kDrainSlice;
    machine_.run(horizon);
    // Open-loop: arrivals have stopped, but queues may still hold
    // the backlog of the last diurnal peak. Give the drain ten more
    // horizons before declaring the scenario divergent (offered load
    // persistently above capacity).
    const Tick limit = machine_.now() + 10 * horizon;
    while (!drained() && machine_.now() < limit)
        machine_.run(kDrainSlice);
    if (!drained())
        warn("serve: queues still backed up after 10x the horizon — "
             "offered load exceeds capacity; results cover %llu of "
             "%llu arrivals",
             static_cast<unsigned long long>(result_.completed),
             static_cast<unsigned long long>(result_.arrivals));
    machine_.run(kReclaimGrace);

    const Tick elapsed = machine_.now();
    result_.requestsPerSec = ratePerSecond(result_.completed, elapsed);
    result_.shootdownsPerSec = ratePerSecond(
        machine_.stats().counterValue("coh.shootdowns"), elapsed);

    std::uint64_t h = 1469598103934665603ULL;
    h = fnvMix(h, result_.arrivals);
    h = fnvMix(h, result_.completed);
    h = fnvMix(h, result_.droppedChurn);
    h = fnvMix(h, result_.tenantChurns);
    h = fnvMix(h, result_.latency.digest());
    h = fnvString(h, machine_.stats().dump());
    result_.digest = h;
    return result_;
}

} // namespace

Latrace
generateServeTrace(const ServeConfig &config)
{
    if (config.workers == 0 || config.tenants == 0)
        fatal("serve: config needs >= 1 worker and >= 1 tenant");
    if (config.diurnalAmplitude < 0.0 || config.diurnalAmplitude >= 1.0)
        fatal("serve: diurnal amplitude must be in [0, 1)");

    Latrace trace;
    trace.seed = config.seed;
    trace.durationTicks = config.duration;
    trace.workers = config.workers;
    trace.tenants = config.tenants;
    trace.serviceCpuNs = config.serviceCpu;

    // Inhomogeneous Poisson arrivals by thinning: draw from the peak
    // rate, keep each with probability rate(t)/peak.
    std::vector<LatraceRecord> arrivals;
    Rng rng(config.seed);
    const double peak =
        config.arrivalRatePerSec * (1.0 + config.diurnalAmplitude);
    if (peak > 0.0 && config.duration > 0) {
        const double meanGapNs = 1e9 / peak;
        const double horizon = static_cast<double>(config.duration);
        const std::uint64_t users = std::max<std::uint64_t>(
            config.users, 1);
        double t = 0.0;
        for (;;) {
            t += rng.nextExponential(meanGapNs);
            if (t >= horizon)
                break;
            const Tick tick = static_cast<Tick>(t);
            const double rate =
                config.arrivalRatePerSec *
                (1.0 + config.diurnalAmplitude *
                           diurnal(tick, std::max<Duration>(
                                             config.diurnalPeriod, 1)));
            if (rng.nextDouble() * peak > rate)
                continue; // thinned away
            LatraceRecord rec;
            rec.tick = tick;
            rec.user = static_cast<std::uint32_t>(
                rng.nextBounded(users));
            rec.tenant = rec.user % config.tenants;
            rec.pages =
                rng.nextBounded(1000) < config.heavyPermille
                    ? config.heavyPages
                    : config.filePages;
            rec.pages = std::max<std::uint16_t>(rec.pages, 1);
            rec.op = LatraceOp::Request;
            arrivals.push_back(rec);
        }
    }

    // Churn schedule: every interval, the next slot round-robin
    // exits and respawns.
    std::vector<LatraceRecord> churn;
    if (config.churnInterval > 0) {
        unsigned k = 0;
        for (Tick at = config.churnInterval; at < config.duration;
             at += config.churnInterval, ++k) {
            LatraceRecord rec;
            rec.tick = at;
            rec.tenant = k % config.tenants;
            rec.op = LatraceOp::TenantExit;
            churn.push_back(rec);
            rec.op = LatraceOp::TenantSpawn;
            churn.push_back(rec);
        }
    }

    // Merge by tick; on ties churn lands first, so a same-tick
    // request already sees the fresh tenant.
    trace.records.reserve(arrivals.size() + churn.size());
    std::merge(churn.begin(), churn.end(), arrivals.begin(),
               arrivals.end(), std::back_inserter(trace.records),
               [](const LatraceRecord &a, const LatraceRecord &b) {
                   return a.tick < b.tick;
               });
    return trace;
}

ServeResult
runServeTrace(Machine &machine, const Latrace &trace,
              const ServeOptions &options)
{
    OpenLoopServer server(machine, trace, options);
    return server.run();
}

} // namespace latr
