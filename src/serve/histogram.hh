/**
 * @file
 * A fixed-bucket log-linear latency histogram (HdrHistogram-style):
 * the tail-latency instrument of the serving subsystem. record() is
 * allocation-free and branch-light — an index computation plus one
 * counter increment into a fixed array sized at construction — so it
 * can sit on the per-request hot path under PR 4's zero-allocation
 * discipline. Values are nanoseconds (any uint64 works); buckets are
 * exact (width 1) below kLinearMax and grow geometrically above it,
 * bounding the relative quantization error of every reported
 * percentile at 1/kSubBuckets (~1.6%).
 *
 * percentile() uses the inclusive nearest-rank definition — the value
 * v such that at least ceil(q * count) recorded samples are <= v —
 * matching Distribution::percentile exactly, so on small inputs with
 * values below kLinearMax the two instruments agree to the bit
 * (test_serve_histogram.cc locks this in).
 */

#ifndef LATR_SERVE_HISTOGRAM_HH_
#define LATR_SERVE_HISTOGRAM_HH_

#include <cstdint>
#include <vector>

namespace latr
{

/** The serving subsystem's log-linear latency histogram. */
class LatencyHistogram
{
  public:
    /** Sub-buckets per power-of-two bucket (quantization 1/64). */
    static constexpr unsigned kSubBuckets = 64;

    /** Values below this land in exact width-1 buckets. */
    static constexpr std::uint64_t kLinearMax = kSubBuckets;

    LatencyHistogram();

    /** Record one value (nanoseconds). Allocation-free. */
    void record(std::uint64_t value);

    void reset();

    std::uint64_t count() const { return count_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }
    double mean() const;

    /**
     * Value at quantile @p q in [0, 1]: the highest equivalent value
     * of the bucket holding the sample of inclusive nearest-rank
     * ceil(q * count). 0 when empty. For values < kLinearMax buckets
     * have width 1, so the result is exact.
     */
    std::uint64_t percentile(double q) const;

    /** Merge @p other into this histogram. */
    void merge(const LatencyHistogram &other);

    /**
     * FNV-1a digest over the bucket counts and the exact moments —
     * two histograms digest equal iff they recorded the same
     * multiset of (quantized) values. The record/replay and
     * parallel-engine equivalence tests compare these.
     */
    std::uint64_t digest() const;

    /** Number of buckets (fixed at construction). */
    std::size_t bucketCount() const { return buckets_.size(); }

    /** Raw count of bucket @p i (for serialization and tests). */
    std::uint64_t bucketValue(std::size_t i) const
    {
        return buckets_[i];
    }

    /** Lowest value mapping to bucket @p i. */
    static std::uint64_t bucketLow(std::size_t i);

    /** Highest value mapping to bucket @p i. */
    static std::uint64_t bucketHigh(std::size_t i);

    /** Bucket index of @p value. */
    static std::size_t bucketOf(std::uint64_t value);

  private:
    // One power-of-two "major" bucket per leading-bit position above
    // the linear range, kSubBuckets minors each. 64-bit values need
    // (64 - log2(kSubBuckets)) majors on top of the linear range.
    static constexpr unsigned kLinearBits = 6; // log2(kSubBuckets)
    static constexpr unsigned kMajorBuckets = 64 - kLinearBits;
    static constexpr std::size_t kTotalBuckets =
        (1 + kMajorBuckets) * kSubBuckets;

    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
    // Sum in nanoseconds; wraps only after ~580 simulated years of
    // accumulated latency, far beyond any run this simulator makes.
    std::uint64_t sum_ = 0;
};

} // namespace latr

#endif // LATR_SERVE_HISTOGRAM_HH_
