/**
 * @file
 * The simulated mm_struct: one process' address space. Owns the VMA
 * interval map, the page table, the mmap_sem, the PCID, and two
 * pieces of bookkeeping the TLB-coherence policies lean on:
 *
 *  - a *holdback* set of virtual ranges that mmap() must not hand
 *    out (LATR's lazy reclamation parks unmapped ranges here until
 *    every TLB entry is gone, paper section 4.2);
 *  - per-page *sharer masks* recording which cores faulted a page in
 *    (the simulated access-bit tracking that ABIS harvests).
 *
 * The address space performs pure bookkeeping: costs, locking, and
 * shootdowns are the kernel's and the policies' business.
 */

#ifndef LATR_VM_ADDRESS_SPACE_HH_
#define LATR_VM_ADDRESS_SPACE_HH_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "mem/frame_allocator.hh"
#include "mem/page_table.hh"
#include "sim/types.hh"
#include "vm/flat_page_map.hh"
#include "vm/sem.hh"
#include "vm/vma.hh"

namespace latr
{

/** Sentinel returned by mmapRegion/mremapRegion on failure. */
constexpr Addr kAddrInvalid = ~0ULL;

/** Pages collected by an unmap-like operation. */
struct UnmapResult
{
    /** (vpn, pfn) of every page that was present and got unmapped. */
    std::vector<std::pair<Vpn, Pfn>> pages;
    /**
     * (base vpn, base pfn) of every 2 MiB mapping that got
     * unmapped. Freed with FrameAllocator::putHuge once coherence
     * is reached.
     */
    std::vector<std::pair<Vpn, Pfn>> hugePages;
    /** Pages spanned by the request (present or not). */
    std::uint64_t spanned = 0;
    /** False if the range intersected no mapping. */
    bool ok = false;
};

/** One process' address space (the simulated mm_struct). */
class AddressSpace
{
  public:
    /**
     * @param id unique mm identifier.
     * @param pcid TLB tag for this address space (kPcidNone when
     *        PCIDs are disabled).
     * @param frames the physical allocator backing this space.
     */
    AddressSpace(MmId id, Pcid pcid, FrameAllocator &frames);

    ~AddressSpace();

    AddressSpace(const AddressSpace &) = delete;
    AddressSpace &operator=(const AddressSpace &) = delete;

    MmId id() const { return id_; }
    Pcid pcid() const { return pcid_; }
    PageTable &pageTable() { return pt_; }
    const PageTable &pageTable() const { return pt_; }
    FrameAllocator &frames() { return frames_; }
    SimRwSem &mmapSem() { return mmapSem_; }

    /** Cores currently running tasks of this mm (scheduler-owned). */
    CpuMask &scheduledMask() { return scheduledMask_; }
    const CpuMask &scheduledMask() const { return scheduledMask_; }

    /**
     * Cores whose TLBs may still hold translations of this mm (the
     * simulated mm_cpumask): set when a task schedules in, cleared
     * by the scheduler when a core's TLB is fully flushed. With
     * PCIDs disabled this tracks scheduledMask closely; with PCIDs
     * it is a superset, because context switches stop flushing.
     * Shootdowns target this mask.
     */
    CpuMask &residencyMask() { return residencyMask_; }
    const CpuMask &residencyMask() const { return residencyMask_; }

    /// @name VMA operations
    /// @{

    /**
     * Map @p len bytes (page-rounded) with protection @p prot.
     * First-fit from the mmap base, skipping live VMAs and
     * held-back ranges.
     * @return the chosen base address or kAddrInvalid.
     */
    Addr mmapRegion(std::uint64_t len, std::uint8_t prot,
                    bool file_backed = false);

    /**
     * Map @p len bytes (rounded to 2 MiB) backed by huge pages: the
     * base is kHugePageSize-aligned and faults populate a whole
     * 2 MiB region at a time.
     */
    Addr mmapHugeRegion(std::uint64_t len, std::uint8_t prot);

    /**
     * Remove mappings in [addr, addr + len): splits or deletes
     * overlapping VMAs and unmaps present PTEs. Frames are *not*
     * released — ownership of the returned pages passes to the
     * caller (the coherence policy decides when to free).
     */
    UnmapResult munmapRegion(Addr addr, std::uint64_t len);

    /**
     * madvise(MADV_DONTNEED/MADV_FREE): drop page contents but keep
     * the VMAs. Same page-ownership contract as munmapRegion().
     */
    UnmapResult madviseRegion(Addr addr, std::uint64_t len);

    /**
     * Change protection on [addr, addr + len); splits VMAs as
     * needed and rewrites PTE write bits.
     * @return pages whose PTEs changed (still mapped!) for the
     *         mandatory synchronous shootdown.
     */
    UnmapResult mprotectRegion(Addr addr, std::uint64_t len,
                               std::uint8_t prot);

    /**
     * Move a mapping to a new range of @p new_len bytes. Present
     * pages are remapped (same frames, new addresses).
     * @param moved_out receives the old (vpn, pfn) pairs, which
     *        need a synchronous shootdown.
     * @return the new base address or kAddrInvalid.
     */
    Addr mremapRegion(Addr old_addr, std::uint64_t old_len,
                      std::uint64_t new_len, UnmapResult *moved_out);

    /** Mark [addr, addr+len) copy-on-write (clears PTE write bits). */
    UnmapResult markCowRegion(Addr addr, std::uint64_t len);

    /** VMA containing @p addr, or nullptr. */
    const Vma *findVma(Addr addr) const;

    /** Number of live VMAs. */
    std::size_t vmaCount() const { return vmas_.size(); }

    /** All VMAs, keyed by start address. */
    const std::map<Addr, Vma> &vmas() const { return vmas_; }

    /// @}

    /// @name Lazy-reclamation holdback (LATR)
    /// @{

    /** Park [start, end) so mmapRegion() cannot hand it out. */
    void holdbackRange(Addr start, Addr end);

    /** Release a previously held-back range. */
    void releaseHoldback(Addr start, Addr end);

    /** True if any page of [start, end) is held back. */
    bool rangeHeldBack(Addr start, Addr end) const;

    /** Total bytes currently held back. */
    std::uint64_t heldBackBytes() const;

    /// @}

    /// @name Page content tags (consumed by the KSM daemon)
    /// @{

    /**
     * Tag @p vpn's current content. The deduplication daemon merges
     * pages with equal tags; callers own keeping tags in sync with
     * the data they model (there is no real page content in the
     * simulator).
     */
    void setContentTag(Vpn vpn, std::uint64_t tag);

    /** Content tag of @p vpn, or 0 if untagged. */
    std::uint64_t contentTag(Vpn vpn) const;

    /** Drop @p vpn's tag (content diverged or page gone). */
    void clearContentTag(Vpn vpn);

    /// @}

    /// @name Access-bit sharer tracking (harvested by ABIS)
    /// @{

    /** Record that @p core faulted @p vpn in. */
    void noteAccess(Vpn vpn, CoreId core);

    /** Cores that faulted @p vpn in since the last clear. */
    CpuMask sharersOf(Vpn vpn) const;

    /** Forget sharer info for @p vpn (on unmap). */
    void clearSharers(Vpn vpn);

    /// @}

  private:
    /** Lowest address mmapRegion() will consider. */
    static constexpr Addr kMmapBase = 0x7000'0000'0000ULL >> 1;

    /** First-fit search for a free, non-held-back gap of @p len. */
    Addr findFreeRange(std::uint64_t len,
                       std::uint64_t alignment = kPageSize) const;

    /** Split VMAs so that @p addr is a VMA boundary (if mapped). */
    void splitAt(Addr addr);

    MmId id_;
    Pcid pcid_;
    FrameAllocator &frames_;
    PageTable pt_;
    SimRwSem mmapSem_;
    CpuMask scheduledMask_;
    CpuMask residencyMask_;

    std::map<Addr, Vma> vmas_;           // keyed by start
    std::map<Addr, Addr> holdback_;      // start -> end
    // Flat slot arrays (vm/flat_page_map.hh): ABIS consults
    // sharers_ once per page on every munmap, so the probe chains
    // must be cache-friendly, not node-per-entry.
    FlatPageMap<CpuMask> sharers_;
    FlatPageMap<std::uint64_t> contentTags_;
};

} // namespace latr

#endif // LATR_VM_ADDRESS_SPACE_HH_
