/**
 * @file
 * FlatPageMap: an open-addressing Vpn-keyed hash map in the style of
 * the TLB's slot array (hw/tlb.cc) — linear probing at most 50% load
 * with backward-shift deletion, so lookups walk short, contiguous,
 * cache-resident probe chains and no tombstones accumulate. Replaces
 * std::unordered_map for the per-page bookkeeping AddressSpace keeps
 * (ABIS sharer masks, KSM content tags): those maps are consulted
 * once per unmapped page on every munmap, and the node-per-entry
 * layout of unordered_map made each consult a dependent cache miss.
 */

#ifndef LATR_VM_FLAT_PAGE_MAP_HH_
#define LATR_VM_FLAT_PAGE_MAP_HH_

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace latr
{

/**
 * Open-addressing map from Vpn to @p V. @p V must be cheaply
 * default-constructible and movable; a default-constructed V is the
 * "absent" value semantically (find() returns nullptr instead).
 */
template <typename V>
class FlatPageMap
{
  public:
    FlatPageMap() = default;

    /** Value of @p key, or nullptr. */
    const V *
    find(Vpn key) const
    {
        if (slots_.empty())
            return nullptr;
        std::size_t i = hashOf(key) & mask_;
        while (slots_[i].key != kEmptyKey) {
            if (slots_[i].key == key)
                return &slots_[i].value;
            i = (i + 1) & mask_;
        }
        return nullptr;
    }

    V *
    find(Vpn key)
    {
        return const_cast<V *>(
            static_cast<const FlatPageMap *>(this)->find(key));
    }

    /** Value of @p key, default-inserting if absent. */
    V &
    operator[](Vpn key)
    {
        if (slots_.empty() || (size_ + 1) * 2 > slots_.size())
            grow();
        std::size_t i = hashOf(key) & mask_;
        while (slots_[i].key != kEmptyKey) {
            if (slots_[i].key == key)
                return slots_[i].value;
            i = (i + 1) & mask_;
        }
        slots_[i].key = key;
        ++size_;
        return slots_[i].value;
    }

    /** Remove @p key. @return true if it was present. */
    bool
    erase(Vpn key)
    {
        if (slots_.empty())
            return false;
        std::size_t i = hashOf(key) & mask_;
        while (slots_[i].key != kEmptyKey && slots_[i].key != key)
            i = (i + 1) & mask_;
        if (slots_[i].key == kEmptyKey)
            return false;
        // Backward-shift deletion (same scheme as Tlb::Level): walk
        // forward from the freed cell and pull back any entry whose
        // home position lies cyclically outside (i, j].
        std::size_t j = i;
        for (;;) {
            slots_[i].key = kEmptyKey;
            slots_[i].value = V{};
            std::size_t home;
            do {
                j = (j + 1) & mask_;
                if (slots_[j].key == kEmptyKey) {
                    --size_;
                    return true;
                }
                home = hashOf(slots_[j].key) & mask_;
            } while (i <= j ? (home > i && home <= j)
                            : (home > i || home <= j));
            slots_[i].key = slots_[j].key;
            slots_[i].value = std::move(slots_[j].value);
            i = j;
        }
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

  private:
    /**
     * Key sentinel for an empty slot. Safe: a real Vpn is below
     * kUserVaLimit >> kPageShift (~2^35), nowhere near ~0.
     */
    static constexpr Vpn kEmptyKey = ~0ULL;

    static std::size_t
    hashOf(Vpn key)
    {
        std::uint64_t x = key * 0x9E3779B97F4A7C15ULL;
        return static_cast<std::size_t>(x ^ (x >> 32));
    }

    struct Slot
    {
        Vpn key = kEmptyKey;
        V value{};
    };

    void
    grow()
    {
        std::vector<Slot> old;
        old.swap(slots_);
        slots_.assign(old.empty() ? 64 : old.size() * 2, Slot{});
        mask_ = slots_.size() - 1;
        for (Slot &s : old) {
            if (s.key == kEmptyKey)
                continue;
            std::size_t i = hashOf(s.key) & mask_;
            while (slots_[i].key != kEmptyKey)
                i = (i + 1) & mask_;
            slots_[i] = std::move(s);
        }
    }

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace latr

#endif // LATR_VM_FLAT_PAGE_MAP_HH_
