#include "vm/fault.hh"

#include "sim/logging.hh"

namespace latr
{

TouchResult
touchPage(CoreId core, NodeId node, AddressSpace &mm, Tlb &tlb,
          const CostModel &cost, Addr addr, bool is_write,
          const TouchHooks &hooks)
{
    TouchResult result;
    const Vpn vpn = pageOf(addr);
    const Pcid pcid = mm.pcid();

    // 1. TLB. A hit is final even if the OS already unmapped the
    //    page: that is precisely the stale-entry window the paper's
    //    section 4.4 reasons about. Exception: a write through an
    //    entry cached read-only re-walks (the TLB caches the W bit),
    //    which is how CoW breaks and mprotect faults reach the
    //    handler.
    Pfn pfn = kPfnInvalid;
    bool entry_writable = true;
    TlbResult tr = tlb.lookup(vpn, pcid, &pfn, &entry_writable);
    const bool perm_ok = !is_write || entry_writable;
    if (tr == TlbResult::HitL1 && perm_ok) {
        result.kind = TouchKind::TlbHit;
        result.latency = cost.memAccess;
        result.pfn = pfn;
        return result;
    }
    if (tr == TlbResult::HitL2 && perm_ok) {
        result.kind = TouchKind::TlbL2Hit;
        result.latency = cost.memAccess + cost.l2TlbHit;
        result.pfn = pfn;
        return result;
    }

    // 2. Page-table walk. Huge (PMD-level) mappings resolve one
    //    level earlier.
    result.latency = cost.ptWalk;
    if (Pte *hpte = mm.pageTable().findHuge(vpn)) {
        if (is_write && !hpte->writable()) {
            result.kind = TouchKind::SegFault;
            return result;
        }
        hpte->flags |= kPteAccessed;
        if (is_write)
            hpte->flags |= kPteDirty;
        tlb.insertHuge(hugeBaseOf(vpn), hpte->pfn, pcid,
                       hpte->writable());
        mm.residencyMask().set(core);
        mm.noteAccess(hugeBaseOf(vpn), core);
        result.kind = TouchKind::WalkHit;
        result.pfn = hpte->pfn + (vpn - hugeBaseOf(vpn));
        return result;
    }
    Pte *pte = mm.pageTable().walkHardware(vpn, is_write);

    // 2a. NUMA-hint fault: present but prot-none.
    if (pte && pte->protNone()) {
        result.kind = TouchKind::NumaFault;
        result.latency += cost.minorFault + cost.numaHintFaultExtra;
        if (hooks.onNumaHintFault)
            result.latency += hooks.onNumaHintFault(vpn, core);
        // The hook restored or replaced the PTE; retry the walk.
        pte = mm.pageTable().walkHardware(vpn, is_write);
        if (!pte || pte->protNone()) {
            // Hook chose not to resolve (e.g. migration aborted and
            // the mapping stays sampled); the access stalls in the
            // fault handler, modeled as completing after the fault.
            return result;
        }
        tlb.insert(vpn, pte->pfn, pcid, pte->writable());
        mm.residencyMask().set(core);
        mm.noteAccess(vpn, core);
        result.pfn = pte->pfn;
        return result;
    }

    // 2b. Present translation.
    if (pte) {
        if (is_write && !pte->writable()) {
            if (pte->cow()) {
                result.kind = TouchKind::CowBreak;
                result.latency += cost.minorFault;
                if (hooks.onCowWrite)
                    result.latency += hooks.onCowWrite(vpn, core);
                pte = mm.pageTable().walkHardware(vpn, true);
                if (!pte || !pte->writable()) {
                    result.kind = TouchKind::SegFault;
                    return result;
                }
            } else {
                result.kind = TouchKind::SegFault;
                return result;
            }
        } else {
            result.kind = TouchKind::WalkHit;
        }
        tlb.insert(vpn, pte->pfn, pcid, pte->writable());
        mm.residencyMask().set(core);
        mm.noteAccess(vpn, core);
        result.pfn = pte->pfn;
        return result;
    }

    // 3. No translation: demand paging if a VMA covers the address.
    const Vma *vma = mm.findVma(addr);
    if (!vma) {
        result.kind = TouchKind::SegFault;
        return result;
    }
    if (is_write && !(vma->prot & kProtWrite)) {
        result.kind = TouchKind::SegFault;
        return result;
    }

    if (vma->huge) {
        // Populate a whole 2 MiB region (THP-style). Falls back to
        // a base page when no contiguous run is free — the
        // fragmentation compaction exists to repair.
        const Pfn huge = mm.frames().allocHuge(node);
        if (huge != kPfnInvalid) {
            std::uint8_t flags = kPteAccessed;
            if (vma->prot & kProtWrite)
                flags |= kPteWrite;
            if (is_write)
                flags |= kPteDirty;
            mm.pageTable().mapHuge(hugeBaseOf(vpn), huge, flags);
            tlb.insertHuge(hugeBaseOf(vpn), huge, pcid,
                           (flags & kPteWrite) != 0);
            mm.residencyMask().set(core);
            mm.noteAccess(hugeBaseOf(vpn), core);
            result.kind = TouchKind::MinorFault;
            result.latency +=
                cost.minorFault + cost.hugeFaultExtra;
            if (hooks.onMinorFault)
                result.latency += hooks.onMinorFault(vpn);
            result.pfn = huge + (vpn - hugeBaseOf(vpn));
            return result;
        }
    }

    Pfn fresh = mm.frames().alloc(node);
    if (fresh == kPfnInvalid)
        fatal("simulated machine out of physical memory");
    std::uint8_t flags = 0;
    if (vma->prot & kProtWrite)
        flags |= kPteWrite;
    if (is_write)
        flags |= kPteDirty;
    flags |= kPteAccessed;
    mm.pageTable().map(vpn, fresh, flags);
    tlb.insert(vpn, fresh, pcid, (flags & kPteWrite) != 0);
    mm.residencyMask().set(core);
    mm.noteAccess(vpn, core);

    result.kind = TouchKind::MinorFault;
    result.latency += cost.minorFault + cost.pteMapPerPage;
    if (hooks.onMinorFault)
        result.latency += hooks.onMinorFault(vpn);
    result.pfn = fresh;
    return result;
}

} // namespace latr
