/**
 * @file
 * The memory-access path: what happens when a task touches a page.
 * Resolves through the core's TLB, the page table, and the fault
 * handlers (demand paging, copy-on-write, NUMA-hint faults), and
 * returns the latency of the access plus what happened — including
 * the paper's section 4.4 race behaviour: a touch that hits a stale
 * TLB entry proceeds against the old frame, and only faults once the
 * lazy invalidation has swept the entry.
 */

#ifndef LATR_VM_FAULT_HH_
#define LATR_VM_FAULT_HH_

#include <functional>

#include "hw/tlb.hh"
#include "mem/frame_allocator.hh"
#include "sim/types.hh"
#include "topo/cost_model.hh"
#include "vm/address_space.hh"

namespace latr
{

/** What a touch resolved to. */
enum class TouchKind
{
    TlbHit,      ///< L1 TLB hit
    TlbL2Hit,    ///< L2 TLB hit
    WalkHit,     ///< TLB miss, page table had it
    MinorFault,  ///< demand-paged a fresh frame
    NumaFault,   ///< NUMA-hint (prot-none) fault
    CowBreak,    ///< write to a CoW page copied the frame
    SegFault,    ///< no mapping / permission violation
};

/** Outcome of touchPage(). */
struct TouchResult
{
    TouchKind kind = TouchKind::SegFault;
    Duration latency = 0;
    /** Frame the access actually reached (stale frames included). */
    Pfn pfn = kPfnInvalid;
    bool
    faulted() const
    {
        return kind == TouchKind::SegFault;
    }
};

/**
 * Optional policy/subsystem hooks invoked from the fault paths.
 * Each returns extra latency to charge to the access.
 */
struct TouchHooks
{
    /** After a demand-page fault maps @p vpn (ABIS tracking cost). */
    std::function<Duration(Vpn)> onMinorFault;

    /**
     * A NUMA-hint (prot-none) fault on @p vpn from @p core. The hook
     * owns resolving the PTE (restore or migrate); the touch retries
     * the walk afterwards.
     */
    std::function<Duration(Vpn, CoreId)> onNumaHintFault;

    /**
     * A write hit a CoW page. The hook performs the copy/shootdown
     * and must leave the PTE writable.
     */
    std::function<Duration(Vpn, CoreId)> onCowWrite;
};

/**
 * Touch one page.
 *
 * @param core id of the accessing core (for sharer tracking).
 * @param node NUMA node of the accessing core (demand allocations
 *        land here, as with Linux's default local policy).
 * @param mm the address space.
 * @param tlb the accessing core's TLB.
 * @param cost latency constants.
 * @param addr virtual address touched.
 * @param is_write store (true) or load.
 * @param hooks fault-path callbacks (may hold empty functions).
 */
TouchResult touchPage(CoreId core, NodeId node, AddressSpace &mm,
                      Tlb &tlb, const CostModel &cost, Addr addr,
                      bool is_write, const TouchHooks &hooks);

} // namespace latr

#endif // LATR_VM_FAULT_HH_
