// All SimMutex/SimRwSem members are short and defined inline in
// sem.hh; this file exists so the module has a translation unit that
// verifies the header is self-contained.
#include "vm/sem.hh"
