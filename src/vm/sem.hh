/**
 * @file
 * Simulated kernel locks. Cores in this simulator compute operation
 * latencies synchronously, so a lock is modeled as a reservation in
 * simulated time: acquiring returns the tick at which the holder may
 * start, and contention appears as the gap between request and start.
 * mmap_sem is the load-bearing instance — Linux's munmap holds it
 * across the whole synchronous shootdown, which is what collapses
 * Apache's scaling (figure 9); LATR's short hold restores it.
 */

#ifndef LATR_VM_SEM_HH_
#define LATR_VM_SEM_HH_

#include <cstdint>

#include "sim/types.hh"

namespace latr
{

/**
 * A reservation-based mutex. acquire(t, hold) serializes all holders:
 * the caller starts at max(t, next-free) and occupies the lock for
 * @p hold nanoseconds.
 */
class SimMutex
{
  public:
    /**
     * Reserve the lock.
     * @param now tick the caller wants the lock.
     * @param hold how long the caller will hold it.
     * @return tick at which the caller actually holds the lock.
     */
    Tick
    acquire(Tick now, Duration hold)
    {
        Tick start = now > nextFree_ ? now : nextFree_;
        nextFree_ = start + hold;
        totalWait_ += start - now;
        ++acquisitions_;
        return start;
    }

    /**
     * Extend the current reservation by @p extra ns (used when the
     * hold duration is only known after acquiring).
     */
    void extend(Duration extra) { nextFree_ += extra; }

    /** Earliest tick a new holder could start. */
    Tick nextFree() const { return nextFree_; }

    /// @name Stats
    /// @{
    std::uint64_t acquisitions() const { return acquisitions_; }
    std::uint64_t totalWaitNs() const { return totalWait_; }
    /// @}

  private:
    Tick nextFree_ = 0;
    std::uint64_t totalWait_ = 0;
    std::uint64_t acquisitions_ = 0;
};

/**
 * A reservation-based reader/writer semaphore (the simulated
 * mmap_sem). Readers may overlap each other; writers exclude
 * everyone. The model is writer-preferring only in that a writer's
 * reservation blocks readers that arrive later.
 */
class SimRwSem
{
  public:
    /**
     * Reserve for reading.
     * @return tick at which the read section starts.
     */
    Tick
    acquireRead(Tick now, Duration hold)
    {
        Tick start = now > writerFree_ ? now : writerFree_;
        Tick end = start + hold;
        if (end > readersEnd_)
            readersEnd_ = end;
        readWait_ += start - now;
        ++readAcqs_;
        return start;
    }

    /**
     * Reserve for writing.
     * @return tick at which the write section starts.
     */
    Tick
    acquireWrite(Tick now, Duration hold)
    {
        Tick start = now;
        if (start < writerFree_)
            start = writerFree_;
        if (start < readersEnd_)
            start = readersEnd_;
        writerFree_ = start + hold;
        writeWait_ += start - now;
        ++writeAcqs_;
        return start;
    }

    /** Extend the most recent write reservation. */
    void extendWrite(Duration extra) { writerFree_ += extra; }

    /**
     * Keep the semaphore write-held until at least @p t. Used by
     * LATR's migration protocol: the first sweeping core releases
     * mmap_sem only once every CPU-mask bit is cleared (paper 4.4),
     * and that tick is only known when the last sweep happens.
     */
    void
    blockUntil(Tick t)
    {
        if (t > writerFree_)
            writerFree_ = t;
    }

    /** Earliest tick a new writer could start. */
    Tick
    writerNextFree() const
    {
        return writerFree_ > readersEnd_ ? writerFree_ : readersEnd_;
    }

    /// @name Stats
    /// @{
    std::uint64_t readAcquisitions() const { return readAcqs_; }
    std::uint64_t writeAcquisitions() const { return writeAcqs_; }
    std::uint64_t readWaitNs() const { return readWait_; }
    std::uint64_t writeWaitNs() const { return writeWait_; }
    /// @}

  private:
    Tick writerFree_ = 0;
    Tick readersEnd_ = 0;
    std::uint64_t readWait_ = 0;
    std::uint64_t writeWait_ = 0;
    std::uint64_t readAcqs_ = 0;
    std::uint64_t writeAcqs_ = 0;
};

} // namespace latr

#endif // LATR_VM_SEM_HH_
