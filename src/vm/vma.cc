#include "vm/vma.hh"

namespace latr
{

bool
vmaRangeValid(Addr start, Addr end)
{
    if (start >= end)
        return false;
    if ((start & (kPageSize - 1)) != 0 || (end & (kPageSize - 1)) != 0)
        return false;
    return end <= kUserVaLimit;
}

} // namespace latr
