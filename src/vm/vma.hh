/**
 * @file
 * Virtual memory areas: contiguous, page-aligned ranges of a process
 * address space with uniform protection, the simulated analogue of
 * Linux's vm_area_struct.
 */

#ifndef LATR_VM_VMA_HH_
#define LATR_VM_VMA_HH_

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace latr
{

/** VMA protection/permission bits. */
enum VmaProt : std::uint8_t
{
    kProtRead = 1 << 0,
    kProtWrite = 1 << 1,
};

/** A contiguous mapped region [start, end), page aligned. */
struct Vma
{
    Addr start = 0;
    Addr end = 0; // exclusive
    std::uint8_t prot = kProtRead | kProtWrite;
    /** File-backed (affects nothing yet beyond bookkeeping). */
    bool fileBacked = false;
    /** Backed by 2 MiB huge pages (demand-faulted a region at a time). */
    bool huge = false;

    std::uint64_t
    pages() const
    {
        return (end - start) >> kPageShift;
    }

    bool
    contains(Addr addr) const
    {
        return addr >= start && addr < end;
    }

    bool
    overlaps(Addr lo, Addr hi) const
    {
        // [lo, hi) against [start, end)
        return lo < end && start < hi;
    }
};

/** Validate that [start, end) is a sane, page-aligned range. */
bool vmaRangeValid(Addr start, Addr end);

} // namespace latr

#endif // LATR_VM_VMA_HH_
