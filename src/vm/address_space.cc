#include "vm/address_space.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace latr
{

AddressSpace::AddressSpace(MmId id, Pcid pcid, FrameAllocator &frames)
    : id_(id), pcid_(pcid), frames_(frames)
{
}

AddressSpace::~AddressSpace() = default;

const Vma *
AddressSpace::findVma(Addr addr) const
{
    auto it = vmas_.upper_bound(addr);
    if (it == vmas_.begin())
        return nullptr;
    --it;
    return it->second.contains(addr) ? &it->second : nullptr;
}

Addr
AddressSpace::findFreeRange(std::uint64_t len,
                            std::uint64_t alignment) const
{
    // First-fit over the union of live VMAs and held-back ranges.
    // Returns the greatest conflicting end overlapping [lo, lo+len),
    // or 0 when the window is free.
    auto conflict_end = [&](Addr lo, Addr hi) -> Addr {
        Addr worst = 0;
        // VMAs: the only candidates are the one starting before hi
        // closest to it and any starting within [lo, hi).
        auto it = vmas_.upper_bound(hi - 1);
        while (it != vmas_.begin()) {
            --it;
            if (it->second.end <= lo)
                break;
            if (it->second.overlaps(lo, hi))
                worst = std::max(worst, it->second.end);
        }
        auto hit = holdback_.upper_bound(hi - 1);
        while (hit != holdback_.begin()) {
            --hit;
            if (hit->second <= lo)
                break;
            if (hit->first < hi && hit->second > lo)
                worst = std::max(worst, hit->second);
        }
        return worst;
    };

    auto align_up = [&](Addr a) {
        return (a + alignment - 1) & ~(alignment - 1);
    };
    Addr candidate = align_up(kMmapBase);
    for (;;) {
        if (candidate + len > kUserVaLimit)
            return kAddrInvalid;
        Addr bump = conflict_end(candidate, candidate + len);
        if (bump == 0)
            return candidate;
        candidate = align_up(bump);
    }
}

Addr
AddressSpace::mmapRegion(std::uint64_t len, std::uint8_t prot,
                         bool file_backed)
{
    if (len == 0)
        return kAddrInvalid;
    len = pageAlignUp(len);
    Addr base = findFreeRange(len);
    if (base == kAddrInvalid)
        return kAddrInvalid;
    Vma vma;
    vma.start = base;
    vma.end = base + len;
    vma.prot = prot;
    vma.fileBacked = file_backed;
    vmas_[base] = vma;
    return base;
}

Addr
AddressSpace::mmapHugeRegion(std::uint64_t len, std::uint8_t prot)
{
    if (len == 0)
        return kAddrInvalid;
    len = (len + kHugePageSize - 1) & ~(kHugePageSize - 1);
    Addr base = findFreeRange(len, kHugePageSize);
    if (base == kAddrInvalid)
        return kAddrInvalid;
    Vma vma;
    vma.start = base;
    vma.end = base + len;
    vma.prot = prot;
    vma.huge = true;
    vmas_[base] = vma;
    return base;
}

void
AddressSpace::splitAt(Addr addr)
{
    auto it = vmas_.upper_bound(addr);
    if (it == vmas_.begin())
        return;
    --it;
    Vma &vma = it->second;
    if (!vma.contains(addr) || vma.start == addr)
        return;
    Vma tail = vma;
    tail.start = addr;
    vma.end = addr;
    vmas_[addr] = tail;
}

UnmapResult
AddressSpace::munmapRegion(Addr addr, std::uint64_t len)
{
    UnmapResult result;
    Addr lo = pageAlignDown(addr);
    Addr hi = pageAlignUp(addr + len);
    if (!vmaRangeValid(lo, hi))
        return result;
    result.ok = true;
    result.spanned = (hi - lo) >> kPageShift;

    splitAt(lo);
    splitAt(hi);

    auto it = vmas_.lower_bound(lo);
    while (it != vmas_.end() && it->second.start < hi) {
        const Vma &vma = it->second;
        pt_.forEachPresent(pageOf(vma.start), pageOf(vma.end) - 1,
                           [&](Vpn vpn, Pte &) {
                               result.pages.emplace_back(vpn, 0);
                           });
        // Collect PMD mappings too — whether the VMA was created
        // huge or a region was promoted (khugepaged) later.
        for (Vpn base = hugeBaseOf(pageOf(vma.start));
             base < pageOf(vma.end); base += kHugePageSpan) {
            Pte old = pt_.unmapHuge(base);
            if (old.present())
                result.hugePages.emplace_back(base, old.pfn);
        }
        it = vmas_.erase(it);
    }
    // Unmap outside the forEach to keep its "no map/unmap" contract.
    // Sharer info is NOT cleared here: the coherence policy (ABIS)
    // reads it to compute the shootdown target set; the kernel
    // clears it once the policy has run.
    for (auto &page : result.pages) {
        Pte old = pt_.unmap(page.first);
        page.second = old.pfn;
        contentTags_.erase(page.first);
    }
    return result;
}

UnmapResult
AddressSpace::madviseRegion(Addr addr, std::uint64_t len)
{
    UnmapResult result;
    Addr lo = pageAlignDown(addr);
    Addr hi = pageAlignUp(addr + len);
    if (!vmaRangeValid(lo, hi))
        return result;
    result.ok = true;
    result.spanned = (hi - lo) >> kPageShift;

    for (auto it = vmas_.upper_bound(hi - 1); it != vmas_.begin();) {
        --it;
        const Vma &vma = it->second;
        if (vma.end <= lo)
            break;
        if (!vma.overlaps(lo, hi))
            continue;
        Vpn first = pageOf(std::max(vma.start, lo));
        Vpn last = pageOf(std::min(vma.end, hi)) - 1;
        pt_.forEachPresent(first, last, [&](Vpn vpn, Pte &) {
            result.pages.emplace_back(vpn, 0);
        });
        // Only whole 2 MiB regions inside the advised range are
        // dropped (a real THP kernel would split; we keep the
        // mapping for partial advice). Applies to huge VMAs and to
        // khugepaged-promoted regions alike.
        for (Vpn base = hugeBaseOf(first);
             base + kHugePageSpan <= last + 1;
             base += kHugePageSpan) {
            if (base < first)
                continue;
            Pte old = pt_.unmapHuge(base);
            if (old.present())
                result.hugePages.emplace_back(base, old.pfn);
        }
    }
    for (auto &page : result.pages) {
        Pte old = pt_.unmap(page.first);
        page.second = old.pfn;
        contentTags_.erase(page.first);
    }
    return result;
}

UnmapResult
AddressSpace::mprotectRegion(Addr addr, std::uint64_t len,
                             std::uint8_t prot)
{
    UnmapResult result;
    Addr lo = pageAlignDown(addr);
    Addr hi = pageAlignUp(addr + len);
    if (!vmaRangeValid(lo, hi))
        return result;
    result.ok = true;
    result.spanned = (hi - lo) >> kPageShift;

    splitAt(lo);
    splitAt(hi);

    for (auto it = vmas_.lower_bound(lo);
         it != vmas_.end() && it->second.start < hi; ++it) {
        Vma &vma = it->second;
        vma.prot = prot;
        pt_.forEachPresent(
            pageOf(vma.start), pageOf(vma.end) - 1,
            [&](Vpn vpn, Pte &pte) {
                if (prot & kProtWrite)
                    pte.flags |= kPteWrite;
                else
                    pte.flags &= static_cast<std::uint8_t>(~kPteWrite);
                result.pages.emplace_back(vpn, pte.pfn);
            });
    }
    return result;
}

Addr
AddressSpace::mremapRegion(Addr old_addr, std::uint64_t old_len,
                           std::uint64_t new_len, UnmapResult *moved_out)
{
    Addr lo = pageAlignDown(old_addr);
    Addr hi = pageAlignUp(old_addr + old_len);
    if (!vmaRangeValid(lo, hi))
        return kAddrInvalid;
    new_len = pageAlignUp(new_len);

    const Vma *vma = findVma(lo);
    if (!vma || vma->end < hi)
        return kAddrInvalid; // must lie within one mapping

    std::uint8_t prot = vma->prot;
    bool file_backed = vma->fileBacked;

    Addr new_base = findFreeRange(new_len);
    if (new_base == kAddrInvalid)
        return kAddrInvalid;

    // Collect and move present pages that fit the new size.
    UnmapResult moved;
    moved.ok = true;
    moved.spanned = (hi - lo) >> kPageShift;
    pt_.forEachPresent(pageOf(lo), pageOf(hi) - 1,
                       [&](Vpn vpn, Pte &) {
                           moved.pages.emplace_back(vpn, 0);
                       });
    for (auto &page : moved.pages) {
        Pte old = pt_.unmap(page.first);
        page.second = old.pfn;
        clearSharers(page.first);
        std::uint64_t offset = page.first - pageOf(lo);
        if (offset < (new_len >> kPageShift)) {
            pt_.map(pageOf(new_base) + offset, old.pfn,
                    static_cast<std::uint8_t>(old.flags & ~kPtePresent));
        } else {
            // Shrunk away: the frame is released by the caller via
            // the moved-pages list, exactly like an unmap.
        }
    }

    // Replace the VMA range.
    splitAt(lo);
    splitAt(hi);
    for (auto it = vmas_.lower_bound(lo);
         it != vmas_.end() && it->second.start < hi;)
        it = vmas_.erase(it);
    Vma nv;
    nv.start = new_base;
    nv.end = new_base + new_len;
    nv.prot = prot;
    nv.fileBacked = file_backed;
    vmas_[new_base] = nv;

    if (moved_out)
        *moved_out = std::move(moved);
    return new_base;
}

UnmapResult
AddressSpace::markCowRegion(Addr addr, std::uint64_t len)
{
    UnmapResult result;
    Addr lo = pageAlignDown(addr);
    Addr hi = pageAlignUp(addr + len);
    if (!vmaRangeValid(lo, hi))
        return result;
    result.ok = true;
    result.spanned = (hi - lo) >> kPageShift;
    pt_.forEachPresent(pageOf(lo), pageOf(hi) - 1,
                       [&](Vpn vpn, Pte &pte) {
                           pte.flags |= kPteCow;
                           pte.flags &=
                               static_cast<std::uint8_t>(~kPteWrite);
                           result.pages.emplace_back(vpn, pte.pfn);
                       });
    return result;
}

void
AddressSpace::holdbackRange(Addr start, Addr end)
{
    if (start >= end)
        panic("holdback of empty range");
    holdback_[start] = std::max(holdback_[start], end);
}

void
AddressSpace::releaseHoldback(Addr start, Addr end)
{
    auto it = holdback_.find(start);
    if (it == holdback_.end())
        return;
    if (it->second <= end)
        holdback_.erase(it);
    else
        holdback_[end] = it->second, holdback_.erase(start);
}

bool
AddressSpace::rangeHeldBack(Addr start, Addr end) const
{
    auto it = holdback_.upper_bound(end - 1);
    while (it != holdback_.begin()) {
        --it;
        if (it->second <= start)
            return false;
        if (it->first < end && it->second > start)
            return true;
    }
    return false;
}

std::uint64_t
AddressSpace::heldBackBytes() const
{
    std::uint64_t total = 0;
    for (const auto &kv : holdback_)
        total += kv.second - kv.first;
    return total;
}

void
AddressSpace::setContentTag(Vpn vpn, std::uint64_t tag)
{
    if (tag == 0)
        contentTags_.erase(vpn);
    else
        contentTags_[vpn] = tag;
}

std::uint64_t
AddressSpace::contentTag(Vpn vpn) const
{
    const std::uint64_t *tag = contentTags_.find(vpn);
    return tag ? *tag : 0;
}

void
AddressSpace::clearContentTag(Vpn vpn)
{
    contentTags_.erase(vpn);
}

void
AddressSpace::noteAccess(Vpn vpn, CoreId core)
{
    sharers_[vpn].set(core);
}

CpuMask
AddressSpace::sharersOf(Vpn vpn) const
{
    const CpuMask *mask = sharers_.find(vpn);
    return mask ? *mask : CpuMask();
}

void
AddressSpace::clearSharers(Vpn vpn)
{
    sharers_.erase(vpn);
}

} // namespace latr
