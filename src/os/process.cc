#include "os/process.hh"

namespace latr
{

Process::Process(MmId id, Pcid pcid, FrameAllocator &frames,
                 std::string name)
    : id_(id), name_(std::move(name)), mm_(id, pcid, frames)
{
}

} // namespace latr
