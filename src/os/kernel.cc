#include "os/kernel.hh"

#include <algorithm>

#include "check/staleness.hh"
#include "sim/logging.hh"
#include "trace/trace.hh"

namespace latr
{

Kernel::Kernel(EventQueue &queue, const NumaTopology &topo,
               const MachineConfig &config, FrameAllocator &frames,
               Scheduler &sched, StatRegistry &stats)
    : queue_(queue), topo_(topo), config_(config), frames_(frames),
      sched_(sched), stats_(stats),
      minorFaultsCtr_(stats.counter("vm.minor_faults")),
      numaFaultsCtr_(stats.counter("vm.numa_faults")),
      segFaultsCtr_(stats.counter("vm.segfaults")),
      cowBreaksCtr_(stats.counter("vm.cow_breaks"))
{
    touchHooks_.onMinorFault = [this](Vpn) -> Duration {
        return policy_ ? policy_->minorFaultOverhead() : 0;
    };
    touchHooks_.onNumaHintFault = [this](Vpn vpn,
                                         CoreId core) -> Duration {
        if (numaFaultHook_)
            return numaFaultHook_(vpn, core);
        // Default NUMA-hint resolution: clear the hint, no migration.
        Pte *pte = touchTask_->mm().pageTable().find(vpn);
        if (pte)
            pte->flags &= static_cast<std::uint8_t>(~kPteProtNone);
        return 0;
    };
    touchHooks_.onCowWrite = [this](Vpn vpn, CoreId) {
        return breakCow(touchTask_, vpn);
    };
}

void
Kernel::setPolicy(TlbCoherencePolicy *policy)
{
    policy_ = policy;
    sched_.setPolicy(policy);
}

Process *
Kernel::createProcess(std::string name)
{
    const MmId id = nextMm_++;
    const Pcid pcid =
        config_.pcidEnabled ? static_cast<Pcid>(id % 4095 + 1)
                            : kPcidNone;
    processes_.push_back(
        std::make_unique<Process>(id, pcid, frames_, std::move(name)));
    return processes_.back().get();
}

Task *
Kernel::spawnTask(Process *process, CoreId core)
{
    if (core >= topo_.totalCores())
        fatal("spawnTask on nonexistent core %u", core);
    tasks_.push_back(
        std::make_unique<Task>(nextTask_++, process, core));
    Task *task = tasks_.back().get();
    task->setName(process->name() + "/t" +
                  std::to_string(task->id()));
    process->tasks().push_back(task);
    sched_.addTask(task);
    return task;
}

void
Kernel::exitTask(Task *task)
{
    sched_.removeTask(task);
    auto &list = task->process()->tasks();
    list.erase(std::remove(list.begin(), list.end(), task), list.end());
}

void
Kernel::exitProcess(Process *process)
{
    // Unschedule everything first (each removal flushes/updates
    // residency as needed).
    while (!process->tasks().empty())
        exitTask(process->tasks().back());

    AddressSpace &mm = process->mm();
    // Scrub TLB residue on any core still holding translations.
    CpuMask residue = mm.residencyMask();
    residue.forEach([&](CoreId core) {
        if (config_.pcidEnabled)
            sched_.tlbOf(core).invalidatePcid(mm.pcid());
        else
            sched_.tlbOf(core).flushAll();
        mm.residencyMask().clear(core);
    });

    // Release every mapped frame.
    std::vector<Vma> vmas;
    vmas.reserve(mm.vmas().size());
    for (const auto &kv : mm.vmas())
        vmas.push_back(kv.second);
    for (const Vma &vma : vmas) {
        UnmapResult ur = mm.munmapRegion(vma.start, vma.end - vma.start);
        for (const auto &page : ur.pages)
            frames_.put(page.second);
        for (const auto &page : ur.hugePages)
            frames_.putHuge(page.second);
    }
}

Duration
Kernel::switchToTask(Task *task)
{
    return sched_.switchToTask(task);
}

void
Kernel::noteRequestComplete(CoreId core, MmId mm, Duration latency)
{
    if (!serveRequestsCtr_) {
        serveRequestsCtr_ = &stats_.counter("serve.requests");
        serveLatencyDist_ = &stats_.distribution("serve.request_ns");
    }
    serveRequestsCtr_->inc();
    serveLatencyDist_->sample(static_cast<double>(latency));
    if (trace_)
        trace_->instant("serve", "request.done", queue_.now(), core,
                        mm, latency);
}

void
Kernel::traceSyscall(const char *name, Tick begin,
                     const SyscallResult &res, CoreId core, MmId mm,
                     std::uint64_t npages)
{
    if (!trace_ || !trace_->enabled())
        return;
    const SpanId span =
        trace_->beginSpan("vm", name, begin, core, mm, npages);
    trace_->endSpan(span, begin + res.latency);
}

void
Kernel::noteInvalidation(AddressSpace &mm, Vpn s, Vpn e, Tick deadline,
                         const char *op)
{
    if (!staleness_)
        return;
    staleness_->notePageTableInvalidation(mm.pcid(), mm.id(), s, e,
                                          mm.residencyMask(), deadline,
                                          op);
}

Duration
Kernel::localInvalidate(CoreId core, AddressSpace &mm, Vpn s, Vpn e,
                        std::uint64_t npages)
{
    Tlb &tlb = sched_.tlbOf(core);
    if (npages >= config_.cost.fullFlushThreshold)
        tlb.flushAll();
    else
        tlb.invalidateRange(s, e, mm.pcid());
    return config_.cost.localInvalidateCost(npages);
}

SyscallResult
Kernel::mmap(Task *task, std::uint64_t len, std::uint8_t prot,
             bool file_backed)
{
    SyscallResult res;
    if (len == 0)
        return res;
    AddressSpace &mm = task->mm();
    const Tick now = queue_.now();
    const Duration hold = config_.cost.mmapFixed;
    const Tick at =
        mm.mmapSem().acquireWrite(now + config_.cost.syscallFixed, hold);
    res.addr = mm.mmapRegion(len, prot, file_backed);
    res.ok = res.addr != kAddrInvalid;
    res.latency = (at + hold) - now;
    stats_.counter("sys.mmap").inc();
    return res;
}

SyscallResult
Kernel::mmapHuge(Task *task, std::uint64_t len, std::uint8_t prot)
{
    SyscallResult res;
    if (len == 0)
        return res;
    AddressSpace &mm = task->mm();
    const Tick now = queue_.now();
    const Duration hold = config_.cost.mmapFixed;
    const Tick at =
        mm.mmapSem().acquireWrite(now + config_.cost.syscallFixed, hold);
    res.addr = mm.mmapHugeRegion(len, prot);
    res.ok = res.addr != kAddrInvalid;
    res.latency = (at + hold) - now;
    stats_.counter("sys.mmap_huge").inc();
    return res;
}

SyscallResult
Kernel::munmap(Task *task, Addr addr, std::uint64_t len, bool sync)
{
    SyscallResult res;
    AddressSpace &mm = task->mm();
    const CoreId core = task->core();
    const Tick now = queue_.now();

    UnmapResult ur = mm.munmapRegion(addr, len);
    if (!ur.ok) {
        res.latency = config_.cost.syscallFixed;
        return res;
    }
    // A huge mapping clears one PMD entry, not 512 PTEs.
    const std::uint64_t npages =
        ur.pages.size() + ur.hugePages.size() * kHugePageSpan;
    const std::uint64_t pte_clears =
        ur.pages.size() + ur.hugePages.size();
    const Vpn s = pageOf(pageAlignDown(addr));
    const Vpn e = pageOf(pageAlignUp(addr + len)) - 1;

    Duration base = config_.cost.vmaFixed +
                    config_.cost.vmaPerPage * pte_clears +
                    config_.cost.pteClearPerPage * pte_clears +
                    config_.cost.vmaPerResidentCore *
                        mm.residencyMask().count();
    base += localInvalidate(core, mm, s, e, npages);

    const Tick t0 = now + config_.cost.syscallFixed;
    const Tick lock_at = mm.mmapSem().acquireWrite(t0, base);
    const Tick shoot_at = lock_at + base;

    FreeOpContext ctx;
    ctx.mm = &mm;
    ctx.initiator = core;
    ctx.startVpn = s;
    ctx.endVpn = e;
    ctx.pages = std::move(ur.pages);
    ctx.hugePages = std::move(ur.hugePages);
    ctx.vaStart = pageAlignDown(addr);
    ctx.vaEnd = pageAlignUp(addr + len);
    ctx.syncRequested = sync;

    // The policy consumes the per-page sharer info (ABIS) before it
    // is forgotten.
    std::vector<Vpn> unmapped;
    unmapped.reserve(ctx.pages.size() + ctx.hugePages.size());
    for (const auto &page : ctx.pages)
        unmapped.push_back(page.first);
    for (const auto &page : ctx.hugePages)
        unmapped.push_back(page.first);
    const Duration pol = policy_->onFreePages(std::move(ctx), shoot_at);
    for (Vpn vpn : unmapped)
        mm.clearSharers(vpn);
    // Linux performs the shootdown under mmap_sem; LATR's 132 ns
    // state save extends the hold negligibly.
    mm.mmapSem().extendWrite(pol);
    noteInvalidation(mm, s, e,
                     shoot_at + pol +
                         policy_->stalenessContract().epochBound,
                     "munmap");

    res.ok = true;
    res.shootdown = pol;
    res.latency = (shoot_at + pol) - now;
    stats_.counter("sys.munmap").inc();
    stats_.distribution("munmap.latency_ns")
        .sample(static_cast<double>(res.latency));
    stats_.distribution("munmap.shootdown_ns")
        .sample(static_cast<double>(pol));
    traceSyscall("sys.munmap", now, res, core, mm.id(), npages);
    return res;
}

SyscallResult
Kernel::madvise(Task *task, Addr addr, std::uint64_t len)
{
    return madviseCommon(task, addr, len, "sys.madvise", "madvise");
}

SyscallResult
Kernel::madviseFree(Task *task, Addr addr, std::uint64_t len)
{
    // MADV_FREE shares the deferred-free contract with MADV_DONTNEED
    // in this model: the contents are gone from the application's
    // view the moment the call returns (a later touch refaults a
    // fresh zero frame), while the frames reach the allocator
    // through the policy — lazily under LATR. Distinct counter and
    // trace name so free-then-reuse traffic is visible next to
    // plain madvise in dumps.
    return madviseCommon(task, addr, len, "sys.madvise_free",
                         "madvise_free");
}

SyscallResult
Kernel::madviseCommon(Task *task, Addr addr, std::uint64_t len,
                      const char *counter, const char *op)
{
    SyscallResult res;
    AddressSpace &mm = task->mm();
    const CoreId core = task->core();
    const Tick now = queue_.now();

    UnmapResult ur = mm.madviseRegion(addr, len);
    if (!ur.ok) {
        res.latency = config_.cost.syscallFixed;
        return res;
    }
    const std::uint64_t npages =
        ur.pages.size() + ur.hugePages.size() * kHugePageSpan;
    const std::uint64_t pte_clears =
        ur.pages.size() + ur.hugePages.size();
    const Vpn s = pageOf(pageAlignDown(addr));
    const Vpn e = pageOf(pageAlignUp(addr + len)) - 1;

    Duration base = config_.cost.vmaFixed +
                    config_.cost.vmaPerPage * pte_clears +
                    config_.cost.pteClearPerPage * pte_clears;
    base += localInvalidate(core, mm, s, e, npages);

    // MADV_DONTNEED runs under mmap_sem held for *read*.
    const Tick t0 = now + config_.cost.syscallFixed;
    const Tick lock_at = mm.mmapSem().acquireRead(t0, base);
    const Tick shoot_at = lock_at + base;

    FreeOpContext ctx;
    ctx.mm = &mm;
    ctx.initiator = core;
    ctx.startVpn = s;
    ctx.endVpn = e;
    ctx.pages = std::move(ur.pages);
    ctx.hugePages = std::move(ur.hugePages);
    ctx.vaStart = 0; // VMA survives madvise; no VA to release
    ctx.vaEnd = 0;

    std::vector<Vpn> unmapped;
    unmapped.reserve(ctx.pages.size() + ctx.hugePages.size());
    for (const auto &page : ctx.pages)
        unmapped.push_back(page.first);
    for (const auto &page : ctx.hugePages)
        unmapped.push_back(page.first);
    const Duration pol = policy_->onFreePages(std::move(ctx), shoot_at);
    for (Vpn vpn : unmapped)
        mm.clearSharers(vpn);
    noteInvalidation(mm, s, e,
                     shoot_at + pol +
                         policy_->stalenessContract().epochBound,
                     op);

    res.ok = true;
    res.shootdown = pol;
    res.latency = (shoot_at + pol) - now;
    stats_.counter(counter).inc();
    traceSyscall(counter, now, res, core, mm.id(), npages);
    return res;
}

SyscallResult
Kernel::mprotect(Task *task, Addr addr, std::uint64_t len,
                 std::uint8_t prot)
{
    SyscallResult res;
    AddressSpace &mm = task->mm();
    const CoreId core = task->core();
    const Tick now = queue_.now();

    UnmapResult ur = mm.mprotectRegion(addr, len, prot);
    if (!ur.ok) {
        res.latency = config_.cost.syscallFixed;
        return res;
    }
    const std::uint64_t npages = ur.pages.size();
    const Vpn s = pageOf(pageAlignDown(addr));
    const Vpn e = pageOf(pageAlignUp(addr + len)) - 1;

    Duration base = config_.cost.vmaFixed +
                    config_.cost.vmaPerPage * ur.spanned +
                    config_.cost.pteClearPerPage * npages;
    base += localInvalidate(core, mm, s, e, npages);

    const Tick t0 = now + config_.cost.syscallFixed;
    const Tick lock_at = mm.mmapSem().acquireWrite(t0, base);
    const Tick shoot_at = lock_at + base;

    // Permission changes must be synchronous under every policy
    // (table 1): stale writable entries are a correctness hazard.
    const Duration pol =
        policy_->onSyncShootdown(&mm, core, s, e, npages, shoot_at);
    mm.mmapSem().extendWrite(pol);
    noteInvalidation(mm, s, e, shoot_at + pol, "mprotect");

    res.ok = true;
    res.shootdown = pol;
    res.latency = (shoot_at + pol) - now;
    stats_.counter("sys.mprotect").inc();
    traceSyscall("sys.mprotect", now, res, core, mm.id(), npages);
    return res;
}

SyscallResult
Kernel::mremap(Task *task, Addr old_addr, std::uint64_t old_len,
               std::uint64_t new_len)
{
    SyscallResult res;
    AddressSpace &mm = task->mm();
    const CoreId core = task->core();
    const Tick now = queue_.now();

    UnmapResult moved;
    const Addr new_addr =
        mm.mremapRegion(old_addr, old_len, new_len, &moved);
    if (new_addr == kAddrInvalid) {
        res.latency = config_.cost.syscallFixed;
        return res;
    }
    const std::uint64_t npages = moved.pages.size();
    const Vpn s = pageOf(pageAlignDown(old_addr));
    const Vpn e = pageOf(pageAlignUp(old_addr + old_len)) - 1;

    Duration base = config_.cost.vmaFixed +
                    config_.cost.vmaPerPage * moved.spanned +
                    config_.cost.pteMapPerPage * npages;
    base += localInvalidate(core, mm, s, e, npages);

    const Tick t0 = now + config_.cost.syscallFixed;
    const Tick lock_at = mm.mmapSem().acquireWrite(t0, base);
    const Tick shoot_at = lock_at + base;

    // Remap changes physical addresses of live translations —
    // synchronous everywhere (table 1).
    const Duration pol =
        policy_->onSyncShootdown(&mm, core, s, e, npages, shoot_at);
    mm.mmapSem().extendWrite(pol);
    noteInvalidation(mm, s, e, shoot_at + pol, "mremap");

    res.ok = true;
    res.addr = new_addr;
    res.shootdown = pol;
    res.latency = (shoot_at + pol) - now;
    stats_.counter("sys.mremap").inc();
    traceSyscall("sys.mremap", now, res, core, mm.id(), npages);
    return res;
}

SyscallResult
Kernel::markCow(Task *task, Addr addr, std::uint64_t len)
{
    SyscallResult res;
    AddressSpace &mm = task->mm();
    const CoreId core = task->core();
    const Tick now = queue_.now();

    UnmapResult ur = mm.markCowRegion(addr, len);
    if (!ur.ok) {
        res.latency = config_.cost.syscallFixed;
        return res;
    }
    const std::uint64_t npages = ur.pages.size();
    const Vpn s = pageOf(pageAlignDown(addr));
    const Vpn e = pageOf(pageAlignUp(addr + len)) - 1;

    Duration base = config_.cost.vmaFixed +
                    config_.cost.pteClearPerPage * npages;
    base += localInvalidate(core, mm, s, e, npages);

    const Tick t0 = now + config_.cost.syscallFixed;
    const Tick lock_at = mm.mmapSem().acquireWrite(t0, base);
    const Tick shoot_at = lock_at + base;

    // Ownership changes are synchronous (table 1): every core must
    // lose write access before sharing begins.
    const Duration pol =
        policy_->onSyncShootdown(&mm, core, s, e, npages, shoot_at);
    mm.mmapSem().extendWrite(pol);
    noteInvalidation(mm, s, e, shoot_at + pol, "markcow");

    res.ok = true;
    res.shootdown = pol;
    res.latency = (shoot_at + pol) - now;
    stats_.counter("sys.markcow").inc();
    traceSyscall("sys.markcow", now, res, core, mm.id(), npages);
    return res;
}

Duration
Kernel::breakCow(Task *task, Vpn vpn)
{
    AddressSpace &mm = task->mm();
    const CoreId core = task->core();
    Pte *pte = mm.pageTable().find(vpn);
    if (!pte || !pte->cow())
        return 0;

    Duration spent = 0;
    const Pfn old = pte->pfn;
    if (frames_.refcount(old) > 1) {
        // Copy the page; the old frame stays with the other owner.
        const Pfn fresh = frames_.alloc(topo_.nodeOf(core));
        if (fresh == kPfnInvalid)
            fatal("out of memory during CoW break");
        spent += config_.cost.migrateCopyPerPage;
        pte->pfn = fresh;
        pte->flags |= kPteWrite;
        pte->flags &= static_cast<std::uint8_t>(~kPteCow);
        // Stale translations to the old frame must die before this
        // mm continues writing — synchronous shootdown.
        sched_.tlbOf(core).invalidatePage(vpn, mm.pcid());
        spent += config_.cost.invlpg;
        spent += policy_->onSyncShootdown(&mm, core, vpn, vpn, 1,
                                          queue_.now() + spent);
        frames_.put(old);
    } else {
        // Sole owner: upgrade in place.
        pte->flags |= kPteWrite;
        pte->flags &= static_cast<std::uint8_t>(~kPteCow);
        sched_.tlbOf(core).invalidatePage(vpn, mm.pcid());
        spent += config_.cost.invlpg;
    }
    cowBreaksCtr_.inc();
    return spent;
}

TouchResult
Kernel::touch(Task *task, Addr addr, bool is_write)
{
    AddressSpace &mm = task->mm();
    const CoreId core = task->core();
    const NodeId node = topo_.nodeOf(core);

    // The hooks live in touchHooks_ (built once); they read the
    // touched task from touchTask_. Save/restore in case a hook's
    // shootdown machinery re-enters touch() for another task.
    Task *const prev_task = touchTask_;
    touchTask_ = task;
    TouchResult r = touchPage(core, node, mm, sched_.tlbOf(core),
                              config_.cost, addr, is_write,
                              touchHooks_);
    touchTask_ = prev_task;
    // Fault paths run under mmap_sem held for read: fault traffic
    // delays munmap/mprotect writers and, symmetrically, a fault
    // arriving during a held write section (Linux's shootdown!)
    // stalls until the writer drains. This interaction is a large
    // part of why Apache stops scaling under synchronous shootdowns.
    if (r.kind == TouchKind::MinorFault ||
        r.kind == TouchKind::NumaFault ||
        r.kind == TouchKind::CowBreak) {
        const Tick now = queue_.now();
        // Only part of the fault runs under the lock (the VMA walk
        // and PTE install; allocation and bookkeeping do not).
        const Tick at =
            mm.mmapSem().acquireRead(now, r.latency / 2);
        r.latency += at - now;
    }
    const bool tracing = trace_ && trace_->enabled();
    switch (r.kind) {
      case TouchKind::MinorFault:
        minorFaultsCtr_.inc();
        if (tracing)
            trace_->instantNow("vm", "vm.minor_fault", core,
                               mm.id(), pageOf(addr));
        break;
      case TouchKind::NumaFault:
        numaFaultsCtr_.inc();
        if (tracing)
            trace_->instantNow("vm", "vm.numa_fault", core,
                               mm.id(), pageOf(addr));
        break;
      case TouchKind::SegFault:
        segFaultsCtr_.inc();
        if (tracing)
            trace_->instantNow("vm", "vm.segfault", core,
                               mm.id(), pageOf(addr));
        break;
      default:
        break;
    }
    return r;
}

Duration
Kernel::numaSample(Task *task, Vpn vpn)
{
    AddressSpace &mm = task->mm();
    const Tick now = queue_.now();
    // Mirror the policies' raced-with-unmap guard: a sample that
    // finds no PTE invalidates nothing, so nothing is promised.
    const bool mapped = mm.pageTable().find(vpn) != nullptr;
    const Duration pol =
        policy_->onNumaSample(&mm, task->core(), vpn, now);
    if (mapped)
        noteInvalidation(mm, vpn, vpn,
                         now + pol +
                             policy_->stalenessContract().epochBound,
                         "numa_sample");
    return pol;
}

void
Kernel::setNumaFaultHook(std::function<Duration(Vpn, CoreId)> hook)
{
    numaFaultHook_ = std::move(hook);
}

} // namespace latr
