/**
 * @file
 * The per-core scheduler. Owns the cores (and their TLBs), fires the
 * 1 ms scheduler ticks — deliberately phase-shifted across cores, as
 * on real machines — rotates runqueues at tick boundaries, performs
 * context switches (full TLB flush when PCIDs are off), models
 * Linux's lazy-TLB idle behaviour (a core entering idle flushes and
 * drops out of every residency mask, so it receives no shootdowns,
 * and with tickless kernels takes no ticks either), and accounts
 * *stolen time*: CPU consumed on a core by asynchronous activity
 * (IPI handlers, LATR sweeps), which stretches the next operation
 * the core's workload runs.
 */

#ifndef LATR_OS_SCHEDULER_HH_
#define LATR_OS_SCHEDULER_HH_

#include <memory>
#include <unordered_set>
#include <vector>

#include "hw/tlb.hh"
#include "os/core_service.hh"
#include "os/task.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"
#include "topo/machine_config.hh"
#include "topo/topology.hh"

namespace latr
{

class TlbCoherencePolicy;
class TraceRecorder;

/** The machine's scheduler; also the CoreService policies see. */
class Scheduler : public CoreService
{
  public:
    Scheduler(EventQueue &queue, const NumaTopology &topo,
              const MachineConfig &config);

    ~Scheduler() override;

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Attach the coherence policy whose hooks ticks invoke. */
    void setPolicy(TlbCoherencePolicy *policy) { policy_ = policy; }

    /** Attach the trace recorder (propagated to every core's TLB). */
    void setTracer(TraceRecorder *trace);

    /** Begin firing scheduler ticks. Idempotent. */
    void start();

    /** Stop firing ticks (lets the event queue drain). */
    void stop();

    /// @name CoreService
    /// @{
    unsigned coreCount() const override;
    Tlb &tlbOf(CoreId core) override;
    void chargeStolen(CoreId core, Duration ns) override;
    bool coreIdle(CoreId core) const override;
    NodeId nodeOfCore(CoreId core) const override;
    /// @}

    /**
     * Place @p task on its pinned core's runqueue; becomes the
     * running task if the core was idle.
     */
    void addTask(Task *task);

    /** Remove @p task; the core may become idle (lazy-TLB flush). */
    void removeTask(Task *task);

    /**
     * Explicit context switch (workload-driven, e.g. the canneal
     * profile's frequent switches): rotates the runqueue.
     * @return CPU cost of the switch on that core.
     */
    Duration contextSwitch(CoreId core);

    /**
     * Directed context switch: make @p task the running task of its
     * pinned core. The serving subsystem dispatches the addressed
     * tenant's task per request instead of rotating the runqueue.
     * The task must be runnable (on its core's runqueue).
     * @return CPU cost of the switch on that core; 0 if @p task was
     *         already current.
     */
    Duration switchToTask(Task *task);

    /**
     * Drain the stolen-time accumulator of @p core. Workload
     * drivers add the returned amount to their next operation.
     */
    Duration takeStolen(CoreId core);

    /** The task currently running on @p core (nullptr if idle). */
    Task *currentTask(CoreId core) const;

    /** Next scheduler tick of @p core. */
    Tick nextTickAt(CoreId core) const;

    /** Total ticks processed (excludes skipped tickless-idle ones). */
    std::uint64_t ticksProcessed() const { return ticksProcessed_; }

  private:
    struct CoreState;

    /** Recurring per-core tick (naive --no-fastpath path). */
    class TickEvent : public Event
    {
      public:
        TickEvent(Scheduler *sched, CoreId core)
            : sched_(sched), core_(core)
        {}

        void process() override { sched_->tick(core_); }

        bool
        footprint(EventFootprint &fp) const override
        {
            sched_->tickFootprintFor(core_, fp);
            return true;
        }

        void compute() override { sched_->planTickFor(core_, when()); }

        unsigned
        computeWeight() const override
        {
            return sched_->tickPlanWeight(core_);
        }

        const char *name() const override { return "sched-tick"; }

      private:
        Scheduler *sched_;
        CoreId core_;
    };

    /**
     * Recurring tick-wheel bucket: one event per distinct phase
     * offset, ticking every core parked in that slot. With the
     * standard phase formula every core gets its own slot, so the
     * wheel fires the same events at the same ticks as the per-core
     * path — but the engine keeps N fewer events in the queue and
     * pays one virtual dispatch per slot instead of per core.
     */
    class WheelEvent : public Event
    {
      public:
        WheelEvent(Scheduler *sched, unsigned slot)
            : sched_(sched), slot_(slot)
        {}

        void process() override { sched_->wheelTick(slot_); }

        bool
        footprint(EventFootprint &fp) const override
        {
            for (CoreId core : sched_->wheel_[slot_].cores)
                sched_->tickFootprintFor(core, fp);
            return true;
        }

        void
        compute() override
        {
            for (CoreId core : sched_->wheel_[slot_].cores)
                sched_->planTickFor(core, when());
        }

        unsigned
        computeWeight() const override
        {
            unsigned weight = 0;
            for (CoreId core : sched_->wheel_[slot_].cores)
                weight += sched_->tickPlanWeight(core);
            return weight;
        }

        const char *name() const override { return "sched-tick"; }

      private:
        Scheduler *sched_;
        unsigned slot_;
    };

    struct WheelSlot
    {
        Tick phase = 0;
        std::vector<CoreId> cores;
        std::unique_ptr<WheelEvent> event;
    };

    void tick(CoreId core);
    void wheelTick(unsigned slot);

    /** One core's tick body, sans rescheduling. */
    void tickCore(CoreId core);

    /// @name Parallel engine (tick events delegate here)
    /// @{

    /**
     * Declare what @p core's tick may touch: the core itself (stolen
     * time, TLB, context switch), the address spaces of its runqueue
     * tasks (residency masks, TLB entries), and whatever the policy
     * adds (LATR reads the publication state for its sweep plan).
     * Runqueues are event-loop-invariant — only driver-side syscalls
     * and undeclared barrier events mutate them — so reading them
     * here and in tick computes needs no declaration.
     */
    void tickFootprintFor(CoreId core, EventFootprint &fp) const;

    /** Speculative half of tickCore(): plan the policy's sweep. */
    void planTickFor(CoreId core, Tick tick);

    /** Nonzero when planTickFor(@p core) does nontrivial work. */
    unsigned tickPlanWeight(CoreId core) const;

    /// @}

    /** Flush @p core's TLB and drop it from every residency mask. */
    void flushCore(CoreState &cs);

    /** Perform the mechanics of switching @p core to @p next. */
    Duration switchTo(CoreState &cs, Task *next);

    EventQueue &queue_;
    const NumaTopology &topo_;
    const MachineConfig &config_;
    TlbCoherencePolicy *policy_ = nullptr;
    TraceRecorder *trace_ = nullptr;

    struct CoreState
    {
        CoreId id = 0;
        std::unique_ptr<Tlb> tlb;
        std::vector<Task *> runqueue;
        Task *current = nullptr;
        Duration stolen = 0;
        std::unique_ptr<TickEvent> tickEvent;
        /** mms whose entries this core's TLB may hold. */
        std::unordered_set<AddressSpace *> residents;
    };

    std::vector<CoreState> cores_;
    /** Tick-wheel slots, ascending phase (empty under noFastpath). */
    std::vector<WheelSlot> wheel_;
    /** Core id -> wheel slot index (empty under noFastpath). */
    std::vector<unsigned> slotOf_;
    bool started_ = false;
    std::uint64_t ticksProcessed_ = 0;
};

} // namespace latr

#endif // LATR_OS_SCHEDULER_HH_
