/**
 * @file
 * The kernel facade: the system-call layer workloads drive. Each
 * call performs the real bookkeeping (VMAs, page tables, TLBs),
 * models the cost and the mmap_sem reservation, and hands the
 * coherence-sensitive tail of the operation — remote invalidation
 * and page freeing — to the attached TlbCoherencePolicy, exactly at
 * the hook points the paper's kernel patch modifies
 * (native_flush_tlb_others, the munmap/madvise handlers, and
 * change_prot_numa).
 */

#ifndef LATR_OS_KERNEL_HH_
#define LATR_OS_KERNEL_HH_

#include <memory>
#include <string>
#include <vector>

#include "mem/frame_allocator.hh"
#include "os/process.hh"
#include "os/scheduler.hh"
#include "os/task.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "tlbcoh/policy.hh"
#include "topo/machine_config.hh"
#include "topo/topology.hh"
#include "vm/fault.hh"

namespace latr
{

class StalenessOracle;
class TraceRecorder;

/** Result of a simulated system call. */
struct SyscallResult
{
    /** Wall time the call occupied the calling core. */
    Duration latency = 0;
    /** Of which, time attributable to TLB coherence. */
    Duration shootdown = 0;
    /** mmap/mremap: resulting address. */
    Addr addr = kAddrInvalid;
    bool ok = false;
};

/** The simulated kernel. */
class Kernel
{
  public:
    Kernel(EventQueue &queue, const NumaTopology &topo,
           const MachineConfig &config, FrameAllocator &frames,
           Scheduler &sched, StatRegistry &stats);

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** Attach the coherence policy (also wired into the scheduler). */
    void setPolicy(TlbCoherencePolicy *policy);

    /** Attach the trace recorder (null or disabled: zero overhead). */
    void setTracer(TraceRecorder *trace) { trace_ = trace; }

    /**
     * Attach the bounded-staleness oracle (src/check/): every
     * page-table-invalidating call reports its range and contract
     * deadline. nullptr (the default) costs nothing.
     */
    void setStalenessOracle(StalenessOracle *oracle)
    {
        staleness_ = oracle;
    }

    TraceRecorder *tracer() const { return trace_; }

    TlbCoherencePolicy *policy() const { return policy_; }

    /// @name Process / task lifecycle
    /// @{

    Process *createProcess(std::string name);

    /** Create a task of @p process pinned to @p core and schedule it. */
    Task *spawnTask(Process *process, CoreId core);

    /** Unschedule and retire @p task. */
    void exitTask(Task *task);

    /**
     * Tear down @p process: unschedule its tasks, flush its TLB
     * residue, release every frame. Kernel-level teardown — no
     * policy involvement, as at real process exit.
     */
    void exitProcess(Process *process);

    /// @}

    /// @name Serving subsystem hooks (src/serve/)
    /// @{

    /**
     * Directed context switch to @p task on its pinned core: the
     * serving subsystem runs each request on the addressed tenant's
     * task. Pays the full switch cost (LATR's context-switch sweep,
     * the PCID-less flush) unless @p task is already current.
     * @return CPU cost of the switch.
     */
    Duration switchToTask(Task *task);

    /**
     * Request-completion hook: counts the request, samples its
     * arrival-to-completion latency into the stat registry
     * ("serve.request_ns", so dumps report request percentiles next
     * to the kernel counters), and emits a trace instant.
     */
    void noteRequestComplete(CoreId core, MmId mm, Duration latency);

    /// @}

    /// @name System calls
    /// @{

    SyscallResult mmap(Task *task, std::uint64_t len, std::uint8_t prot,
                       bool file_backed = false);

    /**
     * Map @p len bytes (rounded to 2 MiB) backed by huge pages —
     * the section 7 extension: faults populate 2 MiB at a time, and
     * frees travel through the policies with the huge flag.
     */
    SyscallResult mmapHuge(Task *task, std::uint64_t len,
                           std::uint8_t prot);

    /**
     * @param sync request synchronous semantics even under LATR
     *        (the paper's section 7 opt-out flag).
     */
    SyscallResult munmap(Task *task, Addr addr, std::uint64_t len,
                         bool sync = false);

    /** madvise(MADV_DONTNEED / MADV_FREE). */
    SyscallResult madvise(Task *task, Addr addr, std::uint64_t len);

    /**
     * madvise(MADV_FREE): lazily discard [addr, addr+len). The
     * kernel bookkeeping is identical to madvise() — PTEs cleared,
     * VMA survives, frames travel through the policy's free-based
     * shootdown path into the FrameAllocator's free lists — but it
     * is counted and traced separately ("sys.madvise_free") because
     * it is *the* free-then-reuse traffic source: the discarded
     * frames come back out of the allocator while remote TLBs may
     * still hold translations to them, which is exactly the window
     * LATR's reclaim delay and the §4.2 staleness invariant bound.
     */
    SyscallResult madviseFree(Task *task, Addr addr,
                              std::uint64_t len);

    SyscallResult mprotect(Task *task, Addr addr, std::uint64_t len,
                           std::uint8_t prot);

    SyscallResult mremap(Task *task, Addr old_addr,
                         std::uint64_t old_len, std::uint64_t new_len);

    /** Mark a range CoW (the ownership-change row of table 1). */
    SyscallResult markCow(Task *task, Addr addr, std::uint64_t len);

    /** One memory access, through TLB / page table / fault paths. */
    TouchResult touch(Task *task, Addr addr, bool is_write);

    /**
     * AutoNUMA sampling entry point (called by the scan task):
     * delegate the prot-none transition to the policy.
     */
    Duration numaSample(Task *task, Vpn vpn);

    /// @}

    /**
     * Install the NUMA-hint fault handler (the AutoNUMA subsystem
     * registers itself here).
     */
    void setNumaFaultHook(std::function<Duration(Vpn, CoreId)> hook);

    StatRegistry &stats() { return stats_; }
    const CostModel &cost() const { return config_.cost; }
    const MachineConfig &config() const { return config_; }
    const NumaTopology &topo() const { return topo_; }
    EventQueue &queue() { return queue_; }
    FrameAllocator &frames() { return frames_; }
    Scheduler &scheduler() { return sched_; }
    Tick now() const { return queue_.now(); }

  private:
    /** Invalidate [s,e] on the initiator's TLB, honoring batching. */
    Duration localInvalidate(CoreId core, AddressSpace &mm, Vpn s,
                             Vpn e, std::uint64_t npages);

    /** CoW write-fault resolution (used via TouchHooks). */
    Duration breakCow(Task *task, Vpn vpn);

    /** Shared body of madvise() / madviseFree(). */
    SyscallResult madviseCommon(Task *task, Addr addr,
                                std::uint64_t len,
                                const char *counter, const char *op);

    /** Emit a [now, now+latency] span for a completed syscall. */
    void traceSyscall(const char *name, Tick begin,
                      const SyscallResult &res, CoreId core, MmId mm,
                      std::uint64_t npages);

    /**
     * Report an invalidated page-table range to the staleness
     * oracle, if attached: every TLB copy of [s, e] must be gone by
     * @p deadline. Called after the policy call, so translations the
     * policy already killed synchronously are exempt.
     */
    void noteInvalidation(AddressSpace &mm, Vpn s, Vpn e,
                          Tick deadline, const char *op);

    EventQueue &queue_;
    const NumaTopology &topo_;
    const MachineConfig &config_;
    FrameAllocator &frames_;
    Scheduler &sched_;
    StatRegistry &stats_;
    TlbCoherencePolicy *policy_ = nullptr;
    TraceRecorder *trace_ = nullptr;
    StalenessOracle *staleness_ = nullptr;

    std::function<Duration(Vpn, CoreId)> numaFaultHook_;

    /**
     * Hooks handed to touchPage(), built once in the constructor:
     * touch() is the hottest kernel entry point and constructing
     * three std::functions per call is measurable. The lambdas
     * capture only `this`; the per-call task is stashed in
     * touchTask_ and policy/NUMA-hook indirection resolves at call
     * time, so the setters keep working.
     */
    TouchHooks touchHooks_;
    Task *touchTask_ = nullptr;

    /**
     * Serving-subsystem stats, resolved on first request completion
     * so machines that never serve keep serve.* out of their dumps.
     */
    Counter *serveRequestsCtr_ = nullptr;
    Distribution *serveLatencyDist_ = nullptr;

    /** Fault-path counters resolved once (touch() is per-access). */
    Counter &minorFaultsCtr_;
    Counter &numaFaultsCtr_;
    Counter &segFaultsCtr_;
    Counter &cowBreaksCtr_;

    std::vector<std::unique_ptr<Process>> processes_;
    std::vector<std::unique_ptr<Task>> tasks_;
    MmId nextMm_ = 1;
    TaskId nextTask_ = 1;
};

} // namespace latr

#endif // LATR_OS_KERNEL_HH_
