#include "os/task.hh"

#include "os/process.hh"

namespace latr
{

Task::Task(TaskId id, Process *process, CoreId core)
    : id_(id), process_(process), core_(core)
{
}

AddressSpace &
Task::mm() const
{
    return process_->mm();
}

} // namespace latr
