#include "os/scheduler.hh"

#include <algorithm>

#include "os/process.hh"
#include "sim/logging.hh"
#include "tlbcoh/policy.hh"
#include "trace/trace.hh"
#include "vm/address_space.hh"

namespace latr
{

Scheduler::Scheduler(EventQueue &queue, const NumaTopology &topo,
                     const MachineConfig &config)
    : queue_(queue), topo_(topo), config_(config)
{
    cores_.resize(topo.totalCores());
    for (unsigned i = 0; i < cores_.size(); ++i) {
        CoreState &cs = cores_[i];
        cs.id = static_cast<CoreId>(i);
        cs.tlb = std::make_unique<Tlb>(cs.id, config.l1TlbEntries,
                                       config.l2TlbEntries);
        if (config.noFastpath)
            cs.tickEvent = std::make_unique<TickEvent>(this, cs.id);
    }
    if (!config.noFastpath) {
        // Build the tick wheel: cores sharing a phase offset share a
        // bucket event. Phases are nondecreasing in core id, so a
        // single in-order scan groups them; with the standard
        // formula every phase is distinct and each slot holds one
        // core, making the wheel fire exactly the events the
        // per-core path would.
        const Duration interval = config.cost.tickInterval;
        slotOf_.resize(cores_.size());
        for (unsigned i = 0; i < cores_.size(); ++i) {
            const Tick phase = (interval * (i + 1)) / cores_.size();
            if (wheel_.empty() || wheel_.back().phase != phase) {
                wheel_.push_back(WheelSlot{phase, {}, nullptr});
                wheel_.back().event = std::make_unique<WheelEvent>(
                    this, static_cast<unsigned>(wheel_.size() - 1));
            }
            wheel_.back().cores.push_back(static_cast<CoreId>(i));
            slotOf_[i] = static_cast<unsigned>(wheel_.size() - 1);
        }
    }
}

Scheduler::~Scheduler()
{
    stop();
}

void
Scheduler::setTracer(TraceRecorder *trace)
{
    trace_ = trace;
    for (auto &cs : cores_)
        cs.tlb->setTracer(trace);
}

void
Scheduler::start()
{
    if (started_)
        return;
    started_ = true;
    const Duration interval = config_.cost.tickInterval;
    if (config_.noFastpath) {
        for (unsigned i = 0; i < cores_.size(); ++i) {
            // Phase-shift ticks across cores: real machines' ticks
            // are not synchronized, which is why LATR must age
            // states two full periods before reclaiming. Every
            // core's first tick still lands within one interval,
            // preserving the paper's upper bound on lazy-shootdown
            // completion.
            const Tick phase = (interval * (i + 1)) / cores_.size();
            queue_.schedule(cores_[i].tickEvent.get(),
                            queue_.now() + phase);
        }
        return;
    }
    // Slots are in ascending phase == ascending core order, so the
    // schedule-time sequence numbers (and thus same-tick FIFO order)
    // match the per-core path.
    for (WheelSlot &slot : wheel_)
        queue_.schedule(slot.event.get(), queue_.now() + slot.phase);
}

void
Scheduler::stop()
{
    if (!started_)
        return;
    started_ = false;
    for (auto &cs : cores_)
        if (cs.tickEvent && cs.tickEvent->scheduled())
            queue_.deschedule(cs.tickEvent.get());
    for (WheelSlot &slot : wheel_)
        if (slot.event->scheduled())
            queue_.deschedule(slot.event.get());
}

unsigned
Scheduler::coreCount() const
{
    return static_cast<unsigned>(cores_.size());
}

Tlb &
Scheduler::tlbOf(CoreId core)
{
    return *cores_.at(core).tlb;
}

void
Scheduler::chargeStolen(CoreId core, Duration ns)
{
    cores_.at(core).stolen += ns;
}

bool
Scheduler::coreIdle(CoreId core) const
{
    return cores_.at(core).runqueue.empty();
}

NodeId
Scheduler::nodeOfCore(CoreId core) const
{
    return topo_.nodeOf(core);
}

Duration
Scheduler::takeStolen(CoreId core)
{
    CoreState &cs = cores_.at(core);
    Duration s = cs.stolen;
    cs.stolen = 0;
    return s;
}

Task *
Scheduler::currentTask(CoreId core) const
{
    return cores_.at(core).current;
}

Tick
Scheduler::nextTickAt(CoreId core) const
{
    const CoreState &cs = cores_.at(core);
    if (config_.noFastpath) {
        return cs.tickEvent->scheduled() ? cs.tickEvent->when()
                                         : kTickNever;
    }
    const WheelSlot &slot = wheel_[slotOf_.at(core)];
    return slot.event->scheduled() ? slot.event->when() : kTickNever;
}

void
Scheduler::flushCore(CoreState &cs)
{
    cs.tlb->flushAll();
    for (AddressSpace *mm : cs.residents)
        mm->residencyMask().clear(cs.id);
    cs.residents.clear();
}

Duration
Scheduler::switchTo(CoreState &cs, Task *next)
{
    Duration spent = config_.cost.ctxSwitch;
    if (trace_)
        trace_->instant("os", "sched.ctxswitch", queue_.now(), cs.id);
    // The coherence policy observes every switch (LATR sweeps here)
    // before any flush, mirroring the patch's hook in __schedule.
    if (policy_)
        policy_->onContextSwitch(cs.id, queue_.now());
    // Switching between threads of one process keeps CR3; only a
    // different mm forces the (PCID-less) full flush.
    const bool same_mm =
        cs.current && next && &cs.current->mm() == &next->mm();
    if (!config_.pcidEnabled && !same_mm) {
        flushCore(cs);
        spent += config_.cost.tlbFullFlush;
    }
    cs.current = next;
    if (next) {
        AddressSpace &mm = next->mm();
        mm.residencyMask().set(cs.id);
        cs.residents.insert(&mm);
    }
    return spent;
}

void
Scheduler::addTask(Task *task)
{
    CoreState &cs = cores_.at(task->core());
    const bool was_idle = cs.runqueue.empty();
    cs.runqueue.push_back(task);
    task->mm().scheduledMask().set(cs.id);
    if (was_idle) {
        // Idle-to-running transition flushes the stale TLB
        // (tickless-kernel behaviour, paper section 7). The flush
        // only matters with PCIDs; without them the switch flushes
        // anyway.
        flushCore(cs);
        chargeStolen(cs.id, switchTo(cs, task));
    }
}

void
Scheduler::removeTask(Task *task)
{
    CoreState &cs = cores_.at(task->core());
    auto it = std::find(cs.runqueue.begin(), cs.runqueue.end(), task);
    if (it == cs.runqueue.end())
        panic("removeTask: task %llu not on core %u",
              static_cast<unsigned long long>(task->id()), cs.id);
    cs.runqueue.erase(it);

    // Another task of the same process may remain on this core.
    bool mm_still_here = false;
    for (Task *t : cs.runqueue)
        if (&t->mm() == &task->mm())
            mm_still_here = true;
    if (!mm_still_here)
        task->mm().scheduledMask().clear(cs.id);

    if (cs.current == task) {
        Task *next = cs.runqueue.empty() ? nullptr : cs.runqueue.front();
        chargeStolen(cs.id, switchTo(cs, next));
    }
    if (cs.runqueue.empty()) {
        // Entering idle: Linux's lazy-TLB mode flushes once and
        // tells everyone not to IPI this core anymore — modeled by
        // dropping out of all residency masks.
        flushCore(cs);
        cs.current = nullptr;
    }
}

Duration
Scheduler::contextSwitch(CoreId core)
{
    CoreState &cs = cores_.at(core);
    if (cs.runqueue.empty())
        return 0;
    // Rotate: current goes to the back, next comes up front.
    Task *next = cs.current;
    if (cs.runqueue.size() > 1) {
        auto it =
            std::find(cs.runqueue.begin(), cs.runqueue.end(), cs.current);
        std::size_t idx =
            it == cs.runqueue.end()
                ? 0
                : (static_cast<std::size_t>(it - cs.runqueue.begin()) +
                   1) % cs.runqueue.size();
        next = cs.runqueue[idx];
    }
    return switchTo(cs, next);
}

Duration
Scheduler::switchToTask(Task *task)
{
    CoreState &cs = cores_.at(task->core());
    if (cs.current == task)
        return 0;
    if (std::find(cs.runqueue.begin(), cs.runqueue.end(), task) ==
        cs.runqueue.end())
        panic("switchToTask: task %llu not runnable on core %u",
              static_cast<unsigned long long>(task->id()),
              task->core());
    return switchTo(cs, task);
}

void
Scheduler::tickCore(CoreId core)
{
    CoreState &cs = cores_[core];
    const bool idle = cs.runqueue.empty();
    if (idle && config_.ticklessIdle)
        return;
    ++ticksProcessed_;
    chargeStolen(core, config_.cost.schedTickFixed);
    if (trace_)
        trace_->instant("os", "sched.tick", queue_.now(), core);
    if (policy_)
        policy_->onSchedulerTick(core, queue_.now());
    // Timeslice rotation when the core is oversubscribed.
    if (cs.runqueue.size() > 1)
        chargeStolen(core, contextSwitch(core));
}

void
Scheduler::tickFootprintFor(CoreId core, EventFootprint &fp) const
{
    fp.writeCore(core);
    const CoreState &cs = cores_[core];
    // Space writes cover the TLB-entry and residency-mask mutations
    // a tick's sweep or context switch can make. The switch path may
    // also drop stale residents not on the runqueue anymore; no
    // compute today reads residency, so the runqueue cover suffices
    // (a future space-reading compute must widen this).
    for (const Task *t : cs.runqueue)
        fp.writeSpace(&t->mm());
    if (policy_)
        policy_->addTickFootprint(core, fp);
}

void
Scheduler::planTickFor(CoreId core, Tick tick)
{
    const CoreState &cs = cores_[core];
    if (cs.runqueue.empty() && config_.ticklessIdle)
        return; // tickCore() will skip this core entirely
    if (policy_)
        policy_->planSchedulerTick(core, tick);
}

unsigned
Scheduler::tickPlanWeight(CoreId core) const
{
    const CoreState &cs = cores_[core];
    if (cs.runqueue.empty() && config_.ticklessIdle)
        return 0;
    return policy_ && policy_->tickPlanIsHeavy(core) ? 1 : 0;
}

void
Scheduler::tick(CoreId core)
{
    tickCore(core);
    queue_.schedule(cores_[core].tickEvent.get(),
                    queue_.now() + config_.cost.tickInterval);
}

void
Scheduler::wheelTick(unsigned slot)
{
    WheelSlot &ws = wheel_[slot];
    for (CoreId core : ws.cores)
        tickCore(core);
    queue_.schedule(ws.event.get(),
                    queue_.now() + config_.cost.tickInterval);
}

} // namespace latr
