/**
 * @file
 * A simulated thread of execution. Tasks belong to a Process (whose
 * AddressSpace they share) and are pinned to a core by the workload
 * driver, matching the paper's benchmark methodology (all runs use
 * physical cores only, no migration between cores).
 */

#ifndef LATR_OS_TASK_HH_
#define LATR_OS_TASK_HH_

#include <string>

#include "sim/types.hh"

namespace latr
{

class AddressSpace;
class Process;

/** A simulated thread. */
class Task
{
  public:
    /**
     * @param id unique task id.
     * @param process owning process (outlives the task).
     * @param core the core this task is pinned to.
     */
    Task(TaskId id, Process *process, CoreId core);

    TaskId id() const { return id_; }
    Process *process() const { return process_; }
    CoreId core() const { return core_; }

    /** Shared address space of the owning process. */
    AddressSpace &mm() const;

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

  private:
    TaskId id_;
    Process *process_;
    CoreId core_;
    std::string name_;
};

} // namespace latr

#endif // LATR_OS_TASK_HH_
