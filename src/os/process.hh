/**
 * @file
 * A simulated process: an AddressSpace plus the tasks sharing it.
 */

#ifndef LATR_OS_PROCESS_HH_
#define LATR_OS_PROCESS_HH_

#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "vm/address_space.hh"

namespace latr
{

class Task;

/** A simulated process. */
class Process
{
  public:
    /**
     * @param id unique process id (also the mm id).
     * @param pcid TLB tag (kPcidNone when PCIDs are off).
     * @param frames physical allocator of the machine.
     * @param name human-readable name.
     */
    Process(MmId id, Pcid pcid, FrameAllocator &frames,
            std::string name);

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    MmId id() const { return id_; }
    const std::string &name() const { return name_; }
    AddressSpace &mm() { return mm_; }

    /** Tasks of this process (owned by the kernel, listed here). */
    std::vector<Task *> &tasks() { return tasks_; }

  private:
    MmId id_;
    std::string name_;
    AddressSpace mm_;
    std::vector<Task *> tasks_;
};

} // namespace latr

#endif // LATR_OS_PROCESS_HH_
