/**
 * @file
 * The narrow interface TLB-coherence policies use to reach per-core
 * machine state (TLBs, stolen-time accounting, idleness) without
 * depending on the scheduler implementation. The scheduler implements
 * this.
 */

#ifndef LATR_OS_CORE_SERVICE_HH_
#define LATR_OS_CORE_SERVICE_HH_

#include "hw/tlb.hh"
#include "sim/types.hh"

namespace latr
{

/** Per-core services exposed to TLB-coherence policies. */
class CoreService
{
  public:
    virtual ~CoreService() = default;

    /** Number of cores in the machine. */
    virtual unsigned coreCount() const = 0;

    /** The TLB of @p core. */
    virtual Tlb &tlbOf(CoreId core) = 0;

    /**
     * Charge @p ns of asynchronous CPU time (interrupt handlers,
     * LATR sweeps) to @p core; the core's next operation stretches
     * by this amount.
     */
    virtual void chargeStolen(CoreId core, Duration ns) = 0;

    /** True if no task occupies @p core. */
    virtual bool coreIdle(CoreId core) const = 0;

    /** NUMA node of @p core. */
    virtual NodeId nodeOfCore(CoreId core) const = 0;
};

} // namespace latr

#endif // LATR_OS_CORE_SERVICE_HH_
