/**
 * @file
 * The reuse-invariant checker. The paper's correctness argument
 * (sections 3 and 4.2) rests on one invariant: *virtual and physical
 * pages are reused only after every TLB entry mapping them has been
 * invalidated on every core*. This checker mirrors all TLB contents
 * (via TlbListener) and the frame allocator's lifecycle (via
 * FrameListener) and flags any frame that returns to the free pool —
 * or is handed out again — while some core's TLB still translates to
 * it. Tests run millions of randomized operations under every policy
 * against this checker.
 */

#ifndef LATR_TLBCOH_INVARIANT_HH_
#define LATR_TLBCOH_INVARIANT_HH_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "hw/tlb.hh"
#include "mem/frame_allocator.hh"
#include "sim/types.hh"

namespace latr
{

/** Watches TLBs and the allocator; counts reuse-invariant breaches. */
class InvariantChecker : public TlbListener, public FrameListener
{
  public:
    /**
     * @param strict panic on the first violation instead of
     *        counting (useful under a debugger).
     */
    explicit InvariantChecker(bool strict = false);

    /// @name TlbListener
    /// @{
    void onTlbInsert(CoreId core, Vpn vpn, Pfn pfn, Pcid pcid) override;
    void onTlbRemove(CoreId core, Vpn vpn, Pfn pfn, Pcid pcid) override;
    /// @}

    /// @name FrameListener
    /// @{
    void onFrameAlloc(Pfn pfn) override;
    void onFrameFree(Pfn pfn) override;
    /// @}

    /** Number of TLB entries (across all cores) mapping @p pfn. */
    unsigned tlbRefs(Pfn pfn) const;

    /** Total violations observed. */
    std::uint64_t violations() const { return violations_; }

    /** Human-readable description of the first violation, if any. */
    const std::string &firstViolation() const { return first_; }

    /** Total TLB entries currently mirrored. */
    std::uint64_t mirroredEntries() const { return entries_; }

    void reset();

  private:
    void violation(const char *what, Pfn pfn);

    bool strict_;
    std::unordered_map<Pfn, unsigned> refs_;
    std::uint64_t entries_ = 0;
    std::uint64_t violations_ = 0;
    std::string first_;
};

} // namespace latr

#endif // LATR_TLBCOH_INVARIANT_HH_
