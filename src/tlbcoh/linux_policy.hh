/**
 * @file
 * The stock Linux 4.10 TLB-shootdown baseline (paper section 2.1):
 * every page-table change triggers a synchronous IPI broadcast to all
 * cores where the mm is resident; the initiator stalls until every
 * ACK arrives; freed pages return to the allocator only then.
 * Includes the two stock optimizations the paper describes: batched
 * invalidation (a single IPI covers the whole range, and ranges past
 * the 33-entry threshold become full flushes) and lazy idle-mode TLBs
 * (idle cores drop out of the residency mask — modeled in the
 * scheduler).
 */

#ifndef LATR_TLBCOH_LINUX_POLICY_HH_
#define LATR_TLBCOH_LINUX_POLICY_HH_

#include "tlbcoh/policy.hh"

namespace latr
{

/** Synchronous IPI shootdowns, as in Linux 4.10. */
class LinuxPolicy : public TlbCoherencePolicy
{
  public:
    explicit LinuxPolicy(PolicyEnv env);

    const char *name() const override { return "Linux"; }
    PolicyKind kind() const override { return PolicyKind::LinuxSync; }
    PolicyCapabilities capabilities() const override;

    Duration onFreePages(FreeOpContext ctx, Tick start) override;

    Duration onNumaSample(AddressSpace *mm, CoreId initiator, Vpn vpn,
                          Tick start) override;
};

} // namespace latr

#endif // LATR_TLBCOH_LINUX_POLICY_HH_
