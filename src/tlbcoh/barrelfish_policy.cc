#include "tlbcoh/barrelfish_policy.hh"

#include <algorithm>

#include "trace/trace.hh"

namespace latr
{

BarrelfishPolicy::BarrelfishPolicy(PolicyEnv env)
    : TlbCoherencePolicy(std::move(env)), rng_(0xbf15)
{
}

PolicyCapabilities
BarrelfishPolicy::capabilities() const
{
    PolicyCapabilities caps;
    caps.asynchronous = false; // still waits for ACKs
    caps.nonIpiBased = true;
    caps.noRemoteCoreInvolvement = false; // remote cores still apply
    caps.noHardwareChanges = true;
    caps.lazyFreeCapable = false;
    caps.lazyMigrationCapable = false;
    return caps;
}

Duration
BarrelfishPolicy::messageShootdown(AddressSpace *mm, CoreId initiator,
                                   const CpuMask &targets, Vpn start_vpn,
                                   Vpn end_vpn, std::uint64_t npages,
                                   Tick start)
{
    env_.stats->counter("coh.msg_shootdowns").inc();

    const Pcid pcid = mm->pcid();
    const bool full_flush = npages >= cost().fullFlushThreshold;
    const Duration inval = cost().localInvalidateCost(npages);

    Tick send_clock = start;
    Tick all_acked = start;
    targets.forEach([&](CoreId target) {
        if (target == initiator)
            return;
        const unsigned hops = env_.topo->hops(initiator, target);
        // Writing the channel line is cheap; the line then migrates
        // to the target's cache.
        send_clock += cost().bfSendPerTarget;
        const Tick visible = send_clock + cost().cachelineCost(hops);
        // The target notices at its next kernel poll point.
        const Duration poll_delay =
            rng_.nextBounded(cost().bfPollWindow + 1);
        const Tick applied_at = visible + poll_delay;

        // The apply event touches only the target core's TLB and the
        // shot-down space; declaring that lets deliveries to
        // different cores ride in one parallel batch.
        EventFootprint fp;
        fp.writeCore(target);
        fp.writeSpace(mm);
        env_.queue->scheduleLambda(
            applied_at, fp, [this, mm, pcid, full_flush, start_vpn,
                             end_vpn, inval, target]() {
                Tlb &tlb = env_.cores->tlbOf(target);
                if (full_flush)
                    tlb.flushAll();
                else
                    tlb.invalidateRange(start_vpn, end_vpn, pcid);
                // No interrupt entry/exit — only the invalidation
                // itself steals time (the mechanism's selling point).
                env_.cores->chargeStolen(target, inval);
            });

        const Tick acked =
            applied_at + inval + cost().cachelineCost(hops);
        all_acked = std::max(all_acked, acked);

        if (TraceRecorder *t = tracer()) {
            // Channel write visible -> poll noticed -> invalidated.
            const SpanId span = t->beginSpan(
                "bf", "bf.msg_apply", visible, target, mm->id(),
                npages);
            t->endSpan(span, applied_at + inval);
        }
    });
    if (TraceRecorder *t = tracer()) {
        const SpanId span = t->beginSpan("bf", "bf.msg_shootdown",
                                         start, initiator, mm->id(),
                                         npages);
        t->endSpan(span, all_acked);
    }
    return all_acked - start;
}

Duration
BarrelfishPolicy::onFreePages(FreeOpContext ctx, Tick start)
{
    shootdownsCtr_.inc();

    CpuMask targets = remoteTargets(ctx.mm, ctx.initiator);
    const std::uint64_t npages =
        ctx.pages.size() + ctx.hugePages.size() * kHugePageSpan;
    Duration wait = 0;
    if (!targets.empty() && npages > 0) {
        wait = messageShootdown(ctx.mm, ctx.initiator, targets,
                                ctx.startVpn, ctx.endVpn, npages,
                                start);
    }
    if (!ctx.pages.empty() || !ctx.hugePages.empty()) {
        AddressSpace *mm = ctx.mm;
        auto pages = std::move(ctx.pages);
        auto huge = std::move(ctx.hugePages);
        EventFootprint fp;
        fp.writeGlobal(SimResource::FrameAllocator);
        env_.queue->scheduleLambda(start + wait, fp,
                                   [mm, pages, huge]() {
            for (const auto &page : pages)
                mm->frames().put(page.second);
            for (const auto &page : huge)
                mm->frames().putHuge(page.second);
        });
    }
    return wait;
}

Duration
BarrelfishPolicy::onNumaSample(AddressSpace *mm, CoreId initiator,
                               Vpn vpn, Tick start)
{
    Pte *pte = mm->pageTable().find(vpn);
    if (!pte)
        return 0;

    shootdownsCtr_.inc();
    numaSamplesCtr_.inc();

    pte->flags |= kPteProtNone;
    Duration local = cost().pteClearPerPage + cost().invlpg;
    env_.cores->tlbOf(initiator).invalidatePage(vpn, mm->pcid());

    CpuMask targets = remoteTargets(mm, initiator);
    return local + messageShootdown(mm, initiator, targets, vpn, vpn, 1,
                                    start + local);
}

Duration
BarrelfishPolicy::onSyncShootdown(AddressSpace *mm, CoreId initiator,
                                  Vpn start_vpn, Vpn end_vpn,
                                  std::uint64_t npages, Tick start)
{
    syncOpsCtr_.inc();
    CpuMask targets = remoteTargets(mm, initiator);
    return messageShootdown(mm, initiator, targets, start_vpn, end_vpn,
                            npages, start);
}

} // namespace latr
