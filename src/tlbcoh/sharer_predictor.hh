/**
 * @file
 * Hashed-perceptron sharer prediction (the COALESCE predictor
 * pattern applied to translation coherence). For each candidate core
 * of a free operation the predictor sums small saturating weights
 * from a handful of feature tables — mm id, VMA id, the op's
 * recent-accessor CpuMask words, the initiating core, and the
 * candidate's membership in the recent-accessor mask — and predicts
 * "sharer" when the sum is non-negative. Weights start at zero, so a
 * cold predictor predicts every candidate (full mask: safe, no
 * savings) and learns the non-sharers as confirmed outcomes arrive.
 *
 * Everything here is a pure function of the feature vector and the
 * training history; PredictivePolicy only trains from event commits,
 * which the parallel engine replays in exact (tick, seq) order, so
 * predictions are byte-identical at every --sim-threads count.
 */

#ifndef LATR_TLBCOH_SHARER_PREDICTOR_HH_
#define LATR_TLBCOH_SHARER_PREDICTOR_HH_

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace latr
{

/** Feature vector of one free operation, shared by all candidates. */
struct SharerFeatures
{
    MmId mm = 0;
    /** Start address of the VMA containing the op (0 if none). */
    std::uint64_t vmaId = 0;
    /** Recent-accessor mask words (union of the pages' sharer sets). */
    std::uint64_t accessorWords[2] = {0, 0};
    CoreId initiator = 0;
};

/**
 * The per-candidate hashed perceptron. predict() is const and
 * allocation-free; train() saturates weights in [-kWeightMax-1,
 * kWeightMax] and updates only when the prediction was wrong or the
 * sum landed inside the training margin (the usual perceptron rule).
 */
class SharerPredictor
{
  public:
    SharerPredictor();

    /**
     * Predict the sharer subset of @p candidates for @p f. A zero
     * weight sum predicts "sharer", so an untrained predictor
     * returns @p candidates unchanged.
     */
    CpuMask predict(const SharerFeatures &f,
                    const CpuMask &candidates) const;

    /**
     * Train on a confirmed outcome: @p actual is the subset of
     * @p candidates that really held translations (predicted cores
     * report via their IPI ack; unpredicted sharers surface as
     * verification stale hits).
     */
    void train(const SharerFeatures &f, const CpuMask &candidates,
               const CpuMask &actual);

    /** Weight sum for one candidate (exposed for tests). */
    int weightSum(const SharerFeatures &f, CoreId candidate) const;

  private:
    /** Feature tables: mm, vma, initiator, accessor words, member. */
    static constexpr unsigned kTables = 5;
    /** Entries per table (power of two). */
    static constexpr unsigned kTableSize = 1024;
    /** Weights saturate at +kWeightMax / -(kWeightMax + 1). */
    static constexpr int kWeightMax = 31;
    /** Train while |sum| is within this margin even when correct. */
    static constexpr int kTrainMargin = 8;

    /** Table indices for (features, candidate), in table order. */
    void indicesOf(const SharerFeatures &f, CoreId candidate,
                   std::uint32_t idx[kTables]) const;

    std::vector<std::int8_t> weights_; // kTables * kTableSize
};

} // namespace latr

#endif // LATR_TLBCOH_SHARER_PREDICTOR_HH_
