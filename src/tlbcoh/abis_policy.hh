/**
 * @file
 * ABIS (Amit, USENIX ATC'17): the state-of-the-art software baseline
 * the paper compares against. ABIS tracks which cores actually share
 * each page via page-table access bits and sends shootdown IPIs only
 * to those cores — often none, when a page was touched by a single
 * core (Apache's per-request file mappings). The tracking itself
 * costs extra work on every fault and an access-bit harvest on every
 * unmap, which is why ABIS *loses* to Linux at low core counts
 * (figure 9) while winning at high ones. Shootdowns remain fully
 * synchronous.
 */

#ifndef LATR_TLBCOH_ABIS_POLICY_HH_
#define LATR_TLBCOH_ABIS_POLICY_HH_

#include "tlbcoh/policy.hh"

namespace latr
{

/** Access-bit-based sharing tracking; synchronous, reduced IPIs. */
class AbisPolicy : public TlbCoherencePolicy
{
  public:
    explicit AbisPolicy(PolicyEnv env);

    const char *name() const override { return "ABIS"; }
    PolicyKind kind() const override { return PolicyKind::Abis; }
    PolicyCapabilities capabilities() const override;

    Duration onFreePages(FreeOpContext ctx, Tick start) override;

    Duration onNumaSample(AddressSpace *mm, CoreId initiator, Vpn vpn,
                          Tick start) override;

    Duration minorFaultOverhead() const override;

    void offerSharerHarvest(AddressSpace *mm, Vpn start_vpn,
                            Vpn end_vpn, const CpuMask &mask) override;

  private:
    /**
     * The one-shot harvest stash: an epoch-validated sharer union a
     * compute() phase offered for the next free on exactly this
     * (mm, range). onFreePages() consumes it in place of its
     * per-page access-bit walk when the free's actual page set is a
     * single 4 KiB page at start_vpn — the only shape whose fresh
     * harvest provably equals the offered union — and discards it
     * otherwise. Residency clipping and the initiator clear always
     * run fresh at commit (they depend on commit-time state the
     * offer does not cover).
     */
    struct HarvestOffer
    {
        bool armed = false;
        AddressSpace *mm = nullptr;
        Vpn startVpn = 0;
        Vpn endVpn = 0;
        CpuMask mask;
    };

    HarvestOffer offer_;
    Counter &shootdownsAvoidedCtr_;
};

} // namespace latr

#endif // LATR_TLBCOH_ABIS_POLICY_HH_
