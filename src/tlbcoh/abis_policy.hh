/**
 * @file
 * ABIS (Amit, USENIX ATC'17): the state-of-the-art software baseline
 * the paper compares against. ABIS tracks which cores actually share
 * each page via page-table access bits and sends shootdown IPIs only
 * to those cores — often none, when a page was touched by a single
 * core (Apache's per-request file mappings). The tracking itself
 * costs extra work on every fault and an access-bit harvest on every
 * unmap, which is why ABIS *loses* to Linux at low core counts
 * (figure 9) while winning at high ones. Shootdowns remain fully
 * synchronous.
 */

#ifndef LATR_TLBCOH_ABIS_POLICY_HH_
#define LATR_TLBCOH_ABIS_POLICY_HH_

#include "tlbcoh/policy.hh"

namespace latr
{

/** Access-bit-based sharing tracking; synchronous, reduced IPIs. */
class AbisPolicy : public TlbCoherencePolicy
{
  public:
    explicit AbisPolicy(PolicyEnv env);

    const char *name() const override { return "ABIS"; }
    PolicyKind kind() const override { return PolicyKind::Abis; }
    PolicyCapabilities capabilities() const override;

    Duration onFreePages(FreeOpContext ctx, Tick start) override;

    Duration onNumaSample(AddressSpace *mm, CoreId initiator, Vpn vpn,
                          Tick start) override;

    Duration minorFaultOverhead() const override;

  private:
    Counter &shootdownsAvoidedCtr_;
};

} // namespace latr

#endif // LATR_TLBCOH_ABIS_POLICY_HH_
