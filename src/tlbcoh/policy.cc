#include "tlbcoh/policy.hh"

#include "sim/logging.hh"
#include "trace/trace.hh"
#include "tlbcoh/abis_policy.hh"
#include "tlbcoh/barrelfish_policy.hh"
#include "tlbcoh/latr_policy.hh"
#include "tlbcoh/linux_policy.hh"
#include "tlbcoh/predictive_policy.hh"

namespace latr
{

namespace
{
void
checkEnv(const PolicyEnv &env)
{
    if (!env.queue || !env.topo || !env.config || !env.frames ||
        !env.ipi || !env.cores || !env.stats)
        panic("PolicyEnv is missing a required service");
}
} // namespace

TlbCoherencePolicy::TlbCoherencePolicy(PolicyEnv env)
    : env_((checkEnv(env), std::move(env))),
      ipiShootdownsCtr_(env_.stats->counter("coh.ipi_shootdowns")),
      remoteInterruptsCtr_(env_.stats->counter("coh.remote_interrupts")),
      syncOpsCtr_(env_.stats->counter("coh.sync_ops")),
      shootdownsCtr_(env_.stats->counter("coh.shootdowns")),
      numaSamplesCtr_(env_.stats->counter("numa.samples"))
{
}

TraceRecorder *
TlbCoherencePolicy::tracer() const
{
    return env_.trace && env_.trace->enabled() ? env_.trace : nullptr;
}

Tick
TlbCoherencePolicy::numaSampleReadyAt(AddressSpace *, Vpn) const
{
    return 0;
}

void
TlbCoherencePolicy::onSchedulerTick(CoreId, Tick)
{
}

void
TlbCoherencePolicy::onContextSwitch(CoreId, Tick)
{
}

void
TlbCoherencePolicy::addTickFootprint(CoreId, EventFootprint &) const
{
}

void
TlbCoherencePolicy::planSchedulerTick(CoreId, Tick)
{
}

bool
TlbCoherencePolicy::tickPlanIsHeavy(CoreId) const
{
    return false;
}

CpuMask
TlbCoherencePolicy::remoteTargets(AddressSpace *mm,
                                  CoreId initiator) const
{
    CpuMask targets = mm->residencyMask();
    targets.clear(initiator);
    return targets;
}

void
TlbCoherencePolicy::polluteLlc(CoreId core)
{
    const NodeId node = env_.topo->nodeOf(core);
    if (node >= env_.llcs.size() || env_.llcs[node] == nullptr)
        return;
    LlcCache *llc = env_.llcs[node];
    // The interrupt handler's instruction/data footprint displaces
    // some application lines. Most of the footprint (IDT path,
    // handler code, per-core stack) recurs across interrupts and
    // stays warm; a couple of lines (the flush target's PTE area,
    // the ack line) are cold each time.
    const unsigned lines = cost().ipiHandlerCacheLines;
    const std::uint64_t base =
        0xF000'0000'0000ULL + static_cast<std::uint64_t>(core) * 4096;
    for (unsigned i = 0; i < lines; ++i)
        llc->access(base + i, CacheAccessOrigin::Interrupt);
    // The occasional line is genuinely cold (a PTE cache line of
    // the flushed range that aged out, a fresh ack line); the vast
    // majority of handler lines recur and stay warm, which is why
    // the paper's table 4 differences are small.
    if ((pollutionCursor_++ & 63) == 0)
        llc->access(0xF800'0000'0000ULL + pollutionCursor_,
                    CacheAccessOrigin::Interrupt);
}

Duration
TlbCoherencePolicy::ipiShootdown(AddressSpace *mm, CoreId initiator,
                                 const CpuMask &targets, Vpn start_vpn,
                                 Vpn end_vpn, std::uint64_t npages,
                                 Tick start)
{
    ipiShootdownsCtr_.inc();

    const Pcid pcid = mm->pcid();
    const bool full_flush = npages >= cost().fullFlushThreshold;
    const Duration handler_body = cost().localInvalidateCost(npages);

    auto handler_cost = [handler_body](CoreId) { return handler_body; };

    auto on_deliver = [this, mm, pcid, full_flush, start_vpn, end_vpn,
                       handler_body](CoreId target, Tick,
                                     const Tlb::InvalidationPlan *plan) {
        Tlb &tlb = env_.cores->tlbOf(target);
        if (full_flush) {
            tlb.flushAll();
            // A fully flushed core holds nothing of any mm; at
            // minimum it stops being resident for this one. (Other
            // mms' masks are reconciled lazily by the scheduler.)
            if (!env_.cores->tlbOf(target).size())
                mm->residencyMask().clear(target);
        } else if (!plan || !tlb.applyInvalidationPlan(*plan)) {
            // No plan, or the target TLB changed since it was probed
            // (Tlb::mutationSeq() moved): invalidate fresh.
            tlb.invalidateRange(start_vpn, end_vpn, pcid);
        }
        env_.cores->chargeStolen(
            target, cost().ipiHandlerFixed + handler_body);
        polluteLlc(target);
        remoteInterruptsCtr_.inc();
    };

    // Range shootdowns pre-probe the target TLB in the delivery's
    // compute() phase — the removal walk is the bulk of the handler's
    // host-side work, hoisted onto worker lanes. Full flushes drop
    // everything unconditionally; there is nothing to probe.
    IpiFabric::PlanFn planner;
    if (!full_flush) {
        planner = [this, pcid, start_vpn, end_vpn](
                      CoreId target, Tlb::InvalidationPlan *plan) {
            env_.cores->tlbOf(target).planInvalidateRange(
                start_vpn, end_vpn, pcid, plan);
        };
    }
    const unsigned plan_weight = static_cast<unsigned>(
        std::min<std::uint64_t>(npages, 256));

    IpiBroadcastResult r = env_.ipi->broadcast(
        initiator, targets, start, handler_cost, on_deliver, mm,
        planner, plan_weight);
    if (TraceRecorder *t = tracer()) {
        const SpanId span = t->beginSpan(
            "coh", "coh.ipi_shootdown", start, initiator, mm->id(),
            npages);
        t->endSpan(span, r.allAcked);
    }
    return r.allAcked - start;
}

Duration
TlbCoherencePolicy::onSyncShootdown(AddressSpace *mm, CoreId initiator,
                                    Vpn start_vpn, Vpn end_vpn,
                                    std::uint64_t npages, Tick start)
{
    syncOpsCtr_.inc();
    CpuMask targets = remoteTargets(mm, initiator);
    const Duration wait = ipiShootdown(mm, initiator, targets,
                                       start_vpn, end_vpn, npages,
                                       start);
    if (TraceRecorder *t = tracer()) {
        const SpanId span = t->beginSpan("coh", "coh.sync_shootdown",
                                         start, initiator, mm->id(),
                                         npages);
        t->endSpan(span, start + wait);
    }
    return wait;
}

std::unique_ptr<TlbCoherencePolicy>
makePolicy(PolicyKind kind, PolicyEnv env)
{
    switch (kind) {
      case PolicyKind::LinuxSync:
        return std::make_unique<LinuxPolicy>(std::move(env));
      case PolicyKind::Latr:
        return std::make_unique<LatrPolicy>(std::move(env));
      case PolicyKind::Abis:
        return std::make_unique<AbisPolicy>(std::move(env));
      case PolicyKind::Barrelfish:
        return std::make_unique<BarrelfishPolicy>(std::move(env));
      case PolicyKind::Predictive:
        return std::make_unique<PredictivePolicy>(std::move(env));
    }
    panic("unknown policy kind");
}

const char *
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::LinuxSync:
        return "Linux";
      case PolicyKind::Latr:
        return "LATR";
      case PolicyKind::Abis:
        return "ABIS";
      case PolicyKind::Barrelfish:
        return "Barrelfish";
      case PolicyKind::Predictive:
        return "Predictive";
    }
    return "?";
}

} // namespace latr
