#include "tlbcoh/predictive_policy.hh"

#include <utility>

#include "sim/logging.hh"
#include "trace/trace.hh"

namespace latr
{

PredictivePolicy::PredictivePolicy(PolicyEnv env)
    : TlbCoherencePolicy(std::move(env)),
      ipisSavedCtr_(env_.stats->counter("pred.ipis_saved")),
      mispredictsCtr_(env_.stats->counter("pred.mispredicts")),
      fallbackShootdownsCtr_(
          env_.stats->counter("pred.fallback_shootdowns")),
      verifiesCtr_(env_.stats->counter("pred.verifies"))
{
}

PolicyCapabilities
PredictivePolicy::capabilities() const
{
    PolicyCapabilities caps;
    caps.asynchronous = true; // frame release and full coherence defer
    caps.nonIpiBased = false;
    caps.noRemoteCoreInvolvement = false;
    caps.noHardwareChanges = true;
    caps.lazyFreeCapable = true;
    caps.lazyMigrationCapable = false;
    return caps;
}

Duration
PredictivePolicy::fallbackRoundTripBound() const
{
    // Worst-case full-mask shootdown issued by the verifier: ICR
    // writes serialize per target, then the farthest delivery, its
    // handler, and a full flush. Invalidation happens at delivery,
    // so handler + flush are pure margin.
    const unsigned hops = env_.topo->maxHops();
    const Duration sends = static_cast<Duration>(
                               env_.cores->coreCount()) *
                           cost().ipiSendCost(hops);
    return sends + cost().ipiDeliveryCost(hops) +
           cost().ipiHandlerFixed + cost().tlbFullFlush;
}

StalenessContract
PredictivePolicy::stalenessContract() const
{
    // A stale translation on an unpredicted core survives until the
    // verification pass one tick interval after the op completes,
    // plus the fallback shootdown that pass issues. The 5 µs slack
    // mirrors LatrPolicy's allowance for event-processing skew.
    return StalenessContract{
        cost().tickInterval + 5 * kUsec + fallbackRoundTripBound(),
        "predicted shootdowns are verified against mirrored TLBs "
        "within one scheduler epoch; stale hits die in one full-mask "
        "fallback round-trip"};
}

bool
PredictivePolicy::coreHoldsStale(CoreId core,
                                 const VerifyEvent *ev) const
{
    // Read-only pfn-matched probes: a vpn re-mapped to a *different*
    // frame since the free is a live translation, not a stale one.
    // The freed frames are parked on the verify event, so no other
    // mapping can alias them while we probe.
    const Tlb &tlb = env_.cores->tlbOf(core);
    const Pcid pcid = ev->mm->pcid();
    Pfn pfn = 0;
    for (const auto &page : ev->pages) {
        if (tlb.probePfn(page.first, pcid, &pfn) && pfn == page.second)
            return true;
    }
    for (const auto &page : ev->hugePages) {
        if (tlb.probeHugePfn(page.first, pcid, &pfn) &&
            pfn == page.second)
            return true;
    }
    return false;
}

Duration
PredictivePolicy::onFreePages(FreeOpContext ctx, Tick start)
{
    shootdownsCtr_.inc();

    const std::uint64_t npages =
        ctx.pages.size() + ctx.hugePages.size() * kHugePageSpan;
    CpuMask candidates = remoteTargets(ctx.mm, ctx.initiator);

    if (npages == 0)
        return 0; // nothing was mapped: no translations anywhere

    if (candidates.empty()) {
        // No remote core can hold an entry and the initiator already
        // invalidated: free immediately, Linux-style.
        AddressSpace *mm = ctx.mm;
        auto pages = std::move(ctx.pages);
        auto huge = std::move(ctx.hugePages);
        EventFootprint fp;
        fp.writeGlobal(SimResource::FrameAllocator);
        env_.queue->scheduleLambda(start, fp, [mm, pages, huge]() {
            for (const auto &page : pages)
                mm->frames().put(page.second);
            for (const auto &page : huge)
                mm->frames().putHuge(page.second);
        });
        return 0;
    }

    // Feature vector: mm, containing VMA (gone already for munmap —
    // the released base stands in), the recent-accessor union of the
    // freed pages (cheap access-bit reads, the feature COALESCE-style
    // hashing thrives on), and the initiating core.
    SharerFeatures f;
    f.mm = ctx.mm->id();
    f.vmaId = ctx.vaStart;
    if (const Vma *vma = ctx.mm->findVma(addrOf(ctx.startVpn)))
        f.vmaId = vma->start;
    f.initiator = ctx.initiator;
    CpuMask accessors;
    for (const auto &page : ctx.pages)
        accessors.orWith(ctx.mm->sharersOf(page.first));
    for (const auto &page : ctx.hugePages)
        accessors.orWith(ctx.mm->sharersOf(page.first));
    accessors.forEachWord([&f](unsigned w, std::uint64_t v) {
        f.accessorWords[w] = v;
    });

    CpuMask predicted = predictor_.predict(f, candidates);
    if (env_.config->injectMispredictSharers)
        predicted.reset(); // maximally wrong: every sharer missed

    ipisSavedCtr_.inc(candidates.count() - predicted.count());
    if (TraceRecorder *t = tracer())
        t->instant("pred", "pred.predict", start, ctx.initiator,
                   ctx.mm->id(), predicted.count());

    // Probe the predicted cores *before* their IPIs land: the ack
    // carries whether the core actually held a translation, which is
    // the positive half of the training signal (the negative half —
    // unpredicted sharers — comes from the verification pass).
    VerifyEvent *ev = acquireVerifyEvent();
    ev->ackSharers.reset();
    ev->mm = ctx.mm;
    ev->startVpn = ctx.startVpn;
    ev->endVpn = ctx.endVpn;
    ev->npages = npages;
    ev->pages = std::move(ctx.pages);
    ev->hugePages = std::move(ctx.hugePages);
    ev->vaStart = ctx.vaStart;
    ev->vaEnd = ctx.vaEnd;
    ev->candidates = candidates;
    ev->predicted = predicted;
    ev->features = f;
    ev->owner = ctx.initiator;
    predicted.forEach([&](CoreId c) {
        if (coreHoldsStale(c, ev))
            ev->ackSharers.set(c);
    });

    Duration wait = 0;
    if (!predicted.empty()) {
        wait = ipiShootdown(ctx.mm, ctx.initiator, predicted,
                            ev->startVpn, ev->endVpn, npages, start);
    }

    // Park the virtual range until verification confirms coherence
    // (the reuse invariant, paper section 4.2).
    if (ev->vaEnd > ev->vaStart)
        ev->mm->holdbackRange(ev->vaStart, ev->vaEnd);

    scheduleVerify(ev, start + wait + cost().tickInterval);
    return wait;
}

Duration
PredictivePolicy::onNumaSample(AddressSpace *mm, CoreId initiator,
                               Vpn vpn, Tick start)
{
    // AutoNUMA samples gate migration faults on full coherence; keep
    // them synchronous full-mask (the Linux path) rather than teach
    // numaSampleReadyAt about pending verifications.
    Pte *pte = mm->pageTable().find(vpn);
    if (!pte)
        return 0; // raced with an unmap

    shootdownsCtr_.inc();
    numaSamplesCtr_.inc();

    pte->flags |= kPteProtNone;
    Duration local = cost().pteClearPerPage + cost().invlpg;
    env_.cores->tlbOf(initiator).invalidatePage(vpn, mm->pcid());

    CpuMask targets = remoteTargets(mm, initiator);
    Duration wait = ipiShootdown(mm, initiator, targets, vpn, vpn, 1,
                                 start + local);
    return local + wait;
}

void
PredictivePolicy::VerifyEvent::process()
{
    policy->runVerify(this);
}

bool
PredictivePolicy::VerifyEvent::footprint(EventFootprint &fp) const
{
    // compute() probes every candidate's TLB (reads); process() may
    // free frames, release the held-back VA range, and charge the
    // owning core for fallback sends.
    candidates.forEach([&fp](CoreId c) { fp.readCore(c); });
    fp.writeCore(owner);
    fp.writeSpace(mm);
    fp.writeGlobal(SimResource::FrameAllocator);
    return true;
}

void
PredictivePolicy::VerifyEvent::compute()
{
    policy->planVerify(this);
}

unsigned
PredictivePolicy::VerifyEvent::computeWeight() const
{
    // Proportional to the probe walk compute() hoists off the
    // commit thread.
    return candidates.count() *
           static_cast<unsigned>(pages.size() + hugePages.size());
}

PredictivePolicy::VerifyEvent *
PredictivePolicy::acquireVerifyEvent()
{
    VerifyEvent *ev;
    if (!freeVerifyEvents_.empty()) {
        ev = freeVerifyEvents_.back();
        freeVerifyEvents_.pop_back();
    } else {
        verifyEvents_.push_back(std::make_unique<VerifyEvent>());
        ev = verifyEvents_.back().get();
        ev->policy = this;
    }
    ev->pages.clear();
    ev->hugePages.clear();
    ev->planValid = false;
    return ev;
}

void
PredictivePolicy::scheduleVerify(VerifyEvent *ev, Tick at)
{
    if (at < env_.queue->now())
        at = env_.queue->now();
    env_.queue->schedule(ev, at);
}

void
PredictivePolicy::planVerify(VerifyEvent *ev)
{
    // Read-only, possibly on a worker lane: probe each candidate and
    // snapshot its mutation sequence. The commit re-probes any core
    // whose TLB mutated since (the DeliveryEvent discipline,
    // DESIGN.md §8.4).
    ev->planStale.reset();
    ev->planSeqs.clear();
    ev->candidates.forEach([&](CoreId c) {
        ev->planSeqs.push_back(env_.cores->tlbOf(c).mutationSeq());
        if (coreHoldsStale(c, ev))
            ev->planStale.set(c);
    });
    ev->planValid = true;
}

void
PredictivePolicy::runVerify(VerifyEvent *ev)
{
    const Tick now = env_.queue->now();
    verifiesCtr_.inc();

    CpuMask stale;
    const bool planned = ev->planValid;
    ev->planValid = false;
    unsigned i = 0;
    ev->candidates.forEach([&](CoreId c) {
        bool holds;
        if (planned &&
            ev->planSeqs[i] == env_.cores->tlbOf(c).mutationSeq())
            holds = ev->planStale.test(c);
        else
            holds = coreHoldsStale(c, ev);
        ++i;
        if (holds)
            stale.set(c);
    });

    // Train on the confirmed outcome: predicted cores reported via
    // their acks, unpredicted sharers just surfaced as stale hits.
    CpuMask actual = ev->ackSharers;
    actual.orWith(stale);
    predictor_.train(ev->features, ev->candidates, actual);

    Duration wait = 0;
    if (!stale.empty()) {
        // Misprediction: a sharer we skipped still holds a freed
        // translation. Full-mask fallback to the entire candidate
        // set, charged to the owning core's background time.
        mispredictsCtr_.inc(stale.count());
        fallbackShootdownsCtr_.inc();
        if (TraceRecorder *t = tracer())
            t->instant("pred", "pred.mispredict", now, ev->owner,
                       ev->mm->id(), stale.count());
        wait = ipiShootdown(ev->mm, ev->owner, ev->candidates,
                            ev->startVpn, ev->endVpn, ev->npages, now);
        env_.cores->chargeStolen(
            ev->owner, static_cast<Duration>(ev->candidates.count()) *
                           cost().ipiSendBase);
    } else if (TraceRecorder *t = tracer()) {
        t->instant("pred", "pred.confirm", now, ev->owner,
                   ev->mm->id(), ev->predicted.count());
    }

    if (wait == 0) {
        // Clean (or empty) verification: coherence certain now.
        // Frees and the VA release are covered by this event's
        // declared writes.
        for (const auto &page : ev->pages)
            ev->mm->frames().put(page.second);
        for (const auto &page : ev->hugePages)
            ev->mm->frames().putHuge(page.second);
        if (ev->vaEnd > ev->vaStart)
            ev->mm->releaseHoldback(ev->vaStart, ev->vaEnd);
    } else {
        // Fallback in flight: release only when its last delivery
        // has invalidated everything.
        AddressSpace *mm = ev->mm;
        auto pages = std::move(ev->pages);
        auto huge = std::move(ev->hugePages);
        const Addr va_start = ev->vaStart;
        const Addr va_end = ev->vaEnd;
        EventFootprint fp;
        fp.writeGlobal(SimResource::FrameAllocator);
        fp.writeSpace(mm);
        env_.queue->scheduleLambda(
            now + wait, fp, [mm, pages, huge, va_start, va_end]() {
                for (const auto &page : pages)
                    mm->frames().put(page.second);
                for (const auto &page : huge)
                    mm->frames().putHuge(page.second);
                if (va_end > va_start)
                    mm->releaseHoldback(va_start, va_end);
            });
    }

    ev->pages.clear();
    ev->hugePages.clear();
    ev->mm = nullptr;
    freeVerifyEvents_.push_back(ev);
}

} // namespace latr
