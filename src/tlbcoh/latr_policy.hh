/**
 * @file
 * LATR: lazy TLB coherence — the paper's contribution (sections 3-4).
 *
 * Free operations (munmap/madvise) record a *LATR state* in the
 * initiating core's ring of 64 states instead of sending IPIs: the
 * unmapped pages and (for munmap) the virtual range are parked on
 * lazy-reclamation lists. Every core sweeps all rings at its
 * scheduler tick and at context switches, invalidates the matching
 * local TLB entries via plain memory reads of the states (no
 * interrupts), and clears its CPU-mask bit; the core clearing the
 * last bit deactivates the state. A background pass frees pages and
 * releases virtual ranges once a state has been inactive and at
 * least two tick periods (2 ms) old — ticks are unsynchronized, so
 * one period is not enough. When a ring is full, LATR falls back to
 * the IPI mechanism (section 8).
 *
 * AutoNUMA sampling (section 4.3) saves a migration state without
 * touching the PTE; the first sweeping core makes the PTE prot-none,
 * the rest only invalidate, and mmap_sem stays blocked until every
 * bit clears so the migrating fault cannot race lagging cores
 * (section 4.4).
 */

#ifndef LATR_TLBCOH_LATR_POLICY_HH_
#define LATR_TLBCOH_LATR_POLICY_HH_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "tlbcoh/policy.hh"

namespace latr
{

/** Lifecycle of a LATR state slot. */
enum class LatrStatePhase : std::uint8_t
{
    Empty,           ///< slot free
    Active,          ///< cores still need to invalidate
    PendingReclaim,  ///< all cores invalidated; pages await the 2 ms age
};

/** Why a state exists (the paper's flags field). */
enum class LatrStateKind : std::uint8_t
{
    Free,       ///< munmap/madvise
    Migration,  ///< AutoNUMA sample
};

/**
 * One entry of a per-core LATR ring: the paper's
 * {start; end; mm; flags; CPU list; active} record (68 B on the real
 * implementation), plus the lazy-reclamation payload that the kernel
 * patch keeps on mm_struct lists.
 */
struct LatrState
{
    LatrStatePhase phase = LatrStatePhase::Empty;
    LatrStateKind kind = LatrStateKind::Free;
    AddressSpace *mm = nullptr;
    Vpn startVpn = 0;
    Vpn endVpn = 0;
    CpuMask cpuMask;
    Tick savedAt = 0;
    CoreId owner = 0;
    /** Migration only: first sweeper already made the PTE prot-none. */
    bool pteCleared = false;
    /** Free only: frames to release at reclamation. */
    std::vector<std::pair<Vpn, Pfn>> pages;
    /**
     * Free only: 2 MiB mappings to release with putHuge() — the
     * huge-flag extension the paper's section 7 proposes.
     */
    std::vector<std::pair<Vpn, Pfn>> hugePages;
    /** Free only: virtual range to release (munmap). */
    Addr vaStart = 0;
    Addr vaEnd = 0;
};

/** The paper's lazy TLB-coherence mechanism. */
class LatrPolicy : public TlbCoherencePolicy
{
  public:
    explicit LatrPolicy(PolicyEnv env);

    const char *name() const override { return "LATR"; }
    PolicyKind kind() const override { return PolicyKind::Latr; }
    PolicyCapabilities capabilities() const override;
    StalenessContract stalenessContract() const override;

    Duration onFreePages(FreeOpContext ctx, Tick start) override;

    Duration onNumaSample(AddressSpace *mm, CoreId initiator, Vpn vpn,
                          Tick start) override;

    Tick numaSampleReadyAt(AddressSpace *mm, Vpn vpn) const override;

    void onSchedulerTick(CoreId core, Tick now) override;
    void onContextSwitch(CoreId core, Tick now) override;

    /// @name Parallel engine
    /// @{

    /** The sweep plan reads the publication state. */
    void addTickFootprint(CoreId core, EventFootprint &fp) const override;

    /**
     * Pre-scan active_ for the states @p core's sweep will match:
     * the read-only 80% of the sweep, hoisted onto worker threads.
     * The commit revalidates each candidate (phase and mask bit)
     * before acting, which makes the planned visit provably equal to
     * a fresh scan — see DESIGN.md §8 for the argument.
     */
    void planSchedulerTick(CoreId core, Tick tick) override;

    bool tickPlanIsHeavy(CoreId core) const override;

    /// @}

    /// @name Introspection (tests, benches, memory accounting)
    /// @{

    /** States currently active across all rings. */
    std::size_t activeStates() const { return active_.size(); }

    /** States awaiting reclamation. */
    std::size_t pendingReclaim() const { return pending_.size(); }

    /** Bytes of physical memory currently parked on lazy lists. */
    std::uint64_t lazyBytes() const;

    /** Direct ring access for white-box tests. */
    const std::vector<LatrState> &ringOf(CoreId core) const;

    /**
     * The sweep-elision summary mask. Invariant: a superset of the
     * union of every active state's cpuMask, so a clear bit proves
     * the core's sweep would match nothing.
     */
    const CpuMask &pendingSweepers() const { return pendingSweepers_; }

    /// @}

  private:
    /**
     * One scheduled background reclamation pass, pooled by the
     * policy (acquire on schedule, recycle after commit). Its
     * compute() phase partitions pending_ — the cache-missing walk
     * over scattered ring slots that dominates the pass — into the
     * reclaim/keep lists the commit will apply. The plan is
     * validated by pendingRemovalSeq_: only a reclaim pass ever
     * removes from (or reorders) pending_, every other mutation is a
     * push_back, and a pending state's savedAt/phase are frozen
     * until reclaimed — so an unchanged seq proves the planned
     * partition over the first pendingSize entries is *exactly* what
     * a fresh scan would produce, and entries appended since the
     * plan are partitioned fresh at commit. No epoch needed: the
     * validator is bumped on the only mutation path (DESIGN.md §8.4).
     */
    class ReclaimPassEvent final : public Event
    {
      public:
        void process() override;
        bool footprint(EventFootprint &fp) const override;
        void compute() override;
        unsigned computeWeight() const override;
        const char *name() const override { return "latr-reclaim"; }

      private:
        friend class LatrPolicy;

        LatrPolicy *policy = nullptr;
        /** The pass's reclamation cutoff (the lambda's old arg). */
        Tick eligibleAt = 0;
        bool planValid = false;
        /** pendingRemovalSeq_ snapshot the plan was taken under. */
        std::uint64_t removalSeq = 0;
        /** pending_.size() at plan time: later entries are appends. */
        std::size_t pendingSize = 0;
        /** Planned partition of pending_[0..pendingSize), in order. */
        std::vector<LatrState *> reclaim;
        std::vector<LatrState *> keep;
    };

    /** Find an Empty slot in @p core's ring, or nullptr. */
    LatrState *allocSlot(CoreId core);

    /** The per-core sweep shared by ticks and context switches. */
    void sweep(CoreId core, Tick now);

    /** Deactivate @p state (last CPU bit cleared) at @p now. */
    void deactivate(LatrState *state, Tick now);

    /** Schedule a one-shot reclamation pass for @p state's age. */
    void scheduleReclaimPass(Tick eligible_at);

    /** ReclaimPassEvent::compute(): build @p ev's reclaim/keep plan. */
    void planReclaimPass(ReclaimPassEvent *ev);

    /**
     * ReclaimPassEvent::process(): free everything eligible at the
     * pass cutoff — via the validated plan or a fresh scan — then
     * recycle @p ev.
     */
    void runReclaimPass(ReclaimPassEvent *ev);

    /** Release one state's pages/VA and empty the slot. */
    void reclaimState(LatrState *state);

    /** Sweep slack: see onNumaSample's mmap_sem blocking. */
    Duration migrationBlockSlack() const { return 5 * kUsec; }

    /** The sweep's LLC state-block walk (matches + 1 lines). */
    void touchSweepLlc(CoreId core, unsigned matches);

    /**
     * One core's speculative sweep plan, filled by
     * planSchedulerTick() (worker thread) and consumed by the next
     * sweep() commit on that core. Valid only for the exact tick it
     * was planned for and while activeSeq_ is unchanged, i.e. while
     * no active_ entry has been removed or reordered since the plan
     * was taken. Publishes *append* to active_, so a valid plan is
     * reconciled at commit by additionally scanning the entries past
     * activeSize — together with the per-candidate phase/mask
     * re-checks that makes the planned visit exactly equal to a
     * fresh scan (DESIGN.md §8.4), even when earlier batch members
     * published new states. Anything else falls back to the fresh
     * active_ scan, which is always correct. The candidates vector
     * is reused tick to tick, so steady state allocates nothing.
     */
    struct SweepPlan
    {
        bool valid = false;
        Tick forTick = 0;
        /** activeSeq_ snapshot the plan was computed under. */
        std::uint64_t activeSeq = 0;
        /** active_.size() at plan time: later entries are appends. */
        std::size_t activeSize = 0;
        std::vector<LatrState *> candidates;
    };

    std::vector<std::vector<LatrState>> rings_; // per core
    std::vector<LatrState *> active_;
    std::vector<LatrState *> pending_;

    /**
     * Bumped whenever entries are *removed* from active_ (sweep
     * compaction, time-only reclamation) — appends do not bump it.
     * Sweep plans snapshot it; a match proves every entry the plan
     * saw still sits at the same index, so the plan plus an
     * appended-tail scan covers exactly what a fresh scan would.
     */
    std::uint64_t activeSeq_ = 0;

    /** Same discipline for pending_: bumped by reclaiming passes. */
    std::uint64_t pendingRemovalSeq_ = 0;

    /** Pooled pass events (owners) and the recycled free list. */
    std::vector<std::unique_ptr<ReclaimPassEvent>> reclaimEvents_;
    std::vector<ReclaimPassEvent *> freeReclaimEvents_;
    /** Commit-phase scratch for the new pending_ (reused). */
    std::vector<LatrState *> reclaimScratch_;

    /**
     * Cores some active state may still address: set (ORed) whenever
     * a state publishes its cpuMask, cleared for a core only right
     * after that core's full sweep scanned every active state. Never
     * cleared on deactivation, so the mask can over-approximate —
     * which only costs one redundant full scan, never correctness.
     * On 120-core runs where most cores' sweeps match nothing, a
     * clear bit lets sweep() skip the O(active_) scan while charging
     * exactly what the naive empty scan charges.
     */
    CpuMask pendingSweepers_;
    /** Elision enabled (config.noFastpath forces the naive scan). */
    const bool fastpath_;
    Counter &sweepsCtr_;
    Counter &sweepMatchesCtr_;
    Counter &statesSavedCtr_;
    Counter &fallbackIpisCtr_;
    Counter &migrationUnmapsCtr_;
    Counter &reclaimedPagesCtr_;
    /**
     * Per-core ring-allocation cursors. States deactivate roughly in
     * publication order, so resuming the Empty-slot search where the
     * last allocation left off makes allocSlot() amortized O(1)
     * instead of a scan over every in-flight slot.
     */
    std::vector<unsigned> allocCursor_;
    /** Per-core sweep plans (parallel engine; idle otherwise). */
    std::vector<SweepPlan> plans_;
};

} // namespace latr

#endif // LATR_TLBCOH_LATR_POLICY_HH_
