#include "tlbcoh/invariant.hh"

#include <sstream>

#include "sim/logging.hh"

namespace latr
{

InvariantChecker::InvariantChecker(bool strict)
    : strict_(strict)
{
}

void
InvariantChecker::violation(const char *what, Pfn pfn)
{
    ++violations_;
    if (first_.empty()) {
        std::ostringstream os;
        os << what << " (pfn " << pfn << ", " << tlbRefs(pfn)
           << " live TLB refs)";
        first_ = os.str();
    }
    if (strict_)
        panic("reuse invariant violated: %s", first_.c_str());
}

void
InvariantChecker::onTlbInsert(CoreId, Vpn, Pfn pfn, Pcid)
{
    ++refs_[pfn];
    ++entries_;
}

void
InvariantChecker::onTlbRemove(CoreId, Vpn, Pfn pfn, Pcid)
{
    auto it = refs_.find(pfn);
    if (it == refs_.end() || it->second == 0)
        panic("TLB remove of untracked pfn %llu",
              static_cast<unsigned long long>(pfn));
    if (--it->second == 0)
        refs_.erase(it);
    --entries_;
}

void
InvariantChecker::onFrameAlloc(Pfn pfn)
{
    if (tlbRefs(pfn) != 0)
        violation("frame allocated while still mapped in a TLB", pfn);
}

void
InvariantChecker::onFrameFree(Pfn pfn)
{
    if (tlbRefs(pfn) != 0)
        violation("frame freed while still mapped in a TLB", pfn);
}

unsigned
InvariantChecker::tlbRefs(Pfn pfn) const
{
    auto it = refs_.find(pfn);
    return it == refs_.end() ? 0 : it->second;
}

void
InvariantChecker::reset()
{
    refs_.clear();
    entries_ = 0;
    violations_ = 0;
    first_.clear();
}

} // namespace latr
