/**
 * @file
 * Barrelfish-style translation coherence (Baumann et al., SOSP'09):
 * shootdown requests travel over per-core message channels (cache
 * lines) instead of IPIs, so remote cores take no interrupt — they
 * observe the message at their next kernel poll point. The initiator
 * still waits for every acknowledgment, so the mechanism remains
 * synchronous (the paper's table 2 row).
 */

#ifndef LATR_TLBCOH_BARRELFISH_POLICY_HH_
#define LATR_TLBCOH_BARRELFISH_POLICY_HH_

#include "sim/rng.hh"
#include "tlbcoh/policy.hh"

namespace latr
{

/** Message-passing shootdowns without remote interrupts. */
class BarrelfishPolicy : public TlbCoherencePolicy
{
  public:
    explicit BarrelfishPolicy(PolicyEnv env);

    const char *name() const override { return "Barrelfish"; }
    PolicyKind kind() const override { return PolicyKind::Barrelfish; }
    PolicyCapabilities capabilities() const override;

    Duration onFreePages(FreeOpContext ctx, Tick start) override;

    Duration onNumaSample(AddressSpace *mm, CoreId initiator, Vpn vpn,
                          Tick start) override;

    Duration onSyncShootdown(AddressSpace *mm, CoreId initiator,
                             Vpn start_vpn, Vpn end_vpn,
                             std::uint64_t npages, Tick start) override;

  private:
    /**
     * Message-based equivalent of ipiShootdown(): write one channel
     * line per target, each target applies the invalidation at its
     * next poll point (uniform delay in [0, bfPollWindow]), ACKs
     * return as cache-line transfers, initiator waits for all.
     */
    Duration messageShootdown(AddressSpace *mm, CoreId initiator,
                              const CpuMask &targets, Vpn start_vpn,
                              Vpn end_vpn, std::uint64_t npages,
                              Tick start);

    Rng rng_;
};

} // namespace latr

#endif // LATR_TLBCOH_BARRELFISH_POLICY_HH_
