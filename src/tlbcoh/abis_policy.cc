#include "tlbcoh/abis_policy.hh"

#include "sim/logging.hh"
#include "trace/trace.hh"

namespace latr
{

AbisPolicy::AbisPolicy(PolicyEnv env)
    : TlbCoherencePolicy(std::move(env)),
      shootdownsAvoidedCtr_(
          env_.stats->counter("abis.shootdowns_avoided"))
{
}

PolicyCapabilities
AbisPolicy::capabilities() const
{
    PolicyCapabilities caps;
    caps.asynchronous = false;
    caps.nonIpiBased = false;
    // ABIS still interrupts the (reduced set of) sharing cores.
    caps.noRemoteCoreInvolvement = false;
    caps.noHardwareChanges = true;
    caps.lazyFreeCapable = false;
    caps.lazyMigrationCapable = false;
    return caps;
}

Duration
AbisPolicy::minorFaultOverhead() const
{
    // Maintaining the per-page sharing set (uncached access-bit
    // manipulation) costs extra on every fault — the overhead that
    // drags ABIS below Linux at low core counts.
    return cost().abisPerFault;
}

void
AbisPolicy::offerSharerHarvest(AddressSpace *mm, Vpn start_vpn,
                               Vpn end_vpn, const CpuMask &mask)
{
    offer_.armed = true;
    offer_.mm = mm;
    offer_.startVpn = start_vpn;
    offer_.endVpn = end_vpn;
    offer_.mask = mask;
}

Duration
AbisPolicy::onFreePages(FreeOpContext ctx, Tick start)
{
    shootdownsCtr_.inc();

    // Harvest access bits: union of each page's sharer set, clipped
    // to the cores where the mm is still resident. A precomputed
    // offer substitutes for the walk only when the operation's actual
    // page set is the single 4 KiB page the offer covered — any other
    // shape (huge pages, already-unmapped pages dropping out) means
    // the fresh union could differ, so the offer is discarded.
    const bool offered =
        offer_.armed && offer_.mm == ctx.mm &&
        offer_.startVpn == ctx.startVpn &&
        offer_.endVpn == ctx.endVpn && ctx.hugePages.empty() &&
        ctx.pages.size() == 1 && ctx.pages[0].first == ctx.startVpn;
    CpuMask sharers;
    if (offered) {
        sharers = offer_.mask;
    } else {
        for (const auto &page : ctx.pages)
            sharers.orWith(ctx.mm->sharersOf(page.first));
        for (const auto &page : ctx.hugePages)
            sharers.orWith(ctx.mm->sharersOf(page.first));
    }
    offer_.armed = false; // one-shot, hit or miss
    // Clipping and the initiator clear depend on commit-time state;
    // they run fresh even on an offer hit.
    sharers.andWith(ctx.mm->residencyMask());
    sharers.clear(ctx.initiator);

    const std::uint64_t npages =
        ctx.pages.size() + ctx.hugePages.size() * kHugePageSpan;
    const Duration scan =
        cost().abisPerPageScan *
        static_cast<Duration>(ctx.pages.size() + ctx.hugePages.size());
    if (TraceRecorder *t = tracer()) {
        const SpanId span =
            t->beginSpan("abis", "abis.sharer_scan", start,
                         ctx.initiator, ctx.mm->id(), npages);
        t->endSpan(span, start + scan);
    }

    Duration wait = 0;
    if (!sharers.empty() && npages > 0) {
        wait = ipiShootdown(ctx.mm, ctx.initiator, sharers,
                            ctx.startVpn, ctx.endVpn, npages,
                            start + scan);
    } else {
        shootdownsAvoidedCtr_.inc();
        if (TraceRecorder *t = tracer())
            t->instant("abis", "abis.shootdown_avoided", start + scan,
                       ctx.initiator, ctx.mm->id(), npages);
    }

    const Tick free_at = start + scan + wait;
    if (!ctx.pages.empty() || !ctx.hugePages.empty()) {
        AddressSpace *mm = ctx.mm;
        auto pages = std::move(ctx.pages);
        auto huge = std::move(ctx.hugePages);
        EventFootprint fp;
        fp.writeGlobal(SimResource::FrameAllocator);
        env_.queue->scheduleLambda(free_at, fp, [mm, pages, huge]() {
            for (const auto &page : pages)
                mm->frames().put(page.second);
            for (const auto &page : huge)
                mm->frames().putHuge(page.second);
        });
    }
    return scan + wait;
}

Duration
AbisPolicy::onNumaSample(AddressSpace *mm, CoreId initiator, Vpn vpn,
                         Tick start)
{
    Pte *pte = mm->pageTable().find(vpn);
    if (!pte)
        return 0;

    shootdownsCtr_.inc();
    numaSamplesCtr_.inc();

    pte->flags |= kPteProtNone;
    Duration local = cost().pteClearPerPage + cost().invlpg +
                     cost().abisPerPageScan;
    env_.cores->tlbOf(initiator).invalidatePage(vpn, mm->pcid());

    CpuMask sharers = mm->sharersOf(vpn);
    sharers.andWith(mm->residencyMask());
    sharers.clear(initiator);
    Duration wait = 0;
    if (!sharers.empty()) {
        wait = ipiShootdown(mm, initiator, sharers, vpn, vpn, 1,
                            start + local);
    } else {
        shootdownsAvoidedCtr_.inc();
    }
    return local + wait;
}

} // namespace latr
