#include "tlbcoh/sharer_predictor.hh"

namespace latr
{

namespace
{

/** SplitMix64-style finalizer: cheap, well-distributed, stateless. */
std::uint32_t
hashOf(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::uint32_t>(x >> 32);
}

} // namespace

SharerPredictor::SharerPredictor()
    : weights_(kTables * kTableSize, 0)
{
}

void
SharerPredictor::indicesOf(const SharerFeatures &f, CoreId candidate,
                           std::uint32_t idx[kTables]) const
{
    // Every hash folds the candidate in: the tables hold one
    // perceptron per core, contexted by the op's features.
    const std::uint64_t c = candidate;
    idx[0] = hashOf(f.mm * 0x100000001b3ULL ^ (c << 32));
    idx[1] = hashOf(f.vmaId ^ (c << 40) ^ 0xA5A5ULL);
    idx[2] = hashOf((static_cast<std::uint64_t>(f.initiator) << 8) ^
                    (c << 24) ^ 0x5A5AULL);
    idx[3] = hashOf(f.accessorWords[0] ^
                    (f.accessorWords[1] * 0x9e3779b97f4a7c15ULL) ^ c);
    // Membership is the strong signal: did this candidate access any
    // of the freed pages since they were mapped? A TLB entry can only
    // exist after a fault, and faults record accessors, so the
    // accessor mask is a superset of the true sharer set — this
    // feature alone can reach perfect recall.
    const unsigned member =
        (f.accessorWords[candidate >> 6] >> (candidate & 63)) & 1;
    idx[4] = (static_cast<std::uint32_t>(candidate) << 1) | member;
    for (unsigned t = 0; t < kTables; ++t)
        idx[t] = (idx[t] & (kTableSize - 1)) + t * kTableSize;
}

int
SharerPredictor::weightSum(const SharerFeatures &f,
                           CoreId candidate) const
{
    std::uint32_t idx[kTables];
    indicesOf(f, candidate, idx);
    int sum = 0;
    for (unsigned t = 0; t < kTables; ++t)
        sum += weights_[idx[t]];
    return sum;
}

CpuMask
SharerPredictor::predict(const SharerFeatures &f,
                         const CpuMask &candidates) const
{
    CpuMask predicted;
    candidates.forEach([&](CoreId c) {
        if (weightSum(f, c) >= 0)
            predicted.set(c);
    });
    return predicted;
}

void
SharerPredictor::train(const SharerFeatures &f,
                       const CpuMask &candidates, const CpuMask &actual)
{
    candidates.forEach([&](CoreId c) {
        const bool sharer = actual.test(c);
        const int sum = weightSum(f, c);
        const bool predicted = sum >= 0;
        if (predicted == sharer && sum >= kTrainMargin)
            return; // confidently right: leave the weights alone
        if (predicted == sharer && sum < -kTrainMargin)
            return;
        std::uint32_t idx[kTables];
        indicesOf(f, c, idx);
        for (unsigned t = 0; t < kTables; ++t) {
            std::int8_t &w = weights_[idx[t]];
            if (sharer && w < kWeightMax)
                ++w;
            else if (!sharer && w > -(kWeightMax + 1))
                --w;
        }
    });
}

} // namespace latr
