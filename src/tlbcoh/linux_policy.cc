#include "tlbcoh/linux_policy.hh"

#include "sim/logging.hh"

namespace latr
{

LinuxPolicy::LinuxPolicy(PolicyEnv env)
    : TlbCoherencePolicy(std::move(env))
{
}

PolicyCapabilities
LinuxPolicy::capabilities() const
{
    PolicyCapabilities caps;
    caps.asynchronous = false;
    caps.nonIpiBased = false;
    caps.noRemoteCoreInvolvement = false;
    caps.noHardwareChanges = true;
    caps.lazyFreeCapable = false;
    caps.lazyMigrationCapable = false;
    return caps;
}

Duration
LinuxPolicy::onFreePages(FreeOpContext ctx, Tick start)
{
    shootdownsCtr_.inc();

    const std::uint64_t npages =
        ctx.pages.size() + ctx.hugePages.size() * kHugePageSpan;
    CpuMask targets = remoteTargets(ctx.mm, ctx.initiator);

    Duration wait = 0;
    if (!targets.empty() && npages > 0) {
        wait = ipiShootdown(ctx.mm, ctx.initiator, targets,
                            ctx.startVpn, ctx.endVpn, npages, start);
    }

    // Pages return to the allocator once the shootdown completes;
    // the remote invalidations were scheduled before the last ACK,
    // so the reuse invariant holds by construction.
    const Tick free_at = start + wait;
    if (!ctx.pages.empty() || !ctx.hugePages.empty()) {
        AddressSpace *mm = ctx.mm;
        auto pages = std::move(ctx.pages);
        auto huge = std::move(ctx.hugePages);
        EventFootprint fp;
        fp.writeGlobal(SimResource::FrameAllocator);
        env_.queue->scheduleLambda(free_at, fp, [mm, pages, huge]() {
            for (const auto &page : pages)
                mm->frames().put(page.second);
            for (const auto &page : huge)
                mm->frames().putHuge(page.second);
        });
    }
    // Virtual addresses are reusable immediately in Linux: the
    // munmap does not return before coherence is reached.
    return wait;
}

Duration
LinuxPolicy::onNumaSample(AddressSpace *mm, CoreId initiator, Vpn vpn,
                          Tick start)
{
    Pte *pte = mm->pageTable().find(vpn);
    if (!pte)
        return 0; // raced with an unmap; nothing to sample

    shootdownsCtr_.inc();
    numaSamplesCtr_.inc();

    // change_prot_numa: make the PTE prot-none, invalidate locally,
    // then shoot down everywhere — the cost the paper's figure 3a
    // shows on the AutoNUMA critical path.
    pte->flags |= kPteProtNone;
    Duration local = cost().pteClearPerPage + cost().invlpg;
    env_.cores->tlbOf(initiator).invalidatePage(vpn, mm->pcid());

    CpuMask targets = remoteTargets(mm, initiator);
    Duration wait = ipiShootdown(mm, initiator, targets, vpn, vpn, 1,
                                 start + local);
    return local + wait;
}

} // namespace latr
