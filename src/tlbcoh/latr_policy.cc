#include "tlbcoh/latr_policy.hh"

#include <algorithm>
#include <cassert>

#include "sim/logging.hh"
#include "trace/trace.hh"

namespace latr
{

LatrPolicy::LatrPolicy(PolicyEnv env)
    : TlbCoherencePolicy(std::move(env)),
      fastpath_(!env_.config->noFastpath),
      sweepsCtr_(env_.stats->counter("latr.sweeps")),
      sweepMatchesCtr_(env_.stats->counter("latr.sweep_matches")),
      statesSavedCtr_(env_.stats->counter("latr.states_saved")),
      fallbackIpisCtr_(env_.stats->counter("latr.fallback_ipis")),
      migrationUnmapsCtr_(
          env_.stats->counter("latr.migration_unmaps_completed")),
      reclaimedPagesCtr_(env_.stats->counter("latr.reclaimed_pages"))
{
    rings_.resize(env_.cores->coreCount());
    for (auto &ring : rings_)
        ring.resize(env_.config->latrStatesPerCore);
    allocCursor_.assign(rings_.size(), 0);
    plans_.resize(rings_.size());
}

PolicyCapabilities
LatrPolicy::capabilities() const
{
    PolicyCapabilities caps;
    caps.asynchronous = true;
    caps.nonIpiBased = true;
    caps.noRemoteCoreInvolvement = true;
    caps.noHardwareChanges = true;
    caps.lazyFreeCapable = true;
    caps.lazyMigrationCapable = true;
    return caps;
}

LatrState *
LatrPolicy::allocSlot(CoreId core)
{
    std::vector<LatrState> &ring = rings_[core];
    unsigned &cursor = allocCursor_[core];
    for (std::size_t n = 0; n < ring.size(); ++n) {
        const std::size_t at = (cursor + n) % ring.size();
        if (ring[at].phase == LatrStatePhase::Empty) {
            cursor = static_cast<unsigned>((at + 1) % ring.size());
            return &ring[at];
        }
    }
    return nullptr;
}

const std::vector<LatrState> &
LatrPolicy::ringOf(CoreId core) const
{
    // Per-sweep hot path: unchecked indexing with a debug assert,
    // per the allocation-free hot-path rules. Core ids come from the
    // topology the rings were sized for.
    assert(core < rings_.size());
    return rings_[core];
}

std::uint64_t
LatrPolicy::lazyBytes() const
{
    std::uint64_t pages = 0;
    for (const LatrState *s : active_)
        pages += s->pages.size() + s->hugePages.size() * kHugePageSpan;
    for (const LatrState *s : pending_)
        pages += s->pages.size() + s->hugePages.size() * kHugePageSpan;
    return pages * kPageSize;
}

Duration
LatrPolicy::onFreePages(FreeOpContext ctx, Tick start)
{
    shootdownsCtr_.inc();

    // The paper's section 7 override: callers that need immediate
    // reuse semantics (use-after-free detectors) get the IPI path.
    LatrState *slot =
        ctx.syncRequested ? nullptr : allocSlot(ctx.initiator);

    if (!slot) {
        // Ring full (or sync requested): fall back to IPIs
        // (section 8), behaving exactly like the Linux baseline.
        if (!ctx.syncRequested) {
            fallbackIpisCtr_.inc();
            if (TraceRecorder *t = tracer())
                t->instant("latr", "latr.ring_full_fallback", start,
                           ctx.initiator, ctx.mm->id());
        }
        CpuMask targets = remoteTargets(ctx.mm, ctx.initiator);
        const std::uint64_t npages =
            ctx.pages.size() + ctx.hugePages.size() * kHugePageSpan;
        Duration wait = 0;
        if (!targets.empty() && npages > 0) {
            wait = ipiShootdown(ctx.mm, ctx.initiator, targets,
                                ctx.startVpn, ctx.endVpn, npages,
                                start);
        }
        if (!ctx.pages.empty() || !ctx.hugePages.empty()) {
            AddressSpace *mm = ctx.mm;
            auto pages = std::move(ctx.pages);
            auto huge = std::move(ctx.hugePages);
            EventFootprint fp;
            fp.writeGlobal(SimResource::FrameAllocator);
            env_.queue->scheduleLambda(
                start + wait, fp, [mm, pages, huge]() {
                    for (const auto &page : pages)
                        mm->frames().put(page.second);
                    for (const auto &page : huge)
                        mm->frames().putHuge(page.second);
                });
        }
        return wait;
    }

    // Save the LATR state: one ring entry written with ordinary
    // stores — no IPI, no wait (figure 2b).
    slot->phase = LatrStatePhase::Active;
    slot->kind = LatrStateKind::Free;
    slot->mm = ctx.mm;
    slot->startVpn = ctx.startVpn;
    slot->endVpn = ctx.endVpn;
    slot->cpuMask = remoteTargets(ctx.mm, ctx.initiator);
    slot->savedAt = start;
    slot->owner = ctx.initiator;
    slot->pteCleared = true; // free ops clear PTEs synchronously
    slot->pages = std::move(ctx.pages);
    slot->hugePages = std::move(ctx.hugePages);
    slot->vaStart = ctx.vaStart;
    slot->vaEnd = ctx.vaEnd;

    // Park the virtual range so mmap() cannot hand it out before
    // the TLB entries are gone (the reuse invariant, section 4.2).
    if (slot->vaEnd > slot->vaStart)
        ctx.mm->holdbackRange(slot->vaStart, slot->vaEnd);

    statesSavedCtr_.inc();
    if (TraceRecorder *t = tracer()) {
        const SpanId span = t->beginSpan(
            "latr", "latr.state_save", start, ctx.initiator,
            ctx.mm->id(),
            slot->pages.size() + slot->hugePages.size());
        t->endSpan(span, start + cost().latrStateSave);
    }

    if (slot->cpuMask.empty()) {
        // No remote core can hold an entry; skip straight to the
        // aging stage.
        deactivate(slot, start);
    } else {
        active_.push_back(slot);
        pendingSweepers_.orWith(slot->cpuMask);
    }
    scheduleReclaimPass(slot->savedAt + cost().latrReclaimDelay + 1);
    if (TraceRecorder *t = tracer())
        t->counter("latr", "latr.lazy_bytes", start,
                   static_cast<double>(lazyBytes()));

    return cost().latrStateSave;
}

Duration
LatrPolicy::onNumaSample(AddressSpace *mm, CoreId initiator, Vpn vpn,
                         Tick start)
{
    Pte *pte = mm->pageTable().find(vpn);
    if (!pte)
        return 0; // raced with an unmap

    LatrState *slot = allocSlot(initiator);
    if (!slot) {
        // Ring full: sample the Linux way.
        fallbackIpisCtr_.inc();
        pte->flags |= kPteProtNone;
        Duration local = cost().pteClearPerPage + cost().invlpg;
        env_.cores->tlbOf(initiator).invalidatePage(vpn, mm->pcid());
        CpuMask targets = remoteTargets(mm, initiator);
        return local + ipiShootdown(mm, initiator, targets, vpn, vpn,
                                    1, start + local);
    }

    shootdownsCtr_.inc();
    numaSamplesCtr_.inc();
    statesSavedCtr_.inc();
    if (TraceRecorder *t = tracer()) {
        const SpanId span = t->beginSpan(
            "latr", "latr.migration_state_save", start, initiator,
            mm->id(), vpn);
        t->endSpan(span, start + cost().latrStateSave);
    }

    slot->phase = LatrStatePhase::Active;
    slot->kind = LatrStateKind::Migration;
    slot->mm = mm;
    slot->startVpn = vpn;
    slot->endVpn = vpn;
    // Migration states include every resident core — the initiator
    // too, since the sampling daemon did not invalidate anything
    // (figure 3b).
    slot->cpuMask = mm->residencyMask();
    slot->savedAt = start;
    slot->owner = initiator;
    slot->pteCleared = false;
    slot->pages.clear();
    slot->hugePages.clear();
    slot->vaStart = 0;
    slot->vaEnd = 0;

    if (slot->cpuMask.empty()) {
        // Nothing resident anywhere: clear the PTE immediately.
        pte->flags |= kPteProtNone;
        slot->phase = LatrStatePhase::Empty;
    } else {
        active_.push_back(slot);
        pendingSweepers_.orWith(slot->cpuMask);
        // The migrating fault on this page is gated (via
        // numaSampleReadyAt) until every core swept; each masked
        // core sweeps at latest at its next tick, so
        // start + tickInterval (+ slack) is a sound upper bound
        // (section 4.4). Unrelated faults are NOT blocked — in
        // Linux both the scan and the fault path hold mmap_sem for
        // read, so they coexist.
    }
    return cost().latrStateSave;
}

Tick
LatrPolicy::numaSampleReadyAt(AddressSpace *mm, Vpn vpn) const
{
    Tick ready = 0;
    for (const LatrState *state : active_) {
        if (state->phase != LatrStatePhase::Active)
            continue;
        if (state->kind != LatrStateKind::Migration)
            continue;
        if (state->mm != mm || state->startVpn != vpn)
            continue;
        ready = std::max(ready, state->savedAt + cost().tickInterval +
                                    migrationBlockSlack());
    }
    return ready;
}

void
LatrPolicy::touchSweepLlc(CoreId core, unsigned matches)
{
    // The sweep reads every core's state block through the cache
    // hierarchy; the footprint is tiny and hot (table 4's point).
    // With the section 7 scratchpad, the states bypass the LLC
    // entirely. Even a matchless sweep touches the first line — the
    // ring heads must be read to discover there is nothing to do.
    const NodeId node = env_.topo->nodeOf(core);
    if (!env_.config->latrScratchpad && node < env_.llcs.size() &&
        env_.llcs[node]) {
        const std::uint64_t base = 0xE000'0000'0000ULL;
        for (unsigned i = 0; i <= matches; ++i)
            env_.llcs[node]->access(base + i,
                                    CacheAccessOrigin::LatrSweep);
    }
}

void
LatrPolicy::sweep(CoreId core, Tick now)
{
    // Consume this core's speculative plan one-shot: a plan is valid
    // only for the exact tick it was computed for and only while no
    // active_ entry has been removed since it was taken (activeSeq_).
    // States *published* since the plan are appends past the plan's
    // activeSize and are reconciled below, so a plan survives even
    // when earlier commits in its batch saved new states. A stale
    // plan is simply dropped — the fresh scan below is always
    // correct, the plan is purely an acceleration.
    SweepPlan &plan = plans_[core];
    const bool use_plan = plan.valid && plan.forTick == now &&
                          plan.activeSeq == activeSeq_;
    plan.valid = false;

    sweepsCtr_.inc();

    if (fastpath_ && !pendingSweepers_.test(core)) {
        // Elided sweep: no active state addresses this core, so the
        // scan would match nothing. Charge and model exactly what
        // the naive matchless scan does — latrSweepFixed of stolen
        // time and one LLC line — and skip only the host-side walk
        // of active_.
        env_.cores->chargeStolen(core, cost().latrSweepFixed);
        touchSweepLlc(core, 0);
        return;
    }

    Duration spent = cost().latrSweepFixed;
    unsigned matches = 0;
    Tlb &tlb = env_.cores->tlbOf(core);

    // One candidate's visit — identical whether the candidate came
    // from the fresh active_ scan or from a validated plan. The
    // leading phase/mask re-checks are what make the plan safe:
    // earlier same-batch commits may have deactivated a candidate or
    // (for migration states) already cleared its PTE, and the visit
    // re-reads both.
    auto visit = [&](LatrState *state) {
        if (state->phase != LatrStatePhase::Active)
            return;
        if (!state->cpuMask.test(core))
            return;
        ++matches;

        if (state->kind == LatrStateKind::Migration &&
            !state->pteCleared) {
            // First sweeping core performs the deferred page-table
            // unmap (figure 3b's "Clear PTE").
            Pte *pte = state->mm->pageTable().find(state->startVpn);
            if (pte)
                pte->flags |= kPteProtNone;
            state->pteCleared = true;
            spent += cost().pteClearPerPage;
        }

        const std::uint64_t npages = state->endVpn - state->startVpn + 1;
        if (npages >= cost().fullFlushThreshold) {
            tlb.flushAll();
            // A fully flushed core holds nothing of this mm anymore;
            // keep the residency mask honest (as the IPI path does).
            if (tlb.size() == 0)
                state->mm->residencyMask().clear(core);
        } else {
            tlb.invalidateRange(state->startVpn, state->endVpn,
                                state->mm->pcid());
        }
        spent += cost().localInvalidateCost(npages);

        state->cpuMask.clear(core);
        if (state->cpuMask.empty())
            deactivate(state, now);
    };

    if (use_plan) {
        // The plan is the subsequence of active_[0..activeSize) that
        // passed the phase/mask filter at plan time. No removal
        // intervened (activeSeq_ check) and the filter is monotone
        // for existing entries — phases only leave Active and mask
        // bits only clear, both re-checked by the visit — so over
        // that prefix the planned visit equals a fresh scan. Entries
        // past activeSize were published since the plan (possibly by
        // earlier commits in this very batch) and are scanned fresh,
        // in order, exactly as the fresh path would reach them.
        for (LatrState *state : plan.candidates)
            visit(state);
        for (std::size_t i = plan.activeSize; i < active_.size(); ++i)
            visit(active_[i]);
    } else {
        for (LatrState *state : active_)
            visit(state);
    }

    // Compact: deactivated states left the Active phase. Removals
    // shift indices, so outstanding plans die (activeSeq_).
    const std::size_t live = active_.size();
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [](LatrState *s) {
                                     return s->phase !=
                                            LatrStatePhase::Active;
                                 }),
                  active_.end());
    if (active_.size() != live)
        ++activeSeq_;

    spent += matches * cost().latrSweepPerMatch;
    sweepMatchesCtr_.inc(matches);
    env_.cores->chargeStolen(core, spent);
    if (TraceRecorder *t = tracer()) {
        // The per-tick state sweep (figure 2b's remote half). Idle
        // sweeps (no matches) are elided to keep the trace readable.
        if (matches > 0) {
            const SpanId span = t->beginSpan("latr", "latr.sweep",
                                             now, core, kTraceNoMm,
                                             matches);
            t->endSpan(span, now + spent);
        }
    }

    touchSweepLlc(core, matches);

    // This sweep visited every active state addressing this core
    // (the fresh scan trivially; a validated plan by the epoch
    // argument) and cleared the core's bit from each match, so
    // nothing addresses the core anymore: drop it from the summary
    // mask until the next publish.
    pendingSweepers_.clear(core);
}

void
LatrPolicy::deactivate(LatrState *state, Tick now)
{
    if (state->kind == LatrStateKind::Migration) {
        // Nothing to reclaim; the gating bound set at save time
        // already covers this tick. The slot is immediately
        // reusable.
        state->phase = LatrStatePhase::Empty;
        migrationUnmapsCtr_.inc();
        return;
    }
    state->phase = LatrStatePhase::PendingReclaim;
    pending_.push_back(state);
    // The save-time pass at savedAt + delay + 1 covers any state
    // that deactivates within the aging window: by that tick the
    // state is pending and old enough. Only a core that swept very
    // late — at or after the tick that pass runs, so it may already
    // have missed this state — needs a fresh pass.
    if (now > state->savedAt + cost().latrReclaimDelay)
        scheduleReclaimPass(now + 1);
}

void
LatrPolicy::ReclaimPassEvent::process()
{
    policy->runReclaimPass(this);
}

bool
LatrPolicy::ReclaimPassEvent::footprint(EventFootprint &fp) const
{
    // A reclaim pass frees frames (FrameAllocator), retires ring
    // slots that publishes may immediately reuse (LatrPublish), and
    // releases held-back VA ranges of whichever address spaces the
    // eligible states reference — unknown until the pass runs, hence
    // the all-spaces write. No reads: the plan is validated by
    // pendingRemovalSeq_, not by batch admission.
    fp.writeGlobal(SimResource::FrameAllocator);
    fp.writeGlobal(SimResource::LatrPublish);
    fp.writeAllSpaces();
    return true;
}

void
LatrPolicy::ReclaimPassEvent::compute()
{
    policy->planReclaimPass(this);
}

unsigned
LatrPolicy::ReclaimPassEvent::computeWeight() const
{
    // Proportional to the pending_ walk the compute hoists; an empty
    // list makes the plan trivial and not worth a worker wakeup.
    return static_cast<unsigned>(policy->pending_.size());
}

void
LatrPolicy::scheduleReclaimPass(Tick eligible_at)
{
    if (eligible_at < env_.queue->now())
        eligible_at = env_.queue->now();
    ReclaimPassEvent *ev;
    if (!freeReclaimEvents_.empty()) {
        ev = freeReclaimEvents_.back();
        freeReclaimEvents_.pop_back();
    } else {
        reclaimEvents_.push_back(
            std::make_unique<ReclaimPassEvent>());
        ev = reclaimEvents_.back().get();
        ev->policy = this;
    }
    ev->eligibleAt = eligible_at;
    ev->planValid = false;
    env_.queue->schedule(ev, eligible_at);
}

void
LatrPolicy::planReclaimPass(ReclaimPassEvent *ev)
{
    // Read-only, possibly on a worker thread: partition pending_ by
    // the pass's (fixed) eligibility cutoff. savedAt is immutable
    // while a state is pending, so the predicate cannot change
    // between this plan and the commit that applies it.
    ev->reclaim.clear();
    ev->keep.clear();
    ev->removalSeq = pendingRemovalSeq_;
    ev->pendingSize = pending_.size();
    for (LatrState *state : pending_) {
        if (ev->eligibleAt < state->savedAt + cost().latrReclaimDelay)
            ev->keep.push_back(state);
        else
            ev->reclaim.push_back(state);
    }
    ev->planValid = true;
}

void
LatrPolicy::reclaimState(LatrState *state)
{
    // Free the frames, release the virtual range, charge the
    // background thread's work to the ring owner.
    const std::uint64_t npages =
        state->pages.size() + state->hugePages.size() * kHugePageSpan;
    const MmId mm_id = state->mm ? state->mm->id() : kTraceNoMm;
    const CoreId owner = state->owner;
    Duration spent = 0;
    for (const auto &page : state->pages) {
        state->mm->frames().put(page.second);
        spent += cost().latrReclaimPerPage;
    }
    for (const auto &page : state->hugePages) {
        state->mm->frames().putHuge(page.second);
        spent += cost().latrReclaimPerPage;
    }
    reclaimedPagesCtr_.inc(state->pages.size() +
                           state->hugePages.size() * kHugePageSpan);
    if (state->vaEnd > state->vaStart)
        state->mm->releaseHoldback(state->vaStart, state->vaEnd);
    env_.cores->chargeStolen(state->owner, spent);
    state->pages.clear();
    state->hugePages.clear();
    state->mm = nullptr;
    state->phase = LatrStatePhase::Empty;
    if (TraceRecorder *t = tracer()) {
        // Background reclamation: the lazily freed pages finally
        // return to the allocator (~2 ms after the munmap).
        const Tick now = env_.queue->now();
        const SpanId span = t->beginSpan("latr", "latr.reclaim", now,
                                         owner, mm_id, npages);
        t->endSpan(span, now + spent);
    }
}

void
LatrPolicy::runReclaimPass(ReclaimPassEvent *ev)
{
    const Tick now = ev->eligibleAt;
    // The sequential engine never computes, and a parallel plan dies
    // if another pass reclaimed (removed from pending_) since it was
    // taken. Appends since the plan are fine: they sit past
    // pendingSize and get partitioned fresh below.
    const bool use_plan =
        ev->planValid && ev->removalSeq == pendingRemovalSeq_;
    ev->planValid = false;

    std::vector<LatrState *> &keep = reclaimScratch_;
    keep.clear();
    keep.reserve(pending_.size());
    std::size_t reclaimed = 0;
    if (use_plan) {
        // Planned partition over the prefix the plan saw — reclaim
        // and keep lists were built in pending_ order, so replaying
        // reclaims then splicing keeps reproduces the fresh scan's
        // order exactly.
        for (LatrState *state : ev->reclaim) {
            // Eligible: every TLB entry died (the state deactivated)
            // and at least the aging window passed since the save.
            reclaimState(state);
            ++reclaimed;
        }
        keep.insert(keep.end(), ev->keep.begin(), ev->keep.end());
        for (std::size_t i = ev->pendingSize; i < pending_.size();
             ++i) {
            LatrState *state = pending_[i];
            if (now < state->savedAt + cost().latrReclaimDelay) {
                keep.push_back(state);
                continue;
            }
            reclaimState(state);
            ++reclaimed;
        }
    } else {
        for (LatrState *state : pending_) {
            if (now < state->savedAt + cost().latrReclaimDelay) {
                keep.push_back(state);
                continue;
            }
            reclaimState(state);
            ++reclaimed;
        }
    }
    pending_.swap(keep);
    if (reclaimed > 0)
        ++pendingRemovalSeq_;

    if (env_.config->latrTimeOnlyReclaim) {
        // The paper's pure time-bound reclamation: age alone makes a
        // state eligible. Sound if (and only if) the delay covers
        // every core's sweep — which is exactly what
        // bench_ablation_reclaim demonstrates.
        bool any = false;
        for (LatrState *state : active_) {
            if (state->phase != LatrStatePhase::Active)
                continue;
            if (state->kind != LatrStateKind::Free)
                continue;
            if (now < state->savedAt + cost().latrReclaimDelay)
                continue;
            reclaimState(state);
            any = true;
        }
        if (any) {
            active_.erase(
                std::remove_if(active_.begin(), active_.end(),
                               [](LatrState *s) {
                                   return s->phase !=
                                          LatrStatePhase::Active;
                               }),
                active_.end());
            ++activeSeq_; // removals invalidate outstanding plans
        }
    }

    freeReclaimEvents_.push_back(ev);
}

void
LatrPolicy::onSchedulerTick(CoreId core, Tick now)
{
    if (env_.config->injectSkipLatrSweep)
        return;
    sweep(core, now);
}

void
LatrPolicy::onContextSwitch(CoreId core, Tick now)
{
    if (env_.config->injectSkipLatrSweep)
        return;
    if (env_.config->latrSweepAtContextSwitch)
        sweep(core, now);
}

void
LatrPolicy::addTickFootprint(CoreId, EventFootprint &fp) const
{
    // Correctness no longer needs this read: sweep plans are
    // validated by activeSeq_ and reconcile appended states, so they
    // survive same-batch publishes (DESIGN.md §8.4). The read is
    // kept as a *pacing* declaration — it stops batch formation at
    // the first tick after a publisher, which bounds how far the
    // dispatcher speculates past the commit frontier and keeps
    // freshly scheduled completions landing in *future* batches
    // (where they get compute plans) instead of arriving as
    // plan-less interlopers inside a huge open batch.
    fp.readGlobal(SimResource::LatrPublish);
}

void
LatrPolicy::planSchedulerTick(CoreId core, Tick tick)
{
    if (env_.config->injectSkipLatrSweep)
        return;
    SweepPlan &plan = plans_[core];
    plan.candidates.clear();
    if (!(fastpath_ && !pendingSweepers_.test(core))) {
        for (LatrState *state : active_) {
            if (state->phase == LatrStatePhase::Active &&
                state->cpuMask.test(core))
                plan.candidates.push_back(state);
        }
    }
    plan.forTick = tick;
    plan.activeSeq = activeSeq_;
    plan.activeSize = active_.size();
    plan.valid = true;
}

bool
LatrPolicy::tickPlanIsHeavy(CoreId core) const
{
    // The plan is worth a worker thread only when the sweep would
    // actually walk active_: elided sweeps (summary-mask miss) and
    // empty systems plan nothing.
    if (active_.empty())
        return false;
    return !fastpath_ || pendingSweepers_.test(core);
}

StalenessContract
LatrPolicy::stalenessContract() const
{
    // Every core sweeps at latest at its next scheduler tick, so a
    // translation invalidated-in-page-tables dies within one tick
    // interval of the free operation returning. The slack mirrors
    // numaSampleReadyAt's allowance for sweep processing time.
    return StalenessContract{
        cost().tickInterval + migrationBlockSlack(),
        "remote cores sweep LATR states within one scheduler epoch"};
}

} // namespace latr
