/**
 * @file
 * Predictive TLB coherence: send shootdown IPIs only to *predicted*
 * sharers and let the mirrored-TLB machinery (the same probes the
 * staleness oracle relies on) catch mispredictions.
 *
 * A free operation snapshots its candidate set (the mm's residency
 * mask minus the initiator), asks the hashed-perceptron
 * SharerPredictor for the sharer subset, and IPIs only that subset —
 * the op returns after the predicted shootdown, like Linux but with
 * a smaller fan-out. Frames and the virtual range are *not* released
 * yet: a pooled VerifyEvent fires one scheduler epoch later, probes
 * every candidate's TLB for the freed (vpn → pfn) translations
 * (read-only, offloadable to a compute() lane and validated per core
 * by Tlb::mutationSeq()), and either confirms the prediction —
 * releasing frames and VA, training the predictor positive — or
 * detects a stale hit, issues the full-mask fallback shootdown, and
 * trains on the miss. Correctness therefore never depends on
 * prediction accuracy: a stale translation dies at latest one epoch
 * plus one fallback round-trip after the op, which is exactly the
 * policy's staleness contract.
 */

#ifndef LATR_TLBCOH_PREDICTIVE_POLICY_HH_
#define LATR_TLBCOH_PREDICTIVE_POLICY_HH_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "tlbcoh/policy.hh"
#include "tlbcoh/sharer_predictor.hh"

namespace latr
{

/** The fifth policy: perceptron-predicted sharer shootdowns. */
class PredictivePolicy : public TlbCoherencePolicy
{
  public:
    explicit PredictivePolicy(PolicyEnv env);

    const char *name() const override { return "PredictivePolicy"; }
    PolicyKind kind() const override { return PolicyKind::Predictive; }
    PolicyCapabilities capabilities() const override;
    StalenessContract stalenessContract() const override;

    Duration onFreePages(FreeOpContext ctx, Tick start) override;
    Duration onNumaSample(AddressSpace *mm, CoreId initiator, Vpn vpn,
                          Tick start) override;

    /** The predictor, exposed for white-box tests. */
    const SharerPredictor &predictor() const { return predictor_; }

  private:
    /**
     * One deferred verification pass: probe every candidate core's
     * TLB for the op's freed translations, confirm or fall back.
     * Pooled and reused (freeVerifyEvents_), like LatrPolicy's
     * ReclaimPassEvent and IpiFabric's DeliveryEvent.
     */
    class VerifyEvent : public Event
    {
      public:
        void process() override;
        bool footprint(EventFootprint &fp) const override;
        void compute() override;
        unsigned computeWeight() const override;
        const char *name() const override { return "pred.verify"; }

      private:
        friend class PredictivePolicy;

        PredictivePolicy *policy = nullptr;

        // Payload of the free operation being verified.
        AddressSpace *mm = nullptr;
        Vpn startVpn = 0;
        Vpn endVpn = 0;
        std::uint64_t npages = 0;
        std::vector<std::pair<Vpn, Pfn>> pages;
        std::vector<std::pair<Vpn, Pfn>> hugePages;
        Addr vaStart = 0;
        Addr vaEnd = 0;
        CpuMask candidates;
        CpuMask predicted;
        /** Candidates that reported live translations at IPI time. */
        CpuMask ackSharers;
        SharerFeatures features;
        CoreId owner = 0;

        // compute() scratch, validated at commit per candidate by
        // the mutationSeq snapshot (DESIGN.md §8.4).
        bool planValid = false;
        CpuMask planStale;
        std::vector<std::uint64_t> planSeqs;
    };

    /** Probe @p core for any of @p ev's freed translations. */
    bool coreHoldsStale(CoreId core, const VerifyEvent *ev) const;

    void planVerify(VerifyEvent *ev);
    void runVerify(VerifyEvent *ev);
    void scheduleVerify(VerifyEvent *ev, Tick at);
    VerifyEvent *acquireVerifyEvent();

    /** Longest a full-mask fallback shootdown can take, from cost. */
    Duration fallbackRoundTripBound() const;

    SharerPredictor predictor_;

    std::vector<std::unique_ptr<VerifyEvent>> verifyEvents_;
    std::vector<VerifyEvent *> freeVerifyEvents_;

    Counter &ipisSavedCtr_;
    Counter &mispredictsCtr_;
    Counter &fallbackShootdownsCtr_;
    Counter &verifiesCtr_;
};

} // namespace latr

#endif // LATR_TLBCOH_PREDICTIVE_POLICY_HH_
