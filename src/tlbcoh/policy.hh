/**
 * @file
 * The TLB-coherence policy interface — the axis of the paper. A
 * policy owns everything that happens *after* the kernel has changed
 * page-table entries and invalidated the initiating core's TLB:
 * how remote cores learn about the change (IPIs, LATR states,
 * messages), when their TLB entries die, and when freed pages become
 * reusable. Five policies implement it:
 *
 *  - LinuxPolicy: synchronous IPI shootdown (the baseline);
 *  - LatrPolicy: the paper's lazy mechanism;
 *  - AbisPolicy: access-bit sharing tracking (state of the art);
 *  - BarrelfishPolicy: synchronous message passing;
 *  - PredictivePolicy: hashed-perceptron sharer prediction with
 *    oracle-verified full-mask fallback.
 */

#ifndef LATR_TLBCOH_POLICY_HH_
#define LATR_TLBCOH_POLICY_HH_

#include <memory>
#include <utility>
#include <vector>

#include "hw/cache.hh"
#include "hw/ipi.hh"
#include "mem/frame_allocator.hh"
#include "os/core_service.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "topo/machine_config.hh"
#include "topo/topology.hh"
#include "vm/address_space.hh"

namespace latr
{

class TraceRecorder;

/** Selects a TLB-coherence policy implementation. */
enum class PolicyKind
{
    LinuxSync,   ///< stock Linux 4.10: synchronous IPIs
    Latr,        ///< the paper's lazy mechanism
    Abis,        ///< access-bit tracking (Amit, ATC'17)
    Barrelfish,  ///< message passing, still synchronous
    Predictive,  ///< perceptron-predicted sharers, verified fallback
};

/** Everything a policy may touch, bundled at construction. */
struct PolicyEnv
{
    EventQueue *queue = nullptr;
    const NumaTopology *topo = nullptr;
    const MachineConfig *config = nullptr;
    FrameAllocator *frames = nullptr;
    IpiFabric *ipi = nullptr;
    CoreService *cores = nullptr;
    StatRegistry *stats = nullptr;
    /** Event tracing; optional (policies must tolerate nullptr). */
    TraceRecorder *trace = nullptr;
    /** Per-socket LLCs for pollution modeling; may be empty. */
    std::vector<LlcCache *> llcs;
};

/** A free operation (munmap / madvise) handed to the policy. */
struct FreeOpContext
{
    AddressSpace *mm = nullptr;
    CoreId initiator = 0;
    /** Inclusive page range of the operation. */
    Vpn startVpn = 0;
    Vpn endVpn = 0;
    /** Unmapped (vpn, frame) pairs whose frames the policy frees. */
    std::vector<std::pair<Vpn, Pfn>> pages;
    /**
     * Unmapped 2 MiB mappings (base vpn, base frame), released with
     * putHuge(). The LATR state covering them carries the paper's
     * proposed huge flag (section 7) implicitly: its vpn range spans
     * the whole region, so sweeps invalidate the huge TLB entries.
     */
    std::vector<std::pair<Vpn, Pfn>> hugePages;
    /**
     * Virtual range to return to the allocator once coherence is
     * reached; vaEnd == 0 for madvise (the VMA stays).
     */
    Addr vaStart = 0;
    Addr vaEnd = 0;
    /**
     * Caller demanded synchronous semantics (the per-call override
     * the paper's section 7 proposes for use-after-free detectors).
     */
    bool syncRequested = false;
};

/**
 * A policy's bounded-staleness contract (paper sections 3 and 4.2):
 * the longest a remote TLB entry may outlive its page-table mapping
 * once the triggering kernel operation has returned. Synchronous
 * policies promise zero; LATR promises one scheduler epoch. The
 * staleness oracle in src/check/ enforces this bound at runtime.
 */
struct StalenessContract
{
    /**
     * Upper bound on how long after the operation's sync point a
     * stale translation may survive in any TLB. 0 means the policy
     * is synchronous: coherence is reached before the op returns.
     */
    Duration epochBound = 0;
    /** Why the bound holds — quoted in oracle violation reports. */
    const char *rationale = "synchronous shootdown before op returns";
};

/** Static properties of a policy (rows of the paper's table 2). */
struct PolicyCapabilities
{
    bool asynchronous = false;
    bool nonIpiBased = false;
    bool noRemoteCoreInvolvement = false;
    bool noHardwareChanges = true; // every software policy here
    bool lazyFreeCapable = false;
    bool lazyMigrationCapable = false;
};

/**
 * Base class of all TLB-coherence policies. Provides the shared
 * synchronous-IPI machinery that LinuxPolicy uses directly and that
 * every policy needs for operations that cannot be lazy (mprotect,
 * mremap, CoW — table 1) or as a fallback.
 */
class TlbCoherencePolicy
{
  public:
    explicit TlbCoherencePolicy(PolicyEnv env);

    virtual ~TlbCoherencePolicy() = default;

    TlbCoherencePolicy(const TlbCoherencePolicy &) = delete;
    TlbCoherencePolicy &operator=(const TlbCoherencePolicy &) = delete;

    virtual const char *name() const = 0;
    virtual PolicyKind kind() const = 0;
    virtual PolicyCapabilities capabilities() const = 0;

    /**
     * The policy's bounded-staleness promise. The default contract
     * (0: coherent before the op returns) fits every synchronous
     * policy; lazy policies override with their epoch bound.
     */
    virtual StalenessContract stalenessContract() const
    {
        return StalenessContract{};
    }

    /**
     * A free operation unmapped @p ctx.pages. PTEs are already
     * cleared and the initiator's TLB already invalidated; the
     * policy owns remote invalidation, frame release, and VA
     * release.
     *
     * @param start tick the policy's work begins (lock-adjusted).
     * @return time consumed on the initiating core beyond @p start.
     */
    virtual Duration onFreePages(FreeOpContext ctx, Tick start) = 0;

    /**
     * A page-table change that must be visible system-wide before
     * the operation returns (mprotect / mremap / CoW). PTEs are
     * already updated; nothing is freed here.
     */
    virtual Duration onSyncShootdown(AddressSpace *mm, CoreId initiator,
                                     Vpn start_vpn, Vpn end_vpn,
                                     std::uint64_t npages, Tick start);

    /**
     * AutoNUMA sampled @p vpn: make it prot-none and invalidate it
     * everywhere. Lazy policies may defer the PTE change (paper
     * section 4.3); they must block the mm's mmap_sem until every
     * core has invalidated.
     */
    virtual Duration onNumaSample(AddressSpace *mm, CoreId initiator,
                                  Vpn vpn, Tick start) = 0;

    /**
     * Earliest tick at which a NUMA-hint fault on @p vpn may proceed
     * to migrate: lazy policies must hold the fault until every core
     * has invalidated the sampled translation (paper section 4.4).
     * Synchronous policies return 0 (no wait).
     */
    virtual Tick numaSampleReadyAt(AddressSpace *mm, Vpn vpn) const;

    /** Scheduler tick on @p core (LATR sweeps here). */
    virtual void onSchedulerTick(CoreId core, Tick now);

    /** Context switch on @p core (LATR sweeps here too). */
    virtual void onContextSwitch(CoreId core, Tick now);

    /// @name Parallel engine (optional; defaults are no-ops)
    /// @{

    /**
     * Contribute this policy's share of @p core's scheduler-tick
     * conflict footprint. Must declare as *reads* whatever
     * planSchedulerTick() consults and as *writes* whatever the
     * tick-driven hooks mutate that another event's compute might
     * read. Plan-preserving mutations — ones provably invisible to
     * every concurrently computed plan, like LATR's sweep
     * retirements — may stay undeclared (DESIGN.md §8).
     */
    virtual void addTickFootprint(CoreId core, EventFootprint &fp) const;

    /**
     * Speculative half of onSchedulerTick(): runs before the tick
     * commits, possibly on a worker thread concurrently with other
     * cores' plans. Strictly read-only on shared simulation state;
     * results go into per-core plan scratch that the commit
     * validates (and may discard). Never required for correctness:
     * the sequential engine skips it entirely.
     */
    virtual void planSchedulerTick(CoreId core, Tick tick);

    /** True when planSchedulerTick(@p core) does nontrivial work. */
    virtual bool tickPlanIsHeavy(CoreId core) const;

    /**
     * Offer a precomputed sharer harvest for the next free operation
     * on @p mm covering exactly [@p start_vpn, @p end_vpn]: @p mask
     * is the union of the range's per-page sharer sets as probed by
     * a compute() phase, and the *offerer* has already validated it
     * (against SimResource::SharerDirectory's epoch) as current.
     * One-shot: the policy consumes or discards it on its next
     * onFreePages() call. Policies that never harvest sharer sets
     * ignore the offer (the default).
     */
    virtual void offerSharerHarvest(AddressSpace *mm, Vpn start_vpn,
                                    Vpn end_vpn, const CpuMask &mask)
    {
        (void)mm;
        (void)start_vpn;
        (void)end_vpn;
        (void)mask;
    }

    /**
     * Invariant the parallel engine leans on: any code path that
     * *publishes* coherence state other events plan against (LATR
     * state saves, ring refills) must run either driver-side, from
     * an undeclared (barrier) event, or from an event declaring the
     * matching SimResource write — never from a compute() phase.
     */

    /// @}

    /** Extra cost this policy adds to every minor fault (ABIS). */
    virtual Duration minorFaultOverhead() const { return 0; }

  protected:
    /**
     * The shared synchronous IPI shootdown: serialize ICR writes to
     * every core in @p targets (minus the initiator), invalidate
     * each target's TLB at interrupt delivery, charge handler time
     * to targets, pollute their LLCs, and return when the last ACK
     * lands.
     *
     * @return time from @p start until the last ACK.
     */
    Duration ipiShootdown(AddressSpace *mm, CoreId initiator,
                          const CpuMask &targets, Vpn start_vpn,
                          Vpn end_vpn, std::uint64_t npages, Tick start);

    /** Remote targets for @p mm: cores whose TLBs may hold entries. */
    CpuMask remoteTargets(AddressSpace *mm, CoreId initiator) const;

    /** Pollute the LLC of @p core's socket with handler lines. */
    void polluteLlc(CoreId core);

    const CostModel &cost() const { return env_.config->cost; }

    /** The recorder, or nullptr when tracing is not wired/enabled. */
    TraceRecorder *tracer() const;

    PolicyEnv env_;

    /**
     * Registry references resolved once at construction: the IPI
     * path increments these per delivered interrupt, and a by-name
     * registry lookup there is measurable in the figure benches.
     */
    Counter &ipiShootdownsCtr_;
    Counter &remoteInterruptsCtr_;
    Counter &syncOpsCtr_;
    Counter &shootdownsCtr_;
    Counter &numaSamplesCtr_;

  private:
    std::uint64_t pollutionCursor_ = 0;
};

/** Construct the policy selected by @p kind. */
std::unique_ptr<TlbCoherencePolicy> makePolicy(PolicyKind kind,
                                               PolicyEnv env);

/** Human-readable policy name without constructing one. */
const char *policyKindName(PolicyKind kind);

} // namespace latr

#endif // LATR_TLBCOH_POLICY_HH_
