#include "check/script.hh"

#include <fstream>
#include <sstream>

#include "sim/rng.hh"

namespace latr
{

namespace
{

/** Per-slot generator bookkeeping. */
struct SlotState
{
    bool live = false;
    bool huge = false;
    std::uint64_t pages = 0;
    /** Owning process (its tasks issue ops against the slot). */
    unsigned proc = 0;
    /**
     * madvise/NUMA-sample happened since the last quiesce: further
     * access would sit in the paper's legitimate transient-staleness
     * window, where lazy and synchronous policies may diverge.
     */
    bool tainted = false;
    bool readOnly = false;
};

const char *
opName(OpKind kind)
{
    switch (kind) {
      case OpKind::Mmap: return "mmap";
      case OpKind::MmapHuge: return "mmap_huge";
      case OpKind::Munmap: return "munmap";
      case OpKind::MunmapSync: return "munmap_sync";
      case OpKind::Madvise: return "madvise";
      case OpKind::MadviseFree: return "madvise_free";
      case OpKind::Mprotect: return "mprotect";
      case OpKind::Mremap: return "mremap";
      case OpKind::MarkCow: return "markcow";
      case OpKind::Touch: return "touch";
      case OpKind::NumaSample: return "numa";
      case OpKind::CtxSwitch: return "ctxsw";
      case OpKind::Advance: return "advance";
      case OpKind::Quiesce: return "quiesce";
    }
    return "?";
}

} // namespace

Script
generateScript(std::uint64_t seed, const GenOptions &opt)
{
    Rng rng(seed);
    Script s;
    s.seed = seed;
    s.pcid = opt.pcid;
    s.procs = opt.procs > 0 ? opt.procs : 1;
    s.large = opt.large;

    std::vector<SlotState> slots(opt.maxSlots);
    // One task per core in the executor's machine; task i runs
    // process i % procs, so a slot owned by proc p may be driven by
    // any task with index ≡ p (mod procs).
    const unsigned kCores = opt.large ? 120 : 8;
    auto task_of = [&](unsigned proc) -> std::uint32_t {
        const unsigned candidates = kCores / s.procs +
                                    (proc < kCores % s.procs ? 1 : 0);
        const unsigned pick = static_cast<unsigned>(
            rng.nextBounded(candidates ? candidates : 1));
        return proc + pick * s.procs;
    };

    for (unsigned i = 0; i < opt.numOps; ++i) {
        const unsigned slot =
            static_cast<unsigned>(rng.nextBounded(slots.size()));
        SlotState &st = slots[slot];
        Op op;
        op.slot = slot;

        const std::uint64_t roll = rng.nextBounded(100);
        if (!st.live) {
            // Empty slot: map something into it (huge 1 in 6).
            if (rng.nextBool(1.0 / 6.0)) {
                op.kind = OpKind::MmapHuge;
                op.value = rng.nextRange(1, 2); // 2-4 MiB
                st.huge = true;
                st.pages = op.value * kHugePageSpan;
            } else {
                op.kind = OpKind::Mmap;
                op.value = rng.nextRange(1, opt.maxPages);
                op.rw = true;
                st.huge = false;
                st.pages = op.value;
            }
            st.proc = static_cast<unsigned>(rng.nextBounded(s.procs));
            st.live = true;
            st.tainted = false;
            st.readOnly = false;
            op.task = task_of(st.proc);
        } else if (roll < 10) {
            op.kind = rng.nextBool(0.2) ? OpKind::MunmapSync
                                        : OpKind::Munmap;
            op.task = task_of(st.proc);
            st.live = false;
        } else if (roll < 16 && !st.huge) {
            // Half the discards take the MADV_FREE flavor: same
            // deferred-free model, separately counted/traced, and
            // the lazycache workload's staple operation.
            op.kind = rng.nextBool(0.5) ? OpKind::MadviseFree
                                        : OpKind::Madvise;
            op.task = task_of(st.proc);
            st.tainted = true;
        } else if (roll < 22 && !st.huge) {
            op.kind = OpKind::Mprotect;
            op.rw = rng.nextBool(0.5);
            op.task = task_of(st.proc);
            st.readOnly = !op.rw;
        } else if (roll < 26 && !st.huge) {
            op.kind = OpKind::Mremap;
            op.value = rng.nextRange(1, opt.maxPages);
            op.task = task_of(st.proc);
            st.pages = op.value;
        } else if (roll < 30 && !st.huge && !st.readOnly) {
            op.kind = OpKind::MarkCow;
            op.task = task_of(st.proc);
        } else if (roll < 34) {
            op.kind = OpKind::NumaSample;
            op.off = rng.nextBounded(st.pages);
            op.task = task_of(st.proc);
            st.tainted = true;
        } else if (roll < 80 && !st.tainted) {
            op.kind = OpKind::Touch;
            op.off = rng.nextBounded(st.pages);
            // Writes through a read-only or CoW mapping are fine
            // (segfault / CoW break are deterministic); writes are
            // just likelier to catch stale-writable bugs.
            op.rw = rng.nextBool(0.6) && !st.readOnly;
            op.task = task_of(st.proc);
        } else if (roll < 86) {
            op.kind = OpKind::CtxSwitch;
            op.value = rng.nextBounded(kCores);
        } else if (roll < 96) {
            op.kind = OpKind::Advance;
            op.value = rng.nextRange(10, 400); // microseconds
        } else {
            op.kind = OpKind::Quiesce;
            for (SlotState &other : slots)
                other.tainted = false;
        }
        s.ops.push_back(op);
    }
    s.ops.push_back(Op{OpKind::Quiesce, 0, 0, 0, 0, false});
    return s;
}

std::string
serializeScript(const Script &script)
{
    std::ostringstream out;
    out << "# latrsim check script\n";
    out << "seed " << script.seed << "\n";
    out << "pcid " << (script.pcid ? 1 : 0) << "\n";
    out << "procs " << script.procs << "\n";
    if (script.large)
        out << "machine large\n";
    for (const Op &op : script.ops) {
        out << opName(op.kind);
        switch (op.kind) {
          case OpKind::Mmap:
            out << " " << op.task << " " << op.slot << " " << op.value
                << " " << (op.rw ? "rw" : "r");
            break;
          case OpKind::MmapHuge:
          case OpKind::Mremap:
            out << " " << op.task << " " << op.slot << " " << op.value;
            break;
          case OpKind::Munmap:
          case OpKind::MunmapSync:
          case OpKind::Madvise:
          case OpKind::MadviseFree:
          case OpKind::MarkCow:
            out << " " << op.task << " " << op.slot;
            break;
          case OpKind::Mprotect:
            out << " " << op.task << " " << op.slot << " "
                << (op.rw ? "rw" : "r");
            break;
          case OpKind::Touch:
            out << " " << op.task << " " << op.slot << " " << op.off
                << " " << (op.rw ? "w" : "r");
            break;
          case OpKind::NumaSample:
            out << " " << op.task << " " << op.slot << " " << op.off;
            break;
          case OpKind::CtxSwitch:
          case OpKind::Advance:
            out << " " << op.value;
            break;
          case OpKind::Quiesce:
            break;
        }
        out << "\n";
    }
    return out.str();
}

namespace
{

bool
parseAccess(const std::string &tok, bool *rw)
{
    if (tok == "rw" || tok == "w") {
        *rw = true;
        return true;
    }
    if (tok == "r") {
        *rw = false;
        return true;
    }
    return false;
}

} // namespace

bool
parseScript(const std::string &text, Script *out, std::string *err)
{
    *out = Script{};
    out->procs = 1;
    std::istringstream in(text);
    std::string line;
    unsigned lineno = 0;
    auto fail = [&](const std::string &what) {
        if (err)
            *err = "line " + std::to_string(lineno) + ": " + what;
        return false;
    };
    while (std::getline(in, line)) {
        ++lineno;
        std::istringstream toks(line);
        std::string word;
        if (!(toks >> word) || word[0] == '#')
            continue;

        if (word == "seed") {
            if (!(toks >> out->seed))
                return fail("seed needs a value");
            continue;
        }
        if (word == "pcid") {
            unsigned v;
            if (!(toks >> v))
                return fail("pcid needs 0 or 1");
            out->pcid = v != 0;
            continue;
        }
        if (word == "procs") {
            if (!(toks >> out->procs) || out->procs == 0)
                return fail("procs needs a positive value");
            continue;
        }
        if (word == "machine") {
            std::string which;
            if (!(toks >> which) ||
                (which != "large" && which != "small"))
                return fail("machine needs 'small' or 'large'");
            out->large = which == "large";
            continue;
        }

        Op op;
        std::string access;
        if (word == "mmap") {
            op.kind = OpKind::Mmap;
            if (!(toks >> op.task >> op.slot >> op.value >> access) ||
                !parseAccess(access, &op.rw))
                return fail("mmap <task> <slot> <pages> <r|rw>");
        } else if (word == "mmap_huge") {
            op.kind = OpKind::MmapHuge;
            if (!(toks >> op.task >> op.slot >> op.value))
                return fail("mmap_huge <task> <slot> <hugepages>");
        } else if (word == "munmap" || word == "munmap_sync") {
            op.kind = word == "munmap" ? OpKind::Munmap
                                       : OpKind::MunmapSync;
            if (!(toks >> op.task >> op.slot))
                return fail(word + " <task> <slot>");
        } else if (word == "madvise") {
            op.kind = OpKind::Madvise;
            if (!(toks >> op.task >> op.slot))
                return fail("madvise <task> <slot>");
        } else if (word == "madvise_free") {
            op.kind = OpKind::MadviseFree;
            if (!(toks >> op.task >> op.slot))
                return fail("madvise_free <task> <slot>");
        } else if (word == "mprotect") {
            op.kind = OpKind::Mprotect;
            if (!(toks >> op.task >> op.slot >> access) ||
                !parseAccess(access, &op.rw))
                return fail("mprotect <task> <slot> <r|rw>");
        } else if (word == "mremap") {
            op.kind = OpKind::Mremap;
            if (!(toks >> op.task >> op.slot >> op.value))
                return fail("mremap <task> <slot> <newpages>");
        } else if (word == "markcow") {
            op.kind = OpKind::MarkCow;
            if (!(toks >> op.task >> op.slot))
                return fail("markcow <task> <slot>");
        } else if (word == "touch") {
            op.kind = OpKind::Touch;
            if (!(toks >> op.task >> op.slot >> op.off >> access) ||
                !parseAccess(access, &op.rw))
                return fail("touch <task> <slot> <off> <r|w>");
        } else if (word == "numa") {
            op.kind = OpKind::NumaSample;
            if (!(toks >> op.task >> op.slot >> op.off))
                return fail("numa <task> <slot> <off>");
        } else if (word == "ctxsw") {
            op.kind = OpKind::CtxSwitch;
            if (!(toks >> op.value))
                return fail("ctxsw <core>");
        } else if (word == "advance") {
            op.kind = OpKind::Advance;
            if (!(toks >> op.value))
                return fail("advance <usec>");
        } else if (word == "quiesce") {
            op.kind = OpKind::Quiesce;
        } else {
            return fail("unknown directive '" + word + "'");
        }
        out->ops.push_back(op);
    }
    return true;
}

bool
loadScriptFile(const std::string &path, Script *out, std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = "cannot open " + path;
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parseScript(text.str(), out, err);
}

bool
saveScriptFile(const std::string &path, const Script &script)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << serializeScript(script);
    return bool(out);
}

} // namespace latr
