/**
 * @file
 * The replayable shrinking fuzzer: generates random op-scripts,
 * replays each under all four policies with both oracles attached,
 * and on any invariant / staleness / differential failure minimizes
 * the script with greedy delta debugging, dumps it (plus seed) to
 * disk, and re-runs the failing policy with src/trace/ capture so
 * the failure arrives with a timeline. Everything it writes replays
 * with `latrsim_check --replay`.
 */

#ifndef LATR_CHECK_FUZZER_HH_
#define LATR_CHECK_FUZZER_HH_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/executor.hh"
#include "check/script.hh"

namespace latr
{

/**
 * Replay @p script under every policy. @return an empty string when
 * clean and equivalent, else a description of the first failure
 * (oracle violation or cross-policy divergence).
 */
std::string checkScript(const Script &script, const ExecOptions &opt);

/**
 * The failure class of a checkScript() reason ("staleness",
 * "invariant", "differential", or "" for a clean run). The minimizer
 * pins this so shrinking cannot slide onto an unrelated failure.
 */
std::string failureCategory(const std::string &reason);

/**
 * Greedy delta debugging: repeatedly drop op chunks (halving the
 * chunk size down to single ops) while @p still_fails holds, capped
 * at @p max_evals predicate evaluations. @return the smallest
 * still-failing script found.
 */
Script minimizeScript(const Script &script,
                      const std::function<bool(const Script &)>
                          &still_fails,
                      unsigned max_evals = 200);

/** Knobs for runFuzz(). */
struct FuzzOptions
{
    unsigned iterations = 100;
    std::uint64_t baseSeed = 1;
    GenOptions gen;
    /** Alternate PCID on/off across iterations. */
    bool mixPcid = true;
    /** Directory failing scripts and traces are dumped into. */
    std::string outDir = ".";
    /** Stop at the first failure instead of fuzzing on. */
    bool stopOnFailure = true;
    /** Cap on minimizer predicate evaluations per failure. */
    unsigned minimizeBudget = 120;
    ExecOptions exec;
    /** Per-iteration progress callback (may be empty). */
    std::function<void(unsigned, std::uint64_t)> onIteration;
};

/** One minimized, replayable failure. */
struct FuzzFailure
{
    std::uint64_t seed = 0;
    std::string reason;
    std::string scriptPath;
    std::string minScriptPath;
    std::string tracePath;
    /** Ops before and after minimization. */
    std::size_t originalOps = 0;
    std::size_t minimizedOps = 0;
};

/** Outcome of a fuzzing campaign. */
struct FuzzResult
{
    unsigned iterations = 0;
    std::vector<FuzzFailure> failures;

    bool clean() const { return failures.empty(); }
};

/** Run a fuzzing campaign (see FuzzOptions). */
FuzzResult runFuzz(const FuzzOptions &opt);

} // namespace latr

#endif // LATR_CHECK_FUZZER_HH_
