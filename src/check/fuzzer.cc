#include "check/fuzzer.hh"

#include <algorithm>

namespace latr
{

std::string
checkScript(const Script &script, const ExecOptions &opt)
{
    DiffResult diff;
    std::vector<RunResult> runs = runDifferential(script, opt, &diff);
    for (const RunResult &run : runs) {
        if (run.stalenessViolations > 0)
            return std::string(policyKindName(run.policy)) +
                   ": staleness oracle: " + run.firstStaleness;
        if (run.invariantViolations > 0)
            return std::string(policyKindName(run.policy)) +
                   ": reuse invariant: " + run.firstInvariant;
    }
    if (!diff.equivalent)
        return "differential: " + diff.divergence;
    return "";
}

std::string
failureCategory(const std::string &reason)
{
    if (reason.empty())
        return "";
    if (reason.find(": staleness oracle: ") != std::string::npos)
        return "staleness";
    if (reason.find(": reuse invariant: ") != std::string::npos)
        return "invariant";
    return "differential";
}

Script
minimizeScript(const Script &script,
               const std::function<bool(const Script &)> &still_fails,
               unsigned max_evals)
{
    Script best = script;
    unsigned evals = 0;
    auto try_script = [&](const Script &candidate) {
        if (evals >= max_evals)
            return false;
        ++evals;
        return still_fails(candidate);
    };

    std::size_t chunk = std::max<std::size_t>(1, best.ops.size() / 2);
    while (evals < max_evals) {
        bool shrunk = false;
        for (std::size_t at = 0;
             at < best.ops.size() && evals < max_evals;) {
            Script candidate = best;
            const std::size_t take =
                std::min(chunk, candidate.ops.size() - at);
            candidate.ops.erase(candidate.ops.begin() + at,
                                candidate.ops.begin() + at + take);
            if (try_script(candidate)) {
                best = std::move(candidate);
                shrunk = true;
                // Re-test the same offset: the next chunk slid in.
            } else {
                at += chunk;
            }
        }
        if (chunk == 1 && !shrunk)
            break;
        if (!shrunk)
            chunk = std::max<std::size_t>(1, chunk / 2);
    }
    return best;
}

FuzzResult
runFuzz(const FuzzOptions &opt)
{
    FuzzResult result;
    const std::string dir =
        opt.outDir.empty() ? std::string(".") : opt.outDir;

    for (unsigned iter = 0; iter < opt.iterations; ++iter) {
        const std::uint64_t seed = opt.baseSeed + iter;
        GenOptions gen = opt.gen;
        if (opt.mixPcid)
            gen.pcid = (iter % 2) == 1;
        Script script = generateScript(seed, gen);
        if (opt.onIteration)
            opt.onIteration(iter, seed);
        ++result.iterations;

        const std::string reason = checkScript(script, opt.exec);
        if (reason.empty())
            continue;

        FuzzFailure failure;
        failure.seed = seed;
        failure.reason = reason;
        failure.originalOps = script.ops.size();

        const std::string stem =
            dir + "/fail_seed" + std::to_string(seed);
        failure.scriptPath = stem + ".script";
        saveScriptFile(failure.scriptPath, script);

        const std::string category = failureCategory(reason);
        Script minimized = minimizeScript(
            script,
            [&](const Script &candidate) {
                return failureCategory(checkScript(
                           candidate, opt.exec)) == category;
            },
            opt.minimizeBudget);
        failure.minimizedOps = minimized.ops.size();
        failure.minScriptPath = stem + ".min.script";
        saveScriptFile(failure.minScriptPath, minimized);

        // Re-run the minimized script with tracing so the dump
        // arrives with a Chrome-trace timeline of the failure.
        ExecOptions traced = opt.exec;
        traced.trace = true;
        traced.tracePath = stem + ".trace.json";
        checkScript(minimized, traced);
        failure.tracePath = traced.tracePath;

        result.failures.push_back(std::move(failure));
        if (opt.stopOnFailure)
            break;
    }
    return result;
}

} // namespace latr
