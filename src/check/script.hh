/**
 * @file
 * Deterministic op-scripts for the conformance harness: a serialized
 * sequence of VM operations (mmap/munmap/mprotect/touch/...) that the
 * differential executor replays identically under every coherence
 * policy. Scripts have a stable one-op-per-line text form so failing
 * runs can be dumped to disk, minimized, hand-edited, and replayed
 * with `latrsim_check --replay`.
 */

#ifndef LATR_CHECK_SCRIPT_HH_
#define LATR_CHECK_SCRIPT_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace latr
{

/** One scripted VM operation. */
enum class OpKind : std::uint8_t
{
    Mmap,        ///< map `pages` 4 KiB pages into `slot`
    MmapHuge,    ///< map `pages` 2 MiB regions into `slot`
    Munmap,      ///< unmap `slot` (policy's lazy path)
    MunmapSync,  ///< unmap `slot` with the sync-override flag
    Madvise,     ///< MADV_DONTNEED the whole `slot`
    MadviseFree, ///< MADV_FREE the whole `slot` (lazy discard)
    Mprotect,    ///< change `slot` to read-only or read-write (`rw`)
    Mremap,      ///< grow/shrink `slot` to `pages` pages (moves it)
    MarkCow,     ///< make `slot` copy-on-write
    Touch,       ///< access page `off` of `slot` (write if `rw`)
    NumaSample,  ///< AutoNUMA-sample page `off` of `slot`
    CtxSwitch,   ///< context switch on core `value`
    Advance,     ///< run the machine for `value` microseconds
    Quiesce,     ///< run until every policy reaches coherence
};

/** One line of a script. Field meaning varies by kind (see OpKind). */
struct Op
{
    OpKind kind = OpKind::Quiesce;
    std::uint32_t task = 0;   ///< issuing task index
    std::uint32_t slot = 0;   ///< region slot the op targets
    std::uint64_t value = 0;  ///< pages / usec / core, per kind
    std::uint64_t off = 0;    ///< page offset within the slot
    bool rw = false;          ///< write access / writable protection
};

/** A replayable workload: header + op list. */
struct Script
{
    std::uint64_t seed = 0;  ///< generator seed (provenance only)
    bool pcid = false;       ///< run with PCIDs enabled
    unsigned procs = 2;      ///< processes (tasks = one per core)
    /**
     * Run on the 8-socket/120-core large-NUMA machine instead of
     * the default 2x4 small config (`machine large` header line).
     * Boundary behaviour — CpuMask word crossings at core 64, wide
     * IPI fan-outs, tick-wheel slot density — only exists there.
     */
    bool large = false;
    std::vector<Op> ops;
};

/** Knobs for generateScript(). */
struct GenOptions
{
    unsigned numOps = 400;
    bool pcid = false;
    unsigned procs = 2;
    /** Generate for the 120-core large-NUMA machine. */
    bool large = false;
    /** Region slots per run (shared namespace across processes). */
    unsigned maxSlots = 12;
    /** Largest small-page region, in pages. */
    unsigned maxPages = 48;
};

/**
 * Generate a pseudo-random but policy-agnostic script: ops whose
 * final architectural state is identical under every policy. Two
 * rules keep it that way: a slot touched by madvise or a NUMA sample
 * is not touched again until the next quiesce (a stale-hit there is
 * the paper's *legitimate* §4.4 window, where lazy and synchronous
 * policies transiently differ), and live footprint stays far below
 * physical memory so demand paging never dies of OOM.
 */
Script generateScript(std::uint64_t seed, const GenOptions &opt = {});

/** Render @p script in the stable text form. */
std::string serializeScript(const Script &script);

/**
 * Parse the text form. @return false (with *err set) on malformed
 * input; unknown directives are errors, blank lines and `#` comments
 * are skipped.
 */
bool parseScript(const std::string &text, Script *out,
                 std::string *err);

/** Read and parse @p path. @return false with *err set on failure. */
bool loadScriptFile(const std::string &path, Script *out,
                    std::string *err);

/** Serialize @p script to @p path. @return false on I/O failure. */
bool saveScriptFile(const std::string &path, const Script &script);

} // namespace latr

#endif // LATR_CHECK_SCRIPT_HH_
