#include "check/executor.hh"

#include <algorithm>

#include "machine/machine.hh"
#include "trace/chrome_trace.hh"

namespace latr
{

namespace
{

/** Executor bookkeeping for one script slot. */
struct SlotView
{
    bool live = false;
    bool huge = false;
    Addr addr = 0;
    std::uint64_t pages = 0;
    unsigned proc = 0;
};

/**
 * The executor's fixed machine: small enough to replay thousands of
 * scripts quickly, with ample physical memory so huge-page faults
 * never hit fragmentation (an allocHuge failure falls back to base
 * pages, whose frame accounting would *legitimately* differ across
 * policies and drown the differential signal).
 */
MachineConfig
executorConfig(const Script &script, const ExecOptions &opt)
{
    // Small scripts run a shrunken commodity box (2x4); `machine
    // large` scripts run the full 8-socket/120-core topology so the
    // differential harness exercises CpuMask word crossings, wide
    // IPI fan-outs, and the tick wheel at density. Memory and LLC
    // are scaled down in both cases — the scripts' footprints are
    // tiny and smaller caches reach interesting states sooner.
    MachineConfig cfg = script.large
                            ? MachineConfig::largeNuma8S120C()
                            : MachineConfig::commodity2S16C();
    cfg.name = "check";
    if (!script.large) {
        cfg.sockets = 2;
        cfg.coresPerSocket = 4;
    }
    cfg.framesPerNode = script.large ? 32 * 1024 : 64 * 1024;
    cfg.llcBytesPerSocket = 1 * 1024 * 1024;
    cfg.pcidEnabled = script.pcid;
    cfg.injectSkipLatrSweep = opt.injectSkipLatrSweep;
    cfg.injectMispredictSharers = opt.injectMispredictSharers;
    cfg.noFastpath = opt.noFastpath;
    cfg.simThreads = opt.simThreads;
    return cfg;
}

char
pageCode(const Pte *pte, bool huge)
{
    if (!pte || !pte->present())
        return '.';
    // NUMA-hint prot-none is deliberately NOT digested (see
    // RunResult::regionSig): advisory state, timing-coupled.
    if (pte->cow())
        return 'c';
    if (huge)
        return pte->writable() ? 'W' : 'R';
    return pte->writable() ? 'w' : 'r';
}

/** Region-relative digest of one live slot (see RunResult docs). */
std::string
digestSlot(AddressSpace &mm, const SlotView &slot)
{
    std::string sig;
    sig.reserve(slot.pages + 32);
    const Vpn base = pageOf(slot.addr);
    if (slot.huge) {
        for (Vpn block = base; block < base + slot.pages;
             block += kHugePageSpan) {
            const Pte *hpte = mm.pageTable().findHuge(block);
            if (hpte) {
                sig.push_back(pageCode(hpte, true));
                continue;
            }
            // Fragmentation fallback mapped base pages instead;
            // digest them individually.
            sig.push_back('[');
            for (Vpn vpn = block; vpn < block + kHugePageSpan; ++vpn)
                sig.push_back(
                    pageCode(mm.pageTable().find(vpn), false));
            sig.push_back(']');
        }
    } else {
        for (Vpn vpn = base; vpn < base + slot.pages; ++vpn)
            sig.push_back(pageCode(mm.pageTable().find(vpn), false));
    }
    // VMA cover, relative to the slot base.
    const Addr lo = slot.addr;
    const Addr hi = slot.addr + slot.pages * kPageSize;
    for (const auto &kv : mm.vmas()) {
        const Vma &vma = kv.second;
        if (!vma.overlaps(lo, hi))
            continue;
        const Addr s = std::max(vma.start, lo);
        const Addr e = std::min(vma.end, hi);
        sig += "|vma+" + std::to_string((s - lo) >> kPageShift) + ":" +
               std::to_string((e - s) >> kPageShift) + ":p" +
               std::to_string(vma.prot) + (vma.huge ? "H" : "");
    }
    return sig;
}

} // namespace

const std::vector<PolicyKind> &
allPolicyKinds()
{
    static const std::vector<PolicyKind> kinds = {
        PolicyKind::LinuxSync, PolicyKind::Latr, PolicyKind::Abis,
        PolicyKind::Barrelfish, PolicyKind::Predictive};
    return kinds;
}

RunResult
runScript(const Script &script, PolicyKind policy,
          const ExecOptions &opt)
{
    RunResult result;
    result.policy = policy;

    Machine machine(executorConfig(script, opt), policy);
    machine.installStalenessOracle(opt.strict);
    if (opt.trace) {
        machine.trace().setCapacity(1 << 20);
        machine.trace().setEnabled(true);
    }

    Kernel &kernel = machine.kernel();
    const unsigned cores = machine.topo().totalCores();
    const unsigned procs = script.procs > 0 ? script.procs : 1;

    std::vector<Process *> processes;
    for (unsigned p = 0; p < procs; ++p)
        processes.push_back(
            kernel.createProcess("p" + std::to_string(p)));
    // One task per core (no core ever idles, so scheduler ticks —
    // and with them LATR's sweeps — keep firing everywhere); task i
    // belongs to process i % procs.
    std::vector<Task *> tasks;
    for (CoreId c = 0; c < cores; ++c)
        tasks.push_back(kernel.spawnTask(processes[c % procs], c));
    machine.run(kUsec);

    std::vector<SlotView> slots;
    auto slot_at = [&](std::uint32_t idx) -> SlotView & {
        if (idx >= slots.size())
            slots.resize(idx + 1);
        return slots[idx];
    };
    // Ops that do not apply to the current state (dead slot, bad
    // offset, foreign task) are skipped — deterministically, from
    // script state alone, so minimized scripts replay identically.
    auto task_for = [&](const Op &op, const SlotView &slot) -> Task * {
        if (op.task >= tasks.size())
            return nullptr;
        Task *t = tasks[op.task];
        return t->process() == processes[slot.proc % procs] ? t
                                                            : nullptr;
    };

    // The script is a *serialized* history: each op completes —
    // including delivery of any IPIs it launched — before the next
    // op issues. Without this, a later op's staleness deadline could
    // land before an earlier op's still-in-flight invalidations,
    // and the oracle would report a phantom violation.
    auto settle = [&](Duration latency) { machine.run(latency); };

    for (const Op &op : script.ops) {
        SlotView &slot = slot_at(op.slot);
        switch (op.kind) {
          case OpKind::Mmap: {
            if (slot.live || op.task >= tasks.size() || op.value == 0)
                break;
            Task *t = tasks[op.task];
            SyscallResult r =
                kernel.mmap(t, op.value * kPageSize,
                            op.rw ? (kProtRead | kProtWrite)
                                  : kProtRead);
            settle(r.latency);
            if (r.ok)
                slot = SlotView{true, false, r.addr, op.value,
                                static_cast<unsigned>(
                                    op.task % procs)};
            break;
          }
          case OpKind::MmapHuge: {
            if (slot.live || op.task >= tasks.size() || op.value == 0)
                break;
            Task *t = tasks[op.task];
            SyscallResult r = kernel.mmapHuge(
                t, op.value * kHugePageSpan * kPageSize,
                kProtRead | kProtWrite);
            settle(r.latency);
            if (r.ok)
                slot = SlotView{true, true, r.addr,
                                op.value * kHugePageSpan,
                                static_cast<unsigned>(
                                    op.task % procs)};
            break;
          }
          case OpKind::Munmap:
          case OpKind::MunmapSync: {
            if (!slot.live)
                break;
            Task *t = task_for(op, slot);
            if (!t)
                break;
            settle(kernel
                       .munmap(t, slot.addr, slot.pages * kPageSize,
                               op.kind == OpKind::MunmapSync)
                       .latency);
            slot.live = false;
            break;
          }
          case OpKind::Madvise: {
            if (!slot.live)
                break;
            Task *t = task_for(op, slot);
            if (t)
                settle(kernel
                           .madvise(t, slot.addr,
                                    slot.pages * kPageSize)
                           .latency);
            break;
          }
          case OpKind::MadviseFree: {
            if (!slot.live)
                break;
            Task *t = task_for(op, slot);
            if (t)
                settle(kernel
                           .madviseFree(t, slot.addr,
                                        slot.pages * kPageSize)
                           .latency);
            break;
          }
          case OpKind::Mprotect: {
            if (!slot.live)
                break;
            Task *t = task_for(op, slot);
            if (t)
                settle(kernel
                           .mprotect(t, slot.addr,
                                     slot.pages * kPageSize,
                                     op.rw ? (kProtRead | kProtWrite)
                                           : kProtRead)
                           .latency);
            break;
          }
          case OpKind::Mremap: {
            if (!slot.live || slot.huge || op.value == 0)
                break;
            Task *t = task_for(op, slot);
            if (!t)
                break;
            SyscallResult r =
                kernel.mremap(t, slot.addr, slot.pages * kPageSize,
                              op.value * kPageSize);
            settle(r.latency);
            if (r.ok) {
                slot.addr = r.addr;
                slot.pages = op.value;
            }
            break;
          }
          case OpKind::MarkCow: {
            if (!slot.live)
                break;
            Task *t = task_for(op, slot);
            if (t)
                settle(kernel
                           .markCow(t, slot.addr,
                                    slot.pages * kPageSize)
                           .latency);
            break;
          }
          case OpKind::Touch: {
            if (!slot.live || op.off >= slot.pages)
                break;
            Task *t = task_for(op, slot);
            if (t)
                settle(kernel
                           .touch(t, slot.addr + op.off * kPageSize,
                                  op.rw)
                           .latency);
            break;
          }
          case OpKind::NumaSample: {
            if (!slot.live || op.off >= slot.pages)
                break;
            Task *t = task_for(op, slot);
            if (t)
                settle(kernel.numaSample(t,
                                         pageOf(slot.addr) + op.off));
            break;
          }
          case OpKind::CtxSwitch:
            if (op.value < cores)
                settle(machine.scheduler().contextSwitch(
                    static_cast<CoreId>(op.value)));
            break;
          case OpKind::Advance:
            machine.run(op.value * kUsec);
            break;
          case OpKind::Quiesce:
            // Long enough for LATR's 2 ms reclaim age plus a sweep
            // epoch on every core.
            machine.run(5 * kMsec);
            break;
        }
    }

    // Implicit final quiesce: settle every lazy path, then audit.
    machine.run(10 * kMsec);
    if (machine.staleness())
        machine.staleness()->auditAt(machine.now());

    result.invariantViolations = machine.checker()->violations();
    result.firstInvariant = machine.checker()->firstViolation();
    result.stalenessViolations = machine.staleness()->violations();
    result.firstStaleness = machine.staleness()->firstViolation();
    result.allocatedFrames = machine.frames().allocatedFrames();
    result.latrFallbackIpis =
        machine.stats().counter("latr.fallback_ipis").value();
    for (unsigned s = 0; s < slots.size(); ++s)
        if (slots[s].live)
            result.regionSig[s] = digestSlot(
                processes[slots[s].proc % procs]->mm(), slots[s]);
    for (Process *p : processes) {
        result.mmPresentPages.push_back(
            p->mm().pageTable().presentPages());
        result.heldBackBytes += p->mm().heldBackBytes();
    }

    if (opt.trace && !opt.tracePath.empty())
        writeChromeTraceFile(machine.trace(), &machine.topo(),
                             opt.tracePath);
    return result;
}

DiffResult
diffStates(const RunResult &a, const RunResult &b)
{
    DiffResult d;
    auto diverge = [&](std::string what) {
        d.equivalent = false;
        d.divergence = std::string(policyKindName(a.policy)) + " vs " +
                       policyKindName(b.policy) + ": " + what;
    };
    if (a.regionSig.size() != b.regionSig.size()) {
        diverge("live region count " +
                std::to_string(a.regionSig.size()) + " != " +
                std::to_string(b.regionSig.size()));
        return d;
    }
    for (const auto &kv : a.regionSig) {
        auto it = b.regionSig.find(kv.first);
        if (it == b.regionSig.end()) {
            diverge("slot " + std::to_string(kv.first) +
                    " live only under the baseline");
            return d;
        }
        if (it->second != kv.second) {
            diverge("slot " + std::to_string(kv.first) + " digest [" +
                    kv.second + "] != [" + it->second + "]");
            return d;
        }
    }
    if (a.mmPresentPages != b.mmPresentPages) {
        diverge("per-mm present-page counts differ");
        return d;
    }
    if (a.allocatedFrames != b.allocatedFrames) {
        diverge("allocated frames " +
                std::to_string(a.allocatedFrames) + " != " +
                std::to_string(b.allocatedFrames));
        return d;
    }
    if (a.heldBackBytes != b.heldBackBytes) {
        diverge("held-back VA bytes " +
                std::to_string(a.heldBackBytes) + " != " +
                std::to_string(b.heldBackBytes));
        return d;
    }
    return d;
}

std::vector<RunResult>
runDifferential(const Script &script, const ExecOptions &opt,
                DiffResult *diff)
{
    std::vector<RunResult> results;
    for (PolicyKind kind : allPolicyKinds())
        results.push_back(runScript(script, kind, opt));
    if (diff) {
        *diff = DiffResult{};
        for (std::size_t i = 1; i < results.size(); ++i) {
            DiffResult d = diffStates(results[0], results[i]);
            if (!d.equivalent) {
                *diff = d;
                break;
            }
        }
    }
    return results;
}

} // namespace latr
