/**
 * @file
 * The bounded-staleness oracle. The paper's §3/§4.2 argument is not
 * just the reuse invariant (InvariantChecker) but a *liveness* bound:
 * once a kernel operation invalidates translations in the page
 * tables, every TLB copy must die within the policy's contract —
 * immediately for synchronous policies, within one scheduler epoch
 * for LATR. This oracle mirrors TLB contents, lets the kernel mark
 * every invalidated-in-page-tables range with its contract deadline,
 * and flags any translation that is removed late — or never.
 */

#ifndef LATR_CHECK_STALENESS_HH_
#define LATR_CHECK_STALENESS_HH_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "hw/tlb.hh"
#include "mem/frame_allocator.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace latr
{

/**
 * Watches TLBs and enforces each policy's staleness contract.
 *
 * Usage: attach to every TLB (addListener) and the frame allocator,
 * attach the event queue as the clock, and have the kernel call
 * notePageTableInvalidation() after each page-table-invalidating
 * operation with `deadline = op completion + contract.epochBound`.
 * Only translations still cached somewhere at that point are marked;
 * each mark must be cleared (by the TLB removal the policy owes us)
 * no later than its deadline. auditAt() catches marks that were
 * never cleared at all.
 */
class StalenessOracle : public TlbListener, public FrameListener
{
  public:
    /**
     * @param strict panic on the first violation instead of
     *        counting (useful under a debugger).
     */
    explicit StalenessOracle(bool strict = false);

    /** Use @p queue's clock to timestamp removals. */
    void attachClock(const EventQueue *queue) { clock_ = queue; }

    /** Override the clock (white-box unit tests). */
    void
    setNow(Tick now)
    {
        manualNow_ = now;
        useManualNow_ = true;
    }

    /// @name TlbListener
    /// @{
    void onTlbInsert(CoreId core, Vpn vpn, Pfn pfn, Pcid pcid) override;
    void onTlbRemove(CoreId core, Vpn vpn, Pfn pfn, Pcid pcid) override;
    /// @}

    /// @name FrameListener
    /// @{
    void onFrameAlloc(Pfn pfn) override;
    void onFrameFree(Pfn pfn) override;
    /// @}

    /**
     * The kernel invalidated [start_vpn, end_vpn] of @p pcid in the
     * page tables; the policy promised every TLB copy dies by
     * @p deadline. Marks every translation of the range still
     * mirrored on a core in @p cores. Re-marking keeps the earliest
     * deadline (an older, stricter promise stays binding).
     *
     * @param op short operation label for violation reports
     *        (e.g. "munmap"); must outlive the oracle (static).
     */
    void notePageTableInvalidation(Pcid pcid, MmId mm, Vpn start_vpn,
                                   Vpn end_vpn, const CpuMask &cores,
                                   Tick deadline, const char *op);

    /**
     * End-of-run audit: any mark still pending past its deadline at
     * @p now means the policy never invalidated the translation.
     */
    void auditAt(Tick now);

    /** Marks currently pending (translations awaiting removal). */
    std::uint64_t pendingMarks() const { return pendingMarks_; }

    /** Total TLB entries currently mirrored. */
    std::uint64_t mirroredEntries() const { return entries_; }

    /** Total violations observed. */
    std::uint64_t violations() const { return violations_; }

    /** Human-readable description of the first violation, if any. */
    const std::string &firstViolation() const { return first_; }

    /** Drop all state (mirrors, marks, violation log). */
    void reset();

  private:
    struct Key
    {
        Vpn vpn;
        Pcid pcid;

        bool
        operator==(const Key &o) const
        {
            return vpn == o.vpn && pcid == o.pcid;
        }
    };

    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            return std::hash<std::uint64_t>()(
                (static_cast<std::uint64_t>(k.pcid) << 48) ^ k.vpn);
        }
    };

    /** One invalidated-in-page-tables translation awaiting removal. */
    struct Mark
    {
        Tick deadline;
        Pfn pfn;
        MmId mm;
        const char *op;
    };

    using Mirror = std::unordered_map<Key, Pfn, KeyHash>;
    using Marks = std::unordered_map<Key, Mark, KeyHash>;

    Tick now() const;
    void growTo(CoreId core);
    void place(CoreId core, const Key &k, const Mark &m);
    void clearMark(CoreId core, Marks::iterator it);
    void violation(std::string what);

    bool strict_;
    const EventQueue *clock_ = nullptr;
    Tick manualNow_ = 0;
    bool useManualNow_ = false;

    std::vector<Mirror> mirrors_; // per core
    std::vector<Marks> marks_;    // per core
    std::unordered_map<Pfn, unsigned> markedPfns_;

    std::uint64_t entries_ = 0;
    std::uint64_t pendingMarks_ = 0;
    std::uint64_t violations_ = 0;
    std::string first_;
};

} // namespace latr

#endif // LATR_CHECK_STALENESS_HH_
