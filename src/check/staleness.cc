#include "check/staleness.hh"

#include <utility>

#include "sim/logging.hh"

namespace latr
{

StalenessOracle::StalenessOracle(bool strict) : strict_(strict)
{
}

Tick
StalenessOracle::now() const
{
    if (useManualNow_)
        return manualNow_;
    return clock_ ? clock_->now() : 0;
}

void
StalenessOracle::growTo(CoreId core)
{
    if (core >= mirrors_.size()) {
        mirrors_.resize(core + 1);
        marks_.resize(core + 1);
    }
}

void
StalenessOracle::violation(std::string what)
{
    ++violations_;
    if (first_.empty())
        first_ = what;
    if (strict_)
        panic("staleness contract violated: %s", what.c_str());
}

void
StalenessOracle::onTlbInsert(CoreId core, Vpn vpn, Pfn pfn, Pcid pcid)
{
    growTo(core);
    const Key k{vpn, pcid};
    auto ins = mirrors_[core].emplace(k, pfn);
    if (ins.second)
        ++entries_;
    else
        ins.first->second = pfn;
    // A fresh translation supersedes any pending mark for the key
    // (the TLB reported the old entry's removal first, so normally
    // none exists; this is defensive).
    auto it = marks_[core].find(k);
    if (it != marks_[core].end())
        clearMark(core, it);
}

void
StalenessOracle::onTlbRemove(CoreId core, Vpn vpn, Pfn pfn, Pcid pcid)
{
    growTo(core);
    const Key k{vpn, pcid};
    if (mirrors_[core].erase(k))
        --entries_;
    auto it = marks_[core].find(k);
    if (it == marks_[core].end())
        return;
    const Mark &m = it->second;
    const Tick t = now();
    if (t > m.deadline) {
        violation("stale translation outlived its bound: core " +
                  std::to_string(core) + " vpn " + std::to_string(vpn) +
                  " pcid " + std::to_string(pcid) + " pfn " +
                  std::to_string(pfn) + " (mm " + std::to_string(m.mm) +
                  ", " + m.op + ") invalidated at " +
                  std::to_string(t) + " ns, deadline " +
                  std::to_string(m.deadline) + " ns");
    }
    clearMark(core, it);
}

void
StalenessOracle::onFrameAlloc(Pfn pfn)
{
    // The reuse invariant proper is InvariantChecker's job; this
    // adds op attribution when the colliding translation is one a
    // policy already promised to kill.
    auto it = markedPfns_.find(pfn);
    if (it == markedPfns_.end())
        return;
    violation("frame " + std::to_string(pfn) +
              " reallocated while " + std::to_string(it->second) +
              " stale translation(s) to it await invalidation");
}

void
StalenessOracle::onFrameFree(Pfn)
{
}

void
StalenessOracle::place(CoreId core, const Key &k, const Mark &m)
{
    auto ins = marks_[core].emplace(k, m);
    if (ins.second) {
        ++pendingMarks_;
        ++markedPfns_[m.pfn];
    } else if (m.deadline < ins.first->second.deadline) {
        // Keep the earliest deadline: the older promise still binds.
        ins.first->second.deadline = m.deadline;
        ins.first->second.op = m.op;
    }
}

void
StalenessOracle::clearMark(CoreId core, Marks::iterator it)
{
    auto ref = markedPfns_.find(it->second.pfn);
    if (ref != markedPfns_.end() && --ref->second == 0)
        markedPfns_.erase(ref);
    marks_[core].erase(it);
    --pendingMarks_;
}

void
StalenessOracle::notePageTableInvalidation(Pcid pcid, MmId mm,
                                           Vpn start_vpn, Vpn end_vpn,
                                           const CpuMask &cores,
                                           Tick deadline, const char *op)
{
    cores.forEach([&](CoreId core) {
        if (core >= mirrors_.size())
            return;
        const Mirror &mirror = mirrors_[core];
        if (mirror.empty())
            return;
        // Scan whichever side is smaller: the vpn range or the
        // core's whole mirror.
        const std::uint64_t span = end_vpn - start_vpn + 1;
        if (span <= mirror.size()) {
            for (Vpn vpn = start_vpn; vpn <= end_vpn; ++vpn) {
                auto it = mirror.find(Key{vpn, pcid});
                if (it != mirror.end())
                    place(core, it->first,
                          Mark{deadline, it->second, mm, op});
            }
        } else {
            for (const auto &kv : mirror) {
                if (kv.first.pcid == pcid &&
                    kv.first.vpn >= start_vpn &&
                    kv.first.vpn <= end_vpn)
                    place(core, kv.first,
                          Mark{deadline, kv.second, mm, op});
            }
        }
    });
}

void
StalenessOracle::auditAt(Tick now)
{
    for (CoreId core = 0; core < marks_.size(); ++core) {
        for (const auto &kv : marks_[core]) {
            const Mark &m = kv.second;
            if (now <= m.deadline)
                continue;
            violation("stale translation never invalidated: core " +
                      std::to_string(core) + " vpn " +
                      std::to_string(kv.first.vpn) + " pcid " +
                      std::to_string(kv.first.pcid) + " pfn " +
                      std::to_string(m.pfn) + " (mm " +
                      std::to_string(m.mm) + ", " + m.op +
                      ") deadline " + std::to_string(m.deadline) +
                      " ns, audited at " + std::to_string(now) + " ns");
        }
    }
}

void
StalenessOracle::reset()
{
    mirrors_.clear();
    marks_.clear();
    markedPfns_.clear();
    entries_ = 0;
    pendingMarks_ = 0;
    violations_ = 0;
    first_.clear();
}

} // namespace latr
