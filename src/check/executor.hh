/**
 * @file
 * The differential executor: replays one op-script (script.hh) on a
 * fresh simulated machine under a given coherence policy, with the
 * reuse-invariant checker and the bounded-staleness oracle attached,
 * and digests the final architectural state. Replaying the same
 * script under all five policies and diffing the digests mechanises
 * the paper's §3 equivalence claim: policies may differ in *when*
 * TLB entries die, never in what the page tables, VMA sets, or the
 * allocator balance say afterwards.
 */

#ifndef LATR_CHECK_EXECUTOR_HH_
#define LATR_CHECK_EXECUTOR_HH_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "check/script.hh"
#include "tlbcoh/policy.hh"

namespace latr
{

/** Knobs for runScript(). */
struct ExecOptions
{
    /** Record a Chrome trace of the run (see tracePath). */
    bool trace = false;
    std::string tracePath;
    /** Panic at the first oracle/invariant violation. */
    bool strict = false;
    /** Fault injection: break LATR's sweep (oracle must notice). */
    bool injectSkipLatrSweep = false;
    /**
     * Fault injection: force PredictivePolicy to predict the empty
     * sharer set on every free. The mirrored-TLB verification must
     * absorb every miss — runs stay staleness-clean, unlike
     * injectSkipLatrSweep.
     */
    bool injectMispredictSharers = false;
    /** Force the naive engine paths (MachineConfig::noFastpath). */
    bool noFastpath = false;
    /**
     * Parallel-engine threads (MachineConfig::simThreads): 0 keeps
     * the classic sequential engine, N >= 1 runs the batched engine.
     * A host-speed knob only — results must be byte-identical — so
     * the differential harness doubles as the engine's equivalence
     * oracle.
     */
    unsigned simThreads = 0;
};

/** Outcome of one script run under one policy. */
struct RunResult
{
    PolicyKind policy = PolicyKind::LinuxSync;

    /// @name Oracle verdicts
    /// @{
    std::uint64_t invariantViolations = 0;
    std::uint64_t stalenessViolations = 0;
    std::string firstInvariant;
    std::string firstStaleness;
    /// @}

    /// @name Architectural state after the final quiesce
    /// @{
    /**
     * Per live slot, a position-independent digest of its pages
     * (one char each: '.' absent, 'w'/'r' mapped, 'c' CoW, 'W'/'R'
     * huge-mapped) and its VMA cover, all relative to the region
     * base so policy-dependent VA placement (LATR's holdback shifts
     * mmap addresses) cancels out. Accessed/Dirty PTE bits are
     * excluded: hit-vs-refault paths set them differently without
     * architectural meaning. The NUMA-hint prot-none bit is excluded
     * for the same reason: it is advisory sampling state, and a
     * lazy policy legitimately drops a pending hint when a
     * VA-mutating op (mremap) races its deferred PTE clear.
     */
    std::map<unsigned, std::string> regionSig;
    /** Per process, pages currently present in its page table. */
    std::vector<std::uint64_t> mmPresentPages;
    std::uint64_t allocatedFrames = 0;
    std::uint64_t heldBackBytes = 0;
    /// @}

    /** LATR only: how often the ring-full IPI fallback fired. */
    std::uint64_t latrFallbackIpis = 0;

    bool
    clean() const
    {
        return invariantViolations == 0 && stalenessViolations == 0;
    }
};

/** A cross-policy comparison verdict. */
struct DiffResult
{
    bool equivalent = true;
    /** Human-readable description of the first divergence. */
    std::string divergence;
};

/** Replay @p script under @p policy on a fresh machine. */
RunResult runScript(const Script &script, PolicyKind policy,
                    const ExecOptions &opt = {});

/**
 * Diff two runs' architectural state (oracle verdicts are judged
 * separately via clean()).
 */
DiffResult diffStates(const RunResult &a, const RunResult &b);

/**
 * Run @p script under all five policies and diff every run against
 * the LinuxSync baseline. @return per-policy results (index order:
 * LinuxSync, Latr, Abis, Barrelfish, Predictive) plus the first
 * divergence.
 */
std::vector<RunResult> runDifferential(const Script &script,
                                       const ExecOptions &opt,
                                       DiffResult *diff);

/** All five policy kinds, baseline first. */
const std::vector<PolicyKind> &allPolicyKinds();

} // namespace latr

#endif // LATR_CHECK_EXECUTOR_HH_
