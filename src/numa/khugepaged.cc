#include "numa/khugepaged.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace latr
{

Khugepaged::Khugepaged(Kernel &kernel, Duration scan_interval,
                       unsigned promotions_per_round)
    : kernel_(kernel), scanInterval_(scan_interval),
      promotionsPerRound_(promotions_per_round), scanEvent_(this)
{
}

Khugepaged::~Khugepaged()
{
    stop();
}

void
Khugepaged::track(Process *process)
{
    tracked_.push_back(process);
}

void
Khugepaged::start()
{
    if (running_)
        return;
    running_ = true;
    kernel_.queue().schedule(&scanEvent_,
                             kernel_.now() + scanInterval_);
}

void
Khugepaged::stop()
{
    if (!running_)
        return;
    running_ = false;
    if (scanEvent_.scheduled())
        kernel_.queue().deschedule(&scanEvent_);
}

Duration
Khugepaged::collapse(Process *process, Vpn base_vpn)
{
    AddressSpace &mm = process->mm();
    Task *context =
        process->tasks().empty() ? nullptr : process->tasks().front();
    if (!context)
        return 0;

    // Re-validate: every base page present, none sampled/CoW, no
    // existing PMD mapping.
    if (mm.pageTable().findHuge(base_vpn))
        return 0;
    std::vector<Pfn> old_frames;
    old_frames.reserve(kHugePageSpan);
    std::uint8_t prot_flags = 0;
    for (Vpn v = base_vpn; v < base_vpn + kHugePageSpan; ++v) {
        const Pte *pte = mm.pageTable().find(v);
        if (!pte || pte->protNone() || pte->cow())
            return 0;
        old_frames.push_back(pte->pfn);
        prot_flags |= pte->flags & kPteWrite;
    }

    // A contiguous destination. Fragmentation may defeat this; the
    // compaction daemon is the remedy.
    const NodeId node = kernel_.topo().nodeOf(context->core());
    const Pfn huge = kernel_.frames().allocHuge(node);
    if (huge == kPfnInvalid)
        return 0;

    const CostModel &cost = kernel_.cost();
    const CoreId core = context->core();
    Duration spent = 0;

    // Unmap the 512 base PTEs and shoot the range down — this remaps
    // physical addresses, so it is synchronous under every policy
    // (table 1's remap row).
    for (Vpn v = base_vpn; v < base_vpn + kHugePageSpan; ++v)
        mm.pageTable().unmap(v);
    spent += cost.pteClearPerPage * 8; // batched PMD-leaf clears
    kernel_.scheduler().tlbOf(core).invalidateRange(
        base_vpn, base_vpn + kHugePageSpan - 1, mm.pcid());
    spent += cost.tlbFullFlush;
    spent += kernel_.policy()->onSyncShootdown(
        &mm, core, base_vpn, base_vpn + kHugePageSpan - 1,
        kHugePageSpan, kernel_.now() + spent);

    // Copy and install the PMD mapping.
    spent += cost.migrateCopyPerPage * (kHugePageSpan / 8);
    mm.pageTable().mapHuge(base_vpn, huge,
                           static_cast<std::uint8_t>(prot_flags |
                                                     kPteAccessed));

    // The old frames return to the pool once the shootdown finished
    // (every invalidation event precedes the last ACK).
    FrameAllocator &frames = kernel_.frames();
    kernel_.queue().scheduleLambda(
        kernel_.now() + spent, [&frames, old_frames]() {
            for (Pfn f : old_frames)
                frames.put(f);
        });

    ++stats_.promotions;
    kernel_.stats().counter("thp.promotions").inc();
    kernel_.scheduler().chargeStolen(core, spent);
    return spent;
}

void
Khugepaged::scan()
{
    unsigned promoted = 0;
    for (Process *process : tracked_) {
        if (promoted >= promotionsPerRound_)
            break;
        AddressSpace &mm = process->mm();

        // Candidate regions: aligned, fully-covered-by-one-VMA
        // 2 MiB spans with all base pages present.
        for (const auto &kv : mm.vmas()) {
            const Vma &vma = kv.second;
            if (vma.huge)
                continue; // already faulting hugely
            Vpn first = hugeBaseOf(pageOf(vma.start) +
                                   kHugePageSpan - 1);
            for (Vpn base = first;
                 base + kHugePageSpan <= pageOf(vma.end) &&
                 promoted < promotionsPerRound_;
                 base += kHugePageSpan) {
                ++stats_.regionsScanned;
                // Quick census before the expensive re-validation.
                std::uint64_t present = 0;
                mm.pageTable().forEachPresent(
                    base, base + kHugePageSpan - 1,
                    [&](Vpn, Pte &) { ++present; });
                if (present != kHugePageSpan)
                    continue;
                if (collapse(process, base) > 0)
                    ++promoted;
                else
                    ++stats_.aborts;
            }
            if (promoted >= promotionsPerRound_)
                break;
        }
    }
    kernel_.queue().schedule(&scanEvent_,
                             kernel_.now() + scanInterval_);
}

} // namespace latr
