#include "numa/swap.hh"

namespace latr
{

namespace
{
std::uint64_t
swapKey(MmId mm, Vpn vpn)
{
    return (mm << 40) ^ vpn;
}
} // namespace

SwapDaemon::SwapDaemon(Kernel &kernel, Duration scan_interval,
                       unsigned max_evictions_per_scan)
    : kernel_(kernel), scanInterval_(scan_interval),
      maxEvictions_(max_evictions_per_scan), scanEvent_(this)
{
}

SwapDaemon::~SwapDaemon()
{
    stop();
}

void
SwapDaemon::track(Process *process)
{
    tracked_.push_back(process);
}

void
SwapDaemon::start()
{
    if (running_)
        return;
    running_ = true;
    kernel_.queue().schedule(&scanEvent_,
                             kernel_.now() + scanInterval_);
}

void
SwapDaemon::stop()
{
    if (!running_)
        return;
    running_ = false;
    if (scanEvent_.scheduled())
        kernel_.queue().deschedule(&scanEvent_);
}

bool
SwapDaemon::wasSwappedOut(MmId mm, Vpn vpn) const
{
    return swappedOut_.count(swapKey(mm, vpn)) != 0;
}

void
SwapDaemon::scan()
{
    unsigned evicted = 0;
    for (Process *process : tracked_) {
        if (evicted >= maxEvictions_)
            break;
        AddressSpace &mm = process->mm();
        Task *context = process->tasks().empty()
                            ? nullptr
                            : process->tasks().front();
        if (!context)
            continue;

        // One-hand clock: pages with the accessed bit get a second
        // chance (bit cleared); cold pages are evicted.
        std::vector<Vpn> cold;
        for (const auto &kv : mm.vmas()) {
            const Vma &vma = kv.second;
            mm.pageTable().forEachPresent(
                pageOf(vma.start), pageOf(vma.end) - 1,
                [&](Vpn vpn, Pte &pte) {
                    if (pte.protNone())
                        return; // mid-sample; leave alone
                    if (pte.accessed()) {
                        pte.flags &= static_cast<std::uint8_t>(
                            ~kPteAccessed);
                    } else if (cold.size() <
                               maxEvictions_ - evicted) {
                        cold.push_back(vpn);
                    }
                });
            if (cold.size() >= maxEvictions_ - evicted)
                break;
        }

        // Evict via madvise-like lazy free: the policy owns the
        // shootdown and frame release (lazy under LATR).
        for (Vpn vpn : cold) {
            SyscallResult r =
                kernel_.madvise(context, addrOf(vpn), kPageSize);
            if (r.ok) {
                swappedOut_.insert(swapKey(mm.id(), vpn));
                ++evicted;
                ++evictions_;
                kernel_.stats().counter("swap.evictions").inc();
            }
        }
    }
    kernel_.queue().schedule(&scanEvent_,
                             kernel_.now() + scanInterval_);
}

} // namespace latr
