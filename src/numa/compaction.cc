#include "numa/compaction.hh"

#include <algorithm>

#include "numa/migration.hh"
#include "sim/logging.hh"

namespace latr
{

CompactionDaemon::CompactionDaemon(Kernel &kernel, NodeId node,
                                   Duration scan_interval,
                                   unsigned moves_per_round)
    : kernel_(kernel), node_(node), scanInterval_(scan_interval),
      movesPerRound_(moves_per_round), roundEvent_(this)
{
}

CompactionDaemon::~CompactionDaemon()
{
    stop();
}

void
CompactionDaemon::track(Process *process)
{
    tracked_.push_back(process);
}

void
CompactionDaemon::start()
{
    if (running_)
        return;
    running_ = true;
    kernel_.queue().schedule(&roundEvent_,
                             kernel_.now() + scanInterval_);
}

void
CompactionDaemon::stop()
{
    if (!running_)
        return;
    running_ = false;
    if (roundEvent_.scheduled())
        kernel_.queue().deschedule(&roundEvent_);
}

Pfn
CompactionDaemon::highWatermark() const
{
    const std::uint64_t per_node = kernel_.frames().framesPerNode();
    return static_cast<Pfn>(node_) * per_node + per_node / 2;
}

double
CompactionDaemon::highFrameFraction() const
{
    const FrameAllocator &frames = kernel_.frames();
    const Pfn mark = highWatermark();
    std::uint64_t high = 0;
    std::uint64_t total = 0;
    for (Process *process : tracked_) {
        AddressSpace &mm = process->mm();
        for (const auto &kv : mm.vmas()) {
            const Vma &vma = kv.second;
            mm.pageTable().forEachPresent(
                pageOf(vma.start), pageOf(vma.end) - 1,
                [&](Vpn, Pte &pte) {
                    if (frames.nodeOf(pte.pfn) != node_)
                        return;
                    ++total;
                    if (pte.pfn >= mark)
                        ++high;
                });
        }
    }
    return total ? static_cast<double>(high) / total : 0.0;
}

void
CompactionDaemon::round()
{
    const Pfn mark = highWatermark();
    std::vector<PendingMove> moves;
    Duration sample_cost = 0;

    for (Process *process : tracked_) {
        if (moves.size() >= movesPerRound_)
            break;
        AddressSpace &mm = process->mm();
        Task *context = process->tasks().empty()
                            ? nullptr
                            : process->tasks().front();
        if (!context)
            continue;
        const FrameAllocator &frames = kernel_.frames();
        std::vector<Vpn> candidates;
        for (const auto &kv : mm.vmas()) {
            const Vma &vma = kv.second;
            mm.pageTable().forEachPresent(
                pageOf(vma.start), pageOf(vma.end) - 1,
                [&](Vpn vpn, Pte &pte) {
                    if (candidates.size() >=
                        movesPerRound_ - moves.size())
                        return;
                    if (pte.protNone())
                        return;
                    if (frames.nodeOf(pte.pfn) == node_ &&
                        pte.pfn >= mark)
                        candidates.push_back(vpn);
                });
            if (candidates.size() >= movesPerRound_ - moves.size())
                break;
        }
        // Phase 1: sample each candidate through the coherence
        // policy — no IPI under LATR; the first sweeping core does
        // the prot-none unmap (exactly the AutoNUMA recipe).
        for (Vpn vpn : candidates) {
            sample_cost += kernel_.numaSample(context, vpn);
            ++stats_.samples;
            moves.push_back({process, vpn});
        }
        kernel_.scheduler().chargeStolen(context->core(),
                                         sample_cost);
    }

    if (!moves.empty()) {
        // Phase 2 after every core's gate: the policy bound is one
        // tick interval (+ sweep slack) from now.
        const Tick complete_at = kernel_.now() +
                                 kernel_.cost().tickInterval +
                                 10 * kUsec;
        auto pending = std::move(moves);
        kernel_.queue().scheduleLambda(
            complete_at, [this, pending = std::move(pending)]() {
                completeMoves(pending);
            });
    }
    if (running_)
        kernel_.queue().schedule(&roundEvent_,
                                 kernel_.now() + scanInterval_);
}

void
CompactionDaemon::completeMoves(std::vector<PendingMove> moves)
{
    PageMigrator migrator(kernel_);
    FrameAllocator &frames = kernel_.frames();
    const Pfn mark = highWatermark();
    Duration spent = 0;
    Task *context = nullptr;

    for (const PendingMove &move : moves) {
        AddressSpace &mm = move.process->mm();
        context = move.process->tasks().empty()
                      ? nullptr
                      : move.process->tasks().front();
        if (!context) {
            ++stats_.aborts;
            continue;
        }
        Pte *pte = mm.pageTable().find(move.vpn);
        if (!pte || !pte->protNone()) {
            // The page vanished or got touched (hot page): leave it
            // alone, like kcompactd skipping busy pages.
            ++stats_.aborts;
            continue;
        }
        const Pfn target = frames.allocLowest(node_);
        if (target == kPfnInvalid || target >= mark ||
            target >= pte->pfn) {
            // No better frame available.
            if (target != kPfnInvalid)
                frames.put(target);
            ++stats_.aborts;
            continue;
        }
        // Restore accessibility, then move onto the chosen frame.
        pte->flags &= static_cast<std::uint8_t>(~kPteProtNone);
        bool moved = false;
        spent += migrator.migrateToFrame(context, move.vpn, target,
                                         &moved);
        if (moved) {
            ++stats_.pagesMoved;
            kernel_.stats().counter("compaction.pages_moved").inc();
        } else {
            ++stats_.aborts;
        }
    }
    if (context)
        kernel_.scheduler().chargeStolen(context->core(), spent);
}

} // namespace latr
