/**
 * @file
 * Page migration: move a page's backing frame to another NUMA node.
 * The migration itself follows Linux's migrate_pages() shape — unmap
 * via try_to_unmap (with its own synchronous shootdown), copy, remap
 * — under every policy; what LATR removes is the *sampling*
 * shootdown (change_prot_numa), which costs 5.8%–21.1% of the whole
 * migration (paper section 2.1).
 */

#ifndef LATR_NUMA_MIGRATION_HH_
#define LATR_NUMA_MIGRATION_HH_

#include "os/kernel.hh"
#include "sim/types.hh"

namespace latr
{

/** Moves pages between NUMA nodes. */
class PageMigrator
{
  public:
    explicit PageMigrator(Kernel &kernel);

    /**
     * Migrate @p vpn of @p task's mm to @p target.
     * @return CPU time spent in the fault context; zero latency and
     *         no effect if the page is gone or memory is exhausted
     *         (migration aborts, as in Linux).
     */
    Duration migrate(Task *task, Vpn vpn, NodeId target);

    /**
     * Migrate @p vpn onto a specific, already-allocated @p frame
     * (refcount 1, owned by the caller until this returns). Used by
     * the compaction daemon to move pages into chosen low frames.
     * On abort the frame is released back.
     * @param moved_out true if the page actually moved.
     */
    Duration migrateToFrame(Task *task, Vpn vpn, Pfn frame,
                            bool *moved_out = nullptr);

    std::uint64_t migrations() const { return migrations_; }

  private:
    Kernel &kernel_;
    std::uint64_t migrations_ = 0;
};

} // namespace latr

#endif // LATR_NUMA_MIGRATION_HH_
