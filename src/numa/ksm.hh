/**
 * @file
 * Same-page merging (the KSM analogue) — the "deduplication" row of
 * the paper's table 1, and one of its lazy-capable migration-class
 * operations. The daemon scans content-tagged pages of tracked
 * processes; when two stable pages carry the same tag it merges
 * them: both mappings are write-protected and marked CoW with a
 * synchronous shootdown (revoking write access is an ownership
 * change — it can never be lazy), the duplicate's PTE is switched to
 * the survivor's frame, and the duplicate frame is released through
 * the coherence policy's *free* path. Under LATR that release is
 * lazy, and soundly so: any core still reading through a stale
 * translation of the duplicate reads a page with identical content
 * (the reason table 1 marks deduplication lazy-capable), and writes
 * are impossible because the write bits were revoked synchronously
 * first.
 */

#ifndef LATR_NUMA_KSM_HH_
#define LATR_NUMA_KSM_HH_

#include <unordered_map>
#include <vector>

#include "os/kernel.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace latr
{

/** Same-page-merging statistics. */
struct KsmStats
{
    std::uint64_t merges = 0;
    std::uint64_t pagesScanned = 0;
    /** Frames returned to the pool by merging. */
    std::uint64_t framesFreed = 0;
};

/** Background same-page-merging daemon. */
class KsmDaemon
{
  public:
    /**
     * @param kernel the kernel.
     * @param scan_interval period between merge scans.
     * @param merges_per_round merge batch bound per scan.
     */
    KsmDaemon(Kernel &kernel, Duration scan_interval,
              unsigned merges_per_round);

    ~KsmDaemon();

    KsmDaemon(const KsmDaemon &) = delete;
    KsmDaemon &operator=(const KsmDaemon &) = delete;

    /** Consider @p process's tagged pages for merging. */
    void track(Process *process);

    void start();
    void stop();

    const KsmStats &stats() const { return stats_; }

  private:
    class ScanEvent : public Event
    {
      public:
        explicit ScanEvent(KsmDaemon *kd) : kd_(kd) {}
        void process() override { kd_->scan(); }
        const char *name() const override { return "ksm-scan"; }

      private:
        KsmDaemon *kd_;
    };

    void scan();

    /**
     * Merge @p dup_vpn of @p dup (currently backed by its own
     * frame) onto the survivor's frame. Both mappings end up
     * CoW-protected.
     * @return CPU time spent.
     */
    Duration merge(Process *dup, Vpn dup_vpn, Process *survivor,
                   Vpn survivor_vpn, Pfn survivor_frame);

    Kernel &kernel_;
    Duration scanInterval_;
    unsigned mergesPerRound_;
    ScanEvent scanEvent_;
    bool running_ = false;

    std::vector<Process *> tracked_;
    KsmStats stats_;
};

} // namespace latr

#endif // LATR_NUMA_KSM_HH_
