/**
 * @file
 * AutoNUMA: Linux's automatic NUMA balancing (paper sections 2.1 and
 * 4.3). A background scan periodically samples pages of tracked
 * processes by making their PTEs prot-none — through the attached
 * coherence policy, so Linux pays a synchronous shootdown per sample
 * while LATR defers the unmap to the first sweeping core. The next
 * touch takes a NUMA-hint fault; a page faulted twice in a row from
 * the same remote node migrates there.
 */

#ifndef LATR_NUMA_AUTONUMA_HH_
#define LATR_NUMA_AUTONUMA_HH_

#include <unordered_map>
#include <vector>

#include "numa/migration.hh"
#include "os/kernel.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace latr
{

/** Linux-style automatic NUMA page balancing. */
class AutoNuma
{
  public:
    /**
     * @param kernel the kernel (the fault hook installs itself).
     * @param scan_interval period of the background scan.
     * @param pages_per_scan PTEs sampled per scan round.
     */
    AutoNuma(Kernel &kernel, Duration scan_interval,
             unsigned pages_per_scan);

    ~AutoNuma();

    AutoNuma(const AutoNuma &) = delete;
    AutoNuma &operator=(const AutoNuma &) = delete;

    /** Track @p process for balancing. */
    void track(Process *process);

    /**
     * Migration trigger: with two-touch (the default, Linux-like) a
     * page migrates on its second consecutive hint fault from the
     * same remote node; one-touch migrates on the first remote
     * fault — appropriate when the scan period is long relative to
     * the run, as in the figure 11 benchmarks.
     */
    void setTwoTouch(bool two_touch) { twoTouch_ = two_touch; }

    /**
     * Sampling stride: 1 (default) samples pages sequentially from
     * the cursor, like Linux's task_numa_work; a stride of N picks
     * every Nth present page with a rotating phase, covering a large
     * address space sparsely each round — appropriate when the run
     * is short relative to a full sequential sweep.
     */
    void setScanStride(std::uint64_t stride);

    /** Begin scanning (installs the NUMA-hint fault hook). */
    void start();

    /** Stop scanning. */
    void stop();

    std::uint64_t migrations() const { return migrator_.migrations(); }
    std::uint64_t samples() const { return samples_; }
    std::uint64_t hintFaults() const { return hintFaults_; }

  private:
    class ScanEvent : public Event
    {
      public:
        explicit ScanEvent(AutoNuma *an) : an_(an) {}
        void process() override { an_->scan(); }
        const char *name() const override { return "autonuma-scan"; }

      private:
        AutoNuma *an_;
    };

    /** One scan round: sample the next batch of pages. */
    void scan();

    /** The NUMA-hint fault handler (kernel hook). */
    Duration onHintFault(Vpn vpn, CoreId core);

    Kernel &kernel_;
    Duration scanInterval_;
    unsigned pagesPerScan_;
    PageMigrator migrator_;
    ScanEvent scanEvent_;
    bool running_ = false;

    std::vector<Process *> tracked_;
    std::size_t nextProcess_ = 0;
    /** Resume cursor within the current process's address space. */
    Vpn scanCursor_ = 0;
    std::uint64_t scanStride_ = 1;
    std::uint64_t stridePhase_ = 0;

    bool twoTouch_ = true;

    /** Last remote node that hint-faulted each page. */
    std::unordered_map<Vpn, NodeId> lastRemoteFault_;

    std::uint64_t samples_ = 0;
    std::uint64_t hintFaults_ = 0;
};

} // namespace latr

#endif // LATR_NUMA_AUTONUMA_HH_
